package sched

import (
	"math/rand"
	"testing"

	"dynaq/internal/units"
)

// fakeQueues is a minimal in-memory queue set implementing View, tracking
// packet sizes per queue.
type fakeQueues struct {
	pkts [][]units.ByteSize
}

func newFakeQueues(n int) *fakeQueues {
	return &fakeQueues{pkts: make([][]units.ByteSize, n)}
}

func (f *fakeQueues) push(i int, size units.ByteSize) {
	f.pkts[i] = append(f.pkts[i], size)
}

func (f *fakeQueues) NumQueues() int { return len(f.pkts) }

func (f *fakeQueues) QueueLen(i int) units.ByteSize {
	var sum units.ByteSize
	for _, s := range f.pkts[i] {
		sum += s
	}
	return sum
}

func (f *fakeQueues) HeadSize(i int) units.ByteSize {
	if len(f.pkts[i]) == 0 {
		return 0
	}
	return f.pkts[i][0]
}

// serve pops the head of the scheduler-selected queue and notifies the
// scheduler, returning the selected queue, or -1.
func (f *fakeQueues) serve(s Scheduler) int {
	i := s.Select(f)
	if i < 0 {
		return -1
	}
	size := f.pkts[i][0]
	f.pkts[i] = f.pkts[i][1:]
	s.OnDequeue(i, size, len(f.pkts[i]) == 0)
	return i
}

// drain serves until empty, returning the byte count served per queue.
func (f *fakeQueues) drain(t *testing.T, s Scheduler, maxIter int) []units.ByteSize {
	t.Helper()
	served := make([]units.ByteSize, f.NumQueues())
	for iter := 0; ; iter++ {
		if iter > maxIter {
			t.Fatalf("drain did not finish in %d iterations", maxIter)
		}
		i := s.Select(f)
		if i < 0 {
			return served
		}
		size := f.pkts[i][0]
		f.pkts[i] = f.pkts[i][1:]
		served[i] += size
		s.OnDequeue(i, size, len(f.pkts[i]) == 0)
	}
}

func TestDRRValidation(t *testing.T) {
	if _, err := NewDRR(nil); err == nil {
		t.Error("empty quantums should fail")
	}
	if _, err := NewDRR([]units.ByteSize{1500, 0}); err == nil {
		t.Error("zero quantum should fail")
	}
}

func TestDRREmptyReturnsMinusOne(t *testing.T) {
	d := EqualDRR(4, 1500)
	f := newFakeQueues(4)
	if got := d.Select(f); got != -1 {
		t.Fatalf("Select on empty = %d, want -1", got)
	}
}

func TestDRREqualQuantumFairBytes(t *testing.T) {
	// Two backlogged queues with equal quantums must receive equal byte
	// service over a long run, regardless of packet count asymmetry.
	d := EqualDRR(2, 1500)
	f := newFakeQueues(2)
	// Queue 0: large packets; queue 1: small packets, same total bytes.
	for i := 0; i < 100; i++ {
		f.push(0, 1500)
	}
	for i := 0; i < 300; i++ {
		f.push(1, 500)
	}
	// Serve exactly half the total bytes and compare per-queue service.
	var served [2]units.ByteSize
	total := units.ByteSize(0)
	for total < 150000 {
		i := f.serve(d)
		size := units.ByteSize(0)
		if i == 0 {
			size = 1500
		} else {
			size = 500
		}
		served[i] += size
		total += size
	}
	diff := served[0] - served[1]
	if diff < 0 {
		diff = -diff
	}
	// DRR guarantees per-round service skew bounded by one quantum+MTU.
	if diff > 3000 {
		t.Fatalf("byte service skew = %d (served %v), want ≤ 3000", diff, served)
	}
}

func TestDRRWeightedQuantums(t *testing.T) {
	// Quantums 4:3:2:1 (Fig 6 config) must yield proportional service for
	// persistently backlogged queues.
	d, err := NewDRR([]units.ByteSize{6000, 4500, 3000, 1500})
	if err != nil {
		t.Fatal(err)
	}
	f := newFakeQueues(4)
	for q := 0; q < 4; q++ {
		for i := 0; i < 400; i++ {
			f.push(q, 1500)
		}
	}
	var served [4]units.ByteSize
	var total units.ByteSize
	for total < 600000 {
		i := f.serve(d)
		served[i] += 1500
		total += 1500
	}
	// Shares should be close to 0.4/0.3/0.2/0.1.
	want := []float64{0.4, 0.3, 0.2, 0.1}
	for q := range served {
		got := float64(served[q]) / float64(total)
		if got < want[q]-0.02 || got > want[q]+0.02 {
			t.Errorf("queue %d share = %.3f, want %.3f±0.02 (served %v)", q, got, want[q], served)
		}
	}
}

func TestDRRQuantumSmallerThanPacket(t *testing.T) {
	// Deficit must accumulate across rounds when quantum < packet size.
	d, err := NewDRR([]units.ByteSize{500, 500})
	if err != nil {
		t.Fatal(err)
	}
	f := newFakeQueues(2)
	for i := 0; i < 10; i++ {
		f.push(0, 1500)
		f.push(1, 1500)
	}
	served := f.drain(t, d, 1000)
	if served[0] != 15000 || served[1] != 15000 {
		t.Fatalf("served = %v, want 15000 each", served)
	}
}

func TestDRRInactiveQueueLosesDeficit(t *testing.T) {
	d := EqualDRR(2, 1500)
	f := newFakeQueues(2)
	f.push(0, 1000)
	f.serve(d) // queue 0 now empty: deficit must reset on the empty signal
	if got := d.Deficit(0); got != 0 {
		t.Fatalf("deficit after emptying = %d, want 0", got)
	}
}

func TestDRRWorkConserving(t *testing.T) {
	// With only one backlogged queue, every service goes to it.
	d := EqualDRR(4, 1500)
	f := newFakeQueues(4)
	for i := 0; i < 50; i++ {
		f.push(2, 1500)
	}
	for i := 0; i < 50; i++ {
		if got := f.serve(d); got != 2 {
			t.Fatalf("service %d went to queue %d, want 2", i, got)
		}
	}
}

func TestWRRValidation(t *testing.T) {
	if _, err := NewWRR(nil); err == nil {
		t.Error("empty weights should fail")
	}
	if _, err := NewWRR([]int64{1, -1}); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestWRRPacketProportions(t *testing.T) {
	w, err := NewWRR([]int64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := newFakeQueues(2)
	for i := 0; i < 400; i++ {
		f.push(0, 1500)
		f.push(1, 1500)
	}
	var counts [2]int
	for i := 0; i < 400; i++ {
		counts[f.serve(w)]++
	}
	// 3:1 packet ratio.
	if counts[0] != 300 || counts[1] != 100 {
		t.Fatalf("counts = %v, want [300 100]", counts)
	}
}

func TestWRRSkipsEmptyQueues(t *testing.T) {
	w := EqualWRR(3)
	f := newFakeQueues(3)
	f.push(1, 100)
	if got := f.serve(w); got != 1 {
		t.Fatalf("served queue %d, want 1", got)
	}
	if got := w.Select(f); got != -1 {
		t.Fatalf("Select on empty = %d, want -1", got)
	}
}

func TestSPQStrictPriority(t *testing.T) {
	s := NewSPQ()
	f := newFakeQueues(3)
	f.push(2, 100)
	f.push(0, 100)
	f.push(1, 100)
	want := []int{0, 1, 2}
	for _, w := range want {
		if got := f.serve(s); got != w {
			t.Fatalf("served %d, want %d", got, w)
		}
	}
	if got := s.Select(f); got != -1 {
		t.Fatalf("Select on empty = %d, want -1", got)
	}
}

func TestSPQHighPriorityPreempts(t *testing.T) {
	s := NewSPQ()
	f := newFakeQueues(2)
	for i := 0; i < 5; i++ {
		f.push(1, 100)
	}
	f.serve(s) // serves queue 1
	f.push(0, 100)
	if got := f.serve(s); got != 0 {
		t.Fatalf("new high-priority packet not served first: got queue %d", got)
	}
}

func TestSPQDRRValidation(t *testing.T) {
	if _, err := NewSPQDRR(0, []units.ByteSize{1500}); err == nil {
		t.Error("zero priority queues should fail")
	}
	if _, err := NewSPQDRR(1, nil); err == nil {
		t.Error("no DRR queues should fail")
	}
}

func TestSPQDRRPriorityFirst(t *testing.T) {
	// 1 SPQ queue + 4 DRR queues (the paper's dynamic-flow config).
	s, err := NewSPQDRR(1, []units.ByteSize{1500, 1500, 1500, 1500})
	if err != nil {
		t.Fatal(err)
	}
	f := newFakeQueues(5)
	f.push(0, 100)
	f.push(1, 1500)
	f.push(3, 1500)
	if got := f.serve(s); got != 0 {
		t.Fatalf("first service to queue %d, want SPQ queue 0", got)
	}
	// DRR queues only after SPQ empties; both get served.
	a, b := f.serve(s), f.serve(s)
	if !(a == 1 && b == 3) && !(a == 3 && b == 1) {
		t.Fatalf("DRR services = %d,%d, want 1 and 3", a, b)
	}
}

func TestSPQDRRFairAmongLowPriority(t *testing.T) {
	s, err := NewSPQDRR(1, []units.ByteSize{1500, 1500})
	if err != nil {
		t.Fatal(err)
	}
	if s.PriorityQueues() != 1 {
		t.Fatalf("PriorityQueues = %d", s.PriorityQueues())
	}
	f := newFakeQueues(3)
	for i := 0; i < 100; i++ {
		f.push(1, 1500)
		f.push(2, 1500)
	}
	var counts [3]int
	for i := 0; i < 200; i++ {
		counts[f.serve(s)]++
	}
	if counts[1] != 100 || counts[2] != 100 {
		t.Fatalf("counts = %v, want equal DRR split", counts)
	}
}

func TestSchedulersNeverStarveRandomized(t *testing.T) {
	// Property: under random arrivals every scheduler eventually drains
	// all queues (work conservation + no starvation).
	rng := rand.New(rand.NewSource(7))
	build := []func() Scheduler{
		func() Scheduler { return EqualDRR(4, 1500) },
		func() Scheduler { d, _ := NewDRR([]units.ByteSize{6000, 4500, 3000, 1500}); return d },
		func() Scheduler { return EqualWRR(4) },
		func() Scheduler { return NewSPQ() },
		func() Scheduler { s, _ := NewSPQDRR(1, []units.ByteSize{1500, 1500, 1500}); return s },
	}
	for bi, mk := range build {
		for trial := 0; trial < 20; trial++ {
			s := mk()
			f := newFakeQueues(4)
			var pushed units.ByteSize
			for i := 0; i < 200; i++ {
				q := rng.Intn(4)
				size := units.ByteSize(64 + rng.Intn(8936))
				f.push(q, size)
				pushed += size
			}
			served := f.drain(t, s, 10000)
			var total units.ByteSize
			for _, b := range served {
				total += b
			}
			if total != pushed {
				t.Fatalf("scheduler %d trial %d: served %d bytes, pushed %d", bi, trial, total, pushed)
			}
		}
	}
}

func BenchmarkDRRSelect(b *testing.B) {
	d := EqualDRR(8, 1500)
	f := newFakeQueues(8)
	for q := 0; q < 8; q++ {
		for i := 0; i < 4; i++ {
			f.push(q, 1500)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := d.Select(f)
		d.OnDequeue(q, 1500, false)
		// Keep queues statically backlogged: no pops.
	}
}
