package sched

import (
	"math/rand"
	"testing"

	"dynaq/internal/units"
)

// TestDRRFairnessBound verifies the Shreedhar-Varghese fairness property:
// over any interval where two queues are continuously backlogged, their
// normalized service difference |S_i/w_i − S_j/w_j| is bounded by a
// constant independent of the interval length (quantum + max packet per
// weight unit).
func TestDRRFairnessBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	weights := []units.ByteSize{6000, 4500, 3000, 1500}
	const maxPkt = 1500
	for trial := 0; trial < 10; trial++ {
		d, err := NewDRR(weights)
		if err != nil {
			t.Fatal(err)
		}
		f := newFakeQueues(4)
		// Keep all queues continuously backlogged with random packet
		// sizes; replenish as we serve.
		for q := 0; q < 4; q++ {
			for i := 0; i < 8; i++ {
				f.push(q, units.ByteSize(64+rng.Intn(maxPkt-64)))
			}
		}
		served := make([]float64, 4)
		for step := 0; step < 5000; step++ {
			q := d.Select(f)
			size := f.pkts[q][0]
			f.pkts[q] = f.pkts[q][1:]
			served[q] += float64(size)
			d.OnDequeue(q, size, false)
			f.push(q, units.ByteSize(64+rng.Intn(maxPkt-64))) // stay backlogged
			if step < 100 {
				continue // allow one round of warmup
			}
			for i := 0; i < 4; i++ {
				for j := i + 1; j < 4; j++ {
					ni := served[i] / float64(weights[i])
					nj := served[j] / float64(weights[j])
					diff := ni - nj
					if diff < 0 {
						diff = -diff
					}
					// Bound: (quantum_max + maxPkt)/w_min normalized —
					// use a generous constant multiple.
					bound := 2.0 * (6000 + maxPkt) / 1500
					if diff > bound {
						t.Fatalf("trial %d step %d: normalized service skew %v > %v (served %v)",
							trial, step, diff, bound, served)
					}
				}
			}
		}
	}
}
