// Package sched implements the work-conserving packet schedulers the paper
// evaluates DynaQ under: deficit round-robin (DRR), weighted round-robin
// (WRR), strict priority queueing (SPQ), and the SPQ-over-DRR hybrid used in
// the dynamic-flow experiments (§V-A2: one shared high-priority queue above
// dedicated DRR queues).
//
// A Scheduler only decides *which* queue to serve next; the switch port owns
// the queues themselves and exposes their state through the View interface.
package sched

import (
	"fmt"

	"dynaq/internal/units"
)

// View is the read-only queue state a scheduler consults.
type View interface {
	// NumQueues returns the number of service queues on the port.
	NumQueues() int
	// QueueLen returns the backlog of queue i in bytes.
	QueueLen(i int) units.ByteSize
	// HeadSize returns the size of the head packet of queue i, or 0 when
	// queue i is empty. DRR needs it for deficit accounting.
	HeadSize(i int) units.ByteSize
}

// Scheduler selects the next service queue to dequeue from.
type Scheduler interface {
	// Select returns the index of the queue to serve next, or -1 when
	// every queue is empty. It may mutate internal round state.
	Select(v View) int
	// OnDequeue informs the scheduler that size bytes left queue i, and
	// whether that left the queue empty (a queue leaving the active set
	// resets its DRR deficit).
	OnDequeue(i int, size units.ByteSize, nowEmpty bool)
}

func anyBacklogged(v View) bool {
	for i := 0; i < v.NumQueues(); i++ {
		if v.QueueLen(i) > 0 {
			return true
		}
	}
	return false
}

// DRR is deficit round-robin (Shreedhar & Varghese): each queue holds a
// byte deficit replenished by its quantum once per round; a queue is served
// while its head packet fits in the deficit.
type DRR struct {
	quantum []units.ByteSize
	deficit []units.ByteSize
	cur     int
	fresh   bool // true when arriving at cur for the first time this visit
}

// NewDRR builds a DRR scheduler with the given per-queue quantums (the
// paper's default is one MTU, 1.5KB).
func NewDRR(quantums []units.ByteSize) (*DRR, error) {
	if len(quantums) == 0 {
		return nil, fmt.Errorf("sched: DRR needs at least one queue")
	}
	for i, q := range quantums {
		if q <= 0 {
			return nil, fmt.Errorf("sched: DRR quantum of queue %d is %d, must be positive", i, q)
		}
	}
	return &DRR{
		quantum: append([]units.ByteSize(nil), quantums...),
		deficit: make([]units.ByteSize, len(quantums)),
		fresh:   true,
	}, nil
}

// EqualDRR builds a DRR scheduler with n queues sharing one quantum.
func EqualDRR(n int, quantum units.ByteSize) *DRR {
	qs := make([]units.ByteSize, n)
	for i := range qs {
		qs[i] = quantum
	}
	d, err := NewDRR(qs)
	if err != nil {
		panic(err)
	}
	return d
}

// Deficit exposes queue i's current deficit counter (for tests and traces).
func (d *DRR) Deficit(i int) units.ByteSize { return d.deficit[i] }

// Select implements Scheduler.
func (d *DRR) Select(v View) int {
	if !anyBacklogged(v) {
		return -1
	}
	// A backlogged queue is served after at most ceil(head/quantum) rounds;
	// bound the walk generously and panic beyond it — exceeding the bound
	// means the deficit accounting broke, not a transient condition.
	maxHead := units.ByteSize(0)
	minQuantum := d.quantum[0]
	for i := 0; i < v.NumQueues(); i++ {
		if h := v.HeadSize(i); h > maxHead {
			maxHead = h
		}
		if d.quantum[i] < minQuantum {
			minQuantum = d.quantum[i]
		}
	}
	bound := v.NumQueues() * (int(maxHead/minQuantum) + 2)
	for iter := 0; iter < bound; iter++ {
		i := d.cur
		if v.QueueLen(i) == 0 {
			d.deficit[i] = 0 // inactive queues carry no deficit
			d.advance()
			continue
		}
		if d.fresh {
			d.deficit[i] += d.quantum[i]
			d.fresh = false
		}
		if v.HeadSize(i) <= d.deficit[i] {
			return i
		}
		d.advance()
	}
	panic("sched: DRR failed to select a backlogged queue (deficit accounting bug)")
}

// OnDequeue implements Scheduler.
func (d *DRR) OnDequeue(i int, size units.ByteSize, nowEmpty bool) {
	d.deficit[i] -= size
	if nowEmpty {
		d.deficit[i] = 0
		if d.cur == i {
			d.advance()
		}
	}
}

func (d *DRR) advance() {
	d.cur = (d.cur + 1) % len(d.quantum)
	d.fresh = true
}

// WRR is packet-based weighted round-robin: queue i is served up to w_i
// packets per visit.
type WRR struct {
	weights []int64
	cur     int
	served  int64
}

// NewWRR builds a WRR scheduler with the given integer weights.
func NewWRR(weights []int64) (*WRR, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("sched: WRR needs at least one queue")
	}
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("sched: WRR weight of queue %d is %d, must be positive", i, w)
		}
	}
	return &WRR{weights: append([]int64(nil), weights...)}, nil
}

// EqualWRR builds a WRR scheduler over n equally-weighted queues.
func EqualWRR(n int) *WRR {
	ws := make([]int64, n)
	for i := range ws {
		ws[i] = 1
	}
	w, err := NewWRR(ws)
	if err != nil {
		panic(err)
	}
	return w
}

// Select implements Scheduler.
func (w *WRR) Select(v View) int {
	if !anyBacklogged(v) {
		return -1
	}
	for iter := 0; iter <= v.NumQueues(); iter++ {
		i := w.cur
		if v.QueueLen(i) > 0 && w.served < w.weights[i] {
			return i
		}
		w.advance()
	}
	panic("sched: WRR failed to select a backlogged queue")
}

// OnDequeue implements Scheduler.
func (w *WRR) OnDequeue(i int, _ units.ByteSize, nowEmpty bool) {
	if i != w.cur {
		return
	}
	w.served++
	if nowEmpty || w.served >= w.weights[i] {
		w.advance()
	}
}

func (w *WRR) advance() {
	w.cur = (w.cur + 1) % len(w.weights)
	w.served = 0
}

// SPQ is strict priority queueing: lower queue index means higher priority;
// a queue is served only when all higher-priority queues are empty.
type SPQ struct{}

// NewSPQ returns a strict-priority scheduler.
func NewSPQ() *SPQ { return &SPQ{} }

// Select implements Scheduler.
func (*SPQ) Select(v View) int {
	for i := 0; i < v.NumQueues(); i++ {
		if v.QueueLen(i) > 0 {
			return i
		}
	}
	return -1
}

// OnDequeue implements Scheduler.
func (*SPQ) OnDequeue(int, units.ByteSize, bool) {}

// SPQDRR is the hybrid of §V-A2: queues [0, prio) are strict-priority
// (shared high-priority queues), and the remaining queues are DRR among
// themselves, served only when every priority queue is empty. "Packets in
// the DRR queues can be dequeued only when the SPQ queue is empty."
type SPQDRR struct {
	prio int
	drr  *DRR
}

// NewSPQDRR builds the hybrid: prio strict queues above a DRR over the
// remaining len(quantums) queues. Queue indices seen by callers cover the
// whole port: [0, prio) strict, [prio, prio+len(quantums)) DRR.
func NewSPQDRR(prio int, quantums []units.ByteSize) (*SPQDRR, error) {
	if prio <= 0 {
		return nil, fmt.Errorf("sched: SPQDRR needs at least one priority queue, got %d", prio)
	}
	drr, err := NewDRR(quantums)
	if err != nil {
		return nil, err
	}
	return &SPQDRR{prio: prio, drr: drr}, nil
}

// PriorityQueues returns the number of strict-priority queues.
func (s *SPQDRR) PriorityQueues() int { return s.prio }

// Select implements Scheduler.
func (s *SPQDRR) Select(v View) int {
	for i := 0; i < s.prio; i++ {
		if v.QueueLen(i) > 0 {
			return i
		}
	}
	sub := shiftedView{View: v, off: s.prio}
	if i := s.drr.Select(sub); i >= 0 {
		return i + s.prio
	}
	return -1
}

// OnDequeue implements Scheduler.
func (s *SPQDRR) OnDequeue(i int, size units.ByteSize, nowEmpty bool) {
	if i >= s.prio {
		s.drr.OnDequeue(i-s.prio, size, nowEmpty)
	}
}

// shiftedView exposes queues [off, N) of a port as queues [0, N-off).
type shiftedView struct {
	View
	off int
}

func (s shiftedView) NumQueues() int                { return s.View.NumQueues() - s.off }
func (s shiftedView) QueueLen(i int) units.ByteSize { return s.View.QueueLen(i + s.off) }
func (s shiftedView) HeadSize(i int) units.ByteSize { return s.View.HeadSize(i + s.off) }
