package workload

import (
	"math/rand"
	"testing"

	"dynaq/internal/units"
)

// FuzzCDFSample checks that arbitrary valid CDFs always sample within
// their support and never return non-positive sizes.
func FuzzCDFSample(f *testing.F) {
	f.Add(int64(1), uint16(100), uint16(1000))
	f.Add(int64(9), uint16(1), uint16(2))
	f.Fuzz(func(t *testing.T, seed int64, aRaw, bRaw uint16) {
		a := units.ByteSize(aRaw) + 1
		b := a + units.ByteSize(bRaw) + 1
		cdf, err := NewCDF("fuzz", []Point{{a, 0.5}, {b, 1.0}})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			s := cdf.Sample(rng)
			if s < 1 || s > b {
				t.Fatalf("sample %d outside (0, %d]", s, b)
			}
		}
		if m := cdf.Mean(); m <= 0 || m > b {
			t.Fatalf("mean %d outside support", m)
		}
	})
}
