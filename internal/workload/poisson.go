package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dynaq/internal/units"
)

// FlowGen draws flow sizes from a CDF and inter-arrival gaps from an
// exponential distribution whose rate loads the bottleneck to a target
// fraction of its capacity — the client/server request model of §V-A2
// ("the inter-arrival time of generated requests follows a Poisson
// process").
type FlowGen struct {
	rng    *rand.Rand
	cdf    *CDF
	lambda float64 // flow arrivals per second
}

// NewFlowGen builds a generator that drives utilization load·capacity using
// flow sizes from cdf. Load is the paper's x-axis (0.3–0.8).
func NewFlowGen(seed int64, cdf *CDF, capacity units.Rate, load float64) (*FlowGen, error) {
	if cdf == nil {
		return nil, fmt.Errorf("workload: flow generator needs a CDF")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("workload: capacity %v must be positive", capacity)
	}
	if load <= 0 || load > 1 {
		return nil, fmt.Errorf("workload: load %v out of (0, 1]", load)
	}
	mean := cdf.Mean()
	if mean <= 0 {
		return nil, fmt.Errorf("workload: CDF %q has zero mean", cdf.Name())
	}
	// λ [flows/s] = load · C [bits/s] / (8 · E[size] [bytes]).
	lambda := load * float64(capacity) / (8 * float64(mean))
	return &FlowGen{
		rng:    rand.New(rand.NewSource(seed)),
		cdf:    cdf,
		lambda: lambda,
	}, nil
}

// Lambda returns the arrival rate in flows per second.
func (g *FlowGen) Lambda() float64 { return g.lambda }

// NextSize draws the next flow's size.
func (g *FlowGen) NextSize() units.ByteSize { return g.cdf.Sample(g.rng) }

// NextInterarrival draws the next exponential inter-arrival gap.
func (g *FlowGen) NextInterarrival() units.Duration {
	u := g.rng.Float64()
	//dynaqlint:allow float-eq rejecting the exact 0 that rand.Float64 can return before taking log(u)
	for u == 0 {
		u = g.rng.Float64()
	}
	return units.Seconds(-math.Log(u) / g.lambda)
}

// Rand exposes the generator's seeded source for correlated choices
// (source/destination picking) so an experiment stays one-seed
// reproducible.
func (g *FlowGen) Rand() *rand.Rand { return g.rng }
