package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dynaq/internal/units"
)

func TestNewCDFValidation(t *testing.T) {
	tests := []struct {
		name    string
		points  []Point
		wantErr bool
	}{
		{name: "empty", wantErr: true},
		{name: "non-increasing size", points: []Point{{100, 0.5}, {100, 1}}, wantErr: true},
		{name: "decreasing prob", points: []Point{{100, 0.8}, {200, 0.5}}, wantErr: true},
		{name: "prob beyond 1", points: []Point{{100, 1.5}}, wantErr: true},
		{name: "not ending at 1", points: []Point{{100, 0.9}}, wantErr: true},
		{name: "valid", points: []Point{{100, 0.5}, {1000, 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewCDF(tt.name, tt.points)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestEmbeddedCDFsAreValid(t *testing.T) {
	if len(All()) != 4 {
		t.Fatalf("All() = %d workloads, want 4 (Figure 2)", len(All()))
	}
	for _, c := range All() {
		if c.Mean() <= 0 {
			t.Errorf("%s: non-positive mean", c.Name())
		}
		got, err := ByName(c.Name())
		if err != nil || got != c {
			t.Errorf("ByName(%q) = %v, %v", c.Name(), got, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestSampleMatchesCDFQuantiles(t *testing.T) {
	// Property: empirical quantiles of many samples must track the knots.
	for _, c := range All() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			n := 200000
			var atOrBelow [16]int
			knots := c.points
			for i := 0; i < n; i++ {
				s := c.Sample(rng)
				for k, p := range knots {
					if s <= p.Size {
						atOrBelow[k]++
					}
				}
			}
			for k, p := range knots {
				got := float64(atOrBelow[k]) / float64(n)
				if math.Abs(got-p.Prob) > 0.01 {
					t.Errorf("P(size ≤ %v) = %.3f, want %.3f", p.Size, got, p.Prob)
				}
			}
		})
	}
}

func TestSampleMeanMatchesAnalyticMean(t *testing.T) {
	for _, c := range All() {
		rng := rand.New(rand.NewSource(7))
		n := 300000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(c.Sample(rng))
		}
		got := sum / float64(n)
		want := float64(c.Mean())
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: sample mean %.0f, analytic %.0f", c.Name(), got, want)
		}
	}
}

func TestDataMiningMatchesPaperQuote(t *testing.T) {
	// §V: "roughly 50% of flows are 1KB while 90% of bytes are from flows
	// larger than 100MB" — check 50% ≤ 1KB exactly and byte skew loosely.
	c := DataMining()
	rng := rand.New(rand.NewSource(3))
	n := 300000
	small, totalBytes, hugeBytes := 0, 0.0, 0.0
	for i := 0; i < n; i++ {
		s := c.Sample(rng)
		if s <= units.KB {
			small++
		}
		totalBytes += float64(s)
		if s > 100*units.MB {
			hugeBytes += float64(s)
		}
	}
	if frac := float64(small) / float64(n); math.Abs(frac-0.5) > 0.01 {
		t.Errorf("P(≤1KB) = %.3f, want 0.5", frac)
	}
	if skew := hugeBytes / totalBytes; skew < 0.7 {
		t.Errorf("bytes from >100MB flows = %.2f, want ≥ 0.7 (heavy tail)", skew)
	}
}

func TestSampleNeverZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if Cache().Sample(rng) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowGenValidation(t *testing.T) {
	if _, err := NewFlowGen(1, nil, units.Gbps, 0.5); err == nil {
		t.Error("nil CDF should fail")
	}
	if _, err := NewFlowGen(1, WebSearch(), 0, 0.5); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewFlowGen(1, WebSearch(), units.Gbps, 0); err == nil {
		t.Error("zero load should fail")
	}
	if _, err := NewFlowGen(1, WebSearch(), units.Gbps, 1.5); err == nil {
		t.Error("overload should fail")
	}
}

func TestFlowGenLambdaLoadsCapacity(t *testing.T) {
	g, err := NewFlowGen(1, WebSearch(), units.Gbps, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// λ · E[size] · 8 must equal load · C.
	offered := g.Lambda() * float64(WebSearch().Mean()) * 8
	want := 0.6 * 1e9
	if math.Abs(offered-want)/want > 1e-9 {
		t.Fatalf("offered load = %.0f bits/s, want %.0f", offered, want)
	}
}

func TestFlowGenInterarrivalIsExponential(t *testing.T) {
	g, err := NewFlowGen(42, WebSearch(), units.Gbps, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		d := g.NextInterarrival()
		if d < 0 {
			t.Fatal("negative inter-arrival")
		}
		sum += d.Seconds()
	}
	gotMean := sum / float64(n)
	wantMean := 1 / g.Lambda()
	if math.Abs(gotMean-wantMean)/wantMean > 0.02 {
		t.Fatalf("mean gap = %v s, want %v s", gotMean, wantMean)
	}
}

func TestFlowGenDeterministicBySeed(t *testing.T) {
	a, _ := NewFlowGen(9, Hadoop(), units.Gbps, 0.4)
	b, _ := NewFlowGen(9, Hadoop(), units.Gbps, 0.4)
	for i := 0; i < 100; i++ {
		if a.NextSize() != b.NextSize() || a.NextInterarrival() != b.NextInterarrival() {
			t.Fatal("same seed must generate identical traffic")
		}
	}
}
