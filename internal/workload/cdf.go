// Package workload generates the traffic the paper evaluates with: flow
// sizes drawn from empirical CDFs of four production workloads (web search
// [DCTCP], data mining [VL2], cache and hadoop [Facebook]) and Poisson flow
// arrivals targeted at a fraction of the bottleneck capacity.
//
// The exact production traces are proprietary; the CDFs embedded here are
// piecewise-linear approximations of the published distributions,
// preserving the properties the experiments depend on: heavy tails, ~50%
// tiny flows, and most bytes in multi-megabyte flows (see DESIGN.md's
// substitution table).
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"dynaq/internal/units"
)

// Point is one knot of an empirical CDF: P(flow size ≤ Size) = Prob.
type Point struct {
	Size units.ByteSize
	Prob float64
}

// CDF is a piecewise-linear empirical flow-size distribution.
type CDF struct {
	name   string
	points []Point
}

// NewCDF validates knots (strictly increasing sizes, nondecreasing
// probabilities ending at 1) and builds a distribution. An implicit (0, 0)
// origin precedes the first knot.
func NewCDF(name string, points []Point) (*CDF, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("workload: CDF %q needs at least one point", name)
	}
	prevSize, prevProb := units.ByteSize(0), 0.0
	for i, p := range points {
		if p.Size <= prevSize {
			return nil, fmt.Errorf("workload: CDF %q point %d: size %d not increasing", name, i, p.Size)
		}
		if p.Prob < prevProb || p.Prob > 1 {
			return nil, fmt.Errorf("workload: CDF %q point %d: prob %v invalid", name, i, p.Prob)
		}
		prevSize, prevProb = p.Size, p.Prob
	}
	//dynaqlint:allow float-eq construction-time validation of literal CDF knots, which must end at exactly 1
	if points[len(points)-1].Prob != 1 {
		return nil, fmt.Errorf("workload: CDF %q must end at probability 1", name)
	}
	return &CDF{name: name, points: append([]Point(nil), points...)}, nil
}

// mustCDF is NewCDF for the package's embedded distributions.
func mustCDF(name string, points []Point) *CDF {
	c, err := NewCDF(name, points)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the workload name.
func (c *CDF) Name() string { return c.name }

// Sample draws a flow size by inverse-transform sampling with linear
// interpolation between knots. Sizes are at least one byte.
func (c *CDF) Sample(rng *rand.Rand) units.ByteSize {
	u := rng.Float64()
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i].Prob >= u })
	if i == len(c.points) {
		i = len(c.points) - 1
	}
	lowSize, lowProb := units.ByteSize(0), 0.0
	if i > 0 {
		lowSize, lowProb = c.points[i-1].Size, c.points[i-1].Prob
	}
	hi := c.points[i]
	//dynaqlint:allow float-eq exact-zero divide guard for a degenerate (vertical) CDF segment
	if hi.Prob == lowProb {
		return max(hi.Size, 1)
	}
	frac := (u - lowProb) / (hi.Prob - lowProb)
	size := units.ByteSize(float64(lowSize) + frac*float64(hi.Size-lowSize))
	return max(size, 1)
}

// Mean returns the distribution's analytic mean: Σ segment-midpoint·mass
// over the piecewise-linear segments.
func (c *CDF) Mean() units.ByteSize {
	var mean float64
	lowSize, lowProb := units.ByteSize(0), 0.0
	for _, p := range c.points {
		mass := p.Prob - lowProb
		mid := (float64(lowSize) + float64(p.Size)) / 2
		mean += mass * mid
		lowSize, lowProb = p.Size, p.Prob
	}
	return units.ByteSize(mean)
}

func max(a, b units.ByteSize) units.ByteSize {
	if a > b {
		return a
	}
	return b
}

// The four production workloads of Figure 2. Probabilities and sizes
// approximate the published CDF shapes.
var (
	// webSearch follows the DCTCP paper's web-search workload: flows of a
	// few KB to tens of MB, mean ≈ 1.6MB, with the least-skewed byte
	// distribution of the four (which is what makes it the stress test —
	// many concurrent medium flows share the bottleneck).
	webSearch = mustCDF("websearch", []Point{
		{6 * units.KB, 0.15},
		{13 * units.KB, 0.20},
		{19 * units.KB, 0.30},
		{33 * units.KB, 0.40},
		{53 * units.KB, 0.53},
		{133 * units.KB, 0.60},
		{667 * units.KB, 0.70},
		{1333 * units.KB, 0.80},
		{3333 * units.KB, 0.90},
		{6667 * units.KB, 0.97},
		{20 * units.MB, 1.00},
	})

	// dataMining follows VL2: "roughly 50% of flows are 1KB while 90% of
	// bytes are from flows larger than 100MB" (§V of the DynaQ paper).
	dataMining = mustCDF("datamining", []Point{
		{1 * units.KB, 0.50},
		{2 * units.KB, 0.60},
		{5 * units.KB, 0.70},
		{100 * units.KB, 0.80},
		{1 * units.MB, 0.90},
		{10 * units.MB, 0.95},
		{100 * units.MB, 0.98},
		{1 * units.GB, 1.00},
	})

	// cache follows Facebook's cache-follower traffic: dominated by small
	// request/response pairs with a medium tail.
	cache = mustCDF("cache", []Point{
		{330 * units.Byte, 0.30},
		{575 * units.Byte, 0.50},
		{1 * units.KB, 0.60},
		{3 * units.KB, 0.70},
		{10 * units.KB, 0.80},
		{100 * units.KB, 0.90},
		{500 * units.KB, 0.97},
		{10 * units.MB, 1.00},
	})

	// hadoop follows Facebook's hadoop traffic: bimodal — tiny control
	// flows and large shuffle transfers.
	hadoop = mustCDF("hadoop", []Point{
		{180 * units.Byte, 0.30},
		{360 * units.Byte, 0.50},
		{1 * units.KB, 0.60},
		{10 * units.KB, 0.70},
		{100 * units.KB, 0.80},
		{1 * units.MB, 0.90},
		{30 * units.MB, 0.98},
		{300 * units.MB, 1.00},
	})
)

// WebSearch returns the web-search workload [DCTCP, SIGCOMM'10].
func WebSearch() *CDF { return webSearch }

// DataMining returns the data-mining workload [VL2, SIGCOMM'09].
func DataMining() *CDF { return dataMining }

// Cache returns the cache workload [Facebook, SIGCOMM'15].
func Cache() *CDF { return cache }

// Hadoop returns the hadoop workload [Facebook, SIGCOMM'15].
func Hadoop() *CDF { return hadoop }

// All returns the four workloads in Figure 2 order.
func All() []*CDF { return []*CDF{webSearch, dataMining, cache, hadoop} }

// ByName looks a workload up by its name.
func ByName(name string) (*CDF, error) {
	for _, c := range All() {
		if c.name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}
