// Package pias implements the two-level PIAS classifier (Bai et al.,
// NSDI'15) the paper uses in its dynamic-flow experiments: a flow's first
// DemotionThreshold bytes are tagged into a shared high-priority queue; the
// remainder is demoted to the flow's own service queue. With SPQ above DRR
// this accelerates small flows without starving large ones.
package pias

import (
	"fmt"

	"dynaq/internal/units"
)

// DefaultDemotionThreshold is the paper's priority demotion threshold
// (§V-A2 and §V-B2: 100KB).
const DefaultDemotionThreshold = 100 * units.KB

// Classifier maps a flow's byte offsets to service classes.
type Classifier struct {
	threshold units.ByteSize
	highClass int
}

// NewClassifier builds a two-level classifier: bytes below threshold go to
// highClass (the shared SPQ queue).
func NewClassifier(threshold units.ByteSize, highClass int) (*Classifier, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("pias: demotion threshold %d must be positive", threshold)
	}
	if highClass < 0 {
		return nil, fmt.Errorf("pias: high-priority class %d must be non-negative", highClass)
	}
	return &Classifier{threshold: threshold, highClass: highClass}, nil
}

// Threshold returns the demotion threshold.
func (c *Classifier) Threshold() units.ByteSize { return c.threshold }

// ClassOf returns the per-flow classification function for a flow whose
// demoted traffic belongs to serviceClass. The returned function plugs into
// transport.FlowConfig.ClassOf.
//
// Classification is by sequence offset rather than a running bytes-sent
// counter: for the first pass through the data they coincide, and for
// retransmissions offset-tagging keeps a segment in the queue it
// originally used, which is deterministic and avoids re-promoting a large
// flow's tail.
func (c *Classifier) ClassOf(serviceClass int) func(seq int64) int {
	return func(seq int64) int {
		if seq < int64(c.threshold) {
			return c.highClass
		}
		return serviceClass
	}
}
