package pias

import (
	"testing"

	"dynaq/internal/units"
)

func TestNewClassifierValidation(t *testing.T) {
	if _, err := NewClassifier(0, 0); err == nil {
		t.Error("zero threshold should fail")
	}
	if _, err := NewClassifier(units.KB, -1); err == nil {
		t.Error("negative class should fail")
	}
}

func TestTwoLevelClassification(t *testing.T) {
	c, err := NewClassifier(DefaultDemotionThreshold, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Threshold() != 100*units.KB {
		t.Fatalf("threshold = %v", c.Threshold())
	}
	classOf := c.ClassOf(3)
	tests := []struct {
		seq  int64
		want int
	}{
		{0, 0},
		{99999, 0},
		{100000, 3}, // first demoted byte
		{5000000, 3},
	}
	for _, tt := range tests {
		if got := classOf(tt.seq); got != tt.want {
			t.Errorf("ClassOf(%d) = %d, want %d", tt.seq, got, tt.want)
		}
	}
}

func TestDistinctServiceClasses(t *testing.T) {
	c, err := NewClassifier(DefaultDemotionThreshold, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := c.ClassOf(1), c.ClassOf(2)
	if a(200000) != 1 || b(200000) != 2 {
		t.Fatal("demoted classes must follow the service class")
	}
	if a(0) != 0 || b(0) != 0 {
		t.Fatal("early bytes must share the high-priority class")
	}
}
