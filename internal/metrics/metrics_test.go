package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"dynaq/internal/units"
)

func TestBucketOf(t *testing.T) {
	tests := []struct {
		size units.ByteSize
		want Bucket
	}{
		{1 * units.KB, SmallFlows},
		{100 * units.KB, SmallFlows}, // boundary inclusive
		{101 * units.KB, MediumFlows},
		{10 * units.MB, MediumFlows}, // boundary
		{10*units.MB + 1, LargeFlows},
		{1 * units.GB, LargeFlows},
	}
	for _, tt := range tests {
		if got := BucketOf(tt.size); got != tt.want {
			t.Errorf("BucketOf(%v) = %v, want %v", tt.size, got, tt.want)
		}
	}
}

func TestBucketString(t *testing.T) {
	for b, want := range map[Bucket]string{
		AllFlows: "overall", SmallFlows: "small", MediumFlows: "medium",
		LargeFlows: "large", Bucket(9): "Bucket(9)",
	} {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", b, got, want)
		}
	}
}

func TestFCTCollectorBuckets(t *testing.T) {
	c := NewFCTCollector()
	c.Add(10*units.KB, 1*units.Millisecond)   // small
	c.Add(50*units.KB, 3*units.Millisecond)   // small
	c.Add(1*units.MB, 10*units.Millisecond)   // medium
	c.Add(20*units.MB, 100*units.Millisecond) // large
	if got := c.Count(AllFlows); got != 4 {
		t.Fatalf("Count(all) = %d", got)
	}
	if got := c.Count(SmallFlows); got != 2 {
		t.Fatalf("Count(small) = %d", got)
	}
	if got := c.Avg(SmallFlows); got != 2*units.Millisecond {
		t.Fatalf("Avg(small) = %v", got)
	}
	if got := c.Avg(LargeFlows); got != 100*units.Millisecond {
		t.Fatalf("Avg(large) = %v", got)
	}
	if got := c.Avg(MediumFlows); got != 10*units.Millisecond {
		t.Fatalf("Avg(medium) = %v", got)
	}
	if got := len(c.Records()); got != 4 {
		t.Fatalf("Records = %d", got)
	}
}

func TestFCTCollectorEmpty(t *testing.T) {
	c := NewFCTCollector()
	if c.Avg(AllFlows) != 0 || c.Percentile(AllFlows, 0.99) != 0 || c.Count(AllFlows) != 0 {
		t.Fatal("empty collector must report zeros")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	c := NewFCTCollector()
	for i := 1; i <= 100; i++ {
		c.Add(units.KB, units.Duration(i)*units.Millisecond)
	}
	if got := c.Percentile(AllFlows, 0.99); got != 99*units.Millisecond {
		t.Fatalf("P99 = %v, want 99ms", got)
	}
	if got := c.Percentile(AllFlows, 0.5); got != 50*units.Millisecond {
		t.Fatalf("P50 = %v, want 50ms", got)
	}
	if got := c.Percentile(AllFlows, 1.0); got != 100*units.Millisecond {
		t.Fatalf("P100 = %v, want 100ms", got)
	}
}

func TestJain(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{name: "equal shares", xs: []float64{5, 5, 5, 5}, want: 1},
		{name: "single hog", xs: []float64{10, 0, 0, 0}, want: 0.25},
		{name: "two of four", xs: []float64{5, 5, 0, 0}, want: 0.5},
		{name: "empty", xs: nil, want: 0},
		{name: "all zero", xs: []float64{0, 0}, want: 0},
	}
	for _, tt := range tests {
		if got := Jain(tt.xs); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: Jain = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestJainBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		j := Jain(xs)
		return j >= 0 && j <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedJain(t *testing.T) {
	// Allocation 4:3:2:1 with weights 4:3:2:1 is perfectly weighted-fair.
	xs := []float64{4, 3, 2, 1}
	ws := []int64{4, 3, 2, 1}
	if got := WeightedJain(xs, ws); math.Abs(got-1) > 1e-12 {
		t.Fatalf("WeightedJain = %v, want 1", got)
	}
	// Equal allocation under unequal weights is unfair.
	if got := WeightedJain([]float64{1, 1, 1, 1}, ws); got >= 0.99 {
		t.Fatalf("WeightedJain(equal alloc, 4:3:2:1) = %v, want < 0.99", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic on length mismatch")
		}
	}()
	WeightedJain([]float64{1}, []int64{1, 2})
}
