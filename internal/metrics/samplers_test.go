package metrics

import (
	"testing"

	"dynaq/internal/buffer"
	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

type devNull struct{}

func (devNull) Receive(*packet.Packet) {}

func newMeteredPort(t *testing.T, s *sim.Simulator) *netsim.Port {
	t.Helper()
	p, err := netsim.NewPort(s, netsim.PortConfig{
		Rate: units.Gbps, Buffer: 100 * units.KB, Queues: 2,
		Scheduler: sched.EqualDRR(2, 1500),
		Admission: buffer.NewBestEffort(),
		Link:      netsim.NewLink(s, 0, devNull{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestThroughputSamplerMeasuresRate(t *testing.T) {
	s := sim.New()
	p := newMeteredPort(t, s)
	ts := NewThroughputSampler(s, p, 10*units.Millisecond)
	// Feed queue 0 one packet every serialization slot for 35ms: the port
	// stays busy, so each 10ms sample sees ~10ms/12µs packets.
	var feed func()
	feed = func() {
		if s.Now() >= units.Time(35*units.Millisecond) {
			return
		}
		p.Enqueue(&packet.Packet{Kind: packet.Data, Size: 1500, Class: 0})
		s.After(12*units.Microsecond, feed)
	}
	feed()
	s.RunUntil(units.Time(40 * units.Millisecond))
	ts.Stop()
	samples := ts.Samples()
	if len(samples) < 3 {
		t.Fatalf("samples = %d, want ≥ 3", len(samples))
	}
	// Steady-state samples run at ≈1Gbps on queue 0, 0 on queue 1.
	mid := samples[1]
	if mid.PerQueue[0] < 900*units.Mbps || mid.PerQueue[0] > units.Gbps {
		t.Fatalf("queue-0 rate = %v, want ≈1Gbps", mid.PerQueue[0])
	}
	if mid.PerQueue[1] != 0 {
		t.Fatalf("queue-1 rate = %v, want 0", mid.PerQueue[1])
	}
	if mid.Aggregate != mid.PerQueue[0] {
		t.Fatal("aggregate must sum the queues")
	}
	// Sample timestamps are one interval apart.
	if samples[1].At.Sub(samples[0].At) != 10*units.Millisecond {
		t.Fatal("sampling interval wrong")
	}
}

func TestThroughputSamplerStop(t *testing.T) {
	s := sim.New()
	p := newMeteredPort(t, s)
	ts := NewThroughputSampler(s, p, 10*units.Millisecond)
	s.RunUntil(units.Time(25 * units.Millisecond))
	ts.Stop()
	n := len(ts.Samples())
	s.RunUntil(units.Time(100 * units.Millisecond))
	if len(ts.Samples()) != n {
		t.Fatal("sampler kept sampling after Stop")
	}
}

func TestQueueTraceSamplesEveryTransition(t *testing.T) {
	s := sim.New()
	p := newMeteredPort(t, s)
	qt := NewQueueTrace(p, 1)
	for i := 0; i < 3; i++ {
		p.Enqueue(&packet.Packet{Kind: packet.Data, Size: 1500, Class: 1})
	}
	s.Run()
	// 3 enqueues + 3 dequeues.
	if got := len(qt.Samples()); got != 6 {
		t.Fatalf("samples = %d, want 6", got)
	}
	// First sample fires on the push (one packet buffered); the second on
	// the immediate pop into the transmitter (queue drained again).
	if qt.Samples()[0].PerQueue[1] != 1500 {
		t.Fatalf("first sample queue-1 = %v, want 1500", qt.Samples()[0].PerQueue[1])
	}
	if qt.Samples()[1].PerQueue[1] != 0 {
		t.Fatalf("second sample queue-1 = %v, want 0", qt.Samples()[1].PerQueue[1])
	}
}

func TestQueueTraceStride(t *testing.T) {
	s := sim.New()
	p := newMeteredPort(t, s)
	qt := NewQueueTrace(p, 4)
	for i := 0; i < 16; i++ {
		p.Enqueue(&packet.Packet{Kind: packet.Data, Size: 1500, Class: 0})
	}
	s.Run()
	// 32 transitions decimated by 4 → 8 samples.
	if got := len(qt.Samples()); got != 8 {
		t.Fatalf("samples = %d, want 8", got)
	}
	// Stride < 1 falls back to 1.
	qt2 := NewQueueTrace(p, 0)
	p.Enqueue(&packet.Packet{Kind: packet.Data, Size: 1500, Class: 0})
	s.Run()
	if len(qt2.Samples()) == 0 {
		t.Fatal("zero-stride trace recorded nothing")
	}
}

func TestQueueTraceWindow(t *testing.T) {
	qt := &QueueTrace{}
	for i := 0; i < 100; i++ {
		qt.samples = append(qt.samples, QueueSample{At: units.Time(i)})
	}
	w := qt.Window(0.5, 10)
	if len(w) != 10 || w[0].At != 50 {
		t.Fatalf("window = %d samples from %v", len(w), w[0].At)
	}
	// Clamped at the tail.
	w = qt.Window(0.99, 10)
	if len(w) != 1 {
		t.Fatalf("tail window = %d samples, want 1", len(w))
	}
	if got := qt.Window(0.5, 0); got != nil {
		t.Fatal("zero-length window should be nil")
	}
	empty := &QueueTrace{}
	if got := empty.Window(0.5, 10); got != nil {
		t.Fatal("empty trace window should be nil")
	}
}
