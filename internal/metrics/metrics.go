// Package metrics implements the paper's measurement instruments: flow
// completion time collection with the small/large breakdown of §V, Jain's
// fairness index, per-queue throughput sampling, and queue-length traces.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"dynaq/internal/units"
)

// Flow-size buckets (§V "Performance Metric"): small ≤ 100KB, large > 10MB,
// medium in between (the paper omits medium results as similar to overall).
const (
	SmallFlowMax = 100 * units.KB
	LargeFlowMin = 10 * units.MB
)

// Bucket classifies flows by size.
type Bucket uint8

// Buckets.
const (
	AllFlows Bucket = iota
	SmallFlows
	MediumFlows
	LargeFlows
)

// String implements fmt.Stringer.
func (b Bucket) String() string {
	switch b {
	case AllFlows:
		return "overall"
	case SmallFlows:
		return "small"
	case MediumFlows:
		return "medium"
	case LargeFlows:
		return "large"
	default:
		return fmt.Sprintf("Bucket(%d)", uint8(b))
	}
}

// BucketOf returns the bucket a flow of the given size falls in.
func BucketOf(size units.ByteSize) Bucket {
	switch {
	case size <= SmallFlowMax:
		return SmallFlows
	case size > LargeFlowMin:
		return LargeFlows
	default:
		return MediumFlows
	}
}

// FCTRecord is one completed flow.
type FCTRecord struct {
	Size units.ByteSize
	FCT  units.Duration
}

// FCTCollector accumulates flow completion times.
type FCTCollector struct {
	records []FCTRecord
}

// NewFCTCollector returns an empty collector.
func NewFCTCollector() *FCTCollector { return &FCTCollector{} }

// Add records a completed flow.
func (c *FCTCollector) Add(size units.ByteSize, fct units.Duration) {
	c.records = append(c.records, FCTRecord{Size: size, FCT: fct})
}

// Count returns the number of completions in the bucket.
func (c *FCTCollector) Count(b Bucket) int {
	n := 0
	for _, r := range c.records {
		if b == AllFlows || BucketOf(r.Size) == b {
			n++
		}
	}
	return n
}

// Avg returns the mean FCT over a bucket (0 when empty).
func (c *FCTCollector) Avg(b Bucket) units.Duration {
	var sum, n int64
	for _, r := range c.records {
		if b == AllFlows || BucketOf(r.Size) == b {
			sum += int64(r.FCT)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return units.Duration(sum / n)
}

// Percentile returns the p-quantile of the bucket's FCTs using the
// nearest-rank method. The edges are pinned explicitly rather than left to
// rank arithmetic: p ≤ 0 returns the minimum, p ≥ 1 the maximum, and a
// single-sample bucket returns that sample for every p. An empty bucket
// returns 0.
func (c *FCTCollector) Percentile(b Bucket, p float64) units.Duration {
	var xs []units.Duration
	for _, r := range c.records {
		if b == AllFlows || BucketOf(r.Size) == b {
			xs = append(xs, r.FCT)
		}
	}
	if len(xs) == 0 {
		return 0
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	if p <= 0 {
		return xs[0]
	}
	if p >= 1 {
		return xs[len(xs)-1]
	}
	rank := int(math.Ceil(p*float64(len(xs)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(xs) {
		rank = len(xs) - 1
	}
	return xs[rank]
}

// Len returns the total number of completions recorded, across all buckets.
// Unlike Count(AllFlows) it does not scan, so run loops can poll it.
func (c *FCTCollector) Len() int { return len(c.records) }

// Records returns a copy of all completions.
func (c *FCTCollector) Records() []FCTRecord {
	return append([]FCTRecord(nil), c.records...)
}

// Jain computes Jain's fairness index J = (Σx)² / (n·Σx²) over the positive
// entries' count n... precisely: over all provided values. J = 1 for equal
// shares, 1/n for a single hog. An empty or all-zero input returns 0.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	//dynaqlint:allow float-eq exact-zero divide guard: only a true zero denominator would make the Jain index NaN
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// WeightedJain computes Jain's index over normalized shares x_i/w_i, so a
// perfectly weighted-fair allocation scores 1 regardless of the weights.
func WeightedJain(xs []float64, ws []int64) float64 {
	if len(xs) != len(ws) {
		panic("metrics: WeightedJain length mismatch")
	}
	norm := make([]float64, len(xs))
	for i := range xs {
		if ws[i] <= 0 {
			panic("metrics: WeightedJain needs positive weights")
		}
		norm[i] = xs[i] / float64(ws[i])
	}
	return Jain(norm)
}
