package metrics

import (
	"testing"

	"dynaq/internal/units"
)

func TestPercentileEdges(t *testing.T) {
	c := NewFCTCollector()
	for _, fct := range []units.Duration{30, 10, 20} {
		c.Add(1*units.KB, fct)
	}
	cases := []struct {
		p    float64
		want units.Duration
	}{
		{-0.5, 10}, // below range → minimum
		{0, 10},    // exactly zero → minimum
		{0.5, 20},  // median by nearest rank
		{1, 30},    // exactly one → maximum
		{1.5, 30},  // above range → maximum
	}
	for _, tc := range cases {
		if got := c.Percentile(AllFlows, tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPercentileSingleSample(t *testing.T) {
	c := NewFCTCollector()
	c.Add(1*units.KB, 42)
	for _, p := range []float64{-1, 0, 0.01, 0.5, 0.99, 1, 2} {
		if got := c.Percentile(AllFlows, p); got != 42 {
			t.Errorf("single-sample Percentile(%v) = %v, want 42", p, got)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	c := NewFCTCollector()
	for _, p := range []float64{0, 0.5, 1} {
		if got := c.Percentile(AllFlows, p); got != 0 {
			t.Errorf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}
}

func TestLen(t *testing.T) {
	c := NewFCTCollector()
	if c.Len() != 0 {
		t.Fatalf("empty Len = %d", c.Len())
	}
	c.Add(10*units.KB, 1)
	c.Add(20*units.MB, 2)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Len() != c.Count(AllFlows) {
		t.Fatalf("Len %d != Count(AllFlows) %d", c.Len(), c.Count(AllFlows))
	}
}
