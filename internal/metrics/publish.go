package metrics

import (
	"strconv"

	"dynaq/internal/telemetry"
	"dynaq/internal/units"
)

// Publish makes the sampler a front-end over a telemetry registry: every
// sample updates per-queue and aggregate throughput gauges, and — when ew is
// non-nil — appends a "throughput" event carrying the full per-queue vector
// to the run's event stream. The in-memory sample series keeps accumulating
// either way, so figure code is unaffected.
func (ts *ThroughputSampler) Publish(reg *telemetry.Registry, ew telemetry.EventWriter, port string) {
	pl := telemetry.L("port", port)
	per := make([]*telemetry.Gauge, ts.port.NumQueues())
	for i := range per {
		per[i] = reg.Gauge("throughput_bps", pl, telemetry.L("queue", strconv.Itoa(i)))
	}
	agg := reg.Gauge("throughput_aggregate_bps", pl)
	samples := reg.Counter("throughput_samples_total", pl)
	ts.publish = func(now units.Time, rates []units.Rate, sum units.Rate) {
		for i, r := range rates {
			per[i].Set(int64(r))
		}
		agg.Set(int64(sum))
		samples.Inc()
		if ew != nil {
			bps := make([]int64, len(rates))
			for i, r := range rates {
				bps[i] = int64(r)
			}
			ew.Event(now, "throughput",
				telemetry.F("port", port),
				telemetry.F("agg_bps", int64(sum)),
				telemetry.F("bps", bps))
		}
	}
}

// Publish makes the trace a front-end over a telemetry registry: every kept
// sample bumps a per-port sample counter and — when ew is non-nil — appends
// a "qlen" event with the per-queue occupancy vector to the run's event
// stream. Stride decimation applies to the published stream exactly as it
// does to the in-memory one.
func (qt *QueueTrace) Publish(reg *telemetry.Registry, ew telemetry.EventWriter, port string) {
	samples := reg.Counter("queue_trace_samples_total", telemetry.L("port", port))
	qt.publish = func(now units.Time, per []units.ByteSize) {
		samples.Inc()
		if ew != nil {
			bytes := make([]int64, len(per))
			for i, b := range per {
				bytes[i] = int64(b)
			}
			ew.Event(now, "qlen",
				telemetry.F("port", port),
				telemetry.F("bytes", bytes))
		}
	}
}
