package metrics

import (
	"dynaq/internal/netsim"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

// ThroughputSample is one interval's per-queue delivered rates at a port.
type ThroughputSample struct {
	At        units.Time
	PerQueue  []units.Rate
	Aggregate units.Rate
}

// ThroughputSampler periodically differences a port's per-queue transmit
// counters — the paper's "measure per-queue throughput every 0.5 seconds"
// (testbed) / "every 10ms" (simulation).
type ThroughputSampler struct {
	sim      *sim.Simulator
	port     *netsim.Port
	interval units.Duration
	prev     []units.ByteSize
	samples  []ThroughputSample
	timer    *sim.Timer
	publish  func(now units.Time, per []units.Rate, agg units.Rate) // set by Publish
}

// NewThroughputSampler attaches a sampler to port with the given interval
// and starts it immediately. The sampler re-arms one pooled timer per tick,
// so long runs sample without allocating events.
func NewThroughputSampler(s *sim.Simulator, port *netsim.Port, interval units.Duration) *ThroughputSampler {
	if interval <= 0 {
		panic("metrics: sampler interval must be positive")
	}
	ts := &ThroughputSampler{
		sim:      s,
		port:     port,
		interval: interval,
		prev:     make([]units.ByteSize, port.NumQueues()),
	}
	ts.timer = s.NewTimer(ts.tick)
	ts.timer.Reset(interval)
	return ts
}

func (ts *ThroughputSampler) tick() {
	ts.sample(ts.sim.Now())
	ts.timer.Reset(ts.interval)
}

func (ts *ThroughputSampler) sample(now units.Time) {
	n := ts.port.NumQueues()
	per := make([]units.Rate, n)
	var agg units.Rate
	for i := 0; i < n; i++ {
		cur := ts.port.QueueTxBytes(i)
		per[i] = units.Throughput(cur-ts.prev[i], ts.interval)
		ts.prev[i] = cur
		agg += per[i]
	}
	ts.samples = append(ts.samples, ThroughputSample{At: now, PerQueue: per, Aggregate: agg})
	if ts.publish != nil {
		ts.publish(now, per, agg)
	}
}

// Stop halts sampling.
func (ts *ThroughputSampler) Stop() { ts.timer.Stop() }

// Samples returns the collected series.
func (ts *ThroughputSampler) Samples() []ThroughputSample { return ts.samples }

// QueueSample is one enqueue/dequeue-triggered occupancy snapshot.
type QueueSample struct {
	At       units.Time
	PerQueue []units.ByteSize
}

// QueueTrace records per-queue occupancy on every enqueue and dequeue
// operation, the paper's queue-evolution measurement ("we measure per-queue
// buffer occupancy every enqueueing and dequeueing operations and obtain 1K
// sequential samples"). Stride-decimation keeps memory bounded on long
// runs; Window extracts the paper's 1K sequential samples.
type QueueTrace struct {
	stride  int
	count   int
	samples []QueueSample
	publish func(now units.Time, per []units.ByteSize) // set by Publish
}

// NewQueueTrace attaches a trace to port, keeping every stride-th sample
// (stride 1 keeps all).
func NewQueueTrace(port *netsim.Port, stride int) *QueueTrace {
	if stride < 1 {
		stride = 1
	}
	qt := &QueueTrace{stride: stride}
	port.Observe(qt)
	return qt
}

// ObservePort implements netsim.PortObserver.
func (qt *QueueTrace) ObservePort(now units.Time, p *netsim.Port) {
	qt.count++
	if qt.count%qt.stride != 0 {
		return
	}
	per := make([]units.ByteSize, p.NumQueues())
	for i := range per {
		per[i] = p.QueueLen(i)
	}
	qt.samples = append(qt.samples, QueueSample{At: now, PerQueue: per})
	if qt.publish != nil {
		qt.publish(now, per)
	}
}

// Samples returns all kept samples.
func (qt *QueueTrace) Samples() []QueueSample { return qt.samples }

// Window returns n sequential samples starting at the given fraction
// (0 ≤ frac < 1) of the trace — "1K sequential samples at random time".
func (qt *QueueTrace) Window(frac float64, n int) []QueueSample {
	if len(qt.samples) == 0 || n <= 0 {
		return nil
	}
	start := int(frac * float64(len(qt.samples)))
	if start < 0 {
		start = 0
	}
	if start >= len(qt.samples) {
		start = len(qt.samples) - 1
	}
	end := start + n
	if end > len(qt.samples) {
		end = len(qt.samples)
	}
	return qt.samples[start:end]
}
