// Package units defines the physical quantities used throughout the
// simulator: simulated time, data sizes, and link rates.
//
// Simulated time is kept as an int64 count of picoseconds. At 100 Gbps one
// byte serializes in 80 ps, so picosecond resolution keeps per-byte
// serialization times exact where nanoseconds would accumulate rounding
// error. The int64 range still covers over 100 days of simulated time.
package units

import (
	"fmt"
	"math"
	mathbits "math/bits"
	"time"
)

// Time is a point in simulated time, in picoseconds since simulation start.
type Time int64

// Duration is a span of simulated time, in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// MaxTime is the largest representable simulation time. It is used as the
// "never" sentinel for unarmed timers.
const MaxTime Time = math.MaxInt64

// MaxDuration is the largest representable duration. Transmit saturates
// here instead of wrapping when a transfer projects past the horizon.
const MaxDuration Duration = math.MaxInt64

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time with an adaptive unit.
func (t Time) String() string { return Duration(t).String() }

// FromStd converts a time.Duration to a simulated Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) * Nanosecond }

// Std converts a simulated Duration to a time.Duration, rounding toward zero.
func (d Duration) Std() time.Duration { return time.Duration(d / Nanosecond) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Scale multiplies the duration by a dimensionless factor.
func (d Duration) Scale(f float64) Duration {
	return Duration(math.Round(float64(d) * f))
}

// String renders the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d%Second == 0:
		return fmt.Sprintf("%ds", d/Second)
	case d%Millisecond == 0:
		return fmt.Sprintf("%dms", d/Millisecond)
	case d%Microsecond == 0:
		return fmt.Sprintf("%dus", d/Microsecond)
	case d%Nanosecond == 0:
		return fmt.Sprintf("%dns", d/Nanosecond)
	default:
		return fmt.Sprintf("%dps", int64(d))
	}
}

// Seconds constructs a Duration from floating-point seconds.
func Seconds(s float64) Duration {
	return Duration(math.Round(s * float64(Second)))
}

// ByteSize is a quantity of data in bytes.
type ByteSize int64

// Common sizes. KB/MB/GB follow the networking convention of powers of ten
// used by the paper ("85KB of buffer", "100KB demotion threshold").
const (
	Byte ByteSize = 1
	KB            = 1000 * Byte
	MB            = 1000 * KB
	GB            = 1000 * MB

	// KiB is the power-of-two kilobyte, used where the paper means
	// MTU-style sizes (1.5KB quantum = 1500 bytes, so decimal; kept for
	// completeness of the API).
	KiB = 1024 * Byte
)

// Bits returns the size in bits.
func (b ByteSize) Bits() int64 { return int64(b) * 8 }

// String renders the size with an adaptive decimal unit.
func (b ByteSize) String() string {
	switch {
	case b >= GB && b%GB == 0:
		return fmt.Sprintf("%dGB", b/GB)
	case b >= MB && b%MB == 0:
		return fmt.Sprintf("%dMB", b/MB)
	case b >= KB && b%KB == 0:
		return fmt.Sprintf("%dKB", b/KB)
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// Rate is a link or flow rate in bits per second.
type Rate int64

// Common rates.
const (
	BitPerSecond Rate = 1
	Kbps              = 1000 * BitPerSecond
	Mbps              = 1000 * Kbps
	Gbps              = 1000 * Mbps
)

// String renders the rate with an adaptive unit.
func (r Rate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", r/Gbps)
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMbps", r/Mbps)
	case r >= Kbps && r%Kbps == 0:
		return fmt.Sprintf("%dKbps", r/Kbps)
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// Transmit returns the serialization delay of b bytes at rate r.
func (r Rate) Transmit(b ByteSize) Duration {
	if r <= 0 {
		panic("units: non-positive rate")
	}
	if b <= 0 {
		return 0
	}
	// duration_ps = bits * 1e12 / r, computed in 128-bit arithmetic: the
	// intermediate product overflows int64 for transfers past a few MB, and
	// a wrapped negative duration would arm simulator timers in the past.
	// Saturates at MaxDuration when the true duration exceeds the horizon.
	hi, lo := mathbits.Mul64(uint64(b.Bits()), uint64(Second))
	if hi >= uint64(r) {
		return MaxDuration
	}
	q, _ := mathbits.Div64(hi, lo, uint64(r))
	if q > uint64(MaxDuration) {
		return MaxDuration
	}
	return Duration(q)
}

// BytesIn returns how many whole bytes rate r delivers in duration d.
func (r Rate) BytesIn(d Duration) ByteSize {
	if d <= 0 {
		return 0
	}
	// bytes = r * d / (8 * 1e12), computed in 128-bit arithmetic so Gbps
	// rates over long spans cannot overflow the intermediate product.
	// Saturates at the largest ByteSize if the true count does not fit.
	const div = uint64(8) * uint64(Second)
	hi, lo := mathbits.Mul64(uint64(r), uint64(d))
	if hi >= div {
		return ByteSize(math.MaxInt64)
	}
	q, _ := mathbits.Div64(hi, lo, div)
	if q > math.MaxInt64 {
		return ByteSize(math.MaxInt64)
	}
	return ByteSize(q)
}

// BDP returns the bandwidth-delay product C × RTT in bytes.
func BDP(c Rate, rtt Duration) ByteSize { return c.BytesIn(rtt) }

// Throughput returns the average rate of b bytes delivered over d.
func Throughput(b ByteSize, d Duration) Rate {
	if d <= 0 {
		return 0
	}
	return Rate(float64(b.Bits()) / d.Seconds())
}
