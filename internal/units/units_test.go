package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDurationString(t *testing.T) {
	tests := []struct {
		give Duration
		want string
	}{
		{0, "0s"},
		{Second, "1s"},
		{500 * Millisecond, "500ms"},
		{84 * Microsecond, "84us"},
		{800 * Nanosecond, "800ns"},
		{7 * Picosecond, "7ps"},
		{2 * Second, "2s"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(tt.give), got, tt.want)
		}
	}
}

func TestByteSizeString(t *testing.T) {
	tests := []struct {
		give ByteSize
		want string
	}{
		{85 * KB, "85KB"},
		{1 * MB, "1MB"},
		{192 * KB, "192KB"},
		{1500 * Byte, "1500B"},
		{2 * GB, "2GB"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", int64(tt.give), got, tt.want)
		}
	}
}

func TestRateString(t *testing.T) {
	tests := []struct {
		give Rate
		want string
	}{
		{Gbps, "1Gbps"},
		{100 * Gbps, "100Gbps"},
		{10 * Mbps, "10Mbps"},
		{999, "999bps"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Rate(%d).String() = %q, want %q", int64(tt.give), got, tt.want)
		}
	}
}

func TestTransmit(t *testing.T) {
	tests := []struct {
		rate Rate
		size ByteSize
		want Duration
	}{
		// 1500B at 1Gbps = 12000 bits / 1e9 bps = 12 us.
		{Gbps, 1500, 12 * Microsecond},
		// 1500B at 100Gbps = 120 ns.
		{100 * Gbps, 1500, 120 * Nanosecond},
		// 1B at 100Gbps = 80 ps (the case that motivates picoseconds).
		{100 * Gbps, 1, 80 * Picosecond},
		// 9000B jumbo at 100Gbps = 720 ns.
		{100 * Gbps, 9000, 720 * Nanosecond},
		{10 * Gbps, 0, 0},
	}
	for _, tt := range tests {
		if got := tt.rate.Transmit(tt.size); got != tt.want {
			t.Errorf("%v.Transmit(%v) = %v, want %v", tt.rate, tt.size, got, tt.want)
		}
	}
}

func TestTransmitLargeNoOverflow(t *testing.T) {
	// 1GB at 1Gbps should be exactly 8 seconds, without int64 overflow in
	// the intermediate product.
	if got, want := Gbps.Transmit(GB), 8*Second; got != want {
		t.Fatalf("Transmit(1GB@1Gbps) = %v, want %v", got, want)
	}
	// Regression: bits×1e12 wraps int64 past ~1.15MB, which once produced a
	// NEGATIVE duration (and a simulator timer armed in the past). 30MB at
	// 40Gbps is exactly 6ms.
	if got, want := (40 * Gbps).Transmit(30*MB), 6*Millisecond; got != want {
		t.Fatalf("Transmit(30MB@40Gbps) = %v, want %v", got, want)
	}
	// A transfer whose true duration exceeds the horizon saturates instead
	// of wrapping: 30MB at 1 bps is 2.4e8 seconds, past MaxDuration.
	if got := Rate(1).Transmit(30 * MB); got != MaxDuration {
		t.Fatalf("Transmit(30MB@1bps) = %v, want MaxDuration", got)
	}
	if got := Rate(1).Transmit(30 * MB); got <= 0 {
		t.Fatalf("Transmit must never go non-positive for positive sizes, got %v", got)
	}
}

func TestBytesInLargeNoOverflow(t *testing.T) {
	// Regression: the remainder term (r%1e12)×rem overflowed int64 for Gbps
	// rates over sub-second spans. 100Gbps for 0.9s is exactly 11.25GB.
	if got, want := (100 * Gbps).BytesIn(Duration(9*Second/10)), ByteSize(11_250_000_000); got != want {
		t.Fatalf("BytesIn(0.9s@100Gbps) = %v, want %v", got, want)
	}
	// Saturates rather than wrapping when the byte count cannot fit.
	if got := Rate(1e12).BytesIn(MaxDuration); got <= 0 {
		t.Fatalf("BytesIn must never go negative, got %v", got)
	}
}

func TestBDP(t *testing.T) {
	tests := []struct {
		c    Rate
		rtt  Duration
		want ByteSize
	}{
		// Paper testbed: 1Gbps, ~500us RTT -> 62.5KB.
		{Gbps, 500 * Microsecond, 62500},
		// Paper sim: 10Gbps, 84us RTT -> 105KB.
		{10 * Gbps, 84 * Microsecond, 105000},
		// Paper sim: 100Gbps, 40us -> 500KB.
		{100 * Gbps, 40 * Microsecond, 500000},
	}
	for _, tt := range tests {
		if got := BDP(tt.c, tt.rtt); got != tt.want {
			t.Errorf("BDP(%v, %v) = %v, want %v", tt.c, tt.rtt, got, tt.want)
		}
	}
}

func TestBytesInInverseOfTransmit(t *testing.T) {
	f := func(rawSize uint16, rateSel uint8) bool {
		size := ByteSize(rawSize)
		rates := []Rate{Gbps, 10 * Gbps, 40 * Gbps, 100 * Gbps}
		r := rates[int(rateSel)%len(rates)]
		d := r.Transmit(size)
		got := r.BytesIn(d)
		// BytesIn truncates, so it can be off by at most one byte below.
		return got == size || got == size-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThroughput(t *testing.T) {
	// 125MB in one second is 1Gbps.
	if got := Throughput(125*MB, Second); got != Gbps {
		t.Errorf("Throughput(125MB, 1s) = %v, want 1Gbps", got)
	}
	if got := Throughput(125*MB, 0); got != 0 {
		t.Errorf("Throughput(_, 0) = %v, want 0", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(500 * Microsecond)
	if got := t1.Sub(t0); got != 500*Microsecond {
		t.Errorf("Sub = %v, want 500us", got)
	}
	if got := t1.Seconds(); got != 0.0005 {
		t.Errorf("Seconds = %v, want 0.0005", got)
	}
}

func TestStdConversion(t *testing.T) {
	d := FromStd(10 * time.Millisecond)
	if d != 10*Millisecond {
		t.Fatalf("FromStd = %v, want 10ms", d)
	}
	if d.Std() != 10*time.Millisecond {
		t.Fatalf("Std = %v, want 10ms", d.Std())
	}
}

func TestSecondsConstructor(t *testing.T) {
	if got := Seconds(0.5); got != 500*Millisecond {
		t.Errorf("Seconds(0.5) = %v, want 500ms", got)
	}
	if got := Seconds(1e-6); got != Microsecond {
		t.Errorf("Seconds(1e-6) = %v, want 1us", got)
	}
}

func TestScale(t *testing.T) {
	if got := (100 * Microsecond).Scale(1.5); got != 150*Microsecond {
		t.Errorf("Scale(1.5) = %v, want 150us", got)
	}
}
