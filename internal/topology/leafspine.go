package topology

import (
	"fmt"

	"dynaq/internal/buffer"
	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/transport"
	"dynaq/internal/units"
)

// LeafSpineConfig describes the non-blocking two-tier fabric of §V-B2: every
// leaf has HostsPerLeaf downlinks and one uplink to each spine, all at the
// same rate (12 leaves × 12 spines × 12 hosts in the paper).
type LeafSpineConfig struct {
	// Leaves and Spines set the fabric size.
	Leaves, Spines int
	// HostsPerLeaf hosts hang off each leaf.
	HostsPerLeaf int
	// Rate is the speed of every link (the fabric is non-blocking).
	Rate units.Rate
	// Delay is the one-way propagation per link. A spine-crossing path is
	// host→leaf→spine→leaf→host, so the base RTT is 8·Delay plus
	// serialization.
	Delay units.Duration
	// Buffer is the per-port buffer size on every switch port.
	Buffer units.ByteSize
	// Queues is the number of service queues per switch port.
	Queues int

	// FailureAware enables failure-aware ECMP: leaves re-hash flows away
	// from spines whose path (leaf uplink or spine downlink toward the
	// destination leaf) has been down longer than DetectionDelay. On a
	// clean network the routing is bit-identical to static ECMP.
	FailureAware bool
	// DetectionDelay is how long an outage must last before failure-aware
	// routing avoids the path — the convergence time of a real fabric's
	// liveness probes. Zero with FailureAware set defaults to 1ms.
	DetectionDelay units.Duration

	Factories
}

// LeafSpine is an assembled two-tier fabric.
type LeafSpine struct {
	Sim       *sim.Simulator
	Leaves    []*netsim.Switch
	Spines    []*netsim.Switch
	Hosts     []*netsim.Host
	Endpoints []*transport.Endpoint

	hostsPerLeaf int
}

// ecmpHash is a SplitMix64-style mixer: flows hash uniformly across spines
// regardless of id assignment order.
func ecmpHash(f packet.FlowID) uint64 {
	x := uint64(f) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewLeafSpine wires the fabric. Host ids are global: host h sits on leaf
// h / HostsPerLeaf.
func NewLeafSpine(s *sim.Simulator, cfg LeafSpineConfig) (*LeafSpine, error) {
	switch {
	case cfg.Leaves < 2:
		return nil, fmt.Errorf("topology: leaf-spine needs ≥2 leaves, got %d", cfg.Leaves)
	case cfg.Spines < 1:
		return nil, fmt.Errorf("topology: leaf-spine needs ≥1 spine, got %d", cfg.Spines)
	case cfg.HostsPerLeaf < 1:
		return nil, fmt.Errorf("topology: leaf-spine needs ≥1 host per leaf, got %d", cfg.HostsPerLeaf)
	case cfg.NewScheduler == nil || cfg.NewAdmission == nil:
		return nil, fmt.Errorf("topology: leaf-spine needs scheduler and admission factories")
	}
	if cfg.FailureAware && cfg.DetectionDelay == 0 {
		cfg.DetectionDelay = units.Millisecond
	}
	ls := &LeafSpine{Sim: s, hostsPerLeaf: cfg.HostsPerLeaf}
	nHosts := cfg.Leaves * cfg.HostsPerLeaf
	for h := 0; h < nHosts; h++ {
		ls.Hosts = append(ls.Hosts, netsim.NewHost(h, nil))
	}

	newPort := func(to netsim.Node) (*netsim.Port, error) {
		schd, err := cfg.NewScheduler(cfg.Queues)
		if err != nil {
			return nil, err
		}
		adm, err := cfg.NewAdmission(cfg.Buffer, cfg.Queues)
		if err != nil {
			return nil, err
		}
		return netsim.NewPort(s, netsim.PortConfig{
			Rate:      cfg.Rate,
			Buffer:    cfg.Buffer,
			Queues:    cfg.Queues,
			Scheduler: schd,
			Admission: adm,
			Link:      netsim.NewLink(s, cfg.Delay, to),
		})
	}

	// Spines first (their downlinks point at leaves, so build with
	// placeholder targets resolved through a closure over ls.Leaves).
	// Simplest is to create leaves with downlinks to hosts, then spines
	// with downlinks to the now-existing leaves, then patch leaf uplinks —
	// but links are immutable. Instead: leaves get host downlinks and
	// spine uplinks in one pass, which requires spines to exist, while
	// spine downlinks require leaves. Break the cycle with a relay node.
	relays := make([]*relayNode, cfg.Spines)
	for i := range relays {
		relays[i] = &relayNode{}
	}

	// Leaves: ports [0, HostsPerLeaf) face hosts, [HostsPerLeaf,
	// HostsPerLeaf+Spines) face spines (through relays).
	for l := 0; l < cfg.Leaves; l++ {
		l := l
		ports := make([]*netsim.Port, 0, cfg.HostsPerLeaf+cfg.Spines)
		for j := 0; j < cfg.HostsPerLeaf; j++ {
			p, err := newPort(ls.Hosts[l*cfg.HostsPerLeaf+j])
			if err != nil {
				return nil, err
			}
			ports = append(ports, p)
		}
		for sp := 0; sp < cfg.Spines; sp++ {
			p, err := newPort(relays[sp])
			if err != nil {
				return nil, err
			}
			ports = append(ports, p)
		}
		uplinks := ports[cfg.HostsPerLeaf:]
		// Scratch for failure-aware path selection, reused per packet so
		// the hot path stays allocation-free.
		live := make([]int, 0, cfg.Spines)
		route := func(p *packet.Packet) int {
			dstLeaf := p.Dst / cfg.HostsPerLeaf
			if dstLeaf == l {
				return p.Dst % cfg.HostsPerLeaf
			}
			h := ecmpHash(p.Flow)
			if !cfg.FailureAware {
				return cfg.HostsPerLeaf + int(h%uint64(cfg.Spines))
			}
			// A spine is a live next hop when both segments of the path
			// through it — our uplink and its downlink toward the
			// destination leaf — have not been detected dead. With every
			// spine live this reduces exactly to static ECMP; with none
			// (detection not yet converged, or total fabric loss) fall
			// back to the static choice rather than blackhole locally.
			live = live[:0]
			for sp := 0; sp < cfg.Spines; sp++ {
				if uplinks[sp].Link().Usable(cfg.DetectionDelay) &&
					ls.Spines[sp].Port(dstLeaf).Link().Usable(cfg.DetectionDelay) {
					live = append(live, sp)
				}
			}
			if len(live) == 0 {
				return cfg.HostsPerLeaf + int(h%uint64(cfg.Spines))
			}
			return cfg.HostsPerLeaf + live[h%uint64(len(live))]
		}
		sw, err := netsim.NewSwitch(fmt.Sprintf("leaf%d", l), ports, route)
		if err != nil {
			return nil, err
		}
		ls.Leaves = append(ls.Leaves, sw)
	}

	// Spines: port l faces leaf l.
	for sp := 0; sp < cfg.Spines; sp++ {
		ports := make([]*netsim.Port, 0, cfg.Leaves)
		for l := 0; l < cfg.Leaves; l++ {
			p, err := newPort(ls.Leaves[l])
			if err != nil {
				return nil, err
			}
			ports = append(ports, p)
		}
		route := func(p *packet.Packet) int { return p.Dst / cfg.HostsPerLeaf }
		sw, err := netsim.NewSwitch(fmt.Sprintf("spine%d", sp), ports, route)
		if err != nil {
			return nil, err
		}
		ls.Spines = append(ls.Spines, sw)
		relays[sp].dst = sw
	}

	// Host NICs point at their leaf.
	for h, host := range ls.Hosts {
		nic, err := netsim.NewPort(s, netsim.PortConfig{
			Rate:      hostNICSpeedup * cfg.Rate,
			Buffer:    hostNICBuffer,
			Queues:    1,
			Scheduler: sched.NewSPQ(),
			Admission: buffer.NewBestEffort(),
			Link:      netsim.NewLink(s, cfg.Delay, ls.Leaves[h/cfg.HostsPerLeaf]),
		})
		if err != nil {
			return nil, err
		}
		host.SetEgress(nic)
		ls.Endpoints = append(ls.Endpoints, transport.NewEndpoint(s, host))
	}
	return ls, nil
}

// HostPort returns the leaf downlink port facing host h — where receiver-
// side congestion forms.
func (ls *LeafSpine) HostPort(h int) *netsim.Port {
	return ls.Leaves[h/ls.hostsPerLeaf].Port(h % ls.hostsPerLeaf)
}

// relayNode breaks the leaf↔spine construction cycle: a zero-delay
// forwarder whose destination is patched after both tiers exist.
type relayNode struct {
	dst netsim.Node
}

// Receive implements netsim.Node.
func (r *relayNode) Receive(p *packet.Packet) {
	if r.dst == nil {
		panic("topology: relay used before wiring completed")
	}
	r.dst.Receive(p)
}
