// Package topology assembles the two network shapes the paper evaluates on:
// a star (one switch emulating a compute rack, used by the testbed and the
// static-flow simulations) and a non-blocking leaf-spine fabric (the
// dynamic-flow simulations, §V-B2).
package topology

import (
	"fmt"

	"dynaq/internal/buffer"
	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/transport"
	"dynaq/internal/units"
)

// hostNICBuffer is the deep host egress buffer: hosts are window-limited,
// so the NIC queue only ever holds in-flight windows; it must never drop.
const hostNICBuffer = units.GB

// hostNICSpeedup makes host NICs serialize faster than switch ports so the
// standing queue always forms inside the managed switch buffer, never in
// the dumb NIC FIFO. This mirrors both reference substrates: in ns-2 the
// sender's access-link queue *is* the managed queue (there is no separate
// NIC stage), and the paper's qdisc prototype shapes its egress to 99.5% of
// NIC capacity for exactly this reason — "to avoid excessive buffering in
// NIC drivers and NIC hardware" (§IV-B).
const hostNICSpeedup = 4

// Factories build per-port scheduler and buffer-management instances; every
// port needs its own state.
type Factories struct {
	// NewScheduler returns a scheduler for a port with n service queues.
	NewScheduler func(n int) (sched.Scheduler, error)
	// NewAdmission returns the buffer-management scheme for a port with
	// buffer b and n service queues.
	NewAdmission func(b units.ByteSize, n int) (buffer.Admission, error)
}

// StarConfig describes a single-switch rack.
type StarConfig struct {
	// Hosts is the number of end hosts, each on its own switch port.
	Hosts int
	// Rate is the speed of every link.
	Rate units.Rate
	// Delay is the one-way propagation delay of each link. A data packet
	// and its ACK cross four links, so the base RTT is 4·Delay plus
	// serialization.
	Delay units.Duration
	// Buffer is the switch per-port buffer size B.
	Buffer units.ByteSize
	// Queues is the number of service queues per switch port.
	Queues int

	Factories
}

// Star is an assembled single-switch network.
type Star struct {
	Sim       *sim.Simulator
	Switch    *netsim.Switch
	Hosts     []*netsim.Host
	Endpoints []*transport.Endpoint
}

// NewStar wires cfg.Hosts hosts to one switch.
func NewStar(s *sim.Simulator, cfg StarConfig) (*Star, error) {
	if cfg.Hosts < 2 {
		return nil, fmt.Errorf("topology: star needs at least 2 hosts, got %d", cfg.Hosts)
	}
	if cfg.NewScheduler == nil || cfg.NewAdmission == nil {
		return nil, fmt.Errorf("topology: star needs scheduler and admission factories")
	}
	st := &Star{Sim: s}

	// Wiring order: hosts, then switch ports (links point at hosts), then
	// the switch, then host NICs (links point back at the switch).
	hosts := make([]*netsim.Host, cfg.Hosts)
	for i := 0; i < cfg.Hosts; i++ {
		hosts[i] = netsim.NewHost(i, nil)
	}
	ports := make([]*netsim.Port, cfg.Hosts)
	for i := 0; i < cfg.Hosts; i++ {
		schd, err := cfg.NewScheduler(cfg.Queues)
		if err != nil {
			return nil, fmt.Errorf("topology: port %d scheduler: %w", i, err)
		}
		adm, err := cfg.NewAdmission(cfg.Buffer, cfg.Queues)
		if err != nil {
			return nil, fmt.Errorf("topology: port %d admission: %w", i, err)
		}
		ports[i], err = netsim.NewPort(s, netsim.PortConfig{
			Rate:      cfg.Rate,
			Buffer:    cfg.Buffer,
			Queues:    cfg.Queues,
			Scheduler: schd,
			Admission: adm,
			Link:      netsim.NewLink(s, cfg.Delay, hosts[i]),
		})
		if err != nil {
			return nil, err
		}
	}
	route := func(p *packet.Packet) int { return p.Dst }
	sw, err := netsim.NewSwitch("tor", ports, route)
	if err != nil {
		return nil, err
	}
	st.Switch = sw

	st.Hosts = hosts
	st.Endpoints = make([]*transport.Endpoint, cfg.Hosts)
	for i := range hosts {
		nic, err := netsim.NewPort(s, netsim.PortConfig{
			Rate:      hostNICSpeedup * cfg.Rate,
			Buffer:    hostNICBuffer,
			Queues:    1,
			Scheduler: sched.NewSPQ(),
			Admission: buffer.NewBestEffort(),
			Link:      netsim.NewLink(s, cfg.Delay, sw),
		})
		if err != nil {
			return nil, err
		}
		hosts[i].SetEgress(nic)
		st.Endpoints[i] = transport.NewEndpoint(s, hosts[i])
	}
	return st, nil
}

// Port returns the switch output port facing host i — the port whose
// buffer-management behaviour the experiments measure.
func (st *Star) Port(i int) *netsim.Port { return st.Switch.Port(i) }
