package topology_test

import (
	"testing"

	"dynaq/internal/faults"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/topology"
	"dynaq/internal/transport"
	"dynaq/internal/units"
)

// TestLinkFailureRecovery injects a 300ms outage on the receiver's downlink
// mid-flow: every in-flight packet blackholes, the sender falls into RTO
// with exponential backoff, and once the link heals the flow must finish.
func TestLinkFailureRecovery(t *testing.T) {
	st := testbedStar(t, 2, bestEffort)
	done := false
	var fct units.Duration
	snd, err := st.Endpoints[0].StartFlow(transport.FlowConfig{
		Flow: 1, Dst: 1, Class: 0, Size: 20 * units.MB,
		OnComplete: func(d units.Duration) { done = true; fct = d },
	})
	if err != nil {
		t.Fatal(err)
	}
	link := st.Port(1).Link()
	st.Sim.At(units.Time(50*units.Millisecond), func() { link.SetDown(true) })
	st.Sim.At(units.Time(350*units.Millisecond), func() { link.SetDown(false) })
	st.Sim.RunUntil(units.Time(10 * units.Second))
	if !done {
		t.Fatalf("flow did not recover from the outage (sender: %+v)", snd.Stats())
	}
	if link.Lost() == 0 {
		t.Fatal("no packets blackholed during the outage")
	}
	if link.Down() {
		t.Fatal("link still down")
	}
	if snd.Stats().Timeouts == 0 {
		t.Fatal("outage should force RTO timeouts")
	}
	// FCT = ideal transfer (~170ms) + outage (300ms) + backoff overshoot;
	// anything past 5s would mean recovery stalled.
	if fct > 5*units.Second {
		t.Fatalf("recovery took %v", fct)
	}
}

// TestFailedSpineReroutesNothing documents ECMP behavior under failure:
// flows hashed to a dead spine stall until the path heals (static ECMP has
// no rerouting — the simulator models what the paper's fabric would do).
func TestFailedSpineStallsAffectedFlows(t *testing.T) {
	s, ls := leafSpine(t)
	// Find two flows hashing to different spines by probing flow ids.
	const probes = 8
	results := make(map[int]bool) // flow id → completed
	for id := 1; id <= probes; id++ {
		id := id
		if _, err := ls.Endpoints[0].StartFlow(transport.FlowConfig{
			Flow: flowID(id), Dst: 3, Class: 0, Size: 200 * units.KB,
			MinRTO:     5 * units.Millisecond,
			OnComplete: func(units.Duration) { results[id] = true },
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Cut every uplink of spine 0 after 1ms.
	s.At(units.Time(units.Millisecond), func() {
		for p := 0; p < ls.Spines[0].NumPorts(); p++ {
			ls.Spines[0].Port(p).Link().SetDown(true)
		}
	})
	s.RunUntil(units.Time(2 * units.Second))
	completed := len(results)
	if completed == 0 || completed == probes {
		t.Fatalf("completed = %d/%d; ECMP should split probes across spines "+
			"(flows on the dead spine stall, the rest finish)", completed, probes)
	}
	// Some completed, some stalled: exactly the static-ECMP failure mode.
}

// TestFailureAwareECMPReroutesAroundDeadSpine is the counterpart of the
// static-ECMP test above: with failure-aware routing, flows hashed to the
// dead spine re-hash onto the surviving one after the detection delay, so
// every probe completes instead of stranding.
func TestFailureAwareECMPReroutesAroundDeadSpine(t *testing.T) {
	s, ls := leafSpineAware(t, true, 500*units.Microsecond)
	const probes = 8
	results := make(map[int]bool)
	for id := 1; id <= probes; id++ {
		id := id
		if _, err := ls.Endpoints[0].StartFlow(transport.FlowConfig{
			Flow: flowID(id), Dst: 3, Class: 0, Size: 200 * units.KB,
			MinRTO:     5 * units.Millisecond,
			OnComplete: func(units.Duration) { results[id] = true },
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Whole-switch failure of spine 0 via its incident-link group: both its
	// downlinks and the leaves' uplinks toward it go dark at 1ms.
	reg := ls.FaultRegistry()
	eng := faults.NewEngine(s, reg, 1)
	if err := eng.Schedule([]faults.Spec{{Kind: "down", Target: "spine0", AtS: 0.001}}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(units.Time(2 * units.Second))
	if completed := len(results); completed != probes {
		t.Fatalf("completed = %d/%d; failure-aware ECMP should reroute every "+
			"flow off the dead spine after the detection delay", completed, probes)
	}
	if len(eng.Timeline()) == 0 {
		t.Fatal("fault engine applied no transitions")
	}
}

// TestFailureAwareECMPMatchesStaticWhenClean: on a fault-free network the
// failure-aware route function must pick exactly the spines static ECMP
// picks, so enabling the feature cannot perturb clean-network results.
func TestFailureAwareECMPMatchesStaticWhenClean(t *testing.T) {
	run := func(aware bool) map[int]units.Duration {
		s, ls := leafSpineAware(t, aware, 500*units.Microsecond)
		fcts := make(map[int]units.Duration)
		for id := 1; id <= 6; id++ {
			id := id
			if _, err := ls.Endpoints[0].StartFlow(transport.FlowConfig{
				Flow: flowID(id), Dst: 3, Class: 0, Size: 100 * units.KB,
				OnComplete: func(d units.Duration) { fcts[id] = d },
			}); err != nil {
				t.Fatal(err)
			}
		}
		s.RunUntil(units.Time(2 * units.Second))
		return fcts
	}
	static, aware := run(false), run(true)
	if len(static) != 6 || len(aware) != 6 {
		t.Fatalf("completions: static %d, aware %d, want 6 each", len(static), len(aware))
	}
	for id, d := range static {
		if aware[id] != d {
			t.Fatalf("flow %d: clean-network FCT diverged: static %v, aware %v", id, d, aware[id])
		}
	}
}

// leafSpine builds a small fabric for failure tests.
func leafSpine(t *testing.T) (*sim.Simulator, *topology.LeafSpine) {
	return leafSpineAware(t, false, 0)
}

func leafSpineAware(t *testing.T, aware bool, detect units.Duration) (*sim.Simulator, *topology.LeafSpine) {
	t.Helper()
	s := sim.New()
	ls, err := topology.NewLeafSpine(s, topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		Rate: 10 * units.Gbps, Delay: 10 * units.Microsecond,
		Buffer: 192 * units.KB, Queues: 4,
		FailureAware: aware, DetectionDelay: detect,
		Factories: topology.Factories{
			NewScheduler: func(n int) (sched.Scheduler, error) { return sched.EqualWRR(n), nil },
			NewAdmission: bestEffort,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, ls
}
