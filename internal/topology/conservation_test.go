package topology_test

import (
	"math/rand"
	"testing"

	"dynaq/internal/buffer"
	"dynaq/internal/packet"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/topology"
	"dynaq/internal/transport"
	"dynaq/internal/units"
)

// TestPacketConservationAcrossSchemes is the end-to-end accounting
// invariant: at every switch port, admitted packets either left on the
// wire, were discarded at dequeue, were evicted, or are still buffered.
// It must hold for every scheme under randomized traffic.
func TestPacketConservationAcrossSchemes(t *testing.T) {
	schemes := []struct {
		name string
		mk   func(b units.ByteSize, n int) (buffer.Admission, error)
	}{
		{"besteffort", func(b units.ByteSize, n int) (buffer.Admission, error) {
			return buffer.NewBestEffort(), nil
		}},
		{"dynaq", func(b units.ByteSize, n int) (buffer.Admission, error) {
			return buffer.NewDynaQ(b, equalWeights(n))
		}},
		{"pql", func(b units.ByteSize, n int) (buffer.Admission, error) {
			return buffer.NewWeightedPQL(b, equalWeights(n))
		}},
		{"barberq", func(b units.ByteSize, n int) (buffer.Admission, error) {
			return buffer.NewBarberQ(), nil
		}},
		{"tcndrop", func(b units.ByteSize, n int) (buffer.Admission, error) {
			return buffer.NewTCNDrop(240 * units.Microsecond)
		}},
		{"tofino", func(b units.ByteSize, n int) (buffer.Admission, error) {
			return buffer.NewDynaQTofino(b, equalWeights(n))
		}},
	}
	for _, sc := range schemes {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			s := sim.New()
			st, err := topology.NewStar(s, topology.StarConfig{
				Hosts: 5, Rate: units.Gbps, Delay: 125 * units.Microsecond,
				Buffer: 85 * units.KB, Queues: 4,
				Factories: topology.Factories{
					NewScheduler: func(n int) (sched.Scheduler, error) {
						return sched.EqualDRR(n, 1500), nil
					},
					NewAdmission: sc.mk,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			completed := 0
			var id packet.FlowID
			for i := 0; i < 30; i++ {
				id++
				src := rng.Intn(4)
				size := units.ByteSize(1 + rng.Intn(500_000))
				class := rng.Intn(4)
				flowID := id
				s.At(units.Time(rng.Intn(500))*units.Time(units.Millisecond), func() {
					if _, err := st.Endpoints[src].StartFlow(transport.FlowConfig{
						Flow: flowID, Dst: 4, Class: class, Size: size,
						OnComplete: func(units.Duration) { completed++ },
					}); err != nil {
						t.Error(err)
					}
				})
			}
			s.RunUntil(units.Time(20 * units.Second))
			if completed < 30 {
				t.Errorf("completed = %d/30 flows", completed)
			}
			for p := 0; p < st.Switch.NumPorts(); p++ {
				port := st.Port(p)
				stats := port.Stats()
				var residual int64
				for q := 0; q < port.NumQueues(); q++ {
					if port.QueueLen(q) > 0 {
						// Count packets still buffered; byte-level check
						// below suffices for conservation.
						residual++
					}
				}
				got := stats.TxPackets + stats.DequeueDrops + stats.Evicted
				if got > stats.Enqueued {
					t.Errorf("port %d: tx+drops+evictions %d exceeds enqueued %d",
						p, got, stats.Enqueued)
				}
				if residual == 0 && got != stats.Enqueued {
					t.Errorf("port %d: enqueued %d ≠ tx %d + deqdrops %d + evicted %d with empty queues",
						p, stats.Enqueued, stats.TxPackets, stats.DequeueDrops, stats.Evicted)
				}
			}
		})
	}
}
