package topology_test

import (
	"testing"

	"dynaq/internal/buffer"
	"dynaq/internal/packet"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/topology"
	"dynaq/internal/transport"
	"dynaq/internal/units"
)

// testbedStar builds the paper's testbed-like rack: 1Gbps links, 85KB port
// buffer, ~500µs base RTT (125µs per link), 4 DRR queues.
func testbedStar(t *testing.T, hosts int, admit func(b units.ByteSize, n int) (buffer.Admission, error)) *topology.Star {
	t.Helper()
	s := sim.New()
	st, err := topology.NewStar(s, topology.StarConfig{
		Hosts:  hosts,
		Rate:   units.Gbps,
		Delay:  125 * units.Microsecond,
		Buffer: 85 * units.KB,
		Queues: 4,
		Factories: topology.Factories{
			NewScheduler: func(n int) (sched.Scheduler, error) {
				return sched.EqualDRR(n, 1500), nil
			},
			NewAdmission: admit,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func bestEffort(_ units.ByteSize, _ int) (buffer.Admission, error) {
	return buffer.NewBestEffort(), nil
}

func TestStarConfigValidation(t *testing.T) {
	s := sim.New()
	if _, err := topology.NewStar(s, topology.StarConfig{Hosts: 1}); err == nil {
		t.Error("1-host star should fail")
	}
	if _, err := topology.NewStar(s, topology.StarConfig{Hosts: 3, Rate: units.Gbps,
		Buffer: units.KB, Queues: 1}); err == nil {
		t.Error("missing factories should fail")
	}
}

func TestSingleFlowCompletesAtLineRate(t *testing.T) {
	st := testbedStar(t, 2, bestEffort)
	var fct units.Duration
	done := false
	_, err := st.Endpoints[0].StartFlow(transport.FlowConfig{
		Flow: 1, Dst: 1, Class: 0, Size: 10 * units.MB,
		OnComplete: func(d units.Duration) { done = true; fct = d },
	})
	if err != nil {
		t.Fatal(err)
	}
	st.Sim.RunUntil(units.Time(2 * units.Second))
	if !done {
		t.Fatal("10MB flow did not complete in 2s at 1Gbps")
	}
	// Ideal: 10MB·(1500/1460 header overhead) at 1Gbps ≈ 82ms, plus slow
	// start ramp. Anything within 2× ideal proves the pipeline sustains
	// near line rate.
	ideal := units.Seconds(10e6 * 8 * (1500.0 / 1460.0) / 1e9)
	if fct > ideal.Scale(2) {
		t.Fatalf("FCT = %v, want < 2×ideal (%v)", fct, ideal.Scale(2))
	}
	if fct < ideal {
		t.Fatalf("FCT = %v below the physical floor %v", fct, ideal)
	}
}

func TestLongFlowThroughputNearLineRate(t *testing.T) {
	st := testbedStar(t, 2, bestEffort)
	snd, err := st.Endpoints[0].StartFlow(transport.FlowConfig{
		Flow: 1, Dst: 1, Class: 0, Size: 0, // unbounded
	})
	if err != nil {
		t.Fatal(err)
	}
	st.Sim.RunUntil(units.Time(units.Second))
	got := units.Throughput(st.Port(1).Stats().TxBytes, units.Second)
	// Goodput ≥ 90% of line rate (headers + ramp-up eat a few percent).
	if got < 900*units.Mbps {
		t.Fatalf("throughput = %v, want ≥ 900Mbps (sender stats: %+v)", got, snd.Stats())
	}
	if got > units.Gbps {
		t.Fatalf("throughput = %v exceeds line rate", got)
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	// Two flows from different hosts to one receiver, same class: the
	// bottleneck port must split capacity roughly evenly (same RTT, same
	// transport).
	st := testbedStar(t, 3, bestEffort)
	for i := 0; i < 2; i++ {
		if _, err := st.Endpoints[i].StartFlow(transport.FlowConfig{
			Flow: flowID(1 + i), Dst: 2, Class: 0, Size: 0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	st.Sim.RunUntil(units.Time(4 * units.Second))
	agg := units.Throughput(st.Port(2).Stats().TxBytes, 4*units.Second)
	if agg < 900*units.Mbps {
		t.Fatalf("aggregate = %v, want ≥ 900Mbps (work conservation)", agg)
	}
}

func flowID(i int) packet.FlowID { return packet.FlowID(i) }

func TestLossRecoveryUnderIncast(t *testing.T) {
	// 8 senders incast into one 85KB port: drops are guaranteed; every
	// flow must still complete via fast retransmit/RTO.
	st := testbedStar(t, 9, bestEffort)
	completed := 0
	for i := 0; i < 8; i++ {
		if _, err := st.Endpoints[i].StartFlow(transport.FlowConfig{
			Flow: flowID(100 + i), Dst: 8, Class: 0, Size: 500 * units.KB,
			OnComplete: func(units.Duration) { completed++ },
		}); err != nil {
			t.Fatal(err)
		}
	}
	st.Sim.RunUntil(units.Time(30 * units.Second))
	if completed != 8 {
		t.Fatalf("completed = %d/8 flows", completed)
	}
	if st.Port(8).Stats().Dropped == 0 {
		t.Fatal("expected drops under incast with an 85KB buffer")
	}
}

func TestDRRQueuesIsolateWithDynaQ(t *testing.T) {
	// Fig. 3's setup end to end: queue 1 with 2 flows vs queue 2 with 16
	// flows under DynaQ must split the 1Gbps bottleneck ≈50/50 (a single
	// flow per queue cannot hold its share pipe through halving on an
	// 85KB buffer — the paper never runs one-flow queues either).
	st := testbedStar(t, 3, func(b units.ByteSize, n int) (buffer.Admission, error) {
		return buffer.NewDynaQ(b, equalWeights(n))
	})
	for i := 0; i < 2; i++ {
		if _, err := st.Endpoints[0].StartFlow(transport.FlowConfig{
			Flow: flowID(1 + i), Dst: 2, Class: 1, Size: 0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		if _, err := st.Endpoints[1].StartFlow(transport.FlowConfig{
			Flow: flowID(10 + i), Dst: 2, Class: 2, Size: 0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	st.Sim.RunUntil(units.Time(5 * units.Second))
	port := st.Port(2)
	q1 := float64(port.QueueTxBytes(1))
	q2 := float64(port.QueueTxBytes(2))
	share := q1 / (q1 + q2)
	if share < 0.40 || share > 0.60 {
		t.Fatalf("queue 1 share = %.3f, want ≈0.5 under DynaQ (q1=%v q2=%v)",
			share, units.ByteSize(q1), units.ByteSize(q2))
	}
}

func equalWeights(n int) []int64 {
	w := make([]int64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestDCTCPWithPerQueueECNBoundsQueue(t *testing.T) {
	// A DCTCP flow against per-queue marking (K=30KB) must keep the
	// bottleneck queue around K and complete without massive loss.
	s := sim.New()
	st, err := topology.NewStar(s, topology.StarConfig{
		Hosts:  2,
		Rate:   units.Gbps,
		Delay:  125 * units.Microsecond,
		Buffer: 85 * units.KB,
		Queues: 4,
		Factories: topology.Factories{
			NewScheduler: func(n int) (sched.Scheduler, error) {
				return sched.EqualDRR(n, 1500), nil
			},
			NewAdmission: func(b units.ByteSize, n int) (buffer.Admission, error) {
				return buffer.NewPerQueueECN(n, 30*units.KB)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	snd, err := st.Endpoints[0].StartFlow(transport.FlowConfig{
		Flow: 1, Dst: 1, Class: 0, Size: 0, ECN: true, Ctrl: transport.NewDCTCP(),
	})
	if err != nil {
		t.Fatal(err)
	}
	st.Sim.RunUntil(units.Time(units.Second))
	port := st.Port(1)
	if port.Stats().Marked == 0 {
		t.Fatal("DCTCP flow saw no ECN marks")
	}
	if snd.Stats().EchoedAcks == 0 {
		t.Fatal("sender saw no congestion echoes")
	}
	got := units.Throughput(port.Stats().TxBytes, units.Second)
	if got < 850*units.Mbps {
		t.Fatalf("DCTCP throughput = %v, want ≥ 850Mbps", got)
	}
	// DCTCP holds the queue near K: the standing queue must stay well
	// under the 85KB port buffer.
	if q := port.QueueLen(0); q > 60*units.KB {
		t.Fatalf("standing queue = %v, want bounded near K=30KB", q)
	}
}

func TestCubicFlowCompletes(t *testing.T) {
	st := testbedStar(t, 2, bestEffort)
	done := false
	if _, err := st.Endpoints[0].StartFlow(transport.FlowConfig{
		Flow: 1, Dst: 1, Class: 0, Size: 5 * units.MB, Ctrl: transport.NewCubic(),
		OnComplete: func(units.Duration) { done = true },
	}); err != nil {
		t.Fatal(err)
	}
	st.Sim.RunUntil(units.Time(5 * units.Second))
	if !done {
		t.Fatal("CUBIC flow did not complete")
	}
}

func TestDuplicateFlowIDRejected(t *testing.T) {
	st := testbedStar(t, 2, bestEffort)
	if _, err := st.Endpoints[0].StartFlow(transport.FlowConfig{Flow: 1, Dst: 1, Size: units.KB}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Endpoints[0].StartFlow(transport.FlowConfig{Flow: 1, Dst: 1, Size: units.KB}); err == nil {
		t.Fatal("duplicate flow id must be rejected")
	}
}

func TestLeafSpineValidation(t *testing.T) {
	s := sim.New()
	if _, err := topology.NewLeafSpine(s, topology.LeafSpineConfig{Leaves: 1}); err == nil {
		t.Error("1-leaf fabric should fail")
	}
}

func TestLeafSpineCrossRackFlow(t *testing.T) {
	s := sim.New()
	ls, err := topology.NewLeafSpine(s, topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		Rate:   10 * units.Gbps,
		Delay:  10 * units.Microsecond,
		Buffer: 192 * units.KB,
		Queues: 8,
		Factories: topology.Factories{
			NewScheduler: func(n int) (sched.Scheduler, error) { return sched.EqualWRR(n), nil },
			NewAdmission: bestEffort,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	// Host 0 (leaf 0) → host 3 (leaf 1): crosses a spine.
	if _, err := ls.Endpoints[0].StartFlow(transport.FlowConfig{
		Flow: 1, Dst: 3, Class: 0, Size: 10 * units.MB, MinRTO: 5 * units.Millisecond,
		OnComplete: func(units.Duration) { done++ },
	}); err != nil {
		t.Fatal(err)
	}
	// Host 1 → host 2, concurrently, other direction pairings.
	if _, err := ls.Endpoints[1].StartFlow(transport.FlowConfig{
		Flow: 2, Dst: 2, Class: 3, Size: 10 * units.MB, MinRTO: 5 * units.Millisecond,
		OnComplete: func(units.Duration) { done++ },
	}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(units.Time(2 * units.Second))
	if done != 2 {
		t.Fatalf("completed = %d/2 cross-rack flows", done)
	}
	if ls.HostPort(3).Stats().TxBytes == 0 {
		t.Fatal("no bytes crossed the destination downlink")
	}
}

func TestLeafSpineIntraRackStaysLocal(t *testing.T) {
	s := sim.New()
	ls, err := topology.NewLeafSpine(s, topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		Rate:   10 * units.Gbps,
		Delay:  10 * units.Microsecond,
		Buffer: 192 * units.KB,
		Queues: 4,
		Factories: topology.Factories{
			NewScheduler: func(n int) (sched.Scheduler, error) { return sched.EqualWRR(n), nil },
			NewAdmission: bestEffort,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	if _, err := ls.Endpoints[0].StartFlow(transport.FlowConfig{
		Flow: 1, Dst: 1, Class: 0, Size: units.MB, MinRTO: 5 * units.Millisecond,
		OnComplete: func(units.Duration) { done = true },
	}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(units.Time(units.Second))
	if !done {
		t.Fatal("intra-rack flow did not complete")
	}
	for i, sp := range ls.Spines {
		for p := 0; p < sp.NumPorts(); p++ {
			if sp.Port(p).Stats().TxBytes != 0 {
				t.Fatalf("intra-rack traffic leaked through spine %d", i)
			}
		}
	}
}

func TestDelayedAcksEndToEnd(t *testing.T) {
	// Receiver-side ACK coalescing must not break the flow, and must
	// roughly halve the ACKs crossing the reverse path.
	run := func(delayed bool) (acks int64, done bool) {
		st := testbedStar(t, 2, bestEffort)
		if delayed {
			if err := st.Endpoints[1].SetDelayedAcks(2, 500*units.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
		// 400KB fits a single flow's slow-start ramp without loss, so the
		// coalescing effect is not masked by immediate ACKs on gaps.
		if _, err := st.Endpoints[0].StartFlow(transport.FlowConfig{
			Flow: 1, Dst: 1, Class: 0, Size: 400 * units.KB,
			OnComplete: func(units.Duration) { done = true },
		}); err != nil {
			t.Fatal(err)
		}
		st.Sim.RunUntil(units.Time(2 * units.Second))
		// ACKs traverse the switch port facing host 0.
		return st.Port(0).Stats().TxPackets, done
	}
	ackImmediate, ok1 := run(false)
	ackDelayed, ok2 := run(true)
	if !ok1 || !ok2 {
		t.Fatalf("flows incomplete: immediate=%v delayed=%v", ok1, ok2)
	}
	if ackDelayed >= ackImmediate*3/4 {
		t.Fatalf("delayed ACKs = %d, want well below immediate %d", ackDelayed, ackImmediate)
	}
	if ackDelayed < ackImmediate/3 {
		t.Fatalf("delayed ACKs = %d suspiciously low vs %d", ackDelayed, ackImmediate)
	}
}

func TestTCNWithGenericECNTransport(t *testing.T) {
	// TCN markets itself as "ECN over generic packet scheduling"; it must
	// work with classic RFC 3168 TCP too, not only DCTCP. A single
	// ECN-Reno flow against TCN sojourn marking: bounded queue, marks
	// observed, near line rate, (almost) no drops.
	s := sim.New()
	st, err := topology.NewStar(s, topology.StarConfig{
		Hosts:  2,
		Rate:   units.Gbps,
		Delay:  125 * units.Microsecond,
		Buffer: 85 * units.KB,
		Queues: 4,
		Factories: topology.Factories{
			NewScheduler: func(n int) (sched.Scheduler, error) {
				return sched.EqualDRR(n, 1500), nil
			},
			NewAdmission: func(b units.ByteSize, n int) (buffer.Admission, error) {
				return buffer.NewTCN(240 * units.Microsecond)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	snd, err := st.Endpoints[0].StartFlow(transport.FlowConfig{
		Flow: 1, Dst: 1, Class: 0, Size: 0, ECN: true, Ctrl: transport.NewECNReno(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(units.Time(2 * units.Second))
	port := st.Port(1)
	if port.Stats().Marked == 0 {
		t.Fatal("TCN produced no marks")
	}
	if snd.Stats().EchoedAcks == 0 {
		t.Fatal("ECN-Reno saw no echoes")
	}
	got := units.Throughput(port.Stats().TxBytes, 2*units.Second)
	// Classic ECN halves the window once per marked RTT; with TCN's 240µs
	// sojourn target (~30KB standing) against a 62.5KB BDP, the post-halve
	// window dips below the pipe — the latency/throughput trade-off of
	// coarse ECN signals that §II-B cites as DynaQ's motivation. ~85% is
	// the expected physics; require it not to collapse further.
	if got < 750*units.Mbps {
		t.Fatalf("throughput = %v with ECN-Reno + TCN", got)
	}
	// Classic ECN halves per mark — queue swings more than DCTCP's but
	// must stay bounded well under the buffer on average.
	if q := port.QueueLen(0); q > 70*units.KB {
		t.Fatalf("standing queue = %v", q)
	}
}

func TestECMPSpreadsFlowsAcrossSpines(t *testing.T) {
	s, ls := leafSpine(t)
	// 64 single-packet flows from leaf 0 to leaf 1: their spine choice is
	// a hash of the flow id; both spines must carry a fair share.
	for i := 0; i < 64; i++ {
		if _, err := ls.Endpoints[0].StartFlow(transport.FlowConfig{
			Flow: flowID(1000 + i), Dst: 2, Class: 0, Size: 1000,
			MinRTO: 5 * units.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(units.Time(units.Second))
	var perSpine [2]int64
	for sp := 0; sp < 2; sp++ {
		for p := 0; p < ls.Spines[sp].NumPorts(); p++ {
			perSpine[sp] += ls.Spines[sp].Port(p).Stats().TxPackets
		}
	}
	total := perSpine[0] + perSpine[1]
	if total == 0 {
		t.Fatal("no packets crossed the spines")
	}
	for sp, n := range perSpine {
		frac := float64(n) / float64(total)
		if frac < 0.25 || frac > 0.75 {
			t.Fatalf("spine %d carried %.0f%% of packets; ECMP skewed (%v)",
				sp, frac*100, perSpine)
		}
	}
}
