package topology

import (
	"fmt"

	"dynaq/internal/faults"
)

// FaultRegistry publishes the star's links under stable names for the
// fault-injection engine:
//
//	tor:<i>      — switch downlink toward host i
//	host<i>:nic  — host i's NIC uplink toward the switch
//	tor          — group: every switch downlink (whole-switch failure)
func (st *Star) FaultRegistry() *faults.Registry {
	reg := faults.NewRegistry()
	down := make([]string, len(st.Hosts))
	for i := range st.Hosts {
		name := fmt.Sprintf("tor:%d", i)
		reg.AddLink(name, st.Switch.Port(i).Link())
		reg.AddLink(fmt.Sprintf("host%d:nic", i), st.Hosts[i].Egress().Link())
		down[i] = name
	}
	reg.AddGroup("tor", down...)
	return reg
}

// FaultRegistry publishes the fabric's links under stable names for the
// fault-injection engine (host ids are global, as everywhere else):
//
//	leaf<l>:host<h>   — leaf downlink toward host h
//	leaf<l>:spine<s>  — leaf uplink toward spine s
//	spine<s>:leaf<l>  — spine downlink toward leaf l
//	host<h>:nic       — host h's NIC uplink toward its leaf
//	leaf<l>           — group: every link incident to leaf l, both directions
//	spine<s>          — group: every link incident to spine s, both directions
//
// The incident groups model whole-switch failure: taking the group down
// blackholes traffic into and out of the switch, exactly what a powered-off
// chassis does.
func (ls *LeafSpine) FaultRegistry() *faults.Registry {
	reg := faults.NewRegistry()
	nSpines := len(ls.Spines)
	leafMembers := make([][]string, len(ls.Leaves))
	spineMembers := make([][]string, nSpines)

	for l, leaf := range ls.Leaves {
		for j := 0; j < ls.hostsPerLeaf; j++ {
			h := l*ls.hostsPerLeaf + j
			name := fmt.Sprintf("leaf%d:host%d", l, h)
			reg.AddLink(name, leaf.Port(j).Link())
			leafMembers[l] = append(leafMembers[l], name)

			nic := fmt.Sprintf("host%d:nic", h)
			reg.AddLink(nic, ls.Hosts[h].Egress().Link())
			leafMembers[l] = append(leafMembers[l], nic)
		}
		for sp := 0; sp < nSpines; sp++ {
			name := fmt.Sprintf("leaf%d:spine%d", l, sp)
			reg.AddLink(name, leaf.Port(ls.hostsPerLeaf+sp).Link())
			leafMembers[l] = append(leafMembers[l], name)
			spineMembers[sp] = append(spineMembers[sp], name)
		}
	}
	for sp, spine := range ls.Spines {
		for l := range ls.Leaves {
			name := fmt.Sprintf("spine%d:leaf%d", sp, l)
			reg.AddLink(name, spine.Port(l).Link())
			spineMembers[sp] = append(spineMembers[sp], name)
			leafMembers[l] = append(leafMembers[l], name)
		}
	}
	for l := range ls.Leaves {
		reg.AddGroup(fmt.Sprintf("leaf%d", l), leafMembers[l]...)
	}
	for sp := range ls.Spines {
		reg.AddGroup(fmt.Sprintf("spine%d", sp), spineMembers[sp]...)
	}
	return reg
}
