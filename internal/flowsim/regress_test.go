package flowsim

import (
	"math/rand"
	"testing"

	"dynaq/internal/packet"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

// TestFatTreeHeavyTailNoLivelock is a regression test for an event-loop
// livelock: units.Rate.Transmit overflowed int64 on multi-MB transfers (the
// remainder term rem×1e12 wraps negative past ~1.15 MB), so armCompletion
// handed the simulator a timer in the past and the engine spun forever at
// one timestamp. Heavy-tailed sizes up to ~31 MB on a k=4 fat tree exercise
// exactly that regime; the test fails fast if sim time stops advancing.
func TestFatTreeHeavyTailNoLivelock(t *testing.T) {
	topo, err := NewFatTree(4, 10*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	weights := make([]int64, 8)
	for i := range weights {
		weights[i] = 1
	}
	e, err := New(s, Config{
		Topo:    topo,
		Queues:  8,
		Weights: weights,
		Buffer:  192 * units.KB,
		MTU:     1500,
		MSS:     1460,
		RTT:     120 * units.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	rng := rand.New(rand.NewSource(1))
	const flows = 500
	done := 0
	at := units.Time(0)
	hosts := topo.Hosts()
	for i := 0; i < flows; i++ {
		at = at.Add(units.Duration(rng.Int63n(int64(20 * units.Microsecond))))
		src := rng.Intn(hosts)
		dst := rng.Intn(hosts - 1)
		if dst >= src {
			dst++
		}
		// Heavy tail: mostly small, occasionally tens of MB.
		size := units.ByteSize(1000 + rng.Int63n(100_000))
		if rng.Intn(20) == 0 {
			size = units.ByteSize(1_000_000 + rng.Int63n(30_000_000))
		}
		e.ScheduleArrival(at, FlowSpec{
			ID: packet.FlowID(1 + i), Src: src, Dst: dst,
			Class: 1 + rng.Intn(7), Size: size,
			OnComplete: func(units.Duration) { done++ },
		})
	}
	var lastNow units.Time
	sameNow := 0
	for done < flows && s.Pending() > 0 && s.Now() < units.Time(10*units.Second) {
		s.Step()
		if s.Now() == lastNow {
			sameNow++
			if sameNow > 100_000 {
				t.Fatalf("livelock at t=%v: %d events at one timestamp, %d/%d done, active=%d",
					s.Now(), sameNow, done, flows, e.Active())
			}
		} else {
			lastNow = s.Now()
			sameNow = 0
		}
	}
	if done != flows {
		t.Fatalf("completed %d/%d flows by t=%v (pending=%d)", done, flows, s.Now(), s.Pending())
	}
}
