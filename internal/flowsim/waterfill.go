package flowsim

import (
	"math"
	"sort"

	"dynaq/internal/units"
)

// waterfiller solves progressive max-min filling: repeatedly freeze the
// binding constraint — either a flow whose own rate cap is below every
// link's fair share, or the bottleneck link with the smallest share — until
// every flow holds a rate. All arithmetic is int64 bps; ties break on the
// lowest index, so the allocation is a pure function of its inputs.
//
// The scratch slices live across calls; a steady-state recompute allocates
// nothing once they have grown to the working-set size.
type waterfiller struct {
	rem    []int64 // remaining capacity per link
	nf     []int32 // unfrozen flows per link
	heads  []int32 // CSR offsets: link i's flows are items[heads[i]:heads[i+1]]
	cursor []int32 // CSR fill cursors
	items  []int32
	order  []int32 // flow indices sorted by ascending cap
	frozen []bool
}

// fill computes the allocation of flowCap/flowPath over linkCap into out.
// Every flow must have a positive cap and a non-empty path; out must have
// len(flowCap).
func (w *waterfiller) fill(linkCap []units.Rate, flowCap []units.Rate, flowPath [][]int32, out []units.Rate) {
	n, nl := len(flowCap), len(linkCap)
	w.grow(n, nl)
	rem, nf := w.rem[:nl], w.nf[:nl]
	for i, c := range linkCap {
		rem[i], nf[i] = int64(c), 0
	}
	for _, path := range flowPath[:n] {
		for _, l := range path {
			nf[l]++
		}
	}
	heads, cursor := w.heads[:nl+1], w.cursor[:nl]
	heads[0] = 0
	for i := 0; i < nl; i++ {
		heads[i+1] = heads[i] + nf[i]
		cursor[i] = heads[i]
	}
	if cap(w.items) < int(heads[nl]) {
		w.items = make([]int32, heads[nl])
	}
	items := w.items[:heads[nl]]
	for f, path := range flowPath[:n] {
		for _, l := range path {
			items[cursor[l]] = int32(f)
			cursor[l]++
		}
	}
	order, frozen := w.order[:n], w.frozen[:n]
	for f := 0; f < n; f++ {
		order[f], frozen[f] = int32(f), false
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := flowCap[order[a]], flowCap[order[b]]
		if ca != cb {
			return ca < cb
		}
		return order[a] < order[b]
	})

	unfrozen := n
	freeze := func(f int32, r units.Rate) {
		out[f], frozen[f] = r, true
		unfrozen--
		for _, l := range flowPath[f] {
			rem[l] -= int64(r)
			nf[l]--
		}
	}
	ptr := 0
	for unfrozen > 0 {
		// Smallest fair share over links still carrying unfrozen flows.
		share, bl := int64(math.MaxInt64), -1
		for l := 0; l < nl; l++ {
			if nf[l] > 0 {
				if s := rem[l] / int64(nf[l]); s < share {
					share, bl = s, l
				}
			}
		}
		if bl < 0 {
			// No shared link left: remaining flows are cap-limited only.
			for ; ptr < n; ptr++ {
				if f := order[ptr]; !frozen[f] {
					freeze(f, flowCap[f])
				}
			}
			break
		}
		if share < 1 {
			share = 1 // a saturated link still moves every flow forward
		}
		// Freeze every flow whose cap sits at or under the current share:
		// removing a flow at rate <= share only raises shares, so the batch
		// is safe without rescanning links between freezes.
		progressed := false
		for ptr < n {
			f := order[ptr]
			if frozen[f] {
				ptr++
				continue
			}
			if int64(flowCap[f]) > share {
				break
			}
			freeze(f, flowCap[f])
			ptr++
			progressed = true
		}
		if progressed {
			continue
		}
		// The bottleneck link binds: its unfrozen flows get the share.
		for _, f := range items[heads[bl]:heads[bl+1]] {
			if !frozen[f] {
				freeze(f, units.Rate(share))
			}
		}
	}
}

// grow resizes the scratch slices for n flows over nl links; items is sized
// in fill once the edge count is known.
func (w *waterfiller) grow(n, nl int) {
	if cap(w.rem) < nl {
		w.rem = make([]int64, nl)
		w.nf = make([]int32, nl)
		w.cursor = make([]int32, nl)
	}
	if cap(w.heads) < nl+1 {
		w.heads = make([]int32, nl+1)
	}
	if cap(w.order) < n {
		w.order = make([]int32, n)
		w.frozen = make([]bool, n)
	}
}
