package flowsim

import (
	"fmt"

	"dynaq/internal/buffer"
	"dynaq/internal/packet"
	"dynaq/internal/sim"
	"dynaq/internal/telemetry"
	ttrace "dynaq/internal/telemetry/trace"
	"dynaq/internal/units"
)

// Config assembles a flow-level engine over a Topology.
type Config struct {
	Topo *Topology

	// Queues counts service queues per port (queue 0 is the SPQ queue,
	// 1..Queues-1 the DRR queues, exactly like the packet engine); Weights
	// are the per-queue scheduler weights used by the hybrid drain.
	Queues  int
	Weights []int64

	// Buffer is the per-port buffer B: the fluid backlog of a link is
	// clamped to it, and the hybrid demote/promote thresholds default to
	// fractions of it.
	Buffer units.ByteSize
	MTU    units.ByteSize
	MSS    units.ByteSize
	// RTT is the base round-trip time: the slow-start epoch length and the
	// fixed handshake term of every FCT.
	RTT units.Duration

	// InitWindow is the slow-start initial window (default 10 MSS).
	InitWindow units.ByteSize
	// Quantum bounds how stale rate allocations may get: the engine
	// recomputes the water-filling at most once per quantum (default
	// RTT/4). Smaller is more faithful and slower.
	Quantum units.Duration

	// Hybrid enables selective packetization: a link whose fluid backlog
	// crosses DemoteBytes is demoted to packet granularity through the
	// scheme admission NewAdmission builds, and promoted back once its
	// queue drains to PromoteBytes (see hybrid.go).
	Hybrid bool
	// NewAdmission builds the buffer-management scheme for one demoted
	// port. The instance persists across that port's episodes so stateful
	// schemes (DynaQ thresholds) keep their state. Required when Hybrid.
	NewAdmission func() (buffer.Admission, error)
	// DemoteBytes / PromoteBytes override the episode thresholds
	// (defaults: B/2 and B/10).
	DemoteBytes, PromoteBytes units.ByteSize

	// FlowCutoff classifies flows: size <= cutoff is "short" (never exits
	// slow start — it finishes inside it) while long flows converge to
	// their max-min share. Default 100KB, the PIAS demotion threshold.
	FlowCutoff units.ByteSize

	// Spans, when non-nil, receives sim-time spans: one summary span per
	// run (Finish) and one span per demote episode, parented under
	// SpanParent.
	Spans      *ttrace.Tracer
	SpanParent string
}

// FlowSpec describes one flow handed to the engine.
type FlowSpec struct {
	ID         packet.FlowID
	Src, Dst   int
	Class      int
	Size       units.ByteSize
	OnComplete func(fct units.Duration)
}

// Stats are the engine's run counters.
type Stats struct {
	Recomputes         int64
	Demotions          int64
	Promotions         int64
	PacketizedPackets  int64
	PacketizedDrops    int64
	PacketizedMarks    int64
	FluidDropBytes     int64
	ThresholdCrossings int64
	Started            int64
	Completed          int64
	MaxActive          int
}

// fflow is one flow's engine state.
type fflow struct {
	spec      FlowSpec
	path      []int32
	remaining units.ByteSize
	started   units.Time
	rate      units.Rate // current max-min allocation
	peak      units.Rate // min link capacity along the path
	short     bool

	// Slow start: the source blasts min(peak, IW<<epoch / RTT) until one
	// RTT after it first observes an allocation below its cap (feedback
	// delay — the overshoot in that window is what builds fluid queues).
	ssDone   bool
	ssExitAt units.Time

	// Loss penalty: a packetized drop (or mark) halves the flow's cap
	// until penaltyUntil and charges one RTT of recovery to the FCT.
	penaltyRate  units.Rate
	penaltyUntil units.Time
	extraDelay   units.Duration

	// epLinks counts demoted links on the path; while > 0 the flow's bytes
	// are delivered by the episode pump of its owner link, not the fluid
	// advance. inflight is the byte total sitting in episode queues.
	epLinks  int32
	epOwner  int32
	inflight units.ByteSize

	activeIdx int32 // index into e.active, -1 once completed
}

// linkState is one directed link's fluid (and episode) state.
type linkState struct {
	cap     units.Rate
	inRate  units.Rate     // source send rate currently offered to the link
	backlog units.ByteSize // fluid queue, clamped to [0, Buffer]

	demoted bool
	ep      episode // hybrid episode state, allocated on first demotion
}

// Engine is the flow-level engine. It shares the discrete-event core with
// the packet engine — its events are just coarser: rate recomputations,
// completions, threshold crossings and episode pump ticks.
type Engine struct {
	s    *sim.Simulator
	cfg  Config
	topo *Topology

	flows  []fflow
	active []int32
	links  []linkState

	wf     waterfiller
	caps   []units.Rate
	rates  []units.Rate
	paths  [][]int32
	wfCaps []units.Rate

	lastAdvance units.Time
	dirty       bool // topology of active flows changed since last fill
	ssCount     int  // flows still in slow start (caps grow every epoch)

	completion *sim.Timer
	crossing   *sim.Timer
	stopTick   func()

	demoteB, promoteB units.ByteSize
	stats             Stats
}

// New builds an engine on s. The caller schedules arrivals (ScheduleArrival)
// and steps s; the engine keeps itself consistent through its own events.
func New(s *sim.Simulator, cfg Config) (*Engine, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("flowsim: config needs a topology")
	}
	if cfg.Queues < 2 {
		return nil, fmt.Errorf("flowsim: need an SPQ queue plus DRR queues, got %d", cfg.Queues)
	}
	if len(cfg.Weights) != cfg.Queues {
		return nil, fmt.Errorf("flowsim: %d weights for %d queues", len(cfg.Weights), cfg.Queues)
	}
	if cfg.Buffer <= 0 || cfg.MTU <= 0 || cfg.RTT <= 0 {
		return nil, fmt.Errorf("flowsim: buffer, MTU and RTT must be positive")
	}
	if cfg.MSS <= 0 {
		cfg.MSS = cfg.MTU
	}
	if cfg.InitWindow <= 0 {
		cfg.InitWindow = 10 * cfg.MSS
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = cfg.RTT / 4
		if cfg.Quantum <= 0 {
			cfg.Quantum = cfg.RTT
		}
	}
	if cfg.FlowCutoff <= 0 {
		cfg.FlowCutoff = 100 * units.KB
	}
	if cfg.Hybrid {
		if cfg.NewAdmission == nil {
			return nil, fmt.Errorf("flowsim: hybrid mode needs an admission factory")
		}
		// Pre-validate so a factory error surfaces here, not mid-run.
		if _, err := cfg.NewAdmission(); err != nil {
			return nil, fmt.Errorf("flowsim: admission factory: %w", err)
		}
	}
	e := &Engine{s: s, cfg: cfg, topo: cfg.Topo}
	e.links = make([]linkState, cfg.Topo.NumLinks())
	for i := range e.links {
		e.links[i].cap = cfg.Topo.Capacity(i)
	}
	e.demoteB = cfg.DemoteBytes
	if e.demoteB <= 0 {
		e.demoteB = cfg.Buffer / 2
	}
	e.promoteB = cfg.PromoteBytes
	if e.promoteB <= 0 {
		e.promoteB = cfg.Buffer / 10
	}
	if e.promoteB >= e.demoteB {
		return nil, fmt.Errorf("flowsim: promote threshold %v must sit below demote threshold %v", e.promoteB, e.demoteB)
	}
	e.completion = s.NewTimer(e.onCompletionTimer)
	e.crossing = s.NewTimer(e.onCrossingTimer)
	e.stopTick = s.Every(cfg.Quantum, e.onTick)
	return e, nil
}

// Close releases the engine's recurring events (the quantum ticker and any
// episode pumps); the run loop owns calling it once the flow count is
// reached.
func (e *Engine) Close() {
	e.stopTick()
	e.completion.Stop()
	e.crossing.Stop()
	for i := range e.links {
		if p := e.links[i].ep.pump; p != nil {
			p.Stop()
		}
	}
}

// Stats returns the run counters.
func (e *Engine) Stats() Stats { return e.stats }

// Active returns the number of in-flight flows.
func (e *Engine) Active() int { return len(e.active) }

// Instrument registers the engine's counters on reg.
func (e *Engine) Instrument(reg *telemetry.Registry) {
	reg.CounterFunc("flowsim_recomputes_total", func() int64 { return e.stats.Recomputes })
	reg.CounterFunc("flowsim_demotions_total", func() int64 { return e.stats.Demotions })
	reg.CounterFunc("flowsim_promotions_total", func() int64 { return e.stats.Promotions })
	reg.CounterFunc("flowsim_packetized_packets_total", func() int64 { return e.stats.PacketizedPackets })
	reg.CounterFunc("flowsim_packetized_drops_total", func() int64 { return e.stats.PacketizedDrops })
	reg.CounterFunc("flowsim_packetized_marks_total", func() int64 { return e.stats.PacketizedMarks })
	reg.CounterFunc("flowsim_fluid_drop_bytes_total", func() int64 { return e.stats.FluidDropBytes })
	reg.CounterFunc("flowsim_threshold_crossings_total", func() int64 { return e.stats.ThresholdCrossings })
}

// Finish emits the run's summary span. Call once after the run loop.
func (e *Engine) Finish() {
	if e.cfg.Spans != nil {
		e.cfg.Spans.SimSpan("flow-engine", e.cfg.SpanParent, 0, e.s.Now(),
			ttrace.A("engine", "flow"),
			ttrace.AInt("recomputes", e.stats.Recomputes),
			ttrace.AInt("demotions", e.stats.Demotions),
			ttrace.AInt("flows_completed", e.stats.Completed))
	}
}

// ScheduleArrival schedules spec to start at the given simulated time. The
// arrival time feeds the event heap, so tainted wall-clock values must
// never reach it (enforced by dynaqlint's determinism-taint pass).
func (e *Engine) ScheduleArrival(at units.Time, spec FlowSpec) {
	e.s.At(at, func() { e.startFlow(spec) })
}

// startFlow admits one flow into the fluid state. Its rate stays zero until
// the next recomputation event (at most one quantum away).
func (e *Engine) startFlow(spec FlowSpec) {
	if spec.Size <= 0 {
		panic("flowsim: flow size must be positive")
	}
	if spec.Class < 0 || spec.Class >= e.cfg.Queues {
		panic(fmt.Sprintf("flowsim: class %d out of range", spec.Class))
	}
	e.advance()
	idx := int32(len(e.flows))
	e.flows = append(e.flows, fflow{
		spec:      spec,
		path:      e.topo.Path(spec.Src, spec.Dst, ecmpHash(uint64(spec.ID)), make([]int32, 0, 6)),
		remaining: spec.Size,
		started:   e.s.Now(),
		short:     spec.Size <= e.cfg.FlowCutoff,
		epOwner:   -1,
		activeIdx: int32(len(e.active)),
	})
	f := &e.flows[idx]
	f.peak = e.links[f.path[0]].cap
	for _, l := range f.path[1:] {
		if c := e.links[l].cap; c < f.peak {
			f.peak = c
		}
	}
	for _, l := range f.path {
		if ls := &e.links[l]; ls.demoted {
			f.epLinks++
			if f.epOwner < 0 {
				f.epOwner = l
			}
			ls.ep.flows = append(ls.ep.flows, idx)
			ls.ep.credit = append(ls.ep.credit, 0)
		}
	}
	e.active = append(e.active, idx)
	if len(e.active) > e.stats.MaxActive {
		e.stats.MaxActive = len(e.active)
	}
	e.stats.Started++
	e.ssCount++
	e.dirty = true
}

// baseWindowRate returns IW/RTT, the slow-start epoch-zero send rate.
func (e *Engine) baseWindowRate() units.Rate {
	return units.Throughput(e.cfg.InitWindow, e.cfg.RTT)
}

// sendCap returns the flow's current source-side rate cap: the slow-start
// window over the RTT (doubling each epoch) clamped by the path peak and
// any standing loss penalty. Monotone within an epoch, so allocations only
// need refreshing at recompute events.
func (e *Engine) sendCap(f *fflow, now units.Time) units.Rate {
	c := f.peak
	if !f.ssDone {
		epoch := int64(now.Sub(f.started) / e.cfg.RTT)
		if epoch > 62 {
			epoch = 62
		}
		base := e.baseWindowRate()
		if base < units.BitPerSecond {
			base = units.BitPerSecond
		}
		if base < f.peak>>uint(epoch) {
			c = base << uint(epoch)
		}
	}
	if f.penaltyRate > 0 && now < f.penaltyUntil && f.penaltyRate < c {
		c = f.penaltyRate
	}
	if c < units.BitPerSecond {
		c = units.BitPerSecond
	}
	return c
}

// advance integrates the fluid state from the last advance point to now:
// every allocated flow delivers rate×dt bytes, every link's backlog grows
// or drains by (inRate − capacity)×dt. Demoted links are owned by their
// episode pump and skipped here.
func (e *Engine) advance() {
	now := e.s.Now()
	dt := now.Sub(e.lastAdvance)
	if dt <= 0 {
		return
	}
	e.lastAdvance = now
	for _, fi := range e.active {
		f := &e.flows[fi]
		if f.epLinks > 0 || f.rate <= 0 {
			continue
		}
		got := f.rate.BytesIn(dt)
		if got >= f.remaining {
			f.remaining = 0
		} else {
			f.remaining -= got
		}
	}
	for i := range e.links {
		l := &e.links[i]
		if l.demoted {
			continue
		}
		switch {
		case l.inRate > l.cap:
			prev := l.backlog
			l.backlog += (l.inRate - l.cap).BytesIn(dt)
			if l.backlog > e.cfg.Buffer {
				e.stats.FluidDropBytes += int64(l.backlog - e.cfg.Buffer)
				l.backlog = e.cfg.Buffer
				e.fluidOverflow(i)
			}
			if prev < e.demoteB && l.backlog >= e.demoteB {
				e.stats.ThresholdCrossings++
				if e.cfg.Hybrid {
					e.demote(i)
				}
			}
		case l.backlog > 0:
			drained := (l.cap - l.inRate).BytesIn(dt)
			if drained >= l.backlog {
				l.backlog = 0
			} else {
				l.backlog -= drained
			}
		}
	}
}

// fluidOverflow models a full fluid buffer: every slow-start flow crossing
// the link took losses, so it exits slow start and halves, exactly the
// feedback that stops the overshoot in a real network.
func (e *Engine) fluidOverflow(link int) {
	now := e.s.Now()
	li := int32(link)
	for _, fi := range e.active {
		f := &e.flows[fi]
		if f.ssDone {
			continue
		}
		for _, l := range f.path {
			if l == li {
				e.exitSlowStart(f, now)
				e.halve(f, now)
				break
			}
		}
	}
}

// exitSlowStart retires a flow from slow start (short flows complete within
// it by construction, but a loss still caps them).
func (e *Engine) exitSlowStart(f *fflow, now units.Time) {
	if !f.ssDone {
		f.ssDone = true
		e.ssCount--
	}
}

// halve applies a loss penalty: cap the flow at half its current send cap
// for one RTT of recovery and charge the RTT to its FCT. At most one
// penalty per RTT, like a real fast-recovery round.
func (e *Engine) halve(f *fflow, now units.Time) {
	if f.penaltyRate > 0 && now < f.penaltyUntil {
		return
	}
	half := e.sendCap(f, now) / 2
	if half < units.BitPerSecond {
		half = units.BitPerSecond
	}
	f.penaltyRate = half
	f.penaltyUntil = now.Add(e.cfg.RTT)
	f.extraDelay += e.cfg.RTT
}

// onTick is the quantum event: integrate, re-solve the water-filling if
// anything could have moved, and re-arm the derived timers.
func (e *Engine) onTick() {
	e.advance()
	if e.dirty || e.ssCount > 0 || e.anyPenalty() {
		e.recompute()
	}
	e.armCompletion()
	e.armCrossing()
}

// anyPenalty reports whether a loss penalty is still shaping some flow
// (its expiry changes caps without any arrival/completion).
func (e *Engine) anyPenalty() bool {
	for _, fi := range e.active {
		if e.flows[fi].penaltyRate > 0 {
			return true
		}
	}
	return false
}

// recompute re-solves the max-min allocation over the active flows and
// refreshes every link's offered rate.
func (e *Engine) recompute() {
	now := e.s.Now()
	n := len(e.active)
	e.stats.Recomputes++
	e.dirty = false
	if cap(e.caps) < n {
		e.caps = make([]units.Rate, n)
		e.rates = make([]units.Rate, n)
		e.paths = make([][]int32, n)
	}
	caps, rates, paths := e.caps[:n], e.rates[:n], e.paths[:n]
	for k, fi := range e.active {
		f := &e.flows[fi]
		if f.penaltyRate > 0 && now >= f.penaltyUntil {
			f.penaltyRate = 0
		}
		caps[k] = e.sendCap(f, now)
		paths[k] = f.path
	}
	e.wf.fill(e.linkCaps(), caps, paths, rates)
	for i := range e.links {
		e.links[i].inRate = 0
	}
	for k, fi := range e.active {
		f := &e.flows[fi]
		f.rate = rates[k]
		// Feedback delay: a flow keeps blasting its window for one RTT
		// after first seeing an allocation below its cap, then settles.
		// Long flows then track their share; short flows never settle —
		// they live and die inside slow start.
		offered := f.rate
		if !f.ssDone {
			if f.rate < caps[k] {
				if f.ssExitAt == 0 {
					f.ssExitAt = now.Add(e.cfg.RTT)
				} else if now >= f.ssExitAt && !f.short {
					e.exitSlowStart(f, now)
				}
				offered = caps[k]
			} else {
				f.ssExitAt = 0
			}
		}
		for _, l := range f.path {
			e.links[l].inRate += offered
		}
	}
}

// linkCaps returns the per-link capacities as a dense slice for the filler.
// Demoted links keep their capacity in the fill: the allocation of a
// packetized flow is its offered rate into the episode pump, which then
// applies the real scheme's admission and drain.
func (e *Engine) linkCaps() []units.Rate {
	if cap(e.wfCaps) < len(e.links) {
		e.wfCaps = make([]units.Rate, len(e.links))
	}
	out := e.wfCaps[:len(e.links)]
	for i := range e.links {
		out[i] = e.links[i].cap
	}
	return out
}

// armCompletion points the completion timer at the earliest projected flow
// finish under current rates. Packetized flows complete through their
// episode pump instead.
func (e *Engine) armCompletion() {
	best := units.MaxTime
	now := e.s.Now()
	horizon := units.MaxTime.Sub(now)
	for _, fi := range e.active {
		f := &e.flows[fi]
		if f.epLinks > 0 || f.rate <= 0 {
			continue
		}
		d := f.rate.Transmit(f.remaining)
		if d >= horizon {
			// Past the representable horizon (e.g. a starved 1 bps share on
			// a huge flow): leave it to the next rate recomputation instead
			// of wrapping Time and arming the timer in the past.
			continue
		}
		if t := now.Add(d + units.Picosecond); t < best {
			best = t
		}
	}
	if best == units.MaxTime {
		e.completion.Stop()
		return
	}
	e.completion.Reset(best.Sub(now))
}

// onCompletionTimer fires at a projected finish: integrate and complete
// every flow that has drained.
func (e *Engine) onCompletionTimer() {
	e.advance()
	e.completeDrained()
	e.armCompletion()
}

// completeDrained completes every active fluid flow with no bytes left,
// in flow order for determinism.
func (e *Engine) completeDrained() {
	for i := 0; i < len(e.active); {
		fi := e.active[i]
		f := &e.flows[fi]
		if f.epLinks == 0 && f.remaining <= 0 {
			e.complete(fi, true)
			continue // swap-removed: revisit index i
		}
		i++
	}
}

// complete retires flow fi and reports its FCT: the rate-limited transfer
// time plus the base RTT, the worst standing queue on its path, and any
// accumulated loss-recovery delay. Pump completions pass withQDelay false —
// a packetized flow waited out its queue explicitly, so adding the standing
// backlog again would double-count it.
func (e *Engine) complete(fi int32, withQDelay bool) {
	f := &e.flows[fi]
	now := e.s.Now()
	var qDelay units.Duration
	if withQDelay {
		for _, l := range f.path {
			ls := &e.links[l]
			b := ls.backlog
			if ls.demoted {
				b = ls.ep.total
			}
			if b > 0 {
				if d := ls.cap.Transmit(b); d > qDelay {
					qDelay = d
				}
			}
		}
	}
	fct := now.Sub(f.started) + e.cfg.RTT + qDelay + f.extraDelay
	// Swap-remove from the active set, patching the moved flow's index.
	last := len(e.active) - 1
	ai := f.activeIdx
	moved := e.active[last]
	e.active[ai] = moved
	e.flows[moved].activeIdx = ai
	e.active = e.active[:last]
	f.activeIdx = -1
	if !f.ssDone {
		e.ssCount--
		f.ssDone = true
	}
	e.stats.Completed++
	e.dirty = true
	if f.spec.OnComplete != nil {
		f.spec.OnComplete(fct)
	}
}

// armCrossing points the crossing timer at the earliest projected demote
// threshold crossing among growing fluid backlogs, so demotion lands at the
// crossing instant rather than the next quantum tick.
func (e *Engine) armCrossing() {
	best := units.MaxTime
	now := e.s.Now()
	horizon := units.MaxTime.Sub(now)
	for i := range e.links {
		l := &e.links[i]
		if l.demoted || l.inRate <= l.cap || l.backlog >= e.demoteB {
			continue
		}
		d := (l.inRate - l.cap).Transmit(e.demoteB - l.backlog)
		if d >= horizon {
			continue // crossing projects past the horizon; wait for a tick
		}
		if t := now.Add(d + units.Picosecond); t < best {
			best = t
		}
	}
	if best == units.MaxTime {
		e.crossing.Stop()
		return
	}
	e.crossing.Reset(best.Sub(now))
}

// onCrossingTimer fires at a projected threshold crossing: the advance
// detects the crossing (and demotes under hybrid) as a side effect.
func (e *Engine) onCrossingTimer() {
	e.advance()
	e.armCrossing()
}
