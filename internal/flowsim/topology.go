// Package flowsim is the flow-level (fluid) fast path of the simulator.
//
// Where internal/netsim moves individual packets through switch ports, this
// package models each active flow as a rate process: the set of concurrent
// flows is solved with progressive max-min filling (water-filling over
// bottleneck links) and advanced between rate-recomputation events — flow
// arrival, flow completion, slow-start epoch, threshold crossing — instead
// of per-packet events. A hybrid controller re-packetizes individual links
// through the real buffer-management schemes exactly when buffer precision
// matters (see hybrid.go), which is what keeps DynaQ/DT/PQL threshold
// behaviour honest while everything uncongested stays fluid.
//
// Everything is integer arithmetic on units types (picosecond time, bps
// rates, byte sizes): the engine is deterministic, byte-stable across runs,
// and safe under the repo's determinism lint.
package flowsim

import (
	"fmt"

	"dynaq/internal/units"
)

// hostNICSpeedup mirrors internal/topology: host NICs serialize 4x faster
// than switch ports so contention forms in switch buffers, not in hosts.
const hostNICSpeedup = 4

// Topology is a directed capacitated link graph plus a deterministic path
// oracle. Links are flat indices so the water-filler and the engine can keep
// all per-link state in parallel slices.
type Topology struct {
	kind  string
	hosts int
	caps  []units.Rate
	names []string

	// shape parameters (which are used depends on kind)
	leaves, spines, hostsPerLeaf int
	k                            int // fat-tree arity

	// link-index bases per role, precomputed by the builders
	hostUp, hostDown  int
	leafUp, spineDown int
	edgeUp, aggDown   int // fat-tree: edge<->agg within a pod
	aggUp, coreDown   int // fat-tree: agg<->core
	podSquare, halfK  int
}

const (
	kindStar      = "star"
	kindLeafSpine = "leafspine"
	kindFatTree   = "fattree"
)

// addLink appends a link and returns nothing; builders rely on append order
// matching their precomputed index bases.
func (t *Topology) addLink(name string, c units.Rate) {
	t.caps = append(t.caps, c)
	t.names = append(t.names, name)
}

// NewStar builds the paper's testbed rack: hosts hosts around one switch.
// Host uplinks run at the NIC speedup; switch downlinks at the port rate,
// so the congestible resource is the switch port toward each receiver —
// the same shape the packet engine has.
func NewStar(hosts int, rate units.Rate) (*Topology, error) {
	if hosts < 2 {
		return nil, fmt.Errorf("flowsim: star needs >= 2 hosts, got %d", hosts)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("flowsim: rate must be positive")
	}
	t := &Topology{kind: kindStar, hosts: hosts}
	t.hostUp = 0
	for h := 0; h < hosts; h++ {
		t.addLink(fmt.Sprintf("host%d:up", h), hostNICSpeedup*rate)
	}
	t.hostDown = len(t.caps)
	for h := 0; h < hosts; h++ {
		t.addLink(fmt.Sprintf("tor:%d", h), rate)
	}
	return t, nil
}

// NewLeafSpine builds the non-blocking leaf-spine fabric: every switch link
// at the port rate, host NICs at the speedup, matching internal/topology.
func NewLeafSpine(leaves, spines, hostsPerLeaf int, rate units.Rate) (*Topology, error) {
	if leaves <= 0 || spines <= 0 || hostsPerLeaf <= 0 {
		return nil, fmt.Errorf("flowsim: leaf-spine needs leaves/spines/hostsPerLeaf")
	}
	if rate <= 0 {
		return nil, fmt.Errorf("flowsim: rate must be positive")
	}
	hosts := leaves * hostsPerLeaf
	t := &Topology{kind: kindLeafSpine, hosts: hosts,
		leaves: leaves, spines: spines, hostsPerLeaf: hostsPerLeaf}
	t.hostUp = 0
	for h := 0; h < hosts; h++ {
		t.addLink(fmt.Sprintf("host%d:up", h), hostNICSpeedup*rate)
	}
	t.hostDown = len(t.caps)
	for h := 0; h < hosts; h++ {
		t.addLink(fmt.Sprintf("leaf%d:%d", h/hostsPerLeaf, h%hostsPerLeaf), rate)
	}
	t.leafUp = len(t.caps)
	for l := 0; l < leaves; l++ {
		for sp := 0; sp < spines; sp++ {
			t.addLink(fmt.Sprintf("leaf%d:up%d", l, sp), rate)
		}
	}
	t.spineDown = len(t.caps)
	for sp := 0; sp < spines; sp++ {
		for l := 0; l < leaves; l++ {
			t.addLink(fmt.Sprintf("spine%d:%d", sp, l), rate)
		}
	}
	return t, nil
}

// NewFatTree builds a k-ary fat tree (Al-Fares et al.): k pods of k/2 edge
// and k/2 aggregation switches, (k/2)^2 cores, k^3/4 hosts. All switch
// links run at the port rate (the fabric is rearrangeably non-blocking);
// host NICs get the usual speedup. This topology exists only at flow level:
// it is exactly the scale the fluid engine is for.
func NewFatTree(k int, rate units.Rate) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("flowsim: fat tree arity k=%d must be even and >= 2", k)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("flowsim: rate must be positive")
	}
	half := k / 2
	hosts := k * k * k / 4
	t := &Topology{kind: kindFatTree, hosts: hosts, k: k, halfK: half, podSquare: k * k / 4}
	t.hostUp = 0
	for h := 0; h < hosts; h++ {
		t.addLink(fmt.Sprintf("host%d:up", h), hostNICSpeedup*rate)
	}
	t.hostDown = len(t.caps)
	for h := 0; h < hosts; h++ {
		p, e, port := h/t.podSquare, (h%t.podSquare)/half, h%half
		t.addLink(fmt.Sprintf("pod%d/edge%d:%d", p, e, port), rate)
	}
	t.edgeUp = len(t.caps)
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				t.addLink(fmt.Sprintf("pod%d/edge%d:up%d", p, e, a), rate)
			}
		}
	}
	t.aggDown = len(t.caps)
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			for e := 0; e < half; e++ {
				t.addLink(fmt.Sprintf("pod%d/agg%d:%d", p, a, e), rate)
			}
		}
	}
	t.aggUp = len(t.caps)
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				t.addLink(fmt.Sprintf("pod%d/agg%d:up%d", p, a, j), rate)
			}
		}
	}
	t.coreDown = len(t.caps)
	for a := 0; a < half; a++ {
		for j := 0; j < half; j++ {
			for p := 0; p < k; p++ {
				t.addLink(fmt.Sprintf("core%d.%d:%d", a, j, p), rate)
			}
		}
	}
	return t, nil
}

// Hosts returns the number of end hosts.
func (t *Topology) Hosts() int { return t.hosts }

// NumLinks returns the number of directed links.
func (t *Topology) NumLinks() int { return len(t.caps) }

// Capacity returns link i's rate.
func (t *Topology) Capacity(i int) units.Rate { return t.caps[i] }

// LinkName returns link i's registry-style label.
func (t *Topology) LinkName(i int) string { return t.names[i] }

// Kind returns the topology kind ("star", "leafspine", "fattree").
func (t *Topology) Kind() string { return t.kind }

// ecmpHash is splitmix64: the deterministic multipath choice for a flow.
// Hashing the flow id (not a shared RNG) keeps path selection independent
// of arrival interleaving, which the parallel-parity guarantee needs.
func ecmpHash(key uint64) uint64 {
	key += 0x9e3779b97f4a7c15
	key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9
	key = (key ^ (key >> 27)) * 0x94d049bb133111eb
	return key ^ (key >> 31)
}

// Path appends the directed link indices from src to dst into buf and
// returns it. key seeds the deterministic ECMP choice where the fabric has
// multiple equal-cost paths.
func (t *Topology) Path(src, dst int, key uint64, buf []int32) []int32 {
	if src == dst || src < 0 || dst < 0 || src >= t.hosts || dst >= t.hosts {
		panic(fmt.Sprintf("flowsim: bad path %d->%d over %d hosts", src, dst, t.hosts))
	}
	buf = append(buf, int32(t.hostUp+src))
	h := ecmpHash(key)
	switch t.kind {
	case kindStar:
		// single hub: up, down
	case kindLeafSpine:
		lsrc, ldst := src/t.hostsPerLeaf, dst/t.hostsPerLeaf
		if lsrc != ldst {
			sp := int(h % uint64(t.spines))
			buf = append(buf,
				int32(t.leafUp+lsrc*t.spines+sp),
				int32(t.spineDown+sp*t.leaves+ldst))
		}
	case kindFatTree:
		half, sq := t.halfK, t.podSquare
		psrc, pdst := src/sq, dst/sq
		esrc, edst := (src%sq)/half, (dst%sq)/half
		switch {
		case psrc == pdst && esrc == edst:
			// same edge switch: up, down
		case psrc == pdst:
			a := int(h % uint64(half))
			buf = append(buf,
				int32(t.edgeUp+(psrc*half+esrc)*half+a),
				int32(t.aggDown+(pdst*half+a)*half+edst))
		default:
			a := int(h % uint64(half))
			j := int((h >> 32) % uint64(half))
			buf = append(buf,
				int32(t.edgeUp+(psrc*half+esrc)*half+a),
				int32(t.aggUp+(psrc*half+a)*half+j),
				int32(t.coreDown+(a*half+j)*t.k+pdst),
				int32(t.aggDown+(pdst*half+a)*half+edst))
		}
	}
	return append(buf, int32(t.hostDown+dst))
}
