package flowsim

import (
	"testing"

	"dynaq/internal/units"
)

func fillOnce(t *testing.T, linkCap []units.Rate, flowCap []units.Rate, paths [][]int32) []units.Rate {
	t.Helper()
	var w waterfiller
	out := make([]units.Rate, len(flowCap))
	w.fill(linkCap, flowCap, paths, out)
	return out
}

func TestWaterfillEqualShare(t *testing.T) {
	links := []units.Rate{units.Gbps}
	caps := []units.Rate{10 * units.Gbps, 10 * units.Gbps}
	paths := [][]int32{{0}, {0}}
	out := fillOnce(t, links, caps, paths)
	for i, r := range out {
		if r != units.Gbps/2 {
			t.Fatalf("flow %d rate = %v, want 500Mbps", i, r)
		}
	}
}

func TestWaterfillCapLimited(t *testing.T) {
	// One flow capped below its fair share: the other picks up the slack.
	links := []units.Rate{units.Gbps}
	caps := []units.Rate{100 * units.Mbps, 10 * units.Gbps}
	paths := [][]int32{{0}, {0}}
	out := fillOnce(t, links, caps, paths)
	if out[0] != 100*units.Mbps {
		t.Fatalf("capped flow rate = %v, want 100Mbps", out[0])
	}
	if out[1] != 900*units.Mbps {
		t.Fatalf("elastic flow rate = %v, want 900Mbps", out[1])
	}
}

func TestWaterfillTwoBottlenecks(t *testing.T) {
	// Classic progressive-filling example: flows A:{0}, B:{0,1}, C:{1},
	// link 0 = 1G, link 1 = 3G. Link 0 binds first: A=B=500M; C then takes
	// the rest of link 1: 2.5G (capped at its cap).
	links := []units.Rate{units.Gbps, 3 * units.Gbps}
	caps := []units.Rate{10 * units.Gbps, 10 * units.Gbps, 10 * units.Gbps}
	paths := [][]int32{{0}, {0, 1}, {1}}
	out := fillOnce(t, links, caps, paths)
	if out[0] != units.Gbps/2 || out[1] != units.Gbps/2 {
		t.Fatalf("link-0 flows = %v/%v, want 500Mbps each", out[0], out[1])
	}
	if want := 3*units.Gbps - units.Gbps/2; out[2] != want {
		t.Fatalf("flow C = %v, want %v", out[2], want)
	}
}

func TestWaterfillRespectsCapacity(t *testing.T) {
	// Random-ish mesh: total allocation on every link must not exceed its
	// capacity, and every flow must get a positive rate.
	links := []units.Rate{units.Gbps, 2 * units.Gbps, 500 * units.Mbps}
	caps := make([]units.Rate, 6)
	paths := [][]int32{{0, 1}, {1, 2}, {0, 2}, {2}, {1}, {0}}
	for i := range caps {
		caps[i] = units.Rate(1+i) * 300 * units.Mbps
	}
	out := fillOnce(t, links, caps, paths)
	sums := make([]int64, len(links))
	for f, p := range paths {
		if out[f] <= 0 {
			t.Fatalf("flow %d got no rate", f)
		}
		if out[f] > caps[f] {
			t.Fatalf("flow %d exceeds its cap: %v > %v", f, out[f], caps[f])
		}
		for _, l := range p {
			sums[l] += int64(out[f])
		}
	}
	for l, s := range sums {
		// The filler may oversubscribe a saturated link by at most one bps
		// per flow (integer floor shares with the 1bps progress clamp).
		if s > int64(links[l])+int64(len(paths)) {
			t.Fatalf("link %d oversubscribed: %d > %d", l, s, int64(links[l]))
		}
	}
}

func TestWaterfillReuseIsClean(t *testing.T) {
	// The same filler must give identical answers when its scratch is
	// reused across differently-shaped problems.
	var w waterfiller
	links := []units.Rate{units.Gbps}
	caps := []units.Rate{10 * units.Gbps, 10 * units.Gbps}
	paths := [][]int32{{0}, {0}}
	out1 := make([]units.Rate, 2)
	w.fill(links, caps, paths, out1)

	big := make([][]int32, 40)
	bigCaps := make([]units.Rate, 40)
	for i := range big {
		big[i] = []int32{0}
		bigCaps[i] = units.Gbps
	}
	tmp := make([]units.Rate, 40)
	w.fill(links, bigCaps, big, tmp)

	out2 := make([]units.Rate, 2)
	w.fill(links, caps, paths, out2)
	if out1[0] != out2[0] || out1[1] != out2[1] {
		t.Fatalf("scratch reuse changed the answer: %v vs %v", out1, out2)
	}
}

func BenchmarkWaterfill(b *testing.B) {
	// 512 flows over a k=8 fat tree's links: a representative recompute.
	topo, err := NewFatTree(8, 10*units.Gbps)
	if err != nil {
		b.Fatal(err)
	}
	links := make([]units.Rate, topo.NumLinks())
	for i := range links {
		links[i] = topo.Capacity(i)
	}
	const n = 512
	caps := make([]units.Rate, n)
	paths := make([][]int32, n)
	hosts := topo.Hosts()
	for i := 0; i < n; i++ {
		src := (i * 37) % hosts
		dst := (i*53 + 1) % hosts
		if dst == src {
			dst = (dst + 1) % hosts
		}
		paths[i] = topo.Path(src, dst, uint64(i), nil)
		caps[i] = 40 * units.Gbps
	}
	out := make([]units.Rate, n)
	var w waterfiller
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.fill(links, caps, paths, out)
	}
	b.ReportMetric(float64(b.N)*float64(n)/b.Elapsed().Seconds(), "flowfills/s")
}
