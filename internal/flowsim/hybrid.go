package flowsim

import (
	"dynaq/internal/buffer"
	"dynaq/internal/sim"
	ttrace "dynaq/internal/telemetry/trace"
	"dynaq/internal/units"
)

// pumpBatchMTUs sets the episode pump granularity: one pump tick spans the
// serialization time of this many MTUs at the link rate, so packetized
// admission runs at near-packet resolution without one event per packet
// (48µs per tick on the 1GbE testbed, 4.8µs at 10G).
const pumpBatchMTUs = 4

// chunk is one synthetic packet sitting in a demoted port's queue. A flow
// of -1 marks phantom backlog converted from the fluid queue at demotion:
// it occupies buffer and delays, but delivers to nobody.
type chunk struct {
	flow  int32
	bytes int32
	at    units.Time // admission time, for sojourn-based schemes
}

// episode is the packetized state of one demoted link. The admission
// instance persists across the link's episodes so stateful schemes (DynaQ's
// dynamic thresholds) carry their state, exactly like a real port would.
type episode struct {
	adm     buffer.Admission
	queues  [][]chunk
	qlen    []units.ByteSize
	deficit []int64
	total   units.ByteSize
	carry   int64 // drain budget left over from the last tick

	flows  []int32 // active flows crossing the link this episode
	credit []int64 // per flows[i]: accrued bytes not yet packetized

	pump     *sim.Timer
	lastPump units.Time
	startT   units.Time
	packets  int64
	drops    int64
	marks    int64
}

// epView adapts an episode to buffer.View for the admission scheme.
type epView struct {
	ep  *episode
	buf units.ByteSize
}

func (v epView) NumQueues() int                { return len(v.ep.qlen) }
func (v epView) QueueLen(i int) units.ByteSize { return v.ep.qlen[i] }
func (v epView) TotalLen() units.ByteSize      { return v.ep.total }
func (v epView) Buffer() units.ByteSize        { return v.buf }

// demote switches link li to packet granularity: the fluid backlog becomes
// synthetic packets fed through the real scheme's admission, and an episode
// pump takes over arrival and drain at MTU-batch resolution.
func (e *Engine) demote(li int) {
	l := &e.links[li]
	ep := &l.ep
	if ep.adm == nil {
		adm, err := e.cfg.NewAdmission()
		if err != nil {
			// New() pre-validates the factory; a failure here means the
			// configuration changed mid-run, which cannot happen.
			panic("flowsim: admission factory failed mid-run: " + err.Error())
		}
		ep.adm = adm
		ep.queues = make([][]chunk, e.cfg.Queues)
		ep.qlen = make([]units.ByteSize, e.cfg.Queues)
		ep.deficit = make([]int64, e.cfg.Queues)
		link := li
		ep.pump = e.s.NewTimer(func() { e.pump(link) })
	}
	// Enroll every active flow crossing the link.
	ep.flows = ep.flows[:0]
	ep.credit = ep.credit[:0]
	for _, fi := range e.active {
		f := &e.flows[fi]
		for _, pl := range f.path {
			if int(pl) == li {
				ep.flows = append(ep.flows, fi)
				ep.credit = append(ep.credit, 0)
				f.epLinks++
				if f.epOwner < 0 {
					f.epOwner = int32(li)
				}
				break
			}
		}
	}
	if len(ep.flows) == 0 {
		// Nothing to packetize (the backlog can only have been built by
		// flows, but guard the invariant anyway).
		return
	}
	l.demoted = true
	e.stats.Demotions++
	now := e.s.Now()
	ep.startT = now
	ep.lastPump = now
	ep.packets, ep.drops, ep.marks = 0, 0, 0
	ep.carry = 0
	for i := range ep.deficit {
		ep.deficit[i] = 0
	}
	// Convert the fluid backlog into phantom packets through the scheme, so
	// the episode starts from the queue state the fluid model predicts.
	// Classes round-robin over the crossing flows' classes.
	view := epView{ep: ep, buf: e.cfg.Buffer}
	backlog := l.backlog
	l.backlog = 0
	for j := 0; backlog > 0; j++ {
		b := e.cfg.MTU
		if b > backlog {
			b = backlog
		}
		backlog -= b
		cls := e.flows[ep.flows[j%len(ep.flows)]].spec.Class
		if ep.total+b <= e.cfg.Buffer && ep.adm.Admit(view, cls, b) {
			e.enqueueChunk(ep, cls, chunk{flow: -1, bytes: int32(b), at: now})
		}
	}
	ep.pump.Reset(e.pumpInterval(l))
}

// pumpInterval is the episode tick: pumpBatchMTUs MTUs of serialization
// time at the link rate.
func (e *Engine) pumpInterval(l *linkState) units.Duration {
	return l.cap.Transmit(units.ByteSize(pumpBatchMTUs) * e.cfg.MTU)
}

// enqueueChunk appends an admitted chunk and keeps the episode accounting.
func (e *Engine) enqueueChunk(ep *episode, cls int, c chunk) {
	ep.queues[cls] = append(ep.queues[cls], c)
	ep.qlen[cls] += units.ByteSize(c.bytes)
	ep.total += units.ByteSize(c.bytes)
	ep.packets++
	e.stats.PacketizedPackets++
}

// pump is one episode tick of link li: accrue per-flow send credit, feed it
// through the scheme's admission as MTU chunks, drain the queues with DRR
// at link rate, and promote once the transient has drained.
func (e *Engine) pump(li int) {
	l := &e.links[li]
	if !l.demoted {
		return
	}
	ep := &l.ep
	now := e.s.Now()
	dt := now.Sub(ep.lastPump)
	ep.lastPump = now
	view := epView{ep: ep, buf: e.cfg.Buffer}

	// Arrivals: each crossing flow offers its current send rate; an owner
	// link packetizes the flow's bytes (a flow spanning two demoted links
	// is owned by the first, so it is not delivered twice).
	for k, fi := range ep.flows {
		f := &e.flows[fi]
		if f.activeIdx < 0 {
			continue
		}
		if f.epOwner < 0 {
			f.epOwner = int32(li)
		}
		if f.epOwner != int32(li) {
			continue
		}
		offered := f.rate
		if !f.ssDone {
			offered = e.sendCap(f, now)
		}
		ep.credit[k] += int64(offered.BytesIn(dt))
		if m := int64(f.remaining - f.inflight); ep.credit[k] > m {
			ep.credit[k] = m
		}
		for ep.credit[k] > 0 {
			b := e.cfg.MTU
			if avail := f.remaining - f.inflight; b > avail {
				b = avail
			}
			if b <= 0 || int64(b) > ep.credit[k] {
				break
			}
			if ep.total+b > e.cfg.Buffer || !ep.adm.Admit(view, f.spec.Class, b) {
				// Loss: the bytes stay unsent at the source; the flow
				// halves and exits slow start, and the rest of this
				// tick's credit burns with the lost window.
				e.stats.PacketizedDrops++
				ep.drops++
				e.exitSlowStart(f, now)
				e.halve(f, now)
				ep.credit[k] = 0
				break
			}
			ep.credit[k] -= int64(b)
			f.inflight += b
			if mk, ok := ep.adm.(buffer.EnqueueMarker); ok && mk.MarkOnEnqueue(view, f.spec.Class, b) {
				e.stats.PacketizedMarks++
				ep.marks++
				e.exitSlowStart(f, now)
				e.halve(f, now)
			}
			e.enqueueChunk(ep, f.spec.Class, chunk{flow: fi, bytes: int32(b), at: now})
		}
	}

	// Drain: DRR over the service queues at link rate, chunk granularity.
	budget := int64(l.cap.BytesIn(dt)) + ep.carry
	for budget > 0 && ep.total > 0 {
		progressed := false
		for q := 0; q < len(ep.queues) && budget > 0; q++ {
			cq := ep.queues[q]
			if len(cq) == 0 {
				ep.deficit[q] = 0
				continue
			}
			ep.deficit[q] += e.cfg.Weights[q] * int64(e.cfg.MTU)
			for len(cq) > 0 {
				c := cq[0]
				b := int64(c.bytes)
				if ep.deficit[q] < b || budget < b {
					break
				}
				cq = cq[1:]
				ep.deficit[q] -= b
				budget -= b
				progressed = true
				e.deliverChunk(ep, q, c, view, now)
			}
			ep.queues[q] = cq
			if len(cq) == 0 {
				ep.deficit[q] = 0
			}
		}
		if !progressed {
			break
		}
	}
	if ep.total > 0 {
		ep.carry = budget
	} else {
		ep.carry = 0
	}

	// Promote once the transient has drained to the promote threshold.
	if ep.total <= e.promoteB {
		e.promote(li)
		return
	}
	ep.pump.Reset(e.pumpInterval(l))
}

// deliverChunk hands one dequeued chunk to its flow (phantom chunks just
// vacate buffer), running the scheme's dequeue-time hooks.
func (e *Engine) deliverChunk(ep *episode, cls int, c chunk, view epView, now units.Time) {
	ep.qlen[cls] -= units.ByteSize(c.bytes)
	ep.total -= units.ByteSize(c.bytes)
	sojourn := now.Sub(c.at)
	dropped := false
	if dd, ok := ep.adm.(buffer.DequeueDropper); ok && dd.DropOnDequeue(cls, sojourn) {
		dropped = true
		e.stats.PacketizedDrops++
		ep.drops++
	}
	if ob, ok := ep.adm.(buffer.DequeueObserver); ok {
		ob.ObserveDequeue(view, cls, units.ByteSize(c.bytes), now)
	}
	if c.flow < 0 {
		return
	}
	f := &e.flows[c.flow]
	if f.activeIdx < 0 {
		return
	}
	f.inflight -= units.ByteSize(c.bytes)
	if dm, ok := ep.adm.(buffer.DequeueMarker); ok && dm.MarkOnDequeue(cls, sojourn) {
		e.stats.PacketizedMarks++
		ep.marks++
		e.exitSlowStart(f, now)
		e.halve(f, now)
	}
	if dropped {
		// The scheme discarded the packet at dequeue: the bytes must be
		// resent, so remaining is untouched and the flow pays a recovery.
		e.exitSlowStart(f, now)
		e.halve(f, now)
		return
	}
	if units.ByteSize(c.bytes) >= f.remaining {
		f.remaining = 0
	} else {
		f.remaining -= units.ByteSize(c.bytes)
	}
	if f.remaining <= 0 && f.inflight <= 0 {
		e.complete(c.flow, false)
	}
}

// promote returns link li to fluid: residual chunks become fluid backlog
// again, enrolled flows are released, and the episode span is emitted.
func (e *Engine) promote(li int) {
	l := &e.links[li]
	ep := &l.ep
	now := e.s.Now()
	l.demoted = false
	l.backlog = ep.total
	for q := range ep.queues {
		ep.queues[q] = ep.queues[q][:0]
		ep.qlen[q] = 0
		ep.deficit[q] = 0
	}
	ep.total = 0
	ep.carry = 0
	for _, fi := range ep.flows {
		f := &e.flows[fi]
		if f.activeIdx < 0 {
			continue
		}
		f.epLinks--
		f.inflight = 0
		if f.epOwner == int32(li) {
			f.epOwner = -1
		}
	}
	ep.flows = ep.flows[:0]
	ep.credit = ep.credit[:0]
	ep.pump.Stop()
	e.stats.Promotions++
	e.dirty = true
	if e.cfg.Spans != nil {
		e.cfg.Spans.SimSpan("demote", e.cfg.SpanParent, ep.startT, now,
			ttrace.A("link", e.topo.LinkName(li)),
			ttrace.AInt("packets", ep.packets),
			ttrace.AInt("drops", ep.drops),
			ttrace.AInt("marks", ep.marks))
	}
}
