package flowsim

import (
	"fmt"
	"math/rand"
	"testing"

	"dynaq/internal/buffer"
	"dynaq/internal/packet"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

func testConfig(t *testing.T, topo *Topology) Config {
	t.Helper()
	return Config{
		Topo:    topo,
		Queues:  3,
		Weights: []int64{1, 1, 1},
		Buffer:  100 * units.KB,
		MTU:     1500,
		MSS:     1460,
		RTT:     100 * units.Microsecond,
	}
}

// run steps the simulator until want flows completed (or the deadline).
func run(t *testing.T, s *sim.Simulator, e *Engine, want int64, deadline units.Time) {
	t.Helper()
	for e.stats.Completed < want && s.Pending() > 0 && s.Now() < deadline {
		s.Step()
	}
	if e.stats.Completed < want {
		t.Fatalf("completed %d of %d flows by %v", e.stats.Completed, want, s.Now())
	}
}

func TestSingleFlowFCT(t *testing.T) {
	topo, err := NewStar(2, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	e, err := New(s, testConfig(t, topo))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var fct units.Duration
	e.ScheduleArrival(0, FlowSpec{
		ID: 1, Src: 0, Dst: 1, Class: 1, Size: units.MB,
		OnComplete: func(d units.Duration) { fct = d },
	})
	run(t, s, e, 1, units.Time(units.Second))
	// 1MB at the 1Gbps bottleneck is 8ms; the model adds the base RTT and
	// at most one rate-assignment quantum of startup lag.
	lo, hi := 8*units.Millisecond, 9*units.Millisecond
	if fct < lo || fct > hi {
		t.Fatalf("FCT = %v, want within [%v, %v]", fct, lo, hi)
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	topo, err := NewStar(3, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	e, err := New(s, testConfig(t, topo))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	fcts := make([]units.Duration, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.ScheduleArrival(0, FlowSpec{
			ID: packet.FlowID(i + 1), Src: i, Dst: 2, Class: 1 + i, Size: units.MB,
			OnComplete: func(d units.Duration) { fcts[i] = d },
		})
	}
	run(t, s, e, 2, units.Time(units.Second))
	// Two 1MB flows into one 1Gbps port: each gets ~500Mbps, so ~16ms.
	for i, fct := range fcts {
		if fct < 15*units.Millisecond || fct > 19*units.Millisecond {
			t.Fatalf("flow %d FCT = %v, want ~16ms", i, fct)
		}
	}
}

// scheduleRandomFlows drives n flows with deterministic pseudo-random
// sizes, sources and arrival times into a star with `hosts` senders.
func scheduleRandomFlows(e *Engine, topo *Topology, n int, seed int64, record func(int, units.Duration)) {
	rng := rand.New(rand.NewSource(seed))
	at := units.Time(0)
	hosts := topo.Hosts()
	for i := 0; i < n; i++ {
		at = at.Add(units.Duration(rng.Int63n(int64(200 * units.Microsecond))))
		src := rng.Intn(hosts - 1)
		size := units.ByteSize(1000 + rng.Int63n(500_000))
		i := i
		e.ScheduleArrival(at, FlowSpec{
			ID: packet.FlowID(i + 1), Src: src, Dst: hosts - 1,
			Class: 1 + i%2, Size: size,
			OnComplete: func(d units.Duration) { record(i, d) },
		})
	}
}

// runEngine executes one full deterministic run and returns every FCT plus
// the final stats, for byte-for-byte comparison across runs.
func runEngine(t *testing.T, hybrid bool, seed int64) ([]units.Duration, Stats) {
	t.Helper()
	topo, err := NewStar(8, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	cfg := testConfig(t, topo)
	if hybrid {
		cfg.Hybrid = true
		cfg.NewAdmission = func() (buffer.Admission, error) {
			return buffer.NewDynaQ(cfg.Buffer, cfg.Weights)
		}
	}
	e, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const n = 200
	fcts := make([]units.Duration, n)
	scheduleRandomFlows(e, topo, n, seed, func(i int, d units.Duration) { fcts[i] = d })
	run(t, s, e, n, units.Time(30*units.Second))
	return fcts, e.Stats()
}

func TestEngineDeterminism(t *testing.T) {
	for _, hybrid := range []bool{false, true} {
		name := "flow"
		if hybrid {
			name = "hybrid"
		}
		t.Run(name, func(t *testing.T) {
			a, sa := runEngine(t, hybrid, 7)
			b, sb := runEngine(t, hybrid, 7)
			if sa != sb {
				t.Fatalf("stats differ across identical runs:\n%+v\n%+v", sa, sb)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("flow %d FCT differs: %v vs %v", i, a[i], b[i])
				}
			}
		})
	}
}

func TestHybridIncastDemotesAndRecovers(t *testing.T) {
	topo, err := NewStar(9, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	cfg := testConfig(t, topo)
	cfg.Hybrid = true
	cfg.NewAdmission = func() (buffer.Admission, error) {
		return buffer.NewDynaQ(cfg.Buffer, cfg.Weights)
	}
	e, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// 8 synchronized senders into one port: the canonical incast burst.
	for i := 0; i < 8; i++ {
		e.ScheduleArrival(units.Time(i)*units.Time(units.Microsecond), FlowSpec{
			ID: packet.FlowID(i + 1), Src: i, Dst: 8, Class: 1 + i%2, Size: 200 * units.KB,
			OnComplete: func(units.Duration) {},
		})
	}
	run(t, s, e, 8, units.Time(units.Second))
	st := e.Stats()
	if st.Demotions == 0 {
		t.Fatal("incast burst never demoted the hot port")
	}
	if st.Promotions != st.Demotions {
		t.Fatalf("episodes leaked: %d demotions, %d promotions", st.Demotions, st.Promotions)
	}
	if st.PacketizedPackets == 0 {
		t.Fatal("demoted episode packetized nothing")
	}
}

// TestDemoteAtExactThreshold pins the demotion instant to the byte: with a
// constant 1Gbps of fluid overload into a port whose demote threshold is
// 50KB, the backlog must be exactly 50KB when the episode starts.
func TestDemoteAtExactThreshold(t *testing.T) {
	topo, err := NewStar(3, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	cfg := testConfig(t, topo)
	cfg.Hybrid = true
	cfg.DemoteBytes = 50 * units.KB
	cfg.PromoteBytes = 10 * units.KB
	// A giant initial window plus a short-flow cutoff above the flow sizes
	// keeps both sources blasting at their 1Gbps path peak throughout, so
	// the hot port sees a constant 2Gbps offered vs 1Gbps drained.
	cfg.InitWindow = units.MB
	cfg.FlowCutoff = 2 * units.MB
	cfg.NewAdmission = func() (buffer.Admission, error) {
		return buffer.NewBestEffort(), nil
	}
	e, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 2; i++ {
		e.ScheduleArrival(0, FlowSpec{
			ID: packet.FlowID(i + 1), Src: i, Dst: 2, Class: 1 + i, Size: units.MB,
			OnComplete: func(units.Duration) {},
		})
	}
	deadline := units.Time(units.Second)
	for e.stats.Demotions == 0 && s.Pending() > 0 && s.Now() < deadline {
		s.Step()
	}
	if e.stats.Demotions == 0 {
		t.Fatal("overloaded port never demoted")
	}
	hot := &e.links[topo.hostDown+2]
	if !hot.demoted {
		t.Fatal("hot port not in demoted state")
	}
	// The converted backlog is the episode's whole queue at this instant:
	// the demote threshold, to the byte.
	if hot.ep.total != cfg.DemoteBytes {
		t.Fatalf("queue at demotion = %v, want exactly %v", hot.ep.total, cfg.DemoteBytes)
	}
	// Rates were assigned one quantum (RTT/4) in, and the 1Gbps excess
	// then needs exactly 400us to build 50KB.
	want := units.Time(0).Add(cfg.RTT / 4).Add(units.Rate(units.Gbps).Transmit(cfg.DemoteBytes))
	if s.Now() != want {
		t.Fatalf("demotion at %v, want %v", s.Now(), want)
	}
	// Drive on: the episode must eventually drain and promote at (or
	// below) the promote threshold.
	for e.stats.Promotions == 0 && s.Pending() > 0 && s.Now() < deadline {
		s.Step()
	}
	if e.stats.Promotions == 0 {
		t.Fatal("episode never promoted back")
	}
	if hot.demoted {
		t.Fatal("hot port still demoted after promotion")
	}
	if hot.backlog > cfg.PromoteBytes {
		t.Fatalf("fluid backlog after promotion = %v, above promote threshold %v", hot.backlog, cfg.PromoteBytes)
	}
}

func BenchmarkFlowEngineFatTree(b *testing.B) {
	topo, err := NewFatTree(8, 10*units.Gbps)
	if err != nil {
		b.Fatal(err)
	}
	hosts := topo.Hosts()
	b.ReportAllocs()
	b.ResetTimer()
	var flows, recomputes int64
	for i := 0; i < b.N; i++ {
		s := sim.New()
		e, err := New(s, Config{
			Topo:    topo,
			Queues:  3,
			Weights: []int64{1, 1, 1},
			Buffer:  200 * units.KB,
			MTU:     1500,
			MSS:     1460,
			RTT:     40 * units.Microsecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		const n = 2000
		at := units.Time(0)
		for f := 0; f < n; f++ {
			at = at.Add(units.Duration(rng.Int63n(int64(5 * units.Microsecond))))
			src := rng.Intn(hosts)
			dst := rng.Intn(hosts - 1)
			if dst >= src {
				dst++
			}
			e.ScheduleArrival(at, FlowSpec{
				ID: packet.FlowID(f + 1), Src: src, Dst: dst,
				Class: 1 + f%2, Size: units.ByteSize(2000 + rng.Int63n(1_000_000)),
				OnComplete: func(units.Duration) {},
			})
		}
		deadline := units.Time(30 * units.Second)
		for e.stats.Completed < n && s.Pending() > 0 && s.Now() < deadline {
			s.Step()
		}
		if e.stats.Completed < n {
			b.Fatalf("completed %d of %d", e.stats.Completed, n)
		}
		flows += e.stats.Completed
		recomputes += e.stats.Recomputes
		e.Close()
	}
	b.ReportMetric(float64(flows)/b.Elapsed().Seconds(), "flows/s")
	b.ReportMetric(float64(recomputes)/b.Elapsed().Seconds(), "recomputes/s")
}

// BenchmarkHybridEngineStar overloads the star client downlink so demote
// episodes fire: the cost measured includes packetizing fluid backlogs
// through the real scheme admission and promoting back.
func BenchmarkHybridEngineStar(b *testing.B) {
	topo, err := NewStar(9, units.Gbps)
	if err != nil {
		b.Fatal(err)
	}
	weights := []int64{1, 1, 1}
	b.ReportAllocs()
	b.ResetTimer()
	var flows, demotions int64
	for i := 0; i < b.N; i++ {
		s := sim.New()
		e, err := New(s, Config{
			Topo:    topo,
			Queues:  3,
			Weights: weights,
			Buffer:  85 * units.KB,
			MTU:     1500,
			MSS:     1460,
			RTT:     500 * units.Microsecond,
			Hybrid:  true,
			NewAdmission: func() (buffer.Admission, error) {
				return buffer.NewDynaQ(85*units.KB, weights)
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		const n = 400
		fcts := make([]units.Duration, n)
		scheduleRandomFlows(e, topo, n, 7, func(i int, d units.Duration) { fcts[i] = d })
		deadline := units.Time(60 * units.Second)
		for e.stats.Completed < n && s.Pending() > 0 && s.Now() < deadline {
			s.Step()
		}
		if e.stats.Completed < n {
			b.Fatalf("completed %d of %d", e.stats.Completed, n)
		}
		flows += e.stats.Completed
		demotions += e.stats.Demotions
		e.Close()
	}
	b.ReportMetric(float64(flows)/b.Elapsed().Seconds(), "flows/s")
	b.ReportMetric(float64(demotions)/b.Elapsed().Seconds(), "demotions/s")
}

func ExampleEngine() {
	topo, _ := NewStar(2, units.Gbps)
	s := sim.New()
	e, _ := New(s, Config{
		Topo: topo, Queues: 2, Weights: []int64{1, 1},
		Buffer: 100 * units.KB, MTU: 1500, RTT: 100 * units.Microsecond,
	})
	defer e.Close()
	e.ScheduleArrival(0, FlowSpec{
		ID: 1, Src: 0, Dst: 1, Class: 1, Size: 150 * units.KB,
		OnComplete: func(fct units.Duration) { fmt.Println("done in", int64(fct/units.Microsecond), "us") },
	})
	for e.Stats().Completed < 1 && s.Pending() > 0 {
		s.Step()
	}
	// Output: done in 1325 us
}
