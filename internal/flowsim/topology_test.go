package flowsim

import (
	"testing"

	"dynaq/internal/units"
)

func TestFatTreeShape(t *testing.T) {
	const k = 8
	topo, err := NewFatTree(k, 10*units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := topo.Hosts(), k*k*k/4; got != want {
		t.Fatalf("hosts = %d, want %d", got, want)
	}
	// hosts up/down + edge<->agg both ways + agg<->core both ways
	wantLinks := 2*topo.Hosts() + 2*k*(k/2)*(k/2) + 2*k*(k/2)*(k/2)
	if got := topo.NumLinks(); got != wantLinks {
		t.Fatalf("links = %d, want %d", got, wantLinks)
	}
}

func TestFatTreePaths(t *testing.T) {
	const k = 4
	topo, err := NewFatTree(k, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Hosts()
	for src := 0; src < hosts; src++ {
		for dst := 0; dst < hosts; dst++ {
			if src == dst {
				continue
			}
			for key := uint64(0); key < 8; key++ {
				p := topo.Path(src, dst, key, nil)
				switch ln := len(p); ln {
				case 2, 4, 6:
				default:
					t.Fatalf("path %d->%d has %d hops", src, dst, ln)
				}
				for _, l := range p {
					if l < 0 || int(l) >= topo.NumLinks() {
						t.Fatalf("path %d->%d uses bad link %d", src, dst, l)
					}
				}
				if int(p[0]) != src {
					t.Fatalf("path %d->%d does not start at the source uplink", src, dst)
				}
				if int(p[len(p)-1]) != topo.hostDown+dst {
					t.Fatalf("path %d->%d does not end at the destination downlink", src, dst)
				}
				// Same key must give the same path (determinism).
				q := topo.Path(src, dst, key, nil)
				for i := range p {
					if p[i] != q[i] {
						t.Fatalf("path %d->%d key %d not deterministic", src, dst, key)
					}
				}
			}
		}
	}
}

func TestFatTreeCrossPodHopCount(t *testing.T) {
	topo, err := NewFatTree(4, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	// host 0 (pod 0) to the last host (pod 3) always crosses the core.
	p := topo.Path(0, topo.Hosts()-1, 3, nil)
	if len(p) != 6 {
		t.Fatalf("cross-pod path has %d hops, want 6", len(p))
	}
}

func TestStarAndLeafSpinePaths(t *testing.T) {
	star, err := NewStar(5, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if p := star.Path(0, 4, 7, nil); len(p) != 2 {
		t.Fatalf("star path has %d hops, want 2", len(p))
	}
	ls, err := NewLeafSpine(4, 4, 4, units.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if p := ls.Path(0, 1, 0, nil); len(p) != 2 {
		t.Fatalf("same-leaf path has %d hops, want 2", len(p))
	}
	if p := ls.Path(0, 15, 0, nil); len(p) != 4 {
		t.Fatalf("cross-leaf path has %d hops, want 4", len(p))
	}
}

func TestFatTreeRejectsOddArity(t *testing.T) {
	if _, err := NewFatTree(5, units.Gbps); err == nil {
		t.Fatal("odd arity accepted")
	}
}
