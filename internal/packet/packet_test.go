package packet

import (
	"strings"
	"testing"
)

func TestMarkRequiresECT(t *testing.T) {
	p := &Packet{ECN: NotECT}
	if p.Mark() {
		t.Fatal("non-ECT packet must not be markable")
	}
	if p.Marked() {
		t.Fatal("packet should not be marked")
	}

	p = &Packet{ECN: ECT}
	if !p.Mark() {
		t.Fatal("ECT packet must be markable")
	}
	if !p.Marked() {
		t.Fatal("marked packet should report Marked")
	}

	// Marking a CE packet again is fine and stays marked.
	if !p.Mark() {
		t.Fatal("CE packet re-mark should report true")
	}
}

func TestString(t *testing.T) {
	p := &Packet{Kind: Data, Flow: 7, Src: 1, Dst: 2, Seq: 1500, Size: 1500, Class: 3}
	s := p.String()
	for _, want := range []string{"DATA", "flow=7", "1->2", "seq=1500", "class=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	a := &Packet{Kind: Ack, Ack: 3000, Size: 40}
	if !strings.Contains(a.String(), "ACK") {
		t.Errorf("ack String() = %q", a.String())
	}
}
