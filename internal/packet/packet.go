// Package packet defines the on-wire unit that flows through the simulator:
// a TCP-like segment with ECN codepoints and a service-class tag.
//
// The service class plays the role of the DSCP field the paper's qdisc
// prototype reads to map a packet to a switch service queue.
package packet

import (
	"fmt"

	"dynaq/internal/units"
)

// FlowID uniquely identifies a transport flow.
type FlowID uint64

// ECN is the two-bit ECN codepoint from RFC 3168.
type ECN uint8

// ECN codepoints.
const (
	NotECT ECN = iota // transport does not support ECN
	ECT               // ECN-capable transport
	CE                // congestion experienced (set by a marking switch)
)

// Kind distinguishes data segments from pure ACKs; ACKs are never subject to
// service-queue buffering games in these experiments, but they still consume
// (small) link time.
type Kind uint8

// Packet kinds.
const (
	Data Kind = iota
	Ack
)

// Packet is one simulated segment. Packets are passed by pointer and are not
// copied after creation; the switch annotates EnqueueTime for sojourn-time
// schemes (TCN).
type Packet struct {
	Flow FlowID
	Kind Kind

	// Src and Dst are host ids used for routing.
	Src, Dst int

	// Size is the wire size in bytes, including headers.
	Size units.ByteSize

	// Seq is the first payload byte's sequence number (Data), in bytes.
	Seq int64
	// Ack is the cumulative acknowledgment (Ack packets): the next byte
	// the receiver expects.
	Ack int64
	// Payload is the number of payload bytes carried (Data).
	Payload units.ByteSize

	// Class is the service class: the index of the switch service queue
	// this packet maps to (the paper's DSCP-derived queue index). For
	// SPQ/DRR hybrids, class 0 is the high-priority queue.
	Class int

	// ECN state. Echo is the receiver->sender congestion echo (the
	// TCP ECE flag); CWR would be modelled symmetrically but DCTCP's
	// per-packet echo makes it unnecessary here.
	ECN  ECN
	Echo bool

	// SentAt is when the sender (re)transmitted this packet; used for RTT
	// estimation without timestamps options.
	SentAt units.Time

	// EnqueueTime is stamped by the switch port on enqueue so that
	// dequeue-time schemes (TCN) can compute the sojourn time.
	EnqueueTime units.Time
}

// String renders a compact human-readable packet description for traces.
func (p *Packet) String() string {
	k := "DATA"
	if p.Kind == Ack {
		k = "ACK"
	}
	return fmt.Sprintf("%s flow=%d %d->%d seq=%d ack=%d size=%d class=%d",
		k, p.Flow, p.Src, p.Dst, p.Seq, p.Ack, int64(p.Size), p.Class)
}

// Marked reports whether a switch set Congestion Experienced on the packet.
func (p *Packet) Marked() bool { return p.ECN == CE }

// Mark sets Congestion Experienced if the packet belongs to an ECN-capable
// transport, and reports whether the mark was applied. Non-ECT packets
// cannot be marked (RFC 3168); callers that want drop-instead-of-mark
// behaviour handle the false return.
func (p *Packet) Mark() bool {
	if p.ECN == NotECT {
		return false
	}
	p.ECN = CE
	return true
}
