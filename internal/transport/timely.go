package transport

import "dynaq/internal/units"

// Timely is a delay-based controller in the spirit of TIMELY (SIGCOMM'15),
// one of the non-ECN transports the paper cites as motivation (§II-B):
// congestion is inferred from the RTT and its gradient, no switch support
// needed. This is a window-based simplification of the original's
// rate-based engine: below T_low the window grows additively, above
// T_high it shrinks multiplicatively, and in between the RTT gradient
// steers the direction.
type Timely struct {
	// beta is the multiplicative decrease factor (TIMELY's β = 0.8 region
	// scaled for window mode).
	beta float64
	// addSteps scales additive increase (TIMELY's δ·N HAI mode).
	addSteps float64

	minRTT  units.Duration
	prevRTT units.Duration
}

// NewTimely returns a delay-based controller with TIMELY-like constants.
func NewTimely() *Timely {
	return &Timely{beta: 0.5, addSteps: 3}
}

// Name implements Controller.
func (*Timely) Name() string { return "timely" }

// OnAck implements Controller.
func (tm *Timely) OnAck(s *Sender, acked units.ByteSize, _ bool) {
	rtt := s.SRTT()
	mss := float64(s.MSS())
	if rtt == 0 {
		// No RTT estimate yet: slow-start ramp.
		s.SetCwnd(s.Cwnd() + float64(acked))
		return
	}
	if tm.minRTT == 0 || rtt < tm.minRTT {
		tm.minRTT = rtt
	}
	tLow := tm.minRTT + tm.minRTT/10 // 1.1·minRTT
	tHigh := 2 * tm.minRTT
	grad := float64(rtt-tm.prevRTT) / float64(tm.minRTT)
	tm.prevRTT = rtt
	frac := float64(acked) / s.Cwnd() // fraction of a window this ACK covers
	switch {
	case rtt < tLow:
		// Far from congestion: additive increase, HAI-style.
		s.SetCwnd(s.Cwnd() + tm.addSteps*mss*frac)
	case rtt > tHigh:
		// Deep queueing: multiplicative decrease toward T_high.
		scale := 1 - tm.beta*(1-float64(tHigh)/float64(rtt))*frac
		s.SetCwnd(s.Cwnd() * scale)
	case grad <= 0:
		// Queue draining: probe up.
		s.SetCwnd(s.Cwnd() + mss*frac)
	default:
		// Queue building: back off proportionally to the gradient.
		scale := 1 - tm.beta*grad*frac
		if scale < 0.5 {
			scale = 0.5
		}
		s.SetCwnd(s.Cwnd() * scale)
	}
	s.SetSsthresh(s.Cwnd())
}

// OnLoss implements Controller: delay-based flows still halve on packet
// loss (TIMELY assumes a lossless fabric; under drop-based isolation the
// standard reaction applies).
func (tm *Timely) OnLoss(s *Sender) {
	s.SetSsthresh(float64(s.FlightSize()) / 2)
	s.SetCwnd(s.Ssthresh())
}

// OnTimeout implements Controller.
func (tm *Timely) OnTimeout(s *Sender) {
	s.SetSsthresh(float64(s.FlightSize()) / 2)
	s.SetCwnd(float64(s.MSS()))
}
