package transport

import (
	"math"

	"dynaq/internal/units"
)

// Cubic implements CUBIC congestion control (RFC 8312): the window grows as
// a cubic function of the time since the last decrease, anchored at the
// window size W_max where the last loss occurred. It is the second generic
// transport in the paper's mixed-protocol experiment (Fig. 7).
type Cubic struct {
	// c is the CUBIC scaling constant in segments/s³ (RFC 8312: 0.4).
	c float64
	// beta is the multiplicative decrease factor (RFC 8312: 0.7).
	beta float64

	wmax     float64 // bytes: window just before the last reduction
	k        float64 // seconds to grow back to wmax
	epoch    units.Time
	hasEpoch bool
}

// NewCubic returns a CUBIC controller with RFC 8312 constants.
func NewCubic() *Cubic {
	return &Cubic{c: 0.4, beta: 0.7}
}

// Name implements Controller.
func (*Cubic) Name() string { return "cubic" }

// OnAck implements Controller.
func (cb *Cubic) OnAck(s *Sender, acked units.ByteSize, _ bool) {
	mss := float64(s.MSS())
	if s.Cwnd() < s.Ssthresh() {
		s.SetCwnd(s.Cwnd() + float64(acked))
		return
	}
	now := s.Now()
	if !cb.hasEpoch {
		cb.hasEpoch = true
		cb.epoch = now
		if cb.wmax < s.Cwnd() {
			// Start of a fresh epoch above the old anchor: grow from
			// here (the "convex region" entry point).
			cb.wmax = s.Cwnd()
		}
		cb.k = math.Cbrt((cb.wmax - s.Cwnd()) / mss / cb.c)
	}
	t := now.Sub(cb.epoch).Seconds()
	d := t - cb.k
	target := (cb.c*d*d*d + cb.wmax/mss) * mss
	if target > s.Cwnd() {
		// Spread the growth over the window's worth of ACKs.
		s.SetCwnd(s.Cwnd() + (target-s.Cwnd())*float64(acked)/s.Cwnd())
	} else {
		// Below the cubic curve (TCP-friendly region simplified to a
		// gentle Reno-like probe).
		s.SetCwnd(s.Cwnd() + mss*float64(acked)/(100*s.Cwnd())*mss)
	}
}

// OnLoss implements Controller: β-scaled decrease and a new cubic epoch.
func (cb *Cubic) OnLoss(s *Sender) {
	cb.wmax = s.Cwnd()
	cb.hasEpoch = false
	s.SetSsthresh(s.Cwnd() * cb.beta)
	s.SetCwnd(s.Ssthresh())
}

// OnTimeout implements Controller.
func (cb *Cubic) OnTimeout(s *Sender) {
	cb.wmax = s.Cwnd()
	cb.hasEpoch = false
	s.SetSsthresh(s.Cwnd() * cb.beta)
	s.SetCwnd(float64(s.MSS()))
}
