package transport

import "dynaq/internal/units"

// ECNReno is classic RFC 3168 ECN on top of NewReno: a congestion echo is
// treated like a loss signal — one multiplicative decrease per window —
// but without retransmission. It models the "ECN-enabled generic TCP"
// middle ground between plain Reno and DCTCP: coarse-grained (the paper's
// §II-B criticism of ECN as a signal) yet loss-free under marking schemes.
// Flows using it must set FlowConfig.ECN.
type ECNReno struct {
	inCWR  bool
	cwrEnd int64
}

// NewECNReno returns a classic-ECN NewReno controller.
func NewECNReno() *ECNReno { return &ECNReno{} }

// Name implements Controller.
func (*ECNReno) Name() string { return "ecn-reno" }

// OnAck implements Controller.
func (e *ECNReno) OnAck(s *Sender, acked units.ByteSize, echo bool) {
	if e.inCWR && s.Una() >= e.cwrEnd {
		e.inCWR = false
	}
	if echo && !e.inCWR {
		// RFC 3168: react at most once per window of data.
		e.inCWR = true
		e.cwrEnd = s.Nxt()
		s.SetSsthresh(s.Cwnd() / 2)
		s.SetCwnd(s.Ssthresh())
		return
	}
	mss := float64(s.MSS())
	if s.Cwnd() < s.Ssthresh() {
		s.SetCwnd(s.Cwnd() + float64(acked))
		return
	}
	s.SetCwnd(s.Cwnd() + mss*float64(acked)/s.Cwnd())
}

// OnLoss implements Controller.
func (e *ECNReno) OnLoss(s *Sender) {
	s.SetSsthresh(float64(s.FlightSize()) / 2)
	s.SetCwnd(s.Ssthresh())
	e.inCWR = false
}

// OnTimeout implements Controller.
func (e *ECNReno) OnTimeout(s *Sender) {
	s.SetSsthresh(float64(s.FlightSize()) / 2)
	s.SetCwnd(float64(s.MSS()))
	e.inCWR = false
}
