package transport

import (
	"testing"

	"dynaq/internal/packet"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

func seg(seq int64, n units.ByteSize, ecn packet.ECN) *packet.Packet {
	return &packet.Packet{Kind: packet.Data, Flow: 1, Src: 0, Dst: 2,
		Seq: seq, Payload: n, Size: n + HeaderSize, ECN: ecn}
}

func TestDelayedAcksCoalesceInOrder(t *testing.T) {
	s := sim.New()
	var acks []*packet.Packet
	r := newReceiver(s, 2, func(p *packet.Packet) { acks = append(acks, p) }, 1)
	r.setDelayedAcks(2, 500*units.Microsecond)
	r.onData(seg(0, 1000, packet.ECT))
	if len(acks) != 0 {
		t.Fatal("first in-order segment must be held")
	}
	r.onData(seg(1000, 1000, packet.ECT))
	if len(acks) != 1 {
		t.Fatalf("acks = %d, want 1 (coalesced pair)", len(acks))
	}
	if acks[0].Ack != 2000 {
		t.Fatalf("coalesced ack = %d, want 2000", acks[0].Ack)
	}
	if r.AcksSent() != 1 {
		t.Fatalf("AcksSent = %d", r.AcksSent())
	}
}

func TestDelayedAckTimerFlushes(t *testing.T) {
	s := sim.New()
	var acks []*packet.Packet
	r := newReceiver(s, 2, func(p *packet.Packet) { acks = append(acks, p) }, 1)
	r.setDelayedAcks(4, 500*units.Microsecond)
	r.onData(seg(0, 1000, packet.ECT))
	if len(acks) != 0 {
		t.Fatal("segment should be held for the timer")
	}
	s.Run() // fires the delayed-ACK timer
	if len(acks) != 1 || acks[0].Ack != 1000 {
		t.Fatalf("timer flush produced %d acks", len(acks))
	}
	if s.Now() != units.Time(500*units.Microsecond) {
		t.Fatalf("flushed at %v, want 500µs", s.Now())
	}
}

func TestDelayedAcksImmediateOnOutOfOrder(t *testing.T) {
	s := sim.New()
	var acks []*packet.Packet
	r := newReceiver(s, 2, func(p *packet.Packet) { acks = append(acks, p) }, 1)
	r.setDelayedAcks(4, 500*units.Microsecond)
	// A gap: segment at 2000 while expecting 0 → immediate duplicate ACK
	// so the sender's fast retransmit still triggers.
	r.onData(seg(2000, 1000, packet.ECT))
	if len(acks) != 1 || acks[0].Ack != 0 {
		t.Fatalf("out-of-order arrival must ack immediately: %d acks", len(acks))
	}
	// Filling the gap is also not "in order" (seq 0 == rcvNxt is in
	// order; use a second gap fill): deliver 0..1000, which IS in order,
	// then 1000..2000 in order pulls the buffered 2000..3000.
	r.onData(seg(0, 1000, packet.ECT))
	r.onData(seg(1000, 1000, packet.ECT))
	last := acks[len(acks)-1]
	if last.Ack != 3000 {
		t.Fatalf("final cumulative ack = %d, want 3000", last.Ack)
	}
}

func TestDelayedAcksImmediateOnCEChange(t *testing.T) {
	// RFC 8257: when the CE state flips, the previous run is acknowledged
	// with its own echo state so the DCTCP mark fraction stays exact.
	s := sim.New()
	var acks []*packet.Packet
	r := newReceiver(s, 2, func(p *packet.Packet) { acks = append(acks, p) }, 1)
	r.setDelayedAcks(4, 500*units.Microsecond)
	r.onData(seg(0, 1000, packet.ECT)) // unmarked, held
	marked := seg(1000, 1000, packet.ECT)
	marked.Mark()
	r.onData(marked) // CE flip → ack the unmarked run immediately
	if len(acks) != 1 {
		t.Fatalf("acks = %d, want 1 on CE flip", len(acks))
	}
	if acks[0].Echo {
		t.Fatal("the flushed run was unmarked; echo must be false")
	}
	// The marked run flushes via count/timer with echo set.
	s.Run()
	last := acks[len(acks)-1]
	if !last.Echo {
		t.Fatal("marked run must echo CE")
	}
	if last.Ack != 2000 {
		t.Fatalf("final ack = %d, want 2000", last.Ack)
	}
}

func TestSetDelayedAcksValidation(t *testing.T) {
	ep := &Endpoint{}
	if err := ep.SetDelayedAcks(1, units.Millisecond); err == nil {
		t.Error("every=1 should fail")
	}
	if err := ep.SetDelayedAcks(2, 0); err == nil {
		t.Error("zero delay should fail")
	}
	if err := ep.SetDelayedAcks(2, 500*units.Microsecond); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
