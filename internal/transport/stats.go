package transport

// Aggregate accessors for the telemetry layer. Each sums integer counters
// over the endpoint's flow maps: integer addition is associative, so the
// totals are order-independent despite Go's randomized map iteration.

// TotalStats sums the per-flow sender counters of this endpoint.
func (ep *Endpoint) TotalStats() SenderStats {
	var t SenderStats
	for _, snd := range ep.senders {
		st := snd.Stats()
		t.SentPackets += st.SentPackets
		t.SentBytes += st.SentBytes
		t.Retransmits += st.Retransmits
		t.Timeouts += st.Timeouts
		t.FastRecovers += st.FastRecovers
		t.EchoedAcks += st.EchoedAcks
	}
	return t
}

// ActiveFlows counts senders that have not yet completed.
func (ep *Endpoint) ActiveFlows() int {
	n := 0
	for _, snd := range ep.senders {
		if !snd.Done() {
			n++
		}
	}
	return n
}

// CwndTotal sums the congestion windows of the endpoint's active senders,
// truncating each window to whole bytes first so the sum stays
// order-independent.
func (ep *Endpoint) CwndTotal() int64 {
	var total int64
	for _, snd := range ep.senders {
		if !snd.Done() {
			total += int64(snd.cwnd)
		}
	}
	return total
}

// AcksSent sums the pure ACKs this endpoint's receivers have emitted.
func (ep *Endpoint) AcksSent() int64 {
	var n int64
	for _, r := range ep.receivers {
		n += r.acksSent
	}
	return n
}
