package transport

import "dynaq/internal/units"

// Reno implements NewReno congestion control (RFC 5681/6582): slow start,
// AIMD congestion avoidance, and halving on loss. This is the paper's
// "TCP" — the generic non-ECN transport the testbed servers run.
type Reno struct{}

// NewReno returns a NewReno controller. The zero value is also valid; the
// constructor exists for symmetry with the stateful controllers.
func NewReno() *Reno { return &Reno{} }

// Name implements Controller.
func (*Reno) Name() string { return "reno" }

// OnAck implements Controller: byte-counting slow start below ssthresh,
// one-MSS-per-window congestion avoidance above it.
func (*Reno) OnAck(s *Sender, acked units.ByteSize, _ bool) {
	mss := float64(s.MSS())
	if s.Cwnd() < s.Ssthresh() {
		s.SetCwnd(s.Cwnd() + float64(acked))
		return
	}
	s.SetCwnd(s.Cwnd() + mss*float64(acked)/s.Cwnd())
}

// OnLoss implements Controller: halve into recovery.
func (*Reno) OnLoss(s *Sender) {
	s.SetSsthresh(float64(s.FlightSize()) / 2)
	s.SetCwnd(s.Ssthresh())
}

// OnTimeout implements Controller: collapse to one segment.
func (*Reno) OnTimeout(s *Sender) {
	s.SetSsthresh(float64(s.FlightSize()) / 2)
	s.SetCwnd(float64(s.MSS()))
}
