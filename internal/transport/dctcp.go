package transport

import "dynaq/internal/units"

// DCTCP implements Data Center TCP (Alizadeh et al., SIGCOMM'10): the
// sender maintains an EWMA estimate α of the fraction of ECN-marked bytes
// per window and, once per window in which marks were observed, reduces
// cwnd by a factor α/2. Loss handling falls back to Reno. Flows using DCTCP
// must set FlowConfig.ECN so data packets carry ECT.
type DCTCP struct {
	// g is the EWMA gain (the paper and RFC 8257 use 1/16).
	g float64

	alpha      float64
	ackedBytes units.ByteSize
	markedByte units.ByteSize
	windowEnd  int64 // α update boundary (one RTT's worth of data)
	inCWR      bool
	cwrEnd     int64 // reduction applies once until una passes this
}

// NewDCTCP returns a DCTCP controller with RFC 8257 defaults (g = 1/16,
// initial α = 1, conservative until the first estimate completes).
func NewDCTCP() *DCTCP {
	return &DCTCP{g: 1.0 / 16.0, alpha: 1}
}

// Name implements Controller.
func (*DCTCP) Name() string { return "dctcp" }

// Alpha returns the current marked-fraction estimate.
func (d *DCTCP) Alpha() float64 { return d.alpha }

// OnAck implements Controller.
func (d *DCTCP) OnAck(s *Sender, acked units.ByteSize, echo bool) {
	d.ackedBytes += acked
	if echo {
		d.markedByte += acked
	}
	// Window rollover: refresh α from the observed mark fraction.
	if s.Una() >= d.windowEnd {
		if d.ackedBytes > 0 {
			f := float64(d.markedByte) / float64(d.ackedBytes)
			d.alpha = (1-d.g)*d.alpha + d.g*f
		}
		d.ackedBytes, d.markedByte = 0, 0
		d.windowEnd = s.Nxt()
	}
	if echo {
		if !d.inCWR {
			// One reduction per window of marked feedback.
			d.inCWR = true
			d.cwrEnd = s.Nxt()
			s.SetCwnd(s.Cwnd() * (1 - d.alpha/2))
			s.SetSsthresh(s.Cwnd())
		}
	}
	if d.inCWR && s.Una() >= d.cwrEnd {
		d.inCWR = false
	}
	// Growth: standard slow start / congestion avoidance between marks.
	mss := float64(s.MSS())
	if s.Cwnd() < s.Ssthresh() {
		s.SetCwnd(s.Cwnd() + float64(acked))
		return
	}
	s.SetCwnd(s.Cwnd() + mss*float64(acked)/s.Cwnd())
}

// OnLoss implements Controller: packet loss falls back to Reno halving.
func (d *DCTCP) OnLoss(s *Sender) {
	s.SetSsthresh(float64(s.FlightSize()) / 2)
	s.SetCwnd(s.Ssthresh())
	d.inCWR = false
}

// OnTimeout implements Controller.
func (d *DCTCP) OnTimeout(s *Sender) {
	s.SetSsthresh(float64(s.FlightSize()) / 2)
	s.SetCwnd(float64(s.MSS()))
	d.inCWR = false
}
