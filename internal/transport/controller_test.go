package transport

import (
	"math"
	"testing"

	"dynaq/internal/packet"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

// newTestSender builds a sender whose emissions go to sink.
func newTestSender(t *testing.T, s *sim.Simulator, cfg FlowConfig, sink func(*packet.Packet)) *Sender {
	t.Helper()
	if sink == nil {
		sink = func(*packet.Packet) {}
	}
	if cfg.Dst == 0 {
		cfg.Dst = 1
	}
	snd, err := newSender(s, 0, sink, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return snd
}

func TestSenderConfigValidation(t *testing.T) {
	s := sim.New()
	sink := func(*packet.Packet) {}
	if _, err := newSender(s, 0, sink, FlowConfig{Dst: 0}); err == nil {
		t.Error("self-loop flow should fail")
	}
	if _, err := newSender(s, 0, sink, FlowConfig{Dst: 1, Size: -1}); err == nil {
		t.Error("negative size should fail")
	}
	if _, err := newSender(s, 0, sink, FlowConfig{Dst: 1, MSS: -5}); err == nil {
		t.Error("negative MSS should fail")
	}
}

func TestInitialWindowBurst(t *testing.T) {
	s := sim.New()
	var sent []*packet.Packet
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.KB},
		func(p *packet.Packet) { sent = append(sent, p) })
	snd.start()
	if len(sent) != InitialWindow {
		t.Fatalf("initial burst = %d packets, want %d (RFC 6928)", len(sent), InitialWindow)
	}
	for i, p := range sent {
		if p.Seq != int64(i)*int64(DefaultMSS) {
			t.Fatalf("packet %d seq = %d", i, p.Seq)
		}
		if p.Payload != DefaultMSS {
			t.Fatalf("packet %d payload = %d", i, p.Payload)
		}
		if p.Size != DefaultMSS+HeaderSize {
			t.Fatalf("packet %d size = %d", i, p.Size)
		}
	}
}

func TestRenoSlowStartDoublesPerRTT(t *testing.T) {
	s := sim.New()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 10 * units.MB}, nil)
	snd.start()
	w0 := snd.Cwnd()
	// Ack the whole initial window: slow start grows cwnd by acked bytes.
	snd.onAck(&packet.Packet{Kind: packet.Ack, Flow: 1, Ack: snd.Nxt()})
	if got, want := snd.Cwnd(), 2*w0; math.Abs(got-want) > 1 {
		t.Fatalf("cwnd after full-window ack = %v, want %v", got, want)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	s := sim.New()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.MB}, nil)
	snd.start()
	snd.SetSsthresh(float64(4 * snd.MSS()))
	snd.SetCwnd(float64(10 * snd.MSS())) // above ssthresh → CA
	w0 := snd.Cwnd()
	// One full window of ACKs should add about one MSS.
	var ackedTotal units.ByteSize
	for ackedTotal < units.ByteSize(w0) {
		snd.ctrl.OnAck(snd, snd.MSS(), false)
		ackedTotal += snd.MSS()
	}
	growth := snd.Cwnd() - w0
	if growth < 0.8*float64(snd.MSS()) || growth > 1.3*float64(snd.MSS()) {
		t.Fatalf("CA growth per RTT = %.0fB, want ≈1 MSS (%d)", growth, snd.MSS())
	}
}

func TestFastRetransmitOnTripleDupAck(t *testing.T) {
	s := sim.New()
	var sent []*packet.Packet
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 1 * units.MB},
		func(p *packet.Packet) { sent = append(sent, p) })
	snd.start()
	before := len(sent)
	cwnd0 := snd.Cwnd()
	// Three duplicate ACKs at una=0.
	for i := 0; i < 3; i++ {
		snd.onAck(&packet.Packet{Kind: packet.Ack, Flow: 1, Ack: 0})
	}
	if snd.Stats().FastRecovers != 1 {
		t.Fatalf("fast recovers = %d, want 1", snd.Stats().FastRecovers)
	}
	if snd.Stats().Retransmits != 1 {
		t.Fatalf("retransmits = %d, want 1", snd.Stats().Retransmits)
	}
	rtx := sent[before]
	if rtx.Seq != 0 {
		t.Fatalf("retransmitted seq = %d, want 0", rtx.Seq)
	}
	if snd.Ssthresh() >= cwnd0 {
		t.Fatalf("ssthresh = %v not reduced from cwnd %v", snd.Ssthresh(), cwnd0)
	}
}

func TestNewRenoPartialAckRetransmitsNextHole(t *testing.T) {
	s := sim.New()
	var sent []*packet.Packet
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 1 * units.MB},
		func(p *packet.Packet) { sent = append(sent, p) })
	snd.start()
	for i := 0; i < 3; i++ {
		snd.onAck(&packet.Packet{Kind: packet.Ack, Flow: 1, Ack: 0})
	}
	// Partial ACK: first segment recovered, second still missing.
	n := len(sent)
	snd.onAck(&packet.Packet{Kind: packet.Ack, Flow: 1, Ack: int64(DefaultMSS)})
	if snd.Stats().Retransmits != 2 {
		t.Fatalf("retransmits = %d, want 2 (NewReno partial-ack rule)", snd.Stats().Retransmits)
	}
	if got := sent[n].Seq; got != int64(DefaultMSS) {
		t.Fatalf("partial-ack retransmission seq = %d, want %d", got, DefaultMSS)
	}
	// Full ACK exits recovery and deflates to ssthresh.
	snd.onAck(&packet.Packet{Kind: packet.Ack, Flow: 1, Ack: snd.recover})
	if snd.inRecovery {
		t.Fatal("full ACK should end recovery")
	}
	if snd.Cwnd() != snd.Ssthresh() {
		t.Fatalf("cwnd after recovery = %v, want ssthresh %v", snd.Cwnd(), snd.Ssthresh())
	}
}

func TestRTOCollapsesWindowAndBacksOff(t *testing.T) {
	s := sim.New()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 1 * units.MB, MinRTO: 10 * units.Millisecond}, nil)
	snd.start()
	// Let the RTO timer fire repeatedly (no ACKs ever arrive).
	s.RunUntil(units.Time(2 * units.Minute))
	if snd.Stats().Timeouts == 0 {
		t.Fatal("expected RTO timeouts with no ACKs")
	}
	if got := snd.Cwnd(); got != float64(snd.MSS()) {
		t.Fatalf("cwnd after RTO = %v, want 1 MSS", got)
	}
	// Exponential backoff must be capped.
	if snd.rto > DefaultMinRTO<<maxRTOBackoff {
		t.Fatalf("rto = %v beyond backoff cap", snd.rto)
	}
}

func TestRTTEstimator(t *testing.T) {
	s := sim.New()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 10 * units.MB, MinRTO: units.Millisecond}, nil)
	snd.start()
	snd.updateRTT(500 * units.Microsecond)
	if snd.srtt != 500*units.Microsecond {
		t.Fatalf("first srtt = %v", snd.srtt)
	}
	if snd.rttvar != 250*units.Microsecond {
		t.Fatalf("first rttvar = %v", snd.rttvar)
	}
	// RFC 6298: rto = srtt + 4·rttvar, floored at minRTO.
	if want := 1500 * units.Microsecond; snd.rto != want {
		t.Fatalf("rto = %v, want %v", snd.rto, want)
	}
	snd.updateRTT(500 * units.Microsecond)
	if snd.srtt != 500*units.Microsecond {
		t.Fatalf("steady srtt = %v", snd.srtt)
	}
	// Floor: tiny RTTs must not push RTO below minRTO.
	for i := 0; i < 20; i++ {
		snd.updateRTT(10 * units.Microsecond)
	}
	if snd.rto < units.Millisecond {
		t.Fatalf("rto = %v below the minRTO floor", snd.rto)
	}
}

func TestKarnNoSampleFromRetransmission(t *testing.T) {
	s := sim.New()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: units.MB}, nil)
	snd.start()
	if snd.sampleSeq != 0 {
		t.Fatalf("sampleSeq = %d, want 0 (first packet sampled)", snd.sampleSeq)
	}
	snd.transmit(0, DefaultMSS, true) // retransmission of the sampled seq
	if snd.sampleSeq != -1 {
		t.Fatal("Karn: retransmitting the sampled segment must cancel the sample")
	}
}

func TestStopUnboundedFlow(t *testing.T) {
	s := sim.New()
	done := false
	var fct units.Duration
	snd := newTestSender(t, s, FlowConfig{
		Flow: 1, Dst: 1, Size: 0, // unbounded
		OnComplete: func(d units.Duration) { done = true; fct = d },
	}, nil)
	snd.start()
	sent := snd.Nxt()
	if sent == 0 {
		t.Fatal("unbounded flow sent nothing")
	}
	snd.Stop()
	if done {
		t.Fatal("flow cannot complete while data is in flight")
	}
	snd.onAck(&packet.Packet{Kind: packet.Ack, Flow: 1, Ack: sent})
	if !done {
		t.Fatal("acking all sent bytes must complete a stopped flow")
	}
	_ = fct
	if !snd.Done() {
		t.Fatal("Done() should report true")
	}
}

func TestCompletionFiresOnceWithFCT(t *testing.T) {
	s := sim.New()
	calls := 0
	snd := newTestSender(t, s, FlowConfig{
		Flow: 1, Dst: 1, Size: 1000,
		OnComplete: func(d units.Duration) { calls++ },
	}, nil)
	snd.start()
	snd.onAck(&packet.Packet{Kind: packet.Ack, Flow: 1, Ack: 1000})
	snd.onAck(&packet.Packet{Kind: packet.Ack, Flow: 1, Ack: 1000}) // dup after done
	if calls != 1 {
		t.Fatalf("OnComplete fired %d times, want 1", calls)
	}
}

func TestClassOfOverridesClass(t *testing.T) {
	s := sim.New()
	var classes []int
	snd := newTestSender(t, s, FlowConfig{
		Flow: 1, Dst: 1, Size: 100 * units.KB, Class: 3,
		ClassOf: func(seq int64) int {
			if seq < 20000 {
				return 0
			}
			return 3
		},
	}, func(p *packet.Packet) { classes = append(classes, p.Class) })
	snd.start()
	// Ack everything progressively to flush the flow.
	for !snd.Done() {
		snd.onAck(&packet.Packet{Kind: packet.Ack, Flow: 1, Ack: snd.Nxt()})
	}
	if classes[0] != 0 {
		t.Fatal("early bytes should use the high-priority class")
	}
	last := classes[len(classes)-1]
	if last != 3 {
		t.Fatalf("late bytes class = %d, want 3 (demoted)", last)
	}
}

func TestCubicDecreaseFactor(t *testing.T) {
	s := sim.New()
	cb := NewCubic()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.MB, Ctrl: cb}, nil)
	snd.start()
	snd.SetCwnd(float64(100 * snd.MSS()))
	snd.nxt = snd.una + int64(100*snd.MSS()) // pretend a full window in flight
	w0 := snd.Cwnd()
	cb.OnLoss(snd)
	want := 0.7 * w0
	if math.Abs(snd.Cwnd()-want) > 1 {
		t.Fatalf("CUBIC loss window = %v, want β·W = %v", snd.Cwnd(), want)
	}
}

func TestCubicGrowsTowardWmax(t *testing.T) {
	s := sim.New()
	cb := NewCubic()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.MB, Ctrl: cb}, nil)
	snd.start()
	snd.SetCwnd(float64(100 * snd.MSS()))
	snd.nxt = snd.una + int64(100*snd.MSS())
	cb.OnLoss(snd)
	snd.SetSsthresh(snd.Cwnd()) // enter CA at the reduced window
	snd.rtoTimer.Stop()         // pure window-math test: no retransmissions
	wLoss := snd.Cwnd()
	// Feed ACKs over simulated time; the window must climb back toward
	// W_max following the cubic curve.
	for i := 0; i < 200; i++ {
		s.At(s.Now().Add(units.Millisecond), func() {
			cb.OnAck(snd, snd.MSS(), false)
		})
		s.Run()
	}
	if snd.Cwnd() <= wLoss {
		t.Fatalf("CUBIC window did not grow: %v ≤ %v", snd.Cwnd(), wLoss)
	}
	if snd.Cwnd() > 1.2*cb.wmax {
		t.Fatalf("CUBIC window %v overshot W_max %v too fast", snd.Cwnd(), cb.wmax)
	}
}

func TestDCTCPAlphaTracksMarkFraction(t *testing.T) {
	s := sim.New()
	d := NewDCTCP()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.MB, Ctrl: d, ECN: true}, nil)
	snd.start()
	snd.SetSsthresh(snd.Cwnd()) // force CA so growth is mild
	// No marks for many windows: α must decay toward 0.
	for i := 0; i < 200; i++ {
		snd.una += int64(snd.MSS())
		snd.nxt = snd.una + int64(snd.MSS())
		d.OnAck(snd, snd.MSS(), false)
	}
	if d.Alpha() > 0.01 {
		t.Fatalf("α = %v after unmarked windows, want ≈0", d.Alpha())
	}
	// All-marked windows: α must climb toward 1.
	for i := 0; i < 500; i++ {
		snd.una += int64(snd.MSS())
		snd.nxt = snd.una + int64(snd.MSS())
		d.OnAck(snd, snd.MSS(), true)
	}
	if d.Alpha() < 0.9 {
		t.Fatalf("α = %v after fully-marked windows, want ≈1", d.Alpha())
	}
}

func TestDCTCPReducesOncePerWindow(t *testing.T) {
	s := sim.New()
	d := NewDCTCP()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.MB, Ctrl: d, ECN: true}, nil)
	snd.start()
	snd.SetCwnd(float64(50 * snd.MSS()))
	snd.SetSsthresh(snd.Cwnd())
	snd.nxt = snd.una + int64(50*snd.MSS())
	w0 := snd.Cwnd()
	// Two echoes within the same window: only one reduction.
	d.OnAck(snd, snd.MSS(), true)
	w1 := snd.Cwnd()
	d.OnAck(snd, snd.MSS(), true)
	w2 := snd.Cwnd()
	if w1 >= w0 {
		t.Fatalf("first echo did not reduce: %v → %v", w0, w1)
	}
	// Second echo in the same window: CA growth only (< one MSS change).
	if w1-w2 > float64(snd.MSS()) {
		t.Fatalf("second echo reduced again within one window: %v → %v", w1, w2)
	}
}

func TestControllersReportNames(t *testing.T) {
	tests := []struct {
		c    Controller
		want string
	}{
		{NewReno(), "reno"},
		{NewCubic(), "cubic"},
		{NewDCTCP(), "dctcp"},
	}
	for _, tt := range tests {
		if got := tt.c.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestReceiverInOrderAndOutOfOrder(t *testing.T) {
	var acks []*packet.Packet
	r := newReceiver(sim.New(), 2, func(p *packet.Packet) { acks = append(acks, p) }, 1)
	seg := func(seq int64, n units.ByteSize, ecn packet.ECN) *packet.Packet {
		return &packet.Packet{Kind: packet.Data, Flow: 1, Src: 0, Dst: 2, Seq: seq, Payload: n, Size: n + HeaderSize, ECN: ecn}
	}
	r.onData(seg(0, 1000, packet.ECT))
	if acks[0].Ack != 1000 {
		t.Fatalf("ack = %d, want 1000", acks[0].Ack)
	}
	// Gap: segment 2000..3000 before 1000..2000 → dup ACK at 1000.
	r.onData(seg(2000, 1000, packet.ECT))
	if acks[1].Ack != 1000 {
		t.Fatalf("ooo ack = %d, want 1000 (dup)", acks[1].Ack)
	}
	// Fill the hole: cumulative ACK jumps over the buffered segment.
	r.onData(seg(1000, 1000, packet.ECT))
	if acks[2].Ack != 3000 {
		t.Fatalf("ack after fill = %d, want 3000", acks[2].Ack)
	}
	if r.Received() != 3000 {
		t.Fatalf("received = %d", r.Received())
	}
}

func TestReceiverEchoesCE(t *testing.T) {
	var acks []*packet.Packet
	r := newReceiver(sim.New(), 2, func(p *packet.Packet) { acks = append(acks, p) }, 1)
	p := &packet.Packet{Kind: packet.Data, Flow: 1, Src: 0, Dst: 2, Seq: 0, Payload: 1000, Size: 1040, ECN: packet.ECT}
	p.Mark()
	r.onData(p)
	if !acks[0].Echo {
		t.Fatal("CE data must produce an echoing ACK")
	}
	r.onData(&packet.Packet{Kind: packet.Data, Flow: 1, Src: 0, Dst: 2, Seq: 1000, Payload: 1000, Size: 1040, ECN: packet.ECT})
	if acks[1].Echo {
		t.Fatal("unmarked data must not echo")
	}
}

func TestReceiverDuplicateSegment(t *testing.T) {
	var acks []*packet.Packet
	r := newReceiver(sim.New(), 2, func(p *packet.Packet) { acks = append(acks, p) }, 1)
	seg := &packet.Packet{Kind: packet.Data, Flow: 1, Src: 0, Dst: 2, Seq: 0, Payload: 1000, Size: 1040}
	r.onData(seg)
	r.onData(seg) // retransmitted duplicate
	if acks[1].Ack != 1000 {
		t.Fatalf("dup segment ack = %d, want 1000", acks[1].Ack)
	}
	if r.Received() != 1000 {
		t.Fatalf("in-order received = %d, want 1000 (duplicates don't advance)", r.Received())
	}
}
