package transport

import (
	"testing"

	"dynaq/internal/sim"
	"dynaq/internal/units"
)

func TestTimelyRampsWithoutRTT(t *testing.T) {
	s := sim.New()
	tm := NewTimely()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.MB, Ctrl: tm}, nil)
	snd.start()
	w0 := snd.Cwnd()
	tm.OnAck(snd, snd.MSS(), false)
	if snd.Cwnd() <= w0 {
		t.Fatal("no ramp before the first RTT sample")
	}
	if tm.Name() != "timely" {
		t.Fatalf("Name = %q", tm.Name())
	}
}

func TestTimelyBacksOffAboveTHigh(t *testing.T) {
	s := sim.New()
	tm := NewTimely()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.MB, Ctrl: tm}, nil)
	snd.start()
	snd.SetCwnd(float64(50 * snd.MSS()))
	// Establish a low RTT floor, then a deep-queue RTT sample.
	snd.updateRTT(100 * units.Microsecond)
	tm.OnAck(snd, snd.MSS(), false) // records minRTT ≈ 100µs
	for i := 0; i < 30; i++ {
		snd.updateRTT(400 * units.Microsecond) // > 2·minRTT
	}
	w := snd.Cwnd()
	for i := 0; i < 50; i++ {
		tm.OnAck(snd, snd.MSS(), false)
	}
	if snd.Cwnd() >= w {
		t.Fatalf("window did not back off above T_high: %v → %v", w, snd.Cwnd())
	}
}

func TestTimelyGrowsBelowTLow(t *testing.T) {
	s := sim.New()
	tm := NewTimely()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.MB, Ctrl: tm}, nil)
	snd.start()
	snd.SetCwnd(float64(20 * snd.MSS()))
	snd.updateRTT(500 * units.Microsecond)
	tm.OnAck(snd, snd.MSS(), false)
	// Stable RTT at the floor: far from congestion → additive growth.
	w := snd.Cwnd()
	for i := 0; i < 20; i++ {
		tm.OnAck(snd, snd.MSS(), false)
	}
	if snd.Cwnd() <= w {
		t.Fatalf("window did not grow below T_low: %v → %v", w, snd.Cwnd())
	}
}

func TestTimelyLossFallback(t *testing.T) {
	s := sim.New()
	tm := NewTimely()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.MB, Ctrl: tm}, nil)
	snd.start()
	snd.nxt = snd.una + int64(40*snd.MSS())
	tm.OnLoss(snd)
	if snd.Cwnd() != snd.Ssthresh() {
		t.Fatal("loss should halve into ssthresh")
	}
	tm.OnTimeout(snd)
	if snd.Cwnd() != float64(snd.MSS()) {
		t.Fatal("timeout should collapse to one MSS")
	}
}
