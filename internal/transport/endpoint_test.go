package transport

import (
	"testing"

	"dynaq/internal/buffer"
	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

// wirePair builds two hosts connected back-to-back at 1Gbps with 125µs
// links — the smallest possible network for endpoint tests.
func wirePair(t *testing.T, s *sim.Simulator) (a, b *Endpoint) {
	t.Helper()
	ha := netsim.NewHost(0, nil)
	hb := netsim.NewHost(1, nil)
	mkNIC := func(dst netsim.Node) *netsim.Port {
		p, err := netsim.NewPort(s, netsim.PortConfig{
			Rate: units.Gbps, Buffer: units.MB, Queues: 1,
			Scheduler: sched.NewSPQ(), Admission: buffer.NewBestEffort(),
			Link: netsim.NewLink(s, 125*units.Microsecond, dst),
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	ha.SetEgress(mkNIC(hb))
	hb.SetEgress(mkNIC(ha))
	return NewEndpoint(s, ha), NewEndpoint(s, hb)
}

func TestEndpointLoopbackFlow(t *testing.T) {
	s := sim.New()
	a, b := wirePair(t, s)
	if a.Host().ID() != 0 || b.Host().ID() != 1 {
		t.Fatal("host ids wrong")
	}
	done := false
	snd, err := a.StartFlow(FlowConfig{
		Flow: 7, Dst: 1, Size: 300 * units.KB,
		OnComplete: func(units.Duration) { done = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if snd.Flow() != 7 {
		t.Fatalf("Flow() = %d", snd.Flow())
	}
	s.RunUntil(units.Time(units.Second))
	if !done {
		t.Fatal("flow did not complete over the wire pair")
	}
	if snd.SRTT() <= 0 {
		t.Fatal("no RTT estimate formed")
	}
}

func TestEndpointIgnoresStaleAcks(t *testing.T) {
	s := sim.New()
	a, _ := wirePair(t, s)
	// An ACK for a flow this endpoint never started must be dropped
	// silently (e.g. after sender teardown).
	a.Host().Receive(&packet.Packet{Kind: packet.Ack, Flow: 99, Ack: 1000, Size: AckSize})
	// And an unknown-kind-free path: data auto-creates a receiver.
	a.Host().Receive(&packet.Packet{
		Kind: packet.Data, Flow: 50, Src: 1, Dst: 0, Seq: 0, Payload: 100, Size: 140,
	})
	s.RunUntil(units.Time(10 * units.Millisecond))
	// The auto-created receiver ACKed back through the wire.
	if len(a.receivers) != 1 {
		t.Fatalf("receivers = %d, want 1", len(a.receivers))
	}
}

func TestStopBeforeAnythingInFlight(t *testing.T) {
	s := sim.New()
	a, _ := wirePair(t, s)
	completions := 0
	snd, err := a.StartFlow(FlowConfig{
		Flow: 1, Dst: 1, Size: 0,
		OnComplete: func(units.Duration) { completions++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(units.Time(100 * units.Millisecond)) // drain the opening burst
	snd.Stop()
	s.RunUntil(units.Time(units.Second))
	if completions != 1 {
		t.Fatalf("completions = %d", completions)
	}
	snd.Stop() // idempotent after completion
	if completions != 1 {
		t.Fatal("double Stop re-completed")
	}
}

func TestDCTCPLossPathsViaController(t *testing.T) {
	s := sim.New()
	d := NewDCTCP()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.MB, Ctrl: d, ECN: true}, nil)
	snd.start()
	snd.nxt = snd.una + int64(30*snd.MSS())
	d.OnLoss(snd)
	if snd.Cwnd() != snd.Ssthresh() {
		t.Fatal("DCTCP loss should fall back to Reno halving")
	}
	d.OnTimeout(snd)
	if snd.Cwnd() != float64(snd.MSS()) {
		t.Fatal("DCTCP timeout should collapse to 1 MSS")
	}
}

func TestCubicTimeoutAndFriendlyRegion(t *testing.T) {
	s := sim.New()
	cb := NewCubic()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.MB, Ctrl: cb}, nil)
	snd.start()
	snd.nxt = snd.una + int64(50*snd.MSS())
	snd.SetCwnd(float64(50 * snd.MSS()))
	cb.OnTimeout(snd)
	if snd.Cwnd() != float64(snd.MSS()) {
		t.Fatal("CUBIC timeout should collapse to 1 MSS")
	}
	if cb.hasEpoch {
		t.Fatal("timeout must reset the cubic epoch")
	}
	// Below-curve branch: window above the cubic target grows only gently.
	snd.SetCwnd(float64(100 * snd.MSS()))
	snd.SetSsthresh(float64(snd.MSS())) // force CA
	cb.wmax = float64(10 * snd.MSS())   // target far below cwnd
	cb.hasEpoch = false
	w0 := snd.Cwnd()
	cb.OnAck(snd, snd.MSS(), false)
	growth := snd.Cwnd() - w0
	if growth < 0 || growth > float64(snd.MSS()) {
		t.Fatalf("friendly-region growth = %v, want small and non-negative", growth)
	}
}

func TestDupAckWithNothingInFlightIgnored(t *testing.T) {
	s := sim.New()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 1000}, nil)
	snd.start()
	snd.onAck(&packet.Packet{Kind: packet.Ack, Flow: 1, Ack: 1000}) // completes
	// Post-completion duplicate of the final ACK must not panic or
	// retransmit.
	snd.onAck(&packet.Packet{Kind: packet.Ack, Flow: 1, Ack: 1000})
	if snd.Stats().Retransmits != 0 {
		t.Fatal("phantom retransmission after completion")
	}
}

func TestSetCwndFloor(t *testing.T) {
	s := sim.New()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: units.MB}, nil)
	snd.SetCwnd(-5)
	if snd.Cwnd() != float64(snd.MSS()) {
		t.Fatalf("cwnd floor = %v, want 1 MSS", snd.Cwnd())
	}
	snd.SetSsthresh(0)
	if snd.Ssthresh() != 2*float64(snd.MSS()) {
		t.Fatalf("ssthresh floor = %v, want 2 MSS", snd.Ssthresh())
	}
}
