// Package transport implements the packet-level end-host transports the
// paper evaluates under: NewReno TCP (the testbed's "TCP"), CUBIC, and
// DCTCP. The state machines model what matters for queue dynamics — window
// growth and backoff, fast retransmit/recovery, retransmission timeouts
// with RTO_min, and per-packet ECN echo — not byte-exact Linux behaviour.
package transport

import (
	"fmt"
	"math"

	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

// Wire-format constants.
const (
	// HeaderSize is the TCP/IP header overhead per segment.
	HeaderSize units.ByteSize = 40
	// AckSize is the wire size of a pure ACK.
	AckSize units.ByteSize = 40
	// DefaultMSS is the payload of a full segment on a 1500B MTU.
	DefaultMSS units.ByteSize = 1460
	// JumboMSS is the payload of a full segment on a 9000B jumbo frame
	// (Fig. 11/12 enable jumbo frames on 100Gbps links).
	JumboMSS units.ByteSize = 8960
	// InitialWindow is the initial congestion window in segments
	// (RFC 6928, as the paper configures).
	InitialWindow = 10
	// DefaultMinRTO matches the paper's testbed RTO_min.
	DefaultMinRTO = 10 * units.Millisecond
	// dupThresh is the classic three-duplicate-ACK fast-retransmit
	// threshold.
	dupThresh = 3
	// maxRTOBackoff caps exponential backoff (RTO ≤ minRTO·2^max).
	maxRTOBackoff = 10
)

// Controller is the congestion-control algorithm plugged into a Sender. A
// controller mutates the sender's cwnd/ssthresh through the setters; the
// sender owns loss detection, recovery bookkeeping, and retransmission.
type Controller interface {
	// Name identifies the algorithm in result tables.
	Name() string
	// OnAck processes an ACK that cumulatively acknowledged acked new
	// bytes outside of fast recovery; echo reports the ECN congestion
	// echo bit.
	OnAck(s *Sender, acked units.ByteSize, echo bool)
	// OnLoss runs at fast-retransmit time: multiplicative decrease. The
	// sender then applies NewReno window inflation on top.
	OnLoss(s *Sender)
	// OnTimeout runs on retransmission timeout: collapse the window.
	OnTimeout(s *Sender)
}

// FlowConfig describes one flow from a local endpoint to a destination
// host.
type FlowConfig struct {
	// Flow is the unique flow id.
	Flow packet.FlowID
	// Dst is the destination host id.
	Dst int
	// Class is the service class stamped on data packets.
	Class int
	// ClassOf, when non-nil, overrides Class per sequence number; the
	// PIAS classifier uses it to demote a flow's later bytes.
	ClassOf func(seq int64) int
	// Size is the flow length in payload bytes; 0 means unbounded
	// (an iperf-style flow stopped explicitly with Stop).
	Size units.ByteSize
	// MSS is the segment payload size (DefaultMSS when zero).
	MSS units.ByteSize
	// Ctrl is the congestion controller (NewReno when nil).
	Ctrl Controller
	// ECN enables ECT marking on data packets (set for DCTCP).
	ECN bool
	// MinRTO is the RTO floor (DefaultMinRTO when zero).
	MinRTO units.Duration
	// OnComplete, when non-nil, fires once when the last payload byte is
	// cumulatively acknowledged, with the flow completion time.
	OnComplete func(fct units.Duration)
}

// Sender is one TCP-like flow source.
type Sender struct {
	sim  *sim.Simulator
	emit func(*packet.Packet)

	flow    packet.FlowID
	src     int
	dst     int
	class   int
	classOf func(seq int64) int

	mss  units.ByteSize
	size int64 // flow length in payload bytes; MaxInt64 when unbounded
	ecn  bool
	ctrl Controller

	cwnd     float64 // congestion window, bytes
	ssthresh float64
	una      int64 // lowest unacknowledged byte
	nxt      int64 // next byte to send

	dupacks    int
	inRecovery bool
	recover    int64 // recovery ends when una passes this

	rto      units.Duration
	minRTO   units.Duration
	backoff  uint
	rtoTimer *sim.Timer
	srtt     units.Duration
	rttvar   units.Duration
	hasSRTT  bool

	// Karn-style single outstanding RTT sample.
	sampleSeq  int64 // -1 when no sample outstanding
	sampleTime units.Time

	started    units.Time
	done       bool
	onComplete func(fct units.Duration)

	stats SenderStats
}

// SenderStats counts sender-side events.
type SenderStats struct {
	SentPackets  int64
	SentBytes    units.ByteSize
	Retransmits  int64
	Timeouts     int64
	FastRecovers int64
	EchoedAcks   int64
}

func newSender(s *sim.Simulator, src int, emit func(*packet.Packet), cfg FlowConfig) (*Sender, error) {
	if cfg.Dst == src {
		return nil, fmt.Errorf("transport: flow %d is a self-loop at host %d", cfg.Flow, src)
	}
	if cfg.Size < 0 {
		return nil, fmt.Errorf("transport: flow %d has negative size %d", cfg.Flow, cfg.Size)
	}
	mss := cfg.MSS
	if mss == 0 {
		mss = DefaultMSS
	}
	if mss <= 0 {
		return nil, fmt.Errorf("transport: flow %d has invalid MSS %d", cfg.Flow, cfg.MSS)
	}
	ctrl := cfg.Ctrl
	if ctrl == nil {
		ctrl = NewReno()
	}
	minRTO := cfg.MinRTO
	if minRTO == 0 {
		minRTO = DefaultMinRTO
	}
	size := int64(cfg.Size)
	if size == 0 {
		size = math.MaxInt64
	}
	snd := &Sender{
		sim:        s,
		emit:       emit,
		flow:       cfg.Flow,
		src:        src,
		dst:        cfg.Dst,
		class:      cfg.Class,
		classOf:    cfg.ClassOf,
		mss:        mss,
		size:       size,
		ecn:        cfg.ECN,
		ctrl:       ctrl,
		cwnd:       float64(InitialWindow) * float64(mss),
		ssthresh:   math.MaxFloat64,
		rto:        minRTO,
		minRTO:     minRTO,
		sampleSeq:  -1,
		started:    s.Now(),
		onComplete: cfg.OnComplete,
	}
	snd.rtoTimer = s.NewTimer(snd.onTimeout)
	return snd, nil
}

// Flow returns the flow id.
func (s *Sender) Flow() packet.FlowID { return s.flow }

// Done reports whether the flow has completed (or was stopped and drained).
func (s *Sender) Done() bool { return s.done }

// Cwnd returns the congestion window in bytes.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// SetCwnd lets a Controller adjust the window; it enforces the one-MSS
// floor.
func (s *Sender) SetCwnd(w float64) {
	if w < float64(s.mss) {
		w = float64(s.mss)
	}
	s.cwnd = w
}

// Ssthresh returns the slow-start threshold in bytes.
func (s *Sender) Ssthresh() float64 { return s.ssthresh }

// SetSsthresh lets a Controller adjust ssthresh; it enforces the two-MSS
// floor (RFC 5681).
func (s *Sender) SetSsthresh(v float64) {
	if v < 2*float64(s.mss) {
		v = 2 * float64(s.mss)
	}
	s.ssthresh = v
}

// MSS returns the segment payload size.
func (s *Sender) MSS() units.ByteSize { return s.mss }

// Una returns the lowest unacknowledged byte (the cumulative ACK point).
func (s *Sender) Una() int64 { return s.una }

// Nxt returns the next byte to be sent.
func (s *Sender) Nxt() int64 { return s.nxt }

// FlightSize returns the outstanding bytes.
func (s *Sender) FlightSize() units.ByteSize { return units.ByteSize(s.nxt - s.una) }

// Stats returns a snapshot of the sender counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() units.Duration { return s.srtt }

// Now exposes the simulated clock to controllers.
func (s *Sender) Now() units.Time { return s.sim.Now() }

// start begins transmission.
func (s *Sender) start() { s.trySend() }

// Stop ends an unbounded flow: no new data is sent; in-flight data still
// drains (retransmissions included). Completion fires when the last sent
// byte is acknowledged.
func (s *Sender) Stop() {
	if s.done {
		return
	}
	s.size = s.nxt
	if s.una >= s.size {
		s.complete()
	}
}

func (s *Sender) classFor(seq int64) int {
	if s.classOf != nil {
		return s.classOf(seq)
	}
	return s.class
}

func (s *Sender) trySend() {
	if s.done {
		return
	}
	wnd := int64(s.cwnd)
	if wnd < int64(s.mss) {
		wnd = int64(s.mss)
	}
	for s.nxt < s.size {
		payload := int64(s.mss)
		if rest := s.size - s.nxt; rest < payload {
			payload = rest
		}
		if s.nxt-s.una+payload > wnd {
			break
		}
		s.transmit(s.nxt, units.ByteSize(payload), false)
		s.nxt += payload
	}
}

func (s *Sender) transmit(seq int64, payload units.ByteSize, isRtx bool) {
	p := &packet.Packet{
		Kind:    packet.Data,
		Flow:    s.flow,
		Src:     s.src,
		Dst:     s.dst,
		Seq:     seq,
		Payload: payload,
		Size:    payload + HeaderSize,
		Class:   s.classFor(seq),
		SentAt:  s.sim.Now(),
	}
	if s.ecn {
		p.ECN = packet.ECT
	}
	if isRtx {
		s.stats.Retransmits++
		if s.sampleSeq == seq {
			s.sampleSeq = -1 // Karn: never time a retransmitted segment
		}
	} else if s.sampleSeq < 0 {
		s.sampleSeq = seq
		s.sampleTime = s.sim.Now()
	}
	s.stats.SentPackets++
	s.stats.SentBytes += p.Size
	if !s.rtoTimer.Armed() {
		s.rtoTimer.Reset(s.rto)
	}
	s.emit(p)
}

// onAck processes a cumulative acknowledgment.
func (s *Sender) onAck(p *packet.Packet) {
	if s.done {
		return
	}
	if p.Echo {
		s.stats.EchoedAcks++
	}
	switch {
	case p.Ack > s.una:
		s.onNewAck(p.Ack, p.Echo)
	case p.Ack == s.una:
		s.onDupAck()
	}
	// p.Ack < s.una: stale ACK, ignored.
}

func (s *Sender) onNewAck(ack int64, echo bool) {
	acked := units.ByteSize(ack - s.una)
	s.una = ack
	s.backoff = 0
	if s.sampleSeq >= 0 && ack > s.sampleSeq {
		s.updateRTT(s.sim.Now().Sub(s.sampleTime))
		s.sampleSeq = -1
	}
	if s.inRecovery {
		if ack >= s.recover {
			// Full ACK: leave recovery and deflate to ssthresh.
			s.inRecovery = false
			s.dupacks = 0
			s.SetCwnd(s.ssthresh)
		} else {
			// NewReno partial ACK: the next hole is lost too.
			// Retransmit it and deflate by the acked amount
			// (plus one MSS of inflation).
			s.retransmitUna()
			s.SetCwnd(s.cwnd - float64(acked) + float64(s.mss))
		}
	} else {
		s.dupacks = 0
		s.ctrl.OnAck(s, acked, echo)
	}
	if s.una >= s.size {
		s.complete()
		return
	}
	s.rtoTimer.Reset(s.rto)
	s.trySend()
}

func (s *Sender) onDupAck() {
	if s.nxt == s.una {
		return // nothing in flight: e.g. duplicate of the final ACK
	}
	if s.inRecovery {
		// Window inflation: each dup ACK signals a departed segment.
		s.cwnd += float64(s.mss)
		s.trySend()
		return
	}
	s.dupacks++
	if s.dupacks < dupThresh {
		return
	}
	// Fast retransmit.
	s.inRecovery = true
	s.recover = s.nxt
	s.stats.FastRecovers++
	s.ctrl.OnLoss(s)
	s.SetCwnd(s.ssthresh + dupThresh*float64(s.mss))
	s.retransmitUna()
	s.rtoTimer.Reset(s.rto)
}

func (s *Sender) retransmitUna() {
	payload := int64(s.mss)
	if rest := s.size - s.una; rest < payload {
		payload = rest
	}
	if payload <= 0 {
		return
	}
	s.transmit(s.una, units.ByteSize(payload), true)
}

func (s *Sender) onTimeout() {
	if s.done {
		return
	}
	s.stats.Timeouts++
	s.ctrl.OnTimeout(s)
	s.inRecovery = false
	s.dupacks = 0
	s.sampleSeq = -1
	if s.backoff < maxRTOBackoff {
		s.backoff++
	}
	s.rto = s.baseRTO() << s.backoff
	// Go-back-N: resume from the ACK point.
	s.nxt = s.una
	payload := int64(s.mss)
	if rest := s.size - s.nxt; rest < payload {
		payload = rest
	}
	if payload <= 0 {
		// Stopped flow whose tail was already acknowledged.
		s.complete()
		return
	}
	s.transmit(s.nxt, units.ByteSize(payload), true)
	s.nxt += payload
	s.rtoTimer.Reset(s.rto)
}

func (s *Sender) baseRTO() units.Duration {
	if !s.hasSRTT {
		return s.minRTO
	}
	rto := s.srtt + 4*s.rttvar
	if rto < s.minRTO {
		rto = s.minRTO
	}
	return rto
}

func (s *Sender) updateRTT(m units.Duration) {
	if m <= 0 {
		m = units.Microsecond
	}
	if !s.hasSRTT {
		s.srtt = m
		s.rttvar = m / 2
		s.hasSRTT = true
	} else {
		// RFC 6298 with α=1/8, β=1/4.
		diff := s.srtt - m
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + m) / 8
	}
	s.rto = s.baseRTO()
}

func (s *Sender) complete() {
	if s.done {
		return
	}
	s.done = true
	s.rtoTimer.Stop()
	if s.onComplete != nil {
		s.onComplete(s.sim.Now().Sub(s.started))
	}
}

// Receiver is the flow sink: cumulative ACKs with out-of-order buffering
// and ECN echo. By default every data packet is acknowledged immediately
// (per-packet echo, DCTCP-exact). With delayed ACKs enabled, in-order
// unmarked segments coalesce up to ackEvery packets or the delayed-ACK
// timer, while the RFC 8257 rules force an immediate ACK on any CE-state
// change (so DCTCP's mark-fraction estimate stays exact) and on any
// out-of-order arrival (so duplicate ACKs still drive fast retransmit).
type Receiver struct {
	sim    *sim.Simulator
	me     int
	emit   func(*packet.Packet)
	flow   packet.FlowID
	rcvNxt int64
	ooo    map[int64]int64 // seq → end of buffered out-of-order segments
	rcvd   units.ByteSize

	ackEvery int            // coalescing factor; ≤1 = immediate ACKs
	ackDelay units.Duration // flush deadline for a pending delayed ACK
	ackTimer *sim.Timer
	unacked  int
	lastCE   bool // CE state of the most recent data packet
	lastPkt  *packet.Packet
	acksSent int64
}

func newReceiver(s *sim.Simulator, me int, emit func(*packet.Packet), flow packet.FlowID) *Receiver {
	r := &Receiver{sim: s, me: me, emit: emit, flow: flow, ooo: make(map[int64]int64)}
	r.ackTimer = s.NewTimer(func() { r.flush() })
	return r
}

// setDelayedAcks enables ACK coalescing: at most every packets per ACK,
// flushed after delay at the latest.
func (r *Receiver) setDelayedAcks(every int, delay units.Duration) {
	r.ackEvery = every
	r.ackDelay = delay
}

// Received returns the payload bytes delivered in order so far.
func (r *Receiver) Received() units.ByteSize { return units.ByteSize(r.rcvNxt) }

// AcksSent counts the acknowledgments emitted (for coalescing tests).
func (r *Receiver) AcksSent() int64 { return r.acksSent }

func (r *Receiver) onData(p *packet.Packet) {
	// Immediate-ACK conditions (RFC 5681): out-of-order arrivals (to feed
	// duplicate ACKs into fast retransmit) and arrivals while a
	// reassembly gap is pending (gap fills must unblock the sender now).
	inOrder := p.Seq == r.rcvNxt && len(r.ooo) == 0
	end := p.Seq + int64(p.Payload)
	if p.Seq <= r.rcvNxt {
		if end > r.rcvNxt {
			r.rcvNxt = end
		}
		// Pull any now-contiguous out-of-order segments.
		for {
			e, ok := r.ooo[r.rcvNxt]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNxt)
			r.rcvNxt = e
		}
	} else if e, ok := r.ooo[p.Seq]; !ok || end > e {
		r.ooo[p.Seq] = end
	}
	r.rcvd += p.Payload
	ce := p.ECN == packet.CE
	ceChanged := ce != r.lastCE && r.unacked > 0
	r.lastCE = ce
	r.lastPkt = p
	if r.ackEvery <= 1 {
		r.flush()
		return
	}
	if ceChanged {
		// RFC 8257: the CE state flipped — acknowledge the *previous*
		// run first so its echo is not misattributed, then start a new
		// run for this packet.
		prevEcho := !ce
		r.sendAck(p, prevEcho)
		r.unacked = 0
	}
	r.unacked++
	if !inOrder || r.unacked >= r.ackEvery {
		r.flush()
		return
	}
	if !r.ackTimer.Armed() {
		r.ackTimer.Reset(r.ackDelay)
	}
}

// flush acknowledges everything received so far with the current CE run's
// echo state.
func (r *Receiver) flush() {
	if r.lastPkt == nil {
		return
	}
	r.ackTimer.Stop()
	r.unacked = 0
	r.sendAck(r.lastPkt, r.lastCE)
}

func (r *Receiver) sendAck(ref *packet.Packet, echo bool) {
	r.acksSent++
	r.emit(&packet.Packet{
		Kind:  packet.Ack,
		Flow:  r.flow,
		Src:   r.me,
		Dst:   ref.Src,
		Ack:   r.rcvNxt,
		Size:  AckSize,
		Class: ref.Class,
		Echo:  echo,
	})
}

// Endpoint is the transport stack of one host: it demultiplexes arriving
// packets to flow senders/receivers and originates new flows.
type Endpoint struct {
	sim       *sim.Simulator
	host      *netsim.Host
	senders   map[packet.FlowID]*Sender
	receivers map[packet.FlowID]*Receiver

	// Delayed-ACK policy applied to receivers created from now on.
	ackEvery int
	ackDelay units.Duration
}

// NewEndpoint installs a transport stack on host.
func NewEndpoint(s *sim.Simulator, host *netsim.Host) *Endpoint {
	ep := &Endpoint{
		sim:       s,
		host:      host,
		senders:   make(map[packet.FlowID]*Sender),
		receivers: make(map[packet.FlowID]*Receiver),
	}
	host.SetHandler(ep.receive)
	return ep
}

// Host returns the attached host.
func (ep *Endpoint) Host() *netsim.Host { return ep.host }

// SetDelayedAcks enables ACK coalescing on receivers this endpoint creates
// afterwards: at most every data packets per ACK, flushed after delay.
// Out-of-order arrivals and ECN CE-state changes still acknowledge
// immediately (RFC 5681 / RFC 8257).
func (ep *Endpoint) SetDelayedAcks(every int, delay units.Duration) error {
	if every < 2 {
		return fmt.Errorf("transport: delayed ACKs need every ≥ 2, got %d", every)
	}
	if delay <= 0 {
		return fmt.Errorf("transport: delayed ACKs need a positive delay")
	}
	ep.ackEvery = every
	ep.ackDelay = delay
	return nil
}

// StartFlow originates a flow from this endpoint. The sender begins
// transmitting immediately (connection setup is not modelled, as in the
// paper's ns-2 simulations).
func (ep *Endpoint) StartFlow(cfg FlowConfig) (*Sender, error) {
	if _, ok := ep.senders[cfg.Flow]; ok {
		return nil, fmt.Errorf("transport: duplicate flow id %d at host %d", cfg.Flow, ep.host.ID())
	}
	snd, err := newSender(ep.sim, ep.host.ID(), ep.host.Send, cfg)
	if err != nil {
		return nil, err
	}
	ep.senders[cfg.Flow] = snd
	snd.start()
	return snd, nil
}

func (ep *Endpoint) receive(p *packet.Packet) {
	switch p.Kind {
	case packet.Data:
		r, ok := ep.receivers[p.Flow]
		if !ok {
			r = newReceiver(ep.sim, ep.host.ID(), ep.host.Send, p.Flow)
			if ep.ackEvery >= 2 {
				r.setDelayedAcks(ep.ackEvery, ep.ackDelay)
			}
			ep.receivers[p.Flow] = r
		}
		r.onData(p)
	case packet.Ack:
		if snd, ok := ep.senders[p.Flow]; ok {
			snd.onAck(p)
		}
		// ACKs for completed/unknown flows are silently dropped, like a
		// closed socket answering with RST would end the exchange.
	}
}
