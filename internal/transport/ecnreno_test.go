package transport

import (
	"testing"

	"dynaq/internal/sim"
	"dynaq/internal/units"
)

func TestECNRenoHalvesOncePerWindow(t *testing.T) {
	s := sim.New()
	e := NewECNReno()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.MB, Ctrl: e, ECN: true}, nil)
	snd.start()
	snd.SetCwnd(float64(40 * snd.MSS()))
	snd.SetSsthresh(snd.Cwnd())
	snd.nxt = snd.una + int64(40*snd.MSS())
	w0 := snd.Cwnd()
	e.OnAck(snd, snd.MSS(), true)
	w1 := snd.Cwnd()
	if w1 > w0/2+1 || w1 < w0/2-1 {
		t.Fatalf("cwnd after echo = %v, want w0/2 = %v", w1, w0/2)
	}
	// Second echo in the same window: no further decrease.
	e.OnAck(snd, snd.MSS(), true)
	if snd.Cwnd() < w1 {
		t.Fatalf("second echo reduced again within the window: %v → %v", w1, snd.Cwnd())
	}
	// After the window passes, a new echo halves again.
	snd.una = e.cwrEnd
	e.OnAck(snd, snd.MSS(), false) // clears CWR
	w2 := snd.Cwnd()
	e.OnAck(snd, snd.MSS(), true)
	if snd.Cwnd() >= w2 {
		t.Fatalf("post-window echo did not reduce: %v → %v", w2, snd.Cwnd())
	}
}

func TestECNRenoGrowsWithoutEcho(t *testing.T) {
	s := sim.New()
	e := NewECNReno()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.MB, Ctrl: e, ECN: true}, nil)
	snd.start()
	w0 := snd.Cwnd()
	e.OnAck(snd, snd.MSS(), false) // slow start
	if snd.Cwnd() <= w0 {
		t.Fatal("no growth in slow start")
	}
	if e.Name() != "ecn-reno" {
		t.Fatalf("Name = %q", e.Name())
	}
}

func TestECNRenoLossHandling(t *testing.T) {
	s := sim.New()
	e := NewECNReno()
	snd := newTestSender(t, s, FlowConfig{Flow: 1, Dst: 1, Size: 100 * units.MB, Ctrl: e, ECN: true}, nil)
	snd.start()
	snd.nxt = snd.una + int64(20*snd.MSS())
	e.OnLoss(snd)
	if snd.Cwnd() != snd.Ssthresh() {
		t.Fatal("loss should set cwnd to ssthresh")
	}
	e.OnTimeout(snd)
	if snd.Cwnd() != float64(snd.MSS()) {
		t.Fatal("timeout should collapse to 1 MSS")
	}
}
