package experiment

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dynaq/internal/metrics"
)

// CSVDumper is implemented by results that carry plottable series (the
// time-series figures: 3/4/5/7/10/11/12). WriteCSV writes one file per
// series into dir, returning the paths written.
type CSVDumper interface {
	WriteCSV(dir string) ([]string, error)
}

// writeThroughputCSV renders one scheme's throughput samples.
func writeThroughputCSV(w io.Writer, samples []metrics.ThroughputSample) error {
	if len(samples) == 0 {
		return nil
	}
	fmt.Fprint(w, "time_s")
	for q := range samples[0].PerQueue {
		fmt.Fprintf(w, ",queue%d_mbps", q)
	}
	fmt.Fprintln(w, ",aggregate_mbps")
	for _, s := range samples {
		fmt.Fprintf(w, "%.6f", s.At.Seconds())
		for _, r := range s.PerQueue {
			fmt.Fprintf(w, ",%.3f", float64(r)/1e6)
		}
		fmt.Fprintf(w, ",%.3f\n", float64(s.Aggregate)/1e6)
	}
	return nil
}

// writeQueueCSV renders one scheme's queue-length trace.
func writeQueueCSV(w io.Writer, samples []metrics.QueueSample) error {
	if len(samples) == 0 {
		return nil
	}
	fmt.Fprint(w, "time_s")
	for q := range samples[0].PerQueue {
		fmt.Fprintf(w, ",queue%d_bytes", q)
	}
	fmt.Fprintln(w)
	for _, s := range samples {
		fmt.Fprintf(w, "%.9f", s.At.Seconds())
		for _, b := range s.PerQueue {
			fmt.Fprintf(w, ",%d", int64(b))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func dumpFile(dir, name string, write func(io.Writer) error) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return "", err
	}
	return path, nil
}

// WriteCSV implements CSVDumper: per-scheme throughput series plus the
// Fig. 4 queue-length traces.
func (r *ConvergenceResult) WriteCSV(dir string) ([]string, error) {
	var paths []string
	for i, scheme := range r.Schemes {
		p, err := dumpFile(dir, fmt.Sprintf("fig3_throughput_%s.csv", scheme),
			func(w io.Writer) error { return writeThroughputCSV(w, r.Series[i]) })
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
		p, err = dumpFile(dir, fmt.Sprintf("fig4_queues_%s.csv", scheme),
			func(w io.Writer) error { return writeQueueCSV(w, r.Traces[i]) })
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// WriteCSV implements CSVDumper for the phased experiments (Figs. 5/7).
func (r *PhasedResult) WriteCSV(dir string) ([]string, error) {
	var paths []string
	for i, scheme := range r.Schemes {
		p, err := dumpFile(dir, fmt.Sprintf("phased_throughput_%s.csv", scheme),
			func(w io.Writer) error { return writeThroughputCSV(w, r.Series[i]) })
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// WriteCSV implements CSVDumper for the high-speed runs (Figs. 10-12).
func (r *HighSpeedResult) WriteCSV(dir string) ([]string, error) {
	var paths []string
	for i, scheme := range r.Schemes {
		p, err := dumpFile(dir, fmt.Sprintf("highspeed_%s_%s.csv", r.Rate, scheme),
			func(w io.Writer) error { return writeThroughputCSV(w, r.Series[i]) })
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// WriteCSV implements CSVDumper for FCT figures: one row per (scheme,
// load) cell.
func (r *FCTResult) WriteCSV(dir string) ([]string, error) {
	p, err := dumpFile(dir, fmt.Sprintf("%s_fct.csv", r.Figure), func(w io.Writer) error {
		fmt.Fprintln(w, "load,scheme,avg_overall_ms,avg_small_ms,avg_large_ms,p99_small_ms,completed,generated")
		for _, c := range r.Cells {
			fmt.Fprintf(w, "%.2f,%s,%.4f,%.4f,%.4f,%.4f,%d,%d\n",
				c.Load, c.Scheme,
				c.AvgOverall.Seconds()*1e3, c.AvgSmall.Seconds()*1e3,
				c.AvgLarge.Seconds()*1e3, c.P99Small.Seconds()*1e3,
				c.Completed, c.Generated)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return []string{p}, nil
}
