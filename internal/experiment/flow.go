package experiment

import (
	"fmt"
	"math/rand"

	"dynaq/internal/buffer"
	"dynaq/internal/flowsim"
	"dynaq/internal/metrics"
	"dynaq/internal/packet"
	"dynaq/internal/pias"
	"dynaq/internal/sim"
	"dynaq/internal/telemetry"
	ttrace "dynaq/internal/telemetry/trace"
	"dynaq/internal/transport"
	"dynaq/internal/units"
	"dynaq/internal/workload"
)

// EngineMode selects the fidelity of a dynamic-flow run: the per-packet
// discrete-event engine, the flow-level fluid engine, or the hybrid that
// packetizes individual ports only while buffer precision matters.
type EngineMode string

// Engine modes.
const (
	EnginePacket EngineMode = "packet"
	EngineFlow   EngineMode = "flow"
	EngineHybrid EngineMode = "hybrid"
)

// ParseEngineMode maps a flag/scenario string to an EngineMode; the empty
// string is the packet default.
func ParseEngineMode(s string) (EngineMode, error) {
	switch m := EngineMode(s); m {
	case "", EnginePacket:
		return EnginePacket, nil
	case EngineFlow, EngineHybrid:
		return m, nil
	default:
		return "", fmt.Errorf("experiment: unknown engine %q (want packet, flow or hybrid)", s)
	}
}

// runDynamicFluid is the flow/hybrid counterpart of RunDynamic: the same
// arrival processes, source/destination draws and class striping (so a given
// seed describes the same offered traffic), but flows are fluid rate
// processes in a flowsim.Engine instead of per-packet transfers.
func runDynamicFluid(cfg DynamicConfig) (*DynamicResult, error) {
	if cfg.Flows <= 0 {
		return nil, fmt.Errorf("experiment: dynamic run needs flows > 0")
	}
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("experiment: dynamic run needs at least one workload")
	}
	if cfg.Queues < 2 {
		return nil, fmt.Errorf("experiment: dynamic run needs an SPQ queue plus DRR queues")
	}
	if len(cfg.Faults) > 0 || cfg.Guard || cfg.FailureAware {
		return nil, fmt.Errorf("experiment: faults, guardrails and failure-aware routing need the packet engine")
	}
	if cfg.MTU == 0 {
		cfg.MTU = 1500
	}
	if cfg.Demotion == 0 {
		cfg.Demotion = pias.DefaultDemotionThreshold
	}
	if cfg.FlowCutoff == 0 {
		// The PIAS demotion threshold doubles as the short/long cutoff: a
		// flow the packet engine would keep in the high-priority queues is
		// exactly a flow that lives inside slow start.
		cfg.FlowCutoff = cfg.Demotion
	}
	if cfg.MaxRuntime == 0 {
		cfg.MaxRuntime = 10 * units.Second
	}
	if cfg.Params.Rate == 0 {
		cfg.Params.Rate = cfg.Rate
	}
	mss := cfg.MTU - transport.HeaderSize

	var (
		topo   *flowsim.Topology
		err    error
		hosts  int
		genCap units.Rate
	)
	switch cfg.Topo {
	case TopoStar:
		if cfg.Servers <= 0 {
			cfg.Servers = 4
		}
		hosts = cfg.Servers + 1
		if cfg.Params.BaseRTT == 0 {
			cfg.Params.BaseRTT = 4 * cfg.Delay
		}
		topo, err = flowsim.NewStar(hosts, cfg.Rate)
		genCap = cfg.Rate
	case TopoLeafSpine:
		if cfg.Leaves == 0 || cfg.Spines == 0 || cfg.HostsPerLeaf == 0 {
			return nil, fmt.Errorf("experiment: leaf-spine needs leaves/spines/hostsPerLeaf")
		}
		hosts = cfg.Leaves * cfg.HostsPerLeaf
		if cfg.Params.BaseRTT == 0 {
			cfg.Params.BaseRTT = 8 * cfg.Delay
		}
		topo, err = flowsim.NewLeafSpine(cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf, cfg.Rate)
		genCap = cfg.Rate * units.Rate(hosts)
	case TopoFatTree:
		if cfg.FatTreeK == 0 {
			return nil, fmt.Errorf("experiment: fat tree needs k")
		}
		if cfg.Params.BaseRTT == 0 {
			// Worst case 6 store-and-forward hops each way.
			cfg.Params.BaseRTT = 12 * cfg.Delay
		}
		topo, err = flowsim.NewFatTree(cfg.FatTreeK, cfg.Rate)
		if err == nil {
			hosts = topo.Hosts()
			genCap = cfg.Rate * units.Rate(hosts)
		}
	default:
		return nil, fmt.Errorf("experiment: unknown topology %q", cfg.Topo)
	}
	if err != nil {
		return nil, err
	}

	weights := cfg.Params.Weights
	if len(weights) == 0 {
		weights = make([]int64, cfg.Queues)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != cfg.Queues {
		return nil, fmt.Errorf("experiment: %d weights for %d queues", len(weights), cfg.Queues)
	}

	s := sim.New()
	fcfg := flowsim.Config{
		Topo:       topo,
		Queues:     cfg.Queues,
		Weights:    weights,
		Buffer:     cfg.Buffer,
		MTU:        cfg.MTU,
		MSS:        mss,
		RTT:        cfg.Params.BaseRTT,
		FlowCutoff: cfg.FlowCutoff,
		Spans:      cfg.Spans,
		SpanParent: cfg.SpanParent,
	}
	if cfg.Engine == EngineHybrid {
		fcfg.Hybrid = true
		scheme, params := cfg.Scheme, cfg.Params
		queues := cfg.Queues
		bufB := cfg.Buffer
		fcfg.NewAdmission = func() (buffer.Admission, error) {
			return scheme.NewAdmission(params, bufB, queues)
		}
	}
	fe, err := flowsim.New(s, fcfg)
	if err != nil {
		return nil, err
	}
	defer fe.Close()

	gens := make([]*workload.FlowGen, len(cfg.Workloads))
	for i, cdf := range cfg.Workloads {
		g, err := workload.NewFlowGen(cfg.Seed+int64(i), cdf, genCap, cfg.Load/float64(len(cfg.Workloads)))
		if err != nil {
			return nil, err
		}
		gens[i] = g
	}

	res := &DynamicResult{Scheme: cfg.Scheme, Load: cfg.Load, FCT: metrics.NewFCTCollector()}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	serviceQueues := cfg.Queues - 1
	var flowID packet.FlowID

	var fctHist *telemetry.Histogram
	if cfg.Telemetry != nil {
		treg := cfg.Telemetry.Registry()
		instrumentSim(treg, s)
		fe.Instrument(treg)
		treg.CounterFunc("flows_generated_total", func() int64 { return int64(flowID) })
		treg.CounterFunc("flows_completed_total", func() int64 { return int64(res.FCT.Len()) })
		fctHist = treg.Histogram("fct_us", fctBounds)
	}

	// The arrival/striping structure mirrors RunDynamic exactly: one arrival
	// process per workload, workload w striped over DRR queues w, w+len, ...,
	// identical rng draw order — only the flow execution differs.
	var schedule func(gi int, at units.Time)
	launch := func(gi int, at units.Time) {
		g := gens[gi]
		flowID++
		id := flowID
		size := g.NextSize()
		var src, dst int
		if cfg.Topo == TopoStar {
			dst = hosts - 1
			src = rng.Intn(hosts - 1)
		} else {
			src = rng.Intn(hosts)
			dst = rng.Intn(hosts - 1)
			if dst >= src {
				dst++
			}
		}
		qChoices := 0
		for q := gi; q < serviceQueues; q += len(gens) {
			qChoices++
		}
		pick := gi
		if qChoices > 1 {
			pick = gi + len(gens)*rng.Intn(qChoices)
		}
		class := 1 + pick
		fe.ScheduleArrival(at, flowsim.FlowSpec{
			ID:    id,
			Src:   src,
			Dst:   dst,
			Class: class,
			Size:  size,
			OnComplete: func(fct units.Duration) {
				res.FCT.Add(size, fct)
				if fctHist != nil {
					fctHist.Observe(int64(fct / units.Microsecond))
				}
			},
		})
	}
	perGen := cfg.Flows / len(gens)
	var left []int
	for range gens {
		left = append(left, perGen)
	}
	left[0] += cfg.Flows - perGen*len(gens)
	schedule = func(gi int, at units.Time) {
		if left[gi] <= 0 {
			return
		}
		left[gi]--
		s.At(at, func() {
			launch(gi, at)
			schedule(gi, at.Add(gens[gi].NextInterarrival()))
		})
	}
	for gi, g := range gens {
		schedule(gi, units.Time(g.NextInterarrival()))
	}

	var stopHB func()
	if cfg.Telemetry != nil || cfg.Progress != nil {
		var ew telemetry.EventWriter
		if cfg.Telemetry != nil {
			ew = cfg.Telemetry
		}
		stopHB = startHeartbeat(s, cfg.MaxRuntime, ew, cfg.Progress)
	}

	deadline := units.Time(cfg.MaxRuntime)
	for res.FCT.Len() < cfg.Flows && s.Pending() > 0 && s.Now() < deadline {
		s.Step()
	}
	if stopHB != nil {
		stopHB()
	}
	fe.Finish()
	if cfg.Spans != nil {
		cfg.Spans.SimSpan("sim", cfg.SpanParent, 0, s.Now(),
			ttrace.A("kind", "fct"),
			ttrace.A("engine", string(cfg.Engine)),
			ttrace.AInt("flows_completed", int64(res.FCT.Len())))
	}
	res.Generated = int(flowID)
	res.Completed = res.FCT.Len()
	res.Events = int64(s.Processed())
	stats := fe.Stats()
	res.Fluid = &stats
	return res, nil
}
