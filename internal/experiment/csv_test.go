package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynaq/internal/metrics"
	"dynaq/internal/units"
)

func TestConvergenceWriteCSV(t *testing.T) {
	dir := t.TempDir()
	r := &ConvergenceResult{
		Schemes: []Scheme{DynaQ},
		Series: [][]metrics.ThroughputSample{{
			{At: units.Time(units.Second), PerQueue: []units.Rate{100e6, 200e6}, Aggregate: 300e6},
		}},
		Traces: [][]metrics.QueueSample{{
			{At: units.Time(units.Millisecond), PerQueue: []units.ByteSize{1500, 3000}},
		}},
	}
	paths, err := r.WriteCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	b, err := os.ReadFile(filepath.Join(dir, "fig3_throughput_DynaQ.csv"))
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	if !strings.Contains(got, "queue0_mbps") || !strings.Contains(got, "1.000000,100.000,200.000,300.000") {
		t.Errorf("throughput csv:\n%s", got)
	}
	b, err = os.ReadFile(filepath.Join(dir, "fig4_queues_DynaQ.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "0.001000000,1500,3000") {
		t.Errorf("queue csv:\n%s", string(b))
	}
}

func TestFCTWriteCSV(t *testing.T) {
	dir := t.TempDir()
	r := &FCTResult{Figure: "fig8", Cells: []FCTStats{{
		Scheme: DynaQ, Load: 0.5,
		AvgOverall: 10 * units.Millisecond, AvgSmall: units.Millisecond,
		AvgLarge: 100 * units.Millisecond, P99Small: 2 * units.Millisecond,
		Completed: 100, Generated: 100,
	}}}
	paths, err := r.WriteCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "0.50,DynaQ,10.0000,1.0000,100.0000,2.0000,100,100") {
		t.Errorf("fct csv:\n%s", string(b))
	}
}

func TestPhasedAndHighSpeedWriteCSV(t *testing.T) {
	dir := t.TempDir()
	ph := &PhasedResult{
		Schemes: []Scheme{PQL},
		Series: [][]metrics.ThroughputSample{{
			{At: units.Time(units.Second), PerQueue: []units.Rate{1e9}, Aggregate: 1e9},
		}},
	}
	if _, err := ph.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	hs := &HighSpeedResult{
		Rate:    10 * units.Gbps,
		Schemes: []Scheme{BestEffort},
		Series: [][]metrics.ThroughputSample{{
			{At: units.Time(units.Second), PerQueue: []units.Rate{1e9}, Aggregate: 1e9},
		}},
	}
	paths, err := hs.WriteCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(paths[0], "10Gbps") {
		t.Errorf("path missing rate: %v", paths)
	}
}
