package experiment

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunTrialsCtxCancelStopsPromptly: cancelling mid-run must stop workers
// from claiming new trials — far fewer than n trials execute — and the
// harness must report the context error.
func TestRunTrialsCtxCancelStopsPromptly(t *testing.T) {
	const n = 1000
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	_, err := RunTrialsCtx(ctx, n, 4, func(trial int) (int, error) {
		started.Add(1)
		// The first few trials cancel the context and then park until the
		// cancellation is observable, so every later claim sees a dead ctx.
		once.Do(func() {
			cancel()
			close(release)
		})
		<-release
		return trial, nil
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	// In-flight trials (at most one per worker) may finish; nothing new may
	// start after the cancellation.
	if got := started.Load(); got > 8 {
		t.Fatalf("%d trials ran after cancellation; workers did not stop promptly", got)
	}
}

// TestRunTrialsCtxSequentialCancel covers the workers==1 fast path: the
// loop must notice the cancellation between trials.
func TestRunTrialsCtxSequentialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	_, err := RunTrialsCtx(ctx, 100, 1, func(trial int) (int, error) {
		ran++
		if trial == 2 {
			cancel()
		}
		return trial, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d trials, want 3 (cancelled after trial 2)", ran)
	}
}

// TestRunTrialsCtxTrialErrorBeatsCancel: a trial failure followed by a
// context cancellation must surface the trial error (first by index), not
// the cancellation — the same precedence RunTrials guarantees, and the
// property that keeps a job's terminal state independent of how the
// timeout races the failure. Run under -race this also exercises the
// stop/err handoff across workers.
func TestRunTrialsCtxTrialErrorBeatsCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := RunTrialsCtx(ctx, 64, 8, func(trial int) (int, error) {
		if trial == 5 {
			cancel() // timeout fires while the failure below is in flight
		}
		if trial == 3 {
			return 0, boom
		}
		return trial, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the trial error", err)
	}
	if !strings.Contains(err.Error(), "trial 3") {
		t.Fatalf("error %q does not name the failing trial", err)
	}
}

// TestRunTrialsCtxUncancelledMatchesRunTrials: with a background context the
// ctx path is byte-for-byte the old harness — same results, any worker
// count.
func TestRunTrialsCtxUncancelledMatchesRunTrials(t *testing.T) {
	square := func(trial int) (int, error) { return trial * trial, nil }
	seq, err := RunTrials(32, 1, square)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunTrialsCtx(context.Background(), 32, 8, square)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("trial %d: sequential %d != parallel %d", i, seq[i], par[i])
		}
	}
}
