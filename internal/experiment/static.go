package experiment

import (
	"fmt"
	"io"
	"math/rand"

	"dynaq/internal/faults"
	"dynaq/internal/metrics"
	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/sim"
	"dynaq/internal/telemetry"
	ttrace "dynaq/internal/telemetry/trace"
	"dynaq/internal/topology"
	"dynaq/internal/trace"
	"dynaq/internal/transport"
	"dynaq/internal/units"
)

// QueueSpec describes one service queue's traffic in a static-flow
// experiment: long-lived iperf-style flows that start together (with a
// small seeded jitter, as real senders would) and optionally stop at a
// fixed time.
type QueueSpec struct {
	// Class is the service queue index.
	Class int
	// Flows is the number of long-lived flows feeding this queue.
	Flows int
	// Hosts is the number of distinct sender hosts the flows spread over
	// (defaults to 1: one sender per queue, like the testbed).
	Hosts int
	// StopAt stops all of this queue's senders at the given time
	// (0 = run until the end).
	StopAt units.Duration
	// Ctrl builds the congestion controller per flow (NewReno when nil).
	Ctrl func() transport.Controller
	// ECN marks this queue's data packets ECT (for mixed ECN/non-ECN
	// tenant scenarios).
	ECN bool
}

// StaticConfig assembles a static-flow scenario on a star: all flows sink
// at one receiver, making its switch port the measured bottleneck.
type StaticConfig struct {
	Scheme Scheme
	Sched  SchedKind
	// Params carries weights and threshold constants; Rate/BaseRTT are
	// filled from the topology if zero.
	Params SchemeParams

	Rate   units.Rate
	Delay  units.Duration // per-link propagation (base RTT = 4·Delay)
	Buffer units.ByteSize
	Queues int
	MTU    units.ByteSize // 1500, or 9000 for jumbo (Fig. 11/12)

	Specs    []QueueSpec
	Duration units.Duration
	// SampleEvery sets the throughput sampling interval (paper: 0.5s
	// testbed, 10ms simulation).
	SampleEvery units.Duration
	// TraceQueues additionally records the queue-length evolution
	// (Fig. 4), decimated by TraceStride.
	TraceQueues bool
	TraceStride int

	// ECNFlows sets ECT on every flow's data packets (required when the
	// port scheme is a marking scheme and the controllers are DCTCP).
	ECNFlows bool

	// TraceEvents, when positive, records the last N drop/mark/evict
	// events at the bottleneck port into the result's Trace recorder.
	TraceEvents int

	// Faults is the scripted fault schedule, applied against the star's
	// fault registry (targets "tor:<i>", "host<i>:nic", group "tor"); the
	// timeline is a deterministic function of Seed.
	Faults []faults.Spec
	// Guard wires the invariant guardrail into every switch port,
	// recording Σ T_i == B / T_i ≥ 0 / occupancy / pool violations.
	Guard bool

	MinRTO units.Duration
	Seed   int64

	// Telemetry, when non-nil, streams the run's metric registry and
	// sim-time event log into the run's artifact directory; the caller
	// owns (and closes) the Run.
	Telemetry *telemetry.Run
	// Progress, when non-nil, receives human-readable wall-clock progress
	// lines (typically os.Stderr); it never feeds the artifacts.
	Progress io.Writer

	// Spans, when non-nil, receives retroactive sim-time phase spans for
	// the run (a "sim" root with "warmup"/"measure" children), parented
	// under SpanParent. Sim spans carry simulated time only — wall-clock
	// values must never reach them (dynaqlint enforces this at the
	// SimSpan sink).
	Spans      *ttrace.Tracer
	SpanParent string
}

// StaticResult is the outcome of a static-flow run.
type StaticResult struct {
	Scheme     Scheme
	Samples    []metrics.ThroughputSample
	QueueTrace []metrics.QueueSample
	// Drops counts enqueue drops at the bottleneck port.
	Drops int64
	// Trace holds the bottleneck event recorder when TraceEvents was set.
	Trace *trace.Recorder

	// FaultTimeline is the applied fault transitions (empty without Faults).
	FaultTimeline []faults.Transition
	// LinkLost / LinkCorrupted total the packets the faults blackholed or
	// corrupted across every link of the topology.
	LinkLost, LinkCorrupted int64
	// Violations holds the recorded guardrail violations (Guard only);
	// ViolationTotal counts all of them, recorded or not.
	Violations     []faults.Violation
	ViolationTotal int64
}

// startJitterSpan spreads flow starts over the first milliseconds like
// staggered real senders; synchronized microsecond-identical starts produce
// loss patterns no testbed exhibits.
const startJitterSpan = 5 * units.Millisecond

// RunStatic executes a static-flow scenario and returns its measurements.
func RunStatic(cfg StaticConfig) (*StaticResult, error) {
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("experiment: static run needs at least one queue spec")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("experiment: static run needs a positive duration")
	}
	if cfg.MTU == 0 {
		cfg.MTU = 1500
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 500 * units.Millisecond
	}
	if cfg.Params.Rate == 0 {
		cfg.Params.Rate = cfg.Rate
	}
	if cfg.Params.BaseRTT == 0 {
		cfg.Params.BaseRTT = 4 * cfg.Delay
	}
	mss := cfg.MTU - transport.HeaderSize

	// Copy the queue specs before normalizing them below: cfg arrives by
	// value, but the Specs slice still shares its backing array with the
	// caller's — and parallel multi-seed runs hand the same specs to
	// concurrent trials.
	cfg.Specs = append([]QueueSpec(nil), cfg.Specs...)

	// Host layout: senders first, receiver last.
	nSenders := 0
	for i := range cfg.Specs {
		if cfg.Specs[i].Hosts <= 0 {
			cfg.Specs[i].Hosts = 1
		}
		if cfg.Specs[i].Flows <= 0 {
			return nil, fmt.Errorf("experiment: queue spec %d has no flows", i)
		}
		nSenders += cfg.Specs[i].Hosts
	}
	s := sim.New()
	star, err := topology.NewStar(s, topology.StarConfig{
		Hosts:     nSenders + 1,
		Rate:      cfg.Rate,
		Delay:     cfg.Delay,
		Buffer:    cfg.Buffer,
		Queues:    cfg.Queues,
		Factories: Factories(cfg.Scheme, cfg.Sched, cfg.Params, cfg.MTU),
	})
	if err != nil {
		return nil, err
	}
	receiver := nSenders
	var eng *faults.Engine
	var reg *faults.Registry
	if len(cfg.Faults) > 0 {
		reg = star.FaultRegistry()
		eng = faults.NewEngine(s, reg, cfg.Seed)
		if err := eng.Schedule(cfg.Faults); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var flowID packet.FlowID
	host := 0
	for _, spec := range cfg.Specs {
		spec := spec
		var senders []*transport.Sender
		for f := 0; f < spec.Flows; f++ {
			ep := star.Endpoints[host+f%spec.Hosts]
			flowID++
			id := flowID
			start := units.Duration(rng.Int63n(int64(startJitterSpan)))
			s.At(units.Time(start), func() {
				var ctrl transport.Controller
				if spec.Ctrl != nil {
					ctrl = spec.Ctrl()
				}
				snd, err := ep.StartFlow(transport.FlowConfig{
					Flow:   id,
					Dst:    receiver,
					Class:  spec.Class,
					Size:   0, // long-lived
					MSS:    mss,
					Ctrl:   ctrl,
					ECN:    cfg.ECNFlows || spec.ECN,
					MinRTO: cfg.MinRTO,
				})
				if err != nil {
					panic(err) // duplicate ids cannot happen: ids are sequential
				}
				senders = append(senders, snd)
			})
		}
		if spec.StopAt > 0 {
			s.At(units.Time(spec.StopAt), func() {
				for _, snd := range senders {
					snd.Stop()
				}
			})
		}
		host += spec.Hosts
	}

	port := star.Port(receiver)
	var rec *trace.Recorder
	if cfg.TraceEvents > 0 {
		var err error
		rec, err = trace.NewRecorder(cfg.TraceEvents)
		if err != nil {
			return nil, err
		}
		rec.Only(netsim.EvDrop, netsim.EvMark, netsim.EvEvict, netsim.EvDequeueDrop)
		rec.Attach(port)
	}
	// Installed after the recorder: Attach replaces the port's hook, while
	// Watch chains, so this order keeps both observers live.
	var guard *faults.Guardrail
	if cfg.Guard {
		guard = faults.NewGuardrail(32)
		for i := 0; i <= nSenders; i++ {
			guard.Watch(fmt.Sprintf("tor:%d", i), star.Port(i))
		}
	}
	ts := metrics.NewThroughputSampler(s, port, cfg.SampleEvery)
	var qt *metrics.QueueTrace
	if cfg.TraceQueues {
		stride := cfg.TraceStride
		if stride == 0 {
			stride = 1
		}
		qt = metrics.NewQueueTrace(port, stride)
	}
	var stopHB func()
	if cfg.Telemetry != nil || cfg.Progress != nil {
		var ew telemetry.EventWriter
		if cfg.Telemetry != nil {
			ew = cfg.Telemetry
			treg := cfg.Telemetry.Registry()
			instrumentSim(treg, s)
			for i := 0; i <= nSenders; i++ {
				star.Port(i).Instrument(treg, fmt.Sprintf("tor:%d", i))
			}
			instrumentTransport(treg, star.Endpoints)
			instrumentFaults(treg, ew, eng, guard)
			instrumentLinks(treg, reg)
			bottleneck := fmt.Sprintf("tor:%d", receiver)
			ts.Publish(treg, ew, bottleneck)
			if qt != nil {
				qt.Publish(treg, ew, bottleneck)
			}
			if rec != nil {
				rec.Publish(treg)
			}
		}
		stopHB = startHeartbeat(s, cfg.Duration, ew, cfg.Progress)
	}
	s.RunUntil(units.Time(cfg.Duration))
	ts.Stop()
	if stopHB != nil {
		stopHB()
	}
	if cfg.Spans != nil {
		end := units.Time(cfg.Duration)
		simRoot := cfg.Spans.SimSpan("sim", cfg.SpanParent, 0, end, ttrace.A("kind", "static"))
		warm := units.Time(startJitterSpan)
		if warm > end {
			warm = end
		}
		cfg.Spans.SimSpan("warmup", simRoot, 0, warm)
		if end > warm {
			cfg.Spans.SimSpan("measure", simRoot, warm, end)
		}
	}

	res := &StaticResult{
		Scheme:  cfg.Scheme,
		Samples: ts.Samples(),
		Drops:   port.Stats().Dropped,
		Trace:   rec,
	}
	if qt != nil {
		res.QueueTrace = qt.Samples()
	}
	if eng != nil {
		res.FaultTimeline = eng.Timeline()
		res.LinkLost, res.LinkCorrupted = reg.Totals()
	}
	if guard != nil {
		guard.Recheck(s.Now())
		res.Violations = guard.Violations()
		res.ViolationTotal = guard.Total()
	}
	return res, nil
}

// AvgThroughput averages per-queue throughput over samples in [from, to).
func (r *StaticResult) AvgThroughput(queue int, from, to units.Time) units.Rate {
	var sum, n int64
	for _, s := range r.Samples {
		if s.At <= from || s.At > to {
			continue
		}
		sum += int64(s.PerQueue[queue])
		n++
	}
	if n == 0 {
		return 0
	}
	return units.Rate(sum / n)
}

// AvgAggregate averages total throughput over samples in (from, to].
func (r *StaticResult) AvgAggregate(from, to units.Time) units.Rate {
	var sum, n int64
	for _, s := range r.Samples {
		if s.At <= from || s.At > to {
			continue
		}
		sum += int64(s.Aggregate)
		n++
	}
	if n == 0 {
		return 0
	}
	return units.Rate(sum / n)
}

// ShareOf returns queue's mean share of the aggregate over (from, to].
func (r *StaticResult) ShareOf(queue int, from, to units.Time) float64 {
	var q, agg units.Rate
	for _, s := range r.Samples {
		if s.At <= from || s.At > to {
			continue
		}
		q += s.PerQueue[queue]
		agg += s.Aggregate
	}
	if agg == 0 {
		return 0
	}
	return float64(q) / float64(agg)
}

// JainOver computes the mean Jain index across samples in (from, to],
// considering only the queues listed as active.
func (r *StaticResult) JainOver(active []int, from, to units.Time) float64 {
	var sum float64
	var n int
	for _, s := range r.Samples {
		if s.At <= from || s.At > to {
			continue
		}
		xs := make([]float64, 0, len(active))
		for _, q := range active {
			xs = append(xs, float64(s.PerQueue[q]))
		}
		sum += metrics.Jain(xs)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
