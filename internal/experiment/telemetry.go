package experiment

import (
	"fmt"
	"io"
	"time"

	"dynaq/internal/faults"
	"dynaq/internal/sim"
	"dynaq/internal/telemetry"
	"dynaq/internal/transport"
	"dynaq/internal/units"
)

// heartbeatTicks is how many heartbeat events a run emits over its horizon.
const heartbeatTicks = 20

// fctBounds are the fct_us histogram bucket upper bounds in microseconds:
// 100µs to 10s in decades, spanning the paper's small-flow and large-flow
// completion-time ranges.
var fctBounds = []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// instrumentSim registers engine-level series: events processed, pending
// events, the heap's high-water mark, free-list reuse, and the virtual
// clock itself. Pool reuse tracking processed events is the telemetry-side
// proof that the engine runs allocation-free at steady state.
func instrumentSim(reg *telemetry.Registry, s *sim.Simulator) {
	reg.CounterFunc("sim_events_processed_total", func() int64 { return int64(s.Processed()) })
	reg.GaugeFunc("sim_events_pending", func() int64 { return int64(s.Pending()) })
	reg.GaugeFunc("sim_heap_max_depth", func() int64 { return int64(s.MaxPending()) })
	reg.CounterFunc("sim_event_pool_reuse_total", func() int64 { return int64(s.PoolReuse()) })
	reg.GaugeFunc("sim_now_ps", func() int64 { return int64(s.Now()) })
}

// instrumentTransport registers transport series aggregated across every
// endpoint, keeping series cardinality independent of host count.
func instrumentTransport(reg *telemetry.Registry, eps []*transport.Endpoint) {
	sum := func(f func(transport.SenderStats) int64) func() int64 {
		return func() int64 {
			var t int64
			for _, ep := range eps {
				t += f(ep.TotalStats())
			}
			return t
		}
	}
	reg.CounterFunc("transport_sent_packets_total",
		sum(func(s transport.SenderStats) int64 { return s.SentPackets }))
	reg.CounterFunc("transport_sent_bytes_total",
		sum(func(s transport.SenderStats) int64 { return int64(s.SentBytes) }))
	reg.CounterFunc("transport_retransmits_total",
		sum(func(s transport.SenderStats) int64 { return s.Retransmits }))
	reg.CounterFunc("transport_timeouts_total",
		sum(func(s transport.SenderStats) int64 { return s.Timeouts }))
	reg.CounterFunc("transport_fast_recoveries_total",
		sum(func(s transport.SenderStats) int64 { return s.FastRecovers }))
	reg.CounterFunc("transport_echoed_acks_total",
		sum(func(s transport.SenderStats) int64 { return s.EchoedAcks }))
	reg.CounterFunc("transport_acks_total", func() int64 {
		var t int64
		for _, ep := range eps {
			t += ep.AcksSent()
		}
		return t
	})
	reg.GaugeFunc("transport_cwnd_bytes", func() int64 {
		var t int64
		for _, ep := range eps {
			t += ep.CwndTotal()
		}
		return t
	})
	reg.GaugeFunc("transport_flows_active", func() int64 {
		var t int64
		for _, ep := range eps {
			t += int64(ep.ActiveFlows())
		}
		return t
	})
}

// instrumentFaults exposes the fault engine's applied-transition counter,
// streams each transition into the event log as it fires, and exposes the
// guardrail violation total. Both arguments may be nil.
func instrumentFaults(reg *telemetry.Registry, ew telemetry.EventWriter, eng *faults.Engine, guard *faults.Guardrail) {
	if eng != nil {
		reg.CounterFunc("faults_transitions_total", func() int64 { return int64(eng.Applied()) })
		if ew != nil {
			eng.SetObserver(func(tr faults.Transition) {
				ew.Event(tr.At, "fault",
					telemetry.F("target", tr.Target),
					telemetry.F("action", tr.Action))
			})
		}
	}
	if guard != nil {
		reg.CounterFunc("guard_violations_total", guard.Total)
	}
}

// instrumentLinks exposes the fault registry's whole-topology link loss and
// corruption totals.
func instrumentLinks(teleReg *telemetry.Registry, reg *faults.Registry) {
	if reg == nil {
		return
	}
	teleReg.CounterFunc("faults_link_lost_total", func() int64 {
		lost, _ := reg.Totals()
		return lost
	})
	teleReg.CounterFunc("faults_link_corrupted_total", func() int64 {
		_, corrupted := reg.Totals()
		return corrupted
	})
}

// startHeartbeat arms a periodic sim-time heartbeat over the run horizon:
// each tick appends a "heartbeat" event to the artifact stream (ew non-nil)
// and writes a wall-clock progress line to w (w non-nil). The events carry
// sim-derived values only, so they never break byte-identical replay; the
// wall clock is confined to the progress stream. Returns a stop function.
func startHeartbeat(s *sim.Simulator, horizon units.Duration, ew telemetry.EventWriter, w io.Writer) func() {
	every := horizon / heartbeatTicks
	if every <= 0 {
		every = units.Millisecond
	}
	start := time.Now() //dynaqlint:allow determinism wall-clock feeds the stderr progress stream only, never the artifacts
	return s.Every(every, func() {
		if ew != nil {
			ew.Event(s.Now(), "heartbeat",
				telemetry.F("events", int64(s.Processed())),
				telemetry.F("pending", s.Pending()))
		}
		if w != nil {
			wall := time.Since(start).Round(time.Millisecond) //dynaqlint:allow determinism wall-clock feeds the stderr progress stream only, never the artifacts
			fmt.Fprintf(w, "dynaq: t=%v events=%d pending=%d wall=%v\n",
				s.Now(), s.Processed(), s.Pending(), wall)
		}
	})
}
