package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dynaq/internal/telemetry"
	"dynaq/internal/units"
	"dynaq/internal/workload"
)

// telemetryFiles are the artifacts that must be byte-identical across two
// runs of the same (scenario, seed) — the acceptance bar for the whole
// telemetry layer. trace.jsonl is covered separately in internal/trace.
var telemetryFiles = []string{
	telemetry.EventsFile,
	telemetry.MetricsFile,
	telemetry.ManifestFile,
}

// runStaticWithTelemetry executes one instrumented static run into dir and
// returns the artifact bytes keyed by file name.
func runStaticWithTelemetry(t *testing.T, dir string, scheme Scheme) map[string][]byte {
	t.Helper()
	run, err := telemetry.NewRun(dir, telemetry.Manifest{
		Tool:         "determinism_test",
		ScenarioHash: telemetry.Hash([]byte("determinism " + string(scheme))),
		Seed:         7,
		Scheme:       string(scheme),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := StaticConfig{
		Scheme:      scheme,
		Sched:       SchedDRR,
		Params:      SchemeParams{Weights: []int64{1, 1}},
		Rate:        units.Gbps,
		Delay:       20 * units.Microsecond,
		Buffer:      200 * units.KB,
		Queues:      2,
		MTU:         1500,
		Specs:       []QueueSpec{{Class: 0, Flows: 2}, {Class: 1, Flows: 4}},
		Duration:    100 * units.Millisecond,
		SampleEvery: 10 * units.Millisecond,
		Seed:        7,
		Telemetry:   run,
	}
	res, err := RunStatic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run.Summarize("drops", strconv.FormatInt(res.Drops, 10))
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	return readArtifacts(t, dir)
}

func readArtifacts(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(telemetryFiles))
	for _, name := range telemetryFiles {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 && name != telemetry.EventsFile {
			t.Fatalf("%s: empty artifact", name)
		}
		out[name] = data
	}
	return out
}

// TestTelemetryDeterministicStatic runs the same instrumented static
// scenario twice per scheme and demands byte-identical artifacts — the
// telemetry layer may observe the simulation but must never perturb it,
// and its encoding must be a pure function of simulation state.
func TestTelemetryDeterministicStatic(t *testing.T) {
	for _, scheme := range []Scheme{DynaQ, PQL, BestEffort} {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			t.Parallel()
			base := t.TempDir()
			a := runStaticWithTelemetry(t, filepath.Join(base, "a"), scheme)
			b := runStaticWithTelemetry(t, filepath.Join(base, "b"), scheme)
			for _, name := range telemetryFiles {
				if string(a[name]) != string(b[name]) {
					t.Errorf("%s: artifacts differ between identical runs", name)
				}
			}
			if len(a[telemetry.EventsFile]) == 0 {
				t.Error("events.jsonl is empty; heartbeat/sampler events missing")
			}
		})
	}
}

// TestEngineCountersInMetrics asserts the engine series land in
// metrics.jsonl: events processed, heap high-water mark, and the free-list
// reuse counter — and that reuse is actually happening (a long static run
// recycles nearly every event object).
func TestEngineCountersInMetrics(t *testing.T) {
	arts := runStaticWithTelemetry(t, t.TempDir(), DynaQ)
	metrics := string(arts[telemetry.MetricsFile])
	for _, series := range []string{
		"sim_events_processed_total",
		"sim_heap_max_depth",
		"sim_event_pool_reuse_total",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("metrics.jsonl is missing %s", series)
		}
	}
	// The reuse counter must be a large share of processed events, not a
	// token non-zero value: every packet/timer event past warmup re-arms a
	// pooled object.
	var processed, reused int64
	for _, line := range strings.Split(metrics, "\n") {
		var rec struct {
			Series string `json:"series"`
			Value  int64  `json:"value"`
		}
		if json.Unmarshal([]byte(line), &rec) != nil {
			continue
		}
		switch rec.Series {
		case "sim_events_processed_total":
			processed = rec.Value
		case "sim_event_pool_reuse_total":
			reused = rec.Value
		}
	}
	if processed == 0 {
		t.Fatal("sim_events_processed_total = 0; metrics not parsed")
	}
	if reused < processed/2 {
		t.Errorf("pool reuse %d out of %d events; free list is not recycling", reused, processed)
	}
}

// TestTelemetryDeterministicDynamic does the same for an FCT run on the
// star topology, exercising the flow-accounting and histogram paths.
func TestTelemetryDeterministicDynamic(t *testing.T) {
	runOnce := func(dir string) map[string][]byte {
		run, err := telemetry.NewRun(dir, telemetry.Manifest{
			Tool:         "determinism_test",
			ScenarioHash: telemetry.Hash([]byte("determinism fct")),
			Seed:         3,
			Scheme:       string(DynaQ),
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DynamicConfig{
			Scheme:    DynaQ,
			Params:    SchemeParams{Weights: []int64{1, 1, 1, 1}},
			Topo:      TopoStar,
			Servers:   4,
			Rate:      units.Gbps,
			Delay:     20 * units.Microsecond,
			Buffer:    200 * units.KB,
			Queues:    4,
			Load:      0.4,
			Flows:     40,
			Workloads: []*workload.CDF{workload.WebSearch()},
			Seed:      3,
			Telemetry: run,
		}
		if _, err := RunDynamic(cfg); err != nil {
			t.Fatal(err)
		}
		if err := run.Close(); err != nil {
			t.Fatal(err)
		}
		return readArtifacts(t, dir)
	}
	base := t.TempDir()
	a := runOnce(filepath.Join(base, "a"))
	b := runOnce(filepath.Join(base, "b"))
	for _, name := range telemetryFiles {
		if string(a[name]) != string(b[name]) {
			t.Errorf("%s: artifacts differ between identical runs", name)
		}
	}
}
