package experiment

import (
	"dynaq/internal/app"
	"dynaq/internal/buffer"
	"dynaq/internal/metrics"
	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/pias"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/topology"
	"dynaq/internal/transport"
	"dynaq/internal/units"
	"dynaq/internal/workload"
)

// ExtMicroburst compares how the schemes absorb a synchronized microburst
// of small flows into a port whose buffer is monopolized by a long-flow
// hog queue. It extends the paper's §II-C discussion: BarberQ ([12])
// evicts the hog's packets to make room, DynaQ protects the burst queue's
// threshold budget, BestEffort simply drops the burst.
func ExtMicroburst(o Options) (*AblationResult, error) {
	out := &AblationResult{
		Name:    "microburst-absorption",
		Labels:  []string{"burst-avgFCT-ms", "burst-p99FCT-ms", "burst-drops", "evictions"},
		Schemes: []Scheme{DynaQ, BarberQ, BestEffort},
	}
	burstFlows := pick(o, 16, 32, 32)
	for _, scheme := range out.Schemes {
		s := sim.New()
		star, err := topology.NewStar(s, topology.StarConfig{
			Hosts:  3,
			Rate:   testbedRate,
			Delay:  testbedDelay,
			Buffer: testbedBuffer,
			Queues: 4,
			Factories: Factories(scheme, SchedDRR,
				SchemeParams{Rate: testbedRate, BaseRTT: 4 * testbedDelay, Weights: equalWeights(4)},
				testbedMTU),
		})
		if err != nil {
			return nil, err
		}
		const receiver = 2
		// Hog: 16 long flows on queue 2 from host 0.
		for i := 0; i < 16; i++ {
			id := packet.FlowID(1 + i)
			at := units.Time(i) * units.Time(units.Millisecond) / 4
			s.At(at, func() {
				if _, err := star.Endpoints[0].StartFlow(transport.FlowConfig{
					Flow: id, Dst: receiver, Class: 2,
				}); err != nil {
					panic(err)
				}
			})
		}
		// Burst: at 1s, burstFlows small flows (6KB each) hit queue 1
		// from host 1 within a few microseconds of each other.
		fct := metrics.NewFCTCollector()
		for i := 0; i < burstFlows; i++ {
			id := packet.FlowID(100 + i)
			at := units.Time(units.Second).Add(units.Duration(i) * units.Microsecond)
			s.At(at, func() {
				if _, err := star.Endpoints[1].StartFlow(transport.FlowConfig{
					Flow: id, Dst: receiver, Class: 1, Size: 6 * units.KB,
					OnComplete: func(d units.Duration) { fct.Add(6*units.KB, d) },
				}); err != nil {
					panic(err)
				}
			})
		}
		dropsBefore := int64(0)
		s.At(units.Time(units.Second-units.Picosecond), func() {
			dropsBefore = star.Port(receiver).QueueDrops(1)
		})
		s.RunUntil(units.Time(3 * units.Second))
		port := star.Port(receiver)
		out.Rows = append(out.Rows, []float64{
			float64(fct.Avg(metrics.AllFlows)) / float64(units.Millisecond),
			float64(fct.Percentile(metrics.AllFlows, 0.99)) / float64(units.Millisecond),
			float64(port.QueueDrops(1) - dropsBefore),
			float64(port.Stats().Evicted),
		})
	}
	return out, nil
}

// ExtSharedMemory reproduces the other §II-C argument: a shared-memory
// switch running the dynamic-threshold (DT) algorithm lets a hot port
// absorb buffer "that can be assigned to the other ports", hurting a
// lightly-loaded port's bursts; dedicating each port its slice (here
// managed by DynaQ) keeps the quiet port's headroom intact.
func ExtSharedMemory(o Options) (*AblationResult, error) {
	out := &AblationResult{
		Name:    "shared-memory-vs-dedicated",
		Labels:  []string{"burst-avgFCT-ms", "burst-p99FCT-ms", "quietport-drops"},
		Schemes: []Scheme{"DT-shared", "DynaQ-dedicated"},
	}
	totalMem := 2 * testbedBuffer // the switch SRAM covering both hot and quiet port
	burstFlows := pick(o, 24, 48, 48)
	for _, mode := range out.Schemes {
		s := sim.New()
		var pool *buffer.SharedPool
		newAdmission := func(b units.ByteSize, n int) (buffer.Admission, error) {
			if mode == "DT-shared" {
				return buffer.NewDT(pool, 2)
			}
			return buffer.NewDynaQ(b, equalWeights(n))
		}
		perPort := testbedBuffer
		if mode == "DT-shared" {
			var err error
			if pool, err = buffer.NewSharedPool(totalMem); err != nil {
				return nil, err
			}
			// Under DT any port may occupy up to the whole SRAM,
			// bounded only by α·free.
			perPort = totalMem
		}
		net, err := buildSharedStar(s, perPort, pool, newAdmission)
		if err != nil {
			return nil, err
		}
		// Hot port: hosts 0 and 1 blast 16 long flows at host 2.
		for i := 0; i < 16; i++ {
			id := packet.FlowID(1 + i)
			src := i % 2
			at := units.Time(i) * units.Time(units.Millisecond) / 4
			s.At(at, func() {
				if _, err := net.Endpoints[src].StartFlow(transport.FlowConfig{
					Flow: id, Dst: 2, Class: 0,
				}); err != nil {
					panic(err)
				}
			})
		}
		// Quiet port: a microburst at 1s from host 0 to host 3.
		fct := metrics.NewFCTCollector()
		for i := 0; i < burstFlows; i++ {
			id := packet.FlowID(100 + i)
			at := units.Time(units.Second).Add(units.Duration(i) * units.Microsecond)
			s.At(at, func() {
				if _, err := net.Endpoints[1].StartFlow(transport.FlowConfig{
					Flow: id, Dst: 3, Class: 1, Size: 6 * units.KB,
					OnComplete: func(d units.Duration) { fct.Add(6*units.KB, d) },
				}); err != nil {
					panic(err)
				}
			})
		}
		s.RunUntil(units.Time(3 * units.Second))
		out.Rows = append(out.Rows, []float64{
			float64(fct.Avg(metrics.AllFlows)) / float64(units.Millisecond),
			float64(fct.Percentile(metrics.AllFlows, 0.99)) / float64(units.Millisecond),
			float64(net.Port(3).Stats().Dropped),
		})
	}
	return out, nil
}

// buildSharedStar is topology.NewStar with an optional shared memory pool
// on the switch ports (the topology package keeps ports private-buffer;
// the shared-memory mode is this experiment's extension).
func buildSharedStar(s *sim.Simulator, perPort units.ByteSize, pool *buffer.SharedPool,
	newAdmission func(b units.ByteSize, n int) (buffer.Admission, error)) (*sharedStar, error) {
	const hosts = 4
	const queues = 4
	hs := make([]*netsim.Host, hosts)
	for i := range hs {
		hs[i] = netsim.NewHost(i, nil)
	}
	ports := make([]*netsim.Port, hosts)
	for i := range ports {
		adm, err := newAdmission(perPort, queues)
		if err != nil {
			return nil, err
		}
		ports[i], err = netsim.NewPort(s, netsim.PortConfig{
			Rate:      testbedRate,
			Buffer:    perPort,
			Queues:    queues,
			Scheduler: sched.EqualDRR(queues, 1500),
			Admission: adm,
			Link:      netsim.NewLink(s, testbedDelay, hs[i]),
			Pool:      pool,
		})
		if err != nil {
			return nil, err
		}
	}
	sw, err := netsim.NewSwitch("shared", ports, func(p *packet.Packet) int { return p.Dst })
	if err != nil {
		return nil, err
	}
	st := &sharedStar{sw: sw}
	for i, h := range hs {
		nic, err := netsim.NewPort(s, netsim.PortConfig{
			Rate:      4 * testbedRate,
			Buffer:    units.GB,
			Queues:    1,
			Scheduler: sched.NewSPQ(),
			Admission: buffer.NewBestEffort(),
			Link:      netsim.NewLink(s, testbedDelay, sw),
		})
		if err != nil {
			return nil, err
		}
		h.SetEgress(nic)
		st.Endpoints = append(st.Endpoints, transport.NewEndpoint(s, h))
		_ = i
	}
	return st, nil
}

type sharedStar struct {
	sw        *netsim.Switch
	Endpoints []*transport.Endpoint
}

func (s *sharedStar) Port(i int) *netsim.Port { return s.sw.Port(i) }

// ExtProtocolDependence demonstrates the paper's core motivation (§II-B)
// as a single experiment: two tenants share a port — queue 1 runs DCTCP
// (ECN-capable), queue 2 runs CUBIC (non-ECN, as a tenant VM might). An
// ECN-based isolation scheme can only slow the cooperating tenant: the
// CUBIC queue ignores marks and overruns the buffer. DynaQ's dropping
// thresholds discipline both.
func ExtProtocolDependence(o Options) (*AblationResult, error) {
	dur := pick(o, 4*units.Second, 10*units.Second, 10*units.Second)
	out := &AblationResult{
		Name:    "protocol-dependence",
		Labels:  []string{"dctcp-share(0.5)", "Jain", "agg-Gbps"},
		Schemes: []Scheme{DynaQ, PMSB, MQECN, PerQueueECN},
	}
	for _, scheme := range out.Schemes {
		specs := []QueueSpec{
			{Class: 1, Flows: 2, Hosts: 1, ECN: true,
				Ctrl: func() transport.Controller { return transport.NewDCTCP() }},
			{Class: 2, Flows: 16, Hosts: 1,
				Ctrl: func() transport.Controller { return transport.NewCubic() }},
		}
		cfg := testbedStatic(scheme, equalWeights(4), specs, dur, o.Seed)
		cfg.Params.PerQueueK = 30 * units.KB
		res, err := RunStatic(cfg)
		if err != nil {
			return nil, err
		}
		warm, end := units.Time(dur/5), units.Time(dur)
		out.Rows = append(out.Rows, []float64{
			res.ShareOf(1, warm, end),
			res.JainOver([]int{1, 2}, warm, end),
			float64(res.AvgAggregate(warm, end)) / 1e9,
		})
	}
	return out, nil
}

// ExtTofino verifies the §IV-A conjecture for programmable switches: with
// round-robin scheduling, DynaQ decided on dequeue-time-stale queue
// lengths (the bridged deq_qdepth register) still isolates service queues
// — "some inaccuracy is tolerable".
func ExtTofino(o Options) (*AblationResult, error) {
	dur := pick(o, 4*units.Second, 10*units.Second, 10*units.Second)
	out := &AblationResult{
		Name:    "tofino-stale-queue-lengths",
		Labels:  []string{"q1-share(0.5)", "Jain", "agg-Gbps"},
		Schemes: []Scheme{DynaQ, DynaQTofino, BestEffort},
	}
	for _, scheme := range out.Schemes {
		specs := []QueueSpec{
			{Class: 1, Flows: 2, Hosts: 1},
			{Class: 2, Flows: 16, Hosts: 1},
		}
		cfg := testbedStatic(scheme, equalWeights(4), specs, dur, o.Seed)
		res, err := RunStatic(cfg)
		if err != nil {
			return nil, err
		}
		warm, end := units.Time(dur/5), units.Time(dur)
		out.Rows = append(out.Rows, []float64{
			res.ShareOf(1, warm, end),
			res.JainOver([]int{1, 2}, warm, end),
			float64(res.AvgAggregate(warm, end)) / 1e9,
		})
	}
	return out, nil
}

// ExtTransportZoo pushes protocol independence past Fig. 7: four service
// queues each carry a *different* congestion-control algorithm — NewReno,
// CUBIC, DCTCP (falling back to loss signals since nothing marks), and a
// TIMELY-like delay-based controller. DynaQ must still split the link four
// ways; no ECN scheme could even be configured for this population.
func ExtTransportZoo(o Options) (*AblationResult, error) {
	dur := pick(o, 4*units.Second, 10*units.Second, 10*units.Second)
	out := &AblationResult{
		Name:    "transport-zoo",
		Labels:  []string{"reno", "cubic", "dctcp", "timely", "Jain", "agg-Gbps"},
		Schemes: []Scheme{DynaQ, BestEffort},
	}
	ctrls := []func() transport.Controller{
		func() transport.Controller { return transport.NewReno() },
		func() transport.Controller { return transport.NewCubic() },
		func() transport.Controller { return transport.NewDCTCP() },
		func() transport.Controller { return transport.NewTimely() },
	}
	for _, scheme := range out.Schemes {
		var specs []QueueSpec
		for q := 0; q < 4; q++ {
			specs = append(specs, QueueSpec{
				Class: q, Flows: 4, Hosts: 1, Ctrl: ctrls[q],
			})
		}
		cfg := testbedStatic(scheme, equalWeights(4), specs, dur, o.Seed)
		res, err := RunStatic(cfg)
		if err != nil {
			return nil, err
		}
		warm, end := units.Time(dur/5), units.Time(dur)
		xs := make([]float64, 4)
		row := make([]float64, 0, 6)
		for q := 0; q < 4; q++ {
			xs[q] = float64(res.AvgThroughput(q, warm, end))
			row = append(row, res.ShareOf(q, warm, end))
		}
		row = append(row, metrics.Jain(xs), float64(res.AvgAggregate(warm, end))/1e9)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// ExtClosedLoop reruns the Fig. 8 comparison with the §V-A2 application
// model instead of the open-loop generator: a client holding persistent
// connections to 4 servers issues Poisson requests; responses carry the
// web-search sizes. Latency is user-perceived (request issue → response
// completion).
func ExtClosedLoop(o Options) (*FCTResult, error) {
	requests := pick(o, 150, 1000, 10000)
	loads := pick(o, []float64{0.6}, []float64{0.5, 0.8}, []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8})
	horizon := pick(o, 60*units.Second, 120*units.Second, 600*units.Second)
	schemes := NonECNSchemes()
	cells := make([]fctCell, 0, len(loads)*len(schemes))
	for _, load := range loads {
		for _, scheme := range schemes {
			cells = append(cells, fctCell{load: load, scheme: scheme})
		}
	}
	// Each cell builds its whole world — simulator, star, classifier,
	// client — inside the trial, so cells parallelize like the open-loop
	// FCT figures.
	stats, err := RunTrials(len(cells), o.Parallel, func(i int) (FCTStats, error) {
		load, scheme := cells[i].load, cells[i].scheme
		s := sim.New()
		star, err := topology.NewStar(s, topology.StarConfig{
			Hosts:  5,
			Rate:   testbedRate,
			Delay:  testbedDelay,
			Buffer: testbedBuffer,
			Queues: 5,
			Factories: Factories(scheme, SchedSPQDRR,
				SchemeParams{Rate: testbedRate, BaseRTT: 4 * testbedDelay,
					Weights: equalWeights(5)}, testbedMTU),
		})
		if err != nil {
			return FCTStats{}, err
		}
		classifier, err := pias.NewClassifier(pias.DefaultDemotionThreshold, 0)
		if err != nil {
			return FCTStats{}, err
		}
		client, err := app.NewClient(s, app.Config{
			Client:        star.Endpoints[4],
			Servers:       star.Endpoints[:4],
			CDF:           workload.WebSearch(),
			Load:          load,
			Capacity:      testbedRate,
			Requests:      requests,
			ServiceQueues: 4,
			ClassOf:       classifier.ClassOf,
			MinRTO:        testbedMinRTO,
			Seed:          o.Seed,
		})
		if err != nil {
			return FCTStats{}, err
		}
		client.Start()
		for client.Done() < requests && s.Pending() > 0 && s.Now() < units.Time(horizon) {
			s.Step()
		}
		return FCTStats{
			Scheme:     scheme,
			Load:       load,
			AvgOverall: client.FCT.Avg(metrics.AllFlows),
			AvgSmall:   client.FCT.Avg(metrics.SmallFlows),
			AvgLarge:   client.FCT.Avg(metrics.LargeFlows),
			P99Small:   client.FCT.Percentile(metrics.SmallFlows, 0.99),
			Completed:  client.Done(),
			Generated:  client.Issued(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &FCTResult{Figure: "ext-closedloop", Cells: stats}, nil
}

// ExtDynaQECNMode compares DynaQ's two faces (§III-B3): drop mode with
// plain TCP versus ECN mode (PMSB-style marking) with DCTCP. Both must
// isolate the 2-vs-16-flow queues; ECN mode additionally keeps the
// bottleneck port drop-free.
func ExtDynaQECNMode(o Options) (*AblationResult, error) {
	dur := pick(o, 4*units.Second, 10*units.Second, 10*units.Second)
	out := &AblationResult{
		Name:    "dynaq-ecn-mode",
		Labels:  []string{"q1-share(0.5)", "Jain", "agg-Gbps", "drops-k"},
		Schemes: []Scheme{DynaQ, DynaQECN},
	}
	for _, scheme := range out.Schemes {
		specs := []QueueSpec{
			{Class: 1, Flows: 2, Hosts: 1},
			{Class: 2, Flows: 16, Hosts: 1},
		}
		if scheme.IsECNBased() {
			for i := range specs {
				specs[i].Ctrl = newDCTCPCtrl
				specs[i].ECN = true
			}
		}
		cfg := testbedStatic(scheme, equalWeights(4), specs, dur, o.Seed)
		res, err := RunStatic(cfg)
		if err != nil {
			return nil, err
		}
		warm, end := units.Time(dur/5), units.Time(dur)
		out.Rows = append(out.Rows, []float64{
			res.ShareOf(1, warm, end),
			res.JainOver([]int{1, 2}, warm, end),
			float64(res.AvgAggregate(warm, end)) / 1e9,
			float64(res.Drops) / 1000,
		})
	}
	return out, nil
}
