package experiment

import (
	"fmt"
	"strings"
)

// table renders rows of cells as a fixed-width text table with a header
// separator, the output format of cmd/experiments.
type table struct {
	rows [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// String renders with columns padded to their widest cell.
func (t *table) String() string {
	var widths []int
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for r, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if r == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
