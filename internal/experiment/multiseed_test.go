package experiment

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestRunSeedsValidation(t *testing.T) {
	if _, err := RunSeeds(0, quick, func(Options) (float64, error) { return 0, nil }); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := RunSeeds(3, quick, nil); err == nil {
		t.Error("nil metric should fail")
	}
	wantErr := errors.New("boom")
	if _, err := RunSeeds(3, quick, func(Options) (float64, error) { return 0, wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	// Seeds may run concurrently (RunSeeds defaults to GOMAXPROCS workers),
	// so the metric must be a pure function of the seed and the reuse check
	// needs a lock.
	var mu sync.Mutex
	seen := map[int64]bool{}
	st, err := RunSeeds(4, Options{Seed: 10}, func(o Options) (float64, error) {
		mu.Lock()
		if seen[o.Seed] {
			t.Errorf("seed %d reused", o.Seed)
		}
		seen[o.Seed] = true
		mu.Unlock()
		return float64((o.Seed-10)/7919) + 1, nil // 1, 2, 3, 4 by seed index
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 4 || st.Mean != 2.5 || st.Min != 1 || st.Max != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Std < 1.1 || st.Std > 1.2 {
		t.Fatalf("std = %v, want ≈1.118", st.Std)
	}
	if !strings.Contains(st.String(), "n=4") {
		t.Errorf("String() = %q", st.String())
	}
}

func TestRunSeedsOnRealExperiment(t *testing.T) {
	// DynaQ's queue-1 share across 3 seeds must be tight around 0.5.
	st, err := RunSeeds(3, quick, func(o Options) (float64, error) {
		r, err := Fig3(o)
		if err != nil {
			return 0, err
		}
		for i, s := range r.Schemes {
			if s == DynaQ {
				return r.Share1[i], nil
			}
		}
		return 0, errors.New("DynaQ row missing")
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean < 0.42 || st.Mean > 0.58 {
		t.Fatalf("mean share = %v", st.Mean)
	}
	if st.Std > 0.06 {
		t.Fatalf("share std = %v across seeds, want tight", st.Std)
	}
}
