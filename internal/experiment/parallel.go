package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunTrials executes n independent trials on a pool of worker goroutines and
// returns their results in trial-index order. Because every trial is a
// deterministic function of its index and results are merged by index, the
// output is bit-for-bit identical at any worker count — parallelism lives
// entirely above the (single-goroutine) simulation engine.
//
// workers ≤ 0 selects GOMAXPROCS; 1 runs sequentially on the calling
// goroutine; anything larger is clamped to n.
//
// Each trial MUST be self-contained: run must build its own Simulator,
// rand.Rand, and telemetry sinks per call, and must not touch shared mutable
// state. The dynaqlint parallel-state check enforces this for captured
// engine state.
//
// The first error (by trial index) cancels the pool: idle workers stop
// claiming new trials, in-flight trials finish, and RunTrials returns after
// every worker has exited.
func RunTrials[T any](n, workers int, run func(trial int) (T, error)) ([]T, error) {
	return RunTrialsCtx(context.Background(), n, workers, run)
}

// RunTrialsCtx is RunTrials with cooperative cancellation — the job-shaped
// entry point dynaqd's per-job timeouts use. Cancelling ctx stops workers
// from claiming further trials; trials already in flight run to completion
// (a single-goroutine simulation cannot be preempted mid-run), after which
// RunTrialsCtx returns ctx's error. A trial error observed before the
// cancellation still wins, with the same first-by-index precedence as
// RunTrials, so results stay independent of worker count and cancellation
// timing races.
func RunTrialsCtx[T any](ctx context.Context, n, workers int, run func(trial int) (T, error)) ([]T, error) {
	return RunTrialsHooked(ctx, n, workers, nil, run)
}

// TrialHook observes the trial lifecycle inside the pool: Begin fires on the
// trial's worker goroutine immediately before run(trial), and the returned
// end function immediately after, with run's error. It exists so callers can
// open and close per-trial trace spans (or any other bracketed bookkeeping)
// without the pool depending on the trace layer; the hook itself must be
// safe for concurrent calls and must not capture engine state (the same
// parallel-state rules as the trial function apply).
type TrialHook func(trial int) (end func(err error))

// RunTrialsHooked is RunTrialsCtx with an optional per-trial lifecycle hook.
func RunTrialsHooked[T any](ctx context.Context, n, workers int, hook TrialHook, run func(trial int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiment: RunTrials needs n > 0")
	}
	if run == nil {
		return nil, fmt.Errorf("experiment: RunTrials needs a trial function")
	}
	workers = Workers(workers, n)
	runOne := func(i int) (T, error) {
		if hook == nil {
			return run(i)
		}
		end := hook(i)
		v, err := run(i)
		if end != nil {
			end(err)
		}
		return v, err
	}
	results := make([]T, n)
	if workers == 1 {
		for i := range results {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("experiment: cancelled before trial %d: %w", i, err)
			}
			v, err := runOne(i)
			if err != nil {
				return nil, fmt.Errorf("experiment: trial %d: %w", i, err)
			}
			results[i] = v
		}
		return results, nil
	}
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
		errs = make([]error, n) // distinct indices: race-free without a lock
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() && ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := runOne(i)
				if err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				results[i] = v
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: trial %d: %w", i, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiment: trials cancelled: %w", err)
	}
	return results, nil
}

// Workers resolves a requested parallelism degree against a trial count:
// requested ≤ 0 (the zero value of Options.Parallel) means GOMAXPROCS,
// and the result is clamped to [1, n].
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}
