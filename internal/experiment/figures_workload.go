package experiment

import (
	"fmt"
	"math/rand"
	"sort"

	"dynaq/internal/metrics"
	"dynaq/internal/units"
	"dynaq/internal/workload"
)

// WorkloadRow characterizes one of Figure 2's flow-size distributions.
type WorkloadRow struct {
	Name string
	Mean units.ByteSize
	P50  units.ByteSize
	P90  units.ByteSize
	P99  units.ByteSize
	// SmallFrac is the fraction of flows ≤ 100KB (the paper's "small").
	SmallFrac float64
	// HeavyByteFrac is the fraction of bytes carried by flows > 10MB —
	// the heavy-tail property ("90% of bytes are from flows larger than
	// 100MB" for data mining).
	HeavyByteFrac float64
}

// WorkloadResult reproduces Figure 2 as a table: the four production
// workloads' size distributions and their skew.
type WorkloadResult struct {
	Rows []WorkloadRow
}

// Fig2 samples each workload CDF and summarizes the distribution shape.
func Fig2(o Options) (*WorkloadResult, error) {
	n := pick(o, 20000, 200000, 1000000)
	out := &WorkloadResult{}
	for _, cdf := range workload.All() {
		rng := rand.New(rand.NewSource(o.Seed))
		sizes := make([]units.ByteSize, n)
		var total, heavy float64
		small := 0
		for i := range sizes {
			s := cdf.Sample(rng)
			sizes[i] = s
			total += float64(s)
			if s > metrics.LargeFlowMin {
				heavy += float64(s)
			}
			if s <= metrics.SmallFlowMax {
				small++
			}
		}
		sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
		q := func(p float64) units.ByteSize { return sizes[int(p*float64(n-1))] }
		out.Rows = append(out.Rows, WorkloadRow{
			Name:          cdf.Name(),
			Mean:          units.ByteSize(total / float64(n)),
			P50:           q(0.50),
			P90:           q(0.90),
			P99:           q(0.99),
			SmallFrac:     float64(small) / float64(n),
			HeavyByteFrac: heavy / total,
		})
	}
	return out, nil
}

// Table renders the workload characterization.
func (r *WorkloadResult) Table() string {
	var t table
	t.add("workload", "mean", "p50", "p90", "p99", "flows≤100KB", "bytes from >10MB flows")
	for _, row := range r.Rows {
		t.addf("%s\t%s\t%s\t%s\t%s\t%.0f%%\t%.0f%%",
			row.Name, sizeStr(row.Mean), sizeStr(row.P50), sizeStr(row.P90),
			sizeStr(row.P99), 100*row.SmallFrac, 100*row.HeavyByteFrac)
	}
	return t.String()
}

// sizeStr renders a byte size compactly with one decimal.
func sizeStr(b units.ByteSize) string {
	switch {
	case b >= units.GB:
		return fmt.Sprintf("%.1fGB", float64(b)/1e9)
	case b >= units.MB:
		return fmt.Sprintf("%.1fMB", float64(b)/1e6)
	case b >= units.KB:
		return fmt.Sprintf("%.1fKB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}
