package experiment

import (
	"strings"
	"testing"

	"dynaq/internal/metrics"
	"dynaq/internal/units"
	"dynaq/internal/workload"
)

var quick = Options{Scale: Quick, Seed: 1}

func TestSchemeFactoryValidation(t *testing.T) {
	p := SchemeParams{Rate: units.Gbps, BaseRTT: 500 * units.Microsecond, Weights: []int64{1, 1}}
	if _, err := Scheme("nope").NewAdmission(p, 85*units.KB, 2); err == nil {
		t.Error("unknown scheme should fail")
	}
	if _, err := DynaQ.NewAdmission(p, 85*units.KB, 3); err == nil {
		t.Error("weight/queue mismatch should fail")
	}
	for _, s := range []Scheme{BestEffort, PQL, DynaQ, TCN, PMSB, PerQueueECN, MQECN, TCNDrop} {
		adm, err := s.NewAdmission(p, 85*units.KB, 2)
		if err != nil {
			t.Errorf("%s: %v", s, err)
			continue
		}
		if adm.Name() == "" {
			t.Errorf("%s: empty name", s)
		}
	}
}

func TestSchemeECNClassification(t *testing.T) {
	for _, s := range []Scheme{TCN, PMSB, PerQueueECN, MQECN} {
		if !s.IsECNBased() {
			t.Errorf("%s should be ECN-based", s)
		}
	}
	for _, s := range []Scheme{BestEffort, PQL, DynaQ, TCNDrop} {
		if s.IsECNBased() {
			t.Errorf("%s should not be ECN-based", s)
		}
	}
}

func TestSchedKindFactory(t *testing.T) {
	if _, err := SchedKind("nope").NewScheduler([]int64{1}, 1500, 1); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := SchedDRR.NewScheduler([]int64{1}, 1500, 2); err == nil {
		t.Error("DRR weight mismatch should fail")
	}
	if _, err := SchedSPQDRR.NewScheduler([]int64{1, 1}, 1500, 5); err == nil {
		t.Error("SPQ+DRR needs n-1 weights")
	}
	if _, err := SchedSPQDRR.NewScheduler([]int64{1, 1, 1, 1}, 1500, 5); err != nil {
		t.Errorf("valid SPQ+DRR rejected: %v", err)
	}
	if _, err := SchedWRR.NewScheduler([]int64{2, 1}, 1500, 2); err != nil {
		t.Errorf("valid WRR rejected: %v", err)
	}
}

func TestRunStaticValidation(t *testing.T) {
	if _, err := RunStatic(StaticConfig{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := RunStatic(StaticConfig{
		Specs: []QueueSpec{{Class: 0, Flows: 1}},
	}); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := RunStatic(StaticConfig{
		Specs:    []QueueSpec{{Class: 0, Flows: 0}},
		Duration: units.Second,
	}); err == nil {
		t.Error("flowless spec should fail")
	}
}

func TestRunDynamicValidation(t *testing.T) {
	if _, err := RunDynamic(DynamicConfig{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := RunDynamic(DynamicConfig{Flows: 10}); err == nil {
		t.Error("missing workloads should fail")
	}
	if _, err := RunDynamic(DynamicConfig{
		Flows: 10, Workloads: []*workload.CDF{workload.WebSearch()}, Queues: 1,
	}); err == nil {
		t.Error("too few queues should fail")
	}
	if _, err := RunDynamic(DynamicConfig{
		Flows: 10, Workloads: []*workload.CDF{workload.WebSearch()}, Queues: 2,
		Topo: TopoKind("blimp"),
	}); err == nil {
		t.Error("unknown topology should fail")
	}
}

func TestFig1ShowsUnfairness(t *testing.T) {
	r, err := Fig1(quick)
	if err != nil {
		t.Fatal(err)
	}
	// The motivation result: queue 2 (24 flows) monopolizes both buffer
	// and bandwidth despite equal DRR weights.
	if r.Share[1] < r.Share[0]+0.1 {
		t.Fatalf("queue 2 share %.2f should clearly beat queue 1 %.2f under BestEffort",
			r.Share[1], r.Share[0])
	}
	if r.AvgOccupancy[1] < 4*r.AvgOccupancy[0] {
		t.Fatalf("queue 2 occupancy %v should dwarf queue 1 %v",
			r.AvgOccupancy[1], r.AvgOccupancy[0])
	}
	if !strings.Contains(r.Table(), "queue 1") {
		t.Error("Table() missing rows")
	}
}

func TestFig3DynaQConverges(t *testing.T) {
	r, err := Fig3(quick)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[Scheme]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	// DynaQ: near-equal sharing of 2 active queues despite 2-vs-16 flows.
	if s := r.Share1[idx[DynaQ]]; s < 0.40 || s > 0.60 {
		t.Fatalf("DynaQ queue-1 share = %.3f, want ≈0.5", s)
	}
	if j := r.JainIdx[idx[DynaQ]]; j < 0.95 {
		t.Fatalf("DynaQ Jain = %.3f, want ≥0.95", j)
	}
	// BestEffort: the many-flow queue wins.
	if s := r.Share1[idx[BestEffort]]; s > 0.40 {
		t.Fatalf("BestEffort queue-1 share = %.3f, want the unfair < 0.40", s)
	}
	if r.JainIdx[idx[BestEffort]] >= r.JainIdx[idx[DynaQ]] {
		t.Fatal("BestEffort should be less fair than DynaQ")
	}
	// Fig 4 view: queue evolution traces exist for every scheme.
	for i, tr := range r.Traces {
		if len(tr) == 0 {
			t.Fatalf("scheme %s: empty queue trace", r.Schemes[i])
		}
	}
	if !strings.Contains(r.Table(), "DynaQ") {
		t.Error("Table() missing DynaQ row")
	}
}

func TestFig5WorkConservationAndFairness(t *testing.T) {
	r, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[Scheme]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	full := float64(units.Gbps)
	// DynaQ: fair and work-conserving in every phase.
	for p := 0; p < 4; p++ {
		if j := r.JainPerPhase[idx[DynaQ]][p]; j < 0.9 {
			t.Errorf("DynaQ phase %d Jain = %.3f, want ≥0.9", p, j)
		}
		if a := float64(r.AggPerPhase[idx[DynaQ]][p]); a < 0.95*full {
			t.Errorf("DynaQ phase %d aggregate = %.2fGbps, want ≥0.95", p, a/1e9)
		}
	}
	// PQL: loses aggregate throughput when only one queue is active.
	pqlLast := float64(r.AggPerPhase[idx[PQL]][3])
	dynaqLast := float64(r.AggPerPhase[idx[DynaQ]][3])
	if pqlLast >= dynaqLast-1e6 {
		t.Errorf("PQL 1-queue aggregate %.2fGbps should trail DynaQ %.2fGbps",
			pqlLast/1e9, dynaqLast/1e9)
	}
	// BestEffort: unfair while all four queues are active.
	if j := r.JainPerPhase[idx[BestEffort]][0]; j > 0.95 {
		t.Errorf("BestEffort 4-queue Jain = %.3f, want the unfair < 0.95", j)
	}
}

func TestFig6WeightedShares(t *testing.T) {
	r, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[Scheme]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	ideal := [4]float64{0.4, 0.3, 0.2, 0.1}
	for q, want := range ideal {
		got := r.Shares[idx[DynaQ]][q]
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("DynaQ queue %d share = %.3f, want %.2f±0.05", q+1, got, want)
		}
	}
	if r.WJain[idx[DynaQ]] < 0.98 {
		t.Errorf("DynaQ weighted Jain = %.3f", r.WJain[idx[DynaQ]])
	}
	// BestEffort violates the weights: queue 4 (weight 1, most flows)
	// overshoots its 0.1 ideal (the paper measures 0.35).
	if got := r.Shares[idx[BestEffort]][3]; got < 0.2 {
		t.Errorf("BestEffort queue 4 share = %.3f, want > 0.2 (weight violation)", got)
	}
}

func TestFig7MixedTransports(t *testing.T) {
	r, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	// DynaQ with half the queues on CUBIC still shares fairly in every
	// phase — the protocol-independence claim.
	for p := 0; p < 4; p++ {
		if j := r.JainPerPhase[0][p]; j < 0.85 {
			t.Errorf("phase %d Jain = %.3f with mixed transports, want ≥0.85", p, j)
		}
		if a := float64(r.AggPerPhase[0][p]); a < 0.9*float64(units.Gbps) {
			t.Errorf("phase %d aggregate = %.2fGbps with mixed transports", p, a/1e9)
		}
	}
}

func TestFig8SmallFlowWins(t *testing.T) {
	r, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	load := r.Loads()[0]
	dq, be, pql := r.Cell(DynaQ, load), r.Cell(BestEffort, load), r.Cell(PQL, load)
	if dq == nil || be == nil || pql == nil {
		t.Fatal("missing cells")
	}
	for _, c := range []*FCTStats{dq, be, pql} {
		if c.Completed != c.Generated {
			t.Fatalf("%s: %d/%d flows completed", c.Scheme, c.Completed, c.Generated)
		}
		if c.AvgSmall <= 0 || c.AvgOverall <= 0 {
			t.Fatalf("%s: empty FCT stats", c.Scheme)
		}
	}
	// The headline FCT claims: DynaQ beats BestEffort on small-flow
	// latency, decisively at the tail.
	if be.AvgSmall <= dq.AvgSmall {
		t.Errorf("BestEffort small avg %v should exceed DynaQ %v", be.AvgSmall, dq.AvgSmall)
	}
	if be.P99Small <= dq.P99Small {
		t.Errorf("BestEffort small p99 %v should exceed DynaQ %v", be.P99Small, dq.P99Small)
	}
	if pql.AvgSmall <= dq.AvgSmall {
		t.Errorf("PQL small avg %v should exceed DynaQ %v", pql.AvgSmall, dq.AvgSmall)
	}
	if !strings.Contains(r.Table(), "DynaQ") {
		t.Error("Table() missing rows")
	}
}

func TestFig9ECNSchemesRun(t *testing.T) {
	r, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	load := r.Loads()[0]
	for _, s := range []Scheme{DynaQ, TCN, PMSB, PerQueueECN} {
		c := r.Cell(s, load)
		if c == nil {
			t.Fatalf("missing cell for %s", s)
		}
		if c.Completed < c.Generated*9/10 {
			t.Errorf("%s: only %d/%d flows completed", s, c.Completed, c.Generated)
		}
	}
}

func TestFig10HighSpeedFairness(t *testing.T) {
	r, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[Scheme]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	if r.MeanJain[idx[DynaQ]] < 0.85 {
		t.Errorf("DynaQ mean Jain = %.3f", r.MeanJain[idx[DynaQ]])
	}
	if r.MeanJain[idx[BestEffort]] >= r.MeanJain[idx[DynaQ]] {
		t.Error("BestEffort should be less fair than DynaQ at 10Gbps")
	}
	// PQL loses throughput as queues go inactive; DynaQ must keep the
	// minimum aggregate higher.
	if r.MinAgg[idx[DynaQ]] <= r.MinAgg[idx[PQL]] {
		t.Errorf("DynaQ min aggregate %v should exceed PQL %v",
			r.MinAgg[idx[DynaQ]], r.MinAgg[idx[PQL]])
	}
}

func TestFig11JumboFrames(t *testing.T) {
	r, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[Scheme]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	if r.MeanJain[idx[DynaQ]] < 0.85 {
		t.Errorf("DynaQ mean Jain = %.3f at 100Gbps", r.MeanJain[idx[DynaQ]])
	}
	if a := float64(r.MeanAgg[idx[DynaQ]]); a < 0.9*100e9 {
		t.Errorf("DynaQ mean aggregate = %.1fGbps at 100Gbps", a/1e9)
	}
}

func TestFig13LeafSpineCompletes(t *testing.T) {
	r, err := Fig13(quick)
	if err != nil {
		t.Fatal(err)
	}
	load := r.Loads()[0]
	for _, s := range NonECNSchemes() {
		c := r.Cell(s, load)
		if c == nil {
			t.Fatalf("missing cell for %s", s)
		}
		if c.Completed < c.Generated*9/10 {
			t.Errorf("%s: %d/%d flows completed", s, c.Completed, c.Generated)
		}
		if c.AvgSmall <= 0 {
			t.Errorf("%s: no small-flow stats", s)
		}
	}
}

func TestCyclesMatchesPaper(t *testing.T) {
	r := Cycles()
	found := false
	for i, m := range r.QueueCounts {
		if m == 8 {
			found = true
			if r.Cycles[i] != 7 {
				t.Errorf("8-queue cycles = %d, want 7 (§IV-A)", r.Cycles[i])
			}
		}
	}
	if !found {
		t.Fatal("8-queue row missing")
	}
	if r.TridentOverhead < 0.0087 || r.TridentOverhead > 0.0088 {
		t.Errorf("Trident overhead = %v, want 0.875%%", r.TridentOverhead)
	}
	if !strings.Contains(r.Table(), "0.88%") {
		t.Errorf("Table() should quote the paper's 0.88%%: %q", r.Table())
	}
}

func TestStaticResultHelpers(t *testing.T) {
	res := &StaticResult{
		Samples: []metrics.ThroughputSample{
			{At: units.Time(units.Second), PerQueue: []units.Rate{100, 300}, Aggregate: 400},
			{At: units.Time(2 * units.Second), PerQueue: []units.Rate{200, 200}, Aggregate: 400},
		},
	}
	if got := res.AvgThroughput(0, 0, units.Time(2*units.Second)); got != 150 {
		t.Errorf("AvgThroughput = %v", got)
	}
	if got := res.AvgAggregate(0, units.Time(2*units.Second)); got != 400 {
		t.Errorf("AvgAggregate = %v", got)
	}
	if got := res.ShareOf(0, 0, units.Time(2*units.Second)); got != 300.0/800 {
		t.Errorf("ShareOf = %v", got)
	}
	if got := res.JainOver([]int{0, 1}, 0, units.Time(units.Second)); got != 0.8 {
		// (100+300)²/(2·(100²+300²)) = 160000/200000 = 0.8.
		t.Errorf("JainOver = %v", got)
	}
	// Empty windows report zeros.
	if res.AvgThroughput(0, units.Time(5*units.Second), units.Time(6*units.Second)) != 0 {
		t.Error("empty window should be 0")
	}
	if res.ShareOf(0, units.Time(5*units.Second), units.Time(6*units.Second)) != 0 {
		t.Error("empty window share should be 0")
	}
}

func TestScaleLevelString(t *testing.T) {
	for lvl, want := range map[ScaleLevel]string{
		Quick: "quick", Standard: "standard", Full: "full", ScaleLevel(9): "ScaleLevel(9)",
	} {
		if got := lvl.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", lvl, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	var tb table
	tb.add("a", "b")
	tb.addf("%d\t%s", 1, "x")
	out := tb.String()
	if !strings.Contains(out, "a  b") || !strings.Contains(out, "1  x") {
		t.Errorf("table output:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("missing header separator")
	}
}

func TestAblationVictimNaiveDropsMore(t *testing.T) {
	r, err := AblationVictim(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	dropsCol := len(r.Labels) - 1
	paper, naive := r.Rows[0][dropsCol], r.Rows[1][dropsCol]
	if naive <= paper {
		t.Errorf("naive victim policy drops %.1fk ≤ paper policy %.1fk; want more", naive, paper)
	}
	if !strings.Contains(r.Table(), "DynaQ-NaiveVictim") {
		t.Error("Table() missing variant row")
	}
}

func TestAblationWBDPLessStable(t *testing.T) {
	r, err := AblationSatisfaction(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Column 1 is the share standard deviation: Eq. 3 must be steadier.
	paperSD, wbdpSD := r.Rows[0][1], r.Rows[1][1]
	if wbdpSD <= paperSD {
		t.Errorf("WBDP share stddev %.4f ≤ Eq.3 stddev %.4f; want less stable", wbdpSD, paperSD)
	}
}

func TestAblationTCNDropLosesThroughput(t *testing.T) {
	r, err := AblationDequeueDrop(quick)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[Scheme]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	dynaqAgg := r.Rows[idx[DynaQ]][0]
	dropAgg := r.Rows[idx[TCNDrop]][0]
	if dropAgg >= 0.95*dynaqAgg {
		t.Errorf("TCNDrop aggregate %.3fGbps should trail DynaQ %.3fGbps by >5%%", dropAgg, dynaqAgg)
	}
}

func TestAblationSchemesConstruct(t *testing.T) {
	p := SchemeParams{Rate: units.Gbps, BaseRTT: 500 * units.Microsecond, Weights: []int64{1, 1}}
	for _, s := range []Scheme{DynaQNaiveVictim, DynaQWBDP} {
		adm, err := s.NewAdmission(p, 85*units.KB, 2)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if adm.Name() != string(s) {
			t.Errorf("%s: Name() = %q", s, adm.Name())
		}
	}
}

func TestExtMicroburstOrdering(t *testing.T) {
	r, err := ExtMicroburst(quick)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[Scheme]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	const dropsCol = 2
	dynaq := r.Rows[idx[DynaQ]][dropsCol]
	barber := r.Rows[idx[BarberQ]][dropsCol]
	be := r.Rows[idx[BestEffort]][dropsCol]
	// Eviction and threshold protection both absorb the burst better than
	// plain shared buffering.
	if barber >= be {
		t.Errorf("BarberQ burst drops %.0f should be below BestEffort %.0f", barber, be)
	}
	if dynaq >= be {
		t.Errorf("DynaQ burst drops %.0f should be below BestEffort %.0f", dynaq, be)
	}
	// BarberQ must actually evict.
	if r.Rows[idx[BarberQ]][3] == 0 {
		t.Error("BarberQ performed no evictions")
	}
	if r.Rows[idx[DynaQ]][3] != 0 || r.Rows[idx[BestEffort]][3] != 0 {
		t.Error("non-evicting schemes reported evictions")
	}
}

func TestExtSharedMemoryHurtsQuietPort(t *testing.T) {
	r, err := ExtSharedMemory(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 = DT-shared, row 1 = DynaQ-dedicated.
	dtDrops, dedDrops := r.Rows[0][2], r.Rows[1][2]
	if dtDrops <= dedDrops {
		t.Errorf("DT-shared quiet-port drops %.0f should exceed dedicated %.0f (§II-C)",
			dtDrops, dedDrops)
	}
	dtFCT, dedFCT := r.Rows[0][0], r.Rows[1][0]
	if dtFCT <= dedFCT {
		t.Errorf("DT-shared burst avg FCT %.2fms should exceed dedicated %.2fms", dtFCT, dedFCT)
	}
}

func TestExtProtocolDependence(t *testing.T) {
	r, err := ExtProtocolDependence(quick)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[Scheme]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	// DynaQ holds the fair split between the DCTCP and CUBIC tenants.
	if got := r.Rows[idx[DynaQ]][0]; got < 0.40 || got > 0.60 {
		t.Errorf("DynaQ DCTCP-tenant share = %.3f, want ≈0.5", got)
	}
	// Every ECN-based scheme collapses: the non-ECN tenant ignores marks.
	for _, s := range []Scheme{PMSB, MQECN, PerQueueECN} {
		if got := r.Rows[idx[s]][0]; got > 0.25 {
			t.Errorf("%s DCTCP-tenant share = %.3f, want the collapse < 0.25", s, got)
		}
	}
}

func TestExtTofinoIsolationDegradesGracefully(t *testing.T) {
	r, err := ExtTofino(quick)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[Scheme]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	exact := r.Rows[idx[DynaQ]][1]       // Jain
	stale := r.Rows[idx[DynaQTofino]][1] // Jain
	be := r.Rows[idx[BestEffort]][1]
	// §IV-A's conjecture: stale queue lengths lose some isolation but
	// stay far closer to exact DynaQ than to the unmanaged baseline.
	if stale <= be+0.05 {
		t.Errorf("Tofino Jain %.3f should clearly beat BestEffort %.3f", stale, be)
	}
	if stale > exact {
		t.Errorf("Tofino Jain %.3f should not beat exact DynaQ %.3f", stale, exact)
	}
}

func TestFig2WorkloadShapes(t *testing.T) {
	r, err := Fig2(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 workloads", len(r.Rows))
	}
	byName := map[string]WorkloadRow{}
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	// Heavy tails: the mean dwarfs the median for every workload.
	for name, row := range byName {
		if row.Mean < 5*row.P50 {
			t.Errorf("%s: mean %v not heavy-tailed vs p50 %v", name, row.Mean, row.P50)
		}
	}
	// Data mining: ~half the flows are tiny, nearly all bytes are huge
	// (the paper's §V quote).
	dm := byName["datamining"]
	if dm.HeavyByteFrac < 0.9 {
		t.Errorf("datamining heavy-byte fraction = %.2f, want ≥ 0.9", dm.HeavyByteFrac)
	}
	// Web search is the least skewed of the four — the reason the paper
	// calls it "the most challenging workload".
	ws := byName["websearch"]
	for name, row := range byName {
		if name == "websearch" {
			continue
		}
		if row.HeavyByteFrac != 0 && ws.HeavyByteFrac > row.HeavyByteFrac {
			t.Errorf("websearch skew %.2f should be below %s's %.2f",
				ws.HeavyByteFrac, name, row.HeavyByteFrac)
		}
	}
}

func TestExtTransportZooFairUnderDynaQ(t *testing.T) {
	r, err := ExtTransportZoo(quick)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[Scheme]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	const jainCol = 4
	if j := r.Rows[idx[DynaQ]][jainCol]; j < 0.95 {
		t.Errorf("DynaQ zoo Jain = %.3f, want ≥ 0.95 across 4 transports", j)
	}
	if j := r.Rows[idx[BestEffort]][jainCol]; j >= r.Rows[idx[DynaQ]][jainCol] {
		t.Error("BestEffort should be less fair than DynaQ across the zoo")
	}
	// Every transport's share is within a sane band under DynaQ.
	for q := 0; q < 4; q++ {
		if got := r.Rows[idx[DynaQ]][q]; got < 0.15 || got > 0.35 {
			t.Errorf("DynaQ zoo queue %d share = %.3f, want ≈0.25", q, got)
		}
	}
}

func TestExtClosedLoopMatchesPaperDirections(t *testing.T) {
	r, err := ExtClosedLoop(quick)
	if err != nil {
		t.Fatal(err)
	}
	load := r.Loads()[0]
	dq, be, pql := r.Cell(DynaQ, load), r.Cell(BestEffort, load), r.Cell(PQL, load)
	if dq == nil || be == nil || pql == nil {
		t.Fatal("missing cells")
	}
	for _, c := range []*FCTStats{dq, be, pql} {
		if c.Completed != c.Generated {
			t.Fatalf("%s: %d/%d responses", c.Scheme, c.Completed, c.Generated)
		}
	}
	// The Fig. 8 directions under the closed-loop application: DynaQ wins
	// small flows against both, and large flows against PQL (the
	// work-conservation claim the open-loop model underplays).
	if be.AvgSmall <= dq.AvgSmall {
		t.Errorf("BestEffort small %v should exceed DynaQ %v", be.AvgSmall, dq.AvgSmall)
	}
	if pql.AvgSmall <= dq.AvgSmall {
		t.Errorf("PQL small %v should exceed DynaQ %v", pql.AvgSmall, dq.AvgSmall)
	}
	if pql.AvgLarge <= dq.AvgLarge {
		t.Errorf("PQL large %v should exceed DynaQ %v (closed-loop work conservation)",
			pql.AvgLarge, dq.AvgLarge)
	}
}

func TestFig12ExtremeFlowCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 takes ~10s even at quick scale")
	}
	r, err := Fig12(quick)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[Scheme]int{}
	for i, s := range r.Schemes {
		idx[s] = i
	}
	if r.MeanJain[idx[DynaQ]] < 0.85 {
		t.Errorf("DynaQ mean Jain = %.3f under extreme flow counts", r.MeanJain[idx[DynaQ]])
	}
	if r.MeanJain[idx[BestEffort]] >= r.MeanJain[idx[DynaQ]] {
		t.Error("BestEffort should be far less fair with 2^(k+i) senders")
	}
}

func TestExtDynaQECNMode(t *testing.T) {
	r, err := ExtDynaQECNMode(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 = drop mode, row 1 = ECN mode.
	for i, s := range r.Schemes {
		if got := r.Rows[i][0]; got < 0.40 || got > 0.60 {
			t.Errorf("%s queue-1 share = %.3f, want ≈0.5", s, got)
		}
		if got := r.Rows[i][2]; got < 0.95 {
			t.Errorf("%s aggregate = %.3fGbps", s, got)
		}
	}
	// The point of ECN mode: isolation without (most of) the drops.
	if r.Rows[1][3] >= r.Rows[0][3]/2 {
		t.Errorf("ECN mode drops %.1fk should be well below drop mode %.1fk",
			r.Rows[1][3], r.Rows[0][3])
	}
	if !DynaQECN.IsECNBased() {
		t.Error("DynaQ-ECN must classify as ECN-based")
	}
}
