package experiment

import (
	"fmt"

	"dynaq/internal/metrics"
	"dynaq/internal/transport"
	"dynaq/internal/units"
)

// Testbed constants (§V-A): a 1GbE rack with a Broadcom-56538-like 85KB
// port buffer and ~500µs base RTT.
const (
	testbedRate   = units.Gbps
	testbedDelay  = 125 * units.Microsecond // base RTT 4·125µs = 500µs
	testbedBuffer = 85 * units.KB
	testbedMinRTO = 10 * units.Millisecond
	testbedMTU    = units.ByteSize(1500)
)

func equalWeights(n int) []int64 {
	w := make([]int64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// testbedStatic fills the shared testbed parameters of the static-flow
// experiments.
func testbedStatic(scheme Scheme, weights []int64, specs []QueueSpec, dur units.Duration, seed int64) StaticConfig {
	return StaticConfig{
		Scheme:      scheme,
		Sched:       SchedDRR,
		Params:      SchemeParams{Weights: weights},
		Rate:        testbedRate,
		Delay:       testbedDelay,
		Buffer:      testbedBuffer,
		Queues:      len(weights),
		MTU:         testbedMTU,
		Specs:       specs,
		Duration:    dur,
		SampleEvery: 500 * units.Millisecond,
		MinRTO:      testbedMinRTO,
		Seed:        seed,
	}
}

// Fig1Result reproduces Figure 1: fair sharing violated by unfair buffer
// occupancy under the best-effort scheme.
type Fig1Result struct {
	// Rate and Share are per active queue (queue 1 and queue 2).
	Rate  [2]units.Rate
	Share [2]float64
	// AvgOccupancy is the mean buffer occupancy per queue over the trace.
	AvgOccupancy [2]units.ByteSize
}

// Fig1 runs the motivation experiment: 4 equal DRR queues, queue 1 fed by
// 8 flows from one sender, queue 2 by 24 flows from three senders, under
// BestEffort. The paper's point: queue 2's arrival pressure monopolizes
// the buffer, so equal DRR weights do not yield equal throughput.
func Fig1(o Options) (*Fig1Result, error) {
	dur := pick(o, 3*units.Second, 15*units.Second, 60*units.Second)
	specs := []QueueSpec{
		{Class: 1, Flows: 8, Hosts: 1},
		{Class: 2, Flows: 24, Hosts: 3},
	}
	cfg := testbedStatic(BestEffort, equalWeights(4), specs, dur, o.Seed)
	cfg.TraceQueues = true
	cfg.TraceStride = 8
	res, err := RunStatic(cfg)
	if err != nil {
		return nil, err
	}
	out := &Fig1Result{}
	warm := units.Time(dur / 10)
	out.Rate[0] = res.AvgThroughput(1, warm, units.Time(dur))
	out.Rate[1] = res.AvgThroughput(2, warm, units.Time(dur))
	out.Share[0] = res.ShareOf(1, warm, units.Time(dur))
	out.Share[1] = res.ShareOf(2, warm, units.Time(dur))
	var occ [2]float64
	for _, s := range res.QueueTrace {
		occ[0] += float64(s.PerQueue[1])
		occ[1] += float64(s.PerQueue[2])
	}
	if n := len(res.QueueTrace); n > 0 {
		out.AvgOccupancy[0] = units.ByteSize(occ[0] / float64(n))
		out.AvgOccupancy[1] = units.ByteSize(occ[1] / float64(n))
	}
	return out, nil
}

// Table renders the figure as text.
func (r *Fig1Result) Table() string {
	var t table
	t.add("queue", "throughput", "share", "avg occupancy")
	for i := 0; i < 2; i++ {
		t.addf("queue %d\t%v\t%.2f\t%v", i+1, r.Rate[i], r.Share[i], r.AvgOccupancy[i])
	}
	return t.String()
}

// ConvergenceResult reproduces Figures 3 and 4: throughput convergence and
// queue evolution of two active DRR queues (2 vs 16 flows) under each
// scheme.
type ConvergenceResult struct {
	Schemes []Scheme
	// Share1 is queue 1's long-run throughput share per scheme (ideal
	// 0.5); JainIdx the mean Jain index over the two active queues.
	Share1  []float64
	JainIdx []float64
	// Traces carries 1K-sample queue evolutions per scheme (Fig. 4).
	Traces [][]metrics.QueueSample
	// Series carries the full throughput series per scheme (Fig. 3).
	Series [][]metrics.ThroughputSample
}

// Fig3 runs the convergence experiment for BestEffort, PQL and DynaQ.
func Fig3(o Options) (*ConvergenceResult, error) {
	dur := pick(o, 3*units.Second, 10*units.Second, 10*units.Second)
	out := &ConvergenceResult{}
	for _, scheme := range NonECNSchemes() {
		specs := []QueueSpec{
			{Class: 1, Flows: 2, Hosts: 1},
			{Class: 2, Flows: 16, Hosts: 1},
		}
		cfg := testbedStatic(scheme, equalWeights(4), specs, dur, o.Seed)
		cfg.TraceQueues = true
		cfg.TraceStride = 4
		res, err := RunStatic(cfg)
		if err != nil {
			return nil, err
		}
		warm := units.Time(dur / 5)
		out.Schemes = append(out.Schemes, scheme)
		out.Share1 = append(out.Share1, res.ShareOf(1, warm, units.Time(dur)))
		out.JainIdx = append(out.JainIdx, res.JainOver([]int{1, 2}, warm, units.Time(dur)))
		out.Series = append(out.Series, res.Samples)
		// Fig. 4's "1K sequential samples at random time": take them from
		// the middle of the run.
		trace := res.QueueTrace
		if len(trace) > 1000 {
			start := len(trace) / 2
			trace = trace[start : start+1000]
		}
		out.Traces = append(out.Traces, trace)
	}
	return out, nil
}

// Fig4 is the queue-evolution view of the same runs as Fig3.
func Fig4(o Options) (*ConvergenceResult, error) { return Fig3(o) }

// Table renders the convergence summary.
func (r *ConvergenceResult) Table() string {
	var t table
	t.add("scheme", "queue1 share (ideal 0.5)", "Jain index", "mean qlen q1", "mean qlen q2")
	for i, s := range r.Schemes {
		var q1, q2 float64
		for _, smp := range r.Traces[i] {
			q1 += float64(smp.PerQueue[1])
			q2 += float64(smp.PerQueue[2])
		}
		if n := len(r.Traces[i]); n > 0 {
			q1 /= float64(n)
			q2 /= float64(n)
		}
		t.addf("%s\t%.3f\t%.3f\t%v\t%v", s, r.Share1[i], r.JainIdx[i],
			units.ByteSize(q1), units.ByteSize(q2))
	}
	return t.String()
}

// PhasedResult reproduces Figures 5 and 7: bandwidth sharing among 4 DRR
// queues as queues go inactive over time.
type PhasedResult struct {
	Schemes []Scheme
	// Phase boundaries (queues stop at each boundary).
	Boundaries []units.Time
	// JainPerPhase[i][p] is scheme i's mean Jain index over the queues
	// active in phase p; AggPerPhase the mean aggregate throughput.
	JainPerPhase [][]float64
	AggPerPhase  [][]units.Rate
	Series       [][]metrics.ThroughputSample
}

// phasedRun drives the Fig. 5/7 scenario: queue i carries 2^i flows; from
// mid-run the highest queue stops every interval until only queue 1
// remains.
func phasedRun(o Options, schemes []Scheme, ctrlFor func(class int) func() transport.Controller) (*PhasedResult, error) {
	// Paper timeline: stops at 10, 15, 20, 25 s; scale the whole timeline.
	unit := pick(o, units.Second, 5*units.Second, 5*units.Second)
	dur := 5 * unit
	out := &PhasedResult{
		Boundaries: []units.Time{0, units.Time(2 * unit), units.Time(3 * unit), units.Time(4 * unit), units.Time(5 * unit)},
	}
	for _, scheme := range schemes {
		var specs []QueueSpec
		// Paper's queue q (1-based) is service class q-1. Queue q carries
		// 2^q flows; queue 4 stops first (at 2·unit), then 3, then 2;
		// queue 1 runs to the end (5·unit).
		stopOf := []units.Duration{5 * unit, 4 * unit, 3 * unit, 2 * unit}
		for q := 1; q <= 4; q++ {
			var ctrl func() transport.Controller
			if ctrlFor != nil {
				ctrl = ctrlFor(q)
			}
			specs = append(specs, QueueSpec{
				Class:  q - 1,
				Flows:  1 << q, // 2, 4, 8, 16
				Hosts:  1,
				StopAt: stopOf[q-1],
				Ctrl:   ctrl,
			})
		}
		cfg := testbedStatic(scheme, equalWeights(4), specs, dur, o.Seed)
		cfg.SampleEvery = pick(o, 100*units.Millisecond, 250*units.Millisecond, 500*units.Millisecond)
		res, err := RunStatic(cfg)
		if err != nil {
			return nil, err
		}
		activeIn := [][]int{{0, 1, 2, 3}, {0, 1, 2}, {0, 1}, {0}}
		var jain []float64
		var agg []units.Rate
		for p := 0; p < 4; p++ {
			from, to := out.Boundaries[p], out.Boundaries[p+1]
			// Skip the convergence transient right after a stop.
			from = from.Add(unit / 5)
			jain = append(jain, res.JainOver(activeIn[p], from, to))
			agg = append(agg, res.AvgAggregate(from, to))
		}
		out.Schemes = append(out.Schemes, scheme)
		out.JainPerPhase = append(out.JainPerPhase, jain)
		out.AggPerPhase = append(out.AggPerPhase, agg)
		out.Series = append(out.Series, res.Samples)
	}
	return out, nil
}

// Fig5 runs the equal-weight bandwidth-sharing experiment with queue
// departures for BestEffort, PQL and DynaQ.
func Fig5(o Options) (*PhasedResult, error) {
	return phasedRun(o, NonECNSchemes(), nil)
}

// Fig7 repeats Fig5 under DynaQ with CUBIC senders on queues 3 and 4 — the
// protocol-independence demonstration.
func Fig7(o Options) (*PhasedResult, error) {
	return phasedRun(o, []Scheme{DynaQ}, func(class int) func() transport.Controller {
		if class >= 3 {
			return func() transport.Controller { return transport.NewCubic() }
		}
		return nil
	})
}

// Table renders per-phase fairness and aggregate throughput.
func (r *PhasedResult) Table() string {
	var t table
	t.add("scheme", "phase(active)", "Jain", "aggregate")
	names := []string{"4 queues", "3 queues", "2 queues", "1 queue"}
	for i, s := range r.Schemes {
		for p := range names {
			t.addf("%s\t%s\t%.3f\t%v", s, names[p], r.JainPerPhase[i][p], r.AggPerPhase[i][p])
		}
	}
	return t.String()
}

// Fig6Result reproduces Figure 6: throughput shares under DRR weights
// 4:3:2:1.
type Fig6Result struct {
	Schemes []Scheme
	// Shares[i][q] is queue q+1's mean throughput share under scheme i;
	// ideal 0.4/0.3/0.2/0.1.
	Shares [][4]float64
	// WJain is the weighted Jain index (1 = perfectly weighted-fair).
	WJain []float64
}

// Fig6 runs the weighted sharing experiment for BestEffort, PQL and DynaQ.
func Fig6(o Options) (*Fig6Result, error) {
	dur := pick(o, 3*units.Second, 10*units.Second, 10*units.Second)
	weights := []int64{4, 3, 2, 1}
	out := &Fig6Result{}
	for _, scheme := range NonECNSchemes() {
		var specs []QueueSpec
		for q := 1; q <= 4; q++ {
			specs = append(specs, QueueSpec{Class: q - 1, Flows: 1 << q, Hosts: 1})
		}
		cfg := testbedStatic(scheme, weights, specs, dur, o.Seed)
		res, err := RunStatic(cfg)
		if err != nil {
			return nil, err
		}
		warm := units.Time(dur / 5)
		var shares [4]float64
		xs := make([]float64, 4)
		for q := 0; q < 4; q++ {
			shares[q] = res.ShareOf(q, warm, units.Time(dur))
			xs[q] = float64(res.AvgThroughput(q, warm, units.Time(dur)))
		}
		out.Schemes = append(out.Schemes, scheme)
		out.Shares = append(out.Shares, shares)
		out.WJain = append(out.WJain, metrics.WeightedJain(xs, weights))
	}
	return out, nil
}

// Table renders shares against the 0.4/0.3/0.2/0.1 ideal.
func (r *Fig6Result) Table() string {
	var t table
	t.add("scheme", "q1 (0.4)", "q2 (0.3)", "q3 (0.2)", "q4 (0.1)", "weighted Jain")
	for i, s := range r.Schemes {
		t.addf("%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f", s,
			r.Shares[i][0], r.Shares[i][1], r.Shares[i][2], r.Shares[i][3], r.WJain[i])
	}
	return t.String()
}

// HighSpeedResult reproduces Figures 10-12: Jain fairness over active
// queues plus aggregate throughput on 10/100 Gbps links as queues stop one
// by one.
type HighSpeedResult struct {
	Schemes []Scheme
	// MinJain is the worst per-sample Jain index over the run (the
	// paper's plots dip at stop instants); MeanJain the average.
	MinJain, MeanJain []float64
	// MeanAgg and MinAgg summarize aggregate throughput over the run.
	MeanAgg, MinAgg []units.Rate
	Series          [][]metrics.ThroughputSample
	Rate            units.Rate
}

// highSpeedRun drives the Fig. 10-12 scenario on a star with 8 WRR queues:
// queue i has senders[i] single-flow senders; queues 2..8 stop every 50ms
// from 200ms.
func highSpeedRun(o Options, rate units.Rate, buf units.ByteSize, rtt units.Duration,
	mtu units.ByteSize, senders [8]int, schemes []Scheme) (*HighSpeedResult, error) {
	out := &HighSpeedResult{Rate: rate}
	for _, scheme := range schemes {
		var specs []QueueSpec
		for q := 1; q <= 8; q++ {
			stop := units.Duration(0)
			if q >= 2 {
				stop = 200*units.Millisecond + units.Duration(q-2)*50*units.Millisecond
			}
			specs = append(specs, QueueSpec{
				Class:  q - 1,
				Flows:  senders[q-1],
				Hosts:  senders[q-1], // one flow per sender host
				StopAt: stop,
			})
		}
		cfg := StaticConfig{
			Scheme:      scheme,
			Sched:       SchedWRR,
			Params:      SchemeParams{Weights: equalWeights(8)},
			Rate:        rate,
			Delay:       rtt / 4,
			Buffer:      buf,
			Queues:      8,
			MTU:         mtu,
			Specs:       specs,
			Duration:    600 * units.Millisecond,
			SampleEvery: 10 * units.Millisecond,
			MinRTO:      5 * units.Millisecond,
			Seed:        o.Seed,
		}
		res, err := RunStatic(cfg)
		if err != nil {
			return nil, err
		}
		minJ, sumJ, nJ := 1.0, 0.0, 0
		var minA units.Rate = units.Rate(1) << 62
		var sumA int64
		for _, smp := range res.Samples {
			// Active queues at this sample time.
			var xs []float64
			for q := 0; q < 8; q++ {
				stop := specs[q].StopAt
				if stop == 0 || smp.At <= units.Time(stop).Add(20*units.Millisecond) {
					xs = append(xs, float64(smp.PerQueue[q]))
				}
			}
			// Skip the slow-start warmup and the sample right at a stop.
			if smp.At < units.Time(50*units.Millisecond) {
				continue
			}
			j := metrics.Jain(xs)
			if j < minJ {
				minJ = j
			}
			sumJ += j
			nJ++
			if smp.Aggregate < minA {
				minA = smp.Aggregate
			}
			sumA += int64(smp.Aggregate)
		}
		out.Schemes = append(out.Schemes, scheme)
		out.MinJain = append(out.MinJain, minJ)
		out.MeanJain = append(out.MeanJain, sumJ/float64(nJ))
		out.MinAgg = append(out.MinAgg, minA)
		out.MeanAgg = append(out.MeanAgg, units.Rate(sumA/int64(nJ)))
		out.Series = append(out.Series, res.Samples)
	}
	return out, nil
}

// Fig10 runs the 10Gbps bandwidth-sharing simulation (2·i senders for
// queue i, Broadcom Trident+-like 192KB port buffer, 84µs RTT).
func Fig10(o Options) (*HighSpeedResult, error) {
	var senders [8]int
	for i := range senders {
		senders[i] = 2 * (i + 1)
		if o.Scale == Quick {
			senders[i] = i + 1
		}
	}
	return highSpeedRun(o, 10*units.Gbps, 192*units.KB, 84*units.Microsecond,
		1500, senders, NonECNSchemes())
}

// Fig11 repeats Fig10 at 100Gbps with jumbo frames and a Trident 3-like
// 1MB buffer (40µs RTT).
func Fig11(o Options) (*HighSpeedResult, error) {
	var senders [8]int
	for i := range senders {
		senders[i] = 2 * (i + 1)
		if o.Scale == Quick {
			senders[i] = i + 1
		}
	}
	return highSpeedRun(o, 100*units.Gbps, units.MB, 40*units.Microsecond,
		9000, senders, NonECNSchemes())
}

// Fig12 is the extreme traffic-dynamics run: queue i has 2^(3+i)
// single-flow senders (16 up to 2048 at full scale).
func Fig12(o Options) (*HighSpeedResult, error) {
	shift := pick(o, 1, 2, 3)
	var senders [8]int
	for i := range senders {
		senders[i] = 1 << (shift + i + 1)
	}
	return highSpeedRun(o, 100*units.Gbps, units.MB, 40*units.Microsecond,
		9000, senders, NonECNSchemes())
}

// Table renders the high-speed fairness summary.
func (r *HighSpeedResult) Table() string {
	var t table
	t.add("scheme", "mean Jain", "min Jain", "mean aggregate", "min aggregate")
	for i, s := range r.Schemes {
		t.addf("%s\t%.3f\t%.3f\t%v\t%v", s, r.MeanJain[i], r.MinJain[i], r.MeanAgg[i], r.MinAgg[i])
	}
	return t.String()
}

// CyclesResult reproduces the §IV-A hardware cost analysis.
type CyclesResult struct {
	QueueCounts []int
	Cycles      []int
	// TridentOverhead is the fraction of a Trident 3's ≥800-cycle
	// per-packet budget for 8 queues.
	TridentOverhead float64
}

// Table renders the cycle budget.
func (r *CyclesResult) Table() string {
	var t table
	t.add("queues", "worst-case cycles")
	for i, m := range r.QueueCounts {
		t.addf("%d\t%d", m, r.Cycles[i])
	}
	return t.String() + fmt.Sprintf("Trident 3 overhead (8 queues / 800 cycles): %.2f%%\n",
		100*r.TridentOverhead)
}
