package experiment

import (
	"reflect"
	"testing"

	"dynaq/internal/faults"
	"dynaq/internal/metrics"
	"dynaq/internal/units"
	"dynaq/internal/workload"
)

func staticFaultCfg(seed int64) StaticConfig {
	cfg := testbedStatic(DynaQ, equalWeights(4), []QueueSpec{
		{Class: 1, Flows: 2, Hosts: 1},
		{Class: 2, Flows: 8, Hosts: 1},
	}, 1500*units.Millisecond, seed)
	cfg.SampleEvery = 100 * units.Millisecond
	cfg.Guard = true
	cfg.Faults = []faults.Spec{
		{Kind: faults.KindLoss, Target: "tor:2", AtS: 0, Rate: 0.002},
		{Kind: faults.KindFlap, Target: "host0:nic", AtS: 0.3, UntilS: 0.8, PeriodS: 0.2, JitterS: 0.02},
	}
	return cfg
}

// TestStaticFaultRunReplays is the replay acceptance test: the same
// scenario + seed must reproduce the identical fault timeline and the
// identical measurements, sample for sample.
func TestStaticFaultRunReplays(t *testing.T) {
	r1, err := RunStatic(staticFaultCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunStatic(staticFaultCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.FaultTimeline, r2.FaultTimeline) {
		t.Fatalf("fault timelines diverged:\n%v\n%v", r1.FaultTimeline, r2.FaultTimeline)
	}
	if !reflect.DeepEqual(r1.Samples, r2.Samples) {
		t.Fatal("throughput samples diverged between identical runs")
	}
	if r1.LinkLost != r2.LinkLost || r1.Drops != r2.Drops {
		t.Fatalf("counters diverged: lost %d/%d drops %d/%d",
			r1.LinkLost, r2.LinkLost, r1.Drops, r2.Drops)
	}
	if len(r1.FaultTimeline) < 4 {
		t.Fatalf("flap schedule produced only %d transitions", len(r1.FaultTimeline))
	}
	if r1.LinkLost == 0 {
		t.Fatal("faults blackholed no packets")
	}
	// A different seed must shift the jittered flap timeline.
	r3, err := RunStatic(staticFaultCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.FaultTimeline, r3.FaultTimeline) {
		t.Fatal("different seeds produced identical jittered timelines")
	}
}

// TestStaticFaultRunGuardClean: DynaQ under flap + loss must not violate a
// single invariant.
func TestStaticFaultRunGuardClean(t *testing.T) {
	res, err := RunStatic(staticFaultCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationTotal != 0 {
		t.Fatalf("guardrail recorded %d violations, first: %v",
			res.ViolationTotal, res.Violations[0])
	}
}

func dynamicFaultCfg(seed int64) DynamicConfig {
	return DynamicConfig{
		Scheme:       DynaQ,
		Params:       SchemeParams{Weights: equalWeights(4)},
		Topo:         TopoLeafSpine,
		Leaves:       2,
		Spines:       2,
		HostsPerLeaf: 2,
		Rate:         10 * units.Gbps,
		Delay:        10 * units.Microsecond,
		Buffer:       192 * units.KB,
		Queues:       4,
		Load:         0.4,
		Flows:        60,
		Workloads:    []*workload.CDF{workload.WebSearch()},
		MinRTO:       5 * units.Millisecond,
		Seed:         seed,
		MaxRuntime:   20 * units.Second,

		Guard:          true,
		FailureAware:   true,
		DetectionDelay: 500 * units.Microsecond,
		Faults: []faults.Spec{
			{Kind: faults.KindFlap, Target: "spine0", AtS: 0.002, UntilS: 0.03, PeriodS: 0.01, JitterS: 0.001},
			{Kind: faults.KindLoss, Target: "leaf0:spine1", AtS: 0, Rate: 0.005},
		},
	}
}

// TestDynamicFaultRunReplays covers the FCT side of the replay criterion:
// leaf-spine under a flapping spine and a lossy uplink, twice, identically.
func TestDynamicFaultRunReplays(t *testing.T) {
	r1, err := RunDynamic(dynamicFaultCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunDynamic(dynamicFaultCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.FaultTimeline, r2.FaultTimeline) {
		t.Fatalf("fault timelines diverged:\n%v\n%v", r1.FaultTimeline, r2.FaultTimeline)
	}
	if r1.Completed != r2.Completed || r1.Generated != r2.Generated {
		t.Fatalf("flow counts diverged: %d/%d vs %d/%d",
			r1.Completed, r1.Generated, r2.Completed, r2.Generated)
	}
	if a, b := r1.FCT.Avg(metrics.AllFlows), r2.FCT.Avg(metrics.AllFlows); a != b {
		t.Fatalf("FCT diverged: %v vs %v", a, b)
	}
	if r1.Completed == 0 {
		t.Fatal("no flows completed under faults")
	}
	if r1.ViolationTotal != 0 {
		t.Fatalf("guardrail recorded %d violations, first: %v",
			r1.ViolationTotal, r1.Violations[0])
	}
	if r1.LinkLost == 0 {
		t.Fatal("faults blackholed no packets")
	}
}
