package experiment

import (
	"fmt"
	"math"
)

// SeedStats summarizes a metric across independent seeds.
type SeedStats struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// String renders mean ± std (min–max).
func (s SeedStats) String() string {
	return fmt.Sprintf("%.4f ± %.4f (min %.4f, max %.4f, n=%d)",
		s.Mean, s.Std, s.Min, s.Max, s.N)
}

// RunSeeds repeats a scalar-metric experiment across n seeds derived from
// base.Seed and aggregates the results — the harness for reporting
// reproduction numbers with confidence rather than single-run noise.
//
// Seeds run on base.Parallel workers (0 = GOMAXPROCS) via RunTrials, so run
// must be safe to call concurrently: build all simulation state inside it.
// Aggregation happens over the seed-index-ordered results, making the stats
// bit-for-bit independent of the worker count.
func RunSeeds(n int, base Options, run func(Options) (float64, error)) (SeedStats, error) {
	if n <= 0 {
		return SeedStats{}, fmt.Errorf("experiment: RunSeeds needs n > 0")
	}
	if run == nil {
		return SeedStats{}, fmt.Errorf("experiment: RunSeeds needs a metric function")
	}
	xs, err := RunTrials(n, base.Parallel, func(i int) (float64, error) {
		o := base
		o.Seed = base.Seed + int64(i)*7919 // distinct, deterministic seeds
		v, err := run(o)
		if err != nil {
			return 0, fmt.Errorf("seed %d: %w", o.Seed, err)
		}
		return v, nil
	})
	if err != nil {
		return SeedStats{}, err
	}
	st := SeedStats{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		st.Mean += x
		if x < st.Min {
			st.Min = x
		}
		if x > st.Max {
			st.Max = x
		}
	}
	st.Mean /= float64(n)
	for _, x := range xs {
		st.Std += (x - st.Mean) * (x - st.Mean)
	}
	st.Std = math.Sqrt(st.Std / float64(n))
	return st, nil
}
