package experiment

import (
	"fmt"

	"dynaq/internal/faults"
	"dynaq/internal/metrics"
	"dynaq/internal/units"
	"dynaq/internal/workload"
)

// ExtFaults stresses the schemes under scripted network faults, the regime
// the paper never evaluates: does DynaQ's isolation survive link flapping
// and lossy optics, and does the fabric degrade gracefully when a whole
// spine dies?
//
// Two scenarios per scheme, both with the invariant guardrail armed:
//
//  1. Static rack: queue 1 (2 flows) vs queue 2 (16 flows) through the
//     testbed bottleneck, whose egress runs 0.1% random loss the whole
//     time while queue 1's sender NIC flaps mid-run. Columns report the
//     post-flap fairness (Jain over queues 1–2), queue 1's recovered
//     share, and aggregate goodput.
//  2. Leaf-spine FCT: web-search traffic at load 0.5 with failure-aware
//     ECMP (500µs detection) while spine0 flaps and one leaf uplink runs
//     0.5% loss.
//
// The violations column must read zero for every scheme: the guardrail
// audits Σ T_i == B, T_i ≥ 0, occupancy, and pool accounting on every
// port event of both scenarios.
func ExtFaults(o Options) (*AblationResult, error) {
	dur := pick(o, 4*units.Second, 10*units.Second, 10*units.Second)
	out := &AblationResult{
		Name: "fault-injection",
		Labels: []string{
			"Jain", "q1-share", "agg-Gbps",
			"fct-avg-ms", "completed",
			"linkdrops-k", "violations",
		},
		Schemes: NonECNSchemes(),
	}
	for _, scheme := range out.Schemes {
		srow, err := extFaultsStatic(o, scheme, dur)
		if err != nil {
			return nil, fmt.Errorf("ext-faults %s static: %w", scheme, err)
		}
		drow, err := extFaultsDynamic(o, scheme)
		if err != nil {
			return nil, fmt.Errorf("ext-faults %s dynamic: %w", scheme, err)
		}
		row := []float64{
			srow.jain, srow.q1Share, srow.aggGbps,
			drow.fctAvgMs, drow.completed,
			float64(srow.lost+drow.lost) / 1000,
			float64(srow.violations + drow.violations),
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

type extFaultsStaticRow struct {
	jain, q1Share, aggGbps float64
	lost                   int64
	violations             int64
}

func extFaultsStatic(o Options, scheme Scheme, dur units.Duration) (*extFaultsStaticRow, error) {
	specs := []QueueSpec{
		{Class: 1, Flows: 2, Hosts: 1},  // the light tenant the faults pick on
		{Class: 2, Flows: 16, Hosts: 1}, // the heavy competitor
	}
	cfg := testbedStatic(scheme, equalWeights(4), specs, dur, o.Seed)
	cfg.SampleEvery = 100 * units.Millisecond
	cfg.Guard = true
	// host0 carries queue 1's flows; host2 is the receiver, so tor:2 is
	// the measured bottleneck egress.
	cfg.Faults = []faults.Spec{
		{Kind: faults.KindLoss, Target: "tor:2", AtS: 0, Rate: 0.001},
		{
			Kind: faults.KindFlap, Target: "host0:nic",
			AtS:     0.3 * dur.Seconds(),
			UntilS:  0.5 * dur.Seconds(),
			PeriodS: 0.2, JitterS: 0.02,
		},
	}
	res, err := RunStatic(cfg)
	if err != nil {
		return nil, err
	}
	// Measure after the flap window: did the flapped tenant recover its
	// fair share, or did the heavy queue keep the buffer it grabbed?
	warm, end := units.Time(dur).Add(-dur.Scale(0.4)), units.Time(dur)
	return &extFaultsStaticRow{
		jain:       res.JainOver([]int{1, 2}, warm, end),
		q1Share:    res.ShareOf(1, warm, end),
		aggGbps:    float64(res.AvgAggregate(warm, end)) / 1e9,
		lost:       res.LinkLost + res.LinkCorrupted,
		violations: res.ViolationTotal,
	}, nil
}

type extFaultsDynamicRow struct {
	fctAvgMs, completed float64
	lost                int64
	violations          int64
}

func extFaultsDynamic(o Options, scheme Scheme) (*extFaultsDynamicRow, error) {
	cfg := DynamicConfig{
		Scheme:       scheme,
		Params:       SchemeParams{Weights: equalWeights(4)},
		Topo:         TopoLeafSpine,
		Leaves:       2,
		Spines:       2,
		HostsPerLeaf: 2,
		Rate:         10 * units.Gbps,
		Delay:        10 * units.Microsecond,
		Buffer:       192 * units.KB,
		Queues:       4,
		MTU:          1500,
		Load:         0.5,
		Flows:        pick(o, 200, 1000, 4000),
		Workloads:    []*workload.CDF{workload.WebSearch()},
		MinRTO:       5 * units.Millisecond,
		Seed:         o.Seed,
		MaxRuntime:   pick(o, 30*units.Second, 60*units.Second, 120*units.Second),

		Guard:          true,
		FailureAware:   true,
		DetectionDelay: 500 * units.Microsecond,
		// spine0 (whole switch, via its incident-link group) flaps during
		// the arrival burst, and one leaf uplink runs lossy optics.
		Faults: []faults.Spec{
			{
				Kind: faults.KindFlap, Target: "spine0",
				AtS: 0.002, UntilS: 0.05, PeriodS: 0.01, JitterS: 0.001,
			},
			{Kind: faults.KindLoss, Target: "leaf0:spine1", AtS: 0, Rate: 0.005},
		},
	}
	res, err := RunDynamic(cfg)
	if err != nil {
		return nil, err
	}
	row := &extFaultsDynamicRow{
		completed:  float64(res.Completed) / float64(res.Generated),
		lost:       res.LinkLost + res.LinkCorrupted,
		violations: res.ViolationTotal,
	}
	if res.Completed > 0 {
		row.fctAvgMs = float64(res.FCT.Avg(metrics.AllFlows)) / float64(units.Millisecond)
	}
	return row, nil
}
