package experiment

import (
	"fmt"
	"io"
	"math/rand"

	"dynaq/internal/faults"
	"dynaq/internal/flowsim"
	"dynaq/internal/metrics"
	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/pias"
	"dynaq/internal/sim"
	"dynaq/internal/telemetry"
	ttrace "dynaq/internal/telemetry/trace"
	"dynaq/internal/topology"
	"dynaq/internal/transport"
	"dynaq/internal/units"
	"dynaq/internal/workload"
)

// TopoKind selects the network shape of a dynamic-flow experiment.
type TopoKind string

// Topology kinds.
const (
	TopoStar      TopoKind = "star"
	TopoLeafSpine TopoKind = "leafspine"
	// TopoFatTree is a k-ary fat tree. It exists only at flow level (the
	// Engine must be flow or hybrid): its scale is exactly what the fluid
	// fast path is for.
	TopoFatTree TopoKind = "fattree"
)

// DynamicConfig assembles an FCT experiment: Poisson flow arrivals with
// empirical sizes, SPQ+DRR scheduling with two-level PIAS classification
// (§V-A2 and §V-B2).
type DynamicConfig struct {
	Scheme Scheme
	Params SchemeParams

	// Engine selects the fidelity: EnginePacket (the default) runs the
	// per-packet discrete-event engine; EngineFlow runs the fluid fast
	// path; EngineHybrid adds selective packetization of congested ports
	// (see internal/flowsim).
	Engine EngineMode
	// FlowCutoff is the fluid engines' short/long flow classification
	// boundary (default: the PIAS Demotion threshold). Ignored by the
	// packet engine.
	FlowCutoff units.ByteSize
	// FatTreeK is the fat-tree arity (TopoFatTree only).
	FatTreeK int

	Topo TopoKind
	// Star parameters: Servers sender hosts plus one client (the
	// bottleneck is the client downlink), matching the testbed's 4
	// servers + 1 client.
	Servers int
	// Leaf-spine parameters.
	Leaves, Spines, HostsPerLeaf int

	Rate   units.Rate
	Delay  units.Duration
	Buffer units.ByteSize
	// Queues counts all service queues: queue 0 is the shared SPQ queue,
	// queues 1..Queues-1 are DRR service queues.
	Queues int
	MTU    units.ByteSize

	// Load is the target bottleneck utilization (0.3–0.8 in the paper).
	Load float64
	// Flows is the number of flows to generate (paper: 10K).
	Flows int
	// Workloads supplies one flow-size CDF per DRR service queue; a
	// single entry is shared by all queues (testbed: web search for all;
	// leaf-spine: the four workloads round-robin).
	Workloads []*workload.CDF
	// DCTCP runs all flows with DCTCP + ECN (the ECN-based lineup).
	DCTCP bool
	// Demotion is the PIAS threshold (default 100KB).
	Demotion units.ByteSize

	MinRTO units.Duration
	Seed   int64
	// MaxRuntime bounds the simulated time after the last arrival to
	// drain stragglers (default 10s of simulated time).
	MaxRuntime units.Duration

	// Faults is the scripted fault schedule, resolved against the
	// topology's fault registry (see topology.Star.FaultRegistry and
	// topology.LeafSpine.FaultRegistry for the link names).
	Faults []faults.Spec
	// Guard wires the invariant guardrail into every switch port.
	Guard bool
	// FailureAware enables failure-aware ECMP on the leaf-spine (ignored
	// on the star, which has a single path per destination).
	FailureAware bool
	// DetectionDelay is the failure-aware routing convergence time
	// (default 1ms when FailureAware is set).
	DetectionDelay units.Duration

	// Telemetry, when non-nil, streams the run's metric registry and
	// sim-time event log into the run's artifact directory; the caller
	// owns (and closes) the Run.
	Telemetry *telemetry.Run
	// Progress, when non-nil, receives human-readable wall-clock progress
	// lines (typically os.Stderr); it never feeds the artifacts.
	Progress io.Writer

	// Spans, when non-nil, receives a retroactive sim-time "sim" span for
	// the run, parented under SpanParent. Sim spans carry simulated time
	// only — wall-clock values must never reach them.
	Spans      *ttrace.Tracer
	SpanParent string
}

// DynamicResult is the outcome of an FCT run.
type DynamicResult struct {
	Scheme    Scheme
	Load      float64
	FCT       *metrics.FCTCollector
	Generated int
	Completed int

	// FaultTimeline is the applied fault transitions (empty without Faults).
	FaultTimeline []faults.Transition
	// LinkLost / LinkCorrupted total the packets the faults blackholed or
	// corrupted across every link of the topology.
	LinkLost, LinkCorrupted int64
	// Violations holds the recorded guardrail violations (Guard only);
	// ViolationTotal counts all of them, recorded or not.
	Violations     []faults.Violation
	ViolationTotal int64

	// Events counts the discrete events the simulator processed — the
	// basis for comparing engine fidelities' costs.
	Events int64
	// Fluid holds the flow-engine counters (nil under the packet engine).
	Fluid *flowsim.Stats
}

// RunDynamic executes an FCT scenario, dispatching on cfg.Engine.
func RunDynamic(cfg DynamicConfig) (*DynamicResult, error) {
	switch cfg.Engine {
	case EngineFlow, EngineHybrid:
		return runDynamicFluid(cfg)
	case "", EnginePacket:
		if cfg.Topo == TopoFatTree {
			return nil, fmt.Errorf("experiment: the fat-tree topology needs the flow or hybrid engine")
		}
	default:
		return nil, fmt.Errorf("experiment: unknown engine %q", cfg.Engine)
	}
	if cfg.Flows <= 0 {
		return nil, fmt.Errorf("experiment: dynamic run needs flows > 0")
	}
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("experiment: dynamic run needs at least one workload")
	}
	if cfg.Queues < 2 {
		return nil, fmt.Errorf("experiment: dynamic run needs an SPQ queue plus DRR queues")
	}
	if cfg.MTU == 0 {
		cfg.MTU = 1500
	}
	if cfg.Demotion == 0 {
		cfg.Demotion = pias.DefaultDemotionThreshold
	}
	if cfg.MaxRuntime == 0 {
		cfg.MaxRuntime = 10 * units.Second
	}
	if cfg.Params.Rate == 0 {
		cfg.Params.Rate = cfg.Rate
	}
	mss := cfg.MTU - transport.HeaderSize

	s := sim.New()
	var endpoints []*transport.Endpoint
	var hosts int
	var reg *faults.Registry
	// obsPorts are the switch ports the guardrail watches and the telemetry
	// layer instruments, with their registry labels.
	var obsPorts []*netsim.Port
	var obsLabels []string
	needPorts := cfg.Guard || cfg.Telemetry != nil
	switch cfg.Topo {
	case TopoStar:
		if cfg.Servers <= 0 {
			cfg.Servers = 4
		}
		hosts = cfg.Servers + 1
		if cfg.Params.BaseRTT == 0 {
			cfg.Params.BaseRTT = 4 * cfg.Delay
		}
		star, err := topology.NewStar(s, topology.StarConfig{
			Hosts:     hosts,
			Rate:      cfg.Rate,
			Delay:     cfg.Delay,
			Buffer:    cfg.Buffer,
			Queues:    cfg.Queues,
			Factories: Factories(cfg.Scheme, SchedSPQDRR, cfg.Params, cfg.MTU),
		})
		if err != nil {
			return nil, err
		}
		endpoints = star.Endpoints
		if len(cfg.Faults) > 0 {
			reg = star.FaultRegistry()
		}
		if needPorts {
			for i := 0; i < hosts; i++ {
				obsPorts = append(obsPorts, star.Port(i))
				obsLabels = append(obsLabels, fmt.Sprintf("tor:%d", i))
			}
		}
	case TopoLeafSpine:
		if cfg.Leaves == 0 || cfg.Spines == 0 || cfg.HostsPerLeaf == 0 {
			return nil, fmt.Errorf("experiment: leaf-spine needs leaves/spines/hostsPerLeaf")
		}
		hosts = cfg.Leaves * cfg.HostsPerLeaf
		if cfg.Params.BaseRTT == 0 {
			cfg.Params.BaseRTT = 8 * cfg.Delay
		}
		ls, err := topology.NewLeafSpine(s, topology.LeafSpineConfig{
			Leaves:         cfg.Leaves,
			Spines:         cfg.Spines,
			HostsPerLeaf:   cfg.HostsPerLeaf,
			Rate:           cfg.Rate,
			Delay:          cfg.Delay,
			Buffer:         cfg.Buffer,
			Queues:         cfg.Queues,
			FailureAware:   cfg.FailureAware,
			DetectionDelay: cfg.DetectionDelay,
			Factories:      Factories(cfg.Scheme, SchedSPQDRR, cfg.Params, cfg.MTU),
		})
		if err != nil {
			return nil, err
		}
		endpoints = ls.Endpoints
		if len(cfg.Faults) > 0 {
			reg = ls.FaultRegistry()
		}
		if needPorts {
			for l, leaf := range ls.Leaves {
				for i := 0; i < leaf.NumPorts(); i++ {
					obsPorts = append(obsPorts, leaf.Port(i))
					obsLabels = append(obsLabels, fmt.Sprintf("leaf%d:%d", l, i))
				}
			}
			for sp, spine := range ls.Spines {
				for i := 0; i < spine.NumPorts(); i++ {
					obsPorts = append(obsPorts, spine.Port(i))
					obsLabels = append(obsLabels, fmt.Sprintf("spine%d:%d", sp, i))
				}
			}
		}
	default:
		return nil, fmt.Errorf("experiment: unknown topology %q", cfg.Topo)
	}

	var eng *faults.Engine
	if reg != nil {
		eng = faults.NewEngine(s, reg, cfg.Seed)
		if err := eng.Schedule(cfg.Faults); err != nil {
			return nil, err
		}
	}
	var guard *faults.Guardrail
	if cfg.Guard {
		guard = faults.NewGuardrail(32)
		for i, p := range obsPorts {
			guard.Watch(obsLabels[i], p)
		}
	}

	classifier, err := pias.NewClassifier(cfg.Demotion, 0)
	if err != nil {
		return nil, err
	}
	// Flow generation: the aggregate arrival rate targets Load on one
	// bottleneck link (the star's client downlink, or each host's
	// downlink in the leaf-spine, scaled by the host count as every host
	// is a receiver).
	genCap := cfg.Rate
	if cfg.Topo == TopoLeafSpine {
		genCap = cfg.Rate * units.Rate(hosts)
	}
	gens := make([]*workload.FlowGen, len(cfg.Workloads))
	for i, cdf := range cfg.Workloads {
		g, err := workload.NewFlowGen(cfg.Seed+int64(i), cdf, genCap, cfg.Load/float64(len(cfg.Workloads)))
		if err != nil {
			return nil, err
		}
		gens[i] = g
	}

	res := &DynamicResult{Scheme: cfg.Scheme, Load: cfg.Load, FCT: metrics.NewFCTCollector()}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	serviceQueues := cfg.Queues - 1
	var flowID packet.FlowID

	// Telemetry wiring. Flow accounting reads the same two sources the
	// result does — the flow-id counter and the FCT collector — so there is
	// no second set of books to fall out of sync.
	var fctHist *telemetry.Histogram
	if cfg.Telemetry != nil {
		treg := cfg.Telemetry.Registry()
		instrumentSim(treg, s)
		for i, p := range obsPorts {
			p.Instrument(treg, obsLabels[i])
		}
		instrumentTransport(treg, endpoints)
		instrumentFaults(treg, cfg.Telemetry, eng, guard)
		instrumentLinks(treg, reg)
		treg.CounterFunc("flows_generated_total", func() int64 { return int64(flowID) })
		treg.CounterFunc("flows_completed_total", func() int64 { return int64(res.FCT.Len()) })
		fctHist = treg.Histogram("fct_us", fctBounds)
	}

	// One arrival process per workload; workload w maps to the DRR queues
	// w, w+len, w+2len, ... so that "different services use different
	// traffic distributions" (§V-B2).
	var schedule func(gi int, at units.Time)
	launch := func(gi int) {
		g := gens[gi]
		flowID++
		id := flowID
		size := g.NextSize()
		// Pick src/dst: for the star, servers send to the client (the
		// testbed's request/response model); for the leaf-spine, any
		// distinct pair.
		var src, dst int
		if cfg.Topo == TopoStar {
			dst = hosts - 1
			src = rng.Intn(hosts - 1)
		} else {
			src = rng.Intn(hosts)
			dst = rng.Intn(hosts - 1)
			if dst >= src {
				dst++
			}
		}
		// Service queue: workloads stripe over the DRR queues; a flow is
		// mapped to one of its workload's queues at random ("a flow is
		// mapped to one of the service queues randomly").
		qChoices := 0
		for q := gi; q < serviceQueues; q += len(gens) {
			qChoices++
		}
		pick := gi
		if qChoices > 1 {
			pick = gi + len(gens)*rng.Intn(qChoices)
		}
		class := 1 + pick
		ctrl := transport.Controller(nil)
		if cfg.DCTCP {
			ctrl = transport.NewDCTCP()
		}
		if _, err := endpoints[src].StartFlow(transport.FlowConfig{
			Flow:    id,
			Dst:     dst,
			Class:   class,
			ClassOf: classifier.ClassOf(class),
			Size:    size,
			MSS:     mss,
			Ctrl:    ctrl,
			ECN:     cfg.DCTCP,
			MinRTO:  cfg.MinRTO,
			OnComplete: func(fct units.Duration) {
				res.FCT.Add(size, fct)
				if fctHist != nil {
					fctHist.Observe(int64(fct / units.Microsecond))
				}
			},
		}); err != nil {
			panic(err)
		}
	}
	perGen := cfg.Flows / len(gens)
	var left []int
	for range gens {
		left = append(left, perGen)
	}
	left[0] += cfg.Flows - perGen*len(gens)
	schedule = func(gi int, at units.Time) {
		if left[gi] <= 0 {
			return
		}
		left[gi]--
		s.At(at, func() {
			launch(gi)
			schedule(gi, at.Add(gens[gi].NextInterarrival()))
		})
	}
	for gi, g := range gens {
		schedule(gi, units.Time(g.NextInterarrival()))
	}

	var stopHB func()
	if cfg.Telemetry != nil || cfg.Progress != nil {
		var ew telemetry.EventWriter
		if cfg.Telemetry != nil {
			ew = cfg.Telemetry
		}
		stopHB = startHeartbeat(s, cfg.MaxRuntime, ew, cfg.Progress)
	}

	// Run until all flows complete or the drain budget expires. The FCT
	// collector is the single completion ledger (each OnComplete adds one
	// record), so the loop polls it directly.
	deadline := units.Time(cfg.MaxRuntime)
	for res.FCT.Len() < cfg.Flows && s.Pending() > 0 && s.Now() < deadline {
		s.Step()
	}
	if stopHB != nil {
		stopHB()
	}
	if cfg.Spans != nil {
		cfg.Spans.SimSpan("sim", cfg.SpanParent, 0, s.Now(),
			ttrace.A("kind", "fct"),
			ttrace.AInt("flows_completed", int64(res.FCT.Len())))
	}
	res.Generated = int(flowID)
	res.Completed = res.FCT.Len()
	res.Events = int64(s.Processed())
	if eng != nil {
		res.FaultTimeline = eng.Timeline()
		res.LinkLost, res.LinkCorrupted = reg.Totals()
	}
	if guard != nil {
		guard.Recheck(s.Now())
		res.Violations = guard.Violations()
		res.ViolationTotal = guard.Total()
	}
	return res, nil
}
