// Package experiment assembles and runs the paper's evaluation scenarios
// (§V): one runner per figure, parameterized so the same code serves both
// CI-scale smoke runs and paper-scale reproductions.
package experiment

import (
	"fmt"

	"dynaq/internal/buffer"
	"dynaq/internal/core"
	"dynaq/internal/sched"
	"dynaq/internal/topology"
	"dynaq/internal/units"
)

// Scheme identifies a buffer-management scheme under test.
type Scheme string

// The compared schemes. BestEffort, PQL and DynaQ are the non-ECN lineup
// (Fig. 8); TCN, PMSB and PerQueueECN are the ECN lineup evaluated with
// DCTCP (Fig. 9); TCNDrop is the §II-C strawman kept as an ablation.
const (
	BestEffort  Scheme = "BestEffort"
	PQL         Scheme = "PQL"
	DynaQ       Scheme = "DynaQ"
	TCN         Scheme = "TCN"
	PMSB        Scheme = "PMSB"
	PerQueueECN Scheme = "PerQueueECN"
	MQECN       Scheme = "MQ-ECN"
	TCNDrop     Scheme = "TCNDrop"

	// Ablation variants of DynaQ (§III-B design discussion):
	// DynaQNaiveVictim selects victims by largest threshold instead of
	// largest extra buffer; DynaQWBDP sets satisfaction thresholds to the
	// weighted BDP instead of the buffer share.
	DynaQNaiveVictim Scheme = "DynaQ-NaiveVictim"
	DynaQWBDP        Scheme = "DynaQ-WBDP"

	// BarberQ is the eviction-based alternative the paper cites ([12],
	// §II-C): push out buffer hogs to absorb microbursts.
	BarberQ Scheme = "BarberQ"

	// DynaQTofino is the §IV-A programmable-switch model: Algorithm 1
	// decided in the ingress pipeline on dequeue-time-stale queue lengths.
	DynaQTofino Scheme = "DynaQ-Tofino"

	// DynaQECN is DynaQ's ECN support (§III-B3): with ECN-based
	// transports the switch does not adjust thresholds but applies
	// PMSB-style marking.
	DynaQECN Scheme = "DynaQ-ECN"
)

// NonECNSchemes is the Fig. 8 lineup.
func NonECNSchemes() []Scheme { return []Scheme{DynaQ, BestEffort, PQL} }

// ECNSchemes is the Fig. 9 lineup (DynaQ participates through its
// PMSB-style ECN mode when flows run DCTCP; the drop-mode DynaQ column is
// the paper's headline entry, so it leads here too).
func ECNSchemes() []Scheme { return []Scheme{DynaQ, TCN, PMSB, PerQueueECN} }

// IsECNBased reports whether the scheme signals congestion by marking.
func (s Scheme) IsECNBased() bool {
	switch s {
	case TCN, PMSB, PerQueueECN, MQECN, DynaQECN:
		return true
	default:
		return false
	}
}

// SchemeParams carries the link-dependent constants the schemes derive
// their thresholds from.
type SchemeParams struct {
	// Rate is the bottleneck link capacity C.
	Rate units.Rate
	// BaseRTT is the topology's base round-trip time.
	BaseRTT units.Duration
	// Lambda is the ECN threshold coefficient λ (1.0 unless tuning for a
	// specific transport).
	Lambda float64
	// Weights are the scheduler weights/quantums per service queue.
	Weights []int64
	// Quantums are the DRR byte quantums (used by MQ-ECN); nil derives
	// them as Weights·MTU.
	Quantums []units.ByteSize
	// PerQueueK overrides the Per-Queue ECN / DCTCP threshold; zero
	// derives K_i = C·RTT·λ / number of queues... no — the paper tunes it
	// experimentally (30KB on 1GbE), so zero falls back to C·RTT·λ/2.
	PerQueueK units.ByteSize
	// TCNTarget overrides TCN's sojourn threshold; zero derives RTT·λ.
	TCNTarget units.Duration
}

// NewAdmission builds the buffer-management scheme instance for one port.
func (s Scheme) NewAdmission(p SchemeParams, b units.ByteSize, n int) (buffer.Admission, error) {
	if len(p.Weights) != n {
		return nil, fmt.Errorf("experiment: scheme %s: %d weights for %d queues", s, len(p.Weights), n)
	}
	lambda := p.Lambda
	//dynaqlint:allow float-eq zero-value sentinel for an unset config field, not an arithmetic result
	if lambda == 0 {
		lambda = 1
	}
	k := units.ByteSize(float64(units.BDP(p.Rate, p.BaseRTT)) * lambda)
	switch s {
	case BestEffort:
		return buffer.NewBestEffort(), nil
	case PQL:
		return buffer.NewWeightedPQL(b, p.Weights)
	case DynaQ:
		return buffer.NewDynaQ(b, p.Weights)
	case DynaQNaiveVictim:
		return buffer.NewDynaQWithOptions(string(s), b, p.Weights,
			core.WithVictimPolicy(core.VictimMaxThreshold))
	case DynaQWBDP:
		return buffer.NewDynaQWithOptions(string(s), b, p.Weights,
			core.WithWBDPSatisfaction(units.BDP(p.Rate, p.BaseRTT)))
	case BarberQ:
		return buffer.NewBarberQ(), nil
	case DynaQTofino:
		return buffer.NewDynaQTofino(b, p.Weights)
	case DynaQECN:
		return buffer.NewDynaQECN(k, p.Weights)
	case PerQueueECN:
		ki := p.PerQueueK
		if ki == 0 {
			ki = k / 2
		}
		return buffer.NewPerQueueECN(n, ki)
	case PMSB:
		return buffer.NewPMSB(k, p.Weights)
	case MQECN:
		quantums := p.Quantums
		if quantums == nil {
			quantums = make([]units.ByteSize, n)
			for i, w := range p.Weights {
				quantums[i] = units.ByteSize(w) * 1500
			}
		}
		return buffer.NewMQECN(p.Rate, p.BaseRTT.Scale(lambda), quantums)
	case TCN:
		target := p.TCNTarget
		if target == 0 {
			target = p.BaseRTT.Scale(lambda)
		}
		return buffer.NewTCN(target)
	case TCNDrop:
		target := p.TCNTarget
		if target == 0 {
			target = p.BaseRTT.Scale(lambda)
		}
		return buffer.NewTCNDrop(target)
	default:
		return nil, fmt.Errorf("experiment: unknown scheme %q", s)
	}
}

// SchedKind selects the packet scheduler used on every switch port.
type SchedKind string

// Scheduler kinds used across the experiments.
const (
	SchedDRR    SchedKind = "drr"
	SchedWRR    SchedKind = "wrr"
	SchedSPQDRR SchedKind = "spq+drr"
)

// NewScheduler builds a scheduler instance for one port. For SPQDRR, queue
// 0 is the shared strict-priority queue and the weights describe the
// remaining DRR queues.
func (k SchedKind) NewScheduler(weights []int64, mtu units.ByteSize, n int) (sched.Scheduler, error) {
	quantums := func(ws []int64) []units.ByteSize {
		qs := make([]units.ByteSize, len(ws))
		for i, w := range ws {
			qs[i] = units.ByteSize(w) * mtu
		}
		return qs
	}
	switch k {
	case SchedDRR:
		if len(weights) != n {
			return nil, fmt.Errorf("experiment: DRR: %d weights for %d queues", len(weights), n)
		}
		return sched.NewDRR(quantums(weights))
	case SchedWRR:
		if len(weights) != n {
			return nil, fmt.Errorf("experiment: WRR: %d weights for %d queues", len(weights), n)
		}
		return sched.NewWRR(weights)
	case SchedSPQDRR:
		if len(weights) != n-1 {
			return nil, fmt.Errorf("experiment: SPQ+DRR: %d DRR weights for %d queues", len(weights), n)
		}
		return sched.NewSPQDRR(1, quantums(weights))
	default:
		return nil, fmt.Errorf("experiment: unknown scheduler kind %q", k)
	}
}

// Factories bundles the per-port factories for a (scheme, scheduler)
// combination into the form the topology builders consume.
func Factories(s Scheme, k SchedKind, p SchemeParams, mtu units.ByteSize) topology.Factories {
	return topology.Factories{
		NewScheduler: func(n int) (sched.Scheduler, error) {
			return k.NewScheduler(schedWeights(k, p.Weights), mtu, n)
		},
		NewAdmission: func(b units.ByteSize, n int) (buffer.Admission, error) {
			return s.NewAdmission(p, b, n)
		},
	}
}

// schedWeights returns the weights the scheduler constructor expects: for
// SPQ+DRR the admission weights include the priority queue (index 0) while
// the DRR sub-scheduler covers only the rest.
func schedWeights(k SchedKind, weights []int64) []int64 {
	if k == SchedSPQDRR {
		return weights[1:]
	}
	return weights
}
