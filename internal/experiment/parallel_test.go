package experiment

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"dynaq/internal/units"
	"dynaq/internal/workload"
)

func TestRunTrialsValidation(t *testing.T) {
	if _, err := RunTrials(0, 1, func(int) (int, error) { return 0, nil }); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := RunTrials[int](3, 1, nil); err == nil {
		t.Error("nil run should fail")
	}
}

func TestRunTrialsIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := RunTrials(17, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestRunTrialsErrorCancelsPool checks the failure contract: the first error
// (by index) is reported, idle workers stop claiming trials, and RunTrials
// only returns once every worker has exited.
func TestRunTrialsErrorCancelsPool(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	const n = 1000
	_, err := RunTrials(n, 4, func(i int) (int, error) {
		started.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if !strings.Contains(err.Error(), "trial 3") {
		t.Errorf("error %q does not name the failing trial", err)
	}
	// The pool must stop early: with 4 workers and trial 3 failing almost
	// immediately, nowhere near all 1000 trials should have been claimed by
	// the time every worker has exited (RunTrials has returned, so the
	// counter is final).
	if got := started.Load(); got >= n {
		t.Errorf("pool ran all %d trials despite an early error", got)
	}
}

func TestRunSeedsErrorCancelsPool(t *testing.T) {
	boom := errors.New("seed failure")
	var calls atomic.Int64
	_, err := RunSeeds(64, Options{Seed: 5, Parallel: 8}, func(o Options) (float64, error) {
		calls.Add(1)
		if o.Seed == 5 { // seed index 0
			return 0, boom
		}
		return 1, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if got := calls.Load(); got >= 64 {
		t.Errorf("all %d seeds ran despite an early failure", got)
	}
}

// TestRunSeedsParallelParity is the satellite acceptance test: the same
// aggregate stats bit-for-bit at -parallel 1 and -parallel 8, on a real
// (if tiny) simulation workload.
func TestRunSeedsParallelParity(t *testing.T) {
	metric := func(o Options) (float64, error) {
		cfg := StaticConfig{
			Scheme:   DynaQ,
			Sched:    SchedDRR,
			Params:   SchemeParams{Weights: []int64{1, 1}},
			Rate:     units.Gbps,
			Delay:    20 * units.Microsecond,
			Buffer:   200 * units.KB,
			Queues:   2,
			MTU:      1500,
			Specs:    []QueueSpec{{Class: 0, Flows: 2}, {Class: 1, Flows: 4}},
			Duration: 50 * units.Millisecond,
			Seed:     o.Seed,
		}
		res, err := RunStatic(cfg)
		if err != nil {
			return 0, err
		}
		return float64(res.AvgAggregate(10*units.Time(units.Millisecond), 50*units.Time(units.Millisecond))), nil
	}
	seq := Options{Seed: 42, Parallel: 1}
	par := Options{Seed: 42, Parallel: 8}
	a, err := RunSeeds(4, seq, metric)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeeds(4, par, metric)
	if err != nil {
		t.Fatal(err)
	}
	// DeepEqual compares the float fields bitwise, which is exactly the
	// parity contract (and sidesteps float-eq lint on ==).
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("stats differ across worker counts:\n  sequential: %+v\n  parallel:   %+v", a, b)
	}
}

// TestFCTGridParallelParity runs a small Fig8-shaped grid sequentially and
// with 8 workers and demands identical cells in identical order.
func TestFCTGridParallelParity(t *testing.T) {
	base := DynamicConfig{
		Params:    SchemeParams{Weights: equalWeights(3)},
		Topo:      TopoStar,
		Servers:   3,
		Rate:      units.Gbps,
		Delay:     20 * units.Microsecond,
		Buffer:    200 * units.KB,
		Queues:    3,
		Load:      0.5,
		Flows:     40,
		Workloads: []*workload.CDF{workload.WebSearch()},
		Seed:      9,
	}
	schemes := NonECNSchemes()
	loads := []float64{0.4, 0.7}
	seq, err := fctRun("parity", schemes, loads, base, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := fctRun("parity", schemes, loads, base, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Cells) != len(schemes)*len(loads) {
		t.Fatalf("cells = %d, want %d", len(seq.Cells), len(schemes)*len(loads))
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("FCT grids differ across worker counts:\n  sequential: %+v\n  parallel:   %+v", seq, par)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(1, 10); got != 1 {
		t.Errorf("Workers(1, 10) = %d, want 1", got)
	}
	if got := Workers(16, 3); got != 3 {
		t.Errorf("Workers(16, 3) = %d, want clamp to 3", got)
	}
	if got := Workers(0, 1000); got < 1 {
		t.Errorf("Workers(0, 1000) = %d, want ≥ 1 (GOMAXPROCS)", got)
	}
}
