package experiment

import "fmt"

// ScaleLevel selects how faithfully a figure runner reproduces the paper's
// parameters; smaller scales keep the same structure with shorter runs.
type ScaleLevel int

// Scale levels.
const (
	// Quick is CI scale: seconds of wall clock per figure.
	Quick ScaleLevel = iota
	// Standard is the default for cmd/experiments: minutes overall,
	// statistically meaningful.
	Standard
	// Full is paper scale (10K flows, 60s testbed runs, 12×12 fabric).
	Full
)

// String implements fmt.Stringer.
func (s ScaleLevel) String() string {
	switch s {
	case Quick:
		return "quick"
	case Standard:
		return "standard"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("ScaleLevel(%d)", int(s))
	}
}

// Options parameterizes every figure runner.
type Options struct {
	Scale ScaleLevel
	Seed  int64
	// Parallel is the worker count for figures built from independent
	// (scheme, load, seed) cells: 0 (the default) means GOMAXPROCS, 1 runs
	// sequentially. Results are merged in deterministic cell order, so the
	// output is identical at any setting (see RunTrials).
	Parallel int
	// Engine selects the FCT figures' simulation fidelity (packet by
	// default); see EngineMode. Static figures always run at packet level.
	Engine EngineMode
}

// pick returns the value for the chosen scale.
func pick[T any](o Options, quick, standard, full T) T {
	switch o.Scale {
	case Quick:
		return quick
	case Full:
		return full
	default:
		return standard
	}
}
