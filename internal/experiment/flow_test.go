package experiment

import (
	"testing"

	"dynaq/internal/metrics"
	"dynaq/internal/units"
	"dynaq/internal/workload"
)

// fatTreeFlowCfg is the fat-tree stress case: the topology only the fluid
// engines can afford. k=4 keeps the test fast; the shipped scenario uses
// k=8.
func fatTreeFlowCfg(engine EngineMode, flows int, seed int64) DynamicConfig {
	return DynamicConfig{
		Scheme:   DynaQ,
		Engine:   engine,
		Params:   SchemeParams{Weights: equalWeights(8)},
		Topo:     TopoFatTree,
		FatTreeK: 4,
		Rate:     10 * units.Gbps,
		Delay:    10 * units.Microsecond,
		Buffer:   192 * units.KB,
		Queues:   8,
		MTU:      1500,
		Load:     0.6,
		Flows:    flows,
		Workloads: []*workload.CDF{
			workload.WebSearch(), workload.DataMining(),
		},
		Seed: seed,
	}
}

// starFlowCfg mirrors the Fig8 quick grid so the fluid engines can be
// compared against the packet engine on identical offered traffic.
func starFlowCfg(engine EngineMode, flows int, load float64, seed int64) DynamicConfig {
	return DynamicConfig{
		Scheme:    DynaQ,
		Engine:    engine,
		Params:    SchemeParams{Weights: equalWeights(5)},
		Topo:      TopoStar,
		Servers:   4,
		Rate:      testbedRate,
		Delay:     testbedDelay,
		Buffer:    testbedBuffer,
		Queues:    5,
		MTU:       testbedMTU,
		Load:      load,
		Flows:     flows,
		Workloads: []*workload.CDF{workload.WebSearch()},
		MinRTO:    testbedMinRTO,
		Seed:      seed,
	}
}

// TestFlowEngineEventBudget is the perf acceptance gate: the flow engine
// must finish the fat-tree stress case in at least 50x fewer discrete
// events than the projected per-packet cost of the same traffic. The
// projection is deliberately conservative: every flow's packets crossing an
// average path (4 store-and-forward hops on a k-ary fat tree, against the
// true worst case of 6), at ~4 events per packet per hop (enqueue, dequeue,
// propagate, ack-side traffic).
func TestFlowEngineEventBudget(t *testing.T) {
	const flows = 2000
	res, err := RunDynamic(fatTreeFlowCfg(EngineFlow, flows, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < flows*99/100 {
		t.Fatalf("only %d/%d flows completed", res.Completed, flows)
	}
	// Projected packet-engine cost from the analytic workload means.
	meanSize := (workload.WebSearch().Mean() + workload.DataMining().Mean()) / 2
	packetsPerFlow := int64((meanSize + 1499) / 1500)
	const hops, eventsPerHop = 4, 4
	projected := int64(flows) * packetsPerFlow * hops * eventsPerHop
	if res.Events <= 0 {
		t.Fatal("flow engine did not report an event count")
	}
	if speedup := projected / res.Events; speedup < 50 {
		t.Fatalf("flow engine used %d events vs %d projected packet events: %dx, want >= 50x",
			res.Events, projected, speedup)
	}
	if res.Fluid == nil || res.Fluid.Recomputes == 0 {
		t.Fatal("flow engine reported no rate recomputations")
	}
}

// TestFlowEngineParallelParity proves trial results do not depend on the
// worker count: the same seeds through RunTrials at 1 and 4 workers must
// produce identical FCT distributions, the property that lets dynaqd fan
// cells out to any fleet shape.
func TestFlowEngineParallelParity(t *testing.T) {
	run := func(workers int) []string {
		out, err := RunTrials(3, workers, func(trial int) (string, error) {
			res, err := RunDynamic(fatTreeFlowCfg(EngineFlow, 500, int64(trial+1)))
			if err != nil {
				return "", err
			}
			return fctSignature(res), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := run(1), run(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("trial %d diverged across worker counts:\n  1 worker: %s\n  4 workers: %s",
				i, seq[i], par[i])
		}
	}
}

// fctSignature summarizes a run's FCT distribution precisely enough that
// any nondeterminism shows up as a string mismatch.
func fctSignature(res *DynamicResult) string {
	sig := ""
	for _, b := range []metrics.Bucket{metrics.AllFlows, metrics.SmallFlows, metrics.LargeFlows} {
		sig += res.FCT.Avg(b).String() + "/" +
			res.FCT.Percentile(b, 0.99).String() + " "
	}
	return sig
}

// TestFlowEngineFidelity is the shape-fidelity golden test: on the Fig8
// quick grid the fluid engine's FCT percentiles must land within a
// committed band of the packet engine's. The fluid model abstracts away
// retransmission timing and per-packet queueing noise, so the band is
// generous — what it pins down is the *shape*: small flows finish in
// hundreds of microseconds, large flows in the same order of magnitude as
// the packet engine, and load ordering is preserved.
func TestFlowEngineFidelity(t *testing.T) {
	type point struct{ pkt, fluid *DynamicResult }
	runBoth := func(load float64) point {
		pkt, err := RunDynamic(starFlowCfg(EnginePacket, 200, load, 1))
		if err != nil {
			t.Fatal(err)
		}
		fl, err := RunDynamic(starFlowCfg(EngineFlow, 200, load, 1))
		if err != nil {
			t.Fatal(err)
		}
		return point{pkt, fl}
	}
	ratio := func(a, b units.Duration) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	for _, load := range []float64{0.4, 0.6} {
		p := runBoth(load)
		// Committed tolerance: fluid average FCT within 4x of packet on
		// both sides, small-flow p99 within 5x. The fluid model has no
		// per-packet queueing jitter or retransmission tails, so it runs
		// faster; what must not happen is an order-of-magnitude drift.
		if r := ratio(p.fluid.FCT.Avg(metrics.AllFlows), p.pkt.FCT.Avg(metrics.AllFlows)); r < 0.25 || r > 4 {
			t.Errorf("load %.1f: fluid avg FCT %v vs packet %v (ratio %.2f, want within [0.25,4])",
				load, p.fluid.FCT.Avg(metrics.AllFlows), p.pkt.FCT.Avg(metrics.AllFlows), r)
		}
		if r := ratio(p.fluid.FCT.Percentile(metrics.SmallFlows, 0.99), p.pkt.FCT.Percentile(metrics.SmallFlows, 0.99)); r < 0.2 || r > 5 {
			t.Errorf("load %.1f: fluid small p99 %v vs packet %v (ratio %.2f, want within [0.2,5])",
				load, p.fluid.FCT.Percentile(metrics.SmallFlows, 0.99), p.pkt.FCT.Percentile(metrics.SmallFlows, 0.99), r)
		}
	}
	// Load ordering: higher load must not make fluid FCTs faster.
	lo := runBoth(0.4)
	hi := runBoth(0.8)
	if hi.fluid.FCT.Avg(metrics.AllFlows) < lo.fluid.FCT.Avg(metrics.AllFlows) {
		t.Errorf("fluid avg FCT at load 0.8 (%v) below load 0.4 (%v): load ordering broken",
			hi.fluid.FCT.Avg(metrics.AllFlows), lo.fluid.FCT.Avg(metrics.AllFlows))
	}
}

// TestHybridEngineDemotes checks the hybrid path end to end on the star
// bottleneck: an overloaded downlink must demote at least once, packetize
// real traffic through the scheme admission, and still complete every flow.
func TestHybridEngineDemotes(t *testing.T) {
	cfg := starFlowCfg(EngineHybrid, 300, 0.9, 1)
	res, err := RunDynamic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Generated {
		t.Fatalf("hybrid run completed %d/%d flows", res.Completed, res.Generated)
	}
	if res.Fluid == nil {
		t.Fatal("hybrid run reported no fluid stats")
	}
	if res.Fluid.Demotions == 0 {
		t.Error("hybrid run at 90% load never demoted the bottleneck")
	}
	if res.Fluid.Demotions > 0 && res.Fluid.PacketizedPackets == 0 {
		t.Error("demoted episodes moved no packetized traffic")
	}
}
