package experiment

import (
	"fmt"
	"math"

	"dynaq/internal/metrics"
	"dynaq/internal/transport"
	"dynaq/internal/units"
)

func newDCTCPCtrl() transport.Controller { return transport.NewDCTCP() }

// AblationResult compares DynaQ against one of its design-choice variants
// on a scenario that exposes the difference.
type AblationResult struct {
	Name    string
	Schemes []Scheme
	// Metric rows, one per scheme; Labels names the columns.
	Labels []string
	Rows   [][]float64
}

// Table renders the comparison.
func (r *AblationResult) Table() string {
	var t table
	header := append([]string{"scheme"}, r.Labels...)
	t.add(header...)
	for i, s := range r.Schemes {
		cells := []string{string(s)}
		for _, v := range r.Rows[i] {
			cells = append(cells, trim3(v))
		}
		t.add(cells...)
	}
	return t.String()
}

func trim3(v float64) string {
	return fmt.Sprintf("%.3f", v)
}

// AblationVictim reproduces the §III-B victim-selection argument: under
// DRR weights 4:3:2:1 the naive largest-threshold rule keeps victimizing
// the heavy queue (or dropping when it is protected), hurting weighted
// fairness and throughput; the paper's largest-extra rule does not.
func AblationVictim(o Options) (*AblationResult, error) {
	dur := pick(o, 4*units.Second, 10*units.Second, 10*units.Second)
	// §III-B's own example: weights 1:2:3. The heavy queue (weight 3)
	// stops mid-run; while it is idle the naive rule keeps stripping its
	// threshold (it has the largest T), so on paper-weight terms the
	// heavy queue's budget — and with it the light queues' protection
	// structure — erodes, and overflowing queues drop against it while
	// it is active even when lighter queues hold surplus.
	weights := []int64{1, 2, 3}
	out := &AblationResult{
		Name:    "victim-selection",
		Labels:  []string{"weighted-Jain", "q3-share(0.5)", "agg-Gbps", "drops-k"},
		Schemes: []Scheme{DynaQ, DynaQNaiveVictim},
	}
	for _, scheme := range out.Schemes {
		specs := []QueueSpec{
			{Class: 0, Flows: 16, Hosts: 1}, // light queue floods
			{Class: 1, Flows: 4, Hosts: 1},
			{Class: 2, Flows: 2, Hosts: 1}, // heavy queue, few flows
		}
		cfg := testbedStatic(scheme, weights, specs, dur, o.Seed)
		res, err := RunStatic(cfg)
		if err != nil {
			return nil, err
		}
		warm, end := units.Time(dur/5), units.Time(dur)
		xs := make([]float64, 3)
		for q := range xs {
			xs[q] = float64(res.AvgThroughput(q, warm, end))
		}
		out.Rows = append(out.Rows, []float64{
			metrics.WeightedJain(xs, weights),
			res.ShareOf(2, warm, end),
			float64(res.AvgAggregate(warm, end)) / 1e9,
			float64(res.Drops) / 1000,
		})
	}
	return out, nil
}

// AblationSatisfaction reproduces the Eq. 3 headroom argument: with
// S_i = WBDP_i the thresholds leave no slack above the fair-share pipe, so
// the protected budget of a lightly-loaded queue erodes and its share
// destabilizes; S_i = B·w_i/Σw holds it steady.
func AblationSatisfaction(o Options) (*AblationResult, error) {
	dur := pick(o, 4*units.Second, 10*units.Second, 10*units.Second)
	out := &AblationResult{
		Name:    "satisfaction-threshold",
		Labels:  []string{"q1-share(0.5)", "share-stddev", "Jain"},
		Schemes: []Scheme{DynaQ, DynaQWBDP},
	}
	for _, scheme := range out.Schemes {
		specs := []QueueSpec{
			{Class: 1, Flows: 2, Hosts: 1},
			{Class: 2, Flows: 16, Hosts: 1},
		}
		cfg := testbedStatic(scheme, equalWeights(4), specs, dur, o.Seed)
		cfg.SampleEvery = 100 * units.Millisecond
		res, err := RunStatic(cfg)
		if err != nil {
			return nil, err
		}
		warm, end := units.Time(dur/4), units.Time(dur)
		// Per-sample share of queue 1 and its standard deviation: the
		// instability metric.
		var shares []float64
		for _, smp := range res.Samples {
			if smp.At <= warm || smp.At > end {
				continue
			}
			tot := smp.PerQueue[1] + smp.PerQueue[2]
			if tot == 0 {
				continue
			}
			shares = append(shares, float64(smp.PerQueue[1])/float64(tot))
		}
		mean, sd := meanStd(shares)
		out.Rows = append(out.Rows, []float64{
			mean, sd, res.JainOver([]int{1, 2}, warm, end),
		})
	}
	return out, nil
}

// AblationDequeueDrop reproduces the §II-C TCN-drop argument: dropping the
// just-dequeued packet wastes its transmission slot, idling the link, on
// top of buffering a packet that is then thrown away. Two backlogged
// queues drive the port; the dropping variant must lose goodput.
func AblationDequeueDrop(o Options) (*AblationResult, error) {
	dur := pick(o, 3*units.Second, 10*units.Second, 10*units.Second)
	out := &AblationResult{
		Name:    "tcn-dequeue-drop",
		Labels:  []string{"agg-Gbps", "Jain"},
		Schemes: []Scheme{DynaQ, TCN, TCNDrop},
	}
	for _, scheme := range out.Schemes {
		specs := []QueueSpec{
			{Class: 1, Flows: 8, Hosts: 1},
			{Class: 2, Flows: 8, Hosts: 1},
		}
		cfg := testbedStatic(scheme, equalWeights(4), specs, dur, o.Seed)
		// TCN needs DCTCP to react to its marks; TCNDrop and DynaQ run
		// plain TCP (drops are protocol-independent signals).
		if scheme == TCN {
			for i := range cfg.Specs {
				cfg.Specs[i].Ctrl = newDCTCPCtrl
			}
			cfg.ECNFlows = true
		}
		res, err := RunStatic(cfg)
		if err != nil {
			return nil, err
		}
		warm, end := units.Time(dur/5), units.Time(dur)
		out.Rows = append(out.Rows, []float64{
			float64(res.AvgAggregate(warm, end)) / 1e9,
			res.JainOver([]int{1, 2}, warm, end),
		})
	}
	return out, nil
}

func meanStd(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(sd / float64(len(xs)))
}
