package experiment

import (
	"fmt"

	"dynaq/internal/core"
	"dynaq/internal/metrics"
	"dynaq/internal/units"
	"dynaq/internal/workload"
)

// FCTStats is one (scheme, load) cell of an FCT figure.
type FCTStats struct {
	Scheme     Scheme
	Load       float64
	AvgOverall units.Duration
	AvgSmall   units.Duration
	AvgLarge   units.Duration
	P99Small   units.Duration
	Completed  int
	Generated  int
}

// FCTResult reproduces an FCT comparison figure: a matrix of stats over
// (scheme, load), with DynaQ always first so normalization is against it
// (§V: "the FCT results are normalized by the values of DynaQ").
type FCTResult struct {
	Figure string
	Cells  []FCTStats
}

// fctCell identifies one independent simulation of an FCT figure grid.
type fctCell struct {
	load   float64
	scheme Scheme
}

// fctRun executes one FCT figure: the given schemes across the given loads
// on a shared base configuration. The (load, scheme) cells are independent
// simulations, so they run on `workers` goroutines (0 = GOMAXPROCS) and are
// merged in grid order — the Cells slice is identical at any worker count.
func fctRun(figure string, schemes []Scheme, loads []float64, base DynamicConfig, workers int) (*FCTResult, error) {
	cells := make([]fctCell, 0, len(loads)*len(schemes))
	for _, load := range loads {
		for _, scheme := range schemes {
			cells = append(cells, fctCell{load: load, scheme: scheme})
		}
	}
	if base.Telemetry != nil || base.Progress != nil {
		// A telemetry Run and a progress writer are single-stream sinks;
		// interleaving cells would garble them.
		workers = 1
	}
	stats, err := RunTrials(len(cells), workers, func(i int) (FCTStats, error) {
		cfg := base
		cfg.Scheme = cells[i].scheme
		cfg.Load = cells[i].load
		cfg.DCTCP = cells[i].scheme.IsECNBased()
		res, err := RunDynamic(cfg)
		if err != nil {
			return FCTStats{}, err
		}
		return FCTStats{
			Scheme:     cfg.Scheme,
			Load:       cfg.Load,
			AvgOverall: res.FCT.Avg(metrics.AllFlows),
			AvgSmall:   res.FCT.Avg(metrics.SmallFlows),
			AvgLarge:   res.FCT.Avg(metrics.LargeFlows),
			P99Small:   res.FCT.Percentile(metrics.SmallFlows, 0.99),
			Completed:  res.Completed,
			Generated:  res.Generated,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &FCTResult{Figure: figure, Cells: stats}, nil
}

// Cell returns the stats for (scheme, load), or nil.
func (r *FCTResult) Cell(s Scheme, load float64) *FCTStats {
	for i := range r.Cells {
		//dynaqlint:allow float-eq Load values are copied experiment literals (0.5, 0.8, ...), never arithmetic results, so exact lookup is intended
		if r.Cells[i].Scheme == s && r.Cells[i].Load == load {
			return &r.Cells[i]
		}
	}
	return nil
}

// Loads returns the distinct loads in run order.
func (r *FCTResult) Loads() []float64 {
	var loads []float64
	seen := map[float64]bool{}
	for _, c := range r.Cells {
		if !seen[c.Load] {
			seen[c.Load] = true
			loads = append(loads, c.Load)
		}
	}
	return loads
}

// Schemes returns the distinct schemes in run order.
func (r *FCTResult) Schemes() []Scheme {
	var ss []Scheme
	seen := map[Scheme]bool{}
	for _, c := range r.Cells {
		if !seen[c.Scheme] {
			seen[c.Scheme] = true
			ss = append(ss, c.Scheme)
		}
	}
	return ss
}

// Table renders the figure with FCTs normalized by DynaQ, as the paper
// plots them (a ratio > 1 means the scheme is slower than DynaQ).
func (r *FCTResult) Table() string {
	var t table
	t.add("load", "scheme", "avg overall", "avg small", "avg large", "p99 small", "flows")
	norm := func(v, base units.Duration) string {
		if base == 0 {
			return "-"
		}
		return formatRatio(float64(v) / float64(base))
	}
	for _, load := range r.Loads() {
		base := r.Cell(DynaQ, load)
		for _, s := range r.Schemes() {
			c := r.Cell(s, load)
			if c == nil {
				continue
			}
			if s == DynaQ {
				t.addf("%.0f%%\t%s\t%s\t%s\t%s\t%s\t%d/%d", load*100, s,
					formatMillis(c.AvgOverall), formatMillis(c.AvgSmall),
					formatMillis(c.AvgLarge), formatMillis(c.P99Small),
					c.Completed, c.Generated)
				continue
			}
			t.addf("%.0f%%\t%s\t%s\t%s\t%s\t%s\t%d/%d", load*100, s,
				norm(c.AvgOverall, base.AvgOverall), norm(c.AvgSmall, base.AvgSmall),
				norm(c.AvgLarge, base.AvgLarge), norm(c.P99Small, base.P99Small),
				c.Completed, c.Generated)
		}
	}
	return t.String()
}

func formatRatio(x float64) string {
	return fmt.Sprintf("%.2fx", x)
}

// formatMillis renders a duration as fractional milliseconds, the unit the
// paper's FCT plots use.
func formatMillis(d units.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(units.Millisecond))
}

// fctLoads returns the figure's load sweep at the chosen scale.
func fctLoads(o Options) []float64 {
	return pick(o,
		[]float64{0.6},
		[]float64{0.3, 0.5, 0.8},
		[]float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8})
}

// Fig8 compares DynaQ with the non-ECN schemes (BestEffort, PQL) on the
// testbed rack: SPQ(1)+DRR(4), PIAS at 100KB, web-search traffic.
func Fig8(o Options) (*FCTResult, error) {
	base := DynamicConfig{
		Engine:    o.Engine,
		Params:    SchemeParams{Weights: equalWeights(5)},
		Topo:      TopoStar,
		Servers:   4,
		Rate:      testbedRate,
		Delay:     testbedDelay,
		Buffer:    testbedBuffer,
		Queues:    5,
		MTU:       testbedMTU,
		Flows:     pick(o, 200, 1500, 10000),
		Workloads: []*workload.CDF{workload.WebSearch()},
		MinRTO:    testbedMinRTO,
		Seed:      o.Seed,
		MaxRuntime: pick(o,
			30*units.Second, 120*units.Second, 600*units.Second),
	}
	return fctRun("fig8", NonECNSchemes(), fctLoads(o), base, o.Parallel)
}

// Fig9 compares DynaQ (drop-based, plain TCP) with the ECN-based schemes
// (TCN, PMSB, Per-Queue ECN) running DCTCP, on the same rack as Fig8.
func Fig9(o Options) (*FCTResult, error) {
	base := DynamicConfig{
		Engine: o.Engine,
		Params: SchemeParams{
			Weights: equalWeights(5),
			// Thresholds tuned like the testbed: DCTCP K = 30KB,
			// TCN target = 240µs (§V-A "the best values
			// experimentally found").
			PerQueueK: 30 * units.KB,
			TCNTarget: 240 * units.Microsecond,
		},
		Topo:      TopoStar,
		Servers:   4,
		Rate:      testbedRate,
		Delay:     testbedDelay,
		Buffer:    testbedBuffer,
		Queues:    5,
		MTU:       testbedMTU,
		Flows:     pick(o, 200, 1500, 10000),
		Workloads: []*workload.CDF{workload.WebSearch()},
		MinRTO:    testbedMinRTO,
		Seed:      o.Seed,
		MaxRuntime: pick(o,
			30*units.Second, 120*units.Second, 600*units.Second),
	}
	return fctRun("fig9", ECNSchemes(), fctLoads(o), base, o.Parallel)
}

// Fig13 runs the large-scale leaf-spine FCT simulation: SPQ(1)+DRR(7), the
// four workloads striped over the seven services, ECMP, 10Gbps fabric.
func Fig13(o Options) (*FCTResult, error) {
	leaves := pick(o, 2, 4, 12)
	spines := pick(o, 2, 4, 12)
	hostsPerLeaf := pick(o, 2, 4, 12)
	base := DynamicConfig{
		Engine:       o.Engine,
		Params:       SchemeParams{Weights: equalWeights(8)},
		Topo:         TopoLeafSpine,
		Leaves:       leaves,
		Spines:       spines,
		HostsPerLeaf: hostsPerLeaf,
		Rate:         10 * units.Gbps,
		Delay:        10650 * units.Nanosecond, // base RTT ≈ 85.2µs over 8 hops
		Buffer:       192 * units.KB,
		Queues:       8,
		MTU:          1500,
		Flows:        pick(o, 200, 1500, 10000),
		Workloads:    workload.All(),
		MinRTO:       5 * units.Millisecond,
		Seed:         o.Seed,
		MaxRuntime: pick(o,
			20*units.Second, 60*units.Second, 300*units.Second),
	}
	return fctRun("fig13", NonECNSchemes(), fctLoads(o), base, o.Parallel)
}

// Cycles reproduces the §IV-A hardware cost analysis (Table-less in the
// paper but a headline claim: ≤7 cycles for 8 queues, 0.88% of Trident 3).
func Cycles() *CyclesResult {
	res := &CyclesResult{TridentOverhead: core.CycleOverhead(8, 800)}
	for _, m := range []int{1, 2, 4, 8, 16} {
		res.QueueCounts = append(res.QueueCounts, m)
		res.Cycles = append(res.Cycles, core.CycleCost(m))
	}
	return res
}
