package core

import (
	"testing"

	"dynaq/internal/units"
)

// FuzzProcess drives Algorithm 1 with arbitrary arrival patterns and
// checks that the structural invariants survive: ΣT = B, T ≥ 0, and drops
// never mutate thresholds.
func FuzzProcess(f *testing.F) {
	f.Add(int64(1), uint8(4), []byte{1, 2, 3, 0, 1, 2})
	f.Add(int64(42), uint8(8), []byte{7, 7, 7, 7, 0, 0, 0})
	f.Fuzz(func(t *testing.T, seed int64, mRaw uint8, arrivals []byte) {
		m := 1 + int(mRaw)%8
		weights := make([]int64, m)
		for i := range weights {
			weights[i] = 1 + (seed>>uint(i))&3
		}
		st, err := New(85*units.KB, weights)
		if err != nil {
			t.Skip()
		}
		q := make(qlens, m)
		for _, a := range arrivals {
			p := int(a) % m
			size := units.ByteSize(64 + int(a)*37)
			before := append([]units.ByteSize(nil), st.t...)
			res := st.Process(p, size, q)
			switch res.Verdict {
			case Drop:
				for i := range before {
					if st.t[i] != before[i] {
						t.Fatalf("drop mutated T_%d", i)
					}
				}
			default:
				q[p] += size
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Keep queues within physical bounds like a port would.
			for i := range q {
				if q[i] > st.b {
					q[i] = st.b / 2
				}
			}
		}
	})
}
