package core

import (
	"testing"

	"dynaq/internal/units"
)

func TestNewECNModeValidation(t *testing.T) {
	if _, err := NewECNMode(0, []int64{1}); err == nil {
		t.Error("zero K should fail")
	}
	if _, err := NewECNMode(30*units.KB, nil); err == nil {
		t.Error("no queues should fail")
	}
	if _, err := NewECNMode(30*units.KB, []int64{1, 0}); err == nil {
		t.Error("zero weight should fail")
	}
}

func TestECNThresholds(t *testing.T) {
	// K = 60KB, weights 1:2:3 → K_i = 10/20/30 KB.
	m, err := NewECNMode(60*units.KB, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.PortThreshold() != 60*units.KB {
		t.Fatalf("K = %v", m.PortThreshold())
	}
	want := []units.ByteSize{10 * units.KB, 20 * units.KB, 30 * units.KB}
	for i, w := range want {
		if got := m.QueueThreshold(i); got != w {
			t.Errorf("K_%d = %d, want %d", i, got, w)
		}
	}
}

func TestShouldMarkRequiresBothConditions(t *testing.T) {
	// PMSB semantics: mark iff port occupancy > K AND q_i > K_i.
	m, err := NewECNMode(60*units.KB, []int64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// K = 60KB, K_i = 30KB each.
	tests := []struct {
		name    string
		portOcc units.ByteSize
		qi      units.ByteSize
		want    bool
	}{
		{name: "both exceeded", portOcc: 61 * units.KB, qi: 31 * units.KB, want: true},
		{name: "only port exceeded", portOcc: 61 * units.KB, qi: 30 * units.KB, want: false},
		{name: "only queue exceeded", portOcc: 60 * units.KB, qi: 31 * units.KB, want: false},
		{name: "neither", portOcc: 10 * units.KB, qi: 5 * units.KB, want: false},
		{name: "at thresholds exactly", portOcc: 60 * units.KB, qi: 30 * units.KB, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.ShouldMark(0, tt.portOcc, tt.qi); got != tt.want {
				t.Errorf("ShouldMark = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCycleCost(t *testing.T) {
	tests := []struct {
		m    int
		want int
	}{
		{0, 0},
		{1, 4}, // 1 + 0 + 2 + 1
		{2, 5}, // 1 + 1 + 2 + 1
		{4, 6}, // 1 + 2 + 2 + 1
		{8, 7}, // the paper's headline number for 8 queues
		{16, 8},
	}
	for _, tt := range tests {
		if got := CycleCost(tt.m); got != tt.want {
			t.Errorf("CycleCost(%d) = %d, want %d", tt.m, got, tt.want)
		}
	}
}

func TestCycleOverheadTrident3(t *testing.T) {
	// §IV-A: 7 cycles of an ≥800-cycle Trident 3 pipeline is 0.88%.
	got := CycleOverhead(8, 800)
	if got < 0.00874 || got > 0.00876 {
		t.Fatalf("CycleOverhead(8, 800) = %v, want 0.00875 (0.88%%)", got)
	}
	if CycleOverhead(8, 0) != 0 {
		t.Error("zero pipeline budget should give 0")
	}
}
