package core

import (
	"fmt"

	"dynaq/internal/units"
)

// VictimPolicy selects how line 2 of Algorithm 1 picks the victim queue.
// The paper's design discussion (§III-B "Victim Queue Selection")
// explicitly contrasts the chosen extra-buffer rule with the naive
// largest-threshold rule, which mis-victimizes highly-weighted queues; both
// are implemented so the ablation experiment can reproduce that argument.
type VictimPolicy uint8

// Victim policies.
const (
	// VictimMaxExtra picks argmax T_i − S_i (the paper's rule).
	VictimMaxExtra VictimPolicy = iota
	// VictimMaxThreshold picks argmax T_i (the naive rule the paper
	// rejects: with weights 1:2:3 it can strip queue 3 down below the
	// buffer it needs for its weighted share).
	VictimMaxThreshold
)

// String implements fmt.Stringer.
func (p VictimPolicy) String() string {
	switch p {
	case VictimMaxExtra:
		return "max-extra"
	case VictimMaxThreshold:
		return "max-threshold"
	default:
		return fmt.Sprintf("VictimPolicy(%d)", uint8(p))
	}
}

// Option customizes a State at construction.
type Option interface {
	apply(st *State) error
}

type optionFunc func(st *State) error

func (f optionFunc) apply(st *State) error { return f(st) }

// WithVictimPolicy selects the victim-selection rule (default:
// VictimMaxExtra, the paper's choice).
func WithVictimPolicy(p VictimPolicy) Option {
	return optionFunc(func(st *State) error {
		if p != VictimMaxExtra && p != VictimMaxThreshold {
			return fmt.Errorf("core: unknown victim policy %v", p)
		}
		st.victimPolicy = p
		return nil
	})
}

// WithWBDPSatisfaction sets the satisfaction thresholds to the *weighted
// BDP*, S_i = BDP·w_i/Σw, instead of the paper's buffer share B·w_i/Σw
// (Eq. 3). The paper reports that this theoretically-sufficient setting
// fails in practice — "T_i fluctuates over time, preventing queue i from
// enjoying its fair share rate stably" — because it leaves no headroom;
// this option exists to reproduce that ablation.
func WithWBDPSatisfaction(bdp units.ByteSize) Option {
	return optionFunc(func(st *State) error {
		if bdp <= 0 {
			return fmt.Errorf("core: BDP %d must be positive", bdp)
		}
		st.satisfactionBDP = bdp
		st.reinit()
		return nil
	})
}

// NewWithOptions is New with construction options applied.
func NewWithOptions(b units.ByteSize, weights []int64, opts ...Option) (*State, error) {
	st, err := New(b, weights)
	if err != nil {
		return nil, err
	}
	for _, o := range opts {
		if err := o.apply(st); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// VictimPolicy returns the configured victim-selection rule.
func (st *State) VictimPolicy() VictimPolicy { return st.victimPolicy }
