// Package core implements DynaQ (Kim & Lee, ICDCS 2020): protocol-independent
// service-queue isolation through dynamic per-queue packet dropping
// thresholds.
//
// Notation follows Table I of the paper:
//
//	M        number of service queues
//	B        port buffer size
//	w_i      weight of queue i
//	T_i      packet dropping threshold of queue i
//	q_i      queue length (backlog in bytes) of queue i
//	S_i      satisfaction threshold of queue i  (Eq. 3: B·w_i/Σw)
//	T_i^ex   extra buffer of queue i            (Eq. 2: T_i − S_i)
//
// On every arrival of a packet P for queue p, Algorithm 1 runs:
//
//	if q_p + size(P) > T_p:
//	    v ← argmax_{i≠p} T_i^ex                     (loop-free MaxIdx tree)
//	    if T_v < size(P) or (q_v > 0 and T_v − size(P) < S_v):
//	        drop P                                  (protect unsatisfied
//	                                                 active queues)
//	    else:
//	        T_v ← T_v − size(P);  T_p ← T_p + size(P)
//
// The decrement-before-increment order preserves the global invariant
// Σ T_i = B at every instant. After Algorithm 1, enqueueing is decided by
// port buffer occupancy (Σ q_i + size ≤ B), which the buffer-manager layer
// performs.
package core

import (
	"fmt"
	"math/bits"
	"strings"

	"dynaq/internal/units"
)

// Verdict is the outcome of running Algorithm 1 for an arriving packet.
type Verdict uint8

// Verdicts. Note that Pass/Adjusted only mean Algorithm 1 did not drop; the
// caller still applies the port-occupancy admission check.
const (
	// Pass: the packet fits under its queue's current threshold; no
	// adjustment was needed.
	Pass Verdict = iota
	// Adjusted: the threshold of the packet's queue was raised at the
	// expense of the victim queue.
	Adjusted
	// Drop: the victim queue could not give up buffer (it is an
	// unsatisfied active queue, or its threshold is smaller than the
	// packet); the packet must be dropped.
	Drop
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case Adjusted:
		return "adjusted"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// Result carries the verdict plus the victim chosen (for Adjusted and for
// Drop-because-of-victim), for tracing and tests. Victim is -1 when no
// victim search ran (Pass) or none existed.
type Result struct {
	Verdict Verdict
	Victim  int
}

// State is the per-port DynaQ state: one threshold per service queue.
// It is not safe for concurrent use; the simulator is single-goroutine.
type State struct {
	b       units.ByteSize
	weights []int64
	sumW    int64
	t       []units.ByteSize // T_i
	s       []units.ByteSize // S_i

	// Ablation knobs (see options.go); zero values are the paper's
	// design: extra-buffer victim selection and S_i = B·w_i/Σw.
	victimPolicy    VictimPolicy
	satisfactionBDP units.ByteSize // 0 = Eq. 3; >0 = S_i = BDP·w_i/Σw
}

// New builds DynaQ state for a port with buffer b shared by len(weights)
// service queues. Weights are the scheduler weights/quantums (integers, as
// DRR quantums are); they need not be normalized.
//
// Initialization follows Eq. (1): T_i = B·w_i/Σw, with integer rounding
// residue distributed by the largest-remainder method so that Σ T_i = B
// exactly.
func New(b units.ByteSize, weights []int64) (*State, error) {
	if b <= 0 {
		return nil, fmt.Errorf("core: buffer size %d must be positive", b)
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("core: need at least one queue")
	}
	var sum int64
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("core: weight of queue %d is %d, must be positive", i, w)
		}
		sum += w
	}
	st := &State{
		b:       b,
		weights: append([]int64(nil), weights...),
		sumW:    sum,
		t:       make([]units.ByteSize, len(weights)),
		s:       make([]units.ByteSize, len(weights)),
	}
	st.reinit()
	return st, nil
}

// MustNew is New but panics on error; for tests and literals-only callers.
func MustNew(b units.ByteSize, weights []int64) *State {
	st, err := New(b, weights)
	if err != nil {
		panic(err)
	}
	return st
}

// reinit computes S_i and resets T_i to the weighted split of B (Eq. 1 and
// Eq. 3 coincide at initialization time).
func (st *State) reinit() {
	type frac struct {
		idx int
		rem int64
	}
	fracs := make([]frac, len(st.weights))
	var assigned units.ByteSize
	for i, w := range st.weights {
		share := int64(st.b) * w / st.sumW
		st.t[i] = units.ByteSize(share)
		st.s[i] = units.ByteSize(share)
		assigned += units.ByteSize(share)
		fracs[i] = frac{idx: i, rem: int64(st.b) * w % st.sumW}
	}
	// Largest-remainder method: hand out the residue one byte at a time,
	// biggest fractional part first (ties by lower index, which a stable
	// selection over the natural order gives us).
	for left := st.b - assigned; left > 0; left-- {
		best := -1
		for j := range fracs {
			if fracs[j].rem < 0 {
				continue
			}
			if best == -1 || fracs[j].rem > fracs[best].rem {
				best = j
			}
		}
		st.t[fracs[best].idx]++
		st.s[fracs[best].idx]++
		fracs[best].rem = -1
	}
	if st.satisfactionBDP > 0 {
		// WBDP ablation: satisfaction thresholds use the weighted BDP
		// while dropping thresholds still split the whole buffer.
		for i, w := range st.weights {
			st.s[i] = units.ByteSize(int64(st.satisfactionBDP) * w / st.sumW)
		}
	}
}

// NumQueues returns M.
func (st *State) NumQueues() int { return len(st.t) }

// Buffer returns the port buffer size B.
func (st *State) Buffer() units.ByteSize { return st.b }

// Threshold returns T_i, the current packet dropping threshold of queue i.
func (st *State) Threshold(i int) units.ByteSize { return st.t[i] }

// Satisfaction returns S_i (Eq. 3).
func (st *State) Satisfaction(i int) units.ByteSize { return st.s[i] }

// Extra returns T_i^ex = T_i − S_i (Eq. 2). It is negative for unsatisfied
// queues.
func (st *State) Extra(i int) units.ByteSize { return st.t[i] - st.s[i] }

// Weight returns w_i.
func (st *State) Weight(i int) int64 { return st.weights[i] }

// Satisfied reports whether queue i currently holds at least its
// satisfaction threshold worth of dropping budget (footnote 1 of the paper).
func (st *State) Satisfied(i int) bool { return st.t[i] >= st.s[i] }

// SetBuffer changes the port buffer size and re-initializes all thresholds
// per Eq. (1), restoring Σ T_i = B (§III-B3 "Port Buffer Size").
func (st *State) SetBuffer(b units.ByteSize) error {
	if b <= 0 {
		return fmt.Errorf("core: buffer size %d must be positive", b)
	}
	st.b = b
	st.reinit()
	return nil
}

// QueueLens provides the instantaneous backlog q_i of each queue to
// Algorithm 1. It is an interface rather than a slice so the switch port can
// expose its live byte counters without copying per packet.
type QueueLens interface {
	// QueueLen returns the buffered bytes of service queue i.
	QueueLen(i int) units.ByteSize
}

// QueueLenFunc adapts a function to the QueueLens interface.
type QueueLenFunc func(i int) units.ByteSize

// QueueLen implements QueueLens.
func (f QueueLenFunc) QueueLen(i int) units.ByteSize { return f(i) }

// Process runs Algorithm 1 for a packet of the given size arriving for
// queue p. It mutates thresholds on the Adjusted path and reports the
// verdict. Process never inspects or mutates the queues themselves: the
// caller (the port) owns enqueueing, which it must gate on port occupancy.
func (st *State) Process(p int, size units.ByteSize, q QueueLens) Result {
	if p < 0 || p >= len(st.t) {
		panic(fmt.Sprintf("core: queue index %d out of range [0,%d)", p, len(st.t)))
	}
	if size <= 0 {
		panic(fmt.Sprintf("core: packet size %d must be positive", size))
	}
	// Line 1: within threshold — nothing to do.
	if q.QueueLen(p)+size <= st.t[p] {
		return Result{Verdict: Pass, Victim: -1}
	}
	// Line 2: find the victim — the queue (other than p) with the largest
	// extra buffer T_i^ex.
	v := st.victimTournament(p)
	if v < 0 {
		// Single-queue port: T_p == B, so exceeding the threshold means
		// exceeding the buffer.
		return Result{Verdict: Drop, Victim: -1}
	}
	// Line 3: protect unsatisfied active queues, and keep T_v ≥ 0.
	if st.t[v] < size || (q.QueueLen(v) > 0 && st.t[v]-size < st.s[v]) {
		return Result{Verdict: Drop, Victim: v}
	}
	// Lines 6–7: decrease the victim first, then grow p, preserving ΣT = B.
	st.t[v] -= size
	st.t[p] += size
	return Result{Verdict: Adjusted, Victim: v}
}

// victimTournament finds argmax_{i≠p} T_i^ex with the loop-free binary
// reduction of §III-B ("Victim Queue Search without Loops"): a tree of
// MaxIdx comparators of depth ⌈log2 M⌉. Ties resolve to the lower index,
// matching the left-biased comparator a hardware tree would synthesize.
// It returns -1 when no candidate exists (M == 1).
func (st *State) victimTournament(p int) int {
	m := len(st.t)
	if m == 1 {
		return -1
	}
	// Round m up to a power of two; absent leaves and the excluded queue p
	// are -1 (treated as −∞ by maxIdx), exactly how a fixed-width hardware
	// tree pads unused inputs.
	width := 1 << uint(bits.Len(uint(m-1)))
	// Stack allocation for the common hardware sizes (≤ 8 queues).
	var buf [8]int
	var layer []int
	if width <= len(buf) {
		layer = buf[:width]
	} else {
		layer = make([]int, width)
	}
	for i := range layer {
		if i < m && i != p {
			layer[i] = i
		} else {
			layer[i] = -1
		}
	}
	for n := width; n > 1; n /= 2 {
		for i := 0; i < n/2; i++ {
			layer[i] = st.maxIdx(layer[2*i], layer[2*i+1])
		}
	}
	return layer[0]
}

// maxIdx is the two-input comparator from the paper: it returns the index
// whose victim metric (extra buffer T^ex, or raw T under the ablation
// policy) is larger, preferring the left input on ties.
func (st *State) maxIdx(a, b int) int {
	switch {
	case a < 0:
		return b
	case b < 0:
		return a
	case st.victimMetric(b) > st.victimMetric(a):
		return b
	default:
		return a
	}
}

// victimMetric is the quantity the victim search maximizes.
func (st *State) victimMetric(i int) units.ByteSize {
	if st.victimPolicy == VictimMaxThreshold {
		return st.t[i]
	}
	return st.t[i] - st.s[i]
}

// victimLinear is the straightforward loop implementation of line 2,
// retained as a cross-check oracle for the tournament (see tests).
func (st *State) victimLinear(p int) int {
	best := -1
	for i := range st.t {
		if i == p {
			continue
		}
		if best == -1 || st.victimMetric(i) > st.victimMetric(best) {
			best = i
		}
	}
	return best
}

// CheckInvariants verifies Σ T_i = B and T_i ≥ 0; it returns a descriptive
// error on violation. Property tests call it after every operation.
func (st *State) CheckInvariants() error {
	var sum units.ByteSize
	for i, t := range st.t {
		if t < 0 {
			return fmt.Errorf("core: T_%d = %d < 0", i, t)
		}
		sum += t
	}
	if sum != st.b {
		return fmt.Errorf("core: ΣT = %d, want B = %d", sum, st.b)
	}
	return nil
}

// String renders the threshold state compactly for debugging:
// per queue T/S/extra plus the ΣT=B check.
func (st *State) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DynaQ[B=%d", int64(st.b))
	var sum units.ByteSize
	for i := range st.t {
		fmt.Fprintf(&b, " q%d:T=%d,S=%d,ex=%+d", i, st.t[i], st.s[i], st.t[i]-st.s[i])
		sum += st.t[i]
	}
	fmt.Fprintf(&b, " ΣT=%d]", int64(sum))
	return b.String()
}
