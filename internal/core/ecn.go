package core

import (
	"fmt"

	"dynaq/internal/units"
)

// ECNMode implements DynaQ's ECN support (§III-B3): when end hosts run
// ECN-based transports, DynaQ does not adjust dropping thresholds; instead
// it applies PMSB-style marking — a packet is marked iff the *port* buffer
// occupancy exceeds the port marking threshold K AND the arriving packet's
// *queue* length exceeds its per-queue threshold K_i, where
//
//	K   = C · RTT · λ
//	K_i = (w_i / Σw) · K
//
// λ is the transport coefficient (1 for standard ECN, ~0.5–1 for DCTCP); the
// caller folds it into K via NewECNMode's k parameter.
type ECNMode struct {
	k  units.ByteSize
	ki []units.ByteSize
}

// NewECNMode builds the marking thresholds from the port threshold k and
// the queue weights.
func NewECNMode(k units.ByteSize, weights []int64) (*ECNMode, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: port ECN threshold %d must be positive", k)
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("core: need at least one queue")
	}
	var sum int64
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("core: weight of queue %d is %d, must be positive", i, w)
		}
		sum += w
	}
	m := &ECNMode{k: k, ki: make([]units.ByteSize, len(weights))}
	for i, w := range weights {
		m.ki[i] = units.ByteSize(int64(k) * w / sum)
	}
	return m, nil
}

// PortThreshold returns K.
func (m *ECNMode) PortThreshold() units.ByteSize { return m.k }

// QueueThreshold returns K_i.
func (m *ECNMode) QueueThreshold(i int) units.ByteSize { return m.ki[i] }

// ShouldMark reports whether a packet arriving for queue i must be CE-marked
// given the current port occupancy (Σ q, before enqueueing this packet) and
// the queue's backlog q_i.
func (m *ECNMode) ShouldMark(i int, portOcc, qi units.ByteSize) bool {
	return portOcc > m.k && qi > m.ki[i]
}
