package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynaq/internal/units"
)

func TestVictimPolicyString(t *testing.T) {
	for p, want := range map[VictimPolicy]string{
		VictimMaxExtra:     "max-extra",
		VictimMaxThreshold: "max-threshold",
		VictimPolicy(7):    "VictimPolicy(7)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestNewWithOptionsValidation(t *testing.T) {
	if _, err := NewWithOptions(0, []int64{1}); err == nil {
		t.Error("invalid base config should fail")
	}
	if _, err := NewWithOptions(units.KB, []int64{1}, WithVictimPolicy(VictimPolicy(9))); err == nil {
		t.Error("unknown policy should fail")
	}
	if _, err := NewWithOptions(units.KB, []int64{1}, WithWBDPSatisfaction(0)); err == nil {
		t.Error("zero BDP should fail")
	}
}

func TestDefaultPolicyIsMaxExtra(t *testing.T) {
	st := MustNew(units.KB, []int64{1, 1})
	if st.VictimPolicy() != VictimMaxExtra {
		t.Fatalf("default policy = %v", st.VictimPolicy())
	}
}

func TestMaxThresholdPolicyMisVictimizesWeightedQueue(t *testing.T) {
	// §III-B's example: weights 1:2:3. Queue 2 (weight 3) sits exactly at
	// its satisfaction threshold — the minimum it needs for its weighted
	// share — while queue 1 holds surplus. The naive policy still picks
	// queue 2 because its absolute T is largest.
	mk := func(p VictimPolicy) *State {
		st, err := NewWithOptions(60*units.KB, []int64{1, 2, 3}, WithVictimPolicy(p))
		if err != nil {
			t.Fatal(err)
		}
		// T = [5000, 25000, 30000]: queue 1 has +5000 extra, queue 2 has
		// none, queue 0 is 5000 under.
		st.t[0], st.t[1], st.t[2] = 5000, 25000, 30000
		return st
	}
	q := qlens{5000, 10000, 30000}

	naive := mk(VictimMaxThreshold)
	res := naive.Process(0, 1500, q)
	if res.Victim != 2 {
		t.Fatalf("naive policy victim = %d, want 2 (largest T)", res.Victim)
	}
	// Queue 2 is active and sits exactly at its satisfaction threshold,
	// so the protection guard fires and the packet drops — even though
	// queue 1 had surplus to donate. The naive rule wastes buffer it
	// could have reassigned (and with queue 2 idle it would strip the
	// weighted queue outright).
	if res.Verdict != Drop {
		t.Fatalf("naive policy verdict = %v, want drop (wasted donation)", res.Verdict)
	}
	naiveIdle := mk(VictimMaxThreshold)
	res = naiveIdle.Process(0, 1500, qlens{5000, 10000, 0})
	if res.Verdict != Adjusted || res.Victim != 2 {
		t.Fatalf("naive policy with idle queue 2: %+v, want adjusted victim 2", res)
	}
	if naiveIdle.Threshold(2) >= naiveIdle.Satisfaction(2) {
		t.Fatal("naive policy should have stripped idle queue 2 below its fair-share buffer")
	}

	paper := mk(VictimMaxExtra)
	res = paper.Process(0, 1500, q)
	if res.Victim != 1 {
		t.Fatalf("paper policy victim = %d, want 1 (largest extra)", res.Victim)
	}
	if paper.Threshold(2) != 30000 {
		t.Fatal("paper policy must leave the satisfied weighted queue alone")
	}
}

func TestWBDPSatisfactionThresholds(t *testing.T) {
	// B = 85KB, BDP = 62.5KB, equal weights over 4 queues:
	// S_i = 15625 instead of 21250.
	st, err := NewWithOptions(85*units.KB, []int64{1, 1, 1, 1},
		WithWBDPSatisfaction(62500))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := st.Satisfaction(i); got != 15625 {
			t.Errorf("S_%d = %d, want 15625", i, got)
		}
		if got := st.Threshold(i); got != 21250 {
			t.Errorf("T_%d = %d, want 21250 (thresholds still split B)", i, got)
		}
		// Headroom: every queue starts with positive extra under WBDP.
		if st.Extra(i) <= 0 {
			t.Errorf("queue %d extra = %d, want positive headroom", i, st.Extra(i))
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWBDPAllowsDeeperStealing(t *testing.T) {
	// Under Eq. 3 an active queue at its initial threshold cannot donate;
	// under WBDP satisfaction it can donate down to S_i = WBDP_i — the
	// reduced protection the paper warns about.
	paper := MustNew(85*units.KB, []int64{1, 1, 1, 1})
	q := qlens{21250, 500, 500, 500} // every queue active
	if res := paper.Process(0, 1500, q); res.Verdict != Drop {
		t.Fatalf("Eq.3: verdict = %v, want drop (all victims unsatisfied)", res.Verdict)
	}
	wbdp, err := NewWithOptions(85*units.KB, []int64{1, 1, 1, 1},
		WithWBDPSatisfaction(62500))
	if err != nil {
		t.Fatal(err)
	}
	if res := wbdp.Process(0, 1500, q); res.Verdict != Adjusted {
		t.Fatalf("WBDP: verdict = %v, want adjusted (headroom above WBDP)", res.Verdict)
	}
}

func TestOptionsInvariantsUnderRandomWorkload(t *testing.T) {
	// The ΣT = B and T ≥ 0 invariants must hold under every policy combo.
	f := func(seed int64, naive bool, wbdp bool) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		weights := make([]int64, m)
		for i := range weights {
			weights[i] = int64(1 + rng.Intn(4))
		}
		var opts []Option
		if naive {
			opts = append(opts, WithVictimPolicy(VictimMaxThreshold))
		}
		if wbdp {
			opts = append(opts, WithWBDPSatisfaction(units.ByteSize(10000+rng.Intn(50000))))
		}
		st, err := NewWithOptions(units.ByteSize(30000+rng.Intn(100000)), weights, opts...)
		if err != nil {
			return false
		}
		q := make(qlens, m)
		for step := 0; step < 200; step++ {
			p := rng.Intn(m)
			size := units.ByteSize(64 + rng.Intn(8936))
			if res := st.Process(p, size, q); res.Verdict != Drop {
				q[p] += size
			}
			if rng.Intn(2) == 0 {
				i := rng.Intn(m)
				q[i] /= 2
			}
			if st.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTournamentMatchesLinearUnderNaivePolicy(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + int(pRaw%5)
		weights := make([]int64, m)
		for i := range weights {
			weights[i] = int64(1 + rng.Intn(4))
		}
		st, err := NewWithOptions(units.ByteSize(20000+rng.Intn(50000)), weights,
			WithVictimPolicy(VictimMaxThreshold))
		if err != nil {
			return false
		}
		for k := 0; k < 15; k++ {
			a, b := rng.Intn(m), rng.Intn(m)
			amt := units.ByteSize(rng.Intn(1500))
			if a != b && st.t[a] >= amt {
				st.t[a] -= amt
				st.t[b] += amt
			}
		}
		p := rng.Intn(m)
		return st.victimTournament(p) == st.victimLinear(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
