package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dynaq/internal/units"
)

// qlens is a test helper exposing a slice as QueueLens.
type qlens []units.ByteSize

func (q qlens) QueueLen(i int) units.ByteSize { return q[i] }

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		b       units.ByteSize
		weights []int64
		wantErr bool
	}{
		{name: "valid equal", b: 85 * units.KB, weights: []int64{1, 1, 1, 1}},
		{name: "valid weighted", b: 85 * units.KB, weights: []int64{4, 3, 2, 1}},
		{name: "zero buffer", b: 0, weights: []int64{1}, wantErr: true},
		{name: "negative buffer", b: -1, weights: []int64{1}, wantErr: true},
		{name: "no queues", b: units.KB, wantErr: true},
		{name: "zero weight", b: units.KB, weights: []int64{1, 0}, wantErr: true},
		{name: "negative weight", b: units.KB, weights: []int64{1, -2}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.b, tt.weights)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestInitEqualWeights(t *testing.T) {
	// Eq. (1): T_i = B·w_i/Σw. 85KB over 4 equal queues = 21250 each.
	st := MustNew(85*units.KB, []int64{1, 1, 1, 1})
	for i := 0; i < 4; i++ {
		if got := st.Threshold(i); got != 21250 {
			t.Errorf("T_%d = %d, want 21250", i, got)
		}
		if got := st.Satisfaction(i); got != 21250 {
			t.Errorf("S_%d = %d, want 21250", i, got)
		}
		if got := st.Extra(i); got != 0 {
			t.Errorf("T^ex_%d = %d, want 0", i, got)
		}
		if !st.Satisfied(i) {
			t.Errorf("queue %d should start satisfied", i)
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInitWeighted(t *testing.T) {
	// Weights 4:3:2:1 over 100KB: 40/30/20/10 KB.
	st := MustNew(100*units.KB, []int64{4, 3, 2, 1})
	want := []units.ByteSize{40000, 30000, 20000, 10000}
	for i, w := range want {
		if got := st.Threshold(i); got != w {
			t.Errorf("T_%d = %d, want %d", i, got, w)
		}
	}
}

func TestInitRoundingPreservesSum(t *testing.T) {
	// 100 bytes over 3 equal queues cannot split evenly; the
	// largest-remainder method must still hand out every byte.
	st := MustNew(100, []int64{1, 1, 1})
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every queue gets 33, one gets the extra byte.
	var got34 int
	for i := 0; i < 3; i++ {
		switch st.Threshold(i) {
		case 33:
		case 34:
			got34++
		default:
			t.Errorf("T_%d = %d, want 33 or 34", i, st.Threshold(i))
		}
	}
	if got34 != 1 {
		t.Errorf("%d queues got 34 bytes, want exactly 1", got34)
	}
}

func TestProcessPassWithinThreshold(t *testing.T) {
	st := MustNew(4000, []int64{1, 1, 1, 1}) // T_i = 1000
	res := st.Process(0, 500, qlens{400, 0, 0, 0})
	if res.Verdict != Pass {
		t.Fatalf("verdict = %v, want pass", res.Verdict)
	}
	if res.Victim != -1 {
		t.Fatalf("victim = %d, want -1", res.Victim)
	}
	if st.Threshold(0) != 1000 {
		t.Fatalf("T_0 changed on pass: %d", st.Threshold(0))
	}
}

func TestProcessExactFitPasses(t *testing.T) {
	// q_p + size == T_p is NOT an exceedance (Algorithm 1 line 1 uses >).
	st := MustNew(4000, []int64{1, 1, 1, 1})
	res := st.Process(0, 1000, qlens{0, 0, 0, 0})
	if res.Verdict != Pass {
		t.Fatalf("verdict = %v, want pass at exact fit", res.Verdict)
	}
}

func TestProcessAdjustStealsFromIdleQueue(t *testing.T) {
	st := MustNew(4000, []int64{1, 1, 1, 1})
	// Queue 0 is at its threshold; queues 1-3 idle. The victim (any idle
	// queue) gives up size bytes even though that puts it below S_v,
	// because q_v == 0 (inactive queues are not protected — §III-B2).
	res := st.Process(0, 500, qlens{1000, 0, 0, 0})
	if res.Verdict != Adjusted {
		t.Fatalf("verdict = %v, want adjusted", res.Verdict)
	}
	if res.Victim != 1 {
		// All extras are 0; tie resolves to the lowest non-p index.
		t.Fatalf("victim = %d, want 1 (tie → lowest index)", res.Victim)
	}
	if st.Threshold(0) != 1500 || st.Threshold(1) != 500 {
		t.Fatalf("T = [%d %d ...], want [1500 500 ...]", st.Threshold(0), st.Threshold(1))
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessDropProtectsUnsatisfiedActiveVictim(t *testing.T) {
	st := MustNew(4000, []int64{1, 1, 1, 1})
	// Make every other queue active. Victim would fall below S_v = 1000,
	// and q_v > 0, so the packet must drop without threshold changes.
	res := st.Process(0, 500, qlens{1000, 800, 800, 800})
	if res.Verdict != Drop {
		t.Fatalf("verdict = %v, want drop", res.Verdict)
	}
	for i := 0; i < 4; i++ {
		if st.Threshold(i) != 1000 {
			t.Fatalf("T_%d = %d changed on drop", i, st.Threshold(i))
		}
	}
}

func TestProcessDropWhenVictimThresholdTooSmall(t *testing.T) {
	// Drain queue 1's threshold to below the packet size via repeated
	// adjustments, then verify the T_v < size(P) guard fires (keeps
	// T_i ≥ 0).
	st := MustNew(4000, []int64{1, 1, 1, 1})
	q := qlens{1000, 0, 0, 0}
	for {
		res := st.Process(0, 900, q)
		if res.Verdict == Drop {
			break
		}
		q[0] = st.Threshold(0) // keep queue 0 pinned at its threshold
		if st.Threshold(0) > 4000 {
			t.Fatal("T_0 exceeded B")
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if st.Threshold(i) < 0 {
			t.Fatalf("T_%d went negative", i)
		}
	}
}

func TestVictimPrefersLargestExtra(t *testing.T) {
	// Weights 1:2:3 on 60KB: S = [10000, 20000, 30000].
	st := MustNew(60*units.KB, []int64{1, 2, 3})
	// Manufacture asymmetric extras: steal from queue 2 into queue 0 so
	// that queue 0 has the largest extra, then have queue 1 overflow; its
	// victim must be queue 0 even though queue 2's absolute T is larger.
	st.t[0] = 25000 // extra +15000
	st.t[1] = 20000 // extra 0
	st.t[2] = 15000 // extra -15000 (unsatisfied)
	res := st.Process(1, 1500, qlens{0, 20000, 5000})
	if res.Verdict != Adjusted {
		t.Fatalf("verdict = %v, want adjusted", res.Verdict)
	}
	if res.Victim != 0 {
		t.Fatalf("victim = %d, want 0 (largest extra, not largest T)", res.Victim)
	}
}

func TestWeightedVictimExample(t *testing.T) {
	// §III-B "Victim Queue Selection" example: weights 1:2:3. A
	// largest-threshold policy would victimize queue 2 (index 2) even when
	// it only holds its minimum fair-share buffer; the extra-based policy
	// must not.
	st := MustNew(60*units.KB, []int64{1, 2, 3})
	// Queue 2 exactly at satisfaction (extra 0), queue 1 fat (+5000),
	// queue 0 slim (-5000).
	st.t[0] = 5000
	st.t[1] = 25000
	st.t[2] = 30000
	res := st.Process(0, 1500, qlens{5000, 10000, 30000})
	if res.Verdict != Adjusted || res.Victim != 1 {
		t.Fatalf("got %+v, want adjusted with victim 1", res)
	}
}

func TestSingleQueueDropsAtBuffer(t *testing.T) {
	st := MustNew(1000, []int64{1})
	if res := st.Process(0, 200, qlens{900}); res.Verdict != Drop {
		t.Fatalf("verdict = %v, want drop (no victim exists)", res.Verdict)
	}
	if res := st.Process(0, 100, qlens{900}); res.Verdict != Pass {
		t.Fatalf("verdict = %v, want pass at exact fit", res.Verdict)
	}
}

func TestProcessPanicsOnBadInput(t *testing.T) {
	st := MustNew(1000, []int64{1, 1})
	for _, fn := range []func(){
		func() { st.Process(-1, 100, qlens{0, 0}) },
		func() { st.Process(2, 100, qlens{0, 0}) },
		func() { st.Process(0, 0, qlens{0, 0}) },
		func() { st.Process(0, -5, qlens{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic on invalid Process input")
				}
			}()
			fn()
		}()
	}
}

func TestSetBufferReinitializes(t *testing.T) {
	st := MustNew(85*units.KB, []int64{1, 1, 1, 1})
	// Distort thresholds.
	st.Process(0, 1500, qlens{st.Threshold(0), 0, 0, 0})
	if err := st.SetBuffer(192 * units.KB); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := st.Threshold(i); got != 48*units.KB {
			t.Errorf("T_%d = %d after resize, want 48KB", i, got)
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := st.SetBuffer(0); err == nil {
		t.Error("SetBuffer(0) should fail")
	}
}

func TestTournamentMatchesLinearSearch(t *testing.T) {
	// Property: for random threshold configurations and any excluded
	// index, the loop-free tournament finds the same victim as the linear
	// reference (including tie-breaking to the lowest index).
	f := func(seed int64, mRaw uint8, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + int(mRaw)%9 // 2..10 queues, covers non-power-of-two widths
		weights := make([]int64, m)
		for i := range weights {
			weights[i] = int64(1 + rng.Intn(8))
		}
		st := MustNew(units.ByteSize(10000+rng.Intn(100000)), weights)
		// Random threshold redistribution preserving the sum.
		for k := 0; k < 20; k++ {
			a, b := rng.Intn(m), rng.Intn(m)
			if a == b {
				continue
			}
			amt := units.ByteSize(rng.Intn(2000))
			if st.t[a] >= amt {
				st.t[a] -= amt
				st.t[b] += amt
			}
		}
		p := int(pRaw) % m
		return st.victimTournament(p) == st.victimLinear(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInvariantsUnderRandomWorkload(t *testing.T) {
	// Property: Σ T_i == B and T_i ≥ 0 after any sequence of Process
	// calls with any queue occupancy pattern.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(7)
		weights := make([]int64, m)
		for i := range weights {
			weights[i] = int64(1 + rng.Intn(4))
		}
		b := units.ByteSize(20000 + rng.Intn(200000))
		st := MustNew(b, weights)
		q := make(qlens, m)
		for step := 0; step < 300; step++ {
			p := rng.Intn(m)
			size := units.ByteSize(64 + rng.Intn(8936))
			res := st.Process(p, size, q)
			if res.Verdict != Drop {
				// Emulate enqueue/dequeue churn.
				q[p] += size
			}
			if rng.Intn(2) == 0 {
				i := rng.Intn(m)
				q[i] -= q[i] / 2
			}
			if err := st.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDropNeverMutatesThresholds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(7)
		weights := make([]int64, m)
		for i := range weights {
			weights[i] = 1
		}
		st := MustNew(units.ByteSize(10000+rng.Intn(50000)), weights)
		q := make(qlens, m)
		for i := range q {
			q[i] = units.ByteSize(rng.Intn(int(st.Threshold(i)) + 1))
		}
		before := append([]units.ByteSize(nil), st.t...)
		res := st.Process(rng.Intn(m), units.ByteSize(64+rng.Intn(8936)), q)
		if res.Verdict == Drop {
			for i := range before {
				if st.t[i] != before[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAdjustedExactlySwapsSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(7)
		weights := make([]int64, m)
		for i := range weights {
			weights[i] = int64(1 + rng.Intn(3))
		}
		st := MustNew(units.ByteSize(50000+rng.Intn(100000)), weights)
		q := make(qlens, m)
		p := rng.Intn(m)
		q[p] = st.Threshold(p) // pin p at its threshold to force search
		size := units.ByteSize(64 + rng.Intn(1436))
		tp, before := st.Threshold(p), append([]units.ByteSize(nil), st.t...)
		res := st.Process(p, size, q)
		if res.Verdict != Adjusted {
			return true // drop paths covered elsewhere
		}
		if st.Threshold(p) != tp+size {
			return false
		}
		if st.Threshold(res.Victim) != before[res.Victim]-size {
			return false
		}
		// No third queue touched.
		for i := range before {
			if i != p && i != res.Victim && st.t[i] != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVerdictString(t *testing.T) {
	tests := []struct {
		v    Verdict
		want string
	}{
		{Pass, "pass"}, {Adjusted, "adjusted"}, {Drop, "drop"}, {Verdict(9), "Verdict(9)"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("Verdict(%d).String() = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid config")
		}
	}()
	MustNew(0, []int64{1})
}

func BenchmarkProcessPass(b *testing.B) {
	st := MustNew(192*units.KB, []int64{1, 1, 1, 1, 1, 1, 1, 1})
	q := make(qlens, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Process(i%8, 1500, q)
	}
}

func BenchmarkProcessAdjust(b *testing.B) {
	st := MustNew(192*units.KB, []int64{1, 1, 1, 1, 1, 1, 1, 1})
	q := make(qlens, 8)
	q[0] = st.Threshold(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q[0] = st.Threshold(0) // keep queue 0 pinned at threshold
		st.Process(0, 1500, q)
	}
}

func TestStateString(t *testing.T) {
	st := MustNew(4000, []int64{1, 1})
	got := st.String()
	for _, want := range []string{"B=4000", "q0:T=2000,S=2000,ex=+0", "ΣT=4000"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}
