package core

import "math/bits"

// CycleCost models the worst-case ASIC clock-cycle budget of Algorithm 1 for
// a switch with m service queues, following the analysis in §IV-A:
//
//   - Line 1 (threshold compare):                    1 cycle
//   - Line 2 (MaxIdx victim tree):                   ⌈log2 m⌉ cycles
//   - Line 3 (drop condition): the (q_v>0 && ...)
//     conjunction evaluates before the || with
//     T_v < size(P); comparisons pipeline:           2 cycles
//   - Lines 6–7 (threshold swap): no read/write
//     dependency, so both writes pipeline:           1 cycle
//
// For m = 8 this yields 1 + 3 + 2 + 1 = 7 cycles — 0.88% of the ≥800-cycle
// per-packet budget of a Broadcom Trident 3 (§IV-A).
func CycleCost(m int) int {
	if m < 1 {
		return 0
	}
	const (
		compareCycles = 1
		dropCondition = 2
		thresholdSwap = 1
	)
	log2 := bits.Len(uint(m - 1)) // ⌈log2 m⌉, with log2(1) = 0
	return compareCycles + log2 + dropCondition + thresholdSwap
}

// CycleOverhead returns the fraction of a switch ASIC's per-packet
// processing budget consumed by Algorithm 1, given the ASIC's minimum
// per-packet processing delay in clock cycles (e.g. 800 for Trident 3 at
// 1 GHz).
func CycleOverhead(m, pipelineCycles int) float64 {
	if pipelineCycles <= 0 {
		return 0
	}
	return float64(CycleCost(m)) / float64(pipelineCycles)
}
