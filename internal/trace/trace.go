// Package trace records per-packet port events for debugging and
// analysis: a bounded ring of events with kind filters, per-kind counters,
// and a human-readable dump. Attach a Recorder to any port via
// netsim.Port.SetEventHook.
package trace

import (
	"fmt"
	"io"

	"dynaq/internal/netsim"
)

// Recorder collects port events into a bounded ring buffer.
type Recorder struct {
	cap    int
	events []netsim.PortEvent
	start  int // ring start when full
	full   bool
	counts map[netsim.PortEventKind]int64
	filter map[netsim.PortEventKind]bool // nil = record all kinds
}

// NewRecorder builds a recorder keeping the most recent capacity events.
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("trace: capacity %d must be positive", capacity)
	}
	return &Recorder{
		cap:    capacity,
		counts: make(map[netsim.PortEventKind]int64),
	}, nil
}

// Only restricts recording (not counting) to the given kinds.
func (r *Recorder) Only(kinds ...netsim.PortEventKind) *Recorder {
	r.filter = make(map[netsim.PortEventKind]bool, len(kinds))
	for _, k := range kinds {
		r.filter[k] = true
	}
	return r
}

// Hook returns the function to install with Port.SetEventHook. One
// recorder may serve several ports.
func (r *Recorder) Hook() netsim.EventHook {
	return func(ev netsim.PortEvent) { r.record(ev) }
}

// Attach installs the recorder on a port (replacing any previous hook).
func (r *Recorder) Attach(p *netsim.Port) { p.SetEventHook(r.Hook()) }

func (r *Recorder) record(ev netsim.PortEvent) {
	r.counts[ev.Kind]++
	if r.filter != nil && !r.filter[ev.Kind] {
		return
	}
	if len(r.events) < r.cap {
		r.events = append(r.events, ev)
		return
	}
	r.events[r.start] = ev
	r.start = (r.start + 1) % r.cap
	r.full = true
}

// Count returns how many events of the kind were seen (including ones the
// ring has since discarded or the filter skipped).
func (r *Recorder) Count(k netsim.PortEventKind) int64 { return r.counts[k] }

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []netsim.PortEvent {
	if !r.full {
		return append([]netsim.PortEvent(nil), r.events...)
	}
	out := make([]netsim.PortEvent, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Dump writes the retained events to w, one line each.
func (r *Recorder) Dump(w io.Writer) error {
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintf(w, "%-12s t=%-14v q=%d %v\n",
			ev.Kind, ev.At, ev.Queue, ev.Pkt); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders the per-kind counters.
func (r *Recorder) Summary() string {
	kinds := []netsim.PortEventKind{
		netsim.EvEnqueue, netsim.EvTransmit, netsim.EvDrop,
		netsim.EvMark, netsim.EvEvict, netsim.EvDequeueDrop,
		netsim.EvMisclass, netsim.EvLinkDrop, netsim.EvLinkCorrupt,
	}
	out := ""
	for _, k := range kinds {
		if c := r.counts[k]; c > 0 {
			out += fmt.Sprintf("%s=%d ", k, c)
		}
	}
	if out == "" {
		return "(no events)"
	}
	return out[:len(out)-1]
}
