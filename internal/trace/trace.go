// Package trace records per-packet port events for debugging and
// analysis: a bounded ring of events with kind filters, per-kind counters,
// and a human-readable dump. Attach a Recorder to any port via
// netsim.Port.SetEventHook.
package trace

import (
	"fmt"
	"io"
	"strconv"

	"dynaq/internal/netsim"
	"dynaq/internal/telemetry"
)

// Recorder collects port events into a bounded ring buffer.
type Recorder struct {
	cap    int
	events []netsim.PortEvent
	start  int // ring start when full
	full   bool
	counts map[netsim.PortEventKind]int64
	filter map[netsim.PortEventKind]bool // nil = record all kinds
}

// NewRecorder builds a recorder keeping the most recent capacity events.
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("trace: capacity %d must be positive", capacity)
	}
	return &Recorder{
		cap:    capacity,
		counts: make(map[netsim.PortEventKind]int64),
	}, nil
}

// Only restricts recording (not counting) to the given kinds.
func (r *Recorder) Only(kinds ...netsim.PortEventKind) *Recorder {
	r.filter = make(map[netsim.PortEventKind]bool, len(kinds))
	for _, k := range kinds {
		r.filter[k] = true
	}
	return r
}

// Hook returns the function to install with Port.SetEventHook. One
// recorder may serve several ports.
func (r *Recorder) Hook() netsim.EventHook {
	return func(ev netsim.PortEvent) { r.record(ev) }
}

// Attach installs the recorder on a port (replacing any previous hook).
func (r *Recorder) Attach(p *netsim.Port) { p.SetEventHook(r.Hook()) }

func (r *Recorder) record(ev netsim.PortEvent) {
	r.counts[ev.Kind]++
	if r.filter != nil && !r.filter[ev.Kind] {
		return
	}
	if len(r.events) < r.cap {
		r.events = append(r.events, ev)
		return
	}
	r.events[r.start] = ev
	r.start = (r.start + 1) % r.cap
	r.full = true
}

// Count returns how many events of the kind were seen (including ones the
// ring has since discarded or the filter skipped).
func (r *Recorder) Count(k netsim.PortEventKind) int64 { return r.counts[k] }

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []netsim.PortEvent {
	if !r.full {
		return append([]netsim.PortEvent(nil), r.events...)
	}
	out := make([]netsim.PortEvent, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Dump writes the retained events to w, one line each.
func (r *Recorder) Dump(w io.Writer) error {
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintf(w, "%-12s t=%-14v q=%d %v\n",
			ev.Kind, ev.At, ev.Queue, ev.Pkt); err != nil {
			return err
		}
	}
	return nil
}

// DumpJSON writes the retained events to w as JSONL, one event per line,
// with a fixed field order so two identical runs produce byte-identical
// output. Events whose packet was synthesized away (nil Pkt) omit the
// packet fields.
func (r *Recorder) DumpJSON(w io.Writer) error {
	buf := make([]byte, 0, 160)
	for _, ev := range r.Events() {
		buf = buf[:0]
		buf = append(buf, `{"t_ps":`...)
		buf = strconv.AppendInt(buf, int64(ev.At), 10)
		buf = append(buf, `,"kind":`...)
		buf = strconv.AppendQuote(buf, ev.Kind.String())
		buf = append(buf, `,"queue":`...)
		buf = strconv.AppendInt(buf, int64(ev.Queue), 10)
		if p := ev.Pkt; p != nil {
			buf = append(buf, `,"flow":`...)
			buf = strconv.AppendInt(buf, int64(p.Flow), 10)
			buf = append(buf, `,"src":`...)
			buf = strconv.AppendInt(buf, int64(p.Src), 10)
			buf = append(buf, `,"dst":`...)
			buf = strconv.AppendInt(buf, int64(p.Dst), 10)
			buf = append(buf, `,"seq":`...)
			buf = strconv.AppendInt(buf, p.Seq, 10)
			buf = append(buf, `,"size":`...)
			buf = strconv.AppendInt(buf, int64(p.Size), 10)
			buf = append(buf, `,"class":`...)
			buf = strconv.AppendInt(buf, int64(p.Class), 10)
		}
		buf = append(buf, '}', '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Publish exposes the recorder's per-kind counters through a telemetry
// registry as trace_events_total{kind=...} counter funcs, one per event
// kind, evaluated at dump time.
func (r *Recorder) Publish(reg *telemetry.Registry) {
	for _, k := range allKinds {
		k := k
		reg.CounterFunc("trace_events_total",
			func() int64 { return r.counts[k] },
			telemetry.L("kind", k.String()))
	}
}

// allKinds lists every port event kind in declaration order.
var allKinds = []netsim.PortEventKind{
	netsim.EvEnqueue, netsim.EvDrop, netsim.EvMark, netsim.EvEvict,
	netsim.EvDequeueDrop, netsim.EvTransmit, netsim.EvMisclass,
	netsim.EvLinkDrop, netsim.EvLinkCorrupt,
}

// Summary renders the per-kind counters.
func (r *Recorder) Summary() string {
	kinds := []netsim.PortEventKind{
		netsim.EvEnqueue, netsim.EvTransmit, netsim.EvDrop,
		netsim.EvMark, netsim.EvEvict, netsim.EvDequeueDrop,
		netsim.EvMisclass, netsim.EvLinkDrop, netsim.EvLinkCorrupt,
	}
	out := ""
	for _, k := range kinds {
		if c := r.counts[k]; c > 0 {
			out += fmt.Sprintf("%s=%d ", k, c)
		}
	}
	if out == "" {
		return "(no events)"
	}
	return out[:len(out)-1]
}
