package trace

import (
	"strings"
	"testing"

	"dynaq/internal/buffer"
	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

type nullNode struct{}

func (nullNode) Receive(*packet.Packet) {}

func newTracedPort(t *testing.T, s *sim.Simulator, buf units.ByteSize) (*netsim.Port, *Recorder) {
	t.Helper()
	p, err := netsim.NewPort(s, netsim.PortConfig{
		Rate: units.Gbps, Buffer: buf, Queues: 2,
		Scheduler: sched.EqualDRR(2, 1500),
		Admission: buffer.NewBestEffort(),
		Link:      netsim.NewLink(s, 0, nullNode{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecorder(100)
	if err != nil {
		t.Fatal(err)
	}
	rec.Attach(p)
	return p, rec
}

func pkt(class int) *packet.Packet {
	return &packet.Packet{Kind: packet.Data, Size: 1500, Class: class}
}

func TestRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestRecorderCapturesLifecycle(t *testing.T) {
	s := sim.New()
	p, rec := newTracedPort(t, s, 100*units.KB)
	for i := 0; i < 3; i++ {
		p.Enqueue(pkt(0))
	}
	s.Run()
	if got := rec.Count(netsim.EvEnqueue); got != 3 {
		t.Fatalf("enqueues = %d, want 3", got)
	}
	if got := rec.Count(netsim.EvTransmit); got != 3 {
		t.Fatalf("transmits = %d, want 3", got)
	}
	evs := rec.Events()
	if len(evs) != 6 {
		t.Fatalf("retained = %d, want 6", len(evs))
	}
	if evs[0].Kind != netsim.EvEnqueue {
		t.Fatalf("first event = %v", evs[0].Kind)
	}
	// Timestamps are nondecreasing.
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events out of order")
		}
	}
}

func TestRecorderCapturesDrops(t *testing.T) {
	s := sim.New()
	p, rec := newTracedPort(t, s, 3000)
	for i := 0; i < 5; i++ {
		p.Enqueue(pkt(0))
	}
	s.Run()
	if rec.Count(netsim.EvDrop) == 0 {
		t.Fatal("no drops recorded on an overrun port")
	}
	var b strings.Builder
	if err := rec.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "drop") {
		t.Errorf("dump missing drop lines:\n%s", b.String())
	}
	if !strings.Contains(rec.Summary(), "drop=") {
		t.Errorf("summary missing drops: %s", rec.Summary())
	}
}

func TestRecorderRingOverwrite(t *testing.T) {
	rec, err := NewRecorder(4)
	if err != nil {
		t.Fatal(err)
	}
	h := rec.Hook()
	for i := 0; i < 10; i++ {
		h(netsim.PortEvent{At: units.Time(i), Kind: netsim.EvEnqueue})
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	// Oldest-first: the ring holds events 6..9.
	for i, ev := range evs {
		if ev.At != units.Time(6+i) {
			t.Fatalf("event %d at %d, want %d", i, ev.At, 6+i)
		}
	}
	if rec.Count(netsim.EvEnqueue) != 10 {
		t.Fatal("counters must survive ring overwrite")
	}
}

func TestRecorderFilter(t *testing.T) {
	rec, err := NewRecorder(10)
	if err != nil {
		t.Fatal(err)
	}
	rec.Only(netsim.EvDrop)
	h := rec.Hook()
	h(netsim.PortEvent{Kind: netsim.EvEnqueue})
	h(netsim.PortEvent{Kind: netsim.EvDrop})
	if rec.Len() != 1 {
		t.Fatalf("retained = %d, want only the drop", rec.Len())
	}
	// Counting still covers filtered-out kinds.
	if rec.Count(netsim.EvEnqueue) != 1 {
		t.Fatal("filtered kinds must still count")
	}
}

func TestEmptySummary(t *testing.T) {
	rec, _ := NewRecorder(1)
	if rec.Summary() != "(no events)" {
		t.Errorf("Summary = %q", rec.Summary())
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[netsim.PortEventKind]string{
		netsim.EvEnqueue: "enqueue", netsim.EvDrop: "drop", netsim.EvMark: "mark",
		netsim.EvEvict: "evict", netsim.EvDequeueDrop: "dequeue-drop",
		netsim.EvTransmit: "transmit", netsim.PortEventKind(99): "PortEventKind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("kind %d = %q, want %q", k, got, want)
		}
	}
}
