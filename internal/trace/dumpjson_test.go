package trace

import (
	"bytes"
	"testing"

	"dynaq/internal/netsim"
	"dynaq/internal/packet"
	"dynaq/internal/telemetry"
	"dynaq/internal/units"
)

func TestDumpJSONStable(t *testing.T) {
	r, err := NewRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	pkt := &packet.Packet{
		Flow: 7, Kind: packet.Data, Src: 1, Dst: 2,
		Size: 1500, Seq: 4380, Class: 3,
	}
	hook := r.Hook()
	hook(netsim.PortEvent{At: units.Time(1000), Kind: netsim.EvEnqueue, Queue: 3, Pkt: pkt})
	hook(netsim.PortEvent{At: units.Time(2000), Kind: netsim.EvDrop, Queue: 0, Pkt: nil})

	var buf bytes.Buffer
	if err := r.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"t_ps":1000,"kind":"enqueue","queue":3,"flow":7,"src":1,"dst":2,"seq":4380,"size":1500,"class":3}
{"t_ps":2000,"kind":"drop","queue":0}
`
	if buf.String() != want {
		t.Fatalf("DumpJSON:\n%s\nwant:\n%s", buf.String(), want)
	}

	var again bytes.Buffer
	if err := r.DumpJSON(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != buf.String() {
		t.Fatalf("DumpJSON not byte-stable")
	}
}

func TestPublishCounters(t *testing.T) {
	r, err := NewRecorder(4)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	r.Publish(reg)
	hook := r.Hook()
	hook(netsim.PortEvent{Kind: netsim.EvEnqueue})
	hook(netsim.PortEvent{Kind: netsim.EvEnqueue})
	hook(netsim.PortEvent{Kind: netsim.EvDrop})
	if v, ok := reg.Value(`trace_events_total{kind="enqueue"}`); !ok || v != 2 {
		t.Fatalf("enqueue counter = %d,%v, want 2", v, ok)
	}
	if v, ok := reg.Value(`trace_events_total{kind="drop"}`); !ok || v != 1 {
		t.Fatalf("drop counter = %d,%v, want 1", v, ok)
	}
}
