package fleet

import (
	"hash/fnv"
	"math/rand"
	"time"
)

// Backoff computes the delay before a failed cell may be leased again:
// capped exponential growth with deterministic seeded jitter. The jitter
// generator is seeded from the cell's content address and the attempt
// number, so a given (cell, attempt) always waits the same amount — retry
// timing is replayable, which is what lets the chaos harness assert exact
// requeue schedules and keeps two coordinators over the same history in
// lockstep. Jitter still does its usual job of spreading simultaneous
// failures apart, because different cells hash to different delays.
type Backoff struct {
	// Base is the attempt-1 delay window. 0 selects 250ms.
	Base time.Duration
	// Cap bounds the window growth. 0 selects 10s.
	Cap time.Duration
}

// Delay returns the wait before attempt+1 may start, given that `attempt`
// runs of the cell identified by key have failed (attempt ≥ 1). The delay
// is drawn uniformly from [window/2, window], window = min(Cap,
// Base·2^(attempt-1)).
func (b Backoff) Delay(key string, attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 10 * time.Second
	}
	if base > cap {
		base = cap
	}
	window := base
	for i := 1; i < attempt && window < cap; i++ {
		window *= 2
	}
	if window > cap {
		window = cap
	}
	rng := rand.New(rand.NewSource(jitterSeed(key, attempt)))
	half := int64(window / 2)
	return time.Duration(half + rng.Int63n(half+1))
}

// jitterSeed derives a deterministic jitter seed from the cell identity and
// attempt number.
func jitterSeed(key string, attempt int) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int64(h.Sum64()) ^ int64(attempt)<<32
}
