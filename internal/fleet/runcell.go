package fleet

import (
	"strconv"

	"dynaq/internal/metrics"
	"dynaq/internal/scenario"
	"dynaq/internal/telemetry"
	"dynaq/internal/units"
)

// CellManifest builds the telemetry manifest for one cell. Every field is a
// pure function of the cell's identity, keeping artifact bytes identical no
// matter which node (coordinator fallback or any worker) produced them.
func CellManifest(version, scenarioHash, scheme string, seed int64, key string) telemetry.Manifest {
	return telemetry.Manifest{
		Tool:         "dynaqd",
		Version:      version,
		ScenarioHash: scenarioHash,
		Seed:         seed,
		Scheme:       scheme,
		Args:         []string{"scheme=" + scheme, "seed=" + strconv.FormatInt(seed, 10), "cache_key=" + key},
	}
}

// RunCellTo executes one (scenario, scheme, seed) cell into dir: a full
// telemetry Run (events.jsonl, metrics.jsonl, manifest.json) around a
// scenario execution. It is the single execution path shared by the
// coordinator's local fallback, cmd/dynaqworker, and the byte-diff tests
// that prove a cached artifact equals a fresh sequential run. The returned
// registry stays readable after the run for server-level aggregation.
func RunCellTo(dir string, scenarioBytes []byte, scheme string, seed int64, man telemetry.Manifest, tee func(line []byte)) (*telemetry.Registry, error) {
	r, err := scenario.LoadWith(scenarioBytes, scenario.Overrides{Scheme: scheme, Seed: &seed})
	if err != nil {
		return nil, err
	}
	run, err := telemetry.NewRun(dir, man)
	if err != nil {
		return nil, err
	}
	if tee != nil {
		run.Tee(tee)
	}
	r.SetTelemetry(run)
	res, err := r.Run()
	if err != nil {
		run.Close()
		return nil, err
	}
	summarize(run, res)
	return run.Registry(), run.Close()
}

// summarize records the result headline into the manifest summary, the same
// fields dynaqsim -config emits so artifacts are comparable across tools.
func summarize(run *telemetry.Run, res *scenario.Result) {
	switch {
	case res.Static != nil:
		run.Summarize("drops", strconv.FormatInt(res.Static.Drops, 10))
		run.Summarize("samples", strconv.Itoa(len(res.Static.Samples)))
	case res.Dynamic != nil:
		run.Summarize("flows_generated", strconv.Itoa(res.Dynamic.Generated))
		run.Summarize("flows_completed", strconv.Itoa(res.Dynamic.Completed))
		run.Summarize("avg_fct_us_overall",
			strconv.FormatInt(int64(res.Dynamic.FCT.Avg(metrics.AllFlows)/units.Microsecond), 10))
	}
}
