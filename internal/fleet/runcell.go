package fleet

import (
	"strconv"

	"dynaq/internal/metrics"
	"dynaq/internal/scenario"
	"dynaq/internal/telemetry"
	"dynaq/internal/telemetry/trace"
	"dynaq/internal/units"
)

// CellManifest builds the telemetry manifest for one cell. Every field is a
// pure function of the cell's identity, keeping artifact bytes identical no
// matter which node (coordinator fallback or any worker) produced them.
func CellManifest(version, scenarioHash, scheme string, seed int64, key string) telemetry.Manifest {
	return telemetry.Manifest{
		Tool:         "dynaqd",
		Version:      version,
		ScenarioHash: scenarioHash,
		Seed:         seed,
		Scheme:       scheme,
		Args:         []string{"scheme=" + scheme, "seed=" + strconv.FormatInt(seed, 10), "cache_key=" + key},
	}
}

// RunCellTo executes one (scenario, scheme, seed) cell into dir: a full
// telemetry Run (events.jsonl, metrics.jsonl, manifest.json) around a
// scenario execution. It is the single execution path shared by the
// coordinator's local fallback, cmd/dynaqworker, and the byte-diff tests
// that prove a cached artifact equals a fresh sequential run. The returned
// registry stays readable after the run for server-level aggregation.
//
// span, when non-nil, receives wall-time child spans for the execution
// phases (scenario-load, run, artifact-write) plus the engine's sim-time
// spans parented under the run phase. Spans never touch the artifact
// directory, so tracing cannot perturb the byte-identical cache contract.
func RunCellTo(dir string, scenarioBytes []byte, scheme string, seed int64, man telemetry.Manifest, tee func(line []byte), span *trace.SpanRef) (*telemetry.Registry, error) {
	load := span.Child("scenario-load")
	r, err := scenario.LoadWith(scenarioBytes, scenario.Overrides{Scheme: scheme, Seed: &seed})
	if err != nil {
		load.End(trace.A("error", err.Error()))
		return nil, err
	}
	// The engine fidelity comes from the scenario document itself, so it is
	// still a pure function of the cell's identity (the scenario hash).
	man.Engine = r.Engine()
	run, err := telemetry.NewRun(dir, man)
	if err != nil {
		load.End(trace.A("error", err.Error()))
		return nil, err
	}
	load.End()
	if tee != nil {
		run.Tee(tee)
	}
	r.SetTelemetry(run)
	exec := span.Child("run")
	if exec != nil {
		r.SetSpans(exec.Tracer(), exec.ID())
	}
	res, err := r.Run()
	if err != nil {
		exec.End(trace.A("error", err.Error()))
		run.Close()
		return nil, err
	}
	exec.End()
	write := span.Child("artifact-write")
	summarize(run, res)
	err = run.Close()
	if err != nil {
		write.End(trace.A("error", err.Error()))
	} else {
		write.End()
	}
	return run.Registry(), err
}

// summarize records the result headline into the manifest summary, the same
// fields dynaqsim -config emits so artifacts are comparable across tools.
func summarize(run *telemetry.Run, res *scenario.Result) {
	switch {
	case res.Static != nil:
		run.Summarize("drops", strconv.FormatInt(res.Static.Drops, 10))
		run.Summarize("samples", strconv.Itoa(len(res.Static.Samples)))
	case res.Dynamic != nil:
		run.Summarize("flows_generated", strconv.Itoa(res.Dynamic.Generated))
		run.Summarize("flows_completed", strconv.Itoa(res.Dynamic.Completed))
		run.Summarize("avg_fct_us_overall",
			strconv.FormatInt(int64(res.Dynamic.FCT.Avg(metrics.AllFlows)/units.Microsecond), 10))
		if fl := res.Dynamic.Fluid; fl != nil {
			run.Summarize("events", strconv.FormatInt(res.Dynamic.Events, 10))
			run.Summarize("recomputes", strconv.FormatInt(fl.Recomputes, 10))
			run.Summarize("demotions", strconv.FormatInt(fl.Demotions, 10))
		}
	}
}
