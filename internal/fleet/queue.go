package fleet

import "time"

// ReadyQueue orders requeued work by readiness: Pop yields the item with
// the earliest readyAt that has arrived, breaking ties by insertion order,
// so cells requeued without backoff drain strictly FIFO. Like Table it is
// pure bookkeeping under the caller's lock.
type ReadyQueue[T any] struct {
	seq   int
	items []readyItem[T]
}

type readyItem[T any] struct {
	v       T
	readyAt time.Time
	seq     int
}

// Push enqueues v, leasable once readyAt has passed.
func (q *ReadyQueue[T]) Push(v T, readyAt time.Time) {
	q.seq++
	q.items = append(q.items, readyItem[T]{v: v, readyAt: readyAt, seq: q.seq})
}

// Pop removes and returns the frontmost ready item ((readyAt, seq) order);
// ok is false when nothing is ready at now.
func (q *ReadyQueue[T]) Pop(now time.Time) (v T, ok bool) {
	best := -1
	for i, it := range q.items {
		if it.readyAt.After(now) {
			continue
		}
		if best < 0 || less(it, q.items[best]) {
			best = i
		}
	}
	if best < 0 {
		return v, false
	}
	v = q.items[best].v
	q.items = append(q.items[:best], q.items[best+1:]...)
	return v, true
}

func less[T any](a, b readyItem[T]) bool {
	if !a.readyAt.Equal(b.readyAt) {
		return a.readyAt.Before(b.readyAt)
	}
	return a.seq < b.seq
}

// NextAt returns the earliest readiness instant of any queued item; ok is
// false on an empty queue. Callers use it to schedule their next wakeup.
func (q *ReadyQueue[T]) NextAt() (time.Time, bool) {
	if len(q.items) == 0 {
		return time.Time{}, false
	}
	min := q.items[0]
	for _, it := range q.items[1:] {
		if less(it, min) {
			min = it
		}
	}
	return min.readyAt, true
}

// Len returns the number of queued items, ready or not.
func (q *ReadyQueue[T]) Len() int { return len(q.items) }

// Drain empties the queue and returns the items in (readyAt, seq) order.
func (q *ReadyQueue[T]) Drain() []T {
	out := make([]T, 0, len(q.items))
	for len(q.items) > 0 {
		best := 0
		for i := 1; i < len(q.items); i++ {
			if less(q.items[i], q.items[best]) {
				best = i
			}
		}
		out = append(out, q.items[best].v)
		q.items = append(q.items[:best], q.items[best+1:]...)
	}
	return out
}
