package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"dynaq/internal/telemetry/trace"
)

// WorkerConfig parameterizes one pull worker.
type WorkerConfig struct {
	// Coordinator is the dynaqd base URL (e.g. http://host:8080).
	Coordinator string
	// ID is the worker's self-chosen identity, shown in lease bookkeeping
	// and dead-letter entries.
	ID string
	// Version is this binary's build version. Grants from a coordinator at
	// a different version are refused (reported as a cell failure), because
	// the cache key the coordinator filed the cell under embeds its own
	// version.
	Version string
	// WorkDir is scratch space for in-progress artifact staging.
	WorkDir string
	// Poll is the idle wait between lease requests when the coordinator has
	// no work (and the fallback when it sends no Retry-After hint).
	// 0 selects 500ms.
	Poll time.Duration
	// Clock is the injected time source. nil selects WallClock.
	Clock Clock
	// Client issues the HTTP requests. nil selects http.DefaultClient.
	Client *http.Client
	// Log receives lifecycle lines; nil silences them.
	Log *log.Logger

	// DisableHeartbeat stops all lease renewals — a chaos knob that makes
	// the worker look dead to the coordinator while it keeps computing.
	DisableHeartbeat bool
	// BeforeComplete, when set, runs after the cell has been computed but
	// before the completion upload — a chaos hook for pausing a worker at
	// the most damaging instant.
	BeforeComplete func(g LeaseGrant)
}

// Worker is the pull loop behind cmd/dynaqworker: lease one cell, heartbeat
// while it runs, upload the artifact, repeat. All failure handling lives in
// the coordinator; the worker's whole contract is "hold a valid lease or
// stop mattering".
type Worker struct {
	cfg WorkerConfig

	// Cells counts completed uploads (successes the coordinator accepted),
	// readable after Run returns.
	Cells int
	// LostLeases counts uploads answered 410 Gone — the lease expired
	// under us, someone else owns the cell now.
	LostLeases int
}

// NewWorker builds a Worker; see WorkerConfig for defaults.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock{}
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = os.TempDir()
	}
	return &Worker{cfg: cfg}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Log != nil {
		w.cfg.Log.Printf(format, args...)
	}
}

// Run pulls and executes cells until ctx is cancelled. Transient transport
// errors back off by the poll interval and keep going; Run only returns
// ctx's error.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, wait, err := w.requestLease(ctx)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logf("lease request: %v", err)
			wait = w.cfg.Poll
		case grant != nil:
			w.runLease(ctx, *grant)
			continue
		}
		if wait <= 0 {
			wait = w.cfg.Poll
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-w.cfg.Clock.After(wait):
		}
	}
}

// requestLease asks for work. A nil grant with wait > 0 means "nothing to
// do, come back after wait" (204 or 503, honoring Retry-After).
func (w *Worker) requestLease(ctx context.Context) (*LeaseGrant, time.Duration, error) {
	body, _ := json.Marshal(LeaseRequest{Worker: w.cfg.ID})
	resp, err := w.post(ctx, "/v1/leases", body)
	if err != nil {
		return nil, 0, err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var g LeaseGrant
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxGrantBytes)).Decode(&g); err != nil {
			return nil, 0, fmt.Errorf("decoding grant: %w", err)
		}
		return &g, 0, nil
	case http.StatusNoContent, http.StatusServiceUnavailable:
		return nil, retryAfter(resp, w.cfg.Poll), nil
	default:
		return nil, 0, fmt.Errorf("lease request: unexpected status %s", resp.Status)
	}
}

// maxGrantBytes bounds a lease grant body: a scenario at its own limit plus
// envelope overhead.
const maxGrantBytes = 2 << 20

// retryAfter parses a Retry-After header (delta-seconds form); fallback
// when absent or unparseable.
func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}

// runLease executes one granted cell end to end: heartbeat goroutine, local
// run into scratch, completion upload, scratch cleanup.
func (w *Worker) runLease(ctx context.Context, g LeaseGrant) {
	w.logf("lease %s: cell %d (%s/seed %d) attempt %d", g.LeaseID, g.CellIndex, g.Scheme, g.Seed, g.Attempt)
	if g.Version != w.cfg.Version {
		w.complete(ctx, g, CompleteRequest{
			Worker:   w.cfg.ID,
			CacheKey: g.CacheKey,
			Error:    fmt.Sprintf("worker version %q does not match coordinator version %q", w.cfg.Version, g.Version),
		})
		return
	}

	hbCtx, hbStop := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	if !w.cfg.DisableHeartbeat {
		go func() { defer close(hbDone); w.heartbeat(hbCtx, g) }()
	} else {
		close(hbDone)
	}

	// The worker's spans ride back in the completion payload, parented
	// under the coordinator's span for this cell attempt. If the worker
	// dies here the spans die with it — the coordinator's side of the
	// trace shows the truncated lease.
	var tr *trace.Tracer
	var sp *trace.SpanRef
	if g.TraceID != "" {
		tr = trace.New(g.TraceID, "worker-"+w.cfg.ID, w.cfg.Clock)
		sp = tr.Start("execute", g.ParentSpan,
			trace.AInt("cell", int64(g.CellIndex)),
			trace.A("lease", g.LeaseID),
			trace.A("worker", w.cfg.ID),
			trace.AInt("attempt", int64(g.Attempt)))
	}

	dir := filepath.Join(w.cfg.WorkDir, "lease-"+g.LeaseID)
	os.RemoveAll(dir)
	man := CellManifest(g.Version, g.ScenarioHash, g.Scheme, g.Seed, g.CacheKey)
	_, runErr := RunCellTo(dir, g.Scenario, g.Scheme, g.Seed, man, nil, sp)
	hbStop()
	<-hbDone

	req := CompleteRequest{Worker: w.cfg.ID, CacheKey: g.CacheKey}
	if runErr != nil {
		req.Error = runErr.Error()
	} else if req.Files, runErr = readArtifacts(dir); runErr != nil {
		req.Error, req.Files = runErr.Error(), nil
	}
	if runErr != nil {
		sp.End(trace.A("error", runErr.Error()))
	} else {
		sp.End()
	}
	req.Spans = tr.JSONL()
	if w.cfg.BeforeComplete != nil {
		w.cfg.BeforeComplete(g)
	}
	w.complete(ctx, g, req)
	os.RemoveAll(dir)
}

// heartbeat renews the lease every TTL/3 until stopped; a 410 means the
// lease is lost and renewal is pointless (the upload will settle it).
func (w *Worker) heartbeat(ctx context.Context, g LeaseGrant) {
	interval := time.Duration(g.TTLMillis) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-w.cfg.Clock.After(interval):
		}
		resp, err := w.post(ctx, "/v1/leases/"+g.LeaseID+"/heartbeat", nil)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.logf("lease %s: heartbeat: %v", g.LeaseID, err)
			continue
		}
		code := resp.StatusCode
		drainClose(resp)
		if code == http.StatusGone || code == http.StatusNotFound {
			// Lost: the coordinator requeued the cell. Keep computing —
			// the completion upload is still absorbed content-addressed,
			// so whoever re-runs the cell cache-hits our bytes.
			w.logf("lease %s: lost (heartbeat answered %d)", g.LeaseID, code)
			return
		}
	}
}

// complete uploads the cell outcome. 410 means the lease lapsed first; the
// coordinator still absorbed any uploaded artifact into its cache, so the
// work is not wasted — the requeued attempt will cache-hit.
func (w *Worker) complete(ctx context.Context, g LeaseGrant, req CompleteRequest) {
	body, err := json.Marshal(req)
	if err != nil {
		w.logf("lease %s: encoding completion: %v", g.LeaseID, err)
		return
	}
	resp, err := w.post(ctx, "/v1/leases/"+g.LeaseID+"/complete", body)
	if err != nil {
		w.logf("lease %s: completion upload: %v", g.LeaseID, err)
		return
	}
	code := resp.StatusCode
	drainClose(resp)
	switch code {
	case http.StatusOK:
		w.Cells++
		w.logf("lease %s: completed (error=%q)", g.LeaseID, req.Error)
	case http.StatusGone:
		w.LostLeases++
		w.logf("lease %s: completion rejected, lease lost; artifact absorbed content-addressed", g.LeaseID)
	default:
		w.logf("lease %s: completion answered %d", g.LeaseID, code)
	}
}

// readArtifacts loads the flat artifact directory for upload.
func readArtifacts(dir string) (map[string][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	files := make(map[string][]byte, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		files[e.Name()] = data
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("artifact directory %s is empty", dir)
	}
	return files, nil
}

func (w *Worker) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.cfg.Client.Do(req)
}

// drainClose releases a response so the client connection can be reused.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
