// Package fleet holds the building blocks of dynaqd's fault-tolerant worker
// fleet: time-boxed leases renewed by heartbeat, capped exponential retry
// backoff with deterministic seeded jitter, a readiness queue for requeued
// cells, the wire types of the lease API, the shared cell-execution path,
// and the pull-based Worker loop behind cmd/dynaqworker.
//
// Failure is the default case: a worker is presumed dead the moment its
// lease expires, and the coordinator's only obligation is to hand the cell
// to someone else. What makes that cheap is the same property that makes
// dynaqd cacheable — a cell's artifact is a pure function of (scenario,
// scheme, seed, build version) — so a re-run after a lost worker is either
// a content-addressed cache hit or a byte-identical recomputation. The
// buffer-isolation analogy from the paper carries up a layer: like DynaQ's
// per-service-queue thresholds, leases and bounded retries let tenants
// share the worker pool without a wedged or malicious neighbor consuming
// it (a cell that keeps failing is quarantined to the dead-letter list
// after a bounded number of attempts, never retried hot).
//
// Nothing in this package reads the wall clock directly: every time-
// dependent decision (lease expiry, backoff readiness, heartbeat cadence)
// flows through an injected Clock, which is what lets the chaos harness
// drive lease expiry and retry timing deterministically and lets dynaqlint
// enforce the rule statically (internal/fleet is a strict-time package —
// time.Sleep/After/NewTimer and friends are banned outside the WallClock
// adapter below).
package fleet

import (
	"sync"
	"time"
)

// Clock is the injected time source for all fleet logic. Production code
// passes WallClock; tests and the chaos harness pass a ManualClock to make
// lease expiry and backoff readiness explicit, stepped events.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// After returns a channel that delivers one value once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// WallClock is the production Clock: the host's real time. It is the single
// sanctioned wall-clock read of the fleet layer; everything downstream of
// the interface stays deterministic under an injected clock.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time {
	return time.Now() //dynaqlint:allow determinism WallClock is the one audited edge adapter behind the injected fleet.Clock
}

// After implements Clock.
func (WallClock) After(d time.Duration) <-chan time.Time {
	return time.After(d) //dynaqlint:allow determinism WallClock is the one audited edge adapter behind the injected fleet.Clock
}

// ManualClock is a stepped Clock for tests: Now returns a programmed
// instant and After waiters fire when Advance moves the clock past their
// deadline. An After whose deadline is already in the past fires
// immediately, so loops that re-arm timers cannot miss an Advance that
// happened between arming.
type ManualClock struct {
	mu      sync.Mutex
	now     time.Time      // guarded by mu
	waiters []manualWaiter // guarded by mu
}

type manualWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewManualClock returns a ManualClock starting at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock.
func (c *ManualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	at := c.now.Add(d)
	if d <= 0 {
		ch <- c.now
	} else {
		c.waiters = append(c.waiters, manualWaiter{at: at, ch: ch})
	}
	c.mu.Unlock()
	return ch
}

// Advance moves the clock forward by d and fires every waiter whose
// deadline has been reached.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	kept := c.waiters[:0]
	var fire []chan time.Time
	for _, w := range c.waiters {
		if !w.at.After(now) {
			fire = append(fire, w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
	c.mu.Unlock()
	for _, ch := range fire {
		ch <- now
	}
}
