package fleet

import (
	"fmt"
	"sort"
	"time"
)

// Lease is one worker's time-boxed claim on one cell. The coordinator owns
// the authoritative copy; the worker only ever sees the ID and the TTL it
// must renew within.
type Lease struct {
	// ID is the renewal/completion handle handed to the worker.
	ID string
	// Key is the cell's content address (cache key); one cell has at most
	// one live lease.
	Key string
	// JobID names the job the cell belongs to.
	JobID string
	// Worker is the claiming worker's self-reported identity.
	Worker string
	// Attempt is the 1-based run count this lease represents.
	Attempt int
	// Expiry is when the lease lapses unless renewed; past it the cell is
	// requeued and a completion under this ID is answered 410 Gone.
	Expiry time.Time
}

// Table tracks the live leases of one coordinator. It is pure bookkeeping —
// no goroutines, no clock reads, no locks — so the caller (which holds its
// own mutex) decides exactly when time passes, and tests can step it.
type Table struct {
	seq    int
	byID   map[string]*Lease
	byKey  map[string]*Lease
	issued int
}

// NewTable returns an empty lease table.
func NewTable() *Table {
	return &Table{byID: make(map[string]*Lease), byKey: make(map[string]*Lease)}
}

// Grant claims key for worker until now+ttl and returns the new lease. The
// caller must not grant a key that is already leased; Grant panics on that
// programming error rather than silently double-leasing a cell.
func (t *Table) Grant(key, jobID, worker string, attempt int, now time.Time, ttl time.Duration) *Lease {
	if _, live := t.byKey[key]; live {
		panic("fleet: Grant on an already-leased key " + key)
	}
	t.seq++
	l := &Lease{
		ID:      fmt.Sprintf("l%08d-%s", t.seq, shortKey(key)),
		Key:     key,
		JobID:   jobID,
		Worker:  worker,
		Attempt: attempt,
		Expiry:  now.Add(ttl),
	}
	t.byID[l.ID] = l
	t.byKey[key] = l
	t.issued++
	return l
}

// shortKey keeps lease IDs readable without assuming a minimum key length.
func shortKey(key string) string {
	if len(key) > 8 {
		return key[:8]
	}
	return key
}

// Leased reports whether key has a live lease. The fair-queue dispatcher
// uses it as an eligibility check so two jobs sharing a cache key (possible
// across tenants, whose job IDs differ but whose cells do not) never race
// Grant into its double-lease panic.
func (t *Table) Leased(key string) bool {
	_, live := t.byKey[key]
	return live
}

// Renew extends a live lease to now+ttl. It returns false when the lease is
// unknown — expired and swept, completed, or never issued — in which case
// the worker has lost the cell.
func (t *Table) Renew(id string, now time.Time, ttl time.Duration) (*Lease, bool) {
	l, ok := t.byID[id]
	if !ok {
		return nil, false
	}
	l.Expiry = now.Add(ttl)
	return l, true
}

// Complete removes a live lease and returns it; false means the lease had
// already lapsed (its cell belongs to someone else now).
func (t *Table) Complete(id string) (*Lease, bool) {
	l, ok := t.byID[id]
	if !ok {
		return nil, false
	}
	t.drop(l)
	return l, true
}

// Expire removes and returns every lease whose expiry is at or before now,
// in grant order (deterministic for a given history). IDs embed the
// zero-padded grant sequence, so sorted ID order is grant order.
func (t *Table) Expire(now time.Time) []*Lease {
	ids := make([]string, 0, len(t.byID))
	for id := range t.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var dead []*Lease
	for _, id := range ids {
		if l := t.byID[id]; !l.Expiry.After(now) {
			dead = append(dead, l)
			t.drop(l)
		}
	}
	return dead
}

// DropJob removes every lease belonging to jobID (job cancelled or
// requeued at shutdown) and returns how many were dropped.
func (t *Table) DropJob(jobID string) int {
	n := 0
	for _, l := range t.byID {
		if l.JobID == jobID {
			t.drop(l)
			n++
		}
	}
	return n
}

// NextExpiry returns the earliest live expiry; ok is false when no leases
// are live.
func (t *Table) NextExpiry() (time.Time, bool) {
	var min time.Time
	found := false
	for _, l := range t.byID {
		if !found || l.Expiry.Before(min) {
			min = l.Expiry
			found = true
		}
	}
	return min, found
}

// Len returns the number of live leases.
func (t *Table) Len() int { return len(t.byID) }

// PerWorker counts live leases by worker id — the occupancy view dynaqtop
// renders per worker.
func (t *Table) PerWorker() map[string]int {
	out := make(map[string]int, len(t.byID))
	for _, l := range t.byID {
		out[l.Worker]++
	}
	return out
}

func (t *Table) drop(l *Lease) {
	delete(t.byID, l.ID)
	delete(t.byKey, l.Key)
}
