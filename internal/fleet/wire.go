package fleet

import "encoding/json"

// Wire types of the lease API. The coordinator (internal/server) serves
// them; Worker and any external puller consume them.
//
//	POST /v1/leases                    LeaseRequest → 200 LeaseGrant | 204 (no work, Retry-After hint)
//	POST /v1/leases/{id}/heartbeat     → 200 HeartbeatResponse | 410 (lease lost)
//	POST /v1/leases/{id}/complete      CompleteRequest → 200 | 410 (lease lost; artifacts still absorbed)
//	GET  /v1/deadletter                → DeadLetterList
//	POST /v1/deadletter/requeue        RequeueRequest → RequeueResponse

// LeaseRequest asks the coordinator for one cell of work. Worker is the
// puller's self-chosen identity; polling alone registers it as an active
// worker, which is what switches the coordinator out of local-execution
// fallback.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseGrant hands one cell to a worker: everything needed to run it
// (scenario document plus out-of-band scheme/seed overrides), the lease
// handle to renew and complete under, and the coordinator's build version,
// which the worker must match — a mismatched binary would upload artifacts
// that contradict the cache key's version component.
type LeaseGrant struct {
	LeaseID      string          `json:"lease_id"`
	JobID        string          `json:"job_id"`
	CellIndex    int             `json:"cell_index"`
	CacheKey     string          `json:"cache_key"`
	Scheme       string          `json:"scheme"`
	Seed         int64           `json:"seed"`
	Attempt      int             `json:"attempt"`
	TTLMillis    int64           `json:"ttl_ms"`
	Version      string          `json:"version"`
	ScenarioHash string          `json:"scenario_hash"`
	Scenario     json.RawMessage `json:"scenario"`
	// TraceID/ParentSpan propagate the job's trace across the lease
	// boundary: the worker parents its execution spans under ParentSpan
	// (the coordinator's span for this cell attempt) and ships them back
	// in CompleteRequest.Spans. Empty when the job carries no trace.
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan string `json:"parent_span,omitempty"`
}

// HeartbeatResponse acknowledges a renewal and restates the TTL the worker
// must renew within.
type HeartbeatResponse struct {
	TTLMillis int64 `json:"ttl_ms"`
}

// CompleteRequest reports the outcome of a leased cell. On success Files
// carries the artifact directory contents (name → bytes; JSON base64s the
// values); on failure Error carries the reason and Files is empty.
// CacheKey restates the grant's content address so the coordinator can
// absorb the artifact even after the lease itself has expired and been
// forgotten — a late upload is still the right bytes for that key.
type CompleteRequest struct {
	Worker   string            `json:"worker"`
	CacheKey string            `json:"cache_key"`
	Error    string            `json:"error,omitempty"`
	Files    map[string][]byte `json:"files,omitempty"`
	// Spans is the worker's span log for this lease in trace JSONL form.
	// It rides beside Files — never inside — because spans carry wall
	// time: the coordinator absorbs them into the job's trace, while
	// Files alone feed the content-addressed cache, keeping cached
	// artifacts byte-identical whether or not tracing was on.
	Spans []byte `json:"spans_jsonl,omitempty"`
}

// DeadLetterEntry is one quarantined cell: it exhausted the coordinator's
// max attempts and will not be retried until explicitly requeued. The entry
// carries everything needed to find the owning job's persisted request and
// re-run the cell.
type DeadLetterEntry struct {
	CacheKey   string `json:"cache_key"`
	JobID      string `json:"job_id"`
	CellIndex  int    `json:"cell_index"`
	Scheme     string `json:"scheme"`
	Seed       int64  `json:"seed"`
	Attempts   int    `json:"attempts"`
	LastError  string `json:"last_error"`
	LastWorker string `json:"last_worker,omitempty"`
	// Tenant names the owning job's tenant so a requeue lands the rebuilt
	// job back in the right fair-queue leaf. Entries persisted before
	// tenancy existed decode as "" and requeue under the default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// DeadLetterList is the GET /v1/deadletter body.
type DeadLetterList struct {
	Cells []DeadLetterEntry `json:"cells"`
}

// RequeueRequest selects quarantined cells to put back in play. An empty
// Keys requeues everything.
type RequeueRequest struct {
	Keys []string `json:"keys,omitempty"`
}

// RequeueResponse reports which jobs were re-enqueued (a requeued cell
// re-enters as a resubmission of its owning job; finished sibling cells
// come back as cache hits).
type RequeueResponse struct {
	Requeued []string `json:"requeued_jobs"`
	Dropped  []string `json:"dropped_keys,omitempty"`
}
