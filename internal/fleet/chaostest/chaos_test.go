// Package chaostest is the in-process chaos harness for the dynaqd fleet:
// a real coordinator (internal/server) plus real pull workers
// (internal/fleet), with failures injected on purpose — workers killed
// mid-cell, heartbeats dropped so leases expire under live computations,
// and a coordinator brought up over the debris a crash mid-promotion
// leaves behind.
//
// The harness asserts the property the whole design leans on: chaos may
// change *when* and *where* a cell runs, but never *what* it produces.
// Every submitted job reaches a terminal state, no cell is charged more
// than the configured attempt budget, and the final artifacts are
// byte-identical to an undisturbed single-node run.
//
// Everything here lives in _test.go files deliberately: the package has no
// buildable (non-test) sources, so it is invisible to `go build ./...` and
// to dynaqlint's package expansion, and its free use of wall-clock timing
// for assertions needs no suppression directives.
package chaostest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dynaq/internal/fleet"
	"dynaq/internal/server"
	"dynaq/internal/telemetry"
)

// chaosScenario is tiny (50 simulated ms) so single cells finish fast and
// the harness can afford many retries inside a test timeout.
const chaosScenario = `{"kind":"static","scheme":"BestEffort","rate_gbps":1,"buffer_bytes":30000,"queues":2,"rtt_us":100,"duration_s":0.05,"sample_ms":10,"seed":1,"specs":[{"class":0,"flows":2}]}`

// chaosSweep expands a longer scenario (250 simulated ms) into 2 schemes ×
// 6 seeds = 12 cells, so individual cells take long enough that worker
// kills land mid-lease rather than between cells.
const chaosSweep = `{"scenario":{"kind":"static","scheme":"BestEffort","rate_gbps":1,"buffer_bytes":30000,"queues":2,"rtt_us":100,"duration_s":0.25,"sample_ms":10,"seed":1,"specs":[{"class":0,"flows":4}]},"schemes":["BestEffort","DynaQ"],"seeds":[1,2,3,4,5,6]}`

const chaosVersion = "chaos-v1"

func startCoordinator(t *testing.T, mutate func(*server.Config)) (*server.Server, *httptest.Server) {
	t.Helper()
	cfg := server.Config{
		DataDir:     t.TempDir(),
		QueueDepth:  8,
		Concurrency: 2,
		Version:     chaosVersion,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// startDraining starts the coordinator's drain/expiry loops and registers a
// bounded shutdown.
func startDraining(t *testing.T, s *server.Server) {
	t.Helper()
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
}

func submit(t *testing.T, ts *httptest.Server, body string) server.JobStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, data)
	}
	var st server.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding submit response: %v\n%s", err, data)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) server.JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st server.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding status: %v\n%s", err, data)
	}
	return st
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == server.StateDone || st.State == server.StateFailed {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state within %s: %+v", id, timeout, getStatus(t, ts, id))
	return server.JobStatus{}
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// readDirBytes loads every file of one artifact directory.
func readDirBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir %s: %v", dir, err)
	}
	files := make(map[string][]byte, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = data
	}
	return files
}

// snapshotArtifacts maps "scheme/seed" → artifact file bytes for a done job.
func snapshotArtifacts(t *testing.T, st server.JobStatus) map[string]map[string][]byte {
	t.Helper()
	out := make(map[string]map[string][]byte, len(st.Cells))
	for _, c := range st.Cells {
		out[fmt.Sprintf("%s/%d", c.Scheme, c.Seed)] = readDirBytes(t, c.ArtifactDir)
	}
	return out
}

// diffSnapshots asserts two artifact snapshots are byte-identical.
func diffSnapshots(t *testing.T, want, got map[string]map[string][]byte) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("cell sets differ: %d vs %d cells", len(want), len(got))
	}
	for cell, wantFiles := range want {
		gotFiles, ok := got[cell]
		if !ok {
			t.Errorf("cell %s missing from chaos run", cell)
			continue
		}
		if len(wantFiles) != len(gotFiles) {
			t.Errorf("cell %s: file sets differ: %d vs %d files", cell, len(wantFiles), len(gotFiles))
			continue
		}
		for name, wantBytes := range wantFiles {
			if !bytes.Equal(wantBytes, gotFiles[name]) {
				t.Errorf("cell %s: %s differs from undisturbed run (%d vs %d bytes)", cell, name, len(wantBytes), len(gotFiles[name]))
			}
		}
	}
}

// tlogWriter routes worker lifecycle lines into the test log so a failing
// chaos run carries its own narrative.
type tlogWriter struct {
	t *testing.T
}

func (w tlogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// leaseAs is a hand-rolled puller for the deterministic scenarios: one
// lease request for the named worker; nil means 204 (registered, no work).
func leaseAs(t *testing.T, ts *httptest.Server, worker string) *fleet.LeaseGrant {
	t.Helper()
	body, _ := json.Marshal(fleet.LeaseRequest{Worker: worker})
	resp, err := http.Post(ts.URL+"/v1/leases", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var g fleet.LeaseGrant
		if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
			t.Fatalf("decoding grant: %v", err)
		}
		return &g
	case http.StatusNoContent:
		io.Copy(io.Discard, resp.Body)
		return nil
	default:
		t.Fatalf("lease request status = %d", resp.StatusCode)
		return nil
	}
}

func postComplete(t *testing.T, ts *httptest.Server, leaseID string, req fleet.CompleteRequest) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/leases/"+leaseID+"/complete", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func deadLetterLen(t *testing.T, ts *httptest.Server) int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/deadletter")
	if err != nil {
		t.Fatal(err)
	}
	var list fleet.DeadLetterList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return len(list.Cells)
}

// TestChaosConvergence is the storm: a coordinator with short leases, one
// steady worker, one worker that never heartbeats (its leases expire under
// live computations, so its uploads land on dead leases), and a seeded
// sequence of short-lived workers killed abruptly mid-lease. The sweep must
// still terminate with every cell done within its attempt budget, nothing
// quarantined, and artifacts byte-identical to an undisturbed single-node
// run of the same sweep.
func TestChaosConvergence(t *testing.T) {
	const maxAttempts = 16

	// Undisturbed reference: same sweep, same version, no workers — the
	// coordinator's local pool computes everything.
	baseS, baseTS := startCoordinator(t, nil)
	startDraining(t, baseS)
	baseSt := submit(t, baseTS, chaosSweep)
	baseDone := waitTerminal(t, baseTS, baseSt.ID, 60*time.Second)
	if baseDone.State != server.StateDone {
		t.Fatalf("baseline run = %s (err %q), want done", baseDone.State, baseDone.Error)
	}
	baseline := snapshotArtifacts(t, baseDone)

	// Chaos coordinator: leases expire fast, retries are cheap.
	chaosS, ts := startCoordinator(t, func(c *server.Config) {
		c.LeaseTTL = 300 * time.Millisecond
		c.MaxAttempts = maxAttempts
		c.RetryBase = 2 * time.Millisecond
		c.RetryCap = 40 * time.Millisecond
	})
	startDraining(t, chaosS)

	logger := log.New(tlogWriter{t}, "", 0)
	rootCtx, rootCancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() { rootCancel(); wg.Wait() }()
	startWorker := func(ctx context.Context, id string, poll time.Duration, mute bool) {
		w := fleet.NewWorker(fleet.WorkerConfig{
			Coordinator:      ts.URL,
			ID:               id,
			Version:          chaosVersion,
			WorkDir:          filepath.Join(t.TempDir(), id),
			Poll:             poll,
			Log:              logger,
			DisableHeartbeat: mute,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}

	// The survivors: one well-behaved worker and one that computes fine but
	// never renews its leases.
	startWorker(rootCtx, "steady", 5*time.Millisecond, false)
	startWorker(rootCtx, "mute", 7*time.Millisecond, true)

	// The casualties: a seeded sequence of workers killed abruptly (context
	// cancel — the in-process equivalent of SIGKILL: no completion, no
	// farewell heartbeat, any held lease left to expire). The seed makes the
	// kill schedule reproducible; the *interleaving* with real execution is
	// not, which is exactly the point — the assertions below must hold for
	// every interleaving.
	jobDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 12; i++ {
			mctx, mcancel := context.WithCancel(rootCtx)
			startWorker(mctx, fmt.Sprintf("mortal-%02d", i), 3*time.Millisecond, false)
			select {
			case <-time.After(time.Duration(20+rng.Intn(80)) * time.Millisecond):
			case <-jobDone:
				mcancel()
				return
			case <-rootCtx.Done():
				mcancel()
				return
			}
			mcancel()
		}
	}()

	st := submit(t, ts, chaosSweep)
	done := waitTerminal(t, ts, st.ID, 120*time.Second)
	close(jobDone)

	if done.State != server.StateDone {
		t.Fatalf("chaos run = %s (err %q), want done", done.State, done.Error)
	}
	for _, c := range done.Cells {
		if c.State != server.StateDone {
			t.Errorf("cell %s/%d ended %s, want done", c.Scheme, c.Seed, c.State)
		}
		if c.Attempts > maxAttempts {
			t.Errorf("cell %s/%d charged %d attempts, budget is %d", c.Scheme, c.Seed, c.Attempts, maxAttempts)
		}
	}
	if n := deadLetterLen(t, ts); n != 0 {
		t.Errorf("dead-letter list has %d cells after a convergent run, want 0", n)
	}

	// Not asserted (the interleaving is timing-dependent), but logged so a
	// chaos run carries evidence of how much the fault machinery fired.
	resp, err := http.Get(ts.URL + "/metrics")
	if err == nil {
		metrics, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, line := range bytes.Split(metrics, []byte("\n")) {
			if bytes.Contains(line, []byte("lease")) || bytes.Contains(line, []byte("retr")) || bytes.Contains(line, []byte("cells_")) {
				t.Logf("%s", line)
			}
		}
	}

	// The property under test: chaos moved the work around but the bytes
	// are exactly the undisturbed run's bytes.
	diffSnapshots(t, baseline, snapshotArtifacts(t, done))
}

// TestStaleUploadAbsorbed pins the expired-lease upload contract, fully
// deterministically under a ManualClock: a worker that stops heartbeating
// loses its lease (the cell is requeued and charged one attempt), its late
// upload is answered 410 Gone — but the artifact is absorbed into the
// content-addressed cache first, so the retry never recomputes.
func TestStaleUploadAbsorbed(t *testing.T) {
	mc := fleet.NewManualClock(time.Unix(1_700_000_000, 0))
	const ttl = 10 * time.Second
	ghostS, ts := startCoordinator(t, func(c *server.Config) {
		c.Concurrency = 1
		c.LeaseTTL = ttl
		c.RetryBase = time.Second
		c.RetryCap = 4 * time.Second
		c.Clock = mc
	})
	startDraining(t, ghostS)

	// Register the ghost worker before submitting so the local pool stands
	// down (with a frozen clock it would stand down forever anyway — the
	// ghost's last-seen instant never ages).
	if g := leaseAs(t, ts, "ghost"); g != nil {
		t.Fatalf("unexpected grant before any submission: %+v", g)
	}
	st := submit(t, ts, chaosScenario)

	var g *fleet.LeaseGrant
	waitUntil(t, 10*time.Second, "first lease grant", func() bool {
		g = leaseAs(t, ts, "ghost")
		return g != nil
	})
	if g.Attempt != 1 {
		t.Fatalf("first grant attempt = %d, want 1", g.Attempt)
	}

	// The ghost computes the cell for real (shared execution path) but
	// never heartbeats.
	work := filepath.Join(t.TempDir(), "ghost-cell")
	man := fleet.CellManifest(g.Version, g.ScenarioHash, g.Scheme, g.Seed, g.CacheKey)
	if _, err := fleet.RunCellTo(work, g.Scenario, g.Scheme, g.Seed, man, nil, nil); err != nil {
		t.Fatalf("ghost RunCellTo: %v", err)
	}
	files := readDirBytes(t, work)

	// Step time past the TTL: the expiry scan declares the ghost dead,
	// requeues the cell, and charges the attempt.
	mc.Advance(ttl + ttl/4 + time.Second)
	waitUntil(t, 10*time.Second, "lease expiry to requeue the cell", func() bool {
		c := getStatus(t, ts, st.ID).Cells[0]
		return c.State == server.StateQueued && c.Attempts == 1
	})

	// The late upload: lease gone → 410, artifact absorbed regardless.
	code := postComplete(t, ts, g.LeaseID, fleet.CompleteRequest{
		Worker: "ghost", CacheKey: g.CacheKey, Files: files,
	})
	if code != http.StatusGone {
		t.Fatalf("late completion status = %d, want 410", code)
	}

	// Step past the retry backoff; the requeued attempt is granted again,
	// and this time the ghost completes empty-handed — the absorbed
	// artifact already satisfies the cache key.
	mc.Advance(5 * time.Second)
	var g2 *fleet.LeaseGrant
	waitUntil(t, 10*time.Second, "retry lease grant", func() bool {
		g2 = leaseAs(t, ts, "ghost")
		return g2 != nil
	})
	if g2.Attempt != 2 {
		t.Fatalf("retry grant attempt = %d, want 2", g2.Attempt)
	}
	if code := postComplete(t, ts, g2.LeaseID, fleet.CompleteRequest{
		Worker: "ghost", CacheKey: g2.CacheKey,
	}); code != http.StatusOK {
		t.Fatalf("retry completion status = %d, want 200", code)
	}

	done := waitTerminal(t, ts, st.ID, 10*time.Second)
	if done.State != server.StateDone {
		t.Fatalf("job = %s (err %q), want done", done.State, done.Error)
	}
	c := done.Cells[0]
	if c.Attempts != 1 || c.Worker != "ghost" {
		t.Fatalf("cell = %+v, want 1 charged attempt by ghost", c)
	}
	// Byte identity: the cached artifact IS the ghost's late upload.
	got := readDirBytes(t, c.ArtifactDir)
	if len(got) != len(files) {
		t.Fatalf("absorbed artifact has %d files, upload had %d", len(got), len(files))
	}
	for name, want := range files {
		if !bytes.Equal(want, got[name]) {
			t.Errorf("%s: absorbed bytes differ from the late upload", name)
		}
	}
	if n := deadLetterLen(t, ts); n != 0 {
		t.Errorf("dead-letter list has %d cells, want 0", n)
	}
}

// TestCoordinatorCrashRecovery boots a coordinator over the exact debris a
// crash mid-promotion leaves behind: a persisted queue marker for a job
// that never ran, plus a half-written artifact directory under tmp/ for one
// of that job's real cache keys. The recovered coordinator must sweep the
// torn directory, re-run the job from the persisted request, and produce
// artifacts byte-identical to an undisturbed run.
func TestCoordinatorCrashRecovery(t *testing.T) {
	baseS, baseTS := startCoordinator(t, nil)
	startDraining(t, baseS)
	baseDone := waitTerminal(t, baseTS, submit(t, baseTS, chaosSweep).ID, 60*time.Second)
	if baseDone.State != server.StateDone {
		t.Fatalf("baseline run = %s, want done", baseDone.State)
	}
	baseline := snapshotArtifacts(t, baseDone)

	// First life: accept the job but never start the drainer — the moral
	// equivalent of a coordinator killed right after persisting the queue
	// marker. Then fake the torn promotion by hand.
	dataDir := t.TempDir()
	cfg := server.Config{DataDir: dataDir, QueueDepth: 8, Concurrency: 2, Version: chaosVersion}
	s1, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts1 := httptest.NewServer(s1)
	st := submit(t, ts1, chaosSweep)
	if st.State != server.StateQueued {
		t.Fatalf("job state before crash = %s, want queued", st.State)
	}
	torn := filepath.Join(dataDir, "tmp", st.Cells[0].CacheKey)
	if err := os.MkdirAll(torn, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(torn, telemetry.EventsFile), []byte(`{"kind":"arr`), 0o644); err != nil {
		t.Fatal(err)
	}
	ts1.Close() // the "crash": no Shutdown, no drain

	// Second life over the same tree: sweep, recover, finish.
	s2, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New (recovery): %v", err)
	}
	ts2 := httptest.NewServer(s2)
	t.Cleanup(ts2.Close)
	if entries, err := os.ReadDir(filepath.Join(dataDir, "tmp")); err != nil || len(entries) != 0 {
		t.Fatalf("torn tmp dir not swept at recovery: %v entries, err %v", len(entries), err)
	}
	if got := getStatus(t, ts2, st.ID); got.State != server.StateQueued {
		t.Fatalf("recovered job = %s, want queued", got.State)
	}
	s2.Start()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	defer s2.Shutdown(sctx)

	done := waitTerminal(t, ts2, st.ID, 60*time.Second)
	if done.State != server.StateDone {
		t.Fatalf("recovered run = %s (err %q), want done", done.State, done.Error)
	}
	diffSnapshots(t, baseline, snapshotArtifacts(t, done))
}
