package fleet

import (
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestManualClock(t *testing.T) {
	c := NewManualClock(t0)
	if !c.Now().Equal(t0) {
		t.Fatalf("Now = %v, want %v", c.Now(), t0)
	}
	ch := c.After(10 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	c.Advance(5 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("After fired before its deadline")
	default:
	}
	c.Advance(5 * time.Millisecond)
	select {
	case at := <-ch:
		if !at.Equal(t0.Add(10 * time.Millisecond)) {
			t.Fatalf("fired at %v, want %v", at, t0.Add(10*time.Millisecond))
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}

	// A non-positive delay fires immediately: re-arming loops cannot miss
	// an Advance that happened while they were not waiting.
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestLeaseTable(t *testing.T) {
	tab := NewTable()
	ttl := 100 * time.Millisecond
	l := tab.Grant("key-aaaa-1", "job1", "w1", 1, t0, ttl)
	if l.Expiry != t0.Add(ttl) {
		t.Fatalf("expiry = %v, want %v", l.Expiry, t0.Add(ttl))
	}
	if tab.Len() != 1 {
		t.Fatalf("len = %d", tab.Len())
	}

	// Renewal pushes the expiry out; the lease survives the original TTL.
	if _, ok := tab.Renew(l.ID, t0.Add(50*time.Millisecond), ttl); !ok {
		t.Fatal("renew of a live lease failed")
	}
	if dead := tab.Expire(t0.Add(ttl)); len(dead) != 0 {
		t.Fatalf("renewed lease expired: %v", dead)
	}
	if dead := tab.Expire(t0.Add(150 * time.Millisecond)); len(dead) != 1 || dead[0].ID != l.ID {
		t.Fatalf("expire = %v, want exactly %s", dead, l.ID)
	}
	// Expired means gone: renew and complete both fail.
	if _, ok := tab.Renew(l.ID, t0, ttl); ok {
		t.Fatal("renewed an expired lease")
	}
	if _, ok := tab.Complete(l.ID); ok {
		t.Fatal("completed an expired lease")
	}

	// Completion removes; a second completion is stale.
	l2 := tab.Grant("key-bbbb-2", "job1", "w1", 1, t0, ttl)
	if got, ok := tab.Complete(l2.ID); !ok || got.Key != "key-bbbb-2" {
		t.Fatalf("complete = %v %v", got, ok)
	}
	if _, ok := tab.Complete(l2.ID); ok {
		t.Fatal("double-completed a lease")
	}

	// Expire returns grant order even with several lapsed at once.
	a := tab.Grant("key-a", "job2", "w1", 1, t0, ttl)
	b := tab.Grant("key-b", "job2", "w2", 1, t0, ttl)
	dead := tab.Expire(t0.Add(2 * ttl))
	if len(dead) != 2 || dead[0].ID != a.ID || dead[1].ID != b.ID {
		t.Fatalf("expire order = %v, want [%s %s]", dead, a.ID, b.ID)
	}

	// DropJob clears a job's leases only.
	tab.Grant("key-c", "job3", "w1", 1, t0, ttl)
	tab.Grant("key-d", "job4", "w1", 1, t0, ttl)
	if n := tab.DropJob("job3"); n != 1 || tab.Len() != 1 {
		t.Fatalf("DropJob = %d, len = %d", n, tab.Len())
	}
}

func TestGrantPanicsOnLiveKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double-grant did not panic")
		}
	}()
	tab := NewTable()
	tab.Grant("k", "j", "w1", 1, t0, time.Second)
	tab.Grant("k", "j", "w2", 1, t0, time.Second)
}

func TestBackoffDeterministicCappedJitter(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second}
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := b.Delay("cell-key", attempt)
		d2 := b.Delay("cell-key", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic (%v vs %v)", attempt, d1, d2)
		}
		window := 100 * time.Millisecond << (attempt - 1)
		if window > time.Second {
			window = time.Second
		}
		if d1 < window/2 || d1 > window {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d1, window/2, window)
		}
	}
	// Different cells jitter apart (the point of jitter).
	if b.Delay("cell-one", 3) == b.Delay("cell-two", 3) {
		t.Fatal("distinct keys produced identical jitter (suspicious seed derivation)")
	}
	// Zero-value policy still produces sane defaults.
	if d := (Backoff{}).Delay("k", 1); d < 125*time.Millisecond || d > 250*time.Millisecond {
		t.Fatalf("default delay = %v, want within [125ms, 250ms]", d)
	}
}

func TestReadyQueueOrder(t *testing.T) {
	var q ReadyQueue[string]
	q.Push("late", t0.Add(time.Second))
	q.Push("first", t0)
	q.Push("second", t0)

	// FIFO among equally-ready items; not-yet-ready items held back.
	if v, ok := q.Pop(t0); !ok || v != "first" {
		t.Fatalf("pop = %q %v, want first", v, ok)
	}
	if v, ok := q.Pop(t0); !ok || v != "second" {
		t.Fatalf("pop = %q %v, want second", v, ok)
	}
	if _, ok := q.Pop(t0); ok {
		t.Fatal("popped an item before its readyAt")
	}
	if at, ok := q.NextAt(); !ok || !at.Equal(t0.Add(time.Second)) {
		t.Fatalf("NextAt = %v %v", at, ok)
	}
	if v, ok := q.Pop(t0.Add(time.Second)); !ok || v != "late" {
		t.Fatalf("pop = %q %v, want late", v, ok)
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d", q.Len())
	}

	// An earlier readyAt beats insertion order once both are ready.
	q.Push("b", t0.Add(20*time.Millisecond))
	q.Push("a", t0.Add(10*time.Millisecond))
	if got := q.Drain(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("drain = %v, want [a b]", got)
	}
}
