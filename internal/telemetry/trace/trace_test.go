package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"dynaq/internal/units"
)

// stepClock is a deterministic Clock that advances 1ms per Now call.
type stepClock struct {
	t time.Time
}

func (c *stepClock) Now() time.Time {
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func newTestTracer() *Tracer {
	return New("t-1", "coordinator", &stepClock{t: time.Unix(1000, 0)})
}

func TestSpanLifecycle(t *testing.T) {
	tr := newTestTracer()
	root := tr.Start("job", "", A("job", "j1"))
	queue := root.Child("queue-wait")
	queue.Event("requeued", AInt("attempt", 2))
	queue.End()
	root.End(A("state", "done"))

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "job" || spans[1].Name != "queue-wait" {
		t.Fatalf("unexpected order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatalf("child parent = %q, want %q", spans[1].Parent, spans[0].ID)
	}
	if len(spans[1].Events) != 1 || spans[1].Events[0].Name != "requeued" {
		t.Fatalf("child events = %+v", spans[1].Events)
	}
	if err := Validate(spans); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if got := tr.TraceID(); got != "" {
		t.Fatalf("nil TraceID = %q", got)
	}
	sp := tr.Start("x", "")
	sp.Event("e")
	sp.Annotate(A("k", "v"))
	sp.SimSpan("s", 0, 1)
	child := sp.Child("c")
	child.End()
	sp.End()
	if sp.ID() != "" || sp.Tracer() != nil {
		t.Fatal("nil SpanRef leaked identity")
	}
	tr.Absorb([]Span{{ID: "a"}})
	tr.EndOpen()
	if tr.Snapshot() != nil || tr.JSONL() != nil {
		t.Fatal("nil Tracer produced spans")
	}
	if tr.SimSpan("s", "", 0, 1) != "" || tr.WallSpan("w", "", time.Unix(0, 0), time.Unix(1, 0)) != "" {
		t.Fatal("nil Tracer returned span ids")
	}
}

func TestSimSpanDomain(t *testing.T) {
	tr := newTestTracer()
	root := tr.Start("run", "")
	simRoot := root.SimSpan("sim", 0, units.Time(5*units.Millisecond))
	tr.SimSpan("warmup", simRoot, 0, units.Time(units.Millisecond))
	root.End()

	spans := tr.Snapshot()
	var sim, warm *Span
	for i := range spans {
		switch spans[i].Name {
		case "sim":
			sim = &spans[i]
		case "warmup":
			warm = &spans[i]
		}
	}
	if sim == nil || warm == nil {
		t.Fatalf("missing sim spans: %+v", spans)
	}
	if sim.Domain != DomainSim || warm.Domain != DomainSim {
		t.Fatalf("domains: %q, %q", sim.Domain, warm.Domain)
	}
	if sim.End != int64(5*units.Millisecond) {
		t.Fatalf("sim end = %d", sim.End)
	}
	if warm.Parent != sim.ID {
		t.Fatalf("warmup parent = %q, want %q", warm.Parent, sim.ID)
	}
	if err := Validate(spans); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestEndOpenTruncates(t *testing.T) {
	tr := newTestTracer()
	root := tr.Start("job", "")
	cell := root.Child("cell", A("cell", "0"))
	_ = cell // never ended: simulates a worker killed mid-lease
	tr.EndOpen()

	spans := tr.Snapshot()
	if err := Validate(spans); err != nil {
		t.Fatalf("Validate after EndOpen: %v", err)
	}
	found := false
	for _, s := range spans {
		if s.Name == "cell" {
			found = true
			if len(s.Events) == 0 || s.Events[len(s.Events)-1].Name != "truncated" {
				t.Fatalf("truncated span missing truncated event: %+v", s.Events)
			}
		}
		if s.End == 0 {
			t.Fatalf("span %s still open after EndOpen", s.ID)
		}
	}
	if !found {
		t.Fatal("cell span missing")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := newTestTracer()
	root := tr.Start("job", "", A("job", "j1"))
	c := root.Child("cell", A("cell", "3"))
	c.Event("lease-expired")
	c.End()
	root.SimSpan("sim", 0, 42)
	root.End()

	raw := tr.JSONL()
	spans, err := ParseJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ParseJSONL: %v", err)
	}
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, spans); err != nil {
		t.Fatalf("EncodeJSONL: %v", err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", raw, buf.Bytes())
	}
	// Two identical traces must encode byte-identically.
	tr2 := newTestTracer()
	root2 := tr2.Start("job", "", A("job", "j1"))
	c2 := root2.Child("cell", A("cell", "3"))
	c2.Event("lease-expired")
	c2.End()
	root2.SimSpan("sim", 0, 42)
	root2.End()
	if !bytes.Equal(raw, tr2.JSONL()) {
		t.Fatal("identical traces encode differently")
	}
}

func TestAbsorbRewritesTraceID(t *testing.T) {
	tr := newTestTracer()
	root := tr.Start("job", "")
	w := New("t-1", "worker-w1", &stepClock{t: time.Unix(2000, 0)})
	exec := w.Start("execute", root.ID())
	exec.End()
	spans, err := ParseJSONL(bytes.NewReader(w.JSONL()))
	if err != nil {
		t.Fatalf("parse worker spans: %v", err)
	}
	spans[0].Trace = "forged"
	tr.Absorb(spans)
	root.End()

	for _, s := range tr.Snapshot() {
		if s.Trace != "t-1" {
			t.Fatalf("span %s trace = %q", s.ID, s.Trace)
		}
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := []struct {
		name  string
		spans []Span
		want  string
	}{
		{"open span", []Span{{ID: "a:1", Name: "x", Start: 1}}, "never ended"},
		{"dup id", []Span{
			{ID: "a:1", Name: "x", Start: 1, End: 2},
			{ID: "a:1", Name: "y", Start: 1, End: 2},
		}, "duplicate"},
		{"unknown parent", []Span{
			{ID: "a:1", Parent: "a:9", Name: "x", Start: 1, End: 2},
		}, "unknown parent"},
		{"escapes parent", []Span{
			{ID: "a:1", Name: "p", Service: "s", Domain: DomainWall, Start: 5, End: 10},
			{ID: "a:2", Parent: "a:1", Name: "c", Service: "s", Domain: DomainWall, Start: 4, End: 9},
		}, "escapes parent"},
	}
	for _, tc := range cases {
		err := Validate(tc.spans)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	// Cross-domain and cross-service nesting is exempt.
	ok := []Span{
		{ID: "a:1", Name: "run", Service: "w", Domain: DomainWall, Start: 5, End: 10},
		{ID: "a:2", Parent: "a:1", Name: "sim", Service: "w", Domain: DomainSim, Start: 0, End: 999},
		{ID: "b:1", Parent: "a:1", Name: "remote", Service: "x", Domain: DomainWall, Start: 1, End: 20},
	}
	if err := Validate(ok); err != nil {
		t.Errorf("exempt nesting rejected: %v", err)
	}
}

func TestWriteChrome(t *testing.T) {
	tr := newTestTracer()
	root := tr.Start("job", "", A("job", "j1"))
	cell := root.Child("cell", A("cell", "0"))
	cell.Event("requeued")
	cell.SimSpan("sim", 0, units.Time(units.Millisecond))
	cell.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Snapshot()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output not JSON: %v", err)
	}
	var complete, meta, instant int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
		case "M":
			meta++
		case "i":
			instant++
		}
	}
	if complete != 3 {
		t.Fatalf("complete events = %d, want 3", complete)
	}
	if meta != 2 { // coordinator + coordinator/sim
		t.Fatalf("metadata events = %d, want 2", meta)
	}
	if instant != 1 {
		t.Fatalf("instant events = %d, want 1", instant)
	}
}
