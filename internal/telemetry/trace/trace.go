// Package trace is a minimal, stdlib-only span layer for the dynaqd service
// path and the simulation engine.
//
// Spans live in one of two clock domains and the two never mix:
//
//   - Wall-time spans (Domain == DomainWall) timestamp the service path:
//     queueing, leases, execution, uploads, cache promotion. Wall time is
//     drawn exclusively through the injected Clock seam (satisfied by
//     fleet.Clock), never from the time package directly, so the
//     determinism rules that govern internal/fleet and internal/server
//     apply here unchanged.
//   - Sim-time spans (Domain == DomainSim) timestamp engine phases in
//     picoseconds of simulated time. They are emitted retroactively by the
//     experiment layer after a run completes and must never carry a
//     wall-clock-derived value; dynaqlint's determinism-taint analyzer
//     treats the SimSpan entry points as sinks to enforce that.
//
// Span ids are deterministic ("<service>:<seq>"): no global rand, no wall
// clock, so traces from stepped-clock tests are byte-stable. A Tracer is
// safe for concurrent use; Span values returned by Snapshot are copies.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"dynaq/internal/units"
)

// Clock is the wall-time source for span timestamps. It is a structural
// subset of fleet.Clock so this package does not import internal/fleet;
// production code passes the audited fleet.WallClock, tests pass a
// fleet.ManualClock.
type Clock interface {
	Now() time.Time
}

// Span clock domains.
const (
	DomainWall = "wall" // Start/End are microseconds since the Unix epoch
	DomainSim  = "sim"  // Start/End are picoseconds of simulated time
)

// Attr is a single key/value annotation on a span or event.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A builds a string attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// AInt builds an integer attribute.
func AInt(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Event is a point-in-time marker inside a span (retry, expiry, requeue).
// At is in the span's clock domain.
type Event struct {
	At    int64  `json:"at"`
	Name  string `json:"name"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Span is one timed region of the cell lifecycle. The JSON field order is
// fixed by this struct, so encoding is byte-stable.
type Span struct {
	Trace   string  `json:"trace"`
	ID      string  `json:"span"`
	Parent  string  `json:"parent,omitempty"`
	Name    string  `json:"name"`
	Service string  `json:"svc"`
	Domain  string  `json:"domain"`
	Start   int64   `json:"start"`
	End     int64   `json:"end"` // zero while the span is still open
	Attrs   []Attr  `json:"attrs,omitempty"`
	Events  []Event `json:"events,omitempty"`
}

// Tracer collects the spans of one trace for one service. All mutation goes
// through its mutex; the clock is only consulted under it.
type Tracer struct {
	mu      sync.Mutex
	clock   Clock
	traceID string
	service string
	seq     int     // guarded by mu
	spans   []*Span // guarded by mu
}

// New builds a Tracer for one trace id as seen by one service ("coordinator",
// "worker-w1", ...). clock must be non-nil for wall spans; a Tracer used only
// for sim spans may pass nil.
func New(traceID, service string, clock Clock) *Tracer {
	return &Tracer{clock: clock, traceID: traceID, service: service}
}

// TraceID reports the trace id this Tracer stamps on every span.
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// newSpanLocked appends a fresh span and returns it. Caller holds t.mu.
func (t *Tracer) newSpanLocked(name, parent, domain string, start int64, attrs []Attr) *Span {
	t.seq++
	s := &Span{
		Trace:   t.traceID,
		ID:      t.service + ":" + strconv.Itoa(t.seq),
		Parent:  parent,
		Name:    name,
		Service: t.service,
		Domain:  domain,
		Start:   start,
		Attrs:   append([]Attr(nil), attrs...),
	}
	t.spans = append(t.spans, s)
	return s
}

// Start opens a wall-time span. parent may be empty for a root span. The
// returned SpanRef (and every SpanRef method) is safe to use on a nil
// receiver, so call sites can thread an optional span without guards.
func (t *Tracer) Start(name, parent string, attrs ...Attr) *SpanRef {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.newSpanLocked(name, parent, DomainWall, t.clock.Now().UnixMicro(), attrs)
	return &SpanRef{t: t, s: s}
}

// WallSpan records an already-finished wall-time span from explicit
// timestamps (used when the region straddled work done before the owning
// span was identified, e.g. absorbing an upload before the lease lookup).
// It returns the new span id.
func (t *Tracer) WallSpan(name, parent string, start, end time.Time, attrs ...Attr) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.newSpanLocked(name, parent, DomainWall, start.UnixMicro(), attrs)
	s.End = end.UnixMicro()
	if s.End < s.Start {
		s.End = s.Start
	}
	return s.ID
}

// SimSpan records a finished sim-time span ([start,end] in simulated time).
// It is the bridge the engine uses to report scenario phases; dynaqlint
// treats it as a determinism sink so wall-clock values can never be
// laundered into the sim domain. It returns the new span id.
func (t *Tracer) SimSpan(name, parent string, start, end units.Time, attrs ...Attr) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.newSpanLocked(name, parent, DomainSim, int64(start), attrs)
	s.End = int64(end)
	if s.End < s.Start {
		s.End = s.Start
	}
	return s.ID
}

// Absorb merges spans recorded by another service (a worker upload) into
// this trace. Trace ids are rewritten to this Tracer's id so a stray or
// stale uploader cannot fork the trace.
func (t *Tracer) Absorb(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range spans {
		s := spans[i] // copy
		s.Trace = t.traceID
		t.spans = append(t.spans, &s)
	}
}

// EndOpen force-ends every span still open at now, stamping a "truncated"
// event on each. Called when a job reaches a terminal state so the stored
// trace always satisfies the every-span-ended invariant, even after a
// worker died mid-lease.
func (t *Tracer) EndOpen() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock.Now().UnixMicro()
	for _, s := range t.spans {
		if s.Domain == DomainWall && s.End == 0 {
			s.Events = append(s.Events, Event{At: now, Name: "truncated"})
			s.End = now
		}
	}
}

// Snapshot returns a deep copy of all spans, sorted by (Start, ID) so the
// encoding is stable regardless of absorb interleaving.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		c := *s
		c.Attrs = append([]Attr(nil), s.Attrs...)
		c.Events = append([]Event(nil), s.Events...)
		out[i] = c
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// JSONL renders a snapshot as JSON lines (one span per line).
func (t *Tracer) JSONL() []byte {
	var buf []byte
	for _, s := range t.Snapshot() {
		line, err := json.Marshal(s)
		if err != nil {
			continue // fixed struct: cannot happen
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	return buf
}

// SpanRef is a handle on an open wall-time span. All methods are no-ops on
// a nil receiver so tracing stays optional at every call site.
type SpanRef struct {
	t *Tracer
	s *Span
}

// ID reports the span id ("" for a nil ref).
func (r *SpanRef) ID() string {
	if r == nil {
		return ""
	}
	return r.s.ID
}

// Tracer reports the owning Tracer (nil for a nil ref).
func (r *SpanRef) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.t
}

// Child opens a wall-time span parented to r.
func (r *SpanRef) Child(name string, attrs ...Attr) *SpanRef {
	if r == nil {
		return nil
	}
	return r.t.Start(name, r.s.ID, attrs...)
}

// SimSpan records a finished sim-time child span under r.
func (r *SpanRef) SimSpan(name string, start, end units.Time, attrs ...Attr) string {
	if r == nil {
		return ""
	}
	return r.t.SimSpan(name, r.s.ID, start, end, attrs...)
}

// Event stamps a point-in-time event on the span at the clock's now.
func (r *SpanRef) Event(name string, attrs ...Attr) {
	if r == nil {
		return
	}
	r.t.mu.Lock()
	defer r.t.mu.Unlock()
	r.s.Events = append(r.s.Events, Event{
		At:    r.t.clock.Now().UnixMicro(),
		Name:  name,
		Attrs: append([]Attr(nil), attrs...),
	})
}

// Annotate appends attributes to the span.
func (r *SpanRef) Annotate(attrs ...Attr) {
	if r == nil {
		return
	}
	r.t.mu.Lock()
	defer r.t.mu.Unlock()
	r.s.Attrs = append(r.s.Attrs, attrs...)
}

// End closes the span at the clock's now, appending attrs first. Ending an
// already-ended span is a no-op (EndOpen may have raced a late completion).
func (r *SpanRef) End(attrs ...Attr) {
	if r == nil {
		return
	}
	r.t.mu.Lock()
	defer r.t.mu.Unlock()
	if r.s.End != 0 {
		return
	}
	r.s.Attrs = append(r.s.Attrs, attrs...)
	r.s.End = r.t.clock.Now().UnixMicro()
	if r.s.End < r.s.Start {
		r.s.End = r.s.Start
	}
}

// ParseJSONL decodes spans from JSON-lines form (the trace.jsonl artifact
// and the CompleteRequest spans payload). Blank lines are skipped.
func ParseJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeJSONL writes spans in JSON-lines form.
func EncodeJSONL(w io.Writer, spans []Span) error {
	for i := range spans {
		line, err := json.Marshal(&spans[i])
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}
