package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome tracing / Perfetto JSON array
// format ("trace event format"). Wall spans become "X" complete events in
// microseconds; sim spans are mapped picoseconds -> microseconds of
// simulated time on a separate "<service>/sim" process row so the two clock
// domains never share an axis.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// processKey groups spans into Chrome "processes": one per (service, domain).
func processKey(s *Span) string {
	if s.Domain == DomainSim {
		return s.Service + "/sim"
	}
	return s.Service
}

// attrValue returns the value of attribute key on s, or "".
func attrValue(s *Span, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// chromeTid maps a span to a Chrome thread row. Cells carry a "cell"
// attribute and get row cell+1; everything else (job root, queue-wait)
// renders on row 0.
func chromeTid(s *Span) int {
	if v := attrValue(s, "cell"); v != "" {
		n := 0
		for _, c := range v {
			if c < '0' || c > '9' {
				return 0
			}
			n = n*10 + int(c-'0')
		}
		return n + 1
	}
	return 0
}

// WriteChrome renders spans as a chrome://tracing / Perfetto-loadable JSON
// object. Timestamps are normalised so the earliest wall span starts at 0,
// keeping the viewer away from epoch-scale offsets.
func WriteChrome(w io.Writer, spans []Span) error {
	pids := map[string]int{}
	var keys []string
	for i := range spans {
		k := processKey(&spans[i])
		if _, ok := pids[k]; !ok {
			pids[k] = 0
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for i, k := range keys {
		pids[k] = i + 1
	}

	var wallBase int64 = -1
	for i := range spans {
		if spans[i].Domain == DomainWall && (wallBase == -1 || spans[i].Start < wallBase) {
			wallBase = spans[i].Start
		}
	}
	if wallBase == -1 {
		wallBase = 0
	}

	// ts converts a span-domain timestamp to viewer microseconds.
	ts := func(s *Span, v int64) float64 {
		if s.Domain == DomainSim {
			return float64(v) / 1e6 // ps -> µs of simulated time
		}
		return float64(v - wallBase)
	}

	events := make([]chromeEvent, 0, 2*len(spans)+len(keys))
	for _, k := range keys {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pids[k], Tid: 0,
			Args: map[string]any{"name": k},
		})
	}
	for i := range spans {
		s := &spans[i]
		pid := pids[processKey(s)]
		tid := chromeTid(s)
		args := map[string]any{"span": s.ID}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		end := s.End
		if end < s.Start {
			end = s.Start
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Domain, Ph: "X",
			Ts: ts(s, s.Start), Dur: ts(s, end) - ts(s, s.Start),
			Pid: pid, Tid: tid, Args: args,
		})
		for _, ev := range s.Events {
			events = append(events, chromeEvent{
				Name: ev.Name, Cat: s.Domain, Ph: "i", S: "t",
				Ts: ts(s, ev.At), Pid: pid, Tid: tid,
				Args: map[string]any{"span": s.ID},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     events,
	})
}

// Validate checks the span invariants the trace endpoint promises:
// unique ids, every span ended, End >= Start, and children fully nested
// within their parents when both live in the same clock domain (cross-domain
// and cross-service nesting is exempt: sim time does not embed in wall time,
// and distinct services may have skewed clocks).
func Validate(spans []Span) error {
	byID := make(map[string]*Span, len(spans))
	for i := range spans {
		s := &spans[i]
		if s.ID == "" {
			return fmt.Errorf("span %d (%q): empty id", i, s.Name)
		}
		if _, dup := byID[s.ID]; dup {
			return fmt.Errorf("duplicate span id %q", s.ID)
		}
		byID[s.ID] = s
	}
	for i := range spans {
		s := &spans[i]
		if s.End == 0 {
			return fmt.Errorf("span %s (%q) never ended", s.ID, s.Name)
		}
		if s.End < s.Start {
			return fmt.Errorf("span %s (%q) ends before it starts", s.ID, s.Name)
		}
		if s.Parent == "" {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			return fmt.Errorf("span %s (%q) references unknown parent %q", s.ID, s.Name, s.Parent)
		}
		if p.Domain != s.Domain || p.Service != s.Service {
			continue
		}
		if s.Start < p.Start || s.End > p.End {
			return fmt.Errorf("span %s (%q) [%d,%d] escapes parent %s (%q) [%d,%d]",
				s.ID, s.Name, s.Start, s.End, p.ID, p.Name, p.Start, p.End)
		}
	}
	return nil
}
