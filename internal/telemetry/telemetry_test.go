package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynaq/internal/units"
)

func TestSeriesIDSortsLabels(t *testing.T) {
	id := SeriesID("queue_occupancy_bytes", []Label{L("queue", "3"), L("port", "tor:0")})
	want := `queue_occupancy_bytes{port="tor:0",queue="3"}`
	if id != want {
		t.Fatalf("SeriesID = %s, want %s", id, want)
	}
	if got := SeriesID("x", nil); got != "x" {
		t.Fatalf("unlabeled SeriesID = %s, want x", got)
	}
}

func TestSeriesIDRejectsReservedCharacters(t *testing.T) {
	for _, f := range []func(){
		func() { SeriesID("", nil) },
		func() { SeriesID("a{b}", nil) },
		func() { SeriesID("ok", []Label{L("k=v", "x")}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("drops_total", L("port", "tor:1"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same id → same instance.
	if r.Counter("drops_total", L("port", "tor:1")) != c {
		t.Fatalf("re-registration returned a different counter")
	}
	g := r.Gauge("occupancy")
	g.Set(42)
	g.Add(-2)
	if g.Value() != 40 {
		t.Fatalf("gauge = %d, want 40", g.Value())
	}
	h := r.Histogram("fct_us", []int64{10, 100})
	for _, v := range []int64{5, 50, 500, 7} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 562 {
		t.Fatalf("hist count/sum = %d/%d, want 4/562", h.Count(), h.Sum())
	}
	if h.Bucket(0) != 2 || h.Bucket(1) != 1 || h.Bucket(2) != 1 {
		t.Fatalf("hist buckets = %d,%d,%d", h.Bucket(0), h.Bucket(1), h.Bucket(2))
	}
	if v, ok := r.Value(`drops_total{port="tor:1"}`); !ok || v != 5 {
		t.Fatalf("Value(counter) = %d,%v", v, ok)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic registering x as gauge")
		}
	}()
	r.Gauge("x")
}

func TestWriteJSONLSortedAndStable(t *testing.T) {
	dump := func() string {
		r := NewRegistry()
		// Register in one order...
		r.Counter("z_total").Add(3)
		r.GaugeFunc("a_gauge", func() int64 { return 7 })
		r.Histogram("m_hist", []int64{1000}).Observe(5)
		var buf bytes.Buffer
		if err := r.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	got := dump()
	want := `{"series":"a_gauge","type":"gauge","value":7}
{"series":"m_hist","type":"histogram","count":1,"sum":5,"buckets":[{"le":1000,"n":1},{"le":"+Inf","n":0}]}
{"series":"z_total","type":"counter","value":3}
`
	if got != want {
		t.Fatalf("dump:\n%s\nwant:\n%s", got, want)
	}
	if again := dump(); again != got {
		t.Fatalf("dump not byte-stable across runs")
	}
}

func TestRunArtifacts(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	man := Manifest{
		Tool:         "test",
		ScenarioHash: Hash([]byte("scenario")),
		Seed:         7,
		Scheme:       "DynaQ",
		Args:         []string{"-seed", "7"},
	}
	run, err := NewRun(dir, man)
	if err != nil {
		t.Fatal(err)
	}
	run.Registry().Counter("events_total").Add(2)
	run.Event(1000, "heartbeat", F("events", int64(2)), F("pending", 3))
	run.Event(2000, "fault", F("target", "tor:1"), F("down", true), F("qs", []int64{1, 2}))
	run.Summarize("drops", "12")
	run.Summarize("aggregate_mbps", "941")
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := os.ReadFile(filepath.Join(dir, EventsFile))
	if err != nil {
		t.Fatal(err)
	}
	wantEvents := `{"t_ps":1000,"kind":"heartbeat","events":2,"pending":3}
{"t_ps":2000,"kind":"fault","target":"tor:1","down":true,"qs":[1,2]}
`
	if string(events) != wantEvents {
		t.Fatalf("events:\n%s\nwant:\n%s", events, wantEvents)
	}

	metrics, err := os.ReadFile(filepath.Join(dir, MetricsFile))
	if err != nil {
		t.Fatal(err)
	}
	if want := "{\"series\":\"events_total\",\"type\":\"counter\",\"value\":2}\n"; string(metrics) != want {
		t.Fatalf("metrics:\n%s\nwant:\n%s", metrics, want)
	}

	manifest, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"tool": "test"`,
		`"seed": 7`,
		`"scheme": "DynaQ"`,
		`"args": ["-seed", "7"]`,
		"\"aggregate_mbps\": \"941\",\n    \"drops\": \"12\"", // sorted by key
		`"scenario_hash": "` + man.ScenarioHash + `"`,
	} {
		if !strings.Contains(string(manifest), want) {
			t.Errorf("manifest missing %q:\n%s", want, manifest)
		}
	}
}

func TestEventRejectsUnsupportedType(t *testing.T) {
	run, err := NewRun(t.TempDir(), Manifest{Tool: "t"})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on float field")
		}
	}()
	run.Event(units.Time(0), "bad", F("x", 1.5))
}
