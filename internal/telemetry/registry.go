// Package telemetry is the simulator's unified observability layer: a
// deterministic, sim-time-keyed metric registry plus structured run
// artifacts.
//
// The registry holds labeled series — counters, gauges, and fixed-bucket
// histograms, addressable as name{label="value",...} — that the hot paths
// (engine, ports, schemes, transports, fault engine) update or expose
// through snapshot functions. A Run binds a registry to an artifact
// directory and streams sim-time-keyed JSONL events next to a final metric
// dump and a run manifest.
//
// Determinism contract: all output is byte-stable. Series dump in
// lexicographic id order, JSON fields are hand-encoded in fixed order, all
// values are integers or strings (never floats formatted by locale- or
// map-order-dependent paths), and nothing reads the wall clock. Two runs of
// the same (scenario, seed) therefore produce identical artifact bytes —
// the property internal/experiment's determinism tests enforce.
//
// The registry is not safe for concurrent use: the simulator is
// single-goroutine by design (see internal/sim).
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Label is one name dimension of a series.
type Label struct {
	Key   string
	Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// SeriesID renders the canonical series id: name{k="v",...} with labels
// sorted by key. A series with no labels is just the name.
func SeriesID(name string, labels []Label) string {
	if name == "" {
		panic("telemetry: empty series name")
	}
	if strings.ContainsAny(name, "{}\"\n") {
		panic(fmt.Sprintf("telemetry: series name %q contains reserved characters", name))
	}
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if l.Key == "" || strings.ContainsAny(l.Key, "{}=,\"\n") {
			panic(fmt.Sprintf("telemetry: label key %q contains reserved characters", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing int64.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add increases the counter by n (n < 0 panics: counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: counter decrement")
	}
	c.v += n
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a settable int64 instantaneous value.
type Gauge struct{ v int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v = v }

// Add shifts the value by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v += n }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// Histogram is a fixed-bucket int64 histogram: counts of observations ≤
// each bound, plus an overflow bucket, total count, and sum. Bounds are
// fixed at registration so two runs always dump the same shape.
type Histogram struct {
	bounds []int64 // strictly increasing upper bounds
	counts []int64 // len(bounds)+1; last is the +Inf bucket
	count  int64
	sum    int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// Bucket returns the count of bucket i (i == len(bounds) is the +Inf
// overflow bucket).
func (h *Histogram) Bucket(i int) int64 { return h.counts[i] }

// series is one registered entry. Exactly one of the value fields is set.
type series struct {
	id   string
	kind string // "counter" | "gauge" | "histogram"
	ctr  *Counter
	gge  *Gauge
	hist *Histogram
	fn   func() int64 // snapshot function for counterfunc/gaugefunc
}

// Registry is a set of labeled series with a deterministic dump order.
type Registry struct {
	series map[string]*series
	help   map[string]string // metric name → # HELP text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]*series),
		help:   make(map[string]string),
	}
}

// SetHelp registers the # HELP text WritePrometheus emits for a metric name
// (shared by every labeled series of that name). Empty text removes it;
// names without help text emit only their # TYPE line.
func (r *Registry) SetHelp(name, text string) {
	if text == "" {
		delete(r.help, name)
		return
	}
	r.help[name] = text
}

// register adds or fetches a series, panicking on a kind clash: two call
// sites registering the same id as different kinds is a programming error,
// and silently returning either would corrupt both.
func (r *Registry) register(id, kind string, make func() *series) *series {
	if s, ok := r.series[id]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("telemetry: series %s registered as %s and %s", id, s.kind, kind))
		}
		return s
	}
	s := make()
	r.series[id] = s
	return s
}

// Counter returns the counter with the given name and labels, creating it
// on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	id := SeriesID(name, labels)
	s := r.register(id, "counter", func() *series {
		return &series{id: id, kind: "counter", ctr: &Counter{}}
	})
	if s.ctr == nil {
		panic(fmt.Sprintf("telemetry: series %s is a counter func, not a settable counter", id))
	}
	return s.ctr
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	id := SeriesID(name, labels)
	s := r.register(id, "gauge", func() *series {
		return &series{id: id, kind: "gauge", gge: &Gauge{}}
	})
	if s.gge == nil {
		panic(fmt.Sprintf("telemetry: series %s is a gauge func, not a settable gauge", id))
	}
	return s.gge
}

// CounterFunc registers a counter whose value is read from fn at snapshot
// time — the zero-hot-path-cost way to expose an existing int64 counter
// (port stats, sender stats). Re-registering the same id replaces fn.
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...Label) {
	id := SeriesID(name, labels)
	s := r.register(id, "counter", func() *series {
		return &series{id: id, kind: "counter"}
	})
	if s.ctr != nil {
		panic(fmt.Sprintf("telemetry: series %s is a settable counter, not a counter func", id))
	}
	s.fn = fn
}

// GaugeFunc registers a gauge whose value is read from fn at snapshot time.
// Re-registering the same id replaces fn.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...Label) {
	id := SeriesID(name, labels)
	s := r.register(id, "gauge", func() *series {
		return &series{id: id, kind: "gauge"}
	})
	if s.gge != nil {
		panic(fmt.Sprintf("telemetry: series %s is a settable gauge, not a gauge func", id))
	}
	s.fn = fn
}

// Histogram returns the fixed-bucket histogram with the given name and
// labels, creating it on first use. Bounds must be strictly increasing; a
// second registration must pass identical bounds.
func (r *Registry) Histogram(name string, bounds []int64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly increasing at %d", i))
		}
	}
	id := SeriesID(name, labels)
	s := r.register(id, "histogram", func() *series {
		return &series{id: id, kind: "histogram", hist: &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}}
	})
	if len(s.hist.bounds) != len(bounds) {
		panic(fmt.Sprintf("telemetry: series %s re-registered with different bounds", id))
	}
	for i, b := range bounds {
		if s.hist.bounds[i] != b {
			panic(fmt.Sprintf("telemetry: series %s re-registered with different bounds", id))
		}
	}
	return s.hist
}

// Len returns the number of registered series.
func (r *Registry) Len() int { return len(r.series) }

// Value returns the current value of a counter or gauge series by its
// canonical id, and whether the series exists. Histogram ids report their
// observation count.
func (r *Registry) Value(id string) (int64, bool) {
	s, ok := r.series[id]
	if !ok {
		return 0, false
	}
	switch {
	case s.ctr != nil:
		return s.ctr.Value(), true
	case s.gge != nil:
		return s.gge.Value(), true
	case s.hist != nil:
		return s.hist.Count(), true
	case s.fn != nil:
		return s.fn(), true
	}
	return 0, false
}

// WriteJSONL dumps every series as one JSON line, sorted by series id, with
// hand-encoded fixed field order so the bytes are stable across runs.
func (r *Registry) WriteJSONL(w io.Writer) error {
	ids := make([]string, 0, len(r.series))
	for id := range r.series {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b []byte
	for _, id := range ids {
		s := r.series[id]
		b = b[:0]
		b = append(b, `{"series":`...)
		b = strconv.AppendQuote(b, s.id)
		b = append(b, `,"type":`...)
		b = strconv.AppendQuote(b, s.kind)
		if s.hist != nil {
			h := s.hist
			b = append(b, `,"count":`...)
			b = strconv.AppendInt(b, h.count, 10)
			b = append(b, `,"sum":`...)
			b = strconv.AppendInt(b, h.sum, 10)
			b = append(b, `,"buckets":[`...)
			for i, bound := range h.bounds {
				if i > 0 {
					b = append(b, ',')
				}
				b = append(b, `{"le":`...)
				b = strconv.AppendInt(b, bound, 10)
				b = append(b, `,"n":`...)
				b = strconv.AppendInt(b, h.counts[i], 10)
				b = append(b, '}')
			}
			b = append(b, `,{"le":"+Inf","n":`...)
			b = strconv.AppendInt(b, h.counts[len(h.bounds)], 10)
			b = append(b, `}]}`...)
		} else {
			var v int64
			switch {
			case s.ctr != nil:
				v = s.ctr.Value()
			case s.gge != nil:
				v = s.gge.Value()
			case s.fn != nil:
				v = s.fn()
			}
			b = append(b, `,"value":`...)
			b = strconv.AppendInt(b, v, 10)
			b = append(b, '}')
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
