package telemetry

import (
	"strings"
	"testing"
)

// buildSnapshotRegistry populates one series of every kind, including a
// labeled pair registered out of lexicographic order to exercise sorting.
func buildSnapshotRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("z_total").Add(3)
	reg.Counter("drops_total", L("queue", "1")).Add(7)
	reg.Counter("drops_total", L("queue", "0")).Add(5)
	reg.Gauge("depth").Set(-2)
	reg.GaugeFunc("derived", func() int64 { return 42 })
	h := reg.Histogram("lat_us", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	reg.SetHelp("drops_total", "Enqueue drops per queue.")
	reg.SetHelp("lat_us", "Latency in microseconds.")
	return reg
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	reg := buildSnapshotRegistry()
	snap := reg.Snapshot()
	if len(snap) != 6 {
		t.Fatalf("snapshot has %d series, want 6", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].ID >= snap[i].ID {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].ID, snap[i].ID)
		}
	}
	byID := make(map[string]SeriesValue, len(snap))
	for _, sv := range snap {
		byID[sv.ID] = sv
	}
	if sv := byID[`drops_total{queue="0"}`]; sv.Kind != "counter" || sv.Value != 5 {
		t.Errorf("drops_total{queue=0} = %+v", sv)
	}
	if sv := byID["depth"]; sv.Kind != "gauge" || sv.Value != -2 {
		t.Errorf("depth = %+v", sv)
	}
	if sv := byID["derived"]; sv.Value != 42 {
		t.Errorf("derived = %+v", sv)
	}
	hv := byID["lat_us"]
	if hv.Kind != "histogram" || hv.Value != 3 || hv.Sum != 5055 {
		t.Fatalf("lat_us = %+v", hv)
	}
	if len(hv.Counts) != 3 || hv.Counts[0] != 1 || hv.Counts[1] != 1 || hv.Counts[2] != 1 {
		t.Fatalf("lat_us counts = %v", hv.Counts)
	}
}

// TestSnapshotRenderDeterministic is the satellite contract: two snapshots
// with no writes in between render byte-equal Prometheus text.
func TestSnapshotRenderDeterministic(t *testing.T) {
	reg := buildSnapshotRegistry()
	render := func() string {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("renders differ:\n%s\n----\n%s", first, second)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := buildSnapshotRegistry()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# TYPE depth gauge
depth -2
# TYPE derived gauge
derived 42
# HELP drops_total Enqueue drops per queue.
# TYPE drops_total counter
drops_total{queue="0"} 5
drops_total{queue="1"} 7
# HELP lat_us Latency in microseconds.
# TYPE lat_us histogram
lat_us_bucket{le="10"} 1
lat_us_bucket{le="100"} 2
lat_us_bucket{le="+Inf"} 3
lat_us_sum 5055
lat_us_count 3
# TYPE z_total counter
z_total 3
`
	if got != want {
		t.Fatalf("render:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusGroupsPrefixedNames: a metric whose name strictly
// prefixes another must still render its labeled series contiguously under
// a single # TYPE header, even though id order interleaves them.
func TestWritePrometheusGroupsPrefixedNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Add(1)
	reg.Counter("x", L("q", "0")).Add(2)
	reg.Counter("x2").Add(3)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE x counter
x 1
x{q="0"} 2
# TYPE x2 counter
x2 3
`
	if got := b.String(); got != want {
		t.Fatalf("render:\n%s\nwant:\n%s", got, want)
	}
}

// TestHelpEscaping: backslashes and newlines in help text must be escaped
// per the exposition format, and clearing help removes the line.
func TestHelpEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(1)
	reg.SetHelp("c", "line one\nback\\slash")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `# HELP c line one\nback\\slash`) {
		t.Fatalf("help not escaped:\n%s", b.String())
	}
	reg.SetHelp("c", "")
	b.Reset()
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "# HELP") {
		t.Fatalf("cleared help still rendered:\n%s", b.String())
	}
}

// TestSnapshotDoesNotAliasHistogramCounts: mutating the registry after a
// snapshot must not change the snapshot's bucket counts.
func TestSnapshotDoesNotAliasHistogramCounts(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []int64{10})
	h.Observe(1)
	snap := reg.Snapshot()
	h.Observe(2)
	if snap[0].Counts[0] != 1 {
		t.Fatalf("snapshot aliases live bucket counts: %v", snap[0].Counts)
	}
}
