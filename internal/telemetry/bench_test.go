package telemetry

import (
	"io"
	"testing"

	"dynaq/internal/units"
)

func BenchmarkEventEncode(b *testing.B) {
	run := newDiscardRun(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run.Event(units.Time(i), "heartbeat",
			F("events", int64(i)), F("pending", 42))
	}
}

func BenchmarkRegistryDump(b *testing.B) {
	reg := NewRegistry()
	for _, port := range []string{"tor:0", "tor:1", "tor:2"} {
		for _, name := range []string{"port_enqueued_total", "port_tx_bytes_total", "port_drops_total"} {
			reg.Counter(name, L("port", port)).Add(7)
		}
		reg.Gauge("port_occupancy_bytes", L("port", port)).Set(1 << 20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WriteJSONL(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// newDiscardRun builds a Run whose event stream goes to the bench temp dir.
func newDiscardRun(b *testing.B) *Run {
	b.Helper()
	run, err := NewRun(b.TempDir(), Manifest{Tool: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	return run
}
