package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles arms the requested pprof outputs; either path may be empty.
// The returned stop function finishes the CPU profile and writes the heap
// profile — call it exactly once, at process exit. Heap-profile write
// failures are reported on stderr rather than returned, since by then the
// run's real work is already done.
func StartProfiles(cpu, mem string) (func(), error) {
	stop := func() {}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("telemetry: cpuprofile: %w", err)
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if mem == "" {
		return stop, nil
	}
	cpuStop := stop
	return func() {
		cpuStop()
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		}
		f.Close()
	}, nil
}
