package telemetry

import (
	"io"
	"sort"
	"strconv"
	"strings"
)

// SeriesValue is one series' state captured by Registry.Snapshot. For
// counters and gauges Value holds the reading; for histograms Value is the
// observation count, Sum the observation sum, and Bounds/Counts the bucket
// upper bounds and per-bucket (non-cumulative) counts, with the final
// Counts entry being the +Inf overflow bucket.
type SeriesValue struct {
	ID     string
	Kind   string // "counter" | "gauge" | "histogram"
	Value  int64
	Sum    int64
	Bounds []int64
	Counts []int64
}

// Snapshot reads every series into a slice sorted by series id, without
// touching the filesystem — the accessor /metrics endpoints and tests use
// instead of round-tripping through metrics.jsonl. It allocates only the
// result slice, the id sort scratch, and one Counts copy per histogram
// (bucket counts keep mutating after the snapshot; Bounds are fixed at
// registration and shared).
//
// Like the rest of the registry, Snapshot is not safe for concurrent use
// with writers; callers that share a registry across goroutines must
// serialize access themselves.
func (r *Registry) Snapshot() []SeriesValue {
	ids := make([]string, 0, len(r.series))
	for id := range r.series {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]SeriesValue, 0, len(ids))
	for _, id := range ids {
		s := r.series[id]
		sv := SeriesValue{ID: id, Kind: s.kind}
		switch {
		case s.hist != nil:
			sv.Value = s.hist.count
			sv.Sum = s.hist.sum
			sv.Bounds = s.hist.bounds
			sv.Counts = append([]int64(nil), s.hist.counts...)
		case s.ctr != nil:
			sv.Value = s.ctr.Value()
		case s.gge != nil:
			sv.Value = s.gge.Value()
		case s.fn != nil:
			sv.Value = s.fn()
		}
		out = append(out, sv)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Series ids are already name{label="value",...}, so counters and
// gauges emit verbatim; histograms expand into cumulative _bucket series
// plus _sum and _count, splicing the le label after any existing labels.
// Series are grouped by metric name (names sorted, series within a name in
// id order) with one # HELP line (when registered via SetHelp) and one
// # TYPE line per name, as the exposition format requires. Output is
// byte-stable across renders with no intervening writes — the same
// determinism contract as WriteJSONL.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Group by metric name rather than streaming the id-sorted snapshot:
	// a name that strictly prefixes another can interleave in id order
	// ("x" < "x2" < `x{...}`, since '{' sorts above alphanumerics), and the
	// exposition format requires all samples of one metric contiguous
	// under a single # TYPE header.
	snap := r.Snapshot()
	byName := make(map[string][]SeriesValue, len(snap))
	names := make([]string, 0, len(snap))
	for _, sv := range snap {
		name, _ := splitSeriesID(sv.ID)
		if _, ok := byName[name]; !ok {
			names = append(names, name)
		}
		byName[name] = append(byName[name], sv)
	}
	sort.Strings(names)
	var b []byte
	for _, name := range names {
		group := byName[name]
		b = b[:0]
		if help, ok := r.help[name]; ok {
			b = append(b, "# HELP "...)
			b = append(b, name...)
			b = append(b, ' ')
			b = append(b, helpEscaper.Replace(help)...)
			b = append(b, '\n')
		}
		b = append(b, "# TYPE "...)
		b = append(b, name...)
		b = append(b, ' ')
		b = append(b, group[0].Kind...)
		b = append(b, '\n')
		for _, sv := range group {
			_, labels := splitSeriesID(sv.ID)
			if sv.Kind == "histogram" {
				var cum int64
				for i, bound := range sv.Bounds {
					cum += sv.Counts[i]
					b = appendBucket(b, name, labels, strconv.FormatInt(bound, 10), cum)
				}
				cum += sv.Counts[len(sv.Bounds)]
				b = appendBucket(b, name, labels, "+Inf", cum)
				b = appendSample(b, name+"_sum", labels, sv.Sum)
				b = appendSample(b, name+"_count", labels, sv.Value)
			} else {
				b = appendSample(b, name, labels, sv.Value)
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// helpEscaper escapes # HELP text per the exposition format: backslashes
// and newlines only.
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// splitSeriesID separates a canonical series id into its metric name and
// the inner label list (without braces), either of which may be empty.
func splitSeriesID(id string) (name, labels string) {
	i := strings.IndexByte(id, '{')
	if i < 0 {
		return id, ""
	}
	return id[:i], strings.TrimSuffix(id[i+1:], "}")
}

// appendSample emits one `name{labels} value` line.
func appendSample(b []byte, name, labels string, v int64) []byte {
	b = append(b, name...)
	if labels != "" {
		b = append(b, '{')
		b = append(b, labels...)
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = strconv.AppendInt(b, v, 10)
	return append(b, '\n')
}

// appendBucket emits one cumulative `name_bucket{labels,le="bound"} n` line.
func appendBucket(b []byte, name, labels, le string, n int64) []byte {
	b = append(b, name...)
	b = append(b, "_bucket{"...)
	if labels != "" {
		b = append(b, labels...)
		b = append(b, ',')
	}
	b = append(b, `le=`...)
	b = strconv.AppendQuote(b, le)
	b = append(b, "} "...)
	b = strconv.AppendInt(b, n, 10)
	return append(b, '\n')
}
