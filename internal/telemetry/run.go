package telemetry

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"dynaq/internal/units"
)

// Artifact file names inside a run directory.
const (
	EventsFile   = "events.jsonl"
	MetricsFile  = "metrics.jsonl"
	ManifestFile = "manifest.json"
	TraceFile    = "trace.jsonl"
)

// Manifest identifies a run so its artifacts can be audited and compared:
// which tool produced it, from what scenario (content hash), with what seed,
// scheme, and command line. It deliberately carries no wall-clock timestamp
// — a manifest is a pure function of the run's inputs and outcome, so two
// identical (scenario, seed) runs produce identical manifest bytes.
type Manifest struct {
	Tool         string
	Version      string // build stamp (dynaq.Version); part of a cached result's identity
	ScenarioHash string
	Seed         int64
	Scheme       string
	// Engine is the simulation fidelity ("packet", "flow", "hybrid"); the
	// empty string is written as "packet". Part of a cached result's
	// identity: the same scenario at another fidelity is another result.
	Engine string
	Args   []string
}

// SummaryEntry is one final-summary key/value pair; values are
// pre-formatted strings so the manifest encoding never touches
// float-formatting paths.
type SummaryEntry struct {
	Key   string
	Value string
}

// Hash returns the hex SHA-256 of data — the scenario content hash recorded
// in manifests.
func Hash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// EventWriter receives sim-time-keyed structured events. *Run implements
// it; samplers and recorders accept the interface so they can be tested
// against an in-memory sink.
type EventWriter interface {
	// Event appends one event at simulated time at. Fields are encoded in
	// call order, after the fixed "t_ps" and "kind" fields.
	Event(at units.Time, kind string, fields ...Field)
}

// Field is one key/value pair of an event. Val must be an int, int64,
// uint64, bool, string, or []int64; anything else panics at encode time
// (events are written on hot-ish paths, so surprises must be loud and
// immediate, not deferred to artifact diffing).
type Field struct {
	Key string
	Val any
}

// F builds a Field.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

// Run binds a registry to an artifact directory: a streaming events.jsonl,
// a final metrics.jsonl registry dump, and a manifest.json.
type Run struct {
	dir     string
	reg     *Registry
	man     Manifest
	summary map[string]string

	f   *os.File
	buf *bufio.Writer
	tee func(line []byte)
	err error // first write error, surfaced at Close
}

// NewRun creates the artifact directory (and parents) and opens the event
// stream. The manifest is written at Close, after the summary is complete.
func NewRun(dir string, man Manifest) (*Run, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, EventsFile))
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return &Run{
		dir:     dir,
		reg:     NewRegistry(),
		man:     man,
		summary: make(map[string]string),
		f:       f,
		buf:     bufio.NewWriterSize(f, 1<<16),
	}, nil
}

// Dir returns the artifact directory.
func (r *Run) Dir() string { return r.dir }

// Registry returns the run's metric registry.
func (r *Run) Registry() *Registry { return r.reg }

// Tee registers fn to receive a copy of every encoded event line (including
// the trailing newline) as it is written — the live-progress subscription
// hook dynaqd streams job events from. fn runs synchronously on the
// simulation goroutine and must not retain the slice past the call; copy if
// it needs to hand the line to another goroutine.
func (r *Run) Tee(fn func(line []byte)) { r.tee = fn }

// Event implements EventWriter: one JSONL line with fixed leading fields
// {"t_ps":...,"kind":...} followed by the caller's fields in call order.
func (r *Run) Event(at units.Time, kind string, fields ...Field) {
	if r.err != nil {
		return
	}
	var b []byte
	b = append(b, `{"t_ps":`...)
	b = strconv.AppendInt(b, int64(at), 10)
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, kind)
	for _, f := range fields {
		b = append(b, ',')
		b = strconv.AppendQuote(b, f.Key)
		b = append(b, ':')
		b = appendValue(b, f.Val)
	}
	b = append(b, '}', '\n')
	if r.tee != nil {
		r.tee(b)
	}
	if _, err := r.buf.Write(b); err != nil {
		r.err = err
	}
}

// appendValue encodes one event field value; the accepted types keep every
// artifact byte a deterministic function of the simulation state.
func appendValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case bool:
		return strconv.AppendBool(b, x)
	case string:
		return strconv.AppendQuote(b, x)
	case []int64:
		b = append(b, '[')
		for i, e := range x {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, e, 10)
		}
		return append(b, ']')
	default:
		panic(fmt.Sprintf("telemetry: unsupported event field type %T", v))
	}
}

// Summarize records one final-summary entry for the manifest (last write
// per key wins; entries are emitted sorted by key).
func (r *Run) Summarize(key, value string) { r.summary[key] = value }

// Close flushes the event stream, dumps the registry to metrics.jsonl, and
// writes the manifest. It reports the first error encountered anywhere in
// the run's lifetime.
func (r *Run) Close() error {
	flushErr := r.buf.Flush()
	closeErr := r.f.Close()
	if r.err == nil {
		r.err = flushErr
	}
	if r.err == nil {
		r.err = closeErr
	}

	mf, err := os.Create(filepath.Join(r.dir, MetricsFile))
	if err == nil {
		werr := r.reg.WriteJSONL(mf)
		cerr := mf.Close()
		if err = werr; err == nil {
			err = cerr
		}
	}
	if r.err == nil {
		r.err = err
	}

	summary := make([]SummaryEntry, 0, len(r.summary))
	for k, v := range r.summary {
		summary = append(summary, SummaryEntry{Key: k, Value: v})
	}
	sort.Slice(summary, func(i, j int) bool { return summary[i].Key < summary[j].Key })
	if err := WriteManifest(r.dir, r.man, summary); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

// WriteManifest writes manifest.json into dir with a fixed, hand-encoded
// field order. It is exported so cmd/experiments can emit per-figure
// manifests without a full Run.
func WriteManifest(dir string, man Manifest, summary []SummaryEntry) error {
	var b []byte
	b = append(b, "{\n  \"tool\": "...)
	b = strconv.AppendQuote(b, man.Tool)
	b = append(b, ",\n  \"version\": "...)
	b = strconv.AppendQuote(b, man.Version)
	b = append(b, ",\n  \"scenario_hash\": "...)
	b = strconv.AppendQuote(b, man.ScenarioHash)
	b = append(b, ",\n  \"seed\": "...)
	b = strconv.AppendInt(b, man.Seed, 10)
	b = append(b, ",\n  \"scheme\": "...)
	b = strconv.AppendQuote(b, man.Scheme)
	b = append(b, ",\n  \"engine\": "...)
	engine := man.Engine
	if engine == "" {
		engine = "packet"
	}
	b = strconv.AppendQuote(b, engine)
	b = append(b, ",\n  \"args\": ["...)
	for i, a := range man.Args {
		if i > 0 {
			b = append(b, ", "...)
		}
		b = strconv.AppendQuote(b, a)
	}
	b = append(b, "],\n  \"summary\": {"...)
	for i, e := range summary {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n    "...)
		b = strconv.AppendQuote(b, e.Key)
		b = append(b, ": "...)
		b = strconv.AppendQuote(b, e.Value)
	}
	if len(summary) > 0 {
		b = append(b, "\n  "...)
	}
	b = append(b, "}\n}\n"...)
	return os.WriteFile(filepath.Join(dir, ManifestFile), b, 0o644)
}
