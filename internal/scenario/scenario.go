// Package scenario loads experiment descriptions from JSON so scenarios
// can be versioned and shared without recompiling — the configuration
// format consumed by `dynaqsim -config`.
//
// Two kinds are supported:
//
//	{"kind": "static", ...}  → experiment.RunStatic (throughput/fairness)
//	{"kind": "fct", ...}     → experiment.RunDynamic (FCT benchmarks)
//
// See testdata in scenario_test.go for complete documents.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"dynaq/internal/experiment"
	"dynaq/internal/faults"
	"dynaq/internal/telemetry"
	"dynaq/internal/telemetry/trace"
	"dynaq/internal/transport"
	"dynaq/internal/units"
	"dynaq/internal/workload"
)

// Spec mirrors experiment.QueueSpec in JSON form.
type Spec struct {
	Class int     `json:"class"`
	Flows int     `json:"flows"`
	Hosts int     `json:"hosts,omitempty"`
	StopS float64 `json:"stop_at_s,omitempty"`
	Ctrl  string  `json:"ctrl,omitempty"` // reno | cubic | dctcp | ecn-reno | timely
	ECN   bool    `json:"ecn,omitempty"`
}

// Document is the top-level JSON scenario.
type Document struct {
	Kind string `json:"kind"` // static | fct

	Scheme   string  `json:"scheme"`
	Sched    string  `json:"sched,omitempty"` // drr | wrr | spq+drr
	RateGbps float64 `json:"rate_gbps"`
	BufferB  int64   `json:"buffer_bytes"`
	Queues   int     `json:"queues"`
	Weights  []int64 `json:"weights,omitempty"`
	RTTUs    float64 `json:"rtt_us"`
	MTU      int64   `json:"mtu,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	MinRTOMs float64 `json:"min_rto_ms,omitempty"`

	// Static fields.
	DurationS float64 `json:"duration_s,omitempty"`
	SampleMs  float64 `json:"sample_ms,omitempty"`
	Specs     []Spec  `json:"specs,omitempty"`

	// FCT fields.
	Topo         string   `json:"topo,omitempty"` // star | leafspine | fattree
	Servers      int      `json:"servers,omitempty"`
	Leaves       int      `json:"leaves,omitempty"`
	Spines       int      `json:"spines,omitempty"`
	HostsPerLeaf int      `json:"hosts_per_leaf,omitempty"`
	FatTreeK     int      `json:"k,omitempty"` // fat-tree arity (topo=fattree)
	Load         float64  `json:"load,omitempty"`
	Flows        int      `json:"flows,omitempty"`
	Workloads    []string `json:"workloads,omitempty"`
	DCTCP        bool     `json:"dctcp,omitempty"`

	// Engine selects the fct simulation fidelity: "packet" (default),
	// "flow" (fluid fast path) or "hybrid" (fluid with selective
	// packetization of congested ports). The fattree topology requires a
	// fluid engine; faults/guard/failure-aware require the packet engine.
	Engine string `json:"engine,omitempty"`
	// FlowCutoffB overrides the fluid engines' short/long flow cutoff in
	// bytes (default: the 100KB PIAS demotion threshold).
	FlowCutoffB int64 `json:"flow_cutoff_bytes,omitempty"`

	// Fault injection (both kinds). Targets are resolved against the
	// topology's fault registry: "tor:<i>" / "host<i>:nic" / "tor" on the
	// star, "leaf<l>:spine<s>" / "spine<s>:leaf<l>" / "leaf<l>:host<h>" /
	// "host<h>:nic" and the whole-switch groups "leaf<l>" / "spine<s>" on
	// the leaf-spine.
	Faults []faults.Spec `json:"faults,omitempty"`
	// Guard arms the runtime invariant guardrail on every switch port.
	Guard bool `json:"guard,omitempty"`
	// FailureAware enables failure-aware ECMP (fct + leafspine only).
	FailureAware bool `json:"failure_aware,omitempty"`
	// DetectMs is the failure-detection delay in milliseconds.
	DetectMs float64 `json:"detection_delay_ms,omitempty"`
}

// maxQueues bounds the queues field: real multi-queue switch ASICs expose a
// handful of service queues per port, and an absurd count would otherwise
// make Load allocate the default weight vector before any experiment runs.
const maxQueues = 1024

// MaxDocumentBytes bounds the scenario documents Load accepts. Scenarios
// are small hand-written configurations (the largest shipped one is under
// 2KB); the limit exists for untrusted input paths — dynaqd's POST /v1/jobs
// — where an unbounded body would otherwise be decoded at full size before
// any validation runs.
const MaxDocumentBytes = 1 << 20

// ValidationError is a typed Load failure suitable for an HTTP 400 body:
// Field names the offending JSON field (empty when the document itself
// failed to decode) and Msg says what was wrong with it.
type ValidationError struct {
	Field string
	Msg   string
}

// Error implements error.
func (e *ValidationError) Error() string {
	if e.Field == "" {
		return "scenario: " + e.Msg
	}
	return "scenario: " + e.Field + ": " + e.Msg
}

// invalidf builds a ValidationError for field with a formatted message.
func invalidf(field, format string, args ...any) *ValidationError {
	return &ValidationError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Result is what a loaded scenario produces when run.
type Result struct {
	Static  *experiment.StaticResult
	Dynamic *experiment.DynamicResult
}

// Runner is a validated, executable scenario.
type Runner struct {
	doc     Document
	static  *experiment.StaticConfig
	dynamic *experiment.DynamicConfig
}

// Kind returns "static" or "fct".
func (r *Runner) Kind() string { return r.doc.Kind }

// Guarded reports whether the scenario armed the invariant guardrail.
func (r *Runner) Guarded() bool { return r.doc.Guard }

// Scheme returns the scenario's scheme name (for run manifests).
func (r *Runner) Scheme() string { return r.doc.Scheme }

// Seed returns the scenario's seed.
func (r *Runner) Seed() int64 { return r.doc.Seed }

// Engine returns the scenario's simulation engine ("packet" unless the
// document selected a fluid fidelity). Part of a run's cache identity: the
// same document at a different fidelity is a different result.
func (r *Runner) Engine() string {
	if r.doc.Engine == "" {
		return string(experiment.EnginePacket)
	}
	return r.doc.Engine
}

// SetTelemetry attaches a telemetry run to the underlying experiment
// configuration; the caller owns (and closes) the Run.
func (r *Runner) SetTelemetry(run *telemetry.Run) {
	if r.static != nil {
		r.static.Telemetry = run
	}
	if r.dynamic != nil {
		r.dynamic.Telemetry = run
	}
}

// SetProgress attaches a wall-clock progress writer (typically os.Stderr).
func (r *Runner) SetProgress(w io.Writer) {
	if r.static != nil {
		r.static.Progress = w
	}
	if r.dynamic != nil {
		r.dynamic.Progress = w
	}
}

// SetSpans attaches a span tracer for retroactive sim-time phase spans,
// parented under the given wall-time span id (empty for a root sim span).
func (r *Runner) SetSpans(tr *trace.Tracer, parent string) {
	if r.static != nil {
		r.static.Spans = tr
		r.static.SpanParent = parent
	}
	if r.dynamic != nil {
		r.dynamic.Spans = tr
		r.dynamic.SpanParent = parent
	}
}

// Overrides replaces selected document fields before validation. It is the
// sweep-expansion path of dynaqd: one uploaded scenario body fans out into
// (scheme, seed) cells without re-serializing the document, so the cell's
// cache identity can stay (scenario hash, scheme, seed) with the overrides
// carried out-of-band.
type Overrides struct {
	// Scheme, when non-empty, replaces the document's scheme.
	Scheme string
	// Seed, when non-nil, replaces the document's seed.
	Seed *int64
	// Engine, when non-empty, replaces the document's engine. Callers that
	// override it must carry the engine in the cell's cache identity.
	Engine string
}

// Load parses and validates a JSON scenario.
func Load(data []byte) (*Runner, error) { return LoadWith(data, Overrides{}) }

// LoadWith parses and validates a JSON scenario after applying overrides.
// Failures are *ValidationError — callers serving untrusted input can map
// any Load error to an HTTP 400 with a structured body.
func LoadWith(data []byte, ov Overrides) (*Runner, error) {
	if len(data) > MaxDocumentBytes {
		return nil, invalidf("", "document is %d bytes, limit %d", len(data), MaxDocumentBytes)
	}
	var doc Document
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, &ValidationError{Msg: err.Error()}
	}
	if ov.Scheme != "" {
		doc.Scheme = ov.Scheme
	}
	if ov.Seed != nil {
		doc.Seed = *ov.Seed
	}
	if ov.Engine != "" {
		doc.Engine = ov.Engine
	}
	r := &Runner{doc: doc}
	if doc.RateGbps <= 0 {
		return nil, invalidf("rate_gbps", "must be positive, got %v", doc.RateGbps)
	}
	if doc.BufferB <= 0 {
		return nil, invalidf("buffer_bytes", "must be positive, got %d", doc.BufferB)
	}
	if doc.Queues < 1 || doc.Queues > maxQueues {
		return nil, invalidf("queues", "must be in [1, %d], got %d", maxQueues, doc.Queues)
	}
	if doc.RTTUs < 0 {
		return nil, invalidf("rtt_us", "must not be negative, got %v", doc.RTTUs)
	}
	if doc.DetectMs < 0 {
		return nil, invalidf("detection_delay_ms", "must not be negative, got %v", doc.DetectMs)
	}
	if err := faults.Validate(doc.Faults); err != nil {
		return nil, &ValidationError{Field: "faults", Msg: err.Error()}
	}
	weights := doc.Weights
	if weights == nil {
		weights = make([]int64, doc.Queues)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != doc.Queues {
		return nil, invalidf("weights", "%d weights for %d queues", len(weights), doc.Queues)
	}
	schedKind := experiment.SchedKind(doc.Sched)
	if doc.Sched == "" {
		schedKind = experiment.SchedDRR
	}
	params := experiment.SchemeParams{Weights: weights}
	mtu := units.ByteSize(doc.MTU)
	rate := units.Rate(doc.RateGbps * 1e9)
	delay := units.Seconds(doc.RTTUs / 4 * 1e-6)
	minRTO := units.Seconds(doc.MinRTOMs * 1e-3)

	switch doc.Kind {
	case "static":
		if doc.Engine != "" && doc.Engine != string(experiment.EnginePacket) {
			return nil, invalidf("engine", "static scenarios run at packet level, got %q", doc.Engine)
		}
		var specs []experiment.QueueSpec
		for i, sp := range doc.Specs {
			ctrl, err := controllerByName(sp.Ctrl)
			if err != nil {
				return nil, invalidf(fmt.Sprintf("specs[%d].ctrl", i), "%v", err)
			}
			specs = append(specs, experiment.QueueSpec{
				Class:  sp.Class,
				Flows:  sp.Flows,
				Hosts:  sp.Hosts,
				StopAt: units.Seconds(sp.StopS),
				Ctrl:   ctrl,
				ECN:    sp.ECN,
			})
		}
		r.static = &experiment.StaticConfig{
			Scheme:      experiment.Scheme(doc.Scheme),
			Sched:       schedKind,
			Params:      params,
			Rate:        rate,
			Delay:       delay,
			Buffer:      units.ByteSize(doc.BufferB),
			Queues:      doc.Queues,
			MTU:         mtu,
			Specs:       specs,
			Duration:    units.Seconds(doc.DurationS),
			SampleEvery: units.Seconds(doc.SampleMs * 1e-3),
			MinRTO:      minRTO,
			Seed:        doc.Seed,
			Faults:      doc.Faults,
			Guard:       doc.Guard,
		}
	case "fct":
		if doc.Load <= 0 || doc.Load > 1 {
			return nil, invalidf("load", "must be in (0, 1], got %v", doc.Load)
		}
		engine, err := experiment.ParseEngineMode(doc.Engine)
		if err != nil {
			return nil, invalidf("engine", "unknown engine %q (want packet, flow or hybrid)", doc.Engine)
		}
		if doc.FlowCutoffB < 0 {
			return nil, invalidf("flow_cutoff_bytes", "must not be negative, got %d", doc.FlowCutoffB)
		}
		if doc.Topo == "fattree" {
			if engine == experiment.EnginePacket {
				return nil, invalidf("topo", "fattree needs engine flow or hybrid")
			}
			if doc.FatTreeK < 2 || doc.FatTreeK%2 != 0 {
				return nil, invalidf("k", "fat-tree arity must be even and >= 2, got %d", doc.FatTreeK)
			}
		}
		if engine != experiment.EnginePacket {
			if len(doc.Faults) > 0 || doc.Guard || doc.FailureAware {
				return nil, invalidf("engine", "faults, guard and failure_aware need the packet engine")
			}
		}
		var cdfs []*workload.CDF
		for i, name := range doc.Workloads {
			cdf, err := workload.ByName(name)
			if err != nil {
				return nil, invalidf(fmt.Sprintf("workloads[%d]", i), "%v", err)
			}
			cdfs = append(cdfs, cdf)
		}
		r.dynamic = &experiment.DynamicConfig{
			Scheme:         experiment.Scheme(doc.Scheme),
			Params:         params,
			Engine:         engine,
			FlowCutoff:     units.ByteSize(doc.FlowCutoffB),
			Topo:           experiment.TopoKind(doc.Topo),
			Servers:        doc.Servers,
			Leaves:         doc.Leaves,
			Spines:         doc.Spines,
			HostsPerLeaf:   doc.HostsPerLeaf,
			FatTreeK:       doc.FatTreeK,
			Rate:           rate,
			Delay:          delay,
			Buffer:         units.ByteSize(doc.BufferB),
			Queues:         doc.Queues,
			MTU:            mtu,
			Load:           doc.Load,
			Flows:          doc.Flows,
			Workloads:      cdfs,
			DCTCP:          doc.DCTCP,
			MinRTO:         minRTO,
			Seed:           doc.Seed,
			Faults:         doc.Faults,
			Guard:          doc.Guard,
			FailureAware:   doc.FailureAware,
			DetectionDelay: units.Seconds(doc.DetectMs * 1e-3),
		}
	default:
		return nil, invalidf("kind", "unknown kind %q (want static or fct)", doc.Kind)
	}
	return r, nil
}

// Run executes the scenario.
func (r *Runner) Run() (*Result, error) {
	switch {
	case r.static != nil:
		res, err := experiment.RunStatic(*r.static)
		if err != nil {
			return nil, err
		}
		return &Result{Static: res}, nil
	case r.dynamic != nil:
		res, err := experiment.RunDynamic(*r.dynamic)
		if err != nil {
			return nil, err
		}
		return &Result{Dynamic: res}, nil
	default:
		return nil, fmt.Errorf("scenario: empty runner")
	}
}

// controllerByName maps a JSON name to a congestion-controller factory.
func controllerByName(name string) (func() transport.Controller, error) {
	switch name {
	case "", "reno":
		return nil, nil // sender default
	case "cubic":
		return func() transport.Controller { return transport.NewCubic() }, nil
	case "dctcp":
		return func() transport.Controller { return transport.NewDCTCP() }, nil
	case "ecn-reno":
		return func() transport.Controller { return transport.NewECNReno() }, nil
	case "timely":
		return func() transport.Controller { return transport.NewTimely() }, nil
	default:
		return nil, fmt.Errorf("unknown controller %q", name)
	}
}
