package scenario

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestLoadRejectsBadNumbersAndFaults covers the numeric validation added on
// top of JSON decoding: a scenario that parses but describes an impossible
// network (or an inconsistent fault schedule) must fail at Load, not panic
// deep inside a run.
func TestLoadRejectsBadNumbersAndFaults(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{
			"zero rate",
			`{"kind": "static", "rate_gbps": 0, "buffer_bytes": 1000, "queues": 2, "rtt_us": 100, "duration_s": 1}`,
			"rate_gbps",
		},
		{
			"negative rate",
			`{"kind": "fct", "rate_gbps": -1, "buffer_bytes": 1000, "queues": 2, "rtt_us": 100, "load": 0.5}`,
			"rate_gbps",
		},
		{
			"zero buffer",
			`{"kind": "static", "rate_gbps": 1, "buffer_bytes": 0, "queues": 2, "rtt_us": 100, "duration_s": 1}`,
			"buffer_bytes",
		},
		{
			"zero queues",
			`{"kind": "static", "rate_gbps": 1, "buffer_bytes": 1000, "queues": 0, "rtt_us": 100, "duration_s": 1}`,
			"queues",
		},
		{
			"negative rtt",
			`{"kind": "static", "rate_gbps": 1, "buffer_bytes": 1000, "queues": 2, "rtt_us": -5, "duration_s": 1}`,
			"rtt_us",
		},
		{
			"fct zero load",
			`{"kind": "fct", "rate_gbps": 1, "buffer_bytes": 1000, "queues": 2, "rtt_us": 100, "load": 0}`,
			"load",
		},
		{
			"fct overload",
			`{"kind": "fct", "rate_gbps": 1, "buffer_bytes": 1000, "queues": 2, "rtt_us": 100, "load": 1.2}`,
			"load",
		},
		{
			"negative detection delay",
			`{"kind": "fct", "rate_gbps": 1, "buffer_bytes": 1000, "queues": 2, "rtt_us": 100,
			  "load": 0.5, "detection_delay_ms": -1}`,
			"detection_delay_ms",
		},
		{
			"fault without target",
			`{"kind": "static", "rate_gbps": 1, "buffer_bytes": 1000, "queues": 2, "rtt_us": 100,
			  "duration_s": 1, "faults": [{"kind": "down", "at_s": 0.1}]}`,
			"target",
		},
		{
			"fault bad kind",
			`{"kind": "static", "rate_gbps": 1, "buffer_bytes": 1000, "queues": 2, "rtt_us": 100,
			  "duration_s": 1, "faults": [{"kind": "meteor", "target": "tor:0", "at_s": 0.1}]}`,
			"meteor",
		},
		{
			"fault loss rate out of range",
			`{"kind": "static", "rate_gbps": 1, "buffer_bytes": 1000, "queues": 2, "rtt_us": 100,
			  "duration_s": 1, "faults": [{"kind": "loss", "target": "tor:0", "at_s": 0, "rate": 1.5}]}`,
			"rate",
		},
		{
			"flap period missing",
			`{"kind": "static", "rate_gbps": 1, "buffer_bytes": 1000, "queues": 2, "rtt_us": 100,
			  "duration_s": 1, "faults": [{"kind": "flap", "target": "tor:0", "at_s": 0, "until_s": 1}]}`,
			"period",
		},
	}
	for _, tc := range cases {
		_, err := Load([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: Load accepted an invalid document", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("%s: error %T is not a *ValidationError", tc.name, err)
		}
	}
}

// TestLoadTypedErrors: validation failures carry the offending JSON field so
// an HTTP server can return a structured 400 body; decode failures carry an
// empty field.
func TestLoadTypedErrors(t *testing.T) {
	_, err := Load([]byte(`{"kind": "static", "rate_gbps": 0, "buffer_bytes": 1, "queues": 2, "rtt_us": 1}`))
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("error %T is not a *ValidationError", err)
	}
	if verr.Field != "rate_gbps" {
		t.Fatalf("field %q, want rate_gbps", verr.Field)
	}
	_, err = Load([]byte(`{not json`))
	if !errors.As(err, &verr) {
		t.Fatalf("decode error %T is not a *ValidationError", err)
	}
	if verr.Field != "" {
		t.Fatalf("decode error carries field %q, want empty", verr.Field)
	}
}

// TestLoadRejectsOversizedDocument: an untrusted body past MaxDocumentBytes
// is refused before decoding.
func TestLoadRejectsOversizedDocument(t *testing.T) {
	doc := append([]byte(`{"kind": "static"`), bytes.Repeat([]byte(" "), MaxDocumentBytes)...)
	_, err := Load(doc)
	if err == nil {
		t.Fatal("oversized document accepted")
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("error %T is not a *ValidationError", err)
	}
	if !strings.Contains(err.Error(), "limit") {
		t.Fatalf("error %q does not mention the limit", err)
	}
}

// TestLoadWithOverrides: the sweep expansion path replaces scheme/seed
// before validation without touching the document bytes.
func TestLoadWithOverrides(t *testing.T) {
	doc := []byte(`{"kind": "static", "scheme": "BestEffort", "rate_gbps": 1,
	  "buffer_bytes": 30000, "queues": 2, "rtt_us": 100, "duration_s": 1, "seed": 1,
	  "specs": [{"class": 0, "flows": 2}]}`)
	seed := int64(42)
	r, err := LoadWith(doc, Overrides{Scheme: "DynaQ", Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme() != "DynaQ" || r.Seed() != 42 {
		t.Fatalf("overrides not applied: scheme=%q seed=%d", r.Scheme(), r.Seed())
	}
	if r.static == nil || string(r.static.Scheme) != "DynaQ" || r.static.Seed != 42 {
		t.Fatal("overrides not wired into the experiment config")
	}
	// No overrides leaves the document untouched.
	r, err = Load(doc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme() != "BestEffort" || r.Seed() != 1 {
		t.Fatalf("plain Load altered the document: scheme=%q seed=%d", r.Scheme(), r.Seed())
	}
}

// TestLoadAcceptsFaultFields: a well-formed document carrying faults, guard,
// and failure-aware routing loads into both runner kinds.
func TestLoadAcceptsFaultFields(t *testing.T) {
	doc := `{
	  "kind": "fct",
	  "scheme": "DynaQ",
	  "topo": "leafspine",
	  "leaves": 2, "spines": 2, "hosts_per_leaf": 2,
	  "rate_gbps": 10,
	  "buffer_bytes": 196608,
	  "queues": 4,
	  "rtt_us": 80,
	  "load": 0.5,
	  "flows": 50,
	  "workloads": ["websearch"],
	  "min_rto_ms": 5,
	  "seed": 7,
	  "guard": true,
	  "failure_aware": true,
	  "detection_delay_ms": 0.5,
	  "faults": [
	    {"kind": "flap", "target": "spine0", "at_s": 0.002, "until_s": 0.03, "period_s": 0.01, "jitter_s": 0.001},
	    {"kind": "loss", "target": "leaf0:spine1", "at_s": 0, "rate": 0.005}
	  ]
	}`
	r, err := Load([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if r.dynamic == nil {
		t.Fatal("expected a dynamic runner")
	}
	if !r.dynamic.Guard || !r.dynamic.FailureAware {
		t.Fatal("guard/failure-aware flags not wired through")
	}
	if len(r.dynamic.Faults) != 2 {
		t.Fatalf("faults not wired through: %d", len(r.dynamic.Faults))
	}
	if r.dynamic.DetectionDelay <= 0 {
		t.Fatal("detection delay not converted")
	}
}

// FuzzLoad asserts that Load never panics: arbitrary byte soup must come
// back as (runner, nil) or (nil, error), nothing else.
func FuzzLoad(f *testing.F) {
	f.Add([]byte(staticDoc))
	f.Add([]byte(fctDoc))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"kind": "static"}`))
	f.Add([]byte(`{"kind": "fct", "rate_gbps": 1e308, "buffer_bytes": 9223372036854775807, "queues": 2147483647}`))
	f.Add([]byte(`{"kind": "static", "rate_gbps": 1, "buffer_bytes": 1000, "queues": 2, "rtt_us": 100,
	  "duration_s": 1, "faults": [{"kind": "flap", "target": "", "at_s": -1}]}`))
	// Untrusted-upload hardening corpus: a body past the size limit must be
	// refused outright, and pathologically deep nesting must come back as
	// the decoder's depth error, never a stack overflow.
	f.Add(bytes.Repeat([]byte(`{"kind":`), MaxDocumentBytes/8+1))
	f.Add(append(append(bytes.Repeat([]byte("["), 50_000), []byte("1")...), bytes.Repeat([]byte("]"), 50_000)...))
	f.Add([]byte(`{"specs": ` + strings.Repeat(`[`, 12_000) + strings.Repeat(`]`, 12_000) + `}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Load(data)
		if (r == nil) == (err == nil) {
			t.Fatalf("Load returned runner=%v err=%v", r != nil, err)
		}
	})
}
