package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShippedScenariosLoad validates every JSON document in the
// repository's scenarios/ directory.
func TestShippedScenariosLoad(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("scenarios directory missing: %v", err)
	}
	var jsons []os.DirEntry
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".json" {
			jsons = append(jsons, e)
		}
	}
	if len(jsons) < 3 {
		t.Fatalf("only %d shipped scenarios", len(jsons))
	}
	for _, e := range jsons {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			r, err := Load(data)
			if err != nil {
				t.Fatal(err)
			}
			if r.Kind() != "static" && r.Kind() != "fct" {
				t.Fatalf("kind = %q", r.Kind())
			}
		})
	}
}

// TestShippedSmokeRun executes the quickest shipped scenario end to end.
func TestShippedSmokeRun(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "scenarios", "fig3_dynaq.json"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	// Shorten for CI: reload with a trimmed duration.
	doc := r.doc
	doc.DurationS = 1
	trimmed, _ := Load(mustJSON(t, doc))
	res, err := trimmed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Static.Samples) == 0 {
		t.Fatal("no samples")
	}
}
