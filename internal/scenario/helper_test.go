package scenario

import (
	"encoding/json"
	"testing"
)

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
