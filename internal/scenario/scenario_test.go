package scenario

import (
	"strings"
	"testing"

	"dynaq/internal/metrics"
	"dynaq/internal/units"
)

const staticDoc = `{
  "kind": "static",
  "scheme": "DynaQ",
  "sched": "drr",
  "rate_gbps": 1,
  "buffer_bytes": 85000,
  "queues": 4,
  "rtt_us": 500,
  "duration_s": 2,
  "sample_ms": 500,
  "seed": 1,
  "specs": [
    {"class": 1, "flows": 2},
    {"class": 2, "flows": 8, "ctrl": "cubic"}
  ]
}`

const fctDoc = `{
  "kind": "fct",
  "scheme": "DynaQ",
  "topo": "star",
  "servers": 4,
  "rate_gbps": 1,
  "buffer_bytes": 85000,
  "queues": 5,
  "rtt_us": 500,
  "load": 0.5,
  "flows": 60,
  "workloads": ["websearch"],
  "min_rto_ms": 10,
  "seed": 1
}`

func TestLoadValidation(t *testing.T) {
	bad := []string{
		`{`,
		`{"kind": "blimp"}`,
		`{"kind": "static", "queues": 2, "weights": [1], "rate_gbps": 1, "buffer_bytes": 1000, "rtt_us": 100}`,
		`{"kind": "static", "unknown_field": 1}`,
		`{"kind": "static", "queues": 2, "rate_gbps": 1, "buffer_bytes": 1000, "rtt_us": 100,
		  "duration_s": 1, "specs": [{"class": 0, "flows": 1, "ctrl": "warp"}]}`,
		`{"kind": "fct", "queues": 2, "rate_gbps": 1, "buffer_bytes": 1000, "rtt_us": 100,
		  "workloads": ["nope"]}`,
	}
	for i, doc := range bad {
		if _, err := Load([]byte(doc)); err == nil {
			t.Errorf("document %d should fail", i)
		}
	}
}

func TestStaticScenarioRuns(t *testing.T) {
	r, err := Load([]byte(staticDoc))
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != "static" {
		t.Fatalf("kind = %q", r.Kind())
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Static == nil || res.Dynamic != nil {
		t.Fatal("wrong result shape")
	}
	agg := res.Static.AvgAggregate(units.Time(units.Second), units.Time(2*units.Second))
	if agg < 900*units.Mbps {
		t.Fatalf("aggregate = %v", agg)
	}
	// Both queues share under DynaQ despite the flow asymmetry.
	share := res.Static.ShareOf(1, units.Time(units.Second), units.Time(2*units.Second))
	if share < 0.35 || share > 0.65 {
		t.Fatalf("queue-1 share = %.3f", share)
	}
}

func TestFCTScenarioRuns(t *testing.T) {
	r, err := Load([]byte(fctDoc))
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != "fct" {
		t.Fatalf("kind = %q", r.Kind())
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dynamic == nil {
		t.Fatal("wrong result shape")
	}
	if res.Dynamic.Completed < 54 { // ≥90% of 60 within the drain budget
		t.Fatalf("completed = %d/60", res.Dynamic.Completed)
	}
	if res.Dynamic.FCT.Avg(metrics.AllFlows) <= 0 {
		t.Fatal("no FCT stats")
	}
}

func TestControllerNames(t *testing.T) {
	for _, name := range []string{"", "reno", "cubic", "dctcp", "ecn-reno", "timely"} {
		if _, err := controllerByName(name); err != nil {
			t.Errorf("%q: %v", name, err)
		}
	}
	if _, err := controllerByName("quic"); err == nil ||
		!strings.Contains(err.Error(), "unknown controller") {
		t.Error("unknown controller should fail")
	}
}
