package sim

import (
	"testing"

	"dynaq/internal/units"
)

// reportEventsPerSec attaches the throughput metric cmd/benchjson records
// into BENCH_<date>.json.
func reportEventsPerSec(b *testing.B, events int) {
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineSchedule is the headline engine benchmark: schedule one
// event, run it, repeat — the re-arm pattern every packet and timer in the
// simulator follows. The acceptance bar is 0 allocs/op: after the first
// iteration the free list serves every schedule.
func BenchmarkEngineSchedule(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(units.Microsecond, fn)
		s.Step()
	}
	reportEventsPerSec(b, b.N)
}

// BenchmarkEngineScheduleDepth64 keeps 64 events pending so every push/pop
// traverses real heap depth instead of hitting an empty heap.
func BenchmarkEngineScheduleDepth64(b *testing.B) {
	s := New()
	fn := func() {}
	const depth = 64
	for j := 0; j < depth; j++ {
		// Stagger deadlines so the heap holds a spread of times.
		s.After(units.Duration(j+1)*units.Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(depth*units.Microsecond, fn)
		s.Step()
	}
	reportEventsPerSec(b, b.N)
}

// BenchmarkEngineAfterCall measures the pooled-carrier scheduling path used
// by netsim's link deliveries: package-level func value + recycled arg.
func BenchmarkEngineAfterCall(b *testing.B) {
	s := New()
	arg := &struct{ n int }{}
	fn := func(a any) { a.(*struct{ n int }).n++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AfterCall(units.Microsecond, fn, arg)
		s.Step()
	}
	reportEventsPerSec(b, b.N)
}

// BenchmarkEngineTimerReset is the transport-retransmission pattern: one
// long-lived Timer re-armed on every ACK, rarely firing.
func BenchmarkEngineTimerReset(b *testing.B) {
	s := New()
	tm := s.NewTimer(func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(units.Millisecond)
	}
	b.StopTimer()
	tm.Stop()
}

// BenchmarkEngineCancel schedules and immediately cancels, exercising
// removeAt plus free-list recycling.
func BenchmarkEngineCancel(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Cancel(s.After(units.Microsecond, fn))
	}
}

// TestEngineScheduleZeroAlloc pins the 0 allocs/op acceptance criterion in
// the regular test suite so a regression fails `go test`, not just a human
// reading bench output.
func TestEngineScheduleZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	s := New()
	fn := func() {}
	s.After(units.Microsecond, fn) // warm the free list
	s.Step()
	avg := testing.AllocsPerRun(1000, func() {
		s.After(units.Microsecond, fn)
		s.Step()
	})
	if avg != 0 {
		t.Fatalf("schedule+step allocates %.2f per op, want 0", avg)
	}
}

func TestTimerResetZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	s := New()
	tm := s.NewTimer(func() {})
	tm.Reset(units.Millisecond) // warm the free list
	avg := testing.AllocsPerRun(1000, func() {
		tm.Reset(units.Millisecond)
	})
	if avg != 0 {
		t.Fatalf("Timer.Reset allocates %.2f per op, want 0", avg)
	}
}
