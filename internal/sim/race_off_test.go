//go:build !race

package sim

// raceEnabled reports whether the race detector is compiled in. Allocation
// assertions are skipped under -race: the detector instruments closures and
// interface conversions with bookkeeping allocations that are not ours.
const raceEnabled = false
