package sim

import (
	"math/rand"
	"sort"
	"testing"

	"dynaq/internal/units"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var got []int
	s.At(30*units.Time(units.Microsecond), func() { got = append(got, 3) })
	s.At(10*units.Time(units.Microsecond), func() { got = append(got, 1) })
	s.At(20*units.Time(units.Microsecond), func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*units.Time(units.Microsecond) {
		t.Fatalf("clock = %v, want 30us", s.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(units.Time(units.Millisecond), func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := New()
	var fired units.Time
	s.At(units.Time(units.Second), func() {
		s.After(units.Millisecond, func() { fired = s.Now() })
	})
	s.Run()
	want := units.Time(units.Second).Add(units.Millisecond)
	if fired != want {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(units.Time(units.Second), func() {
		defer func() {
			if recover() == nil {
				t.Error("want panic when scheduling in the past")
			}
		}()
		s.At(units.Time(units.Millisecond), func() {})
	})
	s.Run()
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	e := s.At(units.Time(units.Second), func() { ran = true })
	s.Cancel(e)
	s.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	// Double-cancel and zero-ref cancel are no-ops.
	s.Cancel(e)
	s.Cancel(EventRef{})
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var got []int
	var evs []EventRef
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, s.At(units.Time(i)*units.Time(units.Microsecond), func() {
			got = append(got, i)
		}))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		s.Cancel(evs[i])
	}
	s.Run()
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("canceled event %d ran", v)
		}
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("events out of order after cancels: %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var ran []int
	s.At(units.Time(units.Second), func() { ran = append(ran, 1) })
	s.At(units.Time(3*units.Second), func() { ran = append(ran, 2) })
	s.RunUntil(units.Time(2 * units.Second))
	if len(ran) != 1 || ran[0] != 1 {
		t.Fatalf("ran = %v, want [1]", ran)
	}
	if s.Now() != units.Time(2*units.Second) {
		t.Fatalf("clock = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(ran) != 2 {
		t.Fatalf("ran = %v, want both", ran)
	}
}

func TestTimerResetReplacesPending(t *testing.T) {
	s := New()
	fires := 0
	var tm *Timer
	tm = s.NewTimer(func() { fires++ })
	tm.Reset(10 * units.Millisecond)
	tm.Reset(20 * units.Millisecond) // replaces the first arming
	s.Run()
	if fires != 1 {
		t.Fatalf("fires = %d, want 1", fires)
	}
	if s.Now() != units.Time(20*units.Millisecond) {
		t.Fatalf("fired at %v, want 20ms", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New()
	fires := 0
	tm := s.NewTimer(func() { fires++ })
	tm.Reset(units.Millisecond)
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	tm.Stop()
	if tm.Armed() {
		t.Fatal("timer should be disarmed")
	}
	s.Run()
	if fires != 0 {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerRearmFromCallback(t *testing.T) {
	s := New()
	fires := 0
	var tm *Timer
	tm = s.NewTimer(func() {
		fires++
		if fires < 3 {
			tm.Reset(units.Millisecond)
		}
	})
	tm.Reset(units.Millisecond)
	s.Run()
	if fires != 3 {
		t.Fatalf("fires = %d, want 3", fires)
	}
}

func TestEvery(t *testing.T) {
	s := New()
	var ticks []units.Time
	stop := s.Every(10*units.Millisecond, func() { ticks = append(ticks, s.Now()) })
	s.At(units.Time(35*units.Millisecond), func() { stop() })
	s.Run()
	if len(ticks) != 3 {
		t.Fatalf("ticks = %d, want 3 (at 10,20,30ms)", len(ticks))
	}
	for i, tk := range ticks {
		want := units.Time(10*(i+1)) * units.Time(units.Millisecond)
		if tk != want {
			t.Fatalf("tick %d at %v, want %v", i, tk, want)
		}
	}
}

func TestProcessedCount(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.At(units.Time(i)*units.Time(units.Microsecond), func() {})
	}
	s.Run()
	if s.Processed() != 5 {
		t.Fatalf("processed = %d, want 5", s.Processed())
	}
}

func TestHeapRandomizedOrdering(t *testing.T) {
	// Property: for any insertion order, events pop in nondecreasing time.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := New()
		var got []units.Time
		n := 200
		for i := 0; i < n; i++ {
			tt := units.Time(rng.Intn(1000)) * units.Time(units.Microsecond)
			s.At(tt, func() { got = append(got, s.Now()) })
		}
		s.Run()
		if len(got) != n {
			t.Fatalf("ran %d events, want %d", len(got), n)
		}
		for i := 1; i < n; i++ {
			if got[i] < got[i-1] {
				t.Fatalf("trial %d: time went backwards: %v < %v", trial, got[i], got[i-1])
			}
		}
	}
}

// TestStaleCancelAfterRecycle is the free-list/Cancel regression test: a ref
// to an event that has fired (or been canceled) and whose Event object has
// been recycled for a NEW callback must never cancel — or otherwise disturb —
// the new event. The generation counter on Event is what detects this.
func TestStaleCancelAfterRecycle(t *testing.T) {
	s := New()
	first := s.At(units.Time(units.Millisecond), func() {})
	s.Run() // first fires; its Event goes to the free list

	secondRan := false
	second := s.At(units.Time(2*units.Millisecond), func() { secondRan = true })
	if second.ev != first.ev {
		t.Fatal("free list did not recycle the fired event (test precondition)")
	}
	s.Cancel(first) // stale ref to the recycled object: must be a no-op
	if !second.Pending() {
		t.Fatal("stale Cancel killed the recycled live event")
	}
	s.Run()
	if !secondRan {
		t.Fatal("recycled event did not fire after stale Cancel")
	}
}

// TestCanceledThenRecycledNeverFiresStaleCallback covers the other direction:
// cancel an event, let its object be recycled, and check that only the new
// callback runs — the canceled one must be gone for good.
func TestCanceledThenRecycledNeverFiresStaleCallback(t *testing.T) {
	s := New()
	staleRan := false
	stale := s.At(units.Time(units.Millisecond), func() { staleRan = true })
	s.Cancel(stale)

	freshRan := false
	fresh := s.At(units.Time(units.Millisecond), func() { freshRan = true })
	if fresh.ev != stale.ev {
		t.Fatal("free list did not recycle the canceled event (test precondition)")
	}
	if stale.Pending() {
		t.Fatal("stale ref claims to be pending after recycle")
	}
	s.Run()
	if staleRan {
		t.Fatal("canceled-then-recycled event fired its stale callback")
	}
	if !freshRan {
		t.Fatal("recycled event did not fire its new callback")
	}
}

func TestPoolReuseGrows(t *testing.T) {
	s := New()
	const n = 100
	var done func()
	count := 0
	done = func() {
		count++
		if count < n {
			s.After(units.Microsecond, done)
		}
	}
	s.After(units.Microsecond, done)
	s.Run()
	if count != n {
		t.Fatalf("ran %d events, want %d", count, n)
	}
	// The first schedule allocates; every re-arm reuses the fired object.
	if got := s.PoolReuse(); got != n-1 {
		t.Fatalf("PoolReuse = %d, want %d", got, n-1)
	}
}

func TestAtCallPassesArg(t *testing.T) {
	s := New()
	type payload struct{ v int }
	var got []int
	deliver := func(a any) { got = append(got, a.(*payload).v) }
	s.AtCall(units.Time(2*units.Microsecond), deliver, &payload{v: 2})
	s.AtCall(units.Time(units.Microsecond), deliver, &payload{v: 1})
	s.AfterCall(3*units.Microsecond, deliver, &payload{v: 3})
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCancelAtCall(t *testing.T) {
	s := New()
	ran := false
	ref := s.AtCall(units.Time(units.Millisecond), func(any) { ran = true }, nil)
	s.Cancel(ref)
	s.Run()
	if ran {
		t.Fatal("canceled AtCall event ran")
	}
}

// TestFourAryHeapStress mixes schedules and cancels at random and checks the
// (when, seq) pop order invariant plus idx bookkeeping across removeAt paths.
func TestFourAryHeapStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		s := New()
		var fired []units.Time
		var refs []EventRef
		for i := 0; i < 500; i++ {
			tt := units.Time(rng.Intn(300)) * units.Time(units.Microsecond)
			refs = append(refs, s.At(tt, func() { fired = append(fired, s.Now()) }))
			if rng.Intn(3) == 0 && len(refs) > 0 {
				s.Cancel(refs[rng.Intn(len(refs))])
			}
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatalf("trial %d: time went backwards: %v < %v", trial, fired[i], fired[i-1])
			}
		}
		if s.Pending() != 0 {
			t.Fatalf("trial %d: %d events left pending", trial, s.Pending())
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.At(units.Time(j%97)*units.Time(units.Microsecond), func() {})
		}
		s.Run()
	}
}
