// Package sim provides the discrete-event simulation engine that drives the
// whole reproduction: a binary-heap event queue, a virtual clock, and
// re-armable timers.
//
// The engine is intentionally single-goroutine: every experiment in the
// paper is a deterministic function of its seed, which makes results
// reproducible and the hot path allocation-light.
package sim

import (
	"container/heap"
	"fmt"

	"dynaq/internal/units"
)

// Event is a callback scheduled to run at a fixed simulated time.
type Event struct {
	when units.Time
	seq  uint64 // tie-break: FIFO order among same-time events
	fn   func()
	idx  int // heap index; -1 once popped or canceled
}

// Time returns the simulated time the event fires at.
func (e *Event) Time() units.Time { return e.when }

// eventHeap orders events by time, then insertion sequence.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the pending event set.
// The zero value is not usable; call New.
type Simulator struct {
	now     units.Time
	seq     uint64
	events  eventHeap
	nrun    uint64
	maxHeap int
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() units.Time { return s.now }

// Processed reports how many events have been executed.
func (s *Simulator) Processed() uint64 { return s.nrun }

// Pending reports how many events are scheduled but not yet run.
func (s *Simulator) Pending() int { return len(s.events) }

// MaxPending reports the event heap's high-water mark — the telemetry
// layer's sizing signal for how much simultaneity a scenario creates.
func (s *Simulator) MaxPending() int { return s.maxHeap }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug, and silently reordering time would
// corrupt every queue measurement downstream.
func (s *Simulator) At(t units.Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := &Event{when: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	if len(s.events) > s.maxHeap {
		s.maxHeap = len(s.events)
	}
	return e
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d units.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel removes a pending event. Canceling an already-run or
// already-canceled event is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.idx < 0 {
		return
	}
	heap.Remove(&s.events, e.idx)
	e.idx = -1
}

// Step runs the single earliest pending event. It reports false when no
// events remain.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*Event)
	s.now = e.when
	s.nrun++
	e.fn()
	return true
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain pending.
func (s *Simulator) RunUntil(deadline units.Time) {
	for len(s.events) > 0 && s.events[0].when <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Timer is a single-shot re-armable timer, the building block for TCP
// retransmission timeouts and periodic samplers.
type Timer struct {
	sim *Simulator
	ev  *Event
	fn  func()
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func (s *Simulator) NewTimer(fn func()) *Timer {
	return &Timer{sim: s, fn: fn}
}

// Reset (re)arms the timer to fire d from now, replacing any pending firing.
func (t *Timer) Reset(d units.Duration) {
	t.Stop()
	t.ev = t.sim.After(d, t.fire)
}

// Stop disarms the timer if armed.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.sim.Cancel(t.ev)
		t.ev = nil
	}
}

// Armed reports whether the timer has a pending firing.
func (t *Timer) Armed() bool { return t.ev != nil }

func (t *Timer) fire() {
	t.ev = nil
	t.fn()
}

// Every schedules fn to run now+d, now+2d, ... until the returned stop
// function is called. It is used by periodic throughput samplers.
func (s *Simulator) Every(d units.Duration, fn func()) (stop func()) {
	if d <= 0 {
		panic("sim: Every requires a positive period")
	}
	stopped := false
	var tick func()
	var ev *Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		ev = s.After(d, tick)
	}
	ev = s.After(d, tick)
	return func() {
		stopped = true
		s.Cancel(ev)
	}
}
