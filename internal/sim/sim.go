// Package sim provides the discrete-event simulation engine that drives the
// whole reproduction: a four-ary event heap specialized to *Event, a virtual
// clock, re-armable timers, and a free list that recycles Event objects so
// the steady-state hot path performs zero heap allocations.
//
// The engine is intentionally single-goroutine: every experiment in the
// paper is a deterministic function of its seed, which makes results
// reproducible. Parallelism lives one layer up, in internal/experiment's
// RunTrials, where independent (scheme, load, seed) cells each own a
// private Simulator.
package sim

import (
	"fmt"

	"dynaq/internal/units"
)

// Event is a callback scheduled to run at a fixed simulated time. Event
// objects are owned and recycled by the Simulator's free list; callers hold
// EventRef handles, never bare *Event.
type Event struct {
	when units.Time
	seq  uint64 // tie-break: FIFO order among same-time events
	gen  uint64 // bumped on every recycle so stale refs can be detected
	idx  int    // heap index; -1 while popped, canceled, or on the free list
	fn   func()
	fnA  func(any)
	arg  any
}

// EventRef is a cancellation handle for a scheduled event. The zero value is
// inert: canceling it is a no-op. Because Event objects are recycled, a ref
// held past its event's firing or cancellation may point at an Event that
// now carries a different callback; the generation counter detects this and
// makes such stale refs harmless.
type EventRef struct {
	ev  *Event
	gen uint64
}

// Pending reports whether the referenced event is still scheduled.
func (r EventRef) Pending() bool {
	return r.ev != nil && r.ev.gen == r.gen && r.ev.idx >= 0
}

// Time returns the simulated time the referenced event fires at, or zero
// when the event is no longer pending.
func (r EventRef) Time() units.Time {
	if !r.Pending() {
		return 0
	}
	return r.ev.when
}

// Simulator owns the virtual clock and the pending event set.
// The zero value is not usable; call New.
type Simulator struct {
	now     units.Time
	seq     uint64
	heap    []*Event // four-ary min-heap ordered by (when, seq)
	free    []*Event // recycled Event objects awaiting reuse
	nrun    uint64
	reused  uint64
	maxHeap int
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() units.Time { return s.now }

// Processed reports how many events have been executed.
func (s *Simulator) Processed() uint64 { return s.nrun }

// Pending reports how many events are scheduled but not yet run.
func (s *Simulator) Pending() int { return len(s.heap) }

// MaxPending reports the event heap's high-water mark — the telemetry
// layer's sizing signal for how much simultaneity a scenario creates.
func (s *Simulator) MaxPending() int { return s.maxHeap }

// PoolReuse reports how many event schedules were served from the free list
// instead of the allocator. At steady state this tracks Processed: almost
// every new event reuses the object of one that already fired.
func (s *Simulator) PoolReuse() uint64 { return s.reused }

// less orders events by time, then insertion sequence (FIFO among ties).
func less(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// A four-ary heap does ~half the levels of a binary heap per operation and
// keeps siblings on one cache line; children of i live at 4i+1..4i+4 and
// the parent of i at (i-1)/4. Both sift directions are specialized to
// *Event so there is no interface dispatch and no `any` boxing.

func (s *Simulator) siftUp(i int) {
	e := s.heap[i]
	for i > 0 {
		pi := (i - 1) >> 2
		p := s.heap[pi]
		if !less(e, p) {
			break
		}
		s.heap[i] = p
		p.idx = i
		i = pi
	}
	s.heap[i] = e
	e.idx = i
}

func (s *Simulator) siftDown(i int) {
	n := len(s.heap)
	e := s.heap[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if less(s.heap[j], s.heap[m]) {
				m = j
			}
		}
		if !less(s.heap[m], e) {
			break
		}
		s.heap[i] = s.heap[m]
		s.heap[i].idx = i
		i = m
	}
	s.heap[i] = e
	e.idx = i
}

func (s *Simulator) push(e *Event) {
	s.heap = append(s.heap, e)
	e.idx = len(s.heap) - 1
	s.siftUp(e.idx)
	if len(s.heap) > s.maxHeap {
		s.maxHeap = len(s.heap)
	}
}

// popMin removes and returns the earliest event.
func (s *Simulator) popMin() *Event {
	e := s.heap[0]
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap[n] = nil
	s.heap = s.heap[:n]
	if n > 0 {
		s.heap[0] = last
		last.idx = 0
		s.siftDown(0)
	}
	e.idx = -1
	return e
}

// removeAt removes the event at heap index i. The replacement comes from
// the tail, so it may need to move either direction.
func (s *Simulator) removeAt(i int) *Event {
	e := s.heap[i]
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap[n] = nil
	s.heap = s.heap[:n]
	if i < n {
		s.heap[i] = last
		last.idx = i
		s.siftDown(i)
		s.siftUp(last.idx)
	}
	e.idx = -1
	return e
}

// alloc takes an Event from the free list, falling back to the allocator
// only while the pool is still warming up.
func (s *Simulator) alloc() *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		s.reused++
		return e
	}
	return &Event{}
}

// release returns an Event to the free list. The generation bump invalidates
// every outstanding EventRef to it, and clearing the callback fields drops
// references the GC should not be forced to keep alive.
func (s *Simulator) release(e *Event) {
	e.gen++
	e.idx = -1
	e.fn = nil
	e.fnA = nil
	e.arg = nil
	s.free = append(s.free, e)
}

func (s *Simulator) schedule(t units.Time, fn func(), fnA func(any), arg any) EventRef {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := s.alloc()
	e.when = t
	e.seq = s.seq
	e.fn = fn
	e.fnA = fnA
	e.arg = arg
	s.seq++
	s.push(e)
	return EventRef{ev: e, gen: e.gen}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug, and silently reordering time would
// corrupt every queue measurement downstream.
func (s *Simulator) At(t units.Time, fn func()) EventRef {
	return s.schedule(t, fn, nil, nil)
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d units.Duration, fn func()) EventRef {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// AtCall schedules fn(arg) at absolute time t. With a package-level fn and a
// pooled arg this schedules without allocating, where At would force a
// closure per call; it is the hot-path form used by netsim's packet events.
func (s *Simulator) AtCall(t units.Time, fn func(any), arg any) EventRef {
	return s.schedule(t, nil, fn, arg)
}

// AfterCall schedules fn(arg) to run d after the current time.
func (s *Simulator) AfterCall(d units.Duration, fn func(any), arg any) EventRef {
	if d < 0 {
		d = 0
	}
	return s.AtCall(s.now.Add(d), fn, arg)
}

// Cancel removes a pending event. Canceling a zero ref, an already-run or
// already-canceled event, or a ref whose Event has been recycled for a
// different callback is a no-op.
func (s *Simulator) Cancel(ref EventRef) {
	e := ref.ev
	if e == nil || e.gen != ref.gen || e.idx < 0 {
		return
	}
	s.removeAt(e.idx)
	s.release(e)
}

// Step runs the single earliest pending event. It reports false when no
// events remain. The Event object is released to the free list before the
// callback runs, so a callback that schedules exactly one follow-up event —
// the dominant pattern — reuses the very object that just fired.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.popMin()
	s.now = e.when
	s.nrun++
	fn, fnA, arg := e.fn, e.fnA, e.arg
	s.release(e)
	if fn != nil {
		fn()
	} else {
		fnA(arg)
	}
	return true
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain pending.
func (s *Simulator) RunUntil(deadline units.Time) {
	for len(s.heap) > 0 && s.heap[0].when <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Timer is a single-shot re-armable timer, the building block for TCP
// retransmission timeouts and periodic samplers. The firing callback is
// bound once at construction, so Reset/Stop cycles never allocate.
type Timer struct {
	sim    *Simulator
	ev     EventRef
	fn     func()
	fireFn func() // t.fire bound once; a fresh method value per Reset would allocate
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func (s *Simulator) NewTimer(fn func()) *Timer {
	t := &Timer{sim: s, fn: fn}
	t.fireFn = t.fire
	return t
}

// Reset (re)arms the timer to fire d from now, replacing any pending firing.
func (t *Timer) Reset(d units.Duration) {
	t.sim.Cancel(t.ev)
	t.ev = t.sim.After(d, t.fireFn)
}

// Stop disarms the timer if armed.
func (t *Timer) Stop() {
	t.sim.Cancel(t.ev)
	t.ev = EventRef{}
}

// Armed reports whether the timer has a pending firing.
func (t *Timer) Armed() bool { return t.ev.Pending() }

func (t *Timer) fire() {
	t.ev = EventRef{}
	t.fn()
}

// ticker carries the state for Every so each tick re-arms through one
// precomputed callback instead of allocating a closure chain.
type ticker struct {
	sim     *Simulator
	period  units.Duration
	fn      func()
	tickFn  func()
	ev      EventRef
	stopped bool
}

func (tk *ticker) tick() {
	if tk.stopped {
		return
	}
	tk.fn()
	tk.ev = tk.sim.After(tk.period, tk.tickFn)
}

func (tk *ticker) stop() {
	tk.stopped = true
	tk.sim.Cancel(tk.ev)
	tk.ev = EventRef{}
}

// Every schedules fn to run now+d, now+2d, ... until the returned stop
// function is called. It is used by periodic throughput samplers. The
// ticker allocates once; individual ticks are allocation-free.
func (s *Simulator) Every(d units.Duration, fn func()) (stop func()) {
	if d <= 0 {
		panic("sim: Every requires a positive period")
	}
	tk := &ticker{sim: s, period: d, fn: fn}
	tk.tickFn = tk.tick
	tk.ev = s.After(d, tk.tickFn)
	return tk.stop
}
