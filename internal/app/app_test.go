package app_test

import (
	"testing"

	"dynaq/internal/app"
	"dynaq/internal/buffer"
	"dynaq/internal/metrics"
	"dynaq/internal/pias"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/topology"
	"dynaq/internal/units"
	"dynaq/internal/workload"
)

// rack builds the §V-A2 testbed: 4 servers + 1 client, SPQ(1)+DRR(4).
func rack(t *testing.T) *topology.Star {
	t.Helper()
	s := sim.New()
	st, err := topology.NewStar(s, topology.StarConfig{
		Hosts:  5,
		Rate:   units.Gbps,
		Delay:  125 * units.Microsecond,
		Buffer: 85 * units.KB,
		Queues: 5,
		Factories: topology.Factories{
			NewScheduler: func(n int) (sched.Scheduler, error) {
				return sched.NewSPQDRR(1, []units.ByteSize{1500, 1500, 1500, 1500})
			},
			NewAdmission: func(b units.ByteSize, n int) (buffer.Admission, error) {
				return buffer.NewDynaQ(b, []int64{1, 1, 1, 1, 1})
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func clientConfig(st *topology.Star, requests int) app.Config {
	classifier, _ := pias.NewClassifier(pias.DefaultDemotionThreshold, 0)
	return app.Config{
		Client:        st.Endpoints[4],
		Servers:       st.Endpoints[:4],
		CDF:           workload.WebSearch(),
		Load:          0.6,
		Capacity:      units.Gbps,
		Requests:      requests,
		ServiceQueues: 4,
		ClassOf:       classifier.ClassOf,
		MinRTO:        10 * units.Millisecond,
		Seed:          7,
	}
}

func TestNewClientValidation(t *testing.T) {
	st := rack(t)
	s := st.Sim
	_ = s
	bad := []app.Config{
		{},
		{Client: st.Endpoints[4]},
		{Client: st.Endpoints[4], Servers: st.Endpoints[:4], CDF: workload.WebSearch(),
			Load: 0.5, Capacity: units.Gbps, Requests: 0, ServiceQueues: 4},
		{Client: st.Endpoints[4], Servers: st.Endpoints[:4], CDF: workload.WebSearch(),
			Load: 0.5, Capacity: units.Gbps, Requests: 5, ServiceQueues: 0},
		{Client: st.Endpoints[4], Servers: st.Endpoints[:4], CDF: nil,
			Load: 0.5, Capacity: units.Gbps, Requests: 5, ServiceQueues: 4},
	}
	for i, cfg := range bad {
		if _, err := app.NewClient(st.Sim, cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestRequestResponseCompletes(t *testing.T) {
	st := rack(t)
	c, err := app.NewClient(st.Sim, clientConfig(st, 60))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	st.Sim.RunUntil(units.Time(60 * units.Second))
	if c.Issued() != 60 {
		t.Fatalf("issued = %d/60", c.Issued())
	}
	if c.Done() != 60 {
		t.Fatalf("done = %d/60 responses", c.Done())
	}
	if c.FCT.Count(metrics.AllFlows) != 60 {
		t.Fatalf("FCT records = %d", c.FCT.Count(metrics.AllFlows))
	}
	// Closed-loop latency includes the request round: every FCT exceeds
	// one base RTT (500µs).
	for _, rec := range c.FCT.Records() {
		if rec.FCT < 500*units.Microsecond {
			t.Fatalf("FCT %v below one RTT — request round not accounted", rec.FCT)
		}
	}
}

func TestConnectionPoolGrowsUnderBursts(t *testing.T) {
	st := rack(t)
	cfg := clientConfig(st, 300)
	cfg.Load = 0.9 // aggressive: concurrent responses exceed 5 per server
	c, err := app.NewClient(st.Sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	st.Sim.RunUntil(units.Time(120 * units.Second))
	if c.Done() < 295 {
		t.Fatalf("done = %d/300", c.Done())
	}
	if c.NewConnections == 0 {
		t.Error("expected pool growth beyond 5 connections/server at high load")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []metrics.FCTRecord {
		st := rack(t)
		c, err := app.NewClient(st.Sim, clientConfig(st, 40))
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		st.Sim.RunUntil(units.Time(60 * units.Second))
		return c.FCT.Records()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v (determinism broken)", i, a[i], b[i])
		}
	}
}
