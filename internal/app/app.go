// Package app implements the client/server benchmark application of
// §V-A2 (the traffic generator of the MQ-ECN testbed, the paper's [1]):
// a client keeps persistent connections to each server, issues requests
// whose inter-arrival times follow a Poisson process, and each request
// pulls a response flow of empirical size from the chosen server. "When
// there is no available connection, the client creates a new connection."
//
// Compared to the open-loop generator in internal/experiment, the
// application delays each response by the request's network round — the
// closed-loop flavor of real request/response services.
package app

import (
	"fmt"
	"math/rand"

	"dynaq/internal/metrics"
	"dynaq/internal/packet"
	"dynaq/internal/sim"
	"dynaq/internal/transport"
	"dynaq/internal/units"
	"dynaq/internal/workload"
)

// requestSize is the wire payload of a request (a small RPC header).
const requestSize = 100 * units.Byte

// connsPerServer is the initial persistent-connection pool (§V-A2: "the
// client initially opens 5 persistent TCP connections to each server").
const connsPerServer = 5

// Config assembles a client/server benchmark.
type Config struct {
	// Client is the endpoint issuing requests.
	Client *transport.Endpoint
	// Servers are the endpoints answering them.
	Servers []*transport.Endpoint
	// CDF draws response sizes.
	CDF *workload.CDF
	// Load is the target utilization of the client's downlink Capacity.
	Load float64
	// Capacity is the client downlink rate.
	Capacity units.Rate
	// Requests is the number of requests to issue.
	Requests int
	// ServiceQueues is the number of DRR service queues; responses map to
	// classes [1, ServiceQueues] at random, requests ride class 0 (the
	// high-priority queue). ClassOf, when non-nil, overrides the response
	// class per byte offset (PIAS).
	ServiceQueues int
	ClassOf       func(serviceClass int) func(seq int64) int
	// Ctrl builds the congestion controller per response flow.
	Ctrl func() transport.Controller
	// ECN marks flows ECT.
	ECN    bool
	MSS    units.ByteSize
	MinRTO units.Duration
	Seed   int64
}

// Client drives the benchmark.
type Client struct {
	sim *sim.Simulator
	cfg Config
	rng *rand.Rand
	gen *workload.FlowGen

	nextFlow packet.FlowID
	pools    [][]bool // per server: busy flag per connection
	issued   int
	done     int

	// FCT records response flows (size = response bytes, time = request
	// issue to response completion — the user-perceived latency).
	FCT *metrics.FCTCollector
	// NewConnections counts pool growth beyond the initial 5 per server.
	NewConnections int
}

// NewClient validates the configuration and prepares the pools.
func NewClient(s *sim.Simulator, cfg Config) (*Client, error) {
	if cfg.Client == nil || len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("app: client and at least one server required")
	}
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("app: requests must be positive")
	}
	if cfg.ServiceQueues <= 0 {
		return nil, fmt.Errorf("app: need at least one service queue")
	}
	gen, err := workload.NewFlowGen(cfg.Seed, cfg.CDF, cfg.Capacity, cfg.Load)
	if err != nil {
		return nil, err
	}
	c := &Client{
		sim:   s,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0xc11e17)),
		gen:   gen,
		pools: make([][]bool, len(cfg.Servers)),
		FCT:   metrics.NewFCTCollector(),
	}
	for i := range c.pools {
		c.pools[i] = make([]bool, connsPerServer)
	}
	return c, nil
}

// Start schedules the request process. Completion is observable via Done.
func (c *Client) Start() {
	c.scheduleNext(c.sim.Now().Add(c.gen.NextInterarrival()))
}

// Done reports how many responses have completed.
func (c *Client) Done() int { return c.done }

// Issued reports how many requests have been sent.
func (c *Client) Issued() int { return c.issued }

func (c *Client) scheduleNext(at units.Time) {
	if c.issued >= c.cfg.Requests {
		return
	}
	c.sim.At(at, func() {
		c.issueRequest()
		c.scheduleNext(c.sim.Now().Add(c.gen.NextInterarrival()))
	})
}

// issueRequest picks a server and a free connection, sends the request
// flow, and arranges the response.
func (c *Client) issueRequest() {
	c.issued++
	server := c.rng.Intn(len(c.cfg.Servers))
	conn := c.acquire(server)
	respSize := c.gen.NextSize()
	svcClass := 1 + c.rng.Intn(c.cfg.ServiceQueues)
	issuedAt := c.sim.Now()

	// The request itself: a small client→server flow on the
	// high-priority class (it is tiny, PIAS keeps it there anyway).
	c.nextFlow++
	reqID := c.nextFlow
	c.nextFlow++
	respID := c.nextFlow
	_, err := c.cfg.Client.StartFlow(transport.FlowConfig{
		Flow:   reqID,
		Dst:    c.cfg.Servers[server].Host().ID(),
		Class:  0,
		Size:   requestSize,
		MSS:    c.cfg.MSS,
		ECN:    c.cfg.ECN,
		MinRTO: c.cfg.MinRTO,
		OnComplete: func(units.Duration) {
			// Request delivered: the server answers on the same
			// connection.
			c.respond(server, conn, respID, respSize, svcClass, issuedAt)
		},
	})
	if err != nil {
		panic(err)
	}
}

func (c *Client) respond(server, conn int, id packet.FlowID, size units.ByteSize,
	svcClass int, issuedAt units.Time) {
	var classOf func(seq int64) int
	if c.cfg.ClassOf != nil {
		classOf = c.cfg.ClassOf(svcClass)
	}
	var ctrl transport.Controller
	if c.cfg.Ctrl != nil {
		ctrl = c.cfg.Ctrl()
	}
	_, err := c.cfg.Servers[server].StartFlow(transport.FlowConfig{
		Flow:    id,
		Dst:     c.cfg.Client.Host().ID(),
		Class:   svcClass,
		ClassOf: classOf,
		Size:    size,
		MSS:     c.cfg.MSS,
		Ctrl:    ctrl,
		ECN:     c.cfg.ECN,
		MinRTO:  c.cfg.MinRTO,
		OnComplete: func(units.Duration) {
			c.done++
			c.release(server, conn)
			c.FCT.Add(size, c.sim.Now().Sub(issuedAt))
		},
	})
	if err != nil {
		panic(err)
	}
}

// acquire finds a free connection to the server, growing the pool when all
// are busy.
func (c *Client) acquire(server int) int {
	for i, busy := range c.pools[server] {
		if !busy {
			c.pools[server][i] = true
			return i
		}
	}
	c.pools[server] = append(c.pools[server], true)
	c.NewConnections++
	return len(c.pools[server]) - 1
}

func (c *Client) release(server, conn int) {
	c.pools[server][conn] = false
}
