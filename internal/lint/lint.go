// Package lint implements dynaqlint, the repo's determinism and invariant
// linter. The simulator's core guarantee — fault timelines and experiment
// results are a pure function of (scenario, seed) and replay byte-identically
// — is enforced at runtime by the internal/faults guardrail; this package
// enforces it at the source level, flagging the Go constructs that silently
// break replay before any scenario can trip over them:
//
//   - determinism:     wall-clock reads (time.Now/Since/Until) and the global
//     math/rand source, whose state is shared and unseeded.
//   - map-order:       map iteration whose body performs ordering-sensitive
//     side effects (event scheduling, result-slice appends without a later
//     sort, channel sends, float accumulation).
//   - float-eq:        == / != between floating-point operands (threshold
//     T_i arithmetic must not branch on exact float identity).
//   - guard-invariant: mutation of occupancy/threshold fields of the
//     invariant-owning packages from outside their accessor methods.
//   - parallel-state:  worker goroutines / trial functions (go statements,
//     RunTrials, RunSeeds) capturing a *sim.Simulator, *rand.Rand, or
//     telemetry *Run from an enclosing scope — per-trial engine state must
//     be built inside the trial (shared-nothing parallelism).
//   - determinism-taint: interprocedural — nondeterminism sources (wall
//     clock, global rand, map-iteration order, %p, os.Environ) flowing
//     transitively, through any number of helper calls, into determinism
//     sinks (server.CacheKey, telemetry artifact writers, event scheduling
//     times). Values drawn through the injected fleet.Clock interface are
//     clean by construction.
//   - lock-discipline: fields annotated "guarded by <mu>" accessed without
//     the named mutex held, and goroutine-spawning / lease-mutating
//     functions missing a context.Context parameter.
//   - units-consistency: arithmetic mixing internal/units dimensions
//     (bytes vs sim-time vs rate) or comparing a dimensioned value against
//     a raw non-zero literal.
//
// Everything is built on the stdlib go/parser, go/ast, go/types and
// go/importer packages; dynaqlint adds no module dependencies.
//
// Legitimate violations are suppressed with a directive comment on the same
// line or the line directly above:
//
//	start := time.Now() //dynaqlint:allow determinism progress timing only
//
// The reason is mandatory: a suppression without a justification is itself
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it, and
// a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the classic file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one source-level check. Run inspects the files of a Pass and
// reports findings through Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns every analyzer dynaqlint ships, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, MapOrder, FloatEq, GuardInvariant, ParallelState,
		DeterminismTaint, LockDiscipline, UnitsConsistency}
}

// Config tunes the analyzers for the tree being linted.
type Config struct {
	// GuardedPackages lists import paths whose struct fields hold audited
	// invariant state (port occupancy, DynaQ thresholds, pool accounting).
	// guard-invariant flags any write to a field of a type declared in one
	// of these packages when the write happens in a different package.
	GuardedPackages []string
	// ParallelSharedTypes lists "import/path.TypeName" entries whose
	// pointer types worker goroutines and trial functions must never
	// capture from an enclosing scope (parallel-state).
	ParallelSharedTypes []string
	// StrictTimePackages lists import paths held to the stricter fleet
	// timing rule: beyond wall-clock reads, every stdlib timer primitive
	// (time.Sleep, time.After, time.Tick, time.NewTimer, time.NewTicker,
	// time.AfterFunc) is flagged, because retry-backoff and lease-expiry
	// decisions there must flow through the injected fleet.Clock to stay
	// replayable under a manual clock.
	StrictTimePackages []string
	// TaintSources maps function keys ("time.Now",
	// "(dynaq/internal/fleet.WallClock).Now") to source descriptions for
	// determinism-taint. nil means the built-in default set.
	TaintSources map[string]string
	// TaintSinks maps function keys to sink descriptions; a tainted value
	// reaching an argument of one of these calls is a finding. An empty
	// map disables the analyzer.
	TaintSinks map[string]string
	// TaintSanitizers lists function keys whose return values are always
	// considered clean regardless of inputs (e.g. a hash of a sorted copy).
	TaintSanitizers []string
	// LockCheckedPackages lists import paths where lock-discipline runs:
	// "guarded by <mu>" field annotations are enforced, and functions that
	// spawn goroutines or call lease/queue mutators must accept a
	// context.Context.
	LockCheckedPackages []string
	// LockMutatorKeys lists function keys treated as lease/queue mutators
	// by lock-discipline's context rule.
	LockMutatorKeys []string
	// UnitsPackages lists import paths declaring dimensioned numeric types
	// (internal/units); units-consistency classifies those types into
	// dimensions by name and flags cross-dimension arithmetic.
	UnitsPackages []string
}

// DefaultConfig is the configuration for this repository: the packages that
// own Σ T_i == B, occupancy, and shared-pool accounting.
func DefaultConfig() Config {
	return Config{
		GuardedPackages: []string{
			"dynaq/internal/core",
			"dynaq/internal/buffer",
			"dynaq/internal/netsim",
		},
		ParallelSharedTypes: []string{
			"dynaq/internal/sim.Simulator",
			"dynaq/internal/telemetry.Run",
			"math/rand.Rand",
		},
		StrictTimePackages: []string{
			"dynaq/internal/fleet",
			// The fair queue is pure bookkeeping under its caller's lock:
			// time.Time flows in as parameters, never from a clock read, so
			// a deterministic test can replay any dispatch interleaving.
			"dynaq/internal/fairq",
			"dynaq/internal/server",
			"dynaq/internal/telemetry/trace",
			// The fluid engine derives every event time from simulated
			// quantities; a stdlib timer here would silently break the
			// byte-identical cache contract for flow-engine cells.
			"dynaq/internal/flowsim",
		},
		TaintSinks: map[string]string{
			"dynaq/internal/server.CacheKey":                   "content-addressed cache key",
			"dynaq/internal/telemetry.Hash":                    "scenario/artifact hash",
			"(dynaq/internal/telemetry.Run).Event":             "events.jsonl artifact",
			"(dynaq/internal/telemetry.Run).Summarize":         "manifest.json summary",
			"(dynaq/internal/telemetry.EventWriter).Event":     "events.jsonl artifact",
			"(dynaq/internal/sim.Simulator).At":                "event scheduling time",
			"(dynaq/internal/sim.Simulator).After":             "event scheduling time",
			"(dynaq/internal/sim.Simulator).AtCall":            "event scheduling time",
			"(dynaq/internal/sim.Simulator).AfterCall":         "event scheduling time",
			"(dynaq/internal/sim.Simulator).Every":             "event scheduling time",
			"(dynaq/internal/sim.Timer).Reset":                 "event scheduling time",
			"(dynaq/internal/flowsim.Engine).ScheduleArrival":  "flow arrival time",
			"(dynaq/internal/telemetry/trace.Tracer).SimSpan":  "sim-time span timestamp",
			"(dynaq/internal/telemetry/trace.SpanRef).SimSpan": "sim-time span timestamp",
		},
		LockCheckedPackages: []string{
			"dynaq/internal/fleet",
			"dynaq/internal/fairq",
			"dynaq/internal/server",
			"dynaq/internal/telemetry/trace",
		},
		LockMutatorKeys: []string{
			"(dynaq/internal/fleet.Table).Grant",
			"(dynaq/internal/fleet.Table).Renew",
			"(dynaq/internal/fleet.Table).Complete",
			"(dynaq/internal/fleet.Table).Expire",
			"(dynaq/internal/fleet.Table).DropJob",
			"(dynaq/internal/fleet.ReadyQueue).Push",
			"(dynaq/internal/fleet.ReadyQueue).Pop",
			"(dynaq/internal/fleet.ReadyQueue).Drain",
			"(dynaq/internal/fairq.Tree).Push",
			"(dynaq/internal/fairq.Tree).Pop",
			"(dynaq/internal/fairq.Tree).Release",
			"(dynaq/internal/fairq.Tree).Prune",
			"(dynaq/internal/fairq.JobQueue).Enqueue",
			"(dynaq/internal/fairq.JobQueue).Force",
			"(dynaq/internal/fairq.JobQueue).Pop",
		},
		UnitsPackages: []string{
			"dynaq/internal/units",
		},
	}
}

// Pass carries one analyzer's view of one type-checked package. Prog, when
// non-nil, is the whole-program function index the interprocedural analyzers
// consult; per-package analyzers ignore it.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Config    Config
	Prog      *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over a loaded package, applies the suppression
// directives found in its files, and returns the surviving diagnostics
// sorted by position. Malformed directives are reported under the
// "directive" pseudo-analyzer.
func Run(pkg *Package, analyzers []*Analyzer, cfg Config) []Diagnostic {
	return RunWithProgram(pkg, nil, analyzers, cfg)
}

// RunWithProgram is Run with a whole-program function index attached, which
// the interprocedural analyzers (determinism-taint) need to follow calls
// across package boundaries. prog may be nil, degrading those analyzers to
// intra-package resolution of whatever NewProgram indexed from pkg alone.
func RunWithProgram(pkg *Package, prog *Program, analyzers []*Analyzer, cfg Config) []Diagnostic {
	if prog == nil {
		prog = NewProgram([]*Package{pkg})
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Config:    cfg,
			Prog:      prog,
			diags:     &diags,
		}
		a.Run(pass)
	}

	allows, bad := parseDirectives(pkg.Fset, pkg.Files, analyzers)
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(allows, d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, bad...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// allowKey identifies a suppression site: one analyzer on one line of one
// file.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// parseDirectives scans every comment for //dynaqlint: directives. It
// returns the set of valid suppressions and a diagnostic per malformed
// directive (unknown verb or analyzer, missing reason).
func parseDirectives(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (map[allowKey]bool, []Diagnostic) {
	known := map[string]bool{"all": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows := make(map[allowKey]bool)
	var bad []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "directive",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "dynaqlint:") {
					continue
				}
				rest := strings.TrimPrefix(text, "dynaqlint:")
				fields := strings.Fields(rest)
				if len(fields) == 0 || fields[0] != "allow" {
					report(c.Pos(), "unknown dynaqlint directive %q (only \"allow\" is supported)", rest)
					continue
				}
				if len(fields) < 2 || !known[fields[1]] {
					names := make([]string, 0, len(known))
					for n := range known {
						names = append(names, n)
					}
					sort.Strings(names)
					report(c.Pos(), "dynaqlint:allow needs an analyzer name (one of %s)", strings.Join(names, ", "))
					continue
				}
				if len(fields) < 3 {
					report(c.Pos(), "dynaqlint:allow %s needs a reason explaining why the site is legitimate", fields[1])
					continue
				}
				pos := fset.Position(c.Pos())
				allows[allowKey{pos.Filename, pos.Line, fields[1]}] = true
			}
		}
	}
	return allows, bad
}

// suppressed reports whether a valid allow directive covers the diagnostic:
// matching analyzer (or "all") on the same line or the line directly above.
func suppressed(allows map[allowKey]bool, d Diagnostic) bool {
	for _, name := range []string{d.Analyzer, "all"} {
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			if allows[allowKey{d.Pos.Filename, line, name}] {
				return true
			}
		}
	}
	return false
}

// pkgFuncCall resolves call to a selector on an imported package and, when
// that package's path is one of paths, returns the function name selected.
// Shadowed identifiers (a local variable named rand) do not match, because
// resolution goes through the type-checker's Uses map.
func pkgFuncCall(info *types.Info, call *ast.CallExpr, paths ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	for _, p := range paths {
		if pn.Imported().Path() == p {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// rootIdent digs through parens, indexing, slicing, stars and field
// selection to the leftmost identifier of an lvalue-ish expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}
