package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ParallelState enforces the shared-nothing contract of the parallel trial
// harness (experiment.RunTrials): a worker goroutine or trial function must
// own its whole simulation world. Capturing a *sim.Simulator, a *rand.Rand,
// or a telemetry *Run from an enclosing scope hands the same mutable,
// single-goroutine object to concurrent trials — a data race that, even
// when it does not crash, silently destroys (scenario, seed) determinism.
//
// The check inspects every function literal that is either launched in a
// `go` statement or passed to a trial runner (RunTrials, RunSeeds) and
// flags free variables whose type is a pointer to one of the configured
// shared-state types. State created inside the literal is per-trial and
// never flagged.
var ParallelState = &Analyzer{
	Name: "parallel-state",
	Doc:  "flag worker goroutines and trial functions capturing per-trial engine state (Simulator, rand.Rand, telemetry.Run) from an enclosing scope",
	Run:  runParallelState,
}

// trialRunnerNames are the harness entry points whose function-literal
// arguments execute on worker goroutines.
var trialRunnerNames = map[string]bool{
	"RunTrials":    true,
	"RunTrialsCtx": true,
	"RunSeeds":     true,
}

func runParallelState(p *Pass) {
	banned := make(map[string]bool, len(p.Config.ParallelSharedTypes))
	for _, t := range p.Config.ParallelSharedTypes {
		banned[t] = true
	}
	if len(banned) == 0 {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					checkCaptures(p, lit, "worker goroutine", banned)
				}
			case *ast.CallExpr:
				if !isTrialRunnerCall(x) {
					return true
				}
				for _, arg := range x.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						checkCaptures(p, lit, "trial function", banned)
					}
				}
			}
			return true
		})
	}
}

// isTrialRunnerCall matches calls to RunTrials/RunSeeds whether spelled as a
// bare identifier (same package), a package selector (experiment.RunTrials),
// or a generic instantiation (RunTrials[int]).
func isTrialRunnerCall(call *ast.CallExpr) bool {
	fun := call.Fun
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ix.X
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		return trialRunnerNames[fn.Name]
	case *ast.SelectorExpr:
		return trialRunnerNames[fn.Sel.Name]
	}
	return false
}

// checkCaptures reports each free variable of lit whose type is a pointer to
// a banned shared-state type. A variable is free when its declaration lies
// outside the literal's source range — parameters and locals of the literal
// are per-trial by construction.
func checkCaptures(p *Pass, lit *ast.FuncLit, context string, banned map[string]bool) {
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if declaredWithin(v.Pos(), lit) {
			return true
		}
		name, bad := bannedPointerType(v.Type(), banned)
		if !bad {
			return true
		}
		seen[v] = true
		p.Reportf(id.Pos(), "%s captures shared %s %q from an enclosing scope; build per-trial state inside the function (shared-nothing trials)", context, name, v.Name())
		return true
	})
}

func declaredWithin(pos token.Pos, lit *ast.FuncLit) bool {
	return pos >= lit.Pos() && pos <= lit.End()
}

// bannedPointerType reports whether t is a pointer to a named type listed in
// the banned set (keys are "import/path.TypeName").
func bannedPointerType(t types.Type, banned map[string]bool) (string, bool) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	if !banned[full] {
		return "", false
	}
	return "*" + full, true
}
