package lint

import (
	"go/ast"
	"go/parser"
	"testing"
)

// FuzzLoadAndRun throws arbitrary Go source at the loader and the full
// analyzer set. The property under test is absence of panics: malformed,
// half-parsed, or ill-typed input must degrade to TypeErrors and best-effort
// diagnostics, never crash the linter (it gates CI, so a crash on one bad
// file would mask every other finding).
func FuzzLoadAndRun(f *testing.F) {
	f.Add("package fuzzpkg\n\nfunc ok() int { return 1 }\n")
	f.Add("package fuzzpkg\n\nimport \"time\"\n\nfunc Sink(s string)\n\nfunc bad() { Sink(time.Now().String()) }\n")
	f.Add("package fuzzpkg\n\ntype T struct {\n\tmu int\n\tx  int // guarded by mu\n}\n")
	f.Add("package fuzzpkg\n\ntype Time int64\n\nfunc add(a, b Time) Time { return a + b }\n")
	f.Add("package fuzzpkg\n\nfunc (") // malformed: truncated method decl
	f.Add("package fuzzpkg\n\nfunc cycle() { cycle() }\n")
	f.Add("package fuzzpkg\n\nfunc m() { x := map[int]int{}; for k := range x { _ = k } }\n")
	f.Add("\x00\xff not go at all")

	f.Fuzz(func(t *testing.T, src string) {
		// A fresh Loader per input keeps the shared FileSet bounded and makes
		// inputs independent, like real CLI invocations.
		l := NewLoader()
		file, err := parser.ParseFile(l.Fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if file == nil {
				return // nothing even partially parsed
			}
			// Keep going: LoadDir would reject this, but the analyzers must
			// survive partial ASTs regardless.
		}
		pkg := l.LoadFiles(".", "fuzzpkg", []*ast.File{file})
		cfg := DefaultConfig()
		cfg.TaintSinks["fuzzpkg.Sink"] = "fuzz sink"
		cfg.LockCheckedPackages = append(cfg.LockCheckedPackages, "fuzzpkg")
		cfg.UnitsPackages = append(cfg.UnitsPackages, "fuzzpkg")
		_ = Run(pkg, All(), cfg)
	})
}
