package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline is a checked-in snapshot of accepted findings. CI diffs the
// current run against it and fails only on findings that are not in the
// snapshot, which keeps legacy debt visible and auditable (unlike an allow
// directive, a baseline entry does not touch the offending file).
//
// Entries are keyed by (file, analyzer, message) with an occurrence count —
// deliberately no line numbers, so unrelated edits that shift a finding up
// or down the file do not invalidate the baseline, while a *new* instance of
// the same message in the same file (count exceeded) still fails.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one accepted finding class.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

func (e BaselineEntry) key() baselineKey {
	return baselineKey{e.File, e.Analyzer, e.Message}
}

type baselineKey struct {
	file, analyzer, message string
}

// NewBaseline aggregates diagnostics into a baseline, sorted for stable
// serialization. File paths are slash-normalized so the file diffs cleanly
// across platforms.
func NewBaseline(diags []Diagnostic) *Baseline {
	counts := make(map[baselineKey]int)
	for _, d := range diags {
		counts[baselineKey{filepath.ToSlash(d.Pos.Filename), d.Analyzer, d.Message}]++
	}
	b := &Baseline{Version: 1, Findings: []BaselineEntry{}}
	for k, n := range counts {
		b.Findings = append(b.Findings, BaselineEntry{File: k.file, Analyzer: k.analyzer, Message: k.message, Count: n})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// WriteFile serializes the baseline with a trailing newline.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a baseline written by WriteFile.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s: unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// ApplyBaseline subtracts the baseline from a run's diagnostics. It returns
// the findings NOT covered by the baseline (new findings, in input order)
// and the baseline entries whose findings no longer occur at the recorded
// count (stale — the debt was paid down and the baseline should be
// regenerated to match).
func ApplyBaseline(b *Baseline, diags []Diagnostic) (fresh []Diagnostic, stale []BaselineEntry) {
	budget := make(map[baselineKey]int, len(b.Findings))
	for _, e := range b.Findings {
		budget[e.key()] += e.Count
	}
	for _, d := range diags {
		k := baselineKey{filepath.ToSlash(d.Pos.Filename), d.Analyzer, d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Findings {
		k := e.key()
		if budget[k] > 0 {
			left := e
			left.Count = budget[k]
			stale = append(stale, left)
			budget[k] = 0 // attribute the remainder to the first duplicate entry
		}
	}
	return fresh, stale
}
