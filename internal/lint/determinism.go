package lint

import (
	"go/ast"
)

// Determinism flags the two stdlib escape hatches that make a simulation run
// depend on something other than (scenario, seed): wall-clock reads and the
// process-global math/rand source.
//
// Wall-clock reads (time.Now, time.Since, time.Until) smuggle host timing
// into the run; the simulator has its own virtual clock (sim.Now). The
// global math/rand functions (rand.Intn, rand.Float64, ...) share one
// process-wide generator whose state depends on everything else that drew
// from it, so two runs of the same scenario diverge. Seeded generators built
// with rand.New(rand.NewSource(seed)) are the sanctioned pattern and are not
// flagged — unless the source is itself seeded from a nondeterministic value
// such as time.Now().UnixNano() or os.Getpid().
//
// Packages listed in Config.StrictTimePackages are additionally held to the
// fleet timing rule: the stdlib timer primitives (time.Sleep, time.After,
// time.Tick, time.NewTimer, time.NewTicker, time.AfterFunc) are banned
// there, because retry-backoff and lease-expiry decisions must flow through
// the injected fleet.Clock — a raw timer would make those paths untestable
// under a manual clock and unreplayable in the chaos harness.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock reads, global/unseeded math/rand use, and raw timers in strict-time packages",
	Run:  runDeterminism,
}

// strictTimeFuncs are the stdlib timer primitives banned in strict-time
// packages.
var strictTimeFuncs = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

const randPath = "math/rand"

// randConstructors build explicitly-seeded generators; everything else at
// package level draws from the shared global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(p *Pass) {
	strictTime := false
	for _, path := range p.Config.StrictTimePackages {
		if p.Pkg != nil && p.Pkg.Path() == path {
			strictTime = true
			break
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pkgFuncCall(p.TypesInfo, call, "time"); ok {
				switch {
				case name == "Now" || name == "Since" || name == "Until":
					p.Reportf(call.Pos(), "wall-clock read time.%s breaks (scenario, seed) replay; use the simulator clock (sim.Now)", name)
				case strictTime && strictTimeFuncs[name]:
					p.Reportf(call.Pos(), "raw timer time.%s in strict-time package %s; lease-expiry and retry timing must flow through the injected fleet.Clock", name, p.Pkg.Path())
				}
				return true
			}
			if name, ok := pkgFuncCall(p.TypesInfo, call, randPath, randPath+"/v2"); ok {
				if !randConstructors[name] {
					p.Reportf(call.Pos(), "global math/rand source (rand.%s) is shared process state; draw from a seeded rand.New(rand.NewSource(seed))", name)
					return true
				}
				if name == "NewSource" || name == "NewZipf" {
					for _, arg := range call.Args {
						if bad, fn := nondetSeedCall(p, arg); bad {
							p.Reportf(arg.Pos(), "rand.%s seeded from a nondeterministic value (%s); derive the seed from the scenario seed", name, fn)
						}
					}
				}
			}
			return true
		})
	}
}

// nondetSeedCall reports whether the expression draws on a known
// nondeterministic source (wall clock, process identity).
func nondetSeedCall(p *Pass, e ast.Expr) (bad bool, fn string) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := pkgFuncCall(p.TypesInfo, call, "time"); ok {
			switch name {
			case "Now", "Since", "Until":
				bad, fn = true, "time."+name
				return false
			}
		}
		if name, ok := pkgFuncCall(p.TypesInfo, call, "os"); ok {
			switch name {
			case "Getpid", "Getppid":
				bad, fn = true, "os."+name
				return false
			}
		}
		return true
	})
	return bad, fn
}
