package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` loops over maps whose body performs an
// ordering-sensitive side effect. Go randomizes map iteration order on
// purpose, so any such loop produces a different event interleaving on every
// run — the exact bug class that breaks byte-identical replay.
//
// Side effects considered ordering-sensitive:
//
//   - appending to a slice declared outside the loop, unless that slice is
//     passed to a sort function later in the same function (the canonical
//     collect-keys-then-sort pattern);
//   - sending on a channel;
//   - compound accumulation (+=, -=, *=, /=) into a floating-point variable
//     declared outside the loop (float addition is not associative, so the
//     sum's low bits depend on visit order);
//   - calling a function or method whose name implies ordered consumption:
//     event scheduling (After, Schedule, ...), hooks and emitters (Emit,
//     Notify, ...), or stream output (Fprintf, Write, ...).
//
// Order-insensitive bodies — integer accumulation, min/max folds, writes
// keyed by the loop key — pass untouched.
var MapOrder = &Analyzer{
	Name: "map-order",
	Doc:  "flag ordering-sensitive side effects inside map iteration",
	Run:  runMapOrder,
}

// orderedSinkNames are method/function names whose invocation consumes
// values in call order: schedulers, hooks, channels-in-disguise, writers.
var orderedSinkNames = map[string]bool{
	"After": true, "At": true, "Schedule": true, "ScheduleAt": true,
	"Send": true, "Publish": true, "Emit": true, "Fire": true,
	"Notify": true, "Enqueue": true, "Push": true, "Record": true,
	"Observe": true, "Invoke": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// sortFuncs recognizes the stdlib sorters that launder a map-keyed slice
// back into a deterministic order.
var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"SortFunc": true, "SortStableFunc": true, // slices package
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		for _, body := range functionBodies(f) {
			checkFunctionBody(p, body)
		}
	}
}

// functionBodies returns every function body in the file: declarations and
// literals. Each is analyzed independently so a sort in an enclosing
// function cannot absolve a loop inside a closure and vice versa.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				bodies = append(bodies, x.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, x.Body)
		}
		return true
	})
	return bodies
}

// checkFunctionBody analyzes the map-range loops directly inside one
// function body (loops inside nested function literals are handled when the
// literal's own body is visited).
func checkFunctionBody(p *Pass, body *ast.BlockStmt) {
	sorts := sortCalls(p, body)
	inspectSkippingFuncLits(body, func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := p.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		checkMapRangeBody(p, rs, sorts)
	})
}

// inspectSkippingFuncLits walks the tree under root but does not descend
// into function literals.
func inspectSkippingFuncLits(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// sortCalls collects (object, position) for every stdlib sort invocation in
// the body, keyed by the root identifier of the first argument.
func sortCalls(p *Pass, body *ast.BlockStmt) map[types.Object][]token.Pos {
	out := make(map[types.Object][]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		name, ok := pkgFuncCall(p.TypesInfo, call, "sort", "slices")
		if !ok || !sortFuncs[name] {
			return true
		}
		if id := rootIdent(call.Args[0]); id != nil {
			if obj := p.TypesInfo.Uses[id]; obj != nil {
				out[obj] = append(out[obj], call.Pos())
			}
		}
		return true
	})
	return out
}

func checkMapRangeBody(p *Pass, rs *ast.RangeStmt, sorts map[types.Object][]token.Pos) {
	inspectSkippingFuncLits(rs.Body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.SendStmt:
			p.Reportf(x.Pos(), "channel send inside map iteration delivers values in randomized order; iterate sorted keys instead")
		case *ast.AssignStmt:
			checkMapRangeAssign(p, rs, x, sorts)
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && orderedSinkNames[sel.Sel.Name] {
				p.Reportf(x.Pos(), "call to %s inside map iteration fires in randomized order; iterate sorted keys instead", sel.Sel.Name)
			}
		}
	})
}

func checkMapRangeAssign(p *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, sorts map[types.Object][]token.Pos) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		// x = append(x, ...) builds a slice in map order. Allowed when the
		// slice is sorted after the loop (collect-then-sort).
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			obj := outerObject(p, rs, as.Lhs[i])
			if obj == nil {
				continue
			}
			if sortedAfter(sorts, obj, rs.End()) {
				continue
			}
			p.Reportf(rhs.Pos(), "append to %s inside map iteration records map order; sort %s afterwards or iterate sorted keys", obj.Name(), obj.Name())
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		obj := outerObject(p, rs, as.Lhs[0])
		if obj == nil {
			return
		}
		if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			p.Reportf(as.Pos(), "floating-point accumulation into %s inside map iteration is order-dependent (float addition is not associative); iterate sorted keys", obj.Name())
		}
	}
}

// outerObject resolves an assignment target to its object when that object
// is declared outside the range statement (mutating loop-local state is
// harmless, the damage is state that outlives the loop).
func outerObject(p *Pass, rs *ast.RangeStmt, lhs ast.Expr) types.Object {
	id := rootIdent(lhs)
	if id == nil {
		return nil
	}
	obj := p.TypesInfo.Uses[id]
	if obj == nil {
		obj = p.TypesInfo.Defs[id]
	}
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return nil // declared inside the loop
	}
	return obj
}

func sortedAfter(sorts map[types.Object][]token.Pos, obj types.Object, after token.Pos) bool {
	for _, pos := range sorts[obj] {
		if pos >= after {
			return true
		}
	}
	return false
}
