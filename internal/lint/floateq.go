package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. Threshold
// arithmetic (T_i, rates, Jain indices) accumulates rounding error, so exact
// identity tests silently flip between hosts and compiler versions, breaking
// replay comparisons. Compare against an epsilon, or restructure to integer
// byte counts (units.ByteSize) which compare exactly.
//
// Comparisons where both operands are compile-time constants are exempt:
// they are evaluated exactly, once, by the compiler.
var FloatEq = &Analyzer{
	Name: "float-eq",
	Doc:  "flag ==/!= between floating-point operands",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, okx := p.TypesInfo.Types[be.X]
			ty, oky := p.TypesInfo.Types[be.Y]
			if !okx || !oky {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // constant comparison, evaluated exactly
			}
			if isFloat(tx.Type) || isFloat(ty.Type) {
				p.Reportf(be.OpPos, "floating-point %s comparison is sensitive to rounding; compare with an epsilon or use integer units", be.Op)
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
