// Package fairqfix exercises lock-discipline over the fair-queue dispatch
// shapes introduced with internal/fairq: a generic tree whose Pop is a
// configured mutator (the key matches the generic origin, not one
// instantiation), the eligibility-callback closure frame rule, and the
// audited suppression the coordinator uses where the callback reads
// coordinator state while its caller holds the mutex. Checked with
// LockCheckedPackages = [fairqfix] and LockMutatorKeys =
// [(fairqfix.Tree).Pop].
package fairqfix

import (
	"context"
	"sync"
)

// Tree mirrors fairq.Tree: generic fair-queue state mutated by Pop under
// the caller's lock.
type Tree[T any] struct{ items []T }

// Pop is the configured mutator; the mutator itself is exempt from the ctx
// rule (pure bookkeeping under the caller's lock).
func (t *Tree[T]) Pop(eligible func(T) bool) (T, bool) {
	var zero T
	for i, v := range t.items {
		if eligible(v) {
			t.items = append(t.items[:i], t.items[i+1:]...)
			return v, true
		}
	}
	return zero, false
}

// Coord mirrors the coordinator around its fair tree.
type Coord struct {
	mu   sync.Mutex
	tree *Tree[int]   // guarded by mu
	busy map[int]bool // guarded by mu
}

// popNoCtx holds the lock but threads no context: the mutator rule fires
// even though the generic receiver is instantiated as Tree[int].
func (c *Coord) popNoCtx() { // want `lock-discipline: function popNoCtx calls lease/queue mutator`
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tree.Pop(func(int) bool { return true })
}

// popWithCtx threads cancellation and touches no guarded state from the
// callback: clean.
func (c *Coord) popWithCtx(ctx context.Context) (int, bool) {
	_ = ctx
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.Pop(func(int) bool { return true })
}

// popEligible shows the closure frame rule: popEligible holds mu, but the
// eligibility callback is its own frame and does not inherit the lock
// mention, so its guarded read is flagged.
func (c *Coord) popEligible(ctx context.Context) (int, bool) {
	_ = ctx
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.Pop(func(v int) bool {
		return !c.busy[v] // want `lock-discipline: field Coord.busy is guarded by mu`
	})
}

// popEligibleAllowed is the audited coordinator shape: the callback runs
// inline within Pop while the caller holds mu, so the access is suppressed
// with a written reason.
func (c *Coord) popEligibleAllowed(ctx context.Context) (int, bool) {
	_ = ctx
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree.Pop(func(v int) bool {
		//dynaqlint:allow lock-discipline the callback runs inline within Pop while popEligibleAllowed holds mu
		return !c.busy[v]
	})
}

// depthLocked follows the *Locked convention for guarded access; it calls
// no mutator, so the ctx rule stays silent.
func (c *Coord) depthLocked() int { return len(c.tree.items) }
