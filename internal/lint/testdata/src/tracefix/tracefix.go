// Package tracefix exercises the determinism-taint analyzer over the span
// layer's sim-time seam: a Tracer.SimSpan timestamp is simulation state, so
// wall-clock reads must never reach it — sim spans replay byte-identically
// only if their timestamps come from the engine. The fixture is checked with
// only determinism-taint enabled and (tracefix.Tracer).SimSpan configured as
// the sink, mirroring the real (trace.Tracer).SimSpan entry in DefaultConfig.
package tracefix

import "time"

// Tracer is the fixture's stand-in for trace.Tracer.
type Tracer struct{}

// SimSpan is the configured sink: start/end are sim-domain picoseconds.
func (t *Tracer) SimSpan(name string, start, end int64) string { return name }

// WallSpan is NOT a sink — wall-clock spans are supposed to carry wall time.
func (t *Tracer) WallSpan(name string, start, end time.Time) string { return name }

// clock mirrors the injected wall-clock seam; values drawn through it are
// clean because the implementation behind the interface is the audited edge.
type clock interface {
	Now() time.Time
}

// picos is a pure narrowing helper; taint rides through the parameter.
func picos(t time.Time) int64 { return t.UnixNano() * 1000 }

// wallIntoSimSpan is the acceptance case: a raw wall-clock read laundered
// through a helper into a sim-domain span timestamp.
func wallIntoSimSpan(tr *Tracer) string {
	return tr.SimSpan("run", 0, picos(time.Now())) // want `determinism-taint: .*time\.Now.*reaches determinism sink`
}

// --- clean cases: none of these may diagnose ------------------------------

// engineTime stands in for sim.Simulator.Now(): caller-supplied sim time is
// not a source.
func engineTime(tr *Tracer, now int64) string {
	return tr.SimSpan("run", 0, now)
}

// wallIntoWallSpan reads the clock through the interface seam and feeds a
// wall span — the intended pattern, and not a sink at all.
func wallIntoWallSpan(tr *Tracer, c clock) string {
	return tr.WallSpan("upload", c.Now(), c.Now())
}
