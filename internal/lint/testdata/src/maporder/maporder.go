// Package maporder exercises the map-order analyzer: ordering-sensitive
// side effects inside map iteration versus the sanctioned
// collect-keys-then-sort pattern and order-insensitive folds.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

// keysUnsorted records map order in a result slice and never sorts it.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map-order: append to out inside map iteration`
	}
	return out
}

// keysSorted is the canonical pattern and must NOT be flagged: the slice is
// laundered through sort.Strings after the loop.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sortSlice also launders via sort.Slice; clean.
func sortSlice(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func sendEach(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `map-order: channel send inside map iteration`
	}
}

// sumFloat is bitwise order-dependent: float addition is not associative.
func sumFloat(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `map-order: floating-point accumulation into s`
	}
	return s
}

// sumInt folds are exact and commutative; clean.
func sumInt(m map[string]int) int {
	var s int
	for _, v := range m {
		s += v
	}
	return s
}

// localState mutated inside the loop does not outlive it; clean.
func localFloat(m map[string]float64) int {
	n := 0
	for _, v := range m {
		x := 0.0
		x += v
		if x > 1 {
			n++
		}
	}
	return n
}

type engine struct{}

func (engine) After(d int, f func()) {}

// scheduleEach fires simulator events in map order — the exact bug class
// that breaks byte-identical replay.
func scheduleEach(m map[string]int, e engine) {
	for _, v := range m {
		e.After(v, func() {}) // want `map-order: call to After inside map iteration`
	}
}

func printEach(m map[string]int, w io.Writer) {
	for k := range m {
		fmt.Fprintf(w, "%s\n", k) // want `map-order: call to Fprintf inside map iteration`
	}
}

// rangeSlice shows the analyzer leaves non-map ranges alone.
func rangeSlice(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}

// suppressed documents a deliberate, justified exception.
func suppressed(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v //dynaqlint:allow map-order fixture: consumer folds commutatively, order provably irrelevant
	}
}
