// Package flowfix exercises the determinism-taint analyzer over the flow
// engine's scheduling seam: the arrival time handed to ScheduleArrival
// feeds the simulator's event heap, and through it every artifact byte of a
// flow-engine cell, so wall-clock reads must never reach it. The fixture is
// checked with only determinism-taint enabled and
// (flowfix.Engine).ScheduleArrival configured as the sink, mirroring the
// real (flowsim.Engine).ScheduleArrival entry in DefaultConfig.
package flowfix

import "time"

// Engine is the fixture's stand-in for flowsim.Engine.
type Engine struct{}

// ScheduleArrival is the configured sink: at is a sim-domain time.
func (e *Engine) ScheduleArrival(at int64, size int64) { _ = at }

// clock mirrors the injected wall-clock seam; values drawn through the
// interface are clean because the implementation behind it is the audited
// edge.
type clock interface {
	Now() time.Time
}

// jitter is a pure narrowing helper; taint rides through the parameter.
func jitter(t time.Time) int64 { return t.UnixNano() % 1000 }

// wallClockArrival is the acceptance case: a wall-clock read laundered
// through a helper into the arrival time.
func wallClockArrival(e *Engine) {
	e.ScheduleArrival(jitter(time.Now()), 1500) // want `determinism-taint: .*time\.Now.*reaches determinism sink`
}

// --- clean cases: none of these may diagnose ------------------------------

// seededArrival derives the arrival from caller-supplied sim time plus a
// deterministic offset — the pattern runDynamicFluid actually uses.
func seededArrival(e *Engine, base, gap int64) {
	e.ScheduleArrival(base+gap, 1500)
}

// clockSizeOnly reads the wall clock but only the size argument sees it —
// sizes do not reach the event heap. Taint into a non-time argument of the
// sink is still a finding by the analyzer's argument-agnostic rule, so this
// case routes the tainted value away from the call entirely.
func clockSizeOnly(e *Engine, c clock) {
	at := c.Now().UnixNano() // interface draw: clean by the seam rule
	e.ScheduleArrival(at, 1500)
}
