// Package parstate exercises the parallel-state analyzer. math/rand.Rand
// stands in for the per-trial engine state (Simulator, telemetry Run) that
// worker goroutines and trial functions must build for themselves.
package parstate

import "math/rand"

// RunTrials mimics the experiment harness entry point: its function-literal
// arguments execute on worker goroutines.
func RunTrials(n int, run func(int) int) {
	for i := 0; i < n; i++ {
		go func(i int) { _ = run(i) }(i)
	}
}

func sharedAcrossWorkers() {
	shared := rand.New(rand.NewSource(1))
	go func() {
		_ = shared.Int63() // want `parallel-state: worker goroutine captures shared \*math/rand\.Rand "shared" from an enclosing scope`
	}()
}

func perWorkerState() {
	go func() {
		local := rand.New(rand.NewSource(2))
		_ = local.Int63() // per-goroutine state: clean
	}()
}

func sharedIntoTrialFunc() {
	shared := rand.New(rand.NewSource(3))
	RunTrials(4, func(i int) int {
		return int(shared.Int63()) // want `parallel-state: trial function captures shared \*math/rand\.Rand "shared" from an enclosing scope`
	})
}

// RunTrialsCtx mimics the cancellable harness entry point; its trial
// functions run on the same worker pool as RunTrials.
func RunTrialsCtx(ctx any, n int, run func(int) int) {
	for i := 0; i < n; i++ {
		go func(i int) { _ = run(i) }(i)
	}
}

func sharedIntoCtxTrialFunc() {
	shared := rand.New(rand.NewSource(4))
	RunTrialsCtx(nil, 4, func(i int) int {
		return int(shared.Int63()) // want `parallel-state: trial function captures shared \*math/rand\.Rand "shared" from an enclosing scope`
	})
}

func perTrialState() {
	RunTrials(4, func(i int) int {
		local := rand.New(rand.NewSource(int64(i)))
		return int(local.Int63()) // per-trial state: clean
	})
}

func suppressedWithReason() {
	shared := rand.New(rand.NewSource(5))
	go func() {
		//dynaqlint:allow parallel-state fixture: single goroutine, joined before the next draw
		_ = shared.Int63()
	}()
}
