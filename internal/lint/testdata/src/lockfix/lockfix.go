// Package lockfix exercises the lock-discipline analyzer: "guarded by mu"
// field annotations, the *Locked naming convention, the
// constructor-before-publication exemption (which deliberately does NOT
// extend into closures), and the context rule for goroutine-spawning and
// lease-mutating functions. Checked with LockCheckedPackages = [lockfix]
// and LockMutatorKeys = [(lockfix.Table).Grant].
package lockfix

import (
	"context"
	"sync"
)

// Table mirrors fleet.Table: a lease-state mutator used by the ctx rule.
type Table struct{ n int }

// Grant is the configured mutator; as the mutator itself it is exempt from
// the ctx rule (bookkeeping under the caller's lock).
func (t *Table) Grant() { t.n++ }

// Coord mirrors the coordinator: annotated state beside its mutex.
type Coord struct {
	mu   sync.Mutex
	jobs map[string]int // guarded by mu
	seq  int            // guarded by mu
	free int            // unguarded on purpose: single-writer
}

// Broken carries an annotation naming a mutex field that does not exist.
type Broken struct {
	x int // guarded by nosuch // want `lock-discipline: guarded-by annotation names mutex "nosuch"`
}

// lockedRead holds mu across its guarded accesses: clean.
func (c *Coord) lockedRead() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs["a"] + c.seq
}

// unlockedRead reads guarded state without the lock.
func (c *Coord) unlockedRead() int {
	return c.seq // want `lock-discipline: field Coord.seq is guarded by mu`
}

// unlockedWrite mutates guarded state without the lock.
func (c *Coord) unlockedWrite() {
	c.jobs["a"] = 1 // want `lock-discipline: field Coord.jobs is guarded by mu`
}

// freeAccess touches the unannotated field: no lock needed.
func (c *Coord) freeAccess() int { return c.free }

// sizeLocked follows the naming convention: the caller holds mu.
func (c *Coord) sizeLocked() int { return len(c.jobs) }

// build initializes guarded fields before the value is published: exempt.
func build() *Coord {
	c := &Coord{jobs: make(map[string]int)}
	c.seq = 1
	return c
}

// leakClosure shows the constructor exemption stopping at a closure
// boundary: the closure outlives construction, so it needs the lock.
func leakClosure() func() int {
	c := &Coord{}
	return func() int {
		return c.seq // want `lock-discipline: field Coord.seq is guarded by mu`
	}
}

// lockedClosure takes the lock inside the closure frame: clean.
func lockedClosure() func() int {
	c := &Coord{}
	return func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.seq
	}
}

// spawnsNoCtx starts a goroutine without accepting a context.
func (c *Coord) spawnsNoCtx() { // want `lock-discipline: function spawnsNoCtx spawns a goroutine`
	go func() { _ = c }()
}

// spawnsWithCtx threads the context: clean.
func (c *Coord) spawnsWithCtx(ctx context.Context) {
	go func() { <-ctx.Done() }()
}

// mutatesNoCtx calls the lease mutator without a context.
func mutatesNoCtx(t *Table) { // want `lock-discipline: function mutatesNoCtx calls lease/queue mutator`
	t.Grant()
}

// mutatesWithCtx threads the context: clean.
func mutatesWithCtx(ctx context.Context, t *Table) {
	_ = ctx
	t.Grant()
}

// suppressedSpawn shows the escape hatch with a written reason.
//dynaqlint:allow lock-discipline fixture demonstrates an audited suppression
func suppressedSpawn(c *Coord) {
	go func() { _ = c }()
}
