// Package floateq exercises the float-eq analyzer: exact identity tests on
// floating-point operands versus exempt constant and integer comparisons.
package floateq

type rate float64

func eq(a, b float64) bool {
	return a == b // want `float-eq: floating-point == comparison`
}

func neq(a, b float32) bool {
	return a != b // want `float-eq: floating-point != comparison`
}

// namedFloat catches defined types whose underlying type is a float.
func namedFloat(a, b rate) bool {
	return a == b // want `float-eq: floating-point == comparison`
}

func zeroCmp(x float64) bool {
	return x == 0 // want `float-eq: floating-point == comparison`
}

// constOnly is folded exactly by the compiler; clean.
func constOnly() bool {
	const x = 1.5
	return x == 1.5
}

// ints compare exactly; clean.
func intCmp(a, b int) bool {
	return a == b
}

// ordering comparisons are fine — only identity is flagged.
func lessCmp(a, b float64) bool {
	return a < b
}

// epsilon is the sanctioned pattern; clean.
func epsilonCmp(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// suppressed documents a deliberate, justified exception.
func suppressed(x float64) bool {
	//dynaqlint:allow float-eq fixture: zero-value sentinel for an unset field
	return x == 0
}
