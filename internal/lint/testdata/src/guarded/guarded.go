// Package guarded mimics an invariant-owning package (internal/core,
// internal/buffer, internal/netsim): its struct fields hold audited state
// that only its own accessor methods may mutate. The fixture config lists
// this package in GuardedPackages.
package guarded

// State mirrors per-port DynaQ bookkeeping: Σ Thresholds must stay equal to
// Buffer, and Occupancy must track the queues exactly.
type State struct {
	Occupancy  int
	Thresholds []int
	Buffer     int
}

// SetOccupancy is the sanctioned mutation path; writes inside the declaring
// package are never flagged.
func (s *State) SetOccupancy(n int) { s.Occupancy = n }

// Shift moves budget between two thresholds, preserving the sum.
func (s *State) Shift(from, to, n int) {
	s.Thresholds[from] -= n
	s.Thresholds[to] += n
}
