// Package taintfix exercises the determinism-taint analyzer: nondeterminism
// sources must not flow — through any number of helpers — into the
// configured sinks (taintfix.CacheKey, taintfix.WriteEvent). The fixture is
// checked with only the determinism-taint analyzer enabled, so the raw
// time.Now() calls inside helpers carry no determinism wants.
package taintfix

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// CacheKey is the fixture's stand-in for server.CacheKey (a configured sink).
func CacheKey(version, hash string, seed int64) string {
	return version + "/" + hash + "/" + fmt.Sprint(seed)
}

// WriteEvent is the fixture's stand-in for a telemetry artifact writer.
func WriteEvent(kind string, at int64) { _ = kind }

// clock mirrors fleet.Clock: values drawn through an interface seam are
// clean — the implementation behind it is the audited edge.
type clock interface {
	Now() time.Time
}

// stamp is helper one: the wall-clock read happens here, two frames away
// from any sink.
func stamp() time.Time { return time.Now() }

// render is helper two: pure formatting; taint rides through the parameter.
func render(t time.Time) string { return t.String() }

// launderedThroughHelpers is the acceptance case: time.Now() laundered
// through two helper calls into the cache key.
func launderedThroughHelpers() string {
	return CacheKey("v1", render(stamp()), 7) // want `determinism-taint: .*time\.Now.*reaches determinism sink`
}

// directSource feeds the sink straight from the source via a method chain.
func directSource() string {
	return CacheKey("v1", time.Now().String(), 1) // want `determinism-taint: .*time\.Now.*reaches determinism sink`
}

// environmentKey smuggles host state into the key.
func environmentKey() string {
	return CacheKey("v1", os.Getenv("HOME"), 1) // want `determinism-taint: .*os\.Getenv.*reaches determinism sink`
}

// pointerKey formats a pointer address, which differs between runs.
func pointerKey(v *int) string {
	return CacheKey("v1", fmt.Sprintf("%p", v), 1) // want `determinism-taint: .*%p pointer formatting.*reaches determinism sink`
}

// mapOrderKey folds map-iteration order into the key.
func mapOrderKey(m map[string]int) string {
	var parts []string
	for k := range m {
		parts = append(parts, k)
	}
	return CacheKey("v1", strings.Join(parts, ","), 1) // want `determinism-taint: .*map iteration order.*reaches determinism sink`
}

// eventAtWallClock schedules an artifact event off the wall clock, through a
// helper that narrows it to int64.
func nanos(t time.Time) int64 { return t.UnixNano() }

func eventAtWallClock() {
	WriteEvent("tick", nanos(stamp())) // want `determinism-taint: .*time\.Now.*reaches determinism sink`
}

// --- clean cases: none of these may diagnose ------------------------------

// sortedKey is the canonical collect-then-sort idiom: sorting destroys the
// iteration-order taint.
func sortedKey(m map[string]int) string {
	var parts []string
	for k := range m {
		parts = append(parts, k)
	}
	sort.Strings(parts)
	return CacheKey("v1", strings.Join(parts, ","), 1)
}

// viaInjectedClock draws time through the interface seam — the fleet.Clock
// pattern — and must stay silent even though the value reaches the sink.
func viaInjectedClock(c clock) string {
	return CacheKey("v1", render(c.Now()), 9)
}

// paramKey hashes caller-supplied data; parameters are not sources.
func paramKey(scenario string, seed int64) string {
	return CacheKey("v1", scenario, seed)
}

// suppressedKey shows the escape hatch: an allow directive with a reason.
func suppressedKey() string {
	//dynaqlint:allow determinism-taint fixture demonstrates an audited suppression
	return CacheKey("v1", render(stamp()), 8)
}
