// Package determ exercises the determinism analyzer: wall-clock reads,
// global math/rand use, nondeterministically-seeded sources, and the
// suppression directive.
package determ

import (
	"math/rand"
	"time"
)

type config struct{ Seed int64 }

func wallClock() time.Time {
	return time.Now() // want `determinism: wall-clock read time\.Now`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `determinism: wall-clock read time\.Since`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `determinism: wall-clock read time\.Until`
}

func globalInt() int {
	return rand.Intn(10) // want `determinism: global math/rand source \(rand\.Intn\)`
}

func globalFloat() float64 {
	return rand.Float64() // want `determinism: global math/rand source \(rand\.Float64\)`
}

// seeded is the sanctioned pattern and must NOT be flagged: the generator is
// explicitly seeded from scenario configuration.
func seeded(c config) float64 {
	rng := rand.New(rand.NewSource(c.Seed))
	return rng.Float64()
}

// derivedSeed mixes the scenario seed deterministically; also clean.
func derivedSeed(c config, stream int64) float64 {
	rng := rand.New(rand.NewSource(c.Seed ^ stream))
	return rng.Float64()
}

func wallSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `determinism: wall-clock read time\.Now` `determinism: rand\.NewSource seeded from a nondeterministic value \(time\.Now\)`
}

// shadowed uses a local identifier named rand; resolution goes through the
// type-checker, so this must NOT be flagged.
func shadowed() int {
	rand := struct{ Intn func(int) int }{Intn: func(n int) int { return n }}
	return rand.Intn(10)
}

func allowedTrailing() time.Time {
	return time.Now() //dynaqlint:allow determinism fixture: progress timing only, never feeds simulation state
}

func allowedAbove() time.Time {
	//dynaqlint:allow determinism fixture: progress timing only, never feeds simulation state
	return time.Now()
}

// tooFarAway shows that a directive two lines up does not suppress.
func tooFarAway() time.Time {
	//dynaqlint:allow determinism fixture: this directive is not adjacent to the call

	return time.Now() // want `determinism: wall-clock read time\.Now`
}

// wrongAnalyzer shows that an allow for a different analyzer does not
// suppress a determinism finding.
func wrongAnalyzer() time.Time {
	return time.Now() //dynaqlint:allow float-eq fixture: suppresses the wrong analyzer // want `determinism: wall-clock read time\.Now`
}
