// Package fleetdet exercises the strict-time extension of the determinism
// analyzer: in a package listed in Config.StrictTimePackages, the stdlib
// timer primitives are banned alongside wall-clock reads — lease-expiry and
// retry-backoff timing must flow through an injected clock — while plain
// time.Duration arithmetic and an explicitly-suppressed edge adapter stay
// clean.
package fleetdet

import "time"

// clock mimics the injected fleet.Clock; calls through it are the
// sanctioned pattern and must NOT be flagged.
type clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

func sleepRetry(d time.Duration) {
	time.Sleep(d) // want `determinism: raw timer time\.Sleep in strict-time package fleetdet`
}

func rawAfter(d time.Duration) <-chan time.Time {
	return time.After(d) // want `determinism: raw timer time\.After in strict-time package fleetdet`
}

func rawTick(d time.Duration) <-chan time.Time {
	return time.Tick(d) // want `determinism: raw timer time\.Tick in strict-time package fleetdet`
}

func rawTimer(d time.Duration) *time.Timer {
	return time.NewTimer(d) // want `determinism: raw timer time\.NewTimer in strict-time package fleetdet`
}

func rawTicker(d time.Duration) *time.Ticker {
	return time.NewTicker(d) // want `determinism: raw timer time\.NewTicker in strict-time package fleetdet`
}

func rawAfterFunc(d time.Duration, f func()) *time.Timer {
	return time.AfterFunc(d, f) // want `determinism: raw timer time\.AfterFunc in strict-time package fleetdet`
}

// wallRead shows the base rule still applies in strict packages.
func wallRead() time.Time {
	return time.Now() // want `determinism: wall-clock read time\.Now`
}

// injected waits through the clock interface; clean.
func injected(c clock, d time.Duration) time.Time {
	<-c.After(d)
	return c.Now() //dynaqlint:allow determinism fixture: edge-adapter stand-in, mirrors fleet.WallClock
}

// arithmetic shows plain duration math is untouched by the strict rule.
func arithmetic(ttl time.Duration) time.Duration {
	return ttl/3 + 5*time.Millisecond
}

// adapter is the sanctioned escape hatch: a suppressed raw timer, mirroring
// fleet.WallClock.After.
func adapter(d time.Duration) <-chan time.Time {
	return time.After(d) //dynaqlint:allow determinism fixture: the one audited edge adapter behind the injected clock
}
