// Package unitsfix exercises the units-consistency analyzer over the
// unitsdef dimensions: cross-dimension conversions, raw +/- on absolute
// sim-times, and dimensioned-value-vs-bare-literal arithmetic. Checked with
// UnitsPackages = [unitsdef].
package unitsfix

import "unitsdef"

// bytesAsTime reinterprets a byte count as a sim-time: flagged.
func bytesAsTime(b unitsdef.ByteSize) unitsdef.Time {
	return unitsdef.Time(b) // want `units-consistency: conversion Time\(ByteSize\) crosses units dimensions`
}

// rateAsBytes reinterprets a rate as a byte count: flagged.
func rateAsBytes(r unitsdef.Rate) unitsdef.ByteSize {
	return unitsdef.ByteSize(r) // want `units-consistency: conversion ByteSize\(Rate\) crosses units dimensions`
}

// timePlusTime adds two absolute times: meaningless.
func timePlusTime(a, b unitsdef.Time) unitsdef.Time {
	return a + b // want `units-consistency: adding two absolute sim-times`
}

// timeMinusTime subtracts raw: should use Sub for an explicit Duration.
func timeMinusTime(a, b unitsdef.Time) unitsdef.Duration {
	return unitsdef.Duration(a - b) // want `units-consistency: subtracting two absolute sim-times`
}

// bareThreshold compares a duration against a unitless magnitude.
func bareThreshold(d unitsdef.Duration) bool {
	return d > 1500 // want `units-consistency: Duration value compared/combined \(>\) with bare literal 1500`
}

// bareOffset adds a unitless magnitude to a byte count.
func bareOffset(b unitsdef.ByteSize) unitsdef.ByteSize {
	return b + 64 // want `units-consistency: ByteSize value compared/combined \(\+\) with bare literal 64`
}

// --- clean cases: none of these may diagnose ------------------------------

// zeroCompare against 0 is dimensionless and fine.
func zeroCompare(d unitsdef.Duration) bool { return d > 0 }

// scalarScale multiplies by a dimensionless factor: fine.
func scalarScale(d unitsdef.Duration) unitsdef.Duration { return d * 2 }

// namedConstant compares like against like.
func namedConstant(d unitsdef.Duration) bool { return d > unitsdef.Millisecond }

// sameClassConversion moves within the sim-time dimension.
func sameClassConversion(d unitsdef.Duration) unitsdef.Time { return unitsdef.Time(d) }

// methodCrossing uses the sanctioned Add/Sub methods.
func methodCrossing(t unitsdef.Time, d unitsdef.Duration) unitsdef.Duration {
	return t.Add(d).Sub(t)
}

// suppressedCast shows the escape hatch with a written reason.
func suppressedCast(b unitsdef.ByteSize) unitsdef.Time {
	//dynaqlint:allow units-consistency fixture demonstrates an audited suppression
	return unitsdef.Time(b)
}
