// Package unitsdef mirrors internal/units for the units-consistency
// fixture: the dimension-declaring package, which is exempt from the checks
// (it builds its constants out of raw literals and its methods are the
// sanctioned dimension crossings).
package unitsdef

// Time is an absolute sim-time in picoseconds since the epoch.
type Time int64

// Duration is a span of sim-time in picoseconds.
type Duration int64

// ByteSize is a data quantity in bytes.
type ByteSize int64

// Rate is a link rate in bits per second.
type Rate int64

// Raw-literal constant arithmetic: legal here, in the declaring package.
const (
	Picosecond  Duration = 1
	Microsecond          = 1_000_000 * Picosecond
	Millisecond          = 1000 * Microsecond
)

const KB ByteSize = 1000

// Add offsets an absolute time by a span — the sanctioned crossing.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub yields the span between two absolute times.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }
