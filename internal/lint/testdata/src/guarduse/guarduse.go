// Package guarduse exercises the guard-invariant analyzer: it imports the
// fixture's invariant-owning package and mutates its fields directly.
package guarduse

import "guarded"

func mutate(s *guarded.State) {
	s.Occupancy = 5      // want `guard-invariant: direct mutation of guarded\.Occupancy`
	s.Occupancy++        // want `guard-invariant: direct mutation of guarded\.Occupancy`
	s.Occupancy += 3     // want `guard-invariant: direct mutation of guarded\.Occupancy`
	s.Thresholds[0] = 1  // want `guard-invariant: direct mutation of guarded\.Thresholds`
	s.Thresholds[1] -= 2 // want `guard-invariant: direct mutation of guarded\.Thresholds`
}

// viaAccessor is the sanctioned path; clean.
func viaAccessor(s *guarded.State) {
	s.SetOccupancy(5)
	s.Shift(0, 1, 2)
}

// reads never mutate; clean.
func reads(s *guarded.State) int {
	return s.Occupancy + s.Thresholds[0] + s.Buffer
}

// localStruct fields live in this package; clean.
type localStruct struct{ Occupancy int }

func localWrite(l *localStruct) { l.Occupancy = 9 }

// suppressed documents a deliberate, justified exception.
func suppressed(s *guarded.State) {
	s.Buffer = 10 //dynaqlint:allow guard-invariant fixture: test harness resizing the buffer before the run starts
}
