package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixtureDir loads one testdata package with the given loader.
func loadFixtureDir(t *testing.T, l *Loader, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := l.LoadDir(dir, name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: typecheck: %v", name, terr)
	}
	return pkg
}

// chainImporter serves already-type-checked fixture packages by import path
// and defers everything else (stdlib) to the source importer.
type chainImporter struct {
	known    map[string]*types.Package
	fallback types.Importer
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p := c.known[path]; p != nil {
		return p, nil
	}
	return c.fallback.Import(path)
}

func (c chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p := c.known[path]; p != nil {
		return p, nil
	}
	if from, ok := c.fallback.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return c.fallback.Import(path)
}

// fixtureConfig guards the fixture's invariant-owning package instead of the
// real simulator packages, bans the stdlib rand.Rand as the stand-in shared
// parallel state, and holds the fleetdet fixture to the strict-time rule.
func fixtureConfig() Config {
	return Config{
		GuardedPackages:     []string{"guarded"},
		ParallelSharedTypes: []string{"math/rand.Rand"},
		StrictTimePackages:  []string{"fleetdet"},
	}
}

// TestFixtures runs every analyzer over each annotated fixture and matches
// the diagnostics against the // want comments — including the suppression
// directives and the seeded-rand false-positive cases, which must stay
// silent.
func TestFixtures(t *testing.T) {
	for _, name := range []string{"determ", "fleetdet", "maporder", "floateq", "parstate"} {
		name := name
		t.Run(name, func(t *testing.T) {
			pkg := loadFixtureDir(t, NewLoader(), name)
			checkFixture(t, pkg, fixtureConfig())
		})
	}
}

// TestGuardFixture type-checks the two-package guard fixture — the
// invariant owner and a mutating importer — and verifies both that
// cross-package writes are flagged and that the owner itself is exempt.
func TestGuardFixture(t *testing.T) {
	l := NewLoader()
	owner := loadFixtureDir(t, l, "guarded")
	l.Importer = chainImporter{
		known:    map[string]*types.Package{"guarded": owner.Types},
		fallback: l.Importer,
	}
	user := loadFixtureDir(t, l, "guarduse")
	checkFixture(t, owner, fixtureConfig())
	checkFixture(t, user, fixtureConfig())
}

func checkFixture(t *testing.T, pkg *Package, cfg Config) {
	t.Helper()
	checkFixtureWith(t, pkg, cfg, All())
}

// checkFixtureWith runs only the given analyzers, so fixtures for one
// analyzer need not annotate the (intentional) findings of every other —
// the taint fixture's helper time.Now() calls would otherwise need
// determinism wants on lines the taint analyzer must stay silent about.
func checkFixtureWith(t *testing.T, pkg *Package, cfg Config, analyzers []*Analyzer) {
	t.Helper()
	diags := Run(pkg, analyzers, cfg)
	wants, err := ParseWants(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatal(err)
	}
	for _, problem := range CheckWants(wants, diags) {
		t.Error(problem)
	}
}

// TestTaintFixture runs the interprocedural determinism-taint analyzer over
// its fixture: sources laundered through helpers must reach the configured
// sinks, while sorted map keys, interface-clock draws, and parameters stay
// silent.
func TestTaintFixture(t *testing.T) {
	pkg := loadFixtureDir(t, NewLoader(), "taintfix")
	cfg := Config{
		TaintSinks: map[string]string{
			"taintfix.CacheKey":   "content-addressed cache key",
			"taintfix.WriteEvent": "events artifact",
		},
	}
	checkFixtureWith(t, pkg, cfg, []*Analyzer{DeterminismTaint})
}

// TestTraceFixture runs determinism-taint over the span-layer fixture: a
// wall-clock read laundered through a narrowing helper into a sim-domain
// span timestamp must be flagged, while engine-supplied sim time and
// interface-clock wall spans stay silent.
func TestTraceFixture(t *testing.T) {
	pkg := loadFixtureDir(t, NewLoader(), "tracefix")
	cfg := Config{
		TaintSinks: map[string]string{
			"(tracefix.Tracer).SimSpan": "sim-time span timestamp",
		},
	}
	checkFixtureWith(t, pkg, cfg, []*Analyzer{DeterminismTaint})
}

// TestFlowFixture runs determinism-taint over the flow-engine fixture: a
// wall-clock read laundered into a ScheduleArrival time must be flagged,
// while seeded sim-time arrivals and interface-clock draws stay silent.
func TestFlowFixture(t *testing.T) {
	pkg := loadFixtureDir(t, NewLoader(), "flowfix")
	cfg := Config{
		TaintSinks: map[string]string{
			"(flowfix.Engine).ScheduleArrival": "flow arrival time",
		},
	}
	checkFixtureWith(t, pkg, cfg, []*Analyzer{DeterminismTaint})
}

// TestLockFixture runs lock-discipline over its fixture: guarded-field
// misses, the *Locked and constructor exemptions, closures, and the ctx
// rule for spawners and mutators.
func TestLockFixture(t *testing.T) {
	pkg := loadFixtureDir(t, NewLoader(), "lockfix")
	cfg := Config{
		LockCheckedPackages: []string{"lockfix"},
		LockMutatorKeys:     []string{"(lockfix.Table).Grant"},
	}
	checkFixtureWith(t, pkg, cfg, []*Analyzer{LockDiscipline})
}

// TestFairqFixture runs lock-discipline over the fair-queue fixture: a
// generic mutator key matching across instantiations, the eligibility-
// callback closure frame rule, and the audited inline-callback suppression.
func TestFairqFixture(t *testing.T) {
	pkg := loadFixtureDir(t, NewLoader(), "fairqfix")
	cfg := Config{
		LockCheckedPackages: []string{"fairqfix"},
		LockMutatorKeys:     []string{"(fairqfix.Tree).Pop"},
	}
	checkFixtureWith(t, pkg, cfg, []*Analyzer{LockDiscipline})
}

// TestUnitsFixture type-checks the two-package units fixture — the
// dimension-declaring package and a consumer — and verifies both that mixed
// arithmetic is flagged in the consumer and that the declaring package is
// exempt.
func TestUnitsFixture(t *testing.T) {
	l := NewLoader()
	def := loadFixtureDir(t, l, "unitsdef")
	l.Importer = chainImporter{
		known:    map[string]*types.Package{"unitsdef": def.Types},
		fallback: l.Importer,
	}
	use := loadFixtureDir(t, l, "unitsfix")
	cfg := Config{UnitsPackages: []string{"unitsdef"}}
	if diags := Run(def, []*Analyzer{UnitsConsistency}, cfg); len(diags) != 0 {
		t.Errorf("declaring package must be exempt, got %v", diags)
	}
	checkFixtureWith(t, use, cfg, []*Analyzer{UnitsConsistency})
}

// TestMalformedDirectives feeds in-memory sources with broken suppression
// comments and checks each is reported (and does not suppress anything).
func TestMalformedDirectives(t *testing.T) {
	cases := []struct {
		name, src, want string
		stillFlagged    bool
	}{
		{
			name: "missing reason",
			src: `package p
import "time"
func f() time.Time {
	//dynaqlint:allow determinism
	return time.Now()
}`,
			want:         "needs a reason",
			stillFlagged: true,
		},
		{
			name: "unknown analyzer",
			src: `package p
func f() int {
	//dynaqlint:allow frobnicate because reasons
	return 1
}`,
			want: "needs an analyzer name",
		},
		{
			name: "unknown verb",
			src: `package p
func f() int {
	//dynaqlint:forbid determinism nope
	return 1
}`,
			want: `only "allow" is supported`,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			l := NewLoader()
			f, err := parser.ParseFile(l.Fset, "fix.go", tc.src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatal(err)
			}
			pkg := l.LoadFiles(".", "p", []*ast.File{f})
			diags := Run(pkg, All(), fixtureConfig())
			var directive, determinism bool
			for _, d := range diags {
				switch d.Analyzer {
				case "directive":
					directive = true
					if !strings.Contains(d.Message, tc.want) {
						t.Errorf("directive diagnostic %q does not mention %q", d.Message, tc.want)
					}
				case "determinism":
					determinism = true
				}
			}
			if !directive {
				t.Errorf("malformed directive not reported; got %v", diags)
			}
			if determinism != tc.stillFlagged {
				t.Errorf("determinism flagged = %v, want %v (malformed directives must not suppress); got %v", determinism, tc.stillFlagged, diags)
			}
		})
	}
}

// TestInjectedWallClockCaught is the acceptance drill: plant a time.Now()
// into internal/sim (in memory — the tree is untouched), type-check the
// package, and require a correctly-positioned determinism diagnostic. This
// is exactly the regression the CI gate would catch.
func TestInjectedWallClockCaught(t *testing.T) {
	moduleRoot, modulePath, err := ModuleInfo(".")
	if err != nil {
		t.Fatal(err)
	}
	simDir := filepath.Join(moduleRoot, "internal", "sim")

	l := NewLoader()
	pkg, err := l.LoadDir(simDir, modulePath+"/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(pkg, All(), DefaultConfig()); len(diags) != 0 {
		t.Fatalf("internal/sim should be clean before injection, got %v", diags)
	}

	injected := filepath.Join(simDir, "zz_injected_clock.go")
	src := `package sim

import "time"

// injectedNow is the nondeterminism bug the linter must catch.
func injectedNow() time.Time { return time.Now() }
`
	f, err := parser.ParseFile(l.Fset, injected, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg = l.LoadFiles(simDir, modulePath+"/internal/sim", append(pkg.Files, f))
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("injected package must still type-check: %v", terr)
	}
	diags := Run(pkg, All(), DefaultConfig())
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic after injection, got %v", diags)
	}
	d := diags[0]
	if d.Analyzer != "determinism" || d.Pos.Filename != injected || d.Pos.Line != 6 {
		t.Fatalf("want determinism diagnostic at %s:6, got %v", injected, d)
	}
}

// TestCleanTree is the in-process version of the CI gate: every package in
// the module must lint clean with the default configuration.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	moduleRoot, modulePath, err := ModuleInfo(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns([]string{moduleRoot + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 15 {
		t.Fatalf("pattern expansion found only %d package dirs: %v", len(dirs), dirs)
	}
	l := NewLoader()
	for _, dir := range dirs {
		importPath, err := DirImportPath(moduleRoot, modulePath, dir)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := l.LoadDir(dir, importPath)
		if err != nil {
			t.Fatalf("%s: %v", importPath, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: typecheck: %v", importPath, terr)
		}
		for _, d := range Run(pkg, All(), DefaultConfig()) {
			t.Errorf("%s: unsuppressed diagnostic: %s", importPath, d)
		}
	}
}

// TestExpandPatternsSkipsTestdata ensures fixtures and hidden dirs never
// leak into a ./... lint run.
func TestExpandPatternsSkipsTestdata(t *testing.T) {
	moduleRoot, _, err := ModuleInfo(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns([]string{moduleRoot + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("testdata dir leaked into expansion: %s", d)
		}
	}
}

// TestOutputFormats pins the text and JSON renderings CI tooling parses.
func TestOutputFormats(t *testing.T) {
	diags := []Diagnostic{{
		Analyzer: "determinism",
		Message:  "wall-clock read",
	}}
	diags[0].Pos.Filename = "a/b.go"
	diags[0].Pos.Line = 3
	diags[0].Pos.Column = 7

	var text strings.Builder
	if err := WriteText(&text, diags); err != nil {
		t.Fatal(err)
	}
	if got, want := text.String(), "a/b.go:3:7: determinism: wall-clock read\n"; got != want {
		t.Errorf("WriteText = %q, want %q", got, want)
	}

	var js strings.Builder
	if err := WriteJSON(&js, diags); err != nil {
		t.Fatal(err)
	}
	want := `{"file":"a/b.go","line":3,"col":7,"analyzer":"determinism","message":"wall-clock read"}` + "\n"
	if js.String() != want {
		t.Errorf("WriteJSON = %q, want %q", js.String(), want)
	}
}

// TestDiagnosticString keeps the human format stable for editors that parse
// file:line:col.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "float-eq", Message: "m"}
	d.Pos.Filename = "x.go"
	d.Pos.Line, d.Pos.Column = 1, 2
	if got, want := fmt.Sprint(d), "x.go:1:2: float-eq: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
