package lint

import (
	"go/ast"
	"go/types"
)

// GuardInvariant protects the audited invariant state — DynaQ thresholds
// (Σ T_i == B), port occupancy, shared-pool accounting — from drive-by
// mutation. The owning packages (Config.GuardedPackages) maintain those
// invariants inside accessor methods; a write to one of their struct fields
// from any other package bypasses the bookkeeping the runtime guardrail
// audits, so it is flagged regardless of whether the field happens to be
// exported today.
//
// Reads are fine; so are writes from inside the declaring package, where the
// accessors live.
var GuardInvariant = &Analyzer{
	Name: "guard-invariant",
	Doc:  "flag cross-package writes to invariant-owning struct fields",
	Run:  runGuardInvariant,
}

func runGuardInvariant(p *Pass) {
	if p.Pkg == nil {
		return
	}
	self := p.Pkg.Path()
	guarded := make(map[string]bool, len(p.Config.GuardedPackages))
	for _, g := range p.Config.GuardedPackages {
		guarded[g] = true
	}
	if guarded[self] {
		return // the owning package maintains its own invariants
	}
	check := func(lhs ast.Expr) {
		field, pkgPath := writtenField(p, lhs)
		if field == nil || pkgPath == self || !guarded[pkgPath] {
			return
		}
		p.Reportf(lhs.Pos(), "direct mutation of %s.%s from outside %s bypasses its invariant accounting; use the package's accessor methods", field.Pkg().Name(), field.Name(), pkgPath)
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					check(lhs)
				}
			case *ast.IncDecStmt:
				check(x.X)
			}
			return true
		})
	}
}

// writtenField resolves an assignment target to the struct field it
// ultimately writes through (unwrapping parens, indexing and dereferences)
// and the import path of the package declaring that field.
func writtenField(p *Pass, lhs ast.Expr) (*types.Var, string) {
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			sel := p.TypesInfo.Selections[x]
			if sel == nil || sel.Kind() != types.FieldVal {
				return nil, ""
			}
			field, ok := sel.Obj().(*types.Var)
			if !ok || field.Pkg() == nil {
				return nil, ""
			}
			return field, field.Pkg().Path()
		default:
			return nil, ""
		}
	}
}
