package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Program is the whole-module view the interprocedural analyzers
// (determinism-taint, and the cross-function parts of lock-discipline) run
// over: every function body of every loaded package, indexed by a stable
// string key, plus the taint summaries computed over the resulting call
// graph.
//
// Functions are keyed by strings rather than *types.Func identity because
// each root package is type-checked independently (the stdlib source
// importer re-checks shared dependencies per load), so the object for
// server.CacheKey seen from internal/server is not the object seen from a
// package importing it. The key format is
//
//	"import/path.FuncName"          package-level functions
//	"(import/path.TypeName).Method" methods, pointer receivers stripped
//
// which is identity enough for a call graph and lets sources, sinks, and
// sanitizers be configured as plain strings.
type Program struct {
	fns map[string]*progFunc
	// summaries holds the converged taint summaries; built lazily by the
	// determinism-taint analyzer and cached for every package's pass.
	summaries map[string]*taintSummary
}

// progFunc is one function body the program has source for.
type progFunc struct {
	key  string
	decl *ast.FuncDecl
	pkg  *Package
}

// NewProgram indexes the function declarations of the given packages. The
// same Program is passed to every per-package analysis pass, which is what
// lets taint flow across package boundaries.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{fns: make(map[string]*progFunc)}
	for _, pkg := range pkgs {
		if pkg == nil || pkg.TypesInfo == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := FuncKey(obj)
				if key == "" {
					continue
				}
				// First declaration wins; duplicate keys can only come from
				// loading the same directory twice.
				if _, dup := p.fns[key]; !dup {
					p.fns[key] = &progFunc{key: key, decl: fd, pkg: pkg}
				}
			}
		}
	}
	return p
}

// Len returns the number of indexed function bodies.
func (p *Program) Len() int { return len(p.fns) }

// sortedKeys returns the function keys in deterministic order, so fixpoint
// iteration (and therefore via-chain construction) never depends on map
// order.
func (p *Program) sortedKeys() []string {
	keys := make([]string, 0, len(p.fns))
	for k := range p.fns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FuncKey renders the stable string key of a function or method object.
func FuncKey(f *types.Func) string {
	if f == nil {
		return ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		name := recvTypeName(recv.Type())
		if name == "" {
			return ""
		}
		return "(" + name + ")." + f.Name()
	}
	if f.Pkg() == nil {
		return "" // builtins such as error.Error
	}
	return f.Pkg().Path() + "." + f.Name()
}

// recvTypeName renders "import/path.TypeName" for a receiver type, stripping
// pointers and type-argument lists (ReadyQueue[*Cell] → ReadyQueue), so a
// method on any instantiation of a generic type gets one key.
func recvTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	name := obj.Name()
	if i := strings.IndexByte(name, '['); i >= 0 {
		name = name[:i]
	}
	return obj.Pkg().Path() + "." + name
}

// calleeKey resolves a call expression to the key of its callee. ok is
// false for calls through function-typed variables and for type
// conversions; interface-method calls resolve to a key naming the interface
// type (useful for sink/sanitizer matching) but have no body in the index.
func calleeKey(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return FuncKey(f), true
		}
	case *ast.SelectorExpr:
		// Method call or field-selected function value.
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				// The selection's receiver may be more precise than the
				// method's declared receiver (embedding); use the method's
				// own receiver for a stable key.
				return FuncKey(f), true
			}
			return "", false // field holding a func value
		}
		// Package-qualified: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return FuncKey(f), true
		}
	}
	return "", false
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// callReceiver returns the receiver expression of a method call, or nil for
// ordinary function calls.
func callReceiver(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return sel.X
	}
	return nil
}
