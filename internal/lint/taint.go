package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// DeterminismTaint is the interprocedural companion to the syntactic
// determinism analyzer: instead of flagging nondeterminism sources where
// they are called, it tracks their values through assignments, expressions,
// and (statically resolvable) function calls across the whole program, and
// reports only when a tainted value reaches a determinism sink — a cache
// key, a telemetry artifact writer, or an event-scheduling time. This is
// what catches a time.Now() laundered through two helper functions into
// server.CacheKey, which the per-call-site pass cannot see.
//
// Sources: wall-clock reads, the global math/rand source, os.Environ/Getenv
// and process identity, pointer formatting (%p), and map-iteration order
// (the loop variables of a range over a map carry order taint until the
// collected values are sorted).
//
// Propagation is flow-insensitive and summary-based: each function gets a
// summary saying which sources can reach its return value and which
// parameters flow to it, iterated to a fixpoint over the cross-package call
// graph. Calls that cannot be resolved statically (interface methods,
// function values) propagate taint from their receiver and arguments to
// their result — a value computed from a nondeterministic value is
// nondeterministic — with one deliberate exception: a call through an
// interface with no taint on the receiver or arguments is clean, which is
// exactly why values drawn from the injected fleet.Clock do not trip the
// analyzer while raw time.Now() does.
//
// Sanitizers: sort.* / slices.Sort* calls mark their slice argument clean
// (the canonical collect-then-sort idiom for map iteration), and functions
// listed in Config.TaintSanitizers always return clean values.
var DeterminismTaint = &Analyzer{
	Name: "determinism-taint",
	Doc:  "flag nondeterministic values flowing (transitively) into cache keys, telemetry artifacts, or event scheduling",
	Run:  runDeterminismTaint,
}

// taintOrigin describes one way taint can arrive: from a concrete source
// (param < 0) or from a parameter of the function under analysis
// (param >= 0; -1 is the receiver... see recvParam).
type taintOrigin struct {
	desc  string   // source description, e.g. "time.Now"
	via   []string // call chain from the source toward the current frame
	param int      // >= 0: taint of parameter i; recvParam: receiver; sourceParam: a real source
}

const (
	sourceParam = -2 // origin is a concrete nondeterminism source
	recvParam   = -1 // origin is the method receiver
)

// maxOrigins bounds a taint set; maxVia bounds a reported call chain. Both
// keep the fixpoint finite and the messages readable.
const (
	maxOrigins = 8
	maxVia     = 6
)

// taintSummary is one function's converged summary.
type taintSummary struct {
	// returns holds the origins that can reach the function's return
	// value(s): concrete sources and/or parameter indices.
	returns []taintOrigin
}

// defaultTaintSources maps callee keys to source descriptions.
func defaultTaintSources() map[string]string {
	return map[string]string{
		"time.Now":     "time.Now",
		"time.Since":   "time.Since",
		"time.Until":   "time.Until",
		"os.Environ":   "os.Environ",
		"os.Getenv":    "os.Getenv",
		"os.LookupEnv": "os.LookupEnv",
		"os.Getpid":    "os.Getpid",
		"os.Getppid":   "os.Getppid",
		"os.Hostname":  "os.Hostname",
	}
}

// sliceSanitizers are functions whose call marks the (first) argument's
// variable clean: sorting destroys map-iteration order taint.
var sliceSanitizers = map[string]bool{
	"sort.Strings":          true,
	"sort.Ints":             true,
	"sort.Float64s":         true,
	"sort.Slice":            true,
	"sort.SliceStable":      true,
	"sort.Sort":             true,
	"sort.Stable":           true,
	"slices.Sort":           true,
	"slices.SortFunc":       true,
	"slices.SortStableFunc": true,
}

// taintEnv carries the per-function analysis state.
type taintEnv struct {
	prog      *Program
	pf        *progFunc
	sources   map[string]string
	sanitize  map[string]bool
	summaries map[string]*taintSummary

	params map[types.Object]int // param object → index (recvParam for receiver)
	taint  map[types.Object][]taintOrigin
	clean  map[types.Object]bool // sanitized vars never re-taint
}

// buildTaintSummaries computes the fixpoint over every function body in the
// program. Deterministic: functions are iterated in sorted key order.
func buildTaintSummaries(prog *Program, cfg Config) map[string]*taintSummary {
	if prog.summaries != nil {
		return prog.summaries
	}
	sources := cfg.TaintSources
	if sources == nil {
		sources = defaultTaintSources()
	}
	sanitize := make(map[string]bool, len(cfg.TaintSanitizers))
	for _, k := range cfg.TaintSanitizers {
		sanitize[k] = true
	}
	sums := make(map[string]*taintSummary, prog.Len())
	keys := prog.sortedKeys()
	for _, k := range keys {
		sums[k] = &taintSummary{}
	}
	for round := 0; round < 20; round++ {
		changed := false
		for _, k := range keys {
			pf := prog.fns[k]
			env := newTaintEnv(prog, pf, sources, sanitize, sums)
			env.run()
			ret := env.returnOrigins()
			if mergeOrigins(&sums[k].returns, ret) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	prog.summaries = sums
	return sums
}

func newTaintEnv(prog *Program, pf *progFunc, sources map[string]string, sanitize map[string]bool, sums map[string]*taintSummary) *taintEnv {
	env := &taintEnv{
		prog:      prog,
		pf:        pf,
		sources:   sources,
		sanitize:  sanitize,
		summaries: sums,
		params:    make(map[types.Object]int),
		taint:     make(map[types.Object][]taintOrigin),
		clean:     make(map[types.Object]bool),
	}
	info := pf.pkg.TypesInfo
	fd := pf.decl
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if obj := info.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
			env.params[obj] = recvParam
		}
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				env.params[obj] = idx
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	// Parameters start tainted by themselves, so a body that returns a
	// parameter yields a summary with that parameter's index.
	for obj, i := range env.params {
		env.taint[obj] = []taintOrigin{{param: i}}
	}
	return env
}

// run iterates the body's assignments to a local fixpoint (flow-insensitive,
// so ordering between statements does not matter).
func (e *taintEnv) run() {
	e.collectSanitized()
	for i := 0; i < 10; i++ {
		if !e.propagateOnce() {
			break
		}
	}
}

// collectSanitized records variables passed to sort functions; they are
// pinned clean for the whole body.
func (e *taintEnv) collectSanitized() {
	info := e.pf.pkg.TypesInfo
	ast.Inspect(e.pf.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if key, ok := calleeKey(info, call); ok && sliceSanitizers[key] {
			if id := rootIdent(call.Args[0]); id != nil {
				if obj := info.ObjectOf(id); obj != nil {
					e.clean[obj] = true
				}
			}
		}
		return true
	})
}

// propagateOnce applies every assignment-like construct once; reports
// whether any taint set grew.
func (e *taintEnv) propagateOnce() bool {
	info := e.pf.pkg.TypesInfo
	changed := false
	assign := func(lhs ast.Expr, origins []taintOrigin) {
		if len(origins) == 0 {
			return
		}
		id := rootIdent(lhs)
		if id == nil {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil || e.clean[obj] {
			return
		}
		cur := e.taint[obj]
		if mergeOrigins(&cur, origins) {
			e.taint[obj] = cur
			changed = true
		}
	}
	ast.Inspect(e.pf.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					assign(lhs, e.exprOrigins(x.Rhs[i]))
				}
			} else if len(x.Rhs) == 1 {
				origins := e.exprOrigins(x.Rhs[0])
				for _, lhs := range x.Lhs {
					assign(lhs, origins)
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i, name := range x.Names {
					assign(name, e.exprOrigins(x.Values[i]))
				}
			} else if len(x.Values) == 1 {
				origins := e.exprOrigins(x.Values[0])
				for _, name := range x.Names {
					assign(name, origins)
				}
			}
		case *ast.RangeStmt:
			origins := e.exprOrigins(x.X)
			if t := info.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					origins = appendOrigin(origins, taintOrigin{
						desc:  "map iteration order",
						param: sourceParam,
					})
				}
			}
			if x.Key != nil {
				assign(x.Key, origins)
			}
			if x.Value != nil {
				assign(x.Value, origins)
			}
		}
		return true
	})
	return changed
}

// exprOrigins computes the taint reaching an expression's value.
func (e *taintEnv) exprOrigins(expr ast.Expr) []taintOrigin {
	info := e.pf.pkg.TypesInfo
	switch x := expr.(type) {
	case nil:
		return nil
	case *ast.Ident:
		if obj := info.ObjectOf(x); obj != nil && !e.clean[obj] {
			return e.taint[obj]
		}
		return nil
	case *ast.BasicLit:
		return nil
	case *ast.FuncLit:
		return nil // closures have no summaries; see package doc
	case *ast.ParenExpr:
		return e.exprOrigins(x.X)
	case *ast.UnaryExpr:
		return e.exprOrigins(x.X)
	case *ast.StarExpr:
		return e.exprOrigins(x.X)
	case *ast.BinaryExpr:
		return unionOrigins(e.exprOrigins(x.X), e.exprOrigins(x.Y))
	case *ast.IndexExpr:
		return unionOrigins(e.exprOrigins(x.X), e.exprOrigins(x.Index))
	case *ast.SliceExpr:
		return e.exprOrigins(x.X)
	case *ast.SelectorExpr:
		// A field of a tainted struct is tainted; a qualified identifier
		// (pkg.Var) is not tracked.
		if id := rootIdent(x); id != nil {
			if obj := info.ObjectOf(id); obj != nil && !e.clean[obj] {
				return e.taint[obj]
			}
		}
		return nil
	case *ast.CompositeLit:
		var out []taintOrigin
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				out = unionOrigins(out, e.exprOrigins(kv.Value))
			} else {
				out = unionOrigins(out, e.exprOrigins(el))
			}
		}
		return out
	case *ast.TypeAssertExpr:
		return e.exprOrigins(x.X)
	case *ast.CallExpr:
		return e.callOrigins(x)
	}
	return nil
}

// callOrigins computes the taint of a call's result.
func (e *taintEnv) callOrigins(call *ast.CallExpr) []taintOrigin {
	info := e.pf.pkg.TypesInfo
	if isConversion(info, call) {
		if len(call.Args) == 1 {
			return e.exprOrigins(call.Args[0])
		}
		return nil
	}
	// Builtins: append/copy/min/max propagate, len/cap of a tainted value is
	// a count, not a nondeterministic value.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append", "copy", "min", "max":
				var out []taintOrigin
				for _, a := range call.Args {
					out = unionOrigins(out, e.exprOrigins(a))
				}
				return out
			default:
				return nil
			}
		}
	}

	key, resolved := calleeKey(info, call)
	if resolved {
		if e.sanitize[key] {
			return nil
		}
		if desc, isSource := e.sources[key]; isSource {
			return []taintOrigin{{desc: desc, param: sourceParam}}
		}
		if desc, isSource := globalRandSource(key); isSource {
			return []taintOrigin{{desc: desc, param: sourceParam}}
		}
		if desc, isSource := pointerFormatSource(info, key, call); isSource {
			return []taintOrigin{{desc: desc, param: sourceParam}}
		}
		if sum, known := e.summaries[key]; known {
			return e.applySummary(key, sum, call)
		}
	}
	// Unresolved or foreign callee: the result derives from whatever went
	// in. Receiver taint flows too (t.Sub(u), d.String(), r.Intn(n)).
	var out []taintOrigin
	if recv := callReceiver(info, call); recv != nil {
		out = unionOrigins(out, e.exprOrigins(recv))
	}
	for _, a := range call.Args {
		out = unionOrigins(out, e.exprOrigins(a))
	}
	return out
}

// applySummary instantiates a callee summary at a call site: source origins
// pass through (with the callee appended to the chain), parameter origins
// are replaced by the corresponding argument's taint.
func (e *taintEnv) applySummary(key string, sum *taintSummary, call *ast.CallExpr) []taintOrigin {
	info := e.pf.pkg.TypesInfo
	var out []taintOrigin
	for _, o := range sum.returns {
		switch {
		case o.param == sourceParam:
			out = appendOrigin(out, extendVia(o, key))
		case o.param == recvParam:
			if recv := callReceiver(info, call); recv != nil {
				for _, ro := range e.exprOrigins(recv) {
					out = appendOrigin(out, ro)
				}
			}
		case o.param >= 0 && o.param < len(call.Args):
			for _, ao := range e.exprOrigins(call.Args[o.param]) {
				out = appendOrigin(out, ao)
			}
		case o.param >= 0 && len(call.Args) > 0:
			// Variadic call with fewer apparent args: be conservative and
			// use the last argument.
			for _, ao := range e.exprOrigins(call.Args[len(call.Args)-1]) {
				out = appendOrigin(out, ao)
			}
		}
	}
	return out
}

// returnOrigins collects the origins reaching the function's own return
// statements. Returns inside nested function literals belong to the
// closure, not this function, and are skipped.
func (e *taintEnv) returnOrigins() []taintOrigin {
	var out []taintOrigin
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			depth++
			ast.Inspect(x.Body, walk)
			depth--
			return false
		case *ast.ReturnStmt:
			if depth == 0 {
				for _, r := range x.Results {
					out = unionOrigins(out, e.exprOrigins(r))
				}
			}
		}
		return true
	}
	ast.Inspect(e.pf.decl.Body, walk)
	return out
}

// globalRandSource reports whether key names a global math/rand draw. The
// explicit constructors (New, NewSource, NewZipf) and the v2 PCG/ChaCha
// constructors build seeded generators and are clean.
func globalRandSource(key string) (string, bool) {
	for _, prefix := range []string{"math/rand.", "math/rand/v2."} {
		if name, ok := strings.CutPrefix(key, prefix); ok {
			if randConstructors[name] || strings.HasPrefix(name, "New") {
				return "", false
			}
			return "global math/rand." + name, true
		}
	}
	return "", false
}

// pointerFormatSource reports whether the call formats a pointer address
// (%p), whose rendering differs between runs.
func pointerFormatSource(info *types.Info, key string, call *ast.CallExpr) (string, bool) {
	if !strings.HasPrefix(key, "fmt.S") && !strings.HasPrefix(key, "fmt.F") && !strings.HasPrefix(key, "fmt.P") {
		return "", false
	}
	for _, a := range call.Args {
		tv, ok := info.Types[a]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			continue
		}
		if strings.Contains(constant.StringVal(tv.Value), "%p") {
			return "%p pointer formatting", true
		}
	}
	return "", false
}

// --- origin set plumbing --------------------------------------------------

func originKey(o taintOrigin) string {
	if o.param != sourceParam {
		return "p" + string(rune('0'+o.param+2))
	}
	return o.desc + "|" + strings.Join(o.via, ">")
}

func appendOrigin(set []taintOrigin, o taintOrigin) []taintOrigin {
	k := originKey(o)
	for _, have := range set {
		if originKey(have) == k {
			return set
		}
	}
	if len(set) >= maxOrigins {
		return set
	}
	return append(set, o)
}

func unionOrigins(a, b []taintOrigin) []taintOrigin {
	out := append([]taintOrigin(nil), a...)
	for _, o := range b {
		out = appendOrigin(out, o)
	}
	return out
}

// mergeOrigins unions src into *dst, reporting whether *dst grew.
func mergeOrigins(dst *[]taintOrigin, src []taintOrigin) bool {
	before := len(*dst)
	*dst = unionOrigins(*dst, src)
	return len(*dst) != before
}

func extendVia(o taintOrigin, key string) taintOrigin {
	if len(o.via) >= maxVia {
		return o
	}
	via := make([]string, 0, len(o.via)+1)
	via = append(via, o.via...)
	return taintOrigin{desc: o.desc, via: append(via, shortFuncKey(key)), param: o.param}
}

// shortFuncKey trims the module-path noise out of a key for messages:
// "(dynaq/internal/server.Server).runJob" → "(server.Server).runJob".
func shortFuncKey(key string) string {
	shorten := func(path string) string {
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	if strings.HasPrefix(key, "(") {
		if i := strings.LastIndexByte(key, ')'); i > 0 {
			inner := key[1:i]
			if j := strings.LastIndexByte(inner, '.'); j >= 0 {
				return "(" + shorten(inner[:j]) + "." + inner[j+1:] + key[i:]
			}
		}
		return key
	}
	if j := strings.LastIndexByte(key, '.'); j >= 0 {
		return shorten(key[:j]) + "." + key[j+1:]
	}
	return key
}

// --- the analyzer pass ----------------------------------------------------

func runDeterminismTaint(p *Pass) {
	if p.Prog == nil || p.Pkg == nil {
		return
	}
	sinks := p.Config.TaintSinks
	if len(sinks) == 0 {
		return
	}
	sums := buildTaintSummaries(p.Prog, p.Config)
	sources := p.Config.TaintSources
	if sources == nil {
		sources = defaultTaintSources()
	}
	sanitize := make(map[string]bool, len(p.Config.TaintSanitizers))
	for _, k := range p.Config.TaintSanitizers {
		sanitize[k] = true
	}

	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.TypesInfo.Defs[fd.Name].(*types.Func)
			key := FuncKey(obj)
			pf := p.Prog.fns[key]
			if pf == nil || pf.decl != fd {
				// Injected or synthetic file not in the program index:
				// analyze it standalone so self-tests still work.
				pf = &progFunc{key: key, decl: fd, pkg: pkgForPass(p)}
			}
			env := newTaintEnv(p.Prog, pf, sources, sanitize, sums)
			env.run()
			reportSinkFlows(p, env, sinks)
		}
	}
}

// pkgForPass adapts a Pass back into the *Package shape taintEnv wants.
func pkgForPass(p *Pass) *Package {
	return &Package{Fset: p.Fset, Files: p.Files, Types: p.Pkg, TypesInfo: p.TypesInfo}
}

// reportSinkFlows walks one analyzed function and reports every sink call
// receiving a tainted argument.
func reportSinkFlows(p *Pass, env *taintEnv, sinks map[string]string) {
	info := env.pf.pkg.TypesInfo
	ast.Inspect(env.pf.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, resolved := calleeKey(info, call)
		if !resolved {
			return true
		}
		sinkDesc, isSink := sinks[key]
		if !isSink {
			return true
		}
		for i, arg := range call.Args {
			origins := env.exprOrigins(arg)
			reported := map[string]bool{}
			for _, o := range origins {
				if o.param != sourceParam || reported[o.desc] {
					continue
				}
				reported[o.desc] = true
				p.Reportf(arg.Pos(), "nondeterministic value from %s%s reaches determinism sink %s (arg %d); %s",
					o.desc, viaClause(o.via), shortFuncKey(key), i+1, sinkDesc)
			}
		}
		return true
	})
}

func viaClause(via []string) string {
	if len(via) == 0 {
		return ""
	}
	// The chain is accumulated innermost-first; present it source → sink.
	rev := make([]string, len(via))
	for i, v := range via {
		rev[len(via)-1-i] = v
	}
	return " (via " + strings.Join(rev, " -> ") + ")"
}

// sortedSinkKeys is a test helper guaranteeing deterministic sink listings.
func sortedSinkKeys(sinks map[string]string) []string {
	keys := make([]string, 0, len(sinks))
	for k := range sinks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
