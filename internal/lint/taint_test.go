package lint

import (
	"go/parser"
	"path/filepath"
	"strings"
	"testing"
)

// TestLaunderedWallClockCaught is the interprocedural acceptance drill:
// plant, into the real internal/server package (in memory — the tree is
// untouched), a time.Now() whose value travels through TWO helper functions
// before landing in server.CacheKey, plus the same flow drawn from the
// injected fleet.Clock seam. The taint analyzer must flag exactly the
// laundered wall-clock flow and stay silent on the clock-interface flow —
// the syntactic determinism analyzer cannot see either (the time.Now() site
// itself carries an audited suppression to isolate the taint verdict).
func TestLaunderedWallClockCaught(t *testing.T) {
	moduleRoot, modulePath, err := ModuleInfo(".")
	if err != nil {
		t.Fatal(err)
	}
	serverDir := filepath.Join(moduleRoot, "internal", "server")

	l := NewLoader()
	pkg, err := l.LoadDir(serverDir, modulePath+"/internal/server")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(pkg, All(), DefaultConfig()); len(diags) != 0 {
		t.Fatalf("internal/server should be clean before injection, got %v", diags)
	}

	injected := filepath.Join(serverDir, "zz_injected_taint.go")
	src := `package server

import (
	"time"

	"dynaq/internal/fleet"
)

// stampHelper is helper one: the wall-clock read, two frames from the sink.
func stampHelper() time.Time {
	return time.Now() //dynaqlint:allow determinism injected fixture isolates the taint analyzer
}

// renderHelper is helper two: taint rides through the parameter.
func renderHelper(t time.Time) string { return t.String() }

// launderedKey smuggles the wall clock into the cache key through both
// helpers; the taint analyzer must flag the CacheKey argument below.
func launderedKey() string {
	return CacheKey("v1", renderHelper(stampHelper()), "dynaq", "packet", 1) // SINK LINE
}

// injectedClockKey draws the same flow from the audited fleet.Clock seam
// instead; this must stay silent.
func injectedClockKey(c fleet.Clock) string {
	return CacheKey("v1", renderHelper(c.Now()), "dynaq", "packet", 1)
}
`
	sinkLine := 0
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "SINK LINE") {
			sinkLine = i + 1
		}
	}

	f, err := parser.ParseFile(l.Fset, injected, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg = l.LoadFiles(serverDir, modulePath+"/internal/server", append(pkg.Files, f))
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("injected package must still type-check: %v", terr)
	}
	diags := Run(pkg, All(), DefaultConfig())
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic after injection (laundered flow only), got %v", diags)
	}
	d := diags[0]
	if d.Analyzer != "determinism-taint" || d.Pos.Filename != injected || d.Pos.Line != sinkLine {
		t.Fatalf("want determinism-taint diagnostic at %s:%d, got %v", injected, sinkLine, d)
	}
	for _, part := range []string{"time.Now", "stampHelper", "CacheKey", "cache key"} {
		if !strings.Contains(d.Message, part) {
			t.Errorf("diagnostic message %q should mention %q", d.Message, part)
		}
	}
}
