package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnitsConsistency flags dimensionally-suspect arithmetic on the typed
// quantities declared in Config.UnitsPackages (internal/units):
//
//   - converting one dimension into another (units.Time(bytes),
//     units.ByteSize(rate)) — a conversion is a reinterpretation, not a
//     physical relation; crossing bytes ↔ sim-time ↔ rate needs a real
//     formula (Rate.Transmit, ByteSize.Throughput, ...). Time ↔ Duration
//     conversions share the sim-time dimension and are allowed.
//
//   - adding or subtracting two absolute sim-times with raw operators:
//     t1 - t2 is a Duration and t1 + t2 is meaningless, but both type-check
//     because Time is an integer type. Use Time.Add / Time.Sub, which say
//     which it is.
//
//   - comparing (or adding, subtracting, taking the remainder of) a
//     dimensioned value against a bare non-zero numeric literal: `d > 1000`
//     does not say 1000 *what*; write `d > units.Microsecond` (or scale a
//     named constant). Comparisons against 0 and scalar scaling with * and /
//     are legitimate and ignored.
//
// The declaring package itself is exempt — it defines the dimensions and
// their named constants out of raw literals, and its methods (Add, Sub,
// Transmit, BDP) are the sanctioned crossings.
var UnitsConsistency = &Analyzer{
	Name: "units-consistency",
	Doc:  "flag cross-dimension units conversions, raw +/- on absolute sim-times, and unit-vs-raw-literal arithmetic",
	Run:  runUnitsConsistency,
}

// unitsClassNames maps known internal/units type names to their dimension.
// Unknown names in a units package become their own dimension, so a future
// Packets type is covered without touching the linter.
var unitsClassNames = map[string]string{
	"Time":     "sim-time",
	"Duration": "sim-time",
	"ByteSize": "bytes",
	"Rate":     "rate",
}

func runUnitsConsistency(p *Pass) {
	if p.Pkg == nil || len(p.Config.UnitsPackages) == 0 {
		return
	}
	unitsPkgs := make(map[string]bool, len(p.Config.UnitsPackages))
	for _, path := range p.Config.UnitsPackages {
		if p.Pkg.Path() == path {
			return // the declaring package is exempt
		}
		unitsPkgs[path] = true
	}

	classOf := func(t types.Type) (class, typeName string) {
		if t == nil {
			return "", ""
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "", ""
		}
		obj := named.Obj()
		if obj == nil || obj.Pkg() == nil || !unitsPkgs[obj.Pkg().Path()] {
			return "", ""
		}
		name := obj.Name()
		if c, ok := unitsClassNames[name]; ok {
			return c, name
		}
		return strings.ToLower(name), name
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkUnitsBinary(p, x, classOf)
			case *ast.CallExpr:
				checkUnitsConversion(p, x, classOf)
			}
			return true
		})
	}
}

func checkUnitsBinary(p *Pass, be *ast.BinaryExpr, classOf func(types.Type) (string, string)) {
	switch be.Op {
	case token.ADD, token.SUB, token.REM,
		token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	default:
		return // * and / are scalar scaling; everything else is out of scope
	}
	xClass, xName := classOf(p.TypesInfo.TypeOf(be.X))
	yClass, yName := classOf(p.TypesInfo.TypeOf(be.Y))

	if (be.Op == token.ADD || be.Op == token.SUB) && xName == "Time" && yName == "Time" {
		verb := "adding"
		hint := "meaningless for absolute sim-times; offset with Time.Add(Duration)"
		if be.Op == token.SUB {
			verb = "subtracting"
			hint = "a Duration in disguise; use Time.Sub for an explicit Duration"
		}
		p.Reportf(be.OpPos, "%s two absolute sim-times with %s is %s", verb, be.Op, hint)
		return
	}
	if xClass != "" && yClass != "" && xClass != yClass {
		p.Reportf(be.OpPos, "operands of %s mix units dimensions %s (%s) and %s (%s); convert through an explicit formula first",
			be.Op, xClass, xName, yClass, yName)
		return
	}
	if xClass != "" && rawNonZeroLiteral(be.Y) {
		p.Reportf(be.OpPos, "%s value compared/combined (%s) with bare literal %s; use a named units constant so the magnitude has a dimension",
			xName, be.Op, litText(be.Y))
		return
	}
	if yClass != "" && rawNonZeroLiteral(be.X) {
		p.Reportf(be.OpPos, "%s value compared/combined (%s) with bare literal %s; use a named units constant so the magnitude has a dimension",
			yName, be.Op, litText(be.X))
	}
}

func checkUnitsConversion(p *Pass, call *ast.CallExpr, classOf func(types.Type) (string, string)) {
	if !isConversion(p.TypesInfo, call) || len(call.Args) != 1 {
		return
	}
	dstClass, dstName := classOf(p.TypesInfo.TypeOf(call.Fun))
	srcClass, srcName := classOf(p.TypesInfo.TypeOf(call.Args[0]))
	if dstClass == "" || srcClass == "" || dstClass == srcClass {
		return
	}
	p.Reportf(call.Pos(), "conversion %s(%s) crosses units dimensions %s → %s; use an explicit relation (e.g. Rate.Transmit, ByteSize.Throughput) instead of a cast",
		dstName, srcName, srcClass, dstClass)
}

// rawNonZeroLiteral reports whether e is a bare numeric literal other than 0
// (possibly parenthesized or sign-prefixed). Named constants resolve through
// identifiers and do not match.
func rawNonZeroLiteral(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
		return false
	}
	trimmed := strings.Trim(lit.Value, "0.")
	return trimmed != "" // "0", "0.0", "00" are all zero
}

// litText renders the literal for the message.
func litText(e ast.Expr) string {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		if lit, ok := ast.Unparen(u.X).(*ast.BasicLit); ok {
			return u.Op.String() + lit.Value
		}
	}
	if lit, ok := e.(*ast.BasicLit); ok {
		return lit.Value
	}
	return "?"
}
