package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func bdiag(file, analyzer, message string, line int) Diagnostic {
	d := Diagnostic{Analyzer: analyzer, Message: message}
	d.Pos.Filename = file
	d.Pos.Line = line
	return d
}

// TestBaselineRoundTrip writes a baseline to disk, reloads it, and checks
// the aggregation (counts, sort order) survives.
func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		bdiag("b.go", "determinism", "wall-clock read", 10),
		bdiag("a.go", "units-consistency", "bare literal", 3),
		bdiag("b.go", "determinism", "wall-clock read", 44), // same class, new line
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := NewBaseline(diags).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 2 {
		t.Fatalf("want 2 aggregated entries, got %+v", b.Findings)
	}
	if b.Findings[0].File != "a.go" || b.Findings[1].File != "b.go" {
		t.Errorf("entries not sorted by file: %+v", b.Findings)
	}
	if b.Findings[1].Count != 2 {
		t.Errorf("duplicate finding not counted: %+v", b.Findings[1])
	}
}

// TestApplyBaseline covers the three regimes: covered findings vanish, a
// count overflow surfaces as new, and paid-down debt surfaces as stale.
func TestApplyBaseline(t *testing.T) {
	base := NewBaseline([]Diagnostic{
		bdiag("a.go", "determinism", "wall-clock read", 1),
		bdiag("a.go", "determinism", "wall-clock read", 2),
		bdiag("gone.go", "float-eq", "exact compare", 9),
	})

	// Same two findings (lines moved): fully covered, but gone.go is stale.
	fresh, stale := ApplyBaseline(base, []Diagnostic{
		bdiag("a.go", "determinism", "wall-clock read", 7),
		bdiag("a.go", "determinism", "wall-clock read", 8),
	})
	if len(fresh) != 0 {
		t.Errorf("moved findings should be covered, got %v", fresh)
	}
	if len(stale) != 1 || stale[0].File != "gone.go" || stale[0].Count != 1 {
		t.Errorf("paid-down entry should be stale, got %+v", stale)
	}

	// A third instance of the same message exceeds the recorded count.
	fresh, _ = ApplyBaseline(base, []Diagnostic{
		bdiag("a.go", "determinism", "wall-clock read", 1),
		bdiag("a.go", "determinism", "wall-clock read", 2),
		bdiag("a.go", "determinism", "wall-clock read", 3),
	})
	if len(fresh) != 1 || fresh[0].Pos.Line != 3 {
		t.Errorf("count overflow should surface as new (line 3), got %v", fresh)
	}

	// A brand-new finding class is never covered.
	fresh, _ = ApplyBaseline(base, []Diagnostic{
		bdiag("new.go", "lock-discipline", "guarded miss", 5),
	})
	if len(fresh) != 1 {
		t.Errorf("new finding class must surface, got %v", fresh)
	}
}

// TestLoadBaselineRejectsGarbage pins the error paths CI depends on.
func TestLoadBaselineRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing baseline must error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Error("malformed baseline must error")
	}
	wrongVersion := filepath.Join(dir, "v9.json")
	if err := os.WriteFile(wrongVersion, []byte(`{"version":9,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(wrongVersion); err == nil {
		t.Error("unsupported version must error")
	}
}
