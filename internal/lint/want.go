package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Want is one fixture expectation: the diagnostic(s) a line must produce.
// Fixture files under testdata declare expectations with trailing comments:
//
//	return time.Now() // want `determinism: wall-clock read`
//
// Each backquoted or double-quoted string is a regexp matched against the
// rendered "analyzer: message" of a diagnostic on that line. A line may
// carry several patterns when several analyzers fire on it.
type Want struct {
	File     string
	Line     int
	Patterns []*regexp.Regexp
}

var wantArg = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// ParseWants extracts the // want expectations from parsed files.
func ParseWants(fset *token.FileSet, files []*ast.File) ([]Want, error) {
	var wants []Want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may open the comment (`// want "..."`) or
				// trail other content, e.g. a suppression directive under
				// test (`//dynaqlint:allow ... // want "..."`).
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("// want "):]
				pos := fset.Position(c.Pos())
				w := Want{File: pos.Filename, Line: pos.Line}
				args := wantArg.FindAllString(rest, -1)
				if len(args) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				}
				for _, a := range args {
					var pat string
					if strings.HasPrefix(a, "`") {
						pat = strings.Trim(a, "`")
					} else {
						var err error
						pat, err = strconv.Unquote(a)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, a, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					w.Patterns = append(w.Patterns, re)
				}
				wants = append(wants, w)
			}
		}
	}
	return wants, nil
}

// CheckWants matches diagnostics against expectations, pairing each pattern
// with one diagnostic on its line (and vice versa). It returns a list of
// human-readable problems: unmatched expectations and unexpected
// diagnostics. An empty return means the fixture behaved exactly as
// annotated.
func CheckWants(wants []Want, diags []Diagnostic) []string {
	used := make([]bool, len(diags))
	var problems []string
	for _, w := range wants {
		for _, re := range w.Patterns {
			found := false
			for i, d := range diags {
				if used[i] || d.Pos.Filename != w.File || d.Pos.Line != w.Line {
					continue
				}
				if re.MatchString(d.Analyzer + ": " + d.Message) {
					used[i] = true
					found = true
					break
				}
			}
			if !found {
				problems = append(problems, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", w.File, w.Line, re))
			}
		}
	}
	for i, d := range diags {
		if !used[i] {
			problems = append(problems, fmt.Sprintf("%s: unexpected diagnostic: %s: %s", formatPos(d), d.Analyzer, d.Message))
		}
	}
	sort.Strings(problems)
	return problems
}

func formatPos(d Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column)
}
