package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// TypeErrors collects type-checking problems. Analysis still runs —
	// go/types records partial information — but callers should surface
	// them: diagnostics on code that does not compile are best-effort.
	TypeErrors []error
}

// Loader parses and type-checks packages. One Loader shares a FileSet and an
// importer across loads, so the (expensive) source-based type-checking of
// shared dependencies is cached between packages.
type Loader struct {
	Fset     *token.FileSet
	Importer types.Importer
}

// NewLoader returns a Loader backed by the stdlib source importer, which
// type-checks dependencies (including this module's own packages) straight
// from source — no compiled export data, no x/tools.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, Importer: importer.ForCompiler(fset, "source", nil)}
}

// LoadDir parses the non-test Go files of one directory and type-checks them
// as importPath. Test files are excluded on purpose: the determinism rules
// govern simulator code, while tests routinely (and legitimately) use
// literal-seeded generators and exhaustive map iteration.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.LoadFiles(dir, importPath, files), nil
}

// LoadFiles type-checks an already-parsed file set as importPath. It is the
// hook the self-tests use to inject synthetic files (e.g. a time.Now call
// planted into internal/sim) without touching the tree.
func (l *Loader) LoadFiles(dir, importPath string, files []*ast.File) *Package {
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		TypesInfo: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: l.Importer,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, pkg.TypesInfo) // errors land in TypeErrors
	pkg.Types = tpkg
	return pkg
}

// ModuleInfo walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func ModuleInfo(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// ExpandPatterns resolves command-line package patterns into directories.
// Supported forms: a directory path ("./internal/core"), or a recursive
// pattern ("./...", "./internal/..."). Directories named testdata or vendor,
// and those starting with "." or "_", are skipped, matching the go tool.
// Directories without buildable non-test Go files are dropped.
func ExpandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(rest)
			if rest == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		add(pat)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		return true
	}
	return false
}

// DirImportPath maps a directory inside the module to its import path.
func DirImportPath(moduleRoot, modulePath, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(moduleRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, moduleRoot)
	}
	return modulePath + "/" + filepath.ToSlash(rel), nil
}
