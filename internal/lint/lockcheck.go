package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockDiscipline enforces the coordinator/fleet locking conventions in the
// packages listed in Config.LockCheckedPackages:
//
//  1. Struct fields annotated "guarded by <mu>" (in the field's doc or line
//     comment) may only be accessed in functions that visibly acquire the
//     named mutex on the same root value (s.mu.Lock() / s.mu.RLock()), in
//     functions whose name ends in "Locked" (the repo's caller-holds-the-lock
//     convention), or in the function that constructs the value (composite
//     literal in the same frame — initialization before publication). The
//     check is flow-insensitive: it proves the lock is *mentioned*, not that
//     it is held on every path, which is exactly the cheap invariant that
//     catches fields added later without a lock site. Function literals are
//     separate frames — a closure does not inherit its constructor's
//     exemption, because closures outlive construction.
//
//  2. Any function that spawns a goroutine (a go statement at any depth) or
//     calls one of the lease/queue mutators in Config.LockMutatorKeys must
//     accept a context.Context (or *http.Request, whose Context() it can
//     use) so cancellation reaches every path that mutates fleet state. The
//     mutators themselves are exempt — they are pure bookkeeping under the
//     caller's lock.
var LockDiscipline = &Analyzer{
	Name: "lock-discipline",
	Doc:  "enforce 'guarded by mu' field annotations and context threading for goroutine-spawning / lease-mutating functions",
	Run:  runLockDiscipline,
}

// guardedField records one annotated field: the struct type's key
// ("path.TypeName"), the field name, and the guarding mutex's field name.
type guardedField struct {
	mu string
}

func runLockDiscipline(p *Pass) {
	if p.Pkg == nil {
		return
	}
	checked := false
	for _, path := range p.Config.LockCheckedPackages {
		if p.Pkg.Path() == path {
			checked = true
			break
		}
	}
	if !checked {
		return
	}

	guarded := collectGuardedFields(p)
	mutators := make(map[string]bool, len(p.Config.LockMutatorKeys))
	for _, k := range p.Config.LockMutatorKeys {
		mutators[k] = true
	}

	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccess(p, fd, guarded)
			checkContextRule(p, fd, mutators)
		}
	}
}

// collectGuardedFields scans the package's struct declarations for
// "guarded by <name>" annotations and returns them keyed by
// "TypeName.FieldName". A "guarded by" comment naming a field that does not
// exist in the struct is reported as a broken annotation.
func collectGuardedFields(p *Pass) map[string]guardedField {
	out := make(map[string]guardedField)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				fieldNames := make(map[string]bool)
				for _, field := range st.Fields.List {
					for _, n := range field.Names {
						fieldNames[n.Name] = true
					}
				}
				for _, field := range st.Fields.List {
					mu, pos, ok := guardAnnotation(field)
					if !ok {
						continue
					}
					if !fieldNames[mu] {
						p.Reportf(pos, "guarded-by annotation names mutex %q, but struct %s has no such field", mu, ts.Name.Name)
						continue
					}
					for _, n := range field.Names {
						out[ts.Name.Name+"."+n.Name] = guardedField{mu: mu}
					}
				}
			}
		}
	}
	return out
}

// guardAnnotation extracts "guarded by <name>" from a field's doc or line
// comment.
func guardAnnotation(field *ast.Field) (mu string, pos token.Pos, ok bool) {
	scan := func(cg *ast.CommentGroup) (string, token.Pos, bool) {
		if cg == nil {
			return "", 0, false
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			idx := strings.Index(text, "guarded by ")
			if idx < 0 {
				continue
			}
			rest := strings.Fields(text[idx+len("guarded by "):])
			if len(rest) == 0 {
				continue
			}
			return strings.TrimRight(rest[0], ".,;"), c.Pos(), true
		}
		return "", 0, false
	}
	if mu, pos, ok := scan(field.Doc); ok {
		return mu, pos, ok
	}
	return scan(field.Comment)
}

// frame is one function body level: the outer FuncDecl or one FuncLit.
type frame struct {
	body  *ast.BlockStmt
	outer bool // true for the FuncDecl's own frame
}

// checkGuardedAccess verifies every access to a guarded field inside fd.
func checkGuardedAccess(p *Pass, fd *ast.FuncDecl, guarded map[string]guardedField) {
	if len(guarded) == 0 {
		return
	}
	callerHolds := strings.HasSuffix(fd.Name.Name, "Locked")

	var frames []frame
	frames = append(frames, frame{body: fd.Body, outer: true})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			frames = append(frames, frame{body: fl.Body})
		}
		return true
	})

	// ownFrame maps each node back to its innermost frame body.
	for _, fr := range frames {
		locked := lockedRoots(p, fr.body)
		constructed := constructedRoots(p, fr.body)
		inspectFrame(fr.body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := p.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			fieldVar, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			typeName := lockRecvName(selection.Recv())
			if typeName == "" {
				return true
			}
			gf, isGuarded := guarded[typeName+"."+fieldVar.Name()]
			if !isGuarded {
				return true
			}
			root := rootIdent(sel.X)
			if root == nil {
				p.Reportf(sel.Pos(), "guarded field %s.%s accessed through a non-identifier base; hold %s and bind the value first", typeName, fieldVar.Name(), gf.mu)
				return true
			}
			rootObj := p.TypesInfo.ObjectOf(root)
			if rootObj == nil {
				return true
			}
			if callerHolds && fr.outer {
				return true
			}
			if locked[lockSite{rootObj, gf.mu}] {
				return true
			}
			if fr.outer && constructed[rootObj] {
				return true
			}
			p.Reportf(sel.Pos(), "field %s.%s is guarded by %s, but %s.%s.Lock() is not visible in this function (name it *Locked if the caller holds the lock)",
				typeName, fieldVar.Name(), gf.mu, root.Name, gf.mu)
			return true
		})
	}
}

// inspectFrame walks body without descending into nested function literals
// (each literal is its own frame).
func inspectFrame(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// lockSite is one (value, mutex-field) pair the frame visibly locks.
type lockSite struct {
	root types.Object
	mu   string
}

// lockedRoots collects root.mu.Lock() / root.mu.RLock() calls in the frame.
func lockedRoots(p *Pass, body *ast.BlockStmt) map[lockSite]bool {
	out := make(map[lockSite]bool)
	inspectFrame(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		root := rootIdent(muSel.X)
		if root == nil {
			return true
		}
		if obj := p.TypesInfo.ObjectOf(root); obj != nil {
			out[lockSite{obj, muSel.Sel.Name}] = true
		}
		return true
	})
	return out
}

// constructedRoots collects variables bound to a composite literal (possibly
// &-addressed) in the frame: the value is private until published, so its
// guarded fields may be initialized lock-free.
func constructedRoots(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	isCompositeLit := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok {
			e = ast.Unparen(u.X)
		}
		_, ok := e.(*ast.CompositeLit)
		return ok
	}
	inspectFrame(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if !isCompositeLit(as.Rhs[i]) {
				continue
			}
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := p.TypesInfo.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// lockRecvName renders the bare type name of a field selection's receiver.
func lockRecvName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	name := named.Obj().Name()
	if i := strings.IndexByte(name, '['); i >= 0 {
		name = name[:i]
	}
	return name
}

// checkContextRule verifies goroutine-spawning and mutator-calling functions
// accept a context.
func checkContextRule(p *Pass, fd *ast.FuncDecl, mutators map[string]bool) {
	if len(mutators) > 0 {
		// The mutators themselves are bookkeeping under the caller's lock.
		if obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok && mutators[FuncKey(obj)] {
			return
		}
	}
	var spawns bool
	called := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			spawns = true
		case *ast.CallExpr:
			if key, ok := calleeKey(p.TypesInfo, x); ok && mutators[key] {
				called[key] = true
			}
		}
		return true
	})
	if !spawns && len(called) == 0 {
		return
	}
	if hasContextParam(p, fd) {
		return
	}
	var reasons []string
	if spawns {
		reasons = append(reasons, "spawns a goroutine")
	}
	if len(called) > 0 {
		keys := make([]string, 0, len(called))
		for k := range called {
			keys = append(keys, shortFuncKey(k))
		}
		sort.Strings(keys)
		reasons = append(reasons, "calls lease/queue mutator "+strings.Join(keys, ", "))
	}
	p.Reportf(fd.Name.Pos(), "function %s %s but has no context.Context parameter; thread ctx so cancellation reaches fleet state mutations",
		fd.Name.Name, strings.Join(reasons, " and "))
}

// hasContextParam reports whether fd declares a context.Context or
// *http.Request parameter (the request carries its context).
func hasContextParam(p *Pass, fd *ast.FuncDecl) bool {
	match := func(t types.Type) bool {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		switch obj.Pkg().Path() + "." + obj.Name() {
		case "context.Context", "net/http.Request":
			return true
		}
		return false
	}
	for _, field := range fd.Type.Params.List {
		if t := p.TypesInfo.TypeOf(field.Type); t != nil && match(t) {
			return true
		}
	}
	return false
}
