package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonDiagnostic is the machine-readable form emitted by -json, one object
// per line (JSON Lines), so CI tooling can stream-parse findings.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteText renders diagnostics in the classic file:line:col form, one per
// line.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders diagnostics as JSON Lines.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		jd := jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return nil
}
