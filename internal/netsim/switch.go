package netsim

import (
	"fmt"

	"dynaq/internal/packet"
)

// RouteFunc maps an arriving packet to the index of the output port it
// leaves through.
type RouteFunc func(p *packet.Packet) int

// Switch is an output-queued switch: packets arriving on any input are
// routed to an output port and enqueued there. Output queueing matches the
// shared-memory ASICs the paper models (buffer contention happens at the
// egress port).
type Switch struct {
	name  string
	ports []*Port
	route RouteFunc
}

// NewSwitch builds a switch from its output ports and routing function.
func NewSwitch(name string, ports []*Port, route RouteFunc) (*Switch, error) {
	if len(ports) == 0 {
		return nil, fmt.Errorf("netsim: switch %q needs at least one port", name)
	}
	if route == nil {
		return nil, fmt.Errorf("netsim: switch %q needs a routing function", name)
	}
	return &Switch{name: name, ports: ports, route: route}, nil
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// Port returns output port i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// NumPorts returns the port count.
func (s *Switch) NumPorts() int { return len(s.ports) }

// Receive implements Node: route and enqueue.
func (s *Switch) Receive(p *packet.Packet) {
	i := s.route(p)
	if i < 0 || i >= len(s.ports) {
		panic(fmt.Sprintf("netsim: switch %q routed %v to invalid port %d", s.name, p, i))
	}
	s.ports[i].Enqueue(p)
}

// Host is an end host: an egress NIC port toward its access link and a
// handler (installed by the transport layer) for arriving packets.
type Host struct {
	id      int
	egress  *Port
	handler func(p *packet.Packet)
}

// NewHost builds host id with the given egress port. The egress may be nil
// at construction (hosts and switches reference each other, so wiring is
// two-phase); install it with SetEgress before the host sends. The
// transport layer must install a handler before any packet arrives.
func NewHost(id int, egress *Port) *Host {
	return &Host{id: id, egress: egress}
}

// ID returns the host id.
func (h *Host) ID() int { return h.id }

// Egress returns the NIC port.
func (h *Host) Egress() *Port { return h.egress }

// SetEgress installs the NIC port (second phase of topology wiring).
func (h *Host) SetEgress(p *Port) { h.egress = p }

// SetHandler installs the receive callback.
func (h *Host) SetHandler(f func(p *packet.Packet)) { h.handler = f }

// Send pushes a locally generated packet onto the NIC.
func (h *Host) Send(p *packet.Packet) { h.egress.Enqueue(p) }

// Receive implements Node.
func (h *Host) Receive(p *packet.Packet) {
	if h.handler == nil {
		panic(fmt.Sprintf("netsim: host %d received %v with no handler installed", h.id, p))
	}
	h.handler(p)
}
