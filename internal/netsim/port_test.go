package netsim

import (
	"math/rand"
	"testing"

	"dynaq/internal/buffer"
	"dynaq/internal/packet"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

// sinkNode collects delivered packets with timestamps.
type sinkNode struct {
	s    *sim.Simulator
	pkts []*packet.Packet
	at   []units.Time
}

func (n *sinkNode) Receive(p *packet.Packet) {
	n.pkts = append(n.pkts, p)
	n.at = append(n.at, n.s.Now())
}

func newTestPort(t *testing.T, s *sim.Simulator, rate units.Rate, buf units.ByteSize,
	queues int, adm buffer.Admission, dst Node) *Port {
	t.Helper()
	p, err := NewPort(s, PortConfig{
		Rate:      rate,
		Buffer:    buf,
		Queues:    queues,
		Scheduler: sched.EqualDRR(queues, 1500),
		Admission: adm,
		Link:      NewLink(s, 10*units.Microsecond, dst),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func dataPkt(flow packet.FlowID, class int, size units.ByteSize) *packet.Packet {
	return &packet.Packet{Kind: packet.Data, Flow: flow, Size: size, Class: class, ECN: packet.ECT}
}

func TestPortConfigValidation(t *testing.T) {
	s := sim.New()
	link := NewLink(s, 0, &sinkNode{s: s})
	base := PortConfig{
		Rate: units.Gbps, Buffer: units.KB, Queues: 1,
		Scheduler: sched.NewSPQ(), Admission: buffer.NewBestEffort(), Link: link,
	}
	bad := []func(c *PortConfig){
		func(c *PortConfig) { c.Rate = 0 },
		func(c *PortConfig) { c.Buffer = 0 },
		func(c *PortConfig) { c.Queues = 0 },
		func(c *PortConfig) { c.Scheduler = nil },
		func(c *PortConfig) { c.Admission = nil },
		func(c *PortConfig) { c.Link = nil },
	}
	for i, mut := range bad {
		cfg := base
		mut(&cfg)
		if _, err := NewPort(s, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewPort(s, base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestPortSerializationTiming(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	p := newTestPort(t, s, units.Gbps, 100*units.KB, 1, buffer.NewBestEffort(), dst)
	p.Enqueue(dataPkt(1, 0, 1500))
	s.Run()
	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(dst.pkts))
	}
	// 1500B at 1Gbps = 12µs serialization + 10µs propagation.
	if want := units.Time(22 * units.Microsecond); dst.at[0] != want {
		t.Fatalf("delivered at %v, want %v", dst.at[0], want)
	}
}

func TestPortBackToBackPackets(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	p := newTestPort(t, s, units.Gbps, 100*units.KB, 1, buffer.NewBestEffort(), dst)
	for i := 0; i < 5; i++ {
		p.Enqueue(dataPkt(1, 0, 1500))
	}
	s.Run()
	if len(dst.pkts) != 5 {
		t.Fatalf("delivered %d packets, want 5", len(dst.pkts))
	}
	// Deliveries spaced exactly one serialization time apart.
	for i := 1; i < 5; i++ {
		if gap := dst.at[i].Sub(dst.at[i-1]); gap != 12*units.Microsecond {
			t.Fatalf("gap %d = %v, want 12µs", i, gap)
		}
	}
	st := p.Stats()
	if st.TxPackets != 5 || st.TxBytes != 7500 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPortDropsWhenAdmissionRejects(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	p := newTestPort(t, s, units.Gbps, 3000, 2, buffer.NewBestEffort(), dst)
	for i := 0; i < 4; i++ {
		p.Enqueue(dataPkt(1, 1, 1500))
	}
	// Buffer 3000B: the first packet is popped into the transmitter at
	// arrival time (it no longer occupies buffer while serializing), so
	// packets 2 and 3 fit and packet 4 drops.
	s.Run()
	st := p.Stats()
	if st.Enqueued != 3 || st.Dropped != 1 {
		t.Fatalf("enqueued=%d dropped=%d, want 3/1", st.Enqueued, st.Dropped)
	}
	if p.QueueDrops(1) != 1 {
		t.Fatalf("queue 1 drops = %d", p.QueueDrops(1))
	}
}

func TestPortClampsInvalidClass(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	p := newTestPort(t, s, units.Gbps, 100*units.KB, 2, buffer.NewBestEffort(), dst)
	p.Enqueue(dataPkt(1, 7, 1500))  // out of range high
	p.Enqueue(dataPkt(1, -1, 1500)) // negative
	s.Run()
	if got := p.QueueTxBytes(1); got != 3000 {
		t.Fatalf("clamped queue tx = %d, want 3000", got)
	}
}

func TestPortEnqueueMarking(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	pq, err := buffer.NewPerQueueECN(1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPort(t, s, units.Gbps, 100*units.KB, 1, pq, dst)
	for i := 0; i < 4; i++ {
		p.Enqueue(dataPkt(1, 0, 1500))
	}
	s.Run()
	if p.Stats().Marked == 0 {
		t.Fatal("no packets marked despite threshold crossing")
	}
	var ce int
	for _, pk := range dst.pkts {
		if pk.Marked() {
			ce++
		}
	}
	if int64(ce) != p.Stats().Marked {
		t.Fatalf("delivered CE = %d, stats.Marked = %d", ce, p.Stats().Marked)
	}
}

func TestPortTCNDequeueMarking(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	tcn, err := buffer.NewTCN(20 * units.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPort(t, s, units.Gbps, 100*units.KB, 1, tcn, dst)
	// Packet 1 dequeues immediately (sojourn 0); packets 3+ wait more than
	// 20µs (12µs serialization each ahead of them).
	for i := 0; i < 4; i++ {
		p.Enqueue(dataPkt(1, 0, 1500))
	}
	s.Run()
	if dst.pkts[0].Marked() {
		t.Fatal("first packet had no sojourn; must not be marked")
	}
	if !dst.pkts[3].Marked() {
		t.Fatal("deep packet exceeded sojourn threshold; must be marked")
	}
}

func TestPortTCNDropIdlesLink(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	td, err := buffer.NewTCNDrop(20 * units.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPort(t, s, units.Gbps, 100*units.KB, 1, td, dst)
	for i := 0; i < 4; i++ {
		p.Enqueue(dataPkt(1, 0, 1500))
	}
	s.Run()
	st := p.Stats()
	if st.DequeueDrops == 0 {
		t.Fatal("expected dequeue drops")
	}
	if int64(len(dst.pkts))+st.DequeueDrops != 4 {
		t.Fatalf("delivered %d + dequeue-dropped %d ≠ 4", len(dst.pkts), st.DequeueDrops)
	}
	// Packets 1-2 (sojourn 0µs, 12µs) transmit; packets 3-4 (24µs, 36µs)
	// drop at dequeue, each wasting a full serialization slot — the clock
	// must run through all four slots even though only two were sent.
	if want := units.Time(4 * 12 * units.Microsecond); s.Now() != want {
		t.Fatalf("final clock = %v, want %v (idle slots preserved)", s.Now(), want)
	}
	if len(dst.pkts) != 2 {
		t.Fatalf("delivered = %d, want 2", len(dst.pkts))
	}
}

func TestPortObserverSeesEveryTransition(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	p := newTestPort(t, s, units.Gbps, 100*units.KB, 1, buffer.NewBestEffort(), dst)
	var samples int
	p.Observe(portObserverFunc(func(now units.Time, pp *Port) { samples++ }))
	for i := 0; i < 3; i++ {
		p.Enqueue(dataPkt(1, 0, 1500))
	}
	s.Run()
	// 3 enqueues + 3 dequeues.
	if samples != 6 {
		t.Fatalf("observer samples = %d, want 6", samples)
	}
}

type portObserverFunc func(now units.Time, p *Port)

func (f portObserverFunc) ObservePort(now units.Time, p *Port) { f(now, p) }

func TestSwitchRoutesByFunction(t *testing.T) {
	s := sim.New()
	d0, d1 := &sinkNode{s: s}, &sinkNode{s: s}
	p0 := newTestPort(t, s, units.Gbps, 100*units.KB, 1, buffer.NewBestEffort(), d0)
	p1 := newTestPort(t, s, units.Gbps, 100*units.KB, 1, buffer.NewBestEffort(), d1)
	sw, err := NewSwitch("sw", []*Port{p0, p1}, func(p *packet.Packet) int { return p.Dst })
	if err != nil {
		t.Fatal(err)
	}
	if sw.Name() != "sw" || sw.NumPorts() != 2 {
		t.Fatalf("switch metadata wrong: %q %d", sw.Name(), sw.NumPorts())
	}
	pk := dataPkt(1, 0, 1500)
	pk.Dst = 1
	sw.Receive(pk)
	s.Run()
	if len(d0.pkts) != 0 || len(d1.pkts) != 1 {
		t.Fatalf("routing failed: d0=%d d1=%d", len(d0.pkts), len(d1.pkts))
	}
}

func TestSwitchValidation(t *testing.T) {
	if _, err := NewSwitch("x", nil, func(*packet.Packet) int { return 0 }); err == nil {
		t.Error("portless switch should fail")
	}
	s := sim.New()
	p := newTestPort(t, s, units.Gbps, units.KB, 1, buffer.NewBestEffort(), &sinkNode{s: s})
	if _, err := NewSwitch("x", []*Port{p}, nil); err == nil {
		t.Error("routeless switch should fail")
	}
}

func TestSwitchPanicsOnBadRoute(t *testing.T) {
	s := sim.New()
	p := newTestPort(t, s, units.Gbps, units.KB, 1, buffer.NewBestEffort(), &sinkNode{s: s})
	sw, err := NewSwitch("x", []*Port{p}, func(*packet.Packet) int { return 5 })
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic on out-of-range route")
		}
	}()
	sw.Receive(dataPkt(1, 0, 100))
}

func TestHostPanicsWithoutHandler(t *testing.T) {
	h := NewHost(0, nil)
	defer func() {
		if recover() == nil {
			t.Error("want panic on handlerless receive")
		}
	}()
	h.Receive(dataPkt(1, 0, 100))
}

func TestLinkDelay(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	l := NewLink(s, 125*units.Microsecond, dst)
	l.Send(dataPkt(1, 0, 1500))
	s.Run()
	if dst.at[0] != units.Time(125*units.Microsecond) {
		t.Fatalf("delivered at %v", dst.at[0])
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic on negative delay")
		}
	}()
	NewLink(s, -1, dst)
}

func TestPktQueueCompaction(t *testing.T) {
	// Push/pop enough to trigger the ring compaction path and verify FIFO
	// order and byte accounting throughout.
	var q pktQueue
	next := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			q.push(&packet.Packet{Seq: int64(round*10 + i), Size: 100})
		}
		for i := 0; i < 10; i++ {
			p := q.pop()
			if p.Seq != int64(next) {
				t.Fatalf("pop order broke: got seq %d, want %d", p.Seq, next)
			}
			next++
		}
		if q.len() != 0 || q.bytes != 0 {
			t.Fatalf("round %d: len=%d bytes=%d after drain", round, q.len(), q.bytes)
		}
	}
}

func TestPortAndHostAccessors(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	p := newTestPort(t, s, units.Gbps, 100*units.KB, 1, buffer.NewBestEffort(), dst)
	if p.Rate() != units.Gbps {
		t.Fatalf("Rate = %v", p.Rate())
	}
	h := NewHost(3, nil)
	if h.ID() != 3 || h.Egress() != nil {
		t.Fatal("host metadata wrong")
	}
	h.SetEgress(p)
	if h.Egress() != p {
		t.Fatal("SetEgress ignored")
	}
	got := 0
	h.SetHandler(func(*packet.Packet) { got++ })
	h.Receive(dataPkt(1, 0, 100))
	if got != 1 {
		t.Fatal("handler not invoked")
	}
	h.Send(dataPkt(1, 0, 1500))
	s.Run()
	if len(dst.pkts) != 1 {
		t.Fatal("Send did not reach the egress link")
	}
	sw, err := NewSwitch("sw", []*Port{p}, func(*packet.Packet) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if sw.Port(0) != p {
		t.Fatal("Port accessor wrong")
	}
}

func TestPortEventHookEmissions(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	p := newTestPort(t, s, units.Gbps, 3000, 1, buffer.NewBestEffort(), dst)
	var kinds []PortEventKind
	p.SetEventHook(func(ev PortEvent) { kinds = append(kinds, ev.Kind) })
	for i := 0; i < 4; i++ {
		p.Enqueue(dataPkt(1, 0, 1500))
	}
	s.Run()
	var enq, drop, tx int
	for _, k := range kinds {
		switch k {
		case EvEnqueue:
			enq++
		case EvDrop:
			drop++
		case EvTransmit:
			tx++
		}
	}
	if enq != 3 || drop != 1 || tx != 3 {
		t.Fatalf("events enq=%d drop=%d tx=%d, want 3/1/3", enq, drop, tx)
	}
}

func TestLinkLossAndCorruptionDeterministic(t *testing.T) {
	run := func(seed int64) (lost, corrupted, delivered int64) {
		s := sim.New()
		dst := &sinkNode{s: s}
		p := newTestPort(t, s, units.Gbps, units.MB, 1, buffer.NewBestEffort(), dst)
		rng := rand.New(rand.NewSource(seed))
		p.Link().SetRand(rng.Float64)
		p.Link().SetLossRate(0.2)
		p.Link().SetCorruptRate(0.1)
		for i := 0; i < 400; i++ {
			p.Enqueue(dataPkt(packet.FlowID(i), 0, 1500))
		}
		s.Run()
		return p.Link().Lost(), p.Link().Corrupted(), int64(len(dst.pkts))
	}
	lost, corrupted, delivered := run(7)
	if lost == 0 || corrupted == 0 {
		t.Fatalf("lost = %d, corrupted = %d; impairments had no effect", lost, corrupted)
	}
	if lost+corrupted+delivered != 400 {
		t.Fatalf("lost %d + corrupted %d + delivered %d != 400", lost, corrupted, delivered)
	}
	lost2, corrupted2, delivered2 := run(7)
	if lost != lost2 || corrupted != corrupted2 || delivered != delivered2 {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)",
			lost, corrupted, delivered, lost2, corrupted2, delivered2)
	}
	if l3, _, _ := run(8); l3 == lost {
		// Different seeds should (overwhelmingly) draw different loss counts;
		// equality would suggest the seed is ignored.
		t.Logf("seeds 7 and 8 lost the same count %d (unlikely but possible)", l3)
	}
}

func TestLinkUsableDetectionDelay(t *testing.T) {
	s := sim.New()
	l := NewLink(s, 0, &sinkNode{s: s})
	if !l.Usable(units.Millisecond) {
		t.Fatal("healthy link not usable")
	}
	s.At(units.Time(units.Millisecond), func() { l.SetDown(true) })
	s.At(units.Time(1500*units.Microsecond), func() {
		if !l.Usable(units.Millisecond) {
			t.Error("outage detected before the detection delay elapsed")
		}
		if l.Usable(100 * units.Microsecond) {
			t.Error("outage not detected after the detection delay elapsed")
		}
	})
	s.At(units.Time(3*units.Millisecond), func() {
		if l.Usable(units.Millisecond) {
			t.Error("outage still undetected past the delay")
		}
		l.SetDown(false)
		if !l.Usable(units.Millisecond) {
			t.Error("healed link not immediately usable")
		}
	})
	s.Run()
	if l.DownSince() != units.Time(units.Millisecond) {
		t.Fatalf("DownSince = %v, want 1ms", l.DownSince())
	}
}

func TestPortCountsMisclassifiedPackets(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	p := newTestPort(t, s, units.Gbps, units.MB, 4, buffer.NewBestEffort(), dst)
	var misclassEvents int
	p.SetEventHook(func(ev PortEvent) {
		if ev.Kind == EvMisclass {
			misclassEvents++
		}
	})
	p.Enqueue(dataPkt(1, 0, 1500))  // valid
	p.Enqueue(dataPkt(2, 7, 1500))  // out of range: collapses to queue 3
	p.Enqueue(dataPkt(3, -1, 1500)) // negative: collapses to queue 3
	s.Run()
	if got := p.Stats().Misclassified; got != 2 {
		t.Fatalf("Misclassified = %d, want 2", got)
	}
	if misclassEvents != 2 {
		t.Fatalf("misclass events = %d, want 2", misclassEvents)
	}
	// A single-queue host NIC collapses by design: no misclass accounting.
	nic := newTestPort(t, s, units.Gbps, units.MB, 1, buffer.NewBestEffort(), dst)
	nic.Enqueue(dataPkt(4, 3, 1500))
	s.Run()
	if got := nic.Stats().Misclassified; got != 0 {
		t.Fatalf("single-queue NIC Misclassified = %d, want 0", got)
	}
}

func TestPortStatsFoldInLinkCounters(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	p := newTestPort(t, s, units.Gbps, units.MB, 1, buffer.NewBestEffort(), dst)
	p.Link().SetDown(true)
	var linkDrops int
	p.AddEventHook(func(ev PortEvent) {
		if ev.Kind == EvLinkDrop {
			linkDrops++
		}
	})
	for i := 0; i < 3; i++ {
		p.Enqueue(dataPkt(packet.FlowID(i), 0, 1500))
	}
	s.Run()
	st := p.Stats()
	if st.LinkLost != 3 || linkDrops != 3 {
		t.Fatalf("LinkLost = %d, link-drop events = %d, want 3 and 3", st.LinkLost, linkDrops)
	}
	if len(dst.pkts) != 0 {
		t.Fatalf("delivered %d packets over a downed link", len(dst.pkts))
	}
}

func TestAddEventHookChains(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	p := newTestPort(t, s, units.Gbps, units.MB, 1, buffer.NewBestEffort(), dst)
	var first, second int
	p.SetEventHook(func(ev PortEvent) { first++ })
	p.AddEventHook(func(ev PortEvent) { second++ })
	p.Enqueue(dataPkt(1, 0, 1500))
	s.Run()
	if first == 0 || first != second {
		t.Fatalf("chained hooks saw %d and %d events", first, second)
	}
}
