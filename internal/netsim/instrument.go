package netsim

import (
	"strconv"

	"dynaq/internal/buffer"
	"dynaq/internal/core"
	"dynaq/internal/telemetry"
)

// thresholdState is satisfied by the DynaQ-family admission schemes, which
// expose their Algorithm-1 threshold state (see also internal/faults).
type thresholdState interface {
	State() *core.State
}

// Instrument registers the port's counters and live queue state with a
// telemetry registry under the given port label. Everything is exposed
// through snapshot functions over the counters the hot path already
// maintains, so instrumentation adds zero per-packet cost.
//
// Series (all labeled port=<label>, per-queue ones also queue=<i>):
//
//	port_enqueued_total, port_tx_packets_total, port_tx_bytes_total,
//	port_marked_total, port_misclassified_total,
//	port_drops_total{cause=admission|pool|dequeue|evict|link|corrupt},
//	port_occupancy_bytes, port_buffer_bytes,
//	queue_occupancy_bytes, queue_tx_bytes_total, queue_drops_total
//
// DynaQ-family ports additionally expose the paper's §V per-instant state:
//
//	dynaq_threshold_bytes (T_i), dynaq_satisfaction_bytes (S_i),
//	dynaq_satisfied (0/1), dynaq_adjustments_total,
//	dynaq_algorithm_drops_total, dynaq_satisfied_transitions_total
//
// Shared-memory ports expose pool_used_bytes / pool_total_bytes.
func (p *Port) Instrument(reg *telemetry.Registry, label string) {
	pl := telemetry.L("port", label)
	reg.CounterFunc("port_enqueued_total", func() int64 { return p.stats.Enqueued }, pl)
	reg.CounterFunc("port_tx_packets_total", func() int64 { return p.stats.TxPackets }, pl)
	reg.CounterFunc("port_tx_bytes_total", func() int64 { return int64(p.stats.TxBytes) }, pl)
	reg.CounterFunc("port_marked_total", func() int64 { return p.stats.Marked }, pl)
	reg.CounterFunc("port_misclassified_total", func() int64 { return p.stats.Misclassified }, pl)
	reg.GaugeFunc("port_occupancy_bytes", func() int64 { return int64(p.total) }, pl)
	reg.GaugeFunc("port_buffer_bytes", func() int64 { return int64(p.bufSz) }, pl)

	// Drops split by cause; the causes are disjoint and sum to everything
	// the port or its wire discarded.
	reg.CounterFunc("port_drops_total",
		func() int64 { return p.stats.Dropped - p.stats.PoolDrops },
		pl, telemetry.L("cause", "admission"))
	reg.CounterFunc("port_drops_total",
		func() int64 { return p.stats.PoolDrops },
		pl, telemetry.L("cause", "pool"))
	reg.CounterFunc("port_drops_total",
		func() int64 { return p.stats.DequeueDrops },
		pl, telemetry.L("cause", "dequeue"))
	reg.CounterFunc("port_drops_total",
		func() int64 { return p.stats.Evicted },
		pl, telemetry.L("cause", "evict"))
	reg.CounterFunc("port_drops_total",
		func() int64 { return p.link.Lost() },
		pl, telemetry.L("cause", "link"))
	reg.CounterFunc("port_drops_total",
		func() int64 { return p.link.Corrupted() },
		pl, telemetry.L("cause", "corrupt"))

	for i := range p.queues {
		i := i
		ql := telemetry.L("queue", strconv.Itoa(i))
		reg.GaugeFunc("queue_occupancy_bytes",
			func() int64 { return int64(p.queues[i].bytes) }, pl, ql)
		reg.CounterFunc("queue_tx_bytes_total",
			func() int64 { return int64(p.queueTx[i]) }, pl, ql)
		reg.CounterFunc("queue_drops_total",
			func() int64 { return p.queueDrops[i] }, pl, ql)
	}

	if ts, ok := p.admit.(thresholdState); ok {
		st := ts.State()
		for i := 0; i < st.NumQueues(); i++ {
			i := i
			ql := telemetry.L("queue", strconv.Itoa(i))
			reg.GaugeFunc("dynaq_threshold_bytes",
				func() int64 { return int64(st.Threshold(i)) }, pl, ql)
			reg.GaugeFunc("dynaq_satisfaction_bytes",
				func() int64 { return int64(st.Satisfaction(i)) }, pl, ql)
			reg.GaugeFunc("dynaq_satisfied", func() int64 {
				if st.Satisfied(i) {
					return 1
				}
				return 0
			}, pl, ql)
		}
	}
	if d, ok := p.admit.(*buffer.DynaQ); ok {
		reg.CounterFunc("dynaq_adjustments_total", d.Adjustments, pl)
		reg.CounterFunc("dynaq_algorithm_drops_total", d.AlgorithmDrops, pl)
		for i := 0; i < d.State().NumQueues(); i++ {
			i := i
			reg.CounterFunc("dynaq_satisfied_transitions_total",
				func() int64 { return d.SatisfiedTransitions(i) },
				pl, telemetry.L("queue", strconv.Itoa(i)))
		}
	}
	if p.pool != nil {
		reg.GaugeFunc("pool_used_bytes", func() int64 { return int64(p.pool.Used()) }, pl)
		reg.GaugeFunc("pool_total_bytes", func() int64 { return int64(p.pool.Total()) }, pl)
	}
}
