package netsim

import (
	"testing"

	"dynaq/internal/buffer"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

func TestPortSharedPoolReservation(t *testing.T) {
	s := sim.New()
	pool, err := buffer.NewSharedPool(6000)
	if err != nil {
		t.Fatal(err)
	}
	mkPort := func(dst Node) *Port {
		dt, err := buffer.NewDT(pool, 4)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPort(s, PortConfig{
			Rate: units.Gbps, Buffer: 100 * units.KB, Queues: 1,
			Scheduler: sched.NewSPQ(), Admission: dt,
			Link: NewLink(s, 0, dst), Pool: pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	d1, d2 := &sinkNode{s: s}, &sinkNode{s: s}
	p1, p2 := mkPort(d1), mkPort(d2)

	// Port 1 buffers 4 packets (6000B): the first pops straight into the
	// transmitter (releasing its reservation), so 4500B stay reserved.
	for i := 0; i < 4; i++ {
		p1.Enqueue(dataPkt(1, 0, 1500))
	}
	if pool.Used() != 4500 {
		t.Fatalf("pool used = %d, want 4500 (3 buffered, 1 transmitting)", pool.Used())
	}
	// Port 2's first packet pops straight into its (idle) transmitter, so
	// only its second arrival holds the pool's last 1500B...
	p2.Enqueue(dataPkt(2, 0, 1500))
	p2.Enqueue(dataPkt(2, 0, 1500))
	if pool.Used() != 6000 {
		t.Fatalf("pool used = %d after port 2, want 6000", pool.Used())
	}
	// ...then the memory is gone: DT's threshold is α·free = 0.
	p2.Enqueue(dataPkt(2, 0, 1500))
	if p2.Stats().Dropped != 1 {
		t.Fatalf("port 2 drops = %d, want 1 (pool exhausted)", p2.Stats().Dropped)
	}
	s.Run()
	if pool.Used() != 0 {
		t.Fatalf("pool used = %d after drain, want 0", pool.Used())
	}
	if len(d1.pkts) != 4 || len(d2.pkts) != 2 {
		t.Fatalf("deliveries = %d/%d, want 4/2", len(d1.pkts), len(d2.pkts))
	}
}

func TestPortBarberQEviction(t *testing.T) {
	s := sim.New()
	dst := &sinkNode{s: s}
	p, err := NewPort(s, PortConfig{
		Rate: units.Gbps, Buffer: 8 * 1500, Queues: 4,
		Scheduler: sched.EqualDRR(4, 1500), Admission: buffer.NewBarberQ(),
		Link: NewLink(s, 0, dst),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the port with queue 2's packets (the first pops into the
	// transmitter; 8 stay buffered = port full).
	for i := 0; i < 9; i++ {
		p.Enqueue(dataPkt(1, 2, 1500))
	}
	if p.TotalLen() != 8*1500 {
		t.Fatalf("port occupancy = %d, want full", p.TotalLen())
	}
	// A microburst for queue 0 (under its share) evicts queue 2 tails.
	for i := 0; i < 2; i++ {
		p.Enqueue(dataPkt(2, 0, 1500))
	}
	st := p.Stats()
	if st.Evicted != 2 {
		t.Fatalf("evicted = %d, want 2", st.Evicted)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0 (burst absorbed by eviction)", st.Dropped)
	}
	if p.QueueLen(0) != 2*1500 {
		t.Fatalf("queue 0 backlog = %d, want 3000", p.QueueLen(0))
	}
	// Once queue 0 reaches its fair share (2/8 of the buffer), eviction
	// stops helping it and further arrivals drop.
	p.Enqueue(dataPkt(2, 0, 1500))
	if p.Stats().Dropped != 1 {
		t.Fatalf("over-share arrival should drop, stats: %+v", p.Stats())
	}
	s.Run()
	// Conservation: everything enqueued was either delivered or evicted.
	if got := int64(len(dst.pkts)); got+p.Stats().Evicted != p.Stats().Enqueued {
		t.Fatalf("delivered %d + evicted %d ≠ enqueued %d",
			got, p.Stats().Evicted, p.Stats().Enqueued)
	}
}

func TestBarberQEvictionRespectsPool(t *testing.T) {
	// Eviction must release pool reservations too.
	s := sim.New()
	pool, err := buffer.NewSharedPool(6 * 1500)
	if err != nil {
		t.Fatal(err)
	}
	dst := &sinkNode{s: s}
	p, err := NewPort(s, PortConfig{
		Rate: units.Gbps, Buffer: 6 * 1500, Queues: 2,
		Scheduler: sched.EqualDRR(2, 1500), Admission: buffer.NewBarberQ(),
		Link: NewLink(s, 0, dst), Pool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		p.Enqueue(dataPkt(1, 1, 1500))
	}
	used := pool.Used()
	p.Enqueue(dataPkt(2, 0, 1500)) // evicts one of queue 1's packets
	if p.Stats().Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", p.Stats().Evicted)
	}
	if pool.Used() != used {
		t.Fatalf("pool used changed %d → %d; eviction+enqueue should balance", used, pool.Used())
	}
	s.Run()
	if pool.Used() != 0 {
		t.Fatal("pool not drained")
	}
}
