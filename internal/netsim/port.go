// Package netsim provides the network elements of the simulator: output
// ports with multi-queue buffers, links, switches, and hosts. It glues the
// scheduling (internal/sched) and buffer-management (internal/buffer) layers
// to the discrete-event engine.
package netsim

import (
	"fmt"

	"dynaq/internal/buffer"
	"dynaq/internal/packet"
	"dynaq/internal/sched"
	"dynaq/internal/sim"
	"dynaq/internal/units"
)

// Node is anything that can receive a packet from a link.
type Node interface {
	// Receive accepts a packet delivered by a link.
	Receive(p *packet.Packet)
}

// SendOutcome classifies what a link did with a packet put on the wire.
type SendOutcome uint8

// Send outcomes.
const (
	// SendDelivered: the packet will arrive after the propagation delay.
	SendDelivered SendOutcome = iota
	// SendLost: the packet was blackholed (link down, or random loss).
	SendLost
	// SendCorrupted: the frame was bit-corrupted in flight; the receiver's
	// CRC discards it, so from the transport's view it is lost.
	SendCorrupted
)

// Link is a unidirectional point-to-point wire: fixed propagation delay to a
// destination node. Serialization happens upstream, in the Port that feeds
// the link, so the link itself never queues. Links support fault
// injection: while down, every packet put on the wire is lost; lossy or
// corrupting links (failing optics) discard a seeded-random fraction.
type Link struct {
	sim    *sim.Simulator
	delay  units.Duration
	dst    Node
	down   bool
	downAt units.Time
	lost   int64

	lossRate    float64
	corruptRate float64
	corrupted   int64
	// rnd draws uniform [0,1) variates for loss/corruption decisions; it is
	// injected (seeded) by the fault engine so runs stay deterministic.
	rnd func() float64

	// freeDel recycles delivery carriers so a steady packet stream puts
	// frames on the wire without heap allocations.
	freeDel []*delivery
}

// delivery carries one in-flight packet across the wire. Together with the
// package-level deliverFn it replaces the per-packet closure the link would
// otherwise allocate for the arrival event.
type delivery struct {
	link *Link
	pkt  *packet.Packet
}

// deliverFn is the shared arrival callback for every link delivery; the
// carrier is recycled before the receiver runs so the receiver's own sends
// can reuse it.
var deliverFn = func(a any) {
	d := a.(*delivery)
	l, p := d.link, d.pkt
	d.link, d.pkt = nil, nil
	l.freeDel = append(l.freeDel, d)
	l.dst.Receive(p)
}

func (l *Link) newDelivery(p *packet.Packet) *delivery {
	var d *delivery
	if n := len(l.freeDel); n > 0 {
		d = l.freeDel[n-1]
		l.freeDel[n-1] = nil
		l.freeDel = l.freeDel[:n-1]
	} else {
		d = &delivery{}
	}
	d.link = l
	d.pkt = p
	return d
}

// NewLink wires a link with the given propagation delay toward dst.
func NewLink(s *sim.Simulator, delay units.Duration, dst Node) *Link {
	if delay < 0 {
		panic("netsim: negative link delay")
	}
	return &Link{sim: s, delay: delay, dst: dst}
}

// Send propagates p toward the destination node and reports what the wire
// did with it; packets entering a downed link vanish (fiber-cut semantics),
// lossy links blackhole a random fraction, corrupting links deliver frames
// the receiver's CRC rejects.
func (l *Link) Send(p *packet.Packet) SendOutcome {
	if l.down {
		l.lost++
		return SendLost
	}
	if l.lossRate > 0 && l.rnd() < l.lossRate {
		l.lost++
		return SendLost
	}
	if l.corruptRate > 0 && l.rnd() < l.corruptRate {
		l.corrupted++
		return SendCorrupted
	}
	l.sim.AfterCall(l.delay, deliverFn, l.newDelivery(p))
	return SendDelivered
}

// SetDown injects or clears a link failure, recording the failure instant
// so failure-aware routing can model a detection delay.
func (l *Link) SetDown(down bool) {
	if down && !l.down {
		l.downAt = l.sim.Now()
	}
	l.down = down
}

// Down reports whether the link is failed.
func (l *Link) Down() bool { return l.down }

// DownSince returns when the current outage began (meaningful only while
// Down() is true).
func (l *Link) DownSince() units.Time { return l.downAt }

// Usable reports whether a route may still use this link: a healthy link
// always is, and a failed one remains (wrongly) usable until the outage has
// lasted the given detection delay — the window in which a real fabric's
// probes have not yet converged.
func (l *Link) Usable(detect units.Duration) bool {
	return !l.down || l.sim.Now().Sub(l.downAt) < detect
}

// SetRand installs the uniform [0,1) variate source the loss and corruption
// decisions draw from. The fault engine seeds one per impaired link so the
// fault timeline is a deterministic function of the scenario seed.
func (l *Link) SetRand(rnd func() float64) { l.rnd = rnd }

// SetLossRate sets the random packet-loss probability in [0,1). A positive
// rate requires a variate source (SetRand).
func (l *Link) SetLossRate(p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("netsim: loss rate %v outside [0,1)", p))
	}
	if p > 0 && l.rnd == nil {
		panic("netsim: loss rate set without a rand source")
	}
	l.lossRate = p
}

// SetCorruptRate sets the bit-corruption probability in [0,1). A positive
// rate requires a variate source (SetRand).
func (l *Link) SetCorruptRate(p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("netsim: corrupt rate %v outside [0,1)", p))
	}
	if p > 0 && l.rnd == nil {
		panic("netsim: corrupt rate set without a rand source")
	}
	l.corruptRate = p
}

// LossRate returns the current random-loss probability.
func (l *Link) LossRate() float64 { return l.lossRate }

// CorruptRate returns the current bit-corruption probability.
func (l *Link) CorruptRate() float64 { return l.corruptRate }

// Lost counts packets blackholed by the link (down-state plus random loss).
func (l *Link) Lost() int64 { return l.lost }

// Corrupted counts frames delivered corrupted and hence discarded.
func (l *Link) Corrupted() int64 { return l.corrupted }

// PortStats aggregates per-port counters.
type PortStats struct {
	Enqueued      int64 // packets admitted to the buffer
	Dropped       int64 // packets rejected at enqueue (admission + pool)
	PoolDrops     int64 // subset of Dropped: shared switch memory exhausted
	DequeueDrops  int64 // packets discarded at dequeue (TCN-drop ablation)
	Evicted       int64 // buffered packets pushed out (BarberQ)
	Marked        int64 // packets CE-marked
	Misclassified int64 // packets with an out-of-range class, collapsed to the last queue
	TxPackets     int64 // packets put on the wire
	TxBytes       units.ByteSize
	LinkLost      int64 // packets the attached link blackholed (down or lossy)
	LinkCorrupted int64 // frames the attached link corrupted (CRC-discarded)
}

// PortObserver receives queue-state samples. QueueTrace in internal/metrics
// implements it; the hook fires on every enqueue and dequeue, matching the
// paper's measurement ("every enqueueing and dequeueing operations").
type PortObserver interface {
	// ObservePort is called after the port state changed.
	ObservePort(now units.Time, p *Port)
}

// PortEventKind classifies per-packet port events for tracing.
type PortEventKind uint8

// Port event kinds.
const (
	// EvEnqueue: a packet was admitted and buffered.
	EvEnqueue PortEventKind = iota
	// EvDrop: a packet was rejected at admission.
	EvDrop
	// EvMark: a packet was CE-marked.
	EvMark
	// EvEvict: a buffered packet was pushed out (BarberQ).
	EvEvict
	// EvDequeueDrop: a packet was discarded at dequeue (TCN-drop).
	EvDequeueDrop
	// EvTransmit: a packet finished serialization onto the wire.
	EvTransmit
	// EvMisclass: a packet arrived with an out-of-range class and was
	// collapsed to the last queue.
	EvMisclass
	// EvLinkDrop: the attached link blackholed the packet (down or lossy).
	EvLinkDrop
	// EvLinkCorrupt: the attached link corrupted the frame in flight.
	EvLinkCorrupt
)

// String implements fmt.Stringer.
func (k PortEventKind) String() string {
	switch k {
	case EvEnqueue:
		return "enqueue"
	case EvDrop:
		return "drop"
	case EvMark:
		return "mark"
	case EvEvict:
		return "evict"
	case EvDequeueDrop:
		return "dequeue-drop"
	case EvTransmit:
		return "transmit"
	case EvMisclass:
		return "misclass"
	case EvLinkDrop:
		return "link-drop"
	case EvLinkCorrupt:
		return "link-corrupt"
	default:
		return fmt.Sprintf("PortEventKind(%d)", uint8(k))
	}
}

// PortEvent is one per-packet occurrence at a port.
type PortEvent struct {
	At    units.Time
	Kind  PortEventKind
	Queue int
	Pkt   *packet.Packet
}

// EventHook receives per-packet port events (see internal/trace for a
// ready-made recorder). A nil hook costs nothing on the fast path.
type EventHook func(ev PortEvent)

// Port is a switch output port: a set of service queues in front of one
// link, governed by a scheduler and a buffer-management scheme. It also
// serves as a host NIC when configured with a single queue and a deep
// buffer.
type Port struct {
	sim   *sim.Simulator
	rate  units.Rate
	bufSz units.ByteSize
	link  *Link

	queues    []pktQueue
	total     units.ByteSize
	sched     sched.Scheduler
	admit     buffer.Admission
	busy      bool
	observers []PortObserver

	// Scheme hooks resolved once at construction to avoid per-packet
	// type assertions.
	enqMark buffer.EnqueueMarker
	deqMark buffer.DequeueMarker
	deqDrop buffer.DequeueDropper
	deqObs  buffer.DequeueObserver
	evictor buffer.Evictor

	// pool, when non-nil, is the shared switch memory this port draws
	// from (shared-memory switch mode, §II-C).
	pool *buffer.SharedPool

	stats      PortStats
	queueDrops []int64
	queueTx    []units.ByteSize
	hook       EventHook

	// Serialization state. The busy flag guarantees at most one packet is
	// serializing per port, so the in-flight packet lives in fields instead
	// of a closure; the two callbacks are bound once at construction. This
	// keeps the per-packet transmit path allocation-free.
	txPkt      *packet.Packet
	txQueue    int
	txDoneFn   func()
	transmitFn func()
}

// pktQueue is a FIFO of packets with byte accounting, backed by a ring-less
// slice with amortized compaction.
type pktQueue struct {
	pkts  []*packet.Packet
	head  int
	bytes units.ByteSize
}

func (q *pktQueue) push(p *packet.Packet) {
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
}

func (q *pktQueue) pop() *packet.Packet {
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	q.bytes -= p.Size
	if q.head > 64 && q.head*2 >= len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	return p
}

func (q *pktQueue) len() int { return len(q.pkts) - q.head }

// popTail removes the newest packet (eviction victims leave from the
// tail, keeping in-flight ordering of the survivors intact).
func (q *pktQueue) popTail() *packet.Packet {
	p := q.pkts[len(q.pkts)-1]
	q.pkts[len(q.pkts)-1] = nil
	q.pkts = q.pkts[:len(q.pkts)-1]
	q.bytes -= p.Size
	return p
}

func (q *pktQueue) headPkt() *packet.Packet {
	if q.len() == 0 {
		return nil
	}
	return q.pkts[q.head]
}

// PortConfig assembles a Port.
type PortConfig struct {
	// Rate is the link speed the port serializes at.
	Rate units.Rate
	// Buffer is the port buffer size B shared by the queues.
	Buffer units.ByteSize
	// Queues is the number of service queues.
	Queues int
	// Scheduler picks the next queue to serve.
	Scheduler sched.Scheduler
	// Admission is the buffer-management scheme.
	Admission buffer.Admission
	// Link is the attached wire.
	Link *Link
	// Pool, when set, makes the port draw its buffer from a shared
	// switch memory instead of a private slice; admission must still
	// pass, and the reservation must fit the pool.
	Pool *buffer.SharedPool
}

// NewPort validates the configuration and builds the port.
func NewPort(s *sim.Simulator, cfg PortConfig) (*Port, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("netsim: port rate %v must be positive", cfg.Rate)
	}
	if cfg.Buffer <= 0 {
		return nil, fmt.Errorf("netsim: port buffer %v must be positive", cfg.Buffer)
	}
	if cfg.Queues <= 0 {
		return nil, fmt.Errorf("netsim: port needs at least one queue")
	}
	if cfg.Scheduler == nil || cfg.Admission == nil || cfg.Link == nil {
		return nil, fmt.Errorf("netsim: port needs a scheduler, an admission scheme, and a link")
	}
	p := &Port{
		sim:        s,
		rate:       cfg.Rate,
		bufSz:      cfg.Buffer,
		link:       cfg.Link,
		queues:     make([]pktQueue, cfg.Queues),
		sched:      cfg.Scheduler,
		admit:      cfg.Admission,
		queueDrops: make([]int64, cfg.Queues),
		queueTx:    make([]units.ByteSize, cfg.Queues),
	}
	p.txDoneFn = p.txDone
	p.transmitFn = p.transmitNext
	p.enqMark, _ = cfg.Admission.(buffer.EnqueueMarker)
	p.deqMark, _ = cfg.Admission.(buffer.DequeueMarker)
	p.deqDrop, _ = cfg.Admission.(buffer.DequeueDropper)
	p.deqObs, _ = cfg.Admission.(buffer.DequeueObserver)
	p.evictor, _ = cfg.Admission.(buffer.Evictor)
	p.pool = cfg.Pool
	return p, nil
}

// NumQueues implements sched.View and buffer.View.
func (p *Port) NumQueues() int { return len(p.queues) }

// QueueLen implements sched.View and buffer.View.
func (p *Port) QueueLen(i int) units.ByteSize { return p.queues[i].bytes }

// HeadSize implements sched.View.
func (p *Port) HeadSize(i int) units.ByteSize {
	if h := p.queues[i].headPkt(); h != nil {
		return h.Size
	}
	return 0
}

// TotalLen implements buffer.View.
func (p *Port) TotalLen() units.ByteSize { return p.total }

// Buffer implements buffer.View.
func (p *Port) Buffer() units.ByteSize { return p.bufSz }

// Rate returns the port's link speed.
func (p *Port) Rate() units.Rate { return p.rate }

// Link returns the attached wire (for failure injection in tests and
// experiments).
func (p *Port) Link() *Link { return p.link }

// Stats returns a snapshot of the port counters, folding in the attached
// link's loss/corruption counters so fault runs can be audited end to end.
func (p *Port) Stats() PortStats {
	s := p.stats
	s.LinkLost = p.link.Lost()
	s.LinkCorrupted = p.link.Corrupted()
	return s
}

// Admission returns the buffer-management scheme governing this port (for
// invariant checkers and traces).
func (p *Port) Admission() buffer.Admission { return p.admit }

// Pool returns the shared switch memory the port draws from, or nil for a
// private-buffer port.
func (p *Port) Pool() *buffer.SharedPool { return p.pool }

// QueueDrops returns the enqueue-drop count of queue i.
func (p *Port) QueueDrops(i int) int64 { return p.queueDrops[i] }

// QueueTxBytes returns the bytes queue i has put on the wire.
func (p *Port) QueueTxBytes(i int) units.ByteSize { return p.queueTx[i] }

// Observe registers an observer notified on every enqueue and dequeue.
func (p *Port) Observe(o PortObserver) { p.observers = append(p.observers, o) }

// SetEventHook installs the per-packet event hook (replacing any previous
// one; chain externally if several consumers are needed).
func (p *Port) SetEventHook(h EventHook) { p.hook = h }

// AddEventHook chains h after any previously installed hook, so a trace
// recorder and an invariant guardrail can observe the same port.
func (p *Port) AddEventHook(h EventHook) {
	if prev := p.hook; prev != nil {
		p.hook = func(ev PortEvent) { prev(ev); h(ev) }
		return
	}
	p.hook = h
}

func (p *Port) emit(kind PortEventKind, queue int, pkt *packet.Packet) {
	if p.hook != nil {
		p.hook(PortEvent{At: p.sim.Now(), Kind: kind, Queue: queue, Pkt: pkt})
	}
}

func (p *Port) notify() {
	for _, o := range p.observers {
		o.ObservePort(p.sim.Now(), p)
	}
}

// Enqueue runs the buffer-management scheme for an arriving packet and, if
// admitted, buffers it and kicks the transmitter.
func (p *Port) Enqueue(pkt *packet.Packet) {
	cls := pkt.Class
	if cls < 0 || cls >= len(p.queues) {
		// Single-queue host NICs and misconfigured classes collapse to
		// the last queue (lowest priority) rather than dropping. On a
		// multi-queue port that collapse means a misconfiguration upstream
		// (a flow classified for a queue the port does not have), so it is
		// counted and surfaced instead of silently folding into the last
		// queue's statistics.
		cls = len(p.queues) - 1
		if len(p.queues) > 1 {
			p.stats.Misclassified++
			p.emit(EvMisclass, cls, pkt)
		}
	}
	if !p.admitWithEviction(cls, pkt.Size) {
		p.stats.Dropped++
		p.queueDrops[cls]++
		p.emit(EvDrop, cls, pkt)
		p.notify()
		return
	}
	if p.pool != nil && !p.pool.Reserve(pkt.Size) {
		// The shared memory itself is exhausted (another port holds it).
		p.stats.Dropped++
		p.stats.PoolDrops++
		p.queueDrops[cls]++
		p.emit(EvDrop, cls, pkt)
		p.notify()
		return
	}
	if p.enqMark != nil && p.enqMark.MarkOnEnqueue(p, cls, pkt.Size) {
		if pkt.Mark() {
			p.stats.Marked++
			p.emit(EvMark, cls, pkt)
		}
	}
	pkt.EnqueueTime = p.sim.Now()
	p.queues[cls].push(pkt)
	p.total += pkt.Size
	p.stats.Enqueued++
	p.emit(EvEnqueue, cls, pkt)
	p.notify()
	if !p.busy {
		p.busy = true
		p.transmitNext()
	}
}

// admitWithEviction runs the admission scheme and, when it refuses and the
// scheme supports eviction (BarberQ), pushes out tail packets of the
// designated victim queues until the arrival fits or the scheme gives up.
func (p *Port) admitWithEviction(cls int, size units.ByteSize) bool {
	for {
		if p.admit.Admit(p, cls, size) {
			return true
		}
		if p.evictor == nil {
			return false
		}
		victim := p.evictor.EvictFor(p, cls, size)
		if victim < 0 || p.queues[victim].len() == 0 {
			return false
		}
		evicted := p.queues[victim].popTail()
		p.total -= evicted.Size
		if p.pool != nil {
			p.pool.Release(evicted.Size)
		}
		p.stats.Evicted++
		p.emit(EvEvict, victim, evicted)
	}
}

// transmitNext serves one packet according to the scheduler and re-arms
// itself after the serialization delay.
func (p *Port) transmitNext() {
	i := p.sched.Select(p)
	if i < 0 {
		p.busy = false
		return
	}
	pkt := p.queues[i].pop()
	p.total -= pkt.Size
	if p.pool != nil {
		p.pool.Release(pkt.Size)
	}
	p.sched.OnDequeue(i, pkt.Size, p.queues[i].len() == 0)
	if p.deqObs != nil {
		p.deqObs.ObserveDequeue(p, i, pkt.Size, p.sim.Now())
	}
	sojourn := p.sim.Now().Sub(pkt.EnqueueTime)
	if p.deqDrop != nil && p.deqDrop.DropOnDequeue(i, sojourn) {
		// TCN-drop ablation: the transmission opportunity is wasted — the
		// qdisc returned nothing to the NIC — so the link idles for the
		// packet's serialization time (§II-C's argument).
		p.stats.DequeueDrops++
		p.emit(EvDequeueDrop, i, pkt)
		p.notify()
		p.sim.After(p.rate.Transmit(pkt.Size), p.transmitFn)
		return
	}
	if p.deqMark != nil && p.deqMark.MarkOnDequeue(i, sojourn) {
		if pkt.Mark() {
			p.stats.Marked++
			p.emit(EvMark, i, pkt)
		}
	}
	p.notify()
	p.txPkt, p.txQueue = pkt, i
	p.sim.After(p.rate.Transmit(pkt.Size), p.txDoneFn)
}

// txDone completes serialization of the packet parked in txPkt: account it,
// put it on the wire, and serve the next packet.
func (p *Port) txDone() {
	pkt, i := p.txPkt, p.txQueue
	p.txPkt = nil
	p.stats.TxPackets++
	p.stats.TxBytes += pkt.Size
	p.queueTx[i] += pkt.Size
	p.emit(EvTransmit, i, pkt)
	switch p.link.Send(pkt) {
	case SendLost:
		p.emit(EvLinkDrop, i, pkt)
	case SendCorrupted:
		p.emit(EvLinkCorrupt, i, pkt)
	}
	p.transmitNext()
}
