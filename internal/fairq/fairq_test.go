package fairq

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dynaq/internal/fleet"
)

func fill(t *Tree[string], tenant string, n int, at time.Time) {
	for i := 0; i < n; i++ {
		t.Push(tenant, fmt.Sprintf("%s-%d", tenant, i), at)
	}
}

// TestNoStarvationUnderFlood is the acceptance property test: tenant A has
// 1000 queued cells and tenant B has 10, both weight 1, under a ManualClock.
// Every B cell must dispatch within the first 2*|B| grant rounds.
func TestNoStarvationUnderFlood(t *testing.T) {
	clock := fleet.NewManualClock(time.Unix(0, 0))
	now := clock.Now()
	tr := New[string](nil, 0)
	fill(tr, "a", 1000, now)
	fill(tr, "b", 10, now)

	lastB := -1
	for round := 0; round < 2*10; round++ {
		tenant, _, ok := tr.Pop(now, nil)
		if !ok {
			t.Fatalf("round %d: queue dry with %d items left", round, tr.Len())
		}
		if tenant == "b" {
			lastB = round
		}
	}
	if got := tr.Depth("b"); got != 0 {
		t.Fatalf("tenant b still has %d cells queued after 20 rounds (last b dispatch at round %d)", got, lastB)
	}
}

// TestWeightedInterleave checks the 3:1 acceptance property: with weights
// a=3, b=1 the rotation gives A three dispatches per B dispatch, +-1.
func TestWeightedInterleave(t *testing.T) {
	now := time.Unix(0, 0)
	tr := New[string](map[string]int{"a": 3, "b": 1}, 0)
	fill(tr, "a", 90, now)
	fill(tr, "b", 30, now)

	aRun := 0
	bSeen := 0
	for tr.Depth("b") > 0 {
		tenant, _, ok := tr.Pop(now, nil)
		if !ok {
			t.Fatal("queue dry before tenant b drained")
		}
		switch tenant {
		case "a":
			aRun++
			if aRun > 4 {
				t.Fatalf("tenant a dispatched %d times in a row; want 3 +-1", aRun)
			}
		case "b":
			if bSeen > 0 && aRun < 2 {
				t.Fatalf("only %d a-dispatches between b-dispatches; want 3 +-1", aRun)
			}
			bSeen++
			aRun = 0
		}
	}
	if bSeen != 30 {
		t.Fatalf("tenant b dispatched %d times, want 30", bSeen)
	}
}

// TestSingleTenantFIFO pins the degenerate case the coordinator relies on:
// one tenant pops in exactly fleet.ReadyQueue's (readyAt, seq) order.
func TestSingleTenantFIFO(t *testing.T) {
	base := time.Unix(100, 0)
	tr := New[int](nil, 0)
	var rq fleet.ReadyQueue[int]
	at := []time.Duration{5 * time.Second, 0, 2 * time.Second, 0, 5 * time.Second}
	for i, d := range at {
		tr.Push("default", i, base.Add(d))
		rq.Push(i, base.Add(d))
	}
	now := base.Add(10 * time.Second)
	for {
		want, wok := rq.Pop(now)
		_, got, gok := tr.Pop(now, nil)
		if wok != gok {
			t.Fatalf("length mismatch: ReadyQueue ok=%v Tree ok=%v", wok, gok)
		}
		if !wok {
			break
		}
		if got != want {
			t.Fatalf("order diverged: Tree popped %d, ReadyQueue popped %d", got, want)
		}
	}
}

func TestReadyAtGating(t *testing.T) {
	base := time.Unix(0, 0)
	tr := New[string](nil, 0)
	tr.Push("a", "later", base.Add(time.Minute))
	tr.Push("a", "now", base)

	if _, v, ok := tr.Pop(base, nil); !ok || v != "now" {
		t.Fatalf("Pop(base) = %q, %v; want \"now\", true", v, ok)
	}
	if _, _, ok := tr.Pop(base, nil); ok {
		t.Fatal("Pop(base) returned the not-yet-ready item")
	}
	at, ok := tr.NextAt()
	if !ok || !at.Equal(base.Add(time.Minute)) {
		t.Fatalf("NextAt() = %v, %v; want %v, true", at, ok, base.Add(time.Minute))
	}
	if _, v, ok := tr.Pop(base.Add(time.Minute), nil); !ok || v != "later" {
		t.Fatalf("Pop(+1m) = %q, %v; want \"later\", true", v, ok)
	}
}

func TestEligibilityPredicateSkips(t *testing.T) {
	now := time.Unix(0, 0)
	tr := New[string](nil, 0)
	tr.Push("a", "blocked", now)
	tr.Push("a", "free", now)

	_, v, ok := tr.Pop(now, func(s string) bool { return s != "blocked" })
	if !ok || v != "free" {
		t.Fatalf("Pop with predicate = %q, %v; want \"free\", true", v, ok)
	}
	if _, _, ok := tr.Pop(now, func(s string) bool { return s != "blocked" }); ok {
		t.Fatal("Pop returned an ineligible item")
	}
}

func TestInflightCap(t *testing.T) {
	now := time.Unix(0, 0)
	tr := New[string](nil, 1)
	fill(tr, "a", 2, now)
	fill(tr, "b", 2, now)

	tenant, _, ok := tr.Pop(now, nil)
	if !ok || tenant != "a" {
		t.Fatalf("first pop = %q, %v; want \"a\", true", tenant, ok)
	}
	// a is now capped: the next two pops must both come from b.
	for i := 0; i < 1; i++ {
		tenant, _, ok = tr.Pop(now, nil)
		if !ok || tenant != "b" {
			t.Fatalf("pop while a capped = %q, %v; want \"b\", true", tenant, ok)
		}
	}
	// b is capped too; with both tenants at the cap nothing dispatches and
	// NextAt must not advertise the capped work.
	if _, _, ok := tr.Pop(now, nil); ok {
		t.Fatal("Pop dispatched past the in-flight cap")
	}
	if _, ok := tr.NextAt(); ok {
		t.Fatal("NextAt advertised work from capped tenants")
	}
	tr.Release("a")
	tenant, _, ok = tr.Pop(now, nil)
	if !ok || tenant != "a" {
		t.Fatalf("pop after release = %q, %v; want \"a\", true", tenant, ok)
	}
	if tr.Inflight("a") != 1 || tr.Inflight("b") != 1 {
		t.Fatalf("inflight = a:%d b:%d; want 1, 1", tr.Inflight("a"), tr.Inflight("b"))
	}
}

func TestPrune(t *testing.T) {
	now := time.Unix(0, 0)
	tr := New[string](nil, 0)
	fill(tr, "a", 3, now)
	fill(tr, "b", 2, now)

	dropped := tr.Prune(func(s string) bool { return s[0] == 'a' })
	if dropped != 3 {
		t.Fatalf("Prune dropped %d items, want 3", dropped)
	}
	if tr.Depth("a") != 0 || tr.Depth("b") != 2 || tr.Len() != 2 {
		t.Fatalf("after prune: a=%d b=%d len=%d; want 0, 2, 2", tr.Depth("a"), tr.Depth("b"), tr.Len())
	}
	if got := tr.Tenants(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Tenants() = %v, want [b]", got)
	}
}

// TestRotationSurvivesChurn checks that the cursor keeps rotating fairly
// when tenants drain away and new ones appear mid-rotation.
func TestRotationSurvivesChurn(t *testing.T) {
	now := time.Unix(0, 0)
	tr := New[string](nil, 0)
	fill(tr, "b", 1, now)
	fill(tr, "d", 3, now)

	if tenant, _, _ := tr.Pop(now, nil); tenant != "b" {
		t.Fatalf("first pop from %q, want b", tenant)
	}
	// b is gone; c arrives between pops. Cursor sat at b, so the cyclic
	// successor among {c, d} is c.
	fill(tr, "c", 1, now)
	if tenant, _, _ := tr.Pop(now, nil); tenant != "c" {
		t.Fatalf("second pop from %q, want c", tenant)
	}
	if tenant, _, _ := tr.Pop(now, nil); tenant != "d" {
		t.Fatalf("third pop from %q, want d", tenant)
	}
}

func TestJobQueueQuotaAndCapacity(t *testing.T) {
	q := NewJobQueue[string](3, 2)
	if err := q.Enqueue("a", "a1"); err != nil {
		t.Fatalf("Enqueue(a1): %v", err)
	}
	if err := q.Enqueue("a", "a2"); err != nil {
		t.Fatalf("Enqueue(a2): %v", err)
	}
	err := q.Enqueue("a", "a3")
	var tf *TenantFullError
	if !errors.As(err, &tf) {
		t.Fatalf("Enqueue(a3) = %v, want TenantFullError", err)
	}
	if tf.Tenant != "a" || tf.Depth != 2 || tf.Limit != 2 {
		t.Fatalf("TenantFullError = %+v, want {a 2 2}", tf)
	}
	// Another tenant still has room under the global cap.
	if err := q.Enqueue("b", "b1"); err != nil {
		t.Fatalf("Enqueue(b1): %v", err)
	}
	err = q.Enqueue("c", "c1")
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("Enqueue(c1) = %v, want QueueFullError", err)
	}
	if qf.Depth != 3 || qf.Limit != 3 {
		t.Fatalf("QueueFullError = %+v, want {3 3}", qf)
	}
	// Force bypasses both limits.
	q.Force("a", "a3")
	if q.Len() != 4 || q.Depth("a") != 3 {
		t.Fatalf("after Force: len=%d depth(a)=%d; want 4, 3", q.Len(), q.Depth("a"))
	}
}

func TestJobQueueFIFOPerTenant(t *testing.T) {
	q := NewJobQueue[string](10, 0)
	for _, v := range []string{"a1", "a2", "a3"} {
		if err := q.Enqueue("a", v); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Enqueue("b", "b1"); err != nil {
		t.Fatal(err)
	}
	if got := q.Tenants(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Tenants() = %v, want [a b]", got)
	}
	for _, want := range []string{"a1", "a2", "a3"} {
		v, ok := q.Pop("a")
		if !ok || v != want {
			t.Fatalf("Pop(a) = %q, %v; want %q, true", v, ok, want)
		}
	}
	if _, ok := q.Pop("a"); ok {
		t.Fatal("Pop on drained tenant succeeded")
	}
	if got := q.Tenants(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Tenants() after drain = %v, want [b]", got)
	}
}
