// Package fairq implements the coordinator's two-level fair queue: a tree
// of per-tenant leaf queues drained by deterministic weighted round-robin.
//
// The shape mirrors the paper's core move at a different layer. DynaQ gives
// every service its own switch buffer so one service's burst cannot consume
// the queue capacity other services depend on; fairq gives every tenant its
// own leaf queue so one tenant's 10k-cell sweep cannot consume the dispatch
// slots other tenants depend on. The rotation is modeled on the scheduler
// tree-queue used by Grafana Mimir: a flat map of named leaves plus a cursor
// that walks the sorted tenant names cyclically, so fairness is a property
// of construction (every non-empty leaf is visited once per rotation) rather
// than of timers or randomness.
//
// Two types share the file pair: Tree orders individual work items (cells)
// across tenants for dispatch, and JobQueue (jobqueue.go) orders whole jobs
// behind per-tenant admission quotas. Both are pure bookkeeping — they take
// time.Time values from the caller, never read the wall clock, and expect
// the caller to hold its own lock, exactly like fleet.ReadyQueue.
package fairq

import (
	"sort"
	"time"
)

// item is one queued entry in a leaf: the payload plus the (readyAt, seq)
// pair that fixes its dispatch order within the tenant.
type item[T any] struct {
	v       T
	readyAt time.Time
	seq     int
}

// leaf is one tenant's queue plus its in-flight accounting. The inflight
// count outlives the queued items: a leaf with zero items but live grants
// must survive so Release has somewhere to land.
type leaf[T any] struct {
	items    []item[T]
	inflight int
}

// Tree is a two-level fair queue: tenant leaves drained by burst weighted
// round-robin. Within a tenant, items come out in (readyAt, seq) order —
// identical to fleet.ReadyQueue — so a single-tenant Tree degenerates to
// the exact FIFO the coordinator used before tenancy existed. Across
// tenants, Pop serves up to weight(t) items per visit before the cursor
// advances to the next tenant in sorted-name order, wrapping cyclically.
//
// Starvation-freedom follows by construction: a tenant with a ready item is
// served at most sum(weights)-weight(t) pops after it becomes the cursor's
// predecessor, regardless of how deep any other leaf grows.
//
// Tree is not self-locking; callers serialize access under their own mutex.
type Tree[T any] struct {
	weights     map[string]int
	maxInflight int
	leaves      map[string]*leaf[T]
	seq         int
	last        string // tenant name the cursor last served; "" before any pop
	credit      int    // remaining serves owed to last before the cursor advances
}

// New returns an empty Tree. weights maps tenant name to round-robin burst
// size; missing or non-positive entries default to 1. maxInflight caps each
// tenant's popped-but-unreleased items; zero means uncapped.
func New[T any](weights map[string]int, maxInflight int) *Tree[T] {
	w := make(map[string]int, len(weights))
	for name, n := range weights {
		if n > 0 {
			w[name] = n
		}
	}
	return &Tree[T]{
		weights:     w,
		maxInflight: maxInflight,
		leaves:      make(map[string]*leaf[T]),
	}
}

func (t *Tree[T]) weight(tenant string) int {
	if n := t.weights[tenant]; n > 0 {
		return n
	}
	return 1
}

func (t *Tree[T]) capped(lf *leaf[T]) bool {
	return t.maxInflight > 0 && lf.inflight >= t.maxInflight
}

// Push queues v under tenant, eligible for dispatch at readyAt.
func (t *Tree[T]) Push(tenant string, v T, readyAt time.Time) {
	lf := t.leaves[tenant]
	if lf == nil {
		lf = &leaf[T]{}
		t.leaves[tenant] = lf
	}
	t.seq++
	lf.items = append(lf.items, item[T]{v: v, readyAt: readyAt, seq: t.seq})
}

// rotation returns the non-empty tenant names in visit order: starting at
// last while credit remains, otherwise at last's cyclic successor in sorted
// order. Tracking the cursor by name rather than index keeps the rotation
// stable when tenants appear or drain away between pops.
func (t *Tree[T]) rotation() []string {
	names := make([]string, 0, len(t.leaves))
	for name, lf := range t.leaves {
		if len(lf.items) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return names
	}
	start := 0
	if t.credit > 0 {
		start = sort.SearchStrings(names, t.last)
	} else {
		start = sort.SearchStrings(names, t.last+"\x00")
	}
	if start >= len(names) {
		start = 0
	}
	return append(names[start:], names[:start]...)
}

// Pop removes and returns the next item due for dispatch: the earliest
// (readyAt, seq) entry with readyAt <= now and eligible(v) true, from the
// first tenant in rotation order that is neither in-flight-capped nor empty
// of eligible items. A nil eligible accepts everything. On success the
// serving tenant's inflight count is incremented; the caller must balance
// it with Release once the item settles.
func (t *Tree[T]) Pop(now time.Time, eligible func(T) bool) (string, T, bool) {
	for _, name := range t.rotation() {
		lf := t.leaves[name]
		if t.capped(lf) {
			continue
		}
		best := -1
		for i := range lf.items {
			it := &lf.items[i]
			if it.readyAt.After(now) {
				continue
			}
			if eligible != nil && !eligible(it.v) {
				continue
			}
			if best < 0 || it.readyAt.Before(lf.items[best].readyAt) ||
				(it.readyAt.Equal(lf.items[best].readyAt) && it.seq < lf.items[best].seq) {
				best = i
			}
		}
		if best < 0 {
			continue
		}
		v := lf.items[best].v
		lf.items = append(lf.items[:best], lf.items[best+1:]...)
		lf.inflight++
		if name == t.last && t.credit > 0 {
			t.credit--
		} else {
			t.last = name
			t.credit = t.weight(name) - 1
		}
		t.maybeDrop(name, lf)
		return name, v, true
	}
	var zero T
	return "", zero, false
}

// Release returns one in-flight slot to tenant after a popped item settles.
func (t *Tree[T]) Release(tenant string) {
	lf := t.leaves[tenant]
	if lf == nil {
		return
	}
	if lf.inflight > 0 {
		lf.inflight--
	}
	t.maybeDrop(tenant, lf)
}

func (t *Tree[T]) maybeDrop(tenant string, lf *leaf[T]) {
	if len(lf.items) == 0 && lf.inflight == 0 {
		delete(t.leaves, tenant)
	}
}

// NextAt reports the earliest readyAt among queued items of tenants that
// are not in-flight-capped, so the caller can sleep until work could
// actually dispatch rather than polling.
func (t *Tree[T]) NextAt() (time.Time, bool) {
	var at time.Time
	found := false
	for _, lf := range t.leaves {
		if t.capped(lf) {
			continue
		}
		for i := range lf.items {
			if !found || lf.items[i].readyAt.Before(at) {
				at = lf.items[i].readyAt
				found = true
			}
		}
	}
	return at, found
}

// Prune removes every queued item for which pred returns true and reports
// how many were dropped. In-flight accounting is untouched: pruned items
// were never popped, so they hold no slot.
func (t *Tree[T]) Prune(pred func(T) bool) int {
	dropped := 0
	for name, lf := range t.leaves {
		kept := lf.items[:0]
		for _, it := range lf.items {
			if pred(it.v) {
				dropped++
				continue
			}
			kept = append(kept, it)
		}
		lf.items = kept
		t.maybeDrop(name, lf)
	}
	return dropped
}

// Len reports the total number of queued items across all tenants.
func (t *Tree[T]) Len() int {
	n := 0
	for _, lf := range t.leaves {
		n += len(lf.items)
	}
	return n
}

// Depth reports the number of queued items for one tenant.
func (t *Tree[T]) Depth(tenant string) int {
	if lf := t.leaves[tenant]; lf != nil {
		return len(lf.items)
	}
	return 0
}

// Inflight reports tenant's popped-but-unreleased item count.
func (t *Tree[T]) Inflight(tenant string) int {
	if lf := t.leaves[tenant]; lf != nil {
		return lf.inflight
	}
	return 0
}

// Tenants returns the sorted names of tenants with queued or in-flight
// items.
func (t *Tree[T]) Tenants() []string {
	names := make([]string, 0, len(t.leaves))
	for name := range t.leaves {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
