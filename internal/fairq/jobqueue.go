package fairq

import (
	"fmt"
	"sort"
)

// QueueFullError reports that the queue's global capacity is exhausted.
type QueueFullError struct {
	Depth int // total jobs waiting
	Limit int // global capacity
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("queue full (depth %d)", e.Limit)
}

// TenantFullError reports that one tenant's admission quota is exhausted
// while the queue as a whole still has room — the isolation analogue of a
// per-service buffer overflowing without touching its neighbours.
type TenantFullError struct {
	Tenant string
	Depth  int // jobs this tenant has waiting
	Limit  int // per-tenant quota
}

func (e *TenantFullError) Error() string {
	return fmt.Sprintf("tenant %q queue full (%d of %d queued)", e.Tenant, e.Depth, e.Limit)
}

// JobQueue is the admission level of the fair queue: per-tenant FIFOs of
// whole jobs behind a shared global capacity and an optional per-tenant
// quota. Like Tree it is pure bookkeeping under the caller's lock.
type JobQueue[T any] struct {
	capacity int
	quota    int
	total    int
	tenants  map[string][]T
}

// NewJobQueue returns an empty JobQueue with the given global capacity and
// per-tenant quota. A non-positive quota disables the per-tenant limit; the
// global capacity must be positive.
func NewJobQueue[T any](capacity, quota int) *JobQueue[T] {
	return &JobQueue[T]{
		capacity: capacity,
		quota:    quota,
		tenants:  make(map[string][]T),
	}
}

// Enqueue appends v to tenant's FIFO, failing with *TenantFullError when
// the tenant's quota is spent and *QueueFullError when the whole queue is.
// The tenant check runs first: a flooding tenant sees its own limit, not
// the shared one.
func (q *JobQueue[T]) Enqueue(tenant string, v T) error {
	if q.quota > 0 && len(q.tenants[tenant]) >= q.quota {
		return &TenantFullError{Tenant: tenant, Depth: len(q.tenants[tenant]), Limit: q.quota}
	}
	if q.total >= q.capacity {
		return &QueueFullError{Depth: q.total, Limit: q.capacity}
	}
	q.force(tenant, v)
	return nil
}

// Force appends v to tenant's FIFO bypassing both limits. Restart recovery
// and operator-driven dead-letter requeues use it: work that was already
// admitted once must not be dropped because limits shrank in between.
func (q *JobQueue[T]) Force(tenant string, v T) {
	q.force(tenant, v)
}

func (q *JobQueue[T]) force(tenant string, v T) {
	q.tenants[tenant] = append(q.tenants[tenant], v)
	q.total++
}

// Pop removes and returns the head of tenant's FIFO.
func (q *JobQueue[T]) Pop(tenant string) (T, bool) {
	fifo := q.tenants[tenant]
	if len(fifo) == 0 {
		var zero T
		return zero, false
	}
	v := fifo[0]
	q.tenants[tenant] = fifo[1:]
	if len(fifo) == 1 {
		delete(q.tenants, tenant)
	}
	q.total--
	return v, true
}

// Tenants returns the sorted names of tenants with jobs waiting.
func (q *JobQueue[T]) Tenants() []string {
	names := make([]string, 0, len(q.tenants))
	for name, fifo := range q.tenants {
		if len(fifo) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Len reports the total number of jobs waiting across all tenants.
func (q *JobQueue[T]) Len() int { return q.total }

// Cap reports the global capacity.
func (q *JobQueue[T]) Cap() int { return q.capacity }

// Quota reports the per-tenant quota; zero or negative means unlimited.
func (q *JobQueue[T]) Quota() int { return q.quota }

// Depth reports the number of jobs tenant has waiting.
func (q *JobQueue[T]) Depth(tenant string) int { return len(q.tenants[tenant]) }
