package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"dynaq/internal/fleet"
	"dynaq/internal/telemetry"
)

// testScenario is a deliberately tiny static run (50 simulated ms, 2 flows)
// so one cell completes in well under a second of wall time.
const testScenario = `{"kind":"static","scheme":"BestEffort","rate_gbps":1,"buffer_bytes":30000,"queues":2,"rtt_us":100,"duration_s":0.05,"sample_ms":10,"seed":1,"specs":[{"class":0,"flows":2}]}`

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		DataDir:     t.TempDir(),
		QueueDepth:  8,
		Concurrency: 1,
		Version:     "test-v1",
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (JobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decoding submit response: %v\n%s", err, data)
		}
	}
	return st, resp
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decoding status: %v\n%s", err, data)
		}
		if terminal(st.State) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// TestEndToEnd is the service acceptance path: submit → fresh run → artifact
// on disk; resubmit → cache hit, same artifact directory; and the cached
// artifact is byte-identical to a fresh sequential run of the same cell.
func TestEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.Start()
	defer s.Shutdown(shutdownCtx(t))

	st, resp := submit(t, ts, testScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Fatalf("Location = %q, want /v1/jobs/%s", loc, st.ID)
	}
	if len(st.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(st.Cells))
	}

	done := waitTerminal(t, ts, st.ID)
	if done.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", done.State, done.Error)
	}
	if done.CacheHit {
		t.Fatal("first run reported cache_hit")
	}
	cell := done.Cells[0]
	if cell.CacheHit || cell.State != StateDone {
		t.Fatalf("cell = %+v, want fresh done", cell)
	}
	for _, f := range []string{telemetry.ManifestFile, telemetry.EventsFile, telemetry.MetricsFile} {
		if _, err := os.Stat(filepath.Join(cell.ArtifactDir, f)); err != nil {
			t.Errorf("artifact %s: %v", f, err)
		}
	}

	// Resubmit: same job id, every cell served from cache, same artifact dir.
	st2, _ := submit(t, ts, testScenario)
	if st2.ID != st.ID {
		t.Fatalf("resubmit id = %s, want %s", st2.ID, st.ID)
	}
	done2 := waitTerminal(t, ts, st2.ID)
	if done2.State != StateDone || !done2.CacheHit {
		t.Fatalf("resubmit = %s cache_hit=%v, want done from cache", done2.State, done2.CacheHit)
	}
	if !done2.Cells[0].CacheHit || done2.Cells[0].ArtifactDir != cell.ArtifactDir {
		t.Fatalf("resubmit cell = %+v, want cache hit at %s", done2.Cells[0], cell.ArtifactDir)
	}

	// Byte-diff: a fresh sequential run of the same cell through the shared
	// execution path must produce exactly the cached bytes.
	fresh := filepath.Join(t.TempDir(), "fresh")
	man := fleet.CellManifest("test-v1", done.ScenarioHash, cell.Scheme, cell.Seed, cell.CacheKey)
	if _, err := fleet.RunCellTo(fresh, []byte(testScenario), cell.Scheme, cell.Seed, man, nil, nil); err != nil {
		t.Fatalf("fresh RunCellTo: %v", err)
	}
	diffDirs(t, cell.ArtifactDir, fresh)
}

// diffDirs asserts two artifact directories hold identical file sets with
// identical bytes.
func diffDirs(t *testing.T, a, b string) {
	t.Helper()
	names := func(dir string) []string {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("ReadDir %s: %v", dir, err)
		}
		var out []string
		for _, e := range entries {
			out = append(out, e.Name())
		}
		sort.Strings(out)
		return out
	}
	an, bn := names(a), names(b)
	if fmt.Sprint(an) != fmt.Sprint(bn) {
		t.Fatalf("file sets differ: %v vs %v", an, bn)
	}
	for _, name := range an {
		ab, err := os.ReadFile(filepath.Join(a, name))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(filepath.Join(b, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Errorf("%s differs between cached and fresh run (%d vs %d bytes)", name, len(ab), len(bb))
		}
	}
}

// shutdownCtx bounds a test Shutdown so a drain bug fails the test instead
// of hanging it.
func shutdownCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestSweepExpansion checks the wrapper form: schemes × seeds become
// deduplicated cells and the job id is a pure function of the expansion.
func TestSweepExpansion(t *testing.T) {
	body := `{"scenario":` + testScenario + `,"schemes":["BestEffort","DynaQ","BestEffort"],"seeds":[1,2]}`
	j, err := buildJob(parseRequest([]byte(body)), "v1")
	if err != nil {
		t.Fatal(err)
	}
	// BestEffort repeated: 2 schemes × 2 seeds = 4 unique cells.
	if len(j.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(j.Cells))
	}
	j2, err := buildJob(parseRequest([]byte(body)), "v1")
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != j2.ID {
		t.Fatalf("job id not stable: %s vs %s", j.ID, j2.ID)
	}
	// The id survives version changes (handles outlive upgrades)...
	j3, err := buildJob(parseRequest([]byte(body)), "v2")
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID != j.ID {
		t.Fatalf("job id changed with version: %s vs %s", j3.ID, j.ID)
	}
	// ...while the cells' cache keys do not (upgrades re-run).
	if j3.Cells[0].Key == j.Cells[0].Key {
		t.Fatal("cell cache key did not change with version")
	}
}

// TestCacheKeyVersioned pins the satellite requirement: the cache key moves
// with the build version and with every other identity input.
func TestCacheKeyVersioned(t *testing.T) {
	base := CacheKey("v1", "hash", "DynaQ", "packet", 1)
	for name, other := range map[string]string{
		"version": CacheKey("v2", "hash", "DynaQ", "packet", 1),
		"hash":    CacheKey("v1", "hash2", "DynaQ", "packet", 1),
		"scheme":  CacheKey("v1", "hash", "BestEffort", "packet", 1),
		"engine":  CacheKey("v1", "hash", "DynaQ", "flow", 1),
		"seed":    CacheKey("v1", "hash", "DynaQ", "packet", 2),
	} {
		if other == base {
			t.Errorf("cache key ignores %s", name)
		}
	}
	if again := CacheKey("v1", "hash", "DynaQ", "packet", 1); again != base {
		t.Error("cache key not deterministic")
	}
	if CacheKey("v1", "hash", "DynaQ", "", 1) != base {
		t.Error("empty engine must alias the packet default")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// Invalid scenario: typed field surfaces in the 400 body.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"static","scheme":"BestEffort","rate_gbps":-1}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400\n%s", resp.StatusCode, data)
	}
	var eb struct {
		Error string `json:"error"`
		Field string `json:"field"`
	}
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Field != "rate_gbps" {
		t.Fatalf("field = %q, want rate_gbps\n%s", eb.Field, data)
	}

	// Oversized body: 413 before any parsing.
	big := `{"pad":"` + strings.Repeat("x", maxBodyBytes) + `"}`
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized status = %d, want 413", resp.StatusCode)
	}

	// Unknown job: 404.
	resp, err = http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestQueueFull fills the bounded FIFO of a server whose drainer was never
// started and checks the overflow submission is rejected with 503.
func TestQueueFull(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.QueueDepth = 1 })

	first := strings.Replace(testScenario, `"seed":1`, `"seed":11`, 1)
	if _, resp := submit(t, ts, first); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp.StatusCode)
	}
	second := strings.Replace(testScenario, `"seed":1`, `"seed":12`, 1)
	_, resp := submit(t, ts, second)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit = %d, want 503", resp.StatusCode)
	}
}

// TestDedupeInFlight holds a job at its start hook and resubmits it: the
// duplicate must come back 202 with the same id without enqueuing new work.
func TestDedupeInFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	s, ts := newTestServer(t, nil)
	s.testJobStart = func(*Job) {
		close(started)
		<-release
	}
	s.Start()
	defer s.Shutdown(shutdownCtx(t))

	st, _ := submit(t, ts, testScenario)
	<-started
	dup, resp := submit(t, ts, testScenario)
	if resp.StatusCode != http.StatusAccepted || dup.ID != st.ID {
		t.Fatalf("duplicate = %d id %s, want 202 id %s", resp.StatusCode, dup.ID, st.ID)
	}
	if dup.State != StateRunning {
		t.Fatalf("duplicate state = %s, want running", dup.State)
	}
	close(release)
	waitTerminal(t, ts, st.ID)
}

// TestJobTimeout runs with a timeout that has already expired by the time
// the first cell would be claimed: the job must fail terminally.
func TestJobTimeout(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.JobTimeout = time.Nanosecond })
	s.Start()
	defer s.Shutdown(shutdownCtx(t))

	st, _ := submit(t, ts, testScenario)
	done := waitTerminal(t, ts, st.ID)
	if done.State != StateFailed {
		t.Fatalf("state = %s, want failed", done.State)
	}
	if !strings.Contains(done.Error, "cancelled") {
		t.Fatalf("error = %q, want a cancellation", done.Error)
	}
}

// TestDrainAndRecover is the graceful-shutdown contract: with job A held at
// its start hook (no cell dispatched yet) and job B queued, Shutdown requeues
// A — its marker and request stay on disk in original FIFO position — leaves
// B untouched, and a second daemon instance over the same data dir resumes
// both in order.
func TestDrainAndRecover(t *testing.T) {
	dataDir := t.TempDir()
	release := make(chan struct{})
	started := make(chan struct{})
	s, ts := newTestServer(t, func(c *Config) { c.DataDir = dataDir })
	s.testJobStart = func(*Job) {
		close(started)
		<-release
	}
	s.Start()

	stA, _ := submit(t, ts, testScenario)
	<-started
	scenB := strings.Replace(testScenario, `"seed":1`, `"seed":2`, 1)
	stB, _ := submit(t, ts, scenB)

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(shutdownCtx(t)) }()
	// Submissions during drain are refused.
	waitFor(t, func() bool {
		_, resp := submit(t, ts, strings.Replace(testScenario, `"seed":1`, `"seed":3`, 1))
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// A was interrupted before any cell dispatched, so the drain requeued
	// it; B never left the queue. Both persist on disk, A's marker first.
	a := getStatus(t, ts, stA.ID)
	if a.State != StateQueued {
		t.Fatalf("job A state = %s, want queued (requeued by drain)", a.State)
	}
	for _, id := range []string{stA.ID, stB.ID} {
		if _, err := os.Stat(filepath.Join(dataDir, "jobs", id, "request.json")); err != nil {
			t.Fatalf("job %s request not persisted: %v", id, err)
		}
	}
	markers, _ := os.ReadDir(filepath.Join(dataDir, "queue"))
	if len(markers) != 2 || !strings.HasSuffix(markers[0].Name(), "-"+stA.ID) ||
		!strings.HasSuffix(markers[1].Name(), "-"+stB.ID) {
		t.Fatalf("queue markers = %v, want job A then job B", markerNames(markers))
	}
	ts.Close()

	// A fresh instance over the same data dir recovers both in FIFO order
	// and runs them to completion.
	s2, err := New(Config{DataDir: dataDir, Concurrency: 1, Version: "test-v1"})
	if err != nil {
		t.Fatalf("New (recovery): %v", err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	if a2 := getStatus(t, ts2, stA.ID); a2.State != StateQueued {
		t.Fatalf("recovered job A state = %s, want queued", a2.State)
	}
	s2.Start()
	defer s2.Shutdown(shutdownCtx(t))
	for _, id := range []string{stA.ID, stB.ID} {
		if st := waitTerminal(t, ts2, id); st.State != StateDone {
			t.Fatalf("recovered job %s state = %s (err %q), want done", id, st.State, st.Error)
		}
	}
	if rest, _ := os.ReadDir(filepath.Join(dataDir, "queue")); len(rest) != 0 {
		t.Fatalf("queue markers left after recovery run: %v", rest)
	}
}

func markerNames(entries []os.DirEntry) []string {
	var out []string
	for _, e := range entries {
		out = append(out, e.Name())
	}
	return out
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding status: %v\n%s", err, data)
	}
	return st
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestMetricsEndpoint drives one fresh run and one cache hit, then checks
// /metrics speaks Prometheus text format and carries both the server
// counters and the absorbed simulation series.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.Start()
	defer s.Shutdown(shutdownCtx(t))

	st, _ := submit(t, ts, testScenario)
	waitTerminal(t, ts, st.ID)
	st2, _ := submit(t, ts, testScenario)
	waitTerminal(t, ts, st2.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE dynaqd_jobs_submitted_total counter",
		"dynaqd_jobs_submitted_total 2",
		"dynaqd_jobs_completed_total 2",
		"dynaqd_cache_hits_total 1",
		"dynaqd_cache_misses_total 1",
		`dynaqd_build_info{version="test-v1"} 1`,
		"dynaqd_queue_depth 0",
		"dynaqd_sim_",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Healthz carries the build version and serving state.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(hb), `"state": "serving"`) || !strings.Contains(string(hb), `"version": "test-v1"`) {
		t.Fatalf("healthz = %s", hb)
	}
}

// TestEventsStream covers both event paths: a live subscriber attached while
// the job is held running sees the full lifecycle, and a second request
// after completion replays the stored events with identical framing.
func TestEventsStream(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	s, ts := newTestServer(t, nil)
	s.testJobStart = func(*Job) {
		close(started)
		<-release
	}
	s.Start()
	defer s.Shutdown(shutdownCtx(t))

	st, _ := submit(t, ts, testScenario)
	<-started

	liveDone := make(chan []string, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
		if err != nil {
			liveDone <- nil
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		liveDone <- strings.Split(strings.TrimSpace(string(data)), "\n")
	}()
	// Give the live subscriber a moment to attach before releasing the job;
	// attach-after-finish would exercise the replay path instead.
	time.Sleep(50 * time.Millisecond)
	close(release)

	lines := <-liveDone
	if lines == nil {
		t.Fatal("live events request failed")
	}
	checkEventLines(t, lines)

	// Replay path: terminal job streams stored events plus the final line.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	replay := strings.Split(strings.TrimSpace(string(data)), "\n")
	checkEventLines(t, replay)
	if len(replay) < 3 {
		t.Fatalf("replay stream too short (%d lines): %v", len(replay), replay)
	}
}

// checkEventLines asserts NDJSON framing: every line is an object with a
// cell index, and the last line is the terminal job event.
func checkEventLines(t *testing.T, lines []string) {
	t.Helper()
	if len(lines) == 0 {
		t.Fatal("empty event stream")
	}
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if _, ok := obj["cell"]; !ok {
			t.Fatalf("event line missing cell index: %q", line)
		}
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"kind":"job"`) || !strings.Contains(last, `"state":"done"`) {
		t.Fatalf("last line is not the terminal job event: %q", last)
	}
}

// TestBroadcaster unit-tests the fan-out: framing, late subscription after
// close, and drop-don't-block on a full buffer.
func TestBroadcaster(t *testing.T) {
	b := newBroadcaster()
	ch := b.subscribe()
	b.publish(3, []byte(`{"kind":"x"}`+"\n"))
	got := string(<-ch)
	if got != `{"cell":3,"kind":"x"}`+"\n" {
		t.Fatalf("framed line = %q", got)
	}

	// Overflow: a slow subscriber drops lines instead of stalling publish.
	for i := 0; i < subBuffer+10; i++ {
		b.publish(0, []byte(`{"n":1}`+"\n"))
	}
	if n := len(ch); n != subBuffer {
		t.Fatalf("buffered = %d, want %d", n, subBuffer)
	}
	if d := b.dropped(); d != 10 {
		t.Fatalf("dropped = %d, want 10", d)
	}

	b.close()
	if _, open := <-b.subscribe(); open {
		t.Fatal("subscribe after close returned an open channel")
	}
	b.publish(0, []byte(`{"n":2}`+"\n")) // must not panic
}

// --- fleet / fault-tolerance coverage ------------------------------------

// healthzField reads one numeric field from /healthz.
func healthzField(t *testing.T, ts *httptest.Server, field string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("decoding healthz: %v\n%s", err, data)
	}
	v, ok := m[field].(float64)
	if !ok {
		t.Fatalf("healthz has no numeric %q: %s", field, data)
	}
	return v
}

// leaseAs is a hand-rolled fleet client for failure-injection tests: it
// requests one lease for the named worker and returns the grant (nil on 204).
func leaseAs(t *testing.T, ts *httptest.Server, worker string) *fleet.LeaseGrant {
	t.Helper()
	body, _ := json.Marshal(fleet.LeaseRequest{Worker: worker})
	resp, err := http.Post(ts.URL+"/v1/leases", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var g fleet.LeaseGrant
		if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
			t.Fatalf("decoding grant: %v", err)
		}
		return &g
	case http.StatusNoContent:
		io.Copy(io.Discard, resp.Body)
		return nil
	default:
		t.Fatalf("lease request status = %d", resp.StatusCode)
		return nil
	}
}

func completeLease(t *testing.T, ts *httptest.Server, leaseID string, req fleet.CompleteRequest) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/leases/"+leaseID+"/complete", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestTmpSweep is the torn-write regression: a crash mid-run or
// mid-promotion leaves partial directories under tmp/; a fresh daemon over
// the same data dir must sweep them at startup (they can never be valid
// artifacts — promotion is an atomic rename) and then operate normally.
func TestTmpSweep(t *testing.T) {
	dataDir := t.TempDir()
	torn := filepath.Join(dataDir, "tmp", "deadbeefcafe")
	if err := os.MkdirAll(torn, 0o755); err != nil {
		t.Fatal(err)
	}
	// A truncated events file: the classic torn write of a crash mid-run.
	if err := os.WriteFile(filepath.Join(torn, telemetry.EventsFile), []byte(`{"kind":"arr`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dataDir, "tmp", "upload-orphan42"), 0o755); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, func(c *Config) { c.DataDir = dataDir })
	entries, err := os.ReadDir(filepath.Join(dataDir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("tmp not swept at startup: %v", markerNames(entries))
	}

	// And the daemon is fully functional over the swept tree.
	s.Start()
	defer s.Shutdown(shutdownCtx(t))
	st, _ := submit(t, ts, testScenario)
	if done := waitTerminal(t, ts, st.ID); done.State != StateDone {
		t.Fatalf("job over swept data dir = %s (err %q), want done", done.State, done.Error)
	}
}

// TestQueueFullRetryAfter pins the backpressure contract: the 503 carries a
// Retry-After hint, and a client that honors it gets accepted once the
// drainer frees a slot.
func TestQueueFullRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.QueueDepth = 1 })

	first := strings.Replace(testScenario, `"seed":1`, `"seed":21`, 1)
	if _, resp := submit(t, ts, first); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp.StatusCode)
	}
	second := strings.Replace(testScenario, `"seed":1`, `"seed":22`, 1)
	_, resp := submit(t, ts, second)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit = %d, want 503", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want delta-seconds >= 1", resp.Header.Get("Retry-After"))
	}

	// Honor the hint: start the drainer, wait the advertised delay between
	// retries, and the submission must land.
	s.Start()
	defer s.Shutdown(shutdownCtx(t))
	deadline := time.Now().Add(30 * time.Second)
	for {
		time.Sleep(time.Duration(secs) * time.Second)
		_, resp = submit(t, ts, second)
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("retry status = %d", resp.StatusCode)
		}
		if secs, err = strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
			t.Fatalf("retry 503 lost its Retry-After header")
		}
		if time.Now().After(deadline) {
			t.Fatal("honoring client never got accepted")
		}
	}
}

// TestFleetWorkerLifecycle runs a real fleet.Worker against the coordinator:
// the worker registers, the local fallback stands down, the cell is leased,
// computed remotely, uploaded, and absorbed — and the absorbed artifact is
// byte-identical to a fresh local run of the same cell.
func TestFleetWorkerLifecycle(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.LeaseTTL = 500 * time.Millisecond })
	s.Start()
	defer s.Shutdown(shutdownCtx(t))

	w := fleet.NewWorker(fleet.WorkerConfig{
		Coordinator: ts.URL,
		ID:          "w-lifecycle",
		Version:     "test-v1",
		WorkDir:     t.TempDir(),
		Poll:        10 * time.Millisecond,
	})
	wctx, wcancel := context.WithCancel(context.Background())
	wdone := make(chan struct{})
	go func() { defer close(wdone); w.Run(wctx) }()
	defer func() { wcancel(); <-wdone }()

	// Only submit once the worker is registered, so the cell cannot be
	// grabbed by the local fallback in the gap.
	waitFor(t, func() bool { return healthzField(t, ts, "workers_active") >= 1 })
	st, _ := submit(t, ts, testScenario)
	done := waitTerminal(t, ts, st.ID)
	if done.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", done.State, done.Error)
	}
	cell := done.Cells[0]
	if cell.Worker != "w-lifecycle" || cell.CacheHit {
		t.Fatalf("cell = %+v, want fresh completion by w-lifecycle", cell)
	}

	// Cross-node byte identity: worker-computed, coordinator-absorbed bytes
	// equal a fresh local run through the shared execution path.
	fresh := filepath.Join(t.TempDir(), "fresh")
	man := fleet.CellManifest("test-v1", done.ScenarioHash, cell.Scheme, cell.Seed, cell.CacheKey)
	if _, err := fleet.RunCellTo(fresh, []byte(testScenario), cell.Scheme, cell.Seed, man, nil, nil); err != nil {
		t.Fatalf("fresh RunCellTo: %v", err)
	}
	diffDirs(t, cell.ArtifactDir, fresh)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "dynaqd_cells_remote_total 1") {
		t.Error("metrics do not count the remote completion")
	}
}

// TestDeadLetterQuarantineAndRequeue drives a cell to quarantine with a
// saboteur worker that fails every attempt, checks the dead-letter listing,
// then requeues it and watches the local pool (saboteur gone) finish the
// job clean with a reset attempt budget.
func TestDeadLetterQuarantineAndRequeue(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.LeaseTTL = 100 * time.Millisecond // saboteur fades fast once it stops polling
		c.MaxAttempts = 2
		c.RetryBase = time.Nanosecond // retries ready immediately
		c.RetryCap = time.Microsecond
	})
	s.Start()
	defer s.Shutdown(shutdownCtx(t))

	if g := leaseAs(t, ts, "saboteur"); g != nil { // registers the worker; no work yet
		t.Fatalf("unexpected grant before any submission: %+v", g)
	}
	st, _ := submit(t, ts, testScenario)

	for attempt := 1; attempt <= 2; attempt++ {
		var g *fleet.LeaseGrant
		waitFor(t, func() bool { g = leaseAs(t, ts, "saboteur"); return g != nil })
		if g.Attempt != attempt {
			t.Fatalf("grant attempt = %d, want %d", g.Attempt, attempt)
		}
		code := completeLease(t, ts, g.LeaseID, fleet.CompleteRequest{
			Worker: "saboteur", CacheKey: g.CacheKey, Error: "injected fault",
		})
		if code != http.StatusOK {
			t.Fatalf("failure completion status = %d", code)
		}
	}

	done := waitTerminal(t, ts, st.ID)
	if done.State != StateFailed || !strings.Contains(done.Error, "quarantined") {
		t.Fatalf("job = %s (err %q), want failed by quarantine", done.State, done.Error)
	}
	if c := done.Cells[0]; c.State != StateQuarantined || c.Attempts != 2 || c.Worker != "saboteur" {
		t.Fatalf("cell = %+v, want quarantined after 2 attempts by saboteur", c)
	}

	resp, err := http.Get(ts.URL + "/v1/deadletter")
	if err != nil {
		t.Fatal(err)
	}
	var list fleet.DeadLetterList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Cells) != 1 {
		t.Fatalf("deadletter = %+v, want 1 entry", list.Cells)
	}
	e := list.Cells[0]
	if e.JobID != st.ID || e.Attempts != 2 || e.LastError != "injected fault" || e.LastWorker != "saboteur" {
		t.Fatalf("deadletter entry = %+v", e)
	}
	if _, err := os.Stat(filepath.Join(s.cfg.DataDir, "deadletter.json")); err != nil {
		t.Fatalf("dead-letter list not persisted: %v", err)
	}

	// Requeue everything: the job re-enters as a resubmission; with the
	// saboteur no longer polling the local pool runs it successfully, and
	// the attempt budget starts fresh.
	resp, err = http.Post(ts.URL+"/v1/deadletter/requeue", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var rq fleet.RequeueResponse
	if err := json.NewDecoder(resp.Body).Decode(&rq); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rq.Requeued) != 1 || rq.Requeued[0] != st.ID || len(rq.Dropped) != 0 {
		t.Fatalf("requeue response = %+v", rq)
	}
	resp, err = http.Get(ts.URL + "/v1/deadletter")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Cells) != 0 {
		t.Fatalf("deadletter after requeue = %+v, want empty", list.Cells)
	}

	redone := waitTerminal(t, ts, st.ID)
	if redone.State != StateDone {
		t.Fatalf("requeued job = %s (err %q), want done", redone.State, redone.Error)
	}
	if c := redone.Cells[0]; c.Attempts != 0 || c.State != StateDone {
		t.Fatalf("requeued cell = %+v, want done with fresh budget", c)
	}
}

// TestRestartPreservesAttemptsAndFIFO is the restart persistence contract:
// a coordinator stopped with a leased-but-unfinished cell (one failed
// attempt already charged) comes back with the job queued, the attempt
// counter intact, and the FIFO order of the backlog preserved. Job A is
// submitted under a named tenant, so the test also pins the tenant-tagged
// marker format: A's marker carries the tenant name, B's (default) marker
// stays empty exactly as the pre-tenant daemon wrote it, and recovery
// restores both tenants.
func TestRestartPreservesAttemptsAndFIFO(t *testing.T) {
	dataDir := t.TempDir()
	s, ts := newTestServer(t, func(c *Config) {
		c.DataDir = dataDir
		c.LeaseTTL = time.Minute  // the flaky worker stays "active"; local pool stands down
		c.RetryBase = time.Minute // the requeued cell is not ready again before shutdown
		c.RetryCap = 2 * time.Minute
	})
	s.Start()

	if g := leaseAs(t, ts, "flaky"); g != nil {
		t.Fatalf("unexpected grant before any submission: %+v", g)
	}
	stA, _ := submitAs(t, ts, "acme", testScenario)
	var g *fleet.LeaseGrant
	waitFor(t, func() bool { g = leaseAs(t, ts, "flaky"); return g != nil })
	if code := completeLease(t, ts, g.LeaseID, fleet.CompleteRequest{
		Worker: "flaky", CacheKey: g.CacheKey, Error: "transient fault",
	}); code != http.StatusOK {
		t.Fatalf("failure completion status = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(dataDir, "jobs", stA.ID, "attempts.json"))
	if err != nil || !strings.Contains(string(data), ":1") {
		t.Fatalf("attempt counter not persisted after first failure: %v %s", err, data)
	}
	scenB := strings.Replace(testScenario, `"seed":1`, `"seed":2`, 1)
	stB, _ := submit(t, ts, scenB)

	if err := s.Shutdown(shutdownCtx(t)); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	markers, _ := os.ReadDir(filepath.Join(dataDir, "queue"))
	if len(markers) != 2 || !strings.HasSuffix(markers[0].Name(), "-"+stA.ID) ||
		!strings.HasSuffix(markers[1].Name(), "-"+stB.ID) {
		t.Fatalf("queue markers = %v, want job A then job B", markerNames(markers))
	}
	// The tenant rides in the marker content; the default tenant's marker
	// is empty — the exact bytes a pre-tenant daemon wrote.
	if data, err := os.ReadFile(filepath.Join(dataDir, "queue", markers[0].Name())); err != nil ||
		strings.TrimSpace(string(data)) != "acme" {
		t.Fatalf("job A marker content = %q (%v), want acme", data, err)
	}
	if data, err := os.ReadFile(filepath.Join(dataDir, "queue", markers[1].Name())); err != nil || len(data) != 0 {
		t.Fatalf("job B marker content = %q (%v), want empty", data, err)
	}
	ts.Close()

	// Second life: no workers this time, so the local pool runs everything.
	s2, err := New(Config{DataDir: dataDir, Concurrency: 1, Version: "test-v1"})
	if err != nil {
		t.Fatalf("New (recovery): %v", err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	a := getStatus(t, ts2, stA.ID)
	if a.State != StateQueued {
		t.Fatalf("recovered job A state = %s, want queued", a.State)
	}
	if a.Tenant != "acme" {
		t.Fatalf("recovered job A tenant = %q, want acme", a.Tenant)
	}
	if b := getStatus(t, ts2, stB.ID); b.Tenant != DefaultTenant {
		t.Fatalf("recovered job B tenant = %q, want %s", b.Tenant, DefaultTenant)
	}
	if a.Cells[0].Attempts != 1 {
		t.Fatalf("recovered attempt counter = %d, want 1", a.Cells[0].Attempts)
	}
	s2.Start()
	defer s2.Shutdown(shutdownCtx(t))
	for _, id := range []string{stA.ID, stB.ID} {
		if st := waitTerminal(t, ts2, id); st.State != StateDone {
			t.Fatalf("recovered job %s = %s (err %q), want done", id, st.State, st.Error)
		}
	}
	// The terminal status still records the pre-restart attempt: the retry
	// budget survived the restart rather than resetting.
	if got := getStatus(t, ts2, stA.ID).Cells[0].Attempts; got != 1 {
		t.Fatalf("terminal attempt counter = %d, want 1", got)
	}
}
