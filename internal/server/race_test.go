package server

import (
	"io"
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentScrapeDuringJobs is the -race regression for the lock-
// discipline fixes in this package: with executors mutating job/lease/ready
// state while scrapers hammer /metrics (whose gauges read guarded fields
// under s.mu) and /healthz, any locking regression on those paths trips the
// race detector. The localExecutor jobDone snapshot itself is ordering-
// protected today (dispatchCells wg.Waits its executors before the next
// job's swap), so -race cannot fire on it; the snapshot pins the executor to
// its own job's channel so that ordering assumption is no longer load-
// bearing.
func TestConcurrentScrapeDuringJobs(t *testing.T) {
	s, ts := newTestServer(t, func(cfg *Config) { cfg.Concurrency = 2 })
	s.Start()
	defer s.Shutdown(shutdownCtx(t))

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for _, path := range []string{"/metrics", "/healthz"} {
		scrapers.Add(1)
		go func(path string) {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					return // server shutting down
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}

	// Distinct seeds defeat the result cache so every job really executes
	// (cache hits would skip the localExecutor path under test).
	var ids []string
	for seed := 1; seed <= 4; seed++ {
		body := `{"kind":"static","scheme":"BestEffort","rate_gbps":1,"buffer_bytes":30000,"queues":2,"rtt_us":100,"duration_s":0.05,"sample_ms":10,"seed":` +
			string(rune('0'+seed)) + `,"specs":[{"class":0,"flows":2}]}`
		st, resp := submit(t, ts, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %d, want 202", resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if done := waitTerminal(t, ts, id); done.State != StateDone {
			t.Fatalf("job %s state = %s (err %q), want done", id, done.State, done.Error)
		}
	}
	close(stop)
	scrapers.Wait()
}
