package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"dynaq/internal/metrics"
	"dynaq/internal/scenario"
	"dynaq/internal/telemetry"
	"dynaq/internal/units"
)

// CacheKey returns the content address of one result cell. Every input that
// can change the artifact bytes is part of the key — the scenario document
// hash, the (scheme, seed) overrides applied on top of it, and the build
// version (two builds may legitimately disagree about a result, so an
// upgrade must never serve stale bytes). Nothing else goes in: in
// particular no wall-clock component, which is what makes a resubmission
// tomorrow hit today's cache.
func CacheKey(version, scenarioHash, scheme string, seed int64) string {
	canonical := "dynaqd-cell\nversion=" + version +
		"\nscenario=" + scenarioHash +
		"\nscheme=" + scheme +
		"\nseed=" + strconv.FormatInt(seed, 10) + "\n"
	return telemetry.Hash([]byte(canonical))
}

// cellDir is the cached artifact directory for a cache key, fanned out over
// a two-hex-digit prefix so one directory never accumulates every result.
func (s *Server) cellDir(key string) string {
	return filepath.Join(s.cfg.DataDir, "cache", key[:2], key)
}

// tmpDir is the in-progress artifact directory for a cell run; a completed
// run is promoted into cellDir with a rename, so a cache directory is
// always complete or absent, never half-written.
func (s *Server) tmpDir(key string) string {
	return filepath.Join(s.cfg.DataDir, "tmp", key)
}

// cellManifest builds the telemetry manifest for one cell. Every field is a
// pure function of the cell's identity, keeping cached and fresh artifact
// bytes comparable.
func cellManifest(version, scenarioHash, scheme string, seed int64, key string) telemetry.Manifest {
	return telemetry.Manifest{
		Tool:         "dynaqd",
		Version:      version,
		ScenarioHash: scenarioHash,
		Seed:         seed,
		Scheme:       scheme,
		Args:         []string{"scheme=" + scheme, "seed=" + strconv.FormatInt(seed, 10), "cache_key=" + key},
	}
}

// runCell executes one cell of a job (or serves it from cache). It is the
// trial function body of the job's RunTrialsCtx pool, so it may run
// concurrently with other cells of the same job; every piece of simulation
// state is built inside runCellTo, per cell.
func (s *Server) runCell(j *Job, c *Cell) error {
	final := s.cellDir(c.Key)
	if _, err := os.Stat(filepath.Join(final, telemetry.ManifestFile)); err == nil {
		s.mu.Lock()
		c.State = StateDone
		c.CacheHit = true
		c.Dir = final
		s.cacheHits.Inc()
		s.mu.Unlock()
		j.bc.publish(c.Index, []byte(`{"kind":"cell","state":"done","cache_hit":true}`+"\n"))
		return nil
	}

	s.mu.Lock()
	c.State = StateRunning
	s.cacheMisses.Inc()
	s.mu.Unlock()
	j.bc.publish(c.Index, []byte(`{"kind":"cell","state":"running","scheme":`+strconv.Quote(c.Scheme)+`,"seed":`+strconv.FormatInt(c.Seed, 10)+`}`+"\n"))

	tmp := s.tmpDir(c.Key)
	if err := os.RemoveAll(tmp); err != nil {
		return s.failCell(c, fmt.Errorf("clearing stale artifacts: %w", err))
	}
	man := cellManifest(s.cfg.Version, j.ScenarioHash, c.Scheme, c.Seed, c.Key)
	reg, err := runCellTo(tmp, j.Scenario, c.Scheme, c.Seed, man, func(line []byte) {
		j.bc.publish(c.Index, line)
	})
	if err != nil {
		os.RemoveAll(tmp)
		return s.failCell(c, err)
	}

	// Promote atomically. With the single job drainer and per-job cell
	// dedupe the destination cannot be mid-write by anyone else; if it
	// exists, a previous run completed it and our bytes are identical by
	// determinism, so keeping either copy is correct.
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		os.RemoveAll(tmp)
		return s.failCell(c, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		if _, statErr := os.Stat(filepath.Join(final, telemetry.ManifestFile)); statErr != nil {
			os.RemoveAll(tmp)
			return s.failCell(c, err)
		}
		os.RemoveAll(tmp)
	}

	s.mu.Lock()
	c.State = StateDone
	c.Dir = final
	s.cellsRun.Inc()
	s.absorbLocked(reg)
	s.mu.Unlock()
	j.bc.publish(c.Index, []byte(`{"kind":"cell","state":"done","cache_hit":false}`+"\n"))
	return nil
}

// failCell records a cell failure and returns the error for the trial pool.
func (s *Server) failCell(c *Cell, err error) error {
	s.mu.Lock()
	c.State = StateFailed
	c.Err = err.Error()
	s.mu.Unlock()
	return fmt.Errorf("cell %d (%s/seed %d): %w", c.Index, c.Scheme, c.Seed, err)
}

// runCellTo executes one (scenario, scheme, seed) cell into dir: a full
// telemetry Run (events.jsonl, metrics.jsonl, manifest.json) around a
// scenario execution. It is the common path for the daemon's cache misses
// and for the byte-diff tests that prove a cached artifact equals a fresh
// sequential run. The returned registry stays readable after the run for
// server-level aggregation.
func runCellTo(dir string, scenarioBytes []byte, scheme string, seed int64, man telemetry.Manifest, tee func(line []byte)) (*telemetry.Registry, error) {
	r, err := scenario.LoadWith(scenarioBytes, scenario.Overrides{Scheme: scheme, Seed: &seed})
	if err != nil {
		return nil, err
	}
	run, err := telemetry.NewRun(dir, man)
	if err != nil {
		return nil, err
	}
	if tee != nil {
		run.Tee(tee)
	}
	r.SetTelemetry(run)
	res, err := r.Run()
	if err != nil {
		run.Close()
		return nil, err
	}
	summarize(run, res)
	return run.Registry(), run.Close()
}

// summarize records the result headline into the manifest summary, the same
// fields dynaqsim -config emits so artifacts are comparable across tools.
func summarize(run *telemetry.Run, res *scenario.Result) {
	switch {
	case res.Static != nil:
		run.Summarize("drops", strconv.FormatInt(res.Static.Drops, 10))
		run.Summarize("samples", strconv.Itoa(len(res.Static.Samples)))
	case res.Dynamic != nil:
		run.Summarize("flows_generated", strconv.Itoa(res.Dynamic.Generated))
		run.Summarize("flows_completed", strconv.Itoa(res.Dynamic.Completed))
		run.Summarize("avg_fct_us_overall",
			strconv.FormatInt(int64(res.Dynamic.FCT.Avg(metrics.AllFlows)/units.Microsecond), 10))
	}
}

// absorbLocked folds a finished cell's counter series into the server's
// cumulative sim totals, exposed on /metrics as dynaqd_sim_<series>. Gauges
// are skipped — an instantaneous value of a finished simulation is not
// meaningful across runs. The caller holds s.mu.
func (s *Server) absorbLocked(reg *telemetry.Registry) {
	for _, sv := range reg.Snapshot() {
		if sv.Kind == "counter" {
			s.simTotals["dynaqd_sim_"+sv.ID] += sv.Value
		}
	}
}
