package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dynaq/internal/telemetry"
)

// CacheKey returns the content address of one result cell. Every input that
// can change the artifact bytes is part of the key — the scenario document
// hash, the (scheme, seed) overrides applied on top of it, the simulation
// engine fidelity (the same scenario at flow level is a different result
// than at packet level), and the build version (two builds may legitimately
// disagree about a result, so an upgrade must never serve stale bytes).
// Nothing else goes in: in particular no wall-clock component, which is what
// makes a resubmission tomorrow hit today's cache.
func CacheKey(version, scenarioHash, scheme, engine string, seed int64) string {
	if engine == "" {
		engine = "packet"
	}
	canonical := "dynaqd-cell\nversion=" + version +
		"\nscenario=" + scenarioHash +
		"\nscheme=" + scheme +
		"\nengine=" + engine +
		"\nseed=" + strconv.FormatInt(seed, 10) + "\n"
	return telemetry.Hash([]byte(canonical))
}

// cellDir is the cached artifact directory for a cache key, fanned out over
// a two-hex-digit prefix so one directory never accumulates every result.
func (s *Server) cellDir(key string) string {
	return filepath.Join(s.cfg.DataDir, "cache", key[:2], key)
}

// tmpDir is the in-progress artifact directory for a local cell run; a
// completed run is promoted into cellDir with a rename, so a cache
// directory is always complete or absent, never half-written.
func (s *Server) tmpDir(key string) string {
	return filepath.Join(s.cfg.DataDir, "tmp", key)
}

// artifactCached reports whether a complete artifact exists for the key.
// The manifest is written by telemetry.Run's Close, so its presence proves
// the whole directory landed (promotion is an atomic rename).
func (s *Server) artifactCached(key string) bool {
	_, err := os.Stat(filepath.Join(s.cellDir(key), telemetry.ManifestFile))
	return err == nil
}

// promote atomically moves a finished artifact directory into the cache.
// If the destination already exists, a previous run completed it and our
// bytes are identical by determinism, so keeping either copy is correct.
func (s *Server) promote(tmp, final string) error {
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		os.RemoveAll(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		if _, statErr := os.Stat(filepath.Join(final, telemetry.ManifestFile)); statErr != nil {
			os.RemoveAll(tmp)
			return err
		}
		os.RemoveAll(tmp)
	}
	return nil
}

// maxUploadBytes bounds a worker's completion upload. A cell artifact is a
// few JSONL files; anything past this is corrupt or hostile.
const maxUploadBytes = 8 << 20

// absorbUpload writes a worker-uploaded artifact into the content-addressed
// cache: stage the files in a fresh tmp directory, then promote with the
// same atomic rename as a local run. It validates names (flat directory,
// no separators) and requires the manifest, so a truncated upload can never
// masquerade as a complete artifact. Absorption is keyed purely by content
// address — it is correct even when the uploading worker's lease has
// already expired, which is how late uploads stay useful (the requeued
// attempt cache-hits these bytes).
func (s *Server) absorbUpload(key string, files map[string][]byte) error {
	if len(files) == 0 {
		return fmt.Errorf("empty artifact upload")
	}
	if _, ok := files[telemetry.ManifestFile]; !ok {
		return fmt.Errorf("artifact upload lacks %s", telemetry.ManifestFile)
	}
	total := 0
	for name, data := range files {
		if name == "" || name == "." || name == ".." ||
			strings.ContainsAny(name, "/\\") {
			return fmt.Errorf("invalid artifact file name %q", name)
		}
		total += len(data)
	}
	if total > maxUploadBytes {
		return fmt.Errorf("artifact upload of %d bytes exceeds the %d limit", total, maxUploadBytes)
	}
	if s.artifactCached(key) {
		return nil // deterministic duplicate; either copy is the right bytes
	}
	// Stage under tmp/ with a unique name so a concurrent local run of the
	// same key (using tmpDir) cannot collide; orphans are swept at startup.
	tmp, err := os.MkdirTemp(filepath.Join(s.cfg.DataDir, "tmp"), "upload-")
	if err != nil {
		return err
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(tmp, name), data, 0o644); err != nil {
			os.RemoveAll(tmp)
			return err
		}
	}
	return s.promote(tmp, s.cellDir(key))
}

// absorbLocked folds a finished cell's counter series into the server's
// cumulative sim totals, exposed on /metrics as dynaqd_sim_<series>. Gauges
// are skipped — an instantaneous value of a finished simulation is not
// meaningful across runs. The caller holds s.mu.
func (s *Server) absorbLocked(reg *telemetry.Registry) {
	for _, sv := range reg.Snapshot() {
		if sv.Kind == "counter" {
			s.simTotals["dynaqd_sim_"+sv.ID] += sv.Value
		}
	}
}
