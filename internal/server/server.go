package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dynaq/internal/fairq"
	"dynaq/internal/fleet"
	"dynaq/internal/telemetry"
	"dynaq/internal/telemetry/trace"
)

// Config parameterizes a daemon instance.
type Config struct {
	// DataDir roots all persistent state: jobs/ (requests, terminal
	// statuses, attempt counters), queue/ (pending markers, replayed FIFO
	// on restart), cache/ (content-addressed artifacts), tmp/ (in-progress
	// runs, swept at startup), deadletter.json (quarantined cells).
	DataDir string
	// QueueDepth bounds the job queue across all tenants; a submit beyond
	// it is rejected with 503 + Retry-After. 0 selects 64.
	QueueDepth int
	// TenantWeights maps tenant name to fair-queue round-robin burst size;
	// unlisted tenants weigh 1. nil gives every tenant weight 1.
	TenantWeights map[string]int
	// TenantQuota caps how many jobs one tenant may have queued at once; a
	// tenant at its quota gets its own 503 without consuming the shared
	// queue. 0 disables the per-tenant limit.
	TenantQuota int
	// TenantInflight caps how many of one tenant's cells may be dispatched
	// (leased to workers or claimed by the local pool) at once. 0 disables
	// the cap.
	TenantInflight int
	// Concurrency caps the local-fallback executor pool that runs a job's
	// cells when no fleet workers are registered. 0 selects GOMAXPROCS.
	Concurrency int
	// JobTimeout bounds one job's wall-clock execution; past it the job
	// fails terminally. Cells already in flight finish (a single-goroutine
	// simulation cannot be preempted), but no further cells start. 0
	// disables the timeout.
	JobTimeout time.Duration
	// LeaseTTL bounds how long a worker may hold a cell between
	// heartbeats; past it the cell is requeued for someone else. 0
	// selects 15s.
	LeaseTTL time.Duration
	// MaxAttempts caps how many times one cell may run (across workers
	// and local fallback) before it is quarantined to the dead-letter
	// list. 0 selects 3.
	MaxAttempts int
	// RetryBase and RetryCap shape the capped exponential backoff between
	// attempts of a failed cell. Zero values select 250ms and 10s.
	RetryBase time.Duration
	RetryCap  time.Duration
	// Clock is the injected time source for lease expiry, retry
	// readiness, and worker liveness. nil selects fleet.WallClock; the
	// chaos harness injects a fleet.ManualClock.
	Clock fleet.Clock
	// Version is the build stamp (dynaq.Version) folded into cache keys
	// and manifests.
	Version string
	// Log receives lifecycle lines; nil silences them.
	Log *log.Logger
}

// Server is the dynaqd coordinator: HTTP handler plus job queue, lease
// dispatcher, local-fallback executors, content-addressed cache, dead-letter
// list, and metric registry. Create with New, start the drainer and expiry
// scanner with Start, and stop with Shutdown.
type Server struct {
	cfg     Config
	clock   fleet.Clock
	backoff fleet.Backoff
	mux     *http.ServeMux

	mu        sync.Mutex
	jobs      map[string]*Job // guarded by mu
	seq       int             // guarded by mu
	accepting bool            // guarded by mu
	running   int64           // guarded by mu

	// Admission state: per-tenant job FIFOs behind quota/capacity, the
	// count of each tenant's jobs currently running (admission keeps it at
	// most 1 so per-tenant FIFO order is preserved), and the buffered-1
	// nudge that wakes the admission loop.
	jobq          *fairq.JobQueue[*Job] // guarded by mu
	tenantRunning map[string]int        // guarded by mu
	admit         chan struct{}

	// Fleet dispatch state: the jobs currently dispatching (by id), their
	// cells awaiting (re)lease in the fair tree, cache keys executing in
	// the local pool, live leases, recently-seen workers, and the
	// quarantine list.
	active       map[string]*Job       // guarded by mu
	tree         *fairq.Tree[runnable] // guarded by mu
	localKeys    map[string]bool       // guarded by mu
	leases       *fleet.Table          // guarded by mu
	workers      map[string]time.Time  // guarded by mu
	workerSeries map[string]bool       // guarded by mu; workers with a registered occupancy gauge
	tenantSeries map[string]bool       // guarded by mu; tenants with registered per-tenant metrics
	kick         chan struct{}
	dead         []fleet.DeadLetterEntry // guarded by mu

	reg         *telemetry.Registry
	simTotals   map[string]int64 // guarded by mu
	jobsSubbed  *telemetry.Counter
	jobsDeduped *telemetry.Counter
	jobsDone    *telemetry.Counter
	jobsFailed  *telemetry.Counter
	cellsRun    *telemetry.Counter
	cellsRemote *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	leaseGrants *telemetry.Counter
	leaseRenews *telemetry.Counter
	leaseExpiry *telemetry.Counter
	cellRetries *telemetry.Counter
	quarantined *telemetry.Counter
	rejected    map[string]*telemetry.Counter

	// Service latency histograms (milliseconds, shared fixed buckets). The
	// registry is not thread-safe; every Observe runs under s.mu, like the
	// counters above.
	hQueueWait     *telemetry.Histogram
	hLeaseDuration *telemetry.Histogram
	hCellExecution *telemetry.Histogram
	hJobE2E        *telemetry.Histogram

	stop    chan struct{}
	drained chan struct{}

	// testJobStart, when set (tests only), runs synchronously as a job
	// leaves the queue — the hook drain tests use to hold a job "running"
	// at a deterministic point.
	testJobStart func(*Job)
}

// New builds a server over DataDir, recovering persisted state: terminal
// jobs become queryable again, queued jobs re-enter the FIFO in their
// original order with attempt counters intact, the dead-letter list is
// reloaded, and orphaned tmp directories left by a crash mid-promotion are
// swept. The drainer is not started yet — call Start.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	for _, sub := range []string{"jobs", "queue", "cache", "tmp"} {
		if err := os.MkdirAll(filepath.Join(cfg.DataDir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	s := &Server{
		cfg:           cfg,
		clock:         cfg.Clock,
		backoff:       fleet.Backoff{Base: cfg.RetryBase, Cap: cfg.RetryCap},
		jobs:          make(map[string]*Job),
		accepting:     true,
		jobq:          fairq.NewJobQueue[*Job](cfg.QueueDepth, cfg.TenantQuota),
		tenantRunning: make(map[string]int),
		admit:         make(chan struct{}, 1),
		active:        make(map[string]*Job),
		tree:          fairq.New[runnable](cfg.TenantWeights, cfg.TenantInflight),
		localKeys:     make(map[string]bool),
		leases:        fleet.NewTable(),
		workers:       make(map[string]time.Time),
		workerSeries:  make(map[string]bool),
		tenantSeries:  make(map[string]bool),
		kick:          make(chan struct{}, 1),
		reg:           telemetry.NewRegistry(),
		simTotals:     make(map[string]int64),
		rejected:      make(map[string]*telemetry.Counter),
		stop:          make(chan struct{}),
		drained:       make(chan struct{}),
	}
	if s.clock == nil {
		s.clock = fleet.WallClock{}
	}
	s.jobsSubbed = s.reg.Counter("dynaqd_jobs_submitted_total")
	s.jobsDeduped = s.reg.Counter("dynaqd_jobs_deduped_total")
	s.jobsDone = s.reg.Counter("dynaqd_jobs_completed_total")
	s.jobsFailed = s.reg.Counter("dynaqd_jobs_failed_total")
	s.cellsRun = s.reg.Counter("dynaqd_cells_completed_total")
	s.cellsRemote = s.reg.Counter("dynaqd_cells_remote_total")
	s.cacheHits = s.reg.Counter("dynaqd_cache_hits_total")
	s.cacheMisses = s.reg.Counter("dynaqd_cache_misses_total")
	s.leaseGrants = s.reg.Counter("dynaqd_leases_granted_total")
	s.leaseRenews = s.reg.Counter("dynaqd_leases_renewed_total")
	s.leaseExpiry = s.reg.Counter("dynaqd_leases_expired_total")
	s.cellRetries = s.reg.Counter("dynaqd_cell_retries_total")
	s.quarantined = s.reg.Counter("dynaqd_deadletter_total")
	for _, reason := range []string{"draining", "invalid", "queue_full", "tenant_quota"} {
		s.rejected[reason] = s.reg.Counter("dynaqd_jobs_rejected_total", telemetry.L("reason", reason))
	}
	s.hQueueWait = s.reg.Histogram("dynaqd_job_queue_wait_ms", latencyBucketsMs)
	s.hLeaseDuration = s.reg.Histogram("dynaqd_lease_duration_ms", latencyBucketsMs)
	s.hCellExecution = s.reg.Histogram("dynaqd_cell_execution_ms", latencyBucketsMs)
	s.hJobE2E = s.reg.Histogram("dynaqd_job_e2e_ms", latencyBucketsMs)
	for name, help := range map[string]string{
		"dynaqd_jobs_submitted_total":  "Jobs accepted by POST /v1/jobs.",
		"dynaqd_jobs_deduped_total":    "Submissions coalesced onto an in-flight or finished job.",
		"dynaqd_jobs_completed_total":  "Jobs that reached the done state.",
		"dynaqd_jobs_failed_total":     "Jobs that reached the failed state.",
		"dynaqd_jobs_rejected_total":   "Submissions rejected, by reason.",
		"dynaqd_cells_completed_total": "Cells executed to completion (local or remote).",
		"dynaqd_cells_remote_total":    "Cells completed by fleet workers.",
		"dynaqd_cache_hits_total":      "Cells served from the content-addressed cache.",
		"dynaqd_cache_misses_total":    "Cells that required a fresh run.",
		"dynaqd_leases_granted_total":  "Cell leases granted to fleet workers.",
		"dynaqd_leases_renewed_total":  "Lease heartbeats accepted.",
		"dynaqd_leases_expired_total":  "Leases expired for missed heartbeats.",
		"dynaqd_cell_retries_total":    "Failed cell attempts requeued with backoff.",
		"dynaqd_deadletter_total":      "Cells quarantined after exhausting their attempt budget.",
		"dynaqd_events_dropped_total":  "Event-stream lines dropped on stalled subscribers.",
		"dynaqd_queue_depth":           "Jobs waiting in the FIFO queue.",
		"dynaqd_jobs_running":          "Jobs currently executing.",
		"dynaqd_workers_active":        "Fleet workers seen within the liveness window.",
		"dynaqd_leases_live":           "Leases currently held by workers.",
		"dynaqd_deadletter_size":       "Cells currently quarantined.",
		"dynaqd_job_queue_wait_ms":     "Wall time jobs spend queued before dispatch.",
		"dynaqd_lease_duration_ms":     "Wall time from lease grant/claim to settlement or expiry.",
		"dynaqd_cell_execution_ms":     "Wall time of successful cell executions.",
		"dynaqd_job_e2e_ms":            "Wall time from job accept to terminal state.",
		"dynaqd_tenant_queue_depth":    "Jobs waiting in one tenant's fair-queue leaf.",
		"dynaqd_tenant_cells_queued":   "Cells awaiting dispatch in one tenant's fair-queue leaf.",
		"dynaqd_tenant_inflight":       "One tenant's cells currently dispatched (leased or local).",
		"dynaqd_tenant_dispatch_total": "Cells dispatched (lease grants plus local claims), by tenant.",
		"dynaqd_tenant_queue_wait_ms":  "Wall time jobs spend queued before dispatch, by tenant.",
	} {
		s.reg.SetHelp(name, help)
	}
	s.reg.Gauge("dynaqd_build_info", telemetry.L("version", cfg.Version)).Set(1)
	//dynaqlint:allow lock-discipline gauge closures run inside handleMetrics' WritePrometheus, which already holds s.mu; locking here would self-deadlock
	s.reg.GaugeFunc("dynaqd_queue_depth", func() int64 { return int64(s.jobq.Len()) })
	//dynaqlint:allow lock-discipline gauge closures run inside handleMetrics' WritePrometheus, which already holds s.mu; locking here would self-deadlock
	s.reg.GaugeFunc("dynaqd_jobs_running", func() int64 { return s.running })
	s.reg.GaugeFunc("dynaqd_workers_active", func() int64 {
		return int64(s.activeWorkersLocked(s.clock.Now()))
	})
	//dynaqlint:allow lock-discipline gauge closures run inside handleMetrics' WritePrometheus, which already holds s.mu; locking here would self-deadlock
	s.reg.GaugeFunc("dynaqd_leases_live", func() int64 { return int64(s.leases.Len()) })
	//dynaqlint:allow lock-discipline gauge closures run inside handleMetrics' WritePrometheus, which already holds s.mu; locking here would self-deadlock
	s.reg.GaugeFunc("dynaqd_deadletter_size", func() int64 { return int64(len(s.dead)) })
	s.reg.CounterFunc("dynaqd_events_dropped_total", func() int64 {
		var n int64
		//dynaqlint:allow lock-discipline counter closures run inside handleMetrics' WritePrometheus, which already holds s.mu; locking here would self-deadlock
		for _, j := range s.jobs {
			n += j.bc.dropped()
		}
		return n
	})

	if n, err := s.sweepTmp(); err != nil {
		return nil, err
	} else if n > 0 {
		s.logf("swept %d orphaned tmp director(ies) left by a previous crash", n)
	}
	if err := s.loadDeadLetter(); err != nil {
		return nil, err
	}
	markers, err := s.loadQueueMarkers()
	if err != nil {
		return nil, err
	}
	if err := s.recoverTerminal(); err != nil {
		return nil, err
	}
	if err := s.recoverQueued(markers); err != nil {
		return nil, err
	}
	s.routes()
	return s, nil
}

// sweepTmp removes every entry under DataDir/tmp. Promotion into the cache
// is an atomic rename, so anything still in tmp when a daemon starts is the
// torn residue of a crash mid-run or mid-promotion — never a valid artifact.
func (s *Server) sweepTmp() (int, error) {
	dir := filepath.Join(s.cfg.DataDir, "tmp")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("server: sweeping tmp: %w", err)
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
			return 0, fmt.Errorf("server: sweeping tmp: %w", err)
		}
	}
	return len(entries), nil
}

// Start launches the admission loop (each tenant's head-of-line job is
// dispatched as soon as that tenant has nothing running), the shared
// local-fallback executor pool, and the lease-expiry scanner.
//
//dynaqlint:allow lock-discipline lifecycle is channel-based: Shutdown closes s.stop, which every loop selects on — a ctx here would duplicate it
func (s *Server) Start() {
	go s.drain()
	go s.expiryLoop()
	for i := 0; i < localWorkers(s.cfg.Concurrency); i++ {
		go s.localExecutor()
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains gracefully: new submissions are rejected, cells already
// executing locally finish (and land in the cache), leased and pending
// cells are requeued — the in-flight job reverts to queued with attempt
// counters persisted — and still-queued jobs stay on disk for the next
// daemon instance to resume. It returns once the drainer has exited or ctx
// expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosing := !s.accepting
	s.accepting = false
	s.mu.Unlock()
	if !alreadyClosing {
		close(s.stop)
	}
	select {
	case <-s.drained:
		s.mu.Lock()
		queued := 0
		for _, j := range s.jobs {
			if j.State == StateQueued {
				queued++
			}
		}
		s.mu.Unlock()
		s.logf("drained; %d job(s) left queued on disk", queued)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// drain is the admission loop: each pass admits the head-of-line job of
// every tenant that has nothing running, so tenants proceed independently
// while each tenant's own jobs stay strictly FIFO. Checking stop before
// scanning keeps the shutdown contract exact: once Shutdown begins, no
// further job leaves the queue even if a nudge is pending — and the loop
// waits for every admitted job to settle (finish or revert to queued)
// before reporting drained.
//
//dynaqlint:allow lock-discipline lifecycle is channel-based: Shutdown closes s.stop, which this loop and every runJob select on — a ctx here would duplicate it
func (s *Server) drain() {
	defer close(s.drained)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		s.mu.Lock()
		var admitted []*Job
		for _, tenant := range s.jobq.Tenants() {
			if s.tenantRunning[tenant] > 0 {
				continue
			}
			if j, ok := s.jobq.Pop(tenant); ok {
				s.tenantRunning[tenant]++
				admitted = append(admitted, j)
			}
		}
		s.mu.Unlock()
		for _, j := range admitted {
			wg.Add(1)
			go func(j *Job) {
				defer wg.Done()
				s.runJob(j)
			}(j)
		}
		if len(admitted) > 0 {
			continue
		}
		select {
		case <-s.stop:
			return
		case <-s.admit:
		}
	}
}

// admitLocked nudges the admission loop; the buffered-1 channel coalesces
// bursts. The caller holds s.mu.
func (s *Server) admitLocked() {
	select {
	case s.admit <- struct{}{}:
	default:
	}
}

// runJob dispatches one job's cells (to fleet workers, or the local
// executor pool when none are registered) and settles its terminal state —
// unless a shutdown interrupted it, in which case the job reverts to
// queued, its marker stays on disk, and the next daemon instance resumes
// it with attempt counters intact.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	j.State = StateRunning
	s.running++
	s.traceJobRunningLocked(j)
	s.mu.Unlock()
	s.logf("job %s: running %d cell(s)", j.ID, len(j.Cells))
	j.bc.publish(-1, []byte(`{"kind":"job","state":"running"}`+"\n"))
	if s.testJobStart != nil {
		s.testJobStart(j)
	}

	ctx := context.Background()
	cancel := func() {}
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
	}
	err, interrupted := s.dispatchCells(ctx, j)
	cancel()

	if interrupted {
		s.mu.Lock()
		j.State = StateQueued
		s.running--
		s.tenantSettledLocked(j)
		s.persistAttemptsLocked(j)
		j.rootSpan.Event("job-requeued", trace.A("reason", "daemon draining"))
		s.mu.Unlock()
		j.bc.publish(-1, []byte(`{"kind":"job","state":"queued","reason":"daemon draining"}`+"\n"))
		s.logf("job %s: requeued for the next daemon instance (drain)", j.ID)
		return
	}

	s.mu.Lock()
	s.running--
	s.tenantSettledLocked(j)
	if err != nil {
		j.State = StateFailed
		j.Err = err.Error()
		s.jobsFailed.Inc()
	} else {
		j.State = StateDone
		j.CacheHit = allCached(j.Cells)
		s.jobsDone.Inc()
	}
	s.traceJobTerminalLocked(j)
	st := s.statusLocked(j)
	s.mu.Unlock()

	if perr := s.persistStatus(st); perr != nil {
		s.logf("job %s: persisting status: %v", j.ID, perr)
	}
	if j.tr != nil {
		if terr := s.writeJobTrace(j); terr != nil {
			s.logf("job %s: persisting trace: %v", j.ID, terr)
		}
	}
	s.removeQueueMarker(j.ID)
	j.bc.publish(-1, finalStatusLine(st))
	j.bc.close()
	close(j.done)
	s.logf("job %s: %s", j.ID, st.State)
}

// tenantSettledLocked releases j's tenant admission slot and wakes the
// admission loop so the tenant's next queued job can start. The caller
// holds s.mu.
func (s *Server) tenantSettledLocked(j *Job) {
	if s.tenantRunning[j.Tenant]--; s.tenantRunning[j.Tenant] <= 0 {
		delete(s.tenantRunning, j.Tenant)
	}
	s.admitLocked()
}

// allCached reports whether every cell was served from cache.
func allCached(cells []*Cell) bool {
	for _, c := range cells {
		if !c.CacheHit {
			return false
		}
	}
	return len(cells) > 0
}

// finalStatusLine renders the terminal job event appended to every event
// stream.
func finalStatusLine(st JobStatus) []byte {
	b := []byte(`{"kind":"job","state":`)
	b = strconv.AppendQuote(b, st.State)
	b = append(b, `,"cache_hit":`...)
	b = strconv.AppendBool(b, st.CacheHit)
	if st.Error != "" {
		b = append(b, `,"error":`...)
		b = strconv.AppendQuote(b, st.Error)
	}
	b = append(b, '}', '\n')
	return b
}

// --- persistence ---------------------------------------------------------

func (s *Server) jobDir(id string) string { return filepath.Join(s.cfg.DataDir, "jobs", id) }

// persistRequest records a submission before it is enqueued, so a queued
// job survives a daemon restart: request.json holds the raw body and a
// queue marker holds the FIFO position. A non-default tenant is written as
// the marker's content, so recovery lands the job back in the right
// fair-queue leaf; default-tenant markers stay empty, byte-identical to
// markers written before tenancy existed. Any stale attempt counters from
// an earlier life of the same job id are cleared — a (re)submission starts
// with a fresh retry budget.
func (s *Server) persistRequestLocked(j *Job, body []byte) error {
	dir := s.jobDir(j.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "request.json"), body, 0o644); err != nil {
		return err
	}
	os.Remove(filepath.Join(dir, "attempts.json"))
	s.seq++
	marker := filepath.Join(s.cfg.DataDir, "queue", fmt.Sprintf("%08d-%s", s.seq, j.ID))
	var content []byte
	if j.Tenant != DefaultTenant {
		content = []byte(j.Tenant + "\n")
	}
	return os.WriteFile(marker, content, 0o644)
}

func (s *Server) persistStatus(st JobStatus) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	dir := s.jobDir(st.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "status.json"), append(data, '\n'), 0o644)
}

// persistAttemptsLocked records every cell's attempt counter so a daemon
// restart (graceful or not) resumes the retry budget instead of resetting
// it. Keys are version-independent ("scheme/seed") because cells are
// re-expanded under the current build on recovery. The caller holds s.mu.
func (s *Server) persistAttemptsLocked(j *Job) {
	counts := make(map[string]int)
	for _, c := range j.Cells {
		if c.Attempts > 0 {
			counts[attemptKey(c)] = c.Attempts
		}
	}
	path := filepath.Join(s.jobDir(j.ID), "attempts.json")
	if len(counts) == 0 {
		os.Remove(path)
		return
	}
	data, err := json.Marshal(counts)
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		s.logf("job %s: persisting attempts: %v", j.ID, err)
	}
}

// attemptKey identifies a cell across daemon restarts and version bumps.
func attemptKey(c *Cell) string { return c.Scheme + "/" + strconv.FormatInt(c.Seed, 10) }

// loadAttempts restores persisted attempt counters onto a recovered job.
func (s *Server) loadAttempts(j *Job) {
	data, err := os.ReadFile(filepath.Join(s.jobDir(j.ID), "attempts.json"))
	if err != nil {
		return
	}
	var counts map[string]int
	if err := json.Unmarshal(data, &counts); err != nil {
		s.logf("job %s: unreadable attempts.json: %v", j.ID, err)
		return
	}
	for _, c := range j.Cells {
		if n, ok := counts[attemptKey(c)]; ok {
			c.Attempts = n
		}
	}
}

// removeQueueMarker deletes a job's pending marker (any sequence prefix).
func (s *Server) removeQueueMarker(id string) {
	entries, err := os.ReadDir(filepath.Join(s.cfg.DataDir, "queue"))
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), "-"+id) {
			os.Remove(filepath.Join(s.cfg.DataDir, "queue", e.Name()))
		}
	}
}

// loadQueueMarkers returns pending markers sorted by sequence (FIFO order)
// and advances the sequence counter past them.
func (s *Server) loadQueueMarkers() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.cfg.DataDir, "queue"))
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	s.mu.Lock()
	for _, name := range names {
		if seq, _, ok := strings.Cut(name, "-"); ok {
			if n, err := strconv.Atoi(seq); err == nil && n > s.seq {
				s.seq = n
			}
		}
	}
	s.mu.Unlock()
	return names, nil
}

// recoverTerminal loads every persisted terminal job so GET /v1/jobs/{id}
// and cache-hit resubmission work across restarts.
func (s *Server) recoverTerminal() error {
	entries, err := os.ReadDir(filepath.Join(s.cfg.DataDir, "jobs"))
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(s.jobDir(e.Name()), "status.json"))
		if err != nil {
			continue // queued job (no terminal status yet) or foreign file
		}
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil || !terminal(st.State) {
			continue
		}
		s.jobs[st.ID] = jobFromStatus(st)
	}
	return nil
}

// recoverQueued re-enqueues persisted pending jobs in marker order —
// including jobs that were mid-dispatch when the previous daemon stopped,
// whose leased-but-unfinished cells come back as queued with their attempt
// counters intact. Global marker order plus per-tenant FIFOs reproduce
// each tenant's original submission order exactly; the tenant comes from
// the marker's content (authoritative, covers header-tagged submissions)
// with the request body's tenant field as fallback. Recovery enqueues with
// Force: already-admitted work must not be dropped because quotas shrank
// between daemon lives. Cells are re-expanded under the current build
// version, so work queued before an upgrade re-runs instead of hitting a
// stale cache.
//
//dynaqlint:allow lock-discipline startup recovery runs under New before the drainer starts; there is no request context to thread yet
func (s *Server) recoverQueued(markers []string) error {
	for _, name := range markers {
		_, id, ok := strings.Cut(name, "-")
		if !ok {
			continue
		}
		marker := filepath.Join(s.cfg.DataDir, "queue", name)
		body, err := os.ReadFile(filepath.Join(s.jobDir(id), "request.json"))
		if err != nil {
			s.logf("job %s: dropping unreadable queued request: %v", id, err)
			os.Remove(marker)
			continue
		}
		req := parseRequest(body)
		if data, err := os.ReadFile(marker); err == nil {
			if tenant := strings.TrimSpace(string(data)); tenant != "" {
				req.Tenant = tenant
			}
		}
		j, err := buildJob(req, s.cfg.Version)
		if err != nil {
			s.logf("job %s: queued request no longer validates: %v", id, err)
			os.Remove(marker)
			continue
		}
		j.ID = id // keep the persisted handle even if expansion rules evolve
		s.loadAttempts(j)
		s.mu.Lock()
		s.jobs[id] = j
		s.ensureTenantMetricsLocked(j.Tenant)
		s.startTraceLocked(j, "")
		j.rootSpan.Event("recovered")
		s.jobq.Force(j.Tenant, j)
		s.mu.Unlock()
	}
	return nil
}
