package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dynaq/internal/experiment"
	"dynaq/internal/telemetry"
)

// Config parameterizes a daemon instance.
type Config struct {
	// DataDir roots all persistent state: jobs/ (requests and terminal
	// statuses), queue/ (pending markers, replayed FIFO on restart),
	// cache/ (content-addressed artifacts), tmp/ (in-progress runs).
	DataDir string
	// QueueDepth bounds the FIFO job queue; a submit beyond it is
	// rejected with 503. 0 selects 64.
	QueueDepth int
	// Concurrency caps the worker pool that runs one job's cells
	// (experiment.RunTrialsCtx workers). 0 selects GOMAXPROCS.
	Concurrency int
	// JobTimeout bounds one job's wall-clock execution; past it the job
	// fails terminally. Cells already in flight finish (a single-goroutine
	// simulation cannot be preempted), but no further cells start. 0
	// disables the timeout.
	JobTimeout time.Duration
	// Version is the build stamp (dynaq.Version) folded into cache keys
	// and manifests.
	Version string
	// Log receives lifecycle lines; nil silences them.
	Log *log.Logger
}

// Server is the dynaqd HTTP handler plus its queue, drainer, cache, and
// metric registry. Create with New, start the drainer with Start, and stop
// with Shutdown.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu        sync.Mutex
	jobs      map[string]*Job
	queue     chan *Job
	seq       int
	accepting bool
	running   int64

	reg         *telemetry.Registry
	simTotals   map[string]int64
	jobsSubbed  *telemetry.Counter
	jobsDeduped *telemetry.Counter
	jobsDone    *telemetry.Counter
	jobsFailed  *telemetry.Counter
	cellsRun    *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	rejected    map[string]*telemetry.Counter

	stop    chan struct{}
	drained chan struct{}

	// testJobStart, when set (tests only), runs synchronously as a job
	// leaves the queue — the hook drain tests use to hold a job "running"
	// at a deterministic point.
	testJobStart func(*Job)
}

// New builds a server over DataDir, recovering persisted state: terminal
// jobs become queryable again and queued jobs re-enter the FIFO in their
// original order. The drainer is not started yet — call Start.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	for _, sub := range []string{"jobs", "queue", "cache", "tmp"} {
		if err := os.MkdirAll(filepath.Join(cfg.DataDir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	s := &Server{
		cfg:       cfg,
		jobs:      make(map[string]*Job),
		accepting: true,
		reg:       telemetry.NewRegistry(),
		simTotals: make(map[string]int64),
		rejected:  make(map[string]*telemetry.Counter),
		stop:      make(chan struct{}),
		drained:   make(chan struct{}),
	}
	s.jobsSubbed = s.reg.Counter("dynaqd_jobs_submitted_total")
	s.jobsDeduped = s.reg.Counter("dynaqd_jobs_deduped_total")
	s.jobsDone = s.reg.Counter("dynaqd_jobs_completed_total")
	s.jobsFailed = s.reg.Counter("dynaqd_jobs_failed_total")
	s.cellsRun = s.reg.Counter("dynaqd_cells_completed_total")
	s.cacheHits = s.reg.Counter("dynaqd_cache_hits_total")
	s.cacheMisses = s.reg.Counter("dynaqd_cache_misses_total")
	for _, reason := range []string{"draining", "invalid", "queue_full"} {
		s.rejected[reason] = s.reg.Counter("dynaqd_jobs_rejected_total", telemetry.L("reason", reason))
	}
	s.reg.Gauge("dynaqd_build_info", telemetry.L("version", cfg.Version)).Set(1)
	s.reg.GaugeFunc("dynaqd_queue_depth", func() int64 { return int64(len(s.queue)) })
	s.reg.GaugeFunc("dynaqd_jobs_running", func() int64 { return s.running })

	markers, err := s.loadQueueMarkers()
	if err != nil {
		return nil, err
	}
	// Size the channel to hold the whole recovered backlog plus the
	// configured headroom, so recovery never blocks or drops.
	s.queue = make(chan *Job, cfg.QueueDepth+len(markers))
	if err := s.recoverTerminal(); err != nil {
		return nil, err
	}
	if err := s.recoverQueued(markers); err != nil {
		return nil, err
	}
	s.routes()
	return s, nil
}

// Start launches the drain loop: jobs leave the FIFO one at a time, each
// fanning its cells onto a RunTrialsCtx worker pool capped at
// cfg.Concurrency. Total simulation parallelism is therefore bounded by the
// cap regardless of queue length.
func (s *Server) Start() { go s.drain() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains gracefully: new submissions are rejected, the job in
// flight finishes, and still-queued jobs stay persisted on disk for the
// next daemon instance to resume. It returns once the drainer has exited or
// ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosing := !s.accepting
	s.accepting = false
	s.mu.Unlock()
	if !alreadyClosing {
		close(s.stop)
	}
	select {
	case <-s.drained:
		s.logf("drained; %d job(s) left queued on disk", len(s.queue))
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// drain is the queue consumer. Checking stop before selecting keeps the
// contract exact: once Shutdown begins, no further job leaves the queue
// even if both channels are ready.
func (s *Server) drain() {
	defer close(s.drained)
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job's cells on a trial pool and settles its terminal
// state.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	j.State = StateRunning
	s.running++
	s.mu.Unlock()
	s.logf("job %s: running %d cell(s)", j.ID, len(j.Cells))
	j.bc.publish(-1, []byte(`{"kind":"job","state":"running"}`+"\n"))
	if s.testJobStart != nil {
		s.testJobStart(j)
	}

	ctx := context.Background()
	cancel := func() {}
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
	}
	_, err := experiment.RunTrialsCtx(ctx, len(j.Cells), s.cfg.Concurrency, func(i int) (struct{}, error) {
		return struct{}{}, s.runCell(j, j.Cells[i])
	})
	cancel()

	s.mu.Lock()
	s.running--
	if err != nil {
		j.State = StateFailed
		j.Err = err.Error()
		s.jobsFailed.Inc()
	} else {
		j.State = StateDone
		j.CacheHit = allCached(j.Cells)
		s.jobsDone.Inc()
	}
	st := s.statusLocked(j)
	s.mu.Unlock()

	if perr := s.persistStatus(st); perr != nil {
		s.logf("job %s: persisting status: %v", j.ID, perr)
	}
	s.removeQueueMarker(j.ID)
	j.bc.publish(-1, finalStatusLine(st))
	j.bc.close()
	close(j.done)
	s.logf("job %s: %s", j.ID, st.State)
}

// allCached reports whether every cell was served from cache.
func allCached(cells []*Cell) bool {
	for _, c := range cells {
		if !c.CacheHit {
			return false
		}
	}
	return len(cells) > 0
}

// finalStatusLine renders the terminal job event appended to every event
// stream.
func finalStatusLine(st JobStatus) []byte {
	b := []byte(`{"kind":"job","state":`)
	b = strconv.AppendQuote(b, st.State)
	b = append(b, `,"cache_hit":`...)
	b = strconv.AppendBool(b, st.CacheHit)
	if st.Error != "" {
		b = append(b, `,"error":`...)
		b = strconv.AppendQuote(b, st.Error)
	}
	b = append(b, '}', '\n')
	return b
}

// --- persistence ---------------------------------------------------------

func (s *Server) jobDir(id string) string { return filepath.Join(s.cfg.DataDir, "jobs", id) }

// persistRequest records a submission before it is enqueued, so a queued
// job survives a daemon restart: request.json holds the raw body and a
// queue marker holds the FIFO position.
func (s *Server) persistRequest(j *Job, body []byte) error {
	dir := s.jobDir(j.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "request.json"), body, 0o644); err != nil {
		return err
	}
	s.seq++
	marker := filepath.Join(s.cfg.DataDir, "queue", fmt.Sprintf("%08d-%s", s.seq, j.ID))
	return os.WriteFile(marker, nil, 0o644)
}

func (s *Server) persistStatus(st JobStatus) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	dir := s.jobDir(st.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "status.json"), append(data, '\n'), 0o644)
}

// removeQueueMarker deletes a job's pending marker (any sequence prefix).
func (s *Server) removeQueueMarker(id string) {
	entries, err := os.ReadDir(filepath.Join(s.cfg.DataDir, "queue"))
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), "-"+id) {
			os.Remove(filepath.Join(s.cfg.DataDir, "queue", e.Name()))
		}
	}
}

// loadQueueMarkers returns pending markers sorted by sequence (FIFO order)
// and advances the sequence counter past them.
func (s *Server) loadQueueMarkers() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.cfg.DataDir, "queue"))
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		if seq, _, ok := strings.Cut(name, "-"); ok {
			if n, err := strconv.Atoi(seq); err == nil && n > s.seq {
				s.seq = n
			}
		}
	}
	return names, nil
}

// recoverTerminal loads every persisted terminal job so GET /v1/jobs/{id}
// and cache-hit resubmission work across restarts.
func (s *Server) recoverTerminal() error {
	entries, err := os.ReadDir(filepath.Join(s.cfg.DataDir, "jobs"))
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(s.jobDir(e.Name()), "status.json"))
		if err != nil {
			continue // queued job (no terminal status yet) or foreign file
		}
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil || !terminal(st.State) {
			continue
		}
		s.jobs[st.ID] = jobFromStatus(st)
	}
	return nil
}

// recoverQueued re-enqueues persisted pending jobs in marker order. Cells
// are re-expanded under the current build version, so work queued before an
// upgrade re-runs instead of hitting a stale cache.
func (s *Server) recoverQueued(markers []string) error {
	for _, name := range markers {
		_, id, ok := strings.Cut(name, "-")
		if !ok {
			continue
		}
		marker := filepath.Join(s.cfg.DataDir, "queue", name)
		body, err := os.ReadFile(filepath.Join(s.jobDir(id), "request.json"))
		if err != nil {
			s.logf("job %s: dropping unreadable queued request: %v", id, err)
			os.Remove(marker)
			continue
		}
		j, err := buildJob(parseRequest(body), s.cfg.Version)
		if err != nil {
			s.logf("job %s: queued request no longer validates: %v", id, err)
			os.Remove(marker)
			continue
		}
		j.ID = id // keep the persisted handle even if expansion rules evolve
		s.jobs[id] = j
		s.queue <- j
	}
	return nil
}
