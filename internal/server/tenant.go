package server

import (
	"strconv"

	"dynaq/internal/telemetry"
)

// Per-tenant observability. Tenants appear dynamically (first submission,
// restart recovery, dead-letter requeue), so their metric series are
// registered lazily on first sight and live for the daemon's lifetime —
// matching how per-worker occupancy gauges work.

// ensureTenantMetricsLocked registers tenant's gauge series on first sight.
// The caller holds s.mu.
func (s *Server) ensureTenantMetricsLocked(tenant string) {
	if s.tenantSeries[tenant] {
		return
	}
	s.tenantSeries[tenant] = true
	t := tenant
	s.reg.GaugeFunc("dynaqd_tenant_queue_depth", func() int64 {
		//dynaqlint:allow lock-discipline gauge closures run inside handleMetrics' WritePrometheus, which already holds s.mu; locking here would self-deadlock
		return int64(s.jobq.Depth(t))
	}, telemetry.L("tenant", t))
	s.reg.GaugeFunc("dynaqd_tenant_cells_queued", func() int64 {
		//dynaqlint:allow lock-discipline gauge closures run inside handleMetrics' WritePrometheus, which already holds s.mu; locking here would self-deadlock
		return int64(s.tree.Depth(t))
	}, telemetry.L("tenant", t))
	s.reg.GaugeFunc("dynaqd_tenant_inflight", func() int64 {
		//dynaqlint:allow lock-discipline gauge closures run inside handleMetrics' WritePrometheus, which already holds s.mu; locking here would self-deadlock
		return int64(s.tree.Inflight(t))
	}, telemetry.L("tenant", t))
	// Touch the counter and histogram so the tenant's full set of series
	// renders from first sight rather than first event.
	s.reg.Counter("dynaqd_tenant_dispatch_total", telemetry.L("tenant", t))
	s.reg.Histogram("dynaqd_tenant_queue_wait_ms", latencyBucketsMs, telemetry.L("tenant", t))
}

// tenantDispatchedLocked charges one dispatch (lease grant or local claim)
// to tenant. The caller holds s.mu.
func (s *Server) tenantDispatchedLocked(tenant string) {
	s.reg.Counter("dynaqd_tenant_dispatch_total", telemetry.L("tenant", tenant)).Inc()
}

// tenantQueueWaitLocked records one job's queue wait for tenant. The caller
// holds s.mu.
func (s *Server) tenantQueueWaitLocked(tenant string, ms int64) {
	s.reg.Histogram("dynaqd_tenant_queue_wait_ms", latencyBucketsMs, telemetry.L("tenant", tenant)).Observe(ms)
}

// retryAfterForDepth derives a Retry-After hint from how much of a backlog
// stands between the caller and free capacity: one second for a shallow
// queue, growing with depth, clamped to 30s so clients keep probing.
func retryAfterForDepth(depth int) string {
	secs := 1 + depth/8
	if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(secs)
}
