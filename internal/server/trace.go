package server

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"dynaq/internal/telemetry/trace"
)

// This file is the coordinator side of distributed cell tracing: every job
// carries a trace whose spans follow the cell lifecycle (accepted → queued →
// leased → executed → uploaded → promoted → terminal), with worker-side
// spans absorbed from completion uploads and engine sim-time spans emitted
// by the experiment layer. The trace is persisted as trace.jsonl in the
// job's directory — deliberately OUTSIDE the content-addressed cache, whose
// artifacts must stay byte-identical whether or not tracing ran.

// traceFileName is the per-job trace artifact under jobs/<id>/.
const traceFileName = "trace.jsonl"

// latencyBucketsMs is the shared fixed-bucket shape of the service latency
// histograms (milliseconds).
var latencyBucketsMs = []int64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}

// sanitizeTraceID accepts a caller-proposed trace id (X-Dynaq-Trace): short
// and shell/log-safe, or rejected to "".
func sanitizeTraceID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// startTraceLocked attaches a tracer to a job at accept time and opens the
// root job span plus the queue-wait child. requested is the caller's
// X-Dynaq-Trace proposal (may be empty). The caller holds s.mu; s.seq makes
// the default id unique per submission of the same job id.
func (s *Server) startTraceLocked(j *Job, requested string) {
	traceID := sanitizeTraceID(requested)
	if traceID == "" {
		traceID = fmt.Sprintf("%s-%d", j.ID, s.seq)
	}
	j.tr = trace.New(traceID, "coordinator", s.clock)
	j.queuedAt = s.clock.Now()
	j.rootSpan = j.tr.Start("job",
		"",
		trace.A("job", j.ID),
		trace.A("tenant", j.Tenant),
		trace.AInt("cells", int64(len(j.Cells))))
	j.rootSpan.Event("accepted")
	j.queueSpan = j.rootSpan.Child("queue-wait")
}

// traceJobRunningLocked closes the queue-wait span as the job leaves the
// FIFO and feeds the queue-wait histogram. The caller holds s.mu.
func (s *Server) traceJobRunningLocked(j *Job) {
	if j.tr == nil {
		return
	}
	j.queueSpan.End()
	waitMs := s.clock.Now().Sub(j.queuedAt).Milliseconds()
	s.hQueueWait.Observe(waitMs)
	s.tenantQueueWaitLocked(j.Tenant, waitMs)
}

// traceJobTerminalLocked ends the root span (and force-ends anything a dead
// worker left open, stamping it truncated) and feeds the end-to-end
// histogram. The caller holds s.mu.
func (s *Server) traceJobTerminalLocked(j *Job) {
	if j.tr == nil {
		return
	}
	j.rootSpan.End(
		trace.A("state", j.State),
		trace.A("cache_hit", strconv.FormatBool(j.CacheHit)))
	j.tr.EndOpen()
	s.hJobE2E.Observe(s.clock.Now().Sub(j.queuedAt).Milliseconds())
}

// cellSpanLocked opens the span for one cell attempt (remote lease or local
// claim). The caller holds s.mu.
func (s *Server) cellSpanLocked(j *Job, c *Cell, worker, leaseID string, attempt int) {
	if j.tr == nil {
		return
	}
	attrs := []trace.Attr{
		trace.AInt("cell", int64(c.Index)),
		trace.A("scheme", c.Scheme),
		trace.AInt("seed", c.Seed),
		trace.A("tenant", j.Tenant),
		trace.AInt("attempt", int64(attempt)),
		trace.A("worker", worker),
	}
	if leaseID != "" {
		attrs = append(attrs, trace.A("lease", leaseID))
	}
	c.span = j.rootSpan.Child("cell", attrs...)
	c.leasedAt = s.clock.Now()
}

// writeJobTrace persists the job's span log beside its status — NOT in the
// cache: trace bytes carry wall time and must never influence (or live
// under) a content-addressed artifact.
func (s *Server) writeJobTrace(j *Job) error {
	data := j.tr.JSONL()
	if data == nil {
		return nil
	}
	dir := s.jobDir(j.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, traceFileName), data, 0o644)
}

// handleTrace serves GET /v1/jobs/{id}/trace: the job's span log as raw
// trace JSONL, or as a chrome://tracing / Perfetto-loadable JSON object with
// ?format=chrome (or perfetto). Live jobs serve the tracer's current
// snapshot (open spans have end=0); terminal jobs serve the persisted
// trace.jsonl, which also survives daemon restarts.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var isTerminal bool
	if ok {
		isTerminal = terminal(j.State)
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}

	var raw []byte
	if !isTerminal && j.tr != nil {
		raw = j.tr.JSONL()
	} else {
		var err error
		raw, err = os.ReadFile(filepath.Join(s.jobDir(id), traceFileName))
		if err != nil && j.tr != nil {
			raw = j.tr.JSONL()
		}
	}
	if len(raw) == 0 {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no trace recorded for job " + id})
		return
	}
	if tid := j.tr.TraceID(); tid != "" {
		w.Header().Set("X-Dynaq-Trace", tid)
	}

	switch format := r.URL.Query().Get("format"); format {
	case "", "jsonl", "raw":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(raw)
	case "chrome", "perfetto":
		spans, err := trace.ParseJSONL(bytes.NewReader(raw))
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: "parsing stored trace: " + err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChrome(w, spans)
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "unknown format " + strconv.Quote(format) + " (want jsonl or chrome)"})
	}
}
