package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dynaq/internal/fleet"
	"dynaq/internal/telemetry/trace"
)

// getTrace fetches /v1/jobs/{id}/trace in the given format ("" for raw).
func getTrace(t *testing.T, ts *httptest.Server, id, format string) (*http.Response, []byte) {
	t.Helper()
	url := ts.URL + "/v1/jobs/" + id + "/trace"
	if format != "" {
		url += "?format=" + format
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

// TestTraceEndToEnd drives one job through the local execution path and
// checks the full trace contract: the caller's X-Dynaq-Trace id is honored,
// the raw JSONL parses and passes structural validation, every lifecycle
// phase appears, engine sim-time spans ride along, and the Chrome export is
// loadable JSON.
func TestTraceEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.Start()
	defer s.Shutdown(shutdownCtx(t))

	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(testScenario))
	req.Header.Set("X-Dynaq-Trace", "trace-e2e-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Dynaq-Trace"); got != "trace-e2e-1" {
		t.Fatalf("submit X-Dynaq-Trace = %q, want trace-e2e-1", got)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	done := waitTerminal(t, ts, st.ID)
	if done.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", done.State, done.Error)
	}

	resp, raw := getTrace(t, ts, st.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	if got := resp.Header.Get("X-Dynaq-Trace"); got != "trace-e2e-1" {
		t.Fatalf("trace X-Dynaq-Trace = %q", got)
	}
	spans, err := trace.ParseJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("parsing trace: %v", err)
	}
	if err := trace.Validate(spans); err != nil {
		t.Fatalf("trace fails validation: %v", err)
	}
	names := make(map[string]int)
	simSpans := 0
	for _, sp := range spans {
		if sp.Trace != "trace-e2e-1" {
			t.Fatalf("span %s carries trace id %q", sp.ID, sp.Trace)
		}
		names[sp.Name]++
		if sp.Domain == trace.DomainSim {
			simSpans++
		}
	}
	for _, want := range []string{"job", "queue-wait", "cell", "scenario-load", "run", "artifact-write", "promote", "sim"} {
		if names[want] == 0 {
			t.Errorf("trace lacks a %q span; have %v", want, names)
		}
	}
	if simSpans == 0 {
		t.Error("trace carries no sim-domain spans")
	}

	resp, chromeData := getTrace(t, ts, st.ID, "chrome")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome trace status = %d: %s", resp.StatusCode, chromeData)
	}
	var chrome struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chromeData, &chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if chrome.DisplayTimeUnit == "" || len(chrome.TraceEvents) == 0 {
		t.Fatalf("chrome trace is empty: unit=%q events=%d", chrome.DisplayTimeUnit, len(chrome.TraceEvents))
	}

	if resp, body := getTrace(t, ts, st.ID, "bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus format status = %d: %s", resp.StatusCode, body)
	}
}

// TestTraceOutsideCache is the cache-purity regression: the trace artifact
// lives beside the job's status, never inside the content-addressed artifact
// directory, and a traced resubmission still cache-hits with bytes identical
// to an untraced fresh run.
func TestTraceOutsideCache(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.Start()
	defer s.Shutdown(shutdownCtx(t))

	st, _ := submit(t, ts, testScenario)
	done := waitTerminal(t, ts, st.ID)
	if done.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", done.State, done.Error)
	}
	cell := done.Cells[0]

	tracePath := filepath.Join(s.jobDir(st.ID), traceFileName)
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatalf("persisted trace: %v", err)
	}
	if _, err := os.Stat(filepath.Join(cell.ArtifactDir, traceFileName)); !os.IsNotExist(err) {
		t.Fatalf("trace leaked into the cached artifact directory: %v", err)
	}
	if strings.Contains(tracePath, string(filepath.Separator)+"cache"+string(filepath.Separator)) {
		t.Fatalf("trace persisted under the cache root: %s", tracePath)
	}

	// Resubmit: must come back entirely from cache even though both runs
	// were traced.
	st2, _ := submit(t, ts, testScenario)
	done2 := waitTerminal(t, ts, st2.ID)
	if done2.State != StateDone || !done2.CacheHit {
		t.Fatalf("resubmit = %s cache_hit=%v, want done from cache", done2.State, done2.CacheHit)
	}
	_, raw := getTrace(t, ts, st2.ID, "")
	if !bytes.Contains(raw, []byte("cell-cache-hit")) {
		t.Fatalf("resubmission trace lacks a cell-cache-hit event:\n%s", raw)
	}

	// Byte-diff the cached artifact against an untraced sequential run: the
	// artifact bytes must be independent of whether tracing was attached.
	fresh := filepath.Join(t.TempDir(), "fresh")
	man := fleet.CellManifest("test-v1", done.ScenarioHash, cell.Scheme, cell.Seed, cell.CacheKey)
	if _, err := fleet.RunCellTo(fresh, []byte(testScenario), cell.Scheme, cell.Seed, man, nil, nil); err != nil {
		t.Fatalf("fresh RunCellTo: %v", err)
	}
	diffDirs(t, cell.ArtifactDir, fresh)
}

// TestTraceIDSanitized: a hostile or malformed X-Dynaq-Trace proposal is
// replaced with a generated id rather than echoed into headers and spans.
func TestTraceIDSanitized(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.Start()
	defer s.Shutdown(shutdownCtx(t))

	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(testScenario))
	req.Header.Set("X-Dynaq-Trace", "bad id {with} spaces!")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := resp.Header.Get("X-Dynaq-Trace")
	if got == "" || strings.ContainsAny(got, " {}!") {
		t.Fatalf("sanitized trace id = %q", got)
	}
}

// TestTraceRemoteWorkerSpans runs a real fleet worker and checks that its
// span log — produced in a separate process-like tracer under the propagated
// trace id — is absorbed into the coordinator's trace: the worker's execute
// span appears, parented to the coordinator's cell span, with engine
// sim-time spans beneath it, and the merged trace still validates.
func TestTraceRemoteWorkerSpans(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.LeaseTTL = 500 * time.Millisecond })
	s.Start()
	defer s.Shutdown(shutdownCtx(t))

	w := fleet.NewWorker(fleet.WorkerConfig{
		Coordinator: ts.URL,
		ID:          "w-traced",
		Version:     "test-v1",
		WorkDir:     t.TempDir(),
		Poll:        10 * time.Millisecond,
	})
	wctx, wcancel := context.WithCancel(context.Background())
	wdone := make(chan struct{})
	go func() { defer close(wdone); w.Run(wctx) }()
	defer func() { wcancel(); <-wdone }()

	waitFor(t, func() bool { return healthzField(t, ts, "workers_active") >= 1 })
	st, _ := submit(t, ts, testScenario)
	done := waitTerminal(t, ts, st.ID)
	if done.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", done.State, done.Error)
	}
	if done.Cells[0].Worker != "w-traced" {
		t.Fatalf("cell ran on %q, want w-traced", done.Cells[0].Worker)
	}

	_, raw := getTrace(t, ts, st.ID, "")
	spans, err := trace.ParseJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("parsing trace: %v", err)
	}
	if err := trace.Validate(spans); err != nil {
		t.Fatalf("merged trace fails validation: %v", err)
	}
	byID := make(map[string]trace.Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	var execute *trace.Span
	for i, sp := range spans {
		if sp.Name == "execute" && sp.Service == "worker-w-traced" {
			execute = &spans[i]
		}
	}
	if execute == nil {
		t.Fatalf("no worker execute span absorbed; spans:\n%s", raw)
	}
	parent, ok := byID[execute.Parent]
	if !ok || parent.Name != "cell" || parent.Service != "coordinator" {
		t.Fatalf("execute span parent = %+v, want the coordinator cell span", parent)
	}
	simOnWorker := false
	for _, sp := range spans {
		if sp.Domain == trace.DomainSim && sp.Service == "worker-w-traced" {
			simOnWorker = true
		}
	}
	if !simOnWorker {
		t.Error("worker upload carried no engine sim-time spans")
	}
	for _, name := range []string{"absorb-upload"} {
		found := false
		for _, sp := range spans {
			if sp.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("trace lacks a %q span", name)
		}
	}
}

// TestStalledEventsReaderDoesNotStallJob is the slow-consumer regression: a
// subscriber that never reads its event stream must not block job execution.
// The publisher drops lines for full subscriber buffers instead of stalling,
// and the drop counter surfaces on /metrics.
func TestStalledEventsReaderDoesNotStallJob(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.Start()
	defer s.Shutdown(shutdownCtx(t))

	// Hold the job at the start of execution so the stalled subscriber is
	// attached before any cell event is published.
	started := make(chan string, 1)
	release := make(chan struct{})
	s.testJobStart = func(j *Job) {
		select {
		case started <- j.ID:
		default:
		}
		<-release
	}

	st, _ := submit(t, ts, testScenario)
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}

	// Attach a reader that never consumes the body.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()

	close(release)
	done := waitTerminal(t, ts, st.ID)
	if done.State != StateDone {
		t.Fatalf("state = %s (err %q), want done despite stalled reader", done.State, done.Error)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(metrics, []byte("dynaqd_events_dropped_total")) {
		t.Fatal("metrics lack dynaqd_events_dropped_total")
	}
}
