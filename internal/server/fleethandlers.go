package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"dynaq/internal/fleet"
	"dynaq/internal/telemetry"
	"dynaq/internal/telemetry/trace"
)

// maxCompleteBytes bounds a completion upload body: the artifact byte cap
// plus base64 expansion and JSON envelope overhead.
const maxCompleteBytes = maxUploadBytes*3/2 + 64*1024

// handleLease hands the fair tree's next ready cell to a pulling worker —
// whichever tenant the weighted rotation owes a slot, regardless of which
// job it belongs to. Polling at all registers the worker as active, which
// switches the coordinator out of local-execution fallback. 204 means no
// work; the Retry-After hint (when present) is the time until the next
// requeued cell's backoff elapses.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req fleet.LeaseRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil || req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "lease request needs a worker id"})
		return
	}
	s.mu.Lock()
	now := s.clock.Now()
	s.workers[req.Worker] = now
	if !s.workerSeries[req.Worker] {
		s.workerSeries[req.Worker] = true
		worker := req.Worker
		s.reg.GaugeFunc("dynaqd_worker_leases", func() int64 {
			//dynaqlint:allow lock-discipline gauge closures run inside handleMetrics' WritePrometheus, which already holds s.mu; locking here would self-deadlock
			return int64(s.leases.PerWorker()[worker])
		}, telemetry.L("worker", worker))
	}
	if len(s.active) == 0 {
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	r2, ok := s.popDispatchLocked(now)
	if !ok {
		if at, have := s.tree.NextAt(); have {
			w.Header().Set("Retry-After", retryAfterSeconds(at.Sub(now)))
		}
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	j, c := r2.j, r2.c
	l := s.leases.Grant(c.Key, j.ID, req.Worker, c.Attempts+1, now, s.cfg.LeaseTTL)
	c.State = StateLeased
	c.Worker = req.Worker
	s.leaseGrants.Inc()
	s.tenantDispatchedLocked(j.Tenant)
	s.cellSpanLocked(j, c, req.Worker, l.ID, l.Attempt)
	grant := fleet.LeaseGrant{
		LeaseID:      l.ID,
		JobID:        j.ID,
		CellIndex:    c.Index,
		CacheKey:     c.Key,
		Scheme:       c.Scheme,
		Seed:         c.Seed,
		Attempt:      l.Attempt,
		TTLMillis:    s.cfg.LeaseTTL.Milliseconds(),
		Version:      s.cfg.Version,
		ScenarioHash: j.ScenarioHash,
		Scenario:     json.RawMessage(j.Scenario),
	}
	if j.tr != nil {
		grant.TraceID = j.tr.TraceID()
		grant.ParentSpan = c.span.ID()
	}
	s.mu.Unlock()
	j.bc.publish(c.Index, []byte(`{"kind":"cell","state":"leased","worker":`+strconv.Quote(req.Worker)+`,"attempt":`+strconv.Itoa(grant.Attempt)+`}`+"\n"))
	s.logf("job %s: cell %d leased to %s (%s, attempt %d)", j.ID, c.Index, req.Worker, l.ID, grant.Attempt)
	writeJSON(w, http.StatusOK, grant)
}

// retryAfterSeconds renders a duration as the delta-seconds Retry-After
// form, rounded up so a client honoring it never polls early.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// handleHeartbeat renews a live lease; 410 means the lease expired (its
// cell already requeued) and renewal is pointless.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	now := s.clock.Now()
	l, ok := s.leases.Renew(id, now, s.cfg.LeaseTTL)
	if ok {
		s.workers[l.Worker] = now
		s.leaseRenews.Inc()
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusGone, errorBody{Error: "lease " + id + " is not live"})
		return
	}
	writeJSON(w, http.StatusOK, fleet.HeartbeatResponse{TTLMillis: s.cfg.LeaseTTL.Milliseconds()})
}

// handleComplete settles a leased cell. Uploaded artifact bytes are
// absorbed into the content-addressed cache FIRST, regardless of lease
// validity — the cache key fully determines the bytes, so a late upload
// from an expired lease is still exactly what the requeued attempt needs
// (it will cache-hit instead of re-running). Only then is the lease itself
// settled: 200 if it was live, 410 if it had already lapsed.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req fleet.CompleteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCompleteBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding completion: " + err.Error()})
		return
	}
	var absorbErr error
	var absorbStart, absorbEnd time.Time
	if req.Error == "" && len(req.Files) > 0 {
		if req.CacheKey == "" {
			absorbErr = errors.New("completion upload lacks a cache key")
		} else {
			absorbStart = s.clock.Now()
			absorbErr = s.absorbUpload(req.CacheKey, req.Files)
			absorbEnd = s.clock.Now()
		}
		if absorbErr != nil {
			s.logf("lease %s: rejecting artifact upload: %v", id, absorbErr)
		}
	}

	s.mu.Lock()
	now := s.clock.Now()
	if req.Worker != "" {
		s.workers[req.Worker] = now
	}
	l, ok := s.leases.Complete(id)
	var j *Job
	var c *Cell
	if ok {
		j, c = s.cellForLeaseLocked(l)
		if c == nil || c.State != StateLeased {
			ok = false
		}
	}
	// Graft the worker's span log onto the job trace while the cell is still
	// identifiable. Spans riding a dead lease are dropped with it — the
	// retry attempt owns the cell's story from here.
	if ok && j.tr != nil {
		if len(req.Spans) > 0 {
			if spans, perr := trace.ParseJSONL(bytes.NewReader(req.Spans)); perr == nil {
				j.tr.Absorb(spans)
			} else {
				s.logf("lease %s: unparseable worker spans: %v", id, perr)
			}
		}
		if !absorbStart.IsZero() {
			j.tr.WallSpan("absorb-upload", c.span.ID(), absorbStart, absorbEnd)
		}
		if absorbErr == nil && len(req.Files) > 0 {
			c.span.Event("uploaded")
		}
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusGone, errorBody{Error: "lease " + id + " is not live; artifact absorbed if uploaded"})
		return
	}

	switch {
	case req.Error != "":
		s.cellFailed(j, c, l.Worker, errors.New(req.Error))
	case absorbErr != nil:
		s.cellFailed(j, c, l.Worker, absorbErr)
	case !s.artifactCached(c.Key):
		s.cellFailed(j, c, l.Worker, fmt.Errorf("completion carried no artifact for key %s", c.Key))
	default:
		s.mu.Lock()
		s.cellsRemote.Inc()
		s.mu.Unlock()
		s.settleCellDone(j, c, false)
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleDeadLetter lists quarantined cells.
func (s *Server) handleDeadLetter(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := fleet.DeadLetterList{Cells: append([]fleet.DeadLetterEntry(nil), s.dead...)}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleRequeue puts quarantined cells back in play by re-enqueueing their
// owning jobs from the persisted request bytes — the same resubmission path
// an operator would use, so finished sibling cells come back as cache hits
// and the requeued cells start with a fresh attempt budget. Keys that match
// nothing, or whose owning job is still in flight, are reported dropped.
func (s *Server) handleRequeue(w http.ResponseWriter, r *http.Request) {
	var req fleet.RequeueRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil && err != io.EOF {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding requeue request: " + err.Error()})
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.accepting {
		s.rejected["draining"].Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining: not accepting jobs"})
		return
	}

	selected := make(map[string]bool, len(req.Keys))
	for _, k := range req.Keys {
		selected[k] = true
	}
	var resp fleet.RequeueResponse
	jobs := make(map[string][]fleet.DeadLetterEntry)
	order := []string{}
	matched := make(map[string]bool)
	for _, e := range s.dead {
		if len(req.Keys) > 0 && !selected[e.CacheKey] {
			continue
		}
		matched[e.CacheKey] = true
		if _, seen := jobs[e.JobID]; !seen {
			order = append(order, e.JobID)
		}
		jobs[e.JobID] = append(jobs[e.JobID], e)
	}
	for _, k := range req.Keys {
		if !matched[k] {
			resp.Dropped = append(resp.Dropped, k)
		}
	}
	if len(order) > s.jobq.Cap()-s.jobq.Len() {
		s.rejected["queue_full"].Inc()
		w.Header().Set("Retry-After", retryAfterForDepth(s.jobq.Len()))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{
			Error:      "queue full (depth " + strconv.Itoa(s.jobq.Cap()) + "): requeue would enqueue " + strconv.Itoa(len(order)) + " job(s)",
			QueueDepth: s.jobq.Len(),
		})
		return
	}

	requeued := make(map[string]bool)
	for _, jobID := range order {
		if existing, ok := s.jobs[jobID]; ok && !terminal(existing.State) {
			// Still in flight (a sibling cell may even be the one running);
			// its quarantined cells cannot be requeued yet.
			for _, e := range jobs[jobID] {
				resp.Dropped = append(resp.Dropped, e.CacheKey)
			}
			continue
		}
		body, err := os.ReadFile(filepath.Join(s.jobDir(jobID), "request.json"))
		if err != nil {
			s.logf("deadletter: job %s request unreadable: %v", jobID, err)
			for _, e := range jobs[jobID] {
				resp.Dropped = append(resp.Dropped, e.CacheKey)
			}
			continue
		}
		jreq := parseRequest(body)
		if tenant := jobs[jobID][0].Tenant; tenant != "" {
			jreq.Tenant = tenant // header-tagged submissions have no tenant in the body
		}
		j, err := buildJob(jreq, s.cfg.Version)
		if err != nil {
			s.logf("deadletter: job %s no longer validates: %v", jobID, err)
			for _, e := range jobs[jobID] {
				resp.Dropped = append(resp.Dropped, e.CacheKey)
			}
			continue
		}
		j.ID = jobID // keep the persisted handle even if expansion rules evolve
		// Force past the tenant quota: an operator putting quarantined work
		// back in play outranks the admission limit (global capacity was
		// pre-checked above).
		s.jobq.Force(j.Tenant, j)
		s.jobs[jobID] = j
		s.jobsSubbed.Inc()
		s.ensureTenantMetricsLocked(j.Tenant)
		if err := s.persistRequestLocked(j, body); err != nil {
			s.logf("job %s: persisting request: %v", jobID, err)
		}
		s.startTraceLocked(j, "")
		s.admitLocked()
		resp.Requeued = append(resp.Requeued, jobID)
		requeued[jobID] = true
		s.logf("deadletter: job %s requeued (%d quarantined cell(s) back in play)", jobID, len(jobs[jobID]))
	}

	if len(requeued) > 0 {
		kept := s.dead[:0]
		for _, e := range s.dead {
			if !requeued[e.JobID] {
				kept = append(kept, e)
			}
		}
		s.dead = kept
		s.persistDeadLetterLocked()
	}
	writeJSON(w, http.StatusOK, resp)
}
