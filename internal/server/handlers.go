package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"dynaq/internal/fairq"
	"dynaq/internal/scenario"
	"dynaq/internal/telemetry"
)

// maxBodyBytes bounds a POST /v1/jobs body: a scenario document at its own
// limit plus sweep-wrapper overhead.
const maxBodyBytes = scenario.MaxDocumentBytes + 64*1024

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("POST /v1/leases", s.handleLease)
	s.mux.HandleFunc("POST /v1/leases/{id}/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("POST /v1/leases/{id}/complete", s.handleComplete)
	s.mux.HandleFunc("GET /v1/deadletter", s.handleDeadLetter)
	s.mux.HandleFunc("POST /v1/deadletter/requeue", s.handleRequeue)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// errorBody is every non-2xx JSON response. Field carries the offending
// scenario field for validation failures; the tenant/queue fields let a
// rejected client see exactly which limit it hit — its own quota or the
// shared queue — and how deep the backlog behind the 503 is.
type errorBody struct {
	Error       string `json:"error"`
	Field       string `json:"field,omitempty"`
	Tenant      string `json:"tenant,omitempty"`
	TenantDepth int    `json:"tenant_depth,omitempty"`
	TenantQuota int    `json:"tenant_quota,omitempty"`
	QueueDepth  int    `json:"queue_depth,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// handleSubmit accepts a scenario (or sweep wrapper), expands and enqueues
// it under the submitting tenant's fair-queue leaf. The tenant comes from
// the X-Dynaq-Tenant header, falling back to the body's tenant field, then
// to "default". Responses: 202 with the job status when enqueued or already
// in flight; 400 on validation failure; 413 on an oversized body; 503 when
// draining, the tenant's quota is spent, or the shared queue is full.
// Resubmitting terminal work re-enqueues it under the same
// content-addressed id — done cells then come back as cache hits without
// re-running, failed ones get a retry.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.countReject("invalid")
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: "body exceeds " + strconv.FormatInt(tooLarge.Limit, 10) + " bytes"})
			return
		}
		s.countReject("invalid")
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	req := parseRequest(body)
	if tenant := r.Header.Get("X-Dynaq-Tenant"); tenant != "" {
		req.Tenant = tenant
	}
	j, err := buildJob(req, s.cfg.Version)
	if err != nil {
		s.countReject("invalid")
		var verr *scenario.ValidationError
		if errors.As(err, &verr) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: verr.Error(), Field: verr.Field})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	s.mu.Lock()
	if !s.accepting {
		s.rejected["draining"].Inc()
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining: not accepting jobs"})
		return
	}
	if existing, ok := s.jobs[j.ID]; ok && !terminal(existing.State) {
		// Identical work already queued or running: hand back its handle.
		s.jobsDeduped.Inc()
		st := s.statusLocked(existing)
		s.mu.Unlock()
		if tid := existing.tr.TraceID(); tid != "" {
			w.Header().Set("X-Dynaq-Trace", tid)
		}
		w.Header().Set("Location", "/v1/jobs/"+st.ID)
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	// New work, or a resubmission of terminal work — the latter re-enqueues
	// a fresh job under the same content-addressed id; done cells come back
	// as cache hits, failed ones re-run.
	if err := s.jobq.Enqueue(j.Tenant, j); err != nil {
		// A full queue is transient — admission frees a slot as soon as a
		// job finishes. Tell well-behaved clients when to come back instead
		// of letting them hammer the endpoint, scaled to the backlog that
		// actually blocks them: their own leaf for a quota rejection, the
		// shared queue otherwise.
		var tf *fairq.TenantFullError
		if errors.As(err, &tf) {
			s.rejected["tenant_quota"].Inc()
			s.mu.Unlock()
			w.Header().Set("Retry-After", retryAfterForDepth(tf.Depth))
			writeJSON(w, http.StatusServiceUnavailable, errorBody{
				Error:       err.Error(),
				Tenant:      tf.Tenant,
				TenantDepth: tf.Depth,
				TenantQuota: tf.Limit,
			})
			return
		}
		s.rejected["queue_full"].Inc()
		tenantDepth := s.jobq.Depth(j.Tenant)
		depth := s.jobq.Len()
		s.mu.Unlock()
		w.Header().Set("Retry-After", retryAfterForDepth(depth))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{
			Error:       err.Error(),
			Tenant:      j.Tenant,
			TenantDepth: tenantDepth,
			TenantQuota: s.cfg.TenantQuota,
			QueueDepth:  depth,
		})
		return
	}
	s.jobs[j.ID] = j
	s.jobsSubbed.Inc()
	s.ensureTenantMetricsLocked(j.Tenant)
	if err := s.persistRequestLocked(j, body); err != nil {
		s.logf("job %s: persisting request: %v", j.ID, err)
	}
	s.startTraceLocked(j, r.Header.Get("X-Dynaq-Trace"))
	s.admitLocked()
	st := s.statusLocked(j)
	s.mu.Unlock()
	s.logf("job %s: queued (%d cells)", st.ID, len(st.Cells))
	w.Header().Set("X-Dynaq-Trace", j.tr.TraceID())
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) countReject(reason string) {
	s.mu.Lock()
	s.rejected[reason].Inc()
	s.mu.Unlock()
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	st := s.statusLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's progress as chunked JSONL (NDJSON): each
// line is one telemetry event wrapped with the producing cell index, and
// the stream ends with a {"cell":-1,"kind":"job",...} terminal line. For a
// terminal job the stored events.jsonl of every cell is replayed; for a
// live job the subscriber receives events from attach time onward.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Subscribe before inspecting the state so no line is lost between the
	// terminal check and the attach.
	ch := j.bc.subscribe()
	s.mu.Lock()
	st := s.statusLocked(j)
	s.mu.Unlock()

	if terminal(st.State) {
		for _, c := range st.Cells {
			if c.ArtifactDir != "" {
				s.replayCellEvents(w, c)
			}
		}
		writeFinal(w, st)
		flush()
		return
	}

	w.Write(statusLine(st))
	flush()
	for {
		select {
		case line, open := <-ch:
			if !open {
				s.mu.Lock()
				st = s.statusLocked(j)
				s.mu.Unlock()
				writeFinal(w, st)
				flush()
				return
			}
			w.Write(line)
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// statusLine renders a {"cell":-1,"kind":"job","state":...} progress line.
func statusLine(st JobStatus) []byte {
	b := []byte(`{"cell":-1,"kind":"job","state":`)
	b = strconv.AppendQuote(b, st.State)
	b = append(b, '}', '\n')
	return b
}

// writeFinal emits the terminal job line with the cell -1 wrapper.
func writeFinal(w io.Writer, st JobStatus) {
	line := finalStatusLine(st)
	b := append([]byte(`{"cell":-1,`), line[1:]...)
	w.Write(b)
}

// replayCellEvents streams one cached cell's events.jsonl, wrapping each
// stored line with the cell index exactly as the live path does.
func (s *Server) replayCellEvents(w io.Writer, c CellStatus) {
	f, err := os.Open(filepath.Join(c.ArtifactDir, telemetry.EventsFile))
	if err != nil {
		return
	}
	defer f.Close()
	prefix := append([]byte(`{"cell":`), strconv.AppendInt(nil, int64(c.Index), 10)...)
	prefix = append(prefix, ',')
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) < 2 || line[0] != '{' {
			continue
		}
		w.Write(prefix)
		w.Write(line[1:])
		w.Write([]byte{'\n'})
	}
}

// handleMetrics renders the server registry (job/queue/cache counters) plus
// the cumulative per-series sim totals absorbed from completed cells, all
// in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	s.mu.Lock()
	err := s.reg.WritePrometheus(&buf)
	ids := make([]string, 0, len(s.simTotals))
	for id := range s.simTotals {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		buf.WriteString(id)
		buf.WriteByte(' ')
		buf.WriteString(strconv.FormatInt(s.simTotals[id], 10))
		buf.WriteByte('\n')
	}
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	state := "serving"
	if !s.accepting {
		state = "draining"
	}
	depth := s.jobq.Len()
	running := s.running
	workers := s.activeWorkersLocked(s.clock.Now())
	leases := s.leases.Len()
	deadletter := len(s.dead)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":          "ok",
		"state":           state,
		"version":         s.cfg.Version,
		"queue_depth":     depth,
		"jobs_running":    running,
		"workers_active":  workers,
		"leases_live":     leases,
		"deadletter_size": deadletter,
	})
}
