package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"dynaq/internal/fleet"
	"dynaq/internal/telemetry/trace"
)

// This file is the coordinator side of the worker fleet: cells of the job
// in flight are offered to pull-based workers as time-boxed leases, or run
// by the local executor pool when no workers are registered. Failure is the
// default case — a silent worker's lease expires and the cell is requeued
// with capped, deterministically-jittered backoff; a cell that exhausts its
// attempt budget is quarantined to the persisted dead-letter list instead
// of retrying forever.

// dispatchCells runs one job's cells to settlement. It returns the job's
// terminal error (nil on success) and whether a daemon shutdown interrupted
// the job before settlement — in which case the caller requeues it instead
// of settling it.
func (s *Server) dispatchCells(ctx context.Context, j *Job) (error, bool) {
	now := s.clock.Now()
	var hits []*Cell
	s.mu.Lock()
	s.current = j
	s.outstanding = 0
	s.jobDone = make(chan struct{})
	for _, c := range j.Cells {
		if s.artifactCached(c.Key) {
			c.State = StateDone
			c.CacheHit = true
			c.Dir = s.cellDir(c.Key)
			s.cacheHits.Inc()
			j.rootSpan.Event("cell-cache-hit", trace.AInt("cell", int64(c.Index)))
			hits = append(hits, c)
			continue
		}
		c.State = StateQueued
		s.outstanding++
		s.ready.Push(c, now)
	}
	outstanding := s.outstanding
	if outstanding == 0 {
		s.current = nil
	}
	s.mu.Unlock()
	for _, c := range hits {
		j.bc.publish(c.Index, []byte(`{"kind":"cell","state":"done","cache_hit":true}`+"\n"))
	}
	if outstanding == 0 {
		return nil, false
	}

	// A shutdown that began before dispatch even started requeues the job
	// wholesale — no executors are spawned, so the outcome is deterministic
	// rather than a race between the first claim and the cancel.
	select {
	case <-s.stop:
		s.mu.Lock()
		for _, c := range j.Cells {
			if c.State != StateDone && c.State != StateQuarantined {
				c.State = StateQueued
			}
		}
		s.ready.Drain()
		s.current = nil
		s.mu.Unlock()
		return nil, true
	default:
	}

	// Local fallback executors: they only claim cells while no fleet
	// worker is active, so a registered fleet gets the work and an empty
	// fleet degrades to exactly the single-node behavior.
	lctx, lcancel := context.WithCancel(ctx)
	defer lcancel()
	var wg sync.WaitGroup
	for i := 0; i < localWorkers(s.cfg.Concurrency); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.localExecutor(lctx, j)
		}()
	}

	interrupted := false
	select {
	case <-s.jobDone:
	case <-ctx.Done():
	case <-s.stop:
		interrupted = true
	}
	lcancel()
	wg.Wait() // cells already executing locally finish and land in cache

	s.mu.Lock()
	s.leases.DropJob(j.ID)
	s.ready.Drain()
	pending := 0
	var jobErr error
	for _, c := range j.Cells {
		switch c.State {
		case StateDone:
		case StateQuarantined:
			if jobErr == nil {
				jobErr = fmt.Errorf("cell %d (%s/seed %d) quarantined after %d attempt(s): %s",
					c.Index, c.Scheme, c.Seed, c.Attempts, c.Err)
			}
		default:
			c.State = StateQueued
			c.Worker = ""
			pending++
		}
	}
	s.current = nil
	s.mu.Unlock()

	if interrupted && pending > 0 {
		return nil, true
	}
	if jobErr != nil {
		return jobErr, false
	}
	if pending > 0 {
		// Not interrupted and not quarantined: the job timed out.
		s.mu.Lock()
		for _, c := range j.Cells {
			if c.State == StateQueued {
				c.State = StateFailed
				c.Err = "job cancelled"
			}
		}
		s.mu.Unlock()
		return fmt.Errorf("job cancelled with %d cell(s) unfinished: %v", pending, ctx.Err()), false
	}
	return nil, false
}

// localWorkers sizes the fallback executor pool.
func localWorkers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// localExecutor claims and runs ready cells while no fleet worker is
// active. It blocks on the kick channel (nudged whenever readiness or
// worker liveness changes) or on the clock until the next requeued cell's
// backoff elapses.
func (s *Server) localExecutor(ctx context.Context, j *Job) {
	// Snapshot this job's done channel once: dispatchCells swaps the field
	// per job under mu, and this executor must keep waiting on the channel
	// of the job it was started for.
	s.mu.Lock()
	jobDone := s.jobDone
	s.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return
		}
		c, wait := s.claimLocalCell(j)
		if c != nil {
			s.executeLocalCell(j, c)
			continue
		}
		if wait < 0 {
			return
		}
		var timer <-chan time.Time
		if wait > 0 {
			timer = s.clock.After(wait)
		}
		select {
		case <-ctx.Done():
			return
		case <-jobDone:
			return
		case <-s.kick:
		case <-timer:
		}
	}
}

// claimLocalCell pops a ready cell for local execution, unless fleet
// workers are active (they get the work via leases). wait < 0 means the job
// has settled; wait > 0 is the delay until the next cell's backoff
// readiness; wait == 0 means block until kicked.
//
//dynaqlint:allow lock-discipline called only from localExecutor, which owns the ctx; a claim is a non-blocking pop under s.mu with nothing to cancel
func (s *Server) claimLocalCell(j *Job) (*Cell, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.current != j || s.outstanding == 0 {
		return nil, -1
	}
	now := s.clock.Now()
	if s.activeWorkersLocked(now) > 0 {
		// A live fleet owns the work; the expiry scanner kicks us if it
		// goes quiet.
		return nil, 0
	}
	c, ok := s.ready.Pop(now)
	if !ok {
		if at, have := s.ready.NextAt(); have {
			return nil, at.Sub(now)
		}
		return nil, 0 // everything is leased or running
	}
	c.State = StateRunning
	c.Worker = ""
	s.cellSpanLocked(j, c, "local", "", c.Attempts+1)
	if s.ready.Len() > 0 {
		s.kickLocked() // wake a sibling executor for the next ready cell
	}
	return c, 0
}

// executeLocalCell runs one cell on the coordinator (cache check, fresh
// run, atomic promotion) and settles it.
func (s *Server) executeLocalCell(j *Job, c *Cell) {
	final := s.cellDir(c.Key)
	if s.artifactCached(c.Key) {
		s.mu.Lock()
		s.cacheHits.Inc()
		s.mu.Unlock()
		s.settleCellDone(j, c, true)
		return
	}

	s.mu.Lock()
	s.cacheMisses.Inc()
	s.mu.Unlock()
	j.bc.publish(c.Index, []byte(`{"kind":"cell","state":"running","scheme":`+strconv.Quote(c.Scheme)+`,"seed":`+strconv.FormatInt(c.Seed, 10)+`,"attempt":`+strconv.Itoa(c.Attempts+1)+`}`+"\n"))

	tmp := s.tmpDir(c.Key)
	if err := os.RemoveAll(tmp); err != nil {
		s.cellFailed(j, c, "local", fmt.Errorf("clearing stale artifacts: %w", err))
		return
	}
	man := fleet.CellManifest(s.cfg.Version, j.ScenarioHash, c.Scheme, c.Seed, c.Key)
	reg, err := fleet.RunCellTo(tmp, j.Scenario, c.Scheme, c.Seed, man, func(line []byte) {
		j.bc.publish(c.Index, line)
	}, c.span)
	if err != nil {
		os.RemoveAll(tmp)
		s.cellFailed(j, c, "local", err)
		return
	}
	promoteStart := s.clock.Now()
	if err := s.promote(tmp, final); err != nil {
		s.cellFailed(j, c, "local", err)
		return
	}
	if j.tr != nil {
		j.tr.WallSpan("promote", c.span.ID(), promoteStart, s.clock.Now())
	}

	s.mu.Lock()
	s.cellsRun.Inc()
	s.absorbLocked(reg)
	s.mu.Unlock()
	s.settleCellDone(j, c, false)
}

// settleCellDone marks a cell finished and closes the job's done channel
// when it was the last one outstanding.
func (s *Server) settleCellDone(j *Job, c *Cell, cacheHit bool) {
	s.mu.Lock()
	if c.State == StateDone {
		s.mu.Unlock()
		return
	}
	c.State = StateDone
	c.CacheHit = cacheHit
	c.Dir = s.cellDir(c.Key)
	c.Err = ""
	if c.span != nil {
		now := s.clock.Now()
		if !cacheHit {
			s.hCellExecution.Observe(now.Sub(c.leasedAt).Milliseconds())
		}
		if c.Worker != "" && c.Worker != "local" {
			s.hLeaseDuration.Observe(now.Sub(c.leasedAt).Milliseconds())
		}
		c.span.End(trace.A("cache_hit", strconv.FormatBool(cacheHit)))
		c.span = nil
	}
	s.outstanding--
	settled := s.outstanding == 0
	s.mu.Unlock()
	j.bc.publish(c.Index, []byte(`{"kind":"cell","state":"done","cache_hit":`+strconv.FormatBool(cacheHit)+`}`+"\n"))
	if settled {
		close(s.jobDone)
	}
}

// cellFailed charges one failed attempt against a cell: requeue with capped
// deterministic backoff, or quarantine to the dead-letter list once the
// attempt budget is spent.
//
//dynaqlint:allow lock-discipline failure bookkeeping must run to completion even when the caller's ctx is already cancelled, or the attempt would be lost
func (s *Server) cellFailed(j *Job, c *Cell, worker string, err error) {
	s.mu.Lock()
	c.Attempts++
	c.Err = err.Error()
	c.Worker = worker
	s.persistAttemptsLocked(j)
	if c.span != nil {
		c.span.End(trace.A("error", c.Err))
		c.span = nil
	}
	if c.Attempts >= s.cfg.MaxAttempts {
		c.State = StateQuarantined
		s.quarantined.Inc()
		s.addDeadLetterLocked(fleet.DeadLetterEntry{
			CacheKey:   c.Key,
			JobID:      j.ID,
			CellIndex:  c.Index,
			Scheme:     c.Scheme,
			Seed:       c.Seed,
			Attempts:   c.Attempts,
			LastError:  c.Err,
			LastWorker: worker,
		})
		j.rootSpan.Event("cell-quarantined",
			trace.AInt("cell", int64(c.Index)),
			trace.AInt("attempts", int64(c.Attempts)))
		s.outstanding--
		settled := s.outstanding == 0
		s.mu.Unlock()
		j.bc.publish(c.Index, []byte(`{"kind":"cell","state":"quarantined","attempts":`+strconv.Itoa(c.Attempts)+`,"error":`+strconv.Quote(c.Err)+`}`+"\n"))
		s.logf("job %s: cell %d quarantined after %d attempt(s): %s", j.ID, c.Index, c.Attempts, c.Err)
		if settled {
			close(s.jobDone)
		}
		return
	}
	delay := s.backoff.Delay(c.Key, c.Attempts)
	readyAt := s.clock.Now().Add(delay)
	c.State = StateQueued
	s.ready.Push(c, readyAt)
	s.cellRetries.Inc()
	j.rootSpan.Event("cell-requeued",
		trace.AInt("cell", int64(c.Index)),
		trace.AInt("attempt", int64(c.Attempts)),
		trace.AInt("backoff_ms", delay.Milliseconds()))
	s.kickLocked()
	s.mu.Unlock()
	j.bc.publish(c.Index, []byte(`{"kind":"cell","state":"requeued","attempt":`+strconv.Itoa(c.Attempts)+`,"backoff_ms":`+strconv.FormatInt(delay.Milliseconds(), 10)+`,"error":`+strconv.Quote(c.Err)+`}`+"\n"))
	s.logf("job %s: cell %d attempt %d failed (%s); retrying in %s", j.ID, c.Index, c.Attempts, c.Err, delay)
}

// kickLocked nudges one blocked local executor. The channel is buffered, so
// a kick sent while nobody is waiting is consumed by the next executor
// about to block — no lost wakeups.
func (s *Server) kickLocked() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// activeWorkersLocked counts workers seen within the liveness window (one
// lease TTL). The caller holds s.mu.
func (s *Server) activeWorkersLocked(now time.Time) int {
	n := 0
	for _, seen := range s.workers {
		if now.Sub(seen) <= s.cfg.LeaseTTL {
			n++
		}
	}
	return n
}

// cellByKeyLocked finds the current job's cell with the given cache key.
func (s *Server) cellByKeyLocked(key string) (*Job, *Cell) {
	if s.current == nil {
		return nil, nil
	}
	for _, c := range s.current.Cells {
		if c.Key == key {
			return s.current, c
		}
	}
	return nil, nil
}

// expiryLoop periodically expires silent workers' leases and prunes the
// worker liveness table. The scan interval is a quarter TTL, so a lease is
// requeued at most 1.25 TTL after its last heartbeat.
func (s *Server) expiryLoop() {
	interval := s.cfg.LeaseTTL / 4
	if interval <= 0 {
		interval = time.Millisecond
	}
	for {
		select {
		case <-s.stop:
			return
		case <-s.clock.After(interval):
		}
		s.tick()
	}
}

// tick is one maintenance pass: expire lapsed leases (requeueing their
// cells), prune dead workers, and kick the local executors so they notice
// a fleet that has gone quiet.
//
//dynaqlint:allow lock-discipline driven by expiryLoop, whose clock.After select already honors s.stop; one tick is bounded work under s.mu
func (s *Server) tick() {
	type expired struct {
		j *Job
		c *Cell
		l *fleet.Lease
	}
	var lapsed []expired
	s.mu.Lock()
	now := s.clock.Now()
	for _, l := range s.leases.Expire(now) {
		s.leaseExpiry.Inc()
		if j, c := s.cellByKeyLocked(l.Key); c != nil && c.State == StateLeased {
			if c.span != nil {
				c.span.Event("lease-expired", trace.A("lease", l.ID))
				s.hLeaseDuration.Observe(now.Sub(c.leasedAt).Milliseconds())
			}
			lapsed = append(lapsed, expired{j: j, c: c, l: l})
		}
	}
	for id, seen := range s.workers {
		if now.Sub(seen) > s.cfg.LeaseTTL {
			delete(s.workers, id)
		}
	}
	if s.current != nil {
		s.kickLocked()
	}
	s.mu.Unlock()
	for _, e := range lapsed {
		s.cellFailed(e.j, e.c, e.l.Worker,
			fmt.Errorf("lease %s expired: worker %s silent past the %s TTL", e.l.ID, e.l.Worker, s.cfg.LeaseTTL))
	}
}

// --- dead-letter persistence ---------------------------------------------

func (s *Server) deadLetterPath() string {
	return filepath.Join(s.cfg.DataDir, "deadletter.json")
}

// addDeadLetterLocked appends (or refreshes) a quarantine entry and
// persists the list. The caller holds s.mu.
func (s *Server) addDeadLetterLocked(e fleet.DeadLetterEntry) {
	replaced := false
	for i := range s.dead {
		if s.dead[i].CacheKey == e.CacheKey {
			s.dead[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		s.dead = append(s.dead, e)
	}
	s.persistDeadLetterLocked()
}

func (s *Server) persistDeadLetterLocked() {
	data, err := json.MarshalIndent(s.dead, "", "  ")
	if err == nil {
		err = os.WriteFile(s.deadLetterPath(), append(data, '\n'), 0o644)
	}
	if err != nil {
		s.logf("persisting dead-letter list: %v", err)
	}
}

func (s *Server) loadDeadLetter() error {
	data, err := os.ReadFile(s.deadLetterPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := json.Unmarshal(data, &s.dead); err != nil {
		return fmt.Errorf("server: parsing deadletter.json: %w", err)
	}
	return nil
}
