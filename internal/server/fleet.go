package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"time"

	"dynaq/internal/fleet"
	"dynaq/internal/telemetry/trace"
)

// This file is the coordinator side of the worker fleet: cells of active
// jobs are offered to pull-based workers as time-boxed leases, or run by
// the shared local executor pool when no workers are registered. Both paths
// dequeue through the fair tree (fairq.Tree), so whichever tenant is owed
// the next slot gets it regardless of who asks. Failure is the default case
// — a silent worker's lease expires and the cell is requeued with capped,
// deterministically-jittered backoff; a cell that exhausts its attempt
// budget is quarantined to the persisted dead-letter list instead of
// retrying forever.

// runnable is one dispatchable cell paired with its owning job — the item
// type of the coordinator's fair tree.
type runnable struct {
	j *Job
	c *Cell
}

// dispatchCells runs one job's cells to settlement. It returns the job's
// terminal error (nil on success) and whether a daemon shutdown interrupted
// the job before settlement — in which case the caller requeues it instead
// of settling it. Multiple dispatchCells run concurrently (one per active
// tenant); the fair tree interleaves their cells.
func (s *Server) dispatchCells(ctx context.Context, j *Job) (error, bool) {
	now := s.clock.Now()
	var hits []*Cell
	s.mu.Lock()
	j.outstanding = 0
	j.localActive = 0
	j.finalizing = false
	j.runCtx = ctx
	j.change = make(chan struct{}, 1)
	s.active[j.ID] = j
	for _, c := range j.Cells {
		if s.artifactCached(c.Key) {
			c.State = StateDone
			c.CacheHit = true
			c.Dir = s.cellDir(c.Key)
			s.cacheHits.Inc()
			j.rootSpan.Event("cell-cache-hit", trace.AInt("cell", int64(c.Index)))
			hits = append(hits, c)
			continue
		}
		c.State = StateQueued
		j.outstanding++
		s.tree.Push(j.Tenant, runnable{j: j, c: c}, now)
	}
	outstanding := j.outstanding
	if outstanding == 0 {
		delete(s.active, j.ID)
	} else {
		s.kickLocked()
	}
	s.mu.Unlock()
	for _, c := range hits {
		j.bc.publish(c.Index, []byte(`{"kind":"cell","state":"done","cache_hit":true}`+"\n"))
	}
	if outstanding == 0 {
		return nil, false
	}

	// A shutdown that began before dispatch even started requeues the job
	// wholesale — its cells leave the tree before any executor claims one,
	// so the outcome is deterministic rather than a race between the first
	// claim and the cancel.
	select {
	case <-s.stop:
		s.mu.Lock()
		s.tree.Prune(func(r runnable) bool { return r.j == j })
		for _, c := range j.Cells {
			if c.State != StateDone && c.State != StateQuarantined {
				c.State = StateQueued
			}
		}
		delete(s.active, j.ID)
		s.mu.Unlock()
		return nil, true
	default:
	}

	interrupted := false
wait:
	for {
		select {
		case <-j.change:
			s.mu.Lock()
			settled := j.outstanding == 0
			s.mu.Unlock()
			if settled {
				break wait
			}
		case <-ctx.Done():
			break wait
		case <-s.stop:
			interrupted = true
			break wait
		}
	}

	// Settle: stop further dispatch of this job's cells, wait for local
	// executions already in flight to finish (they land in the cache), then
	// account for what is left. cellFailed may push a cell back into the
	// tree during the wait, so prune again after it.
	s.mu.Lock()
	j.finalizing = true
	s.tree.Prune(func(r runnable) bool { return r.j == j })
	for j.localActive > 0 {
		s.mu.Unlock()
		<-j.change
		s.mu.Lock()
	}
	s.leases.DropJob(j.ID)
	s.tree.Prune(func(r runnable) bool { return r.j == j })
	for _, c := range j.Cells {
		s.releaseCellLocked(j, c)
	}
	pending := 0
	var jobErr error
	for _, c := range j.Cells {
		switch c.State {
		case StateDone:
		case StateQuarantined:
			if jobErr == nil {
				jobErr = fmt.Errorf("cell %d (%s/seed %d) quarantined after %d attempt(s): %s",
					c.Index, c.Scheme, c.Seed, c.Attempts, c.Err)
			}
		default:
			c.State = StateQueued
			c.Worker = ""
			pending++
		}
	}
	delete(s.active, j.ID)
	s.mu.Unlock()

	if interrupted && pending > 0 {
		return nil, true
	}
	if jobErr != nil {
		return jobErr, false
	}
	if pending > 0 {
		// Not interrupted and not quarantined: the job timed out.
		s.mu.Lock()
		for _, c := range j.Cells {
			if c.State == StateQueued {
				c.State = StateFailed
				c.Err = "job cancelled"
			}
		}
		s.mu.Unlock()
		return fmt.Errorf("job cancelled with %d cell(s) unfinished: %v", pending, ctx.Err()), false
	}
	return nil, false
}

// localWorkers sizes the fallback executor pool.
func localWorkers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// localExecutor is one goroutine of the shared fallback pool, started in
// Start and alive for the daemon's lifetime. It claims ready cells across
// every active job in fair-tree order while no fleet worker is active, and
// blocks on the kick channel (nudged whenever readiness or worker liveness
// changes) or on the clock until the next requeued cell's backoff elapses.
//
//dynaqlint:allow lock-discipline lifecycle is channel-based: Shutdown closes s.stop, which this loop selects on; per-job cancellation arrives via the eligibility check instead
func (s *Server) localExecutor() {
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		r, wait := s.claimCell()
		if r.c != nil {
			s.executeLocalCell(r.j, r.c)
			s.mu.Lock()
			delete(s.localKeys, r.c.Key)
			r.j.localActive--
			s.nudgeLocked(r.j)
			s.kickLocked() // the freed key/slot may unblock a sibling
			s.mu.Unlock()
			continue
		}
		var timer <-chan time.Time
		if wait > 0 {
			timer = s.clock.After(wait)
		}
		select {
		case <-s.stop:
			return
		case <-s.kick:
		case <-timer:
		}
	}
}

// claimCell pops the fair tree's next ready cell for local execution,
// unless fleet workers are active (they get the work via leases). wait > 0
// is the delay until the next cell's backoff readiness; wait == 0 means
// block until kicked.
//
//dynaqlint:allow lock-discipline called only from localExecutor, whose lifecycle is stop-channel-based; a claim is a non-blocking pop under s.mu with nothing to cancel
func (s *Server) claimCell() (runnable, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.active) == 0 {
		return runnable{}, 0
	}
	now := s.clock.Now()
	if s.activeWorkersLocked(now) > 0 {
		// A live fleet owns the work; the expiry scanner kicks us if it
		// goes quiet.
		return runnable{}, 0
	}
	r, ok := s.popDispatchLocked(now)
	if !ok {
		if at, have := s.tree.NextAt(); have {
			if d := at.Sub(now); d > 0 {
				return runnable{}, d
			}
		}
		return runnable{}, 0 // everything is leased, running, or capped
	}
	r.c.State = StateRunning
	r.c.Worker = ""
	s.localKeys[r.c.Key] = true
	r.j.localActive++
	s.cellSpanLocked(r.j, r.c, "local", "", r.c.Attempts+1)
	s.tenantDispatchedLocked(r.j.Tenant)
	if s.tree.Len() > 0 {
		s.kickLocked() // wake a sibling executor for the next ready cell
	}
	return r, 0
}

// popDispatchLocked pops the next dispatchable cell in fair order. The
// eligibility check keeps the two dispatch paths from colliding: a cell
// whose cache key is already leased to a worker or executing locally
// (possible across tenants, whose jobs may share cells) stays queued, as
// does any cell of a job that is settling or past its timeout. On success
// the cell's tenant in-flight slot is held; releaseCellLocked returns it.
// The caller holds s.mu.
//
//dynaqlint:allow lock-discipline pure queue bookkeeping under s.mu; both dispatch paths that call it (lease handler, local claim) already thread cancellation
func (s *Server) popDispatchLocked(now time.Time) (runnable, bool) {
	_, r, ok := s.tree.Pop(now, func(r runnable) bool {
		if r.j.finalizing || r.j.runCtx.Err() != nil {
			return false
		}
		//dynaqlint:allow lock-discipline the closure runs inline within Pop, and popDispatchLocked's caller holds s.mu
		return !s.localKeys[r.c.Key] && !s.leases.Leased(r.c.Key)
	})
	if ok {
		r.c.acquired = true
	}
	return r, ok
}

// releaseCellLocked returns a popped cell's tenant in-flight slot; safe to
// call on cells that hold none. The caller holds s.mu.
//
//dynaqlint:allow lock-discipline pure in-flight accounting under s.mu; the dispatch loops that call it already thread cancellation
func (s *Server) releaseCellLocked(j *Job, c *Cell) {
	if c.acquired {
		c.acquired = false
		s.tree.Release(j.Tenant)
	}
}

// nudgeLocked wakes j's dispatcher loop; the buffered-1 channel coalesces
// bursts. The caller holds s.mu.
func (s *Server) nudgeLocked(j *Job) {
	select {
	case j.change <- struct{}{}:
	default:
	}
}

// executeLocalCell runs one cell on the coordinator (cache check, fresh
// run, atomic promotion) and settles it.
func (s *Server) executeLocalCell(j *Job, c *Cell) {
	final := s.cellDir(c.Key)
	if s.artifactCached(c.Key) {
		s.mu.Lock()
		s.cacheHits.Inc()
		s.mu.Unlock()
		s.settleCellDone(j, c, true)
		return
	}

	s.mu.Lock()
	s.cacheMisses.Inc()
	s.mu.Unlock()
	j.bc.publish(c.Index, []byte(`{"kind":"cell","state":"running","scheme":`+strconv.Quote(c.Scheme)+`,"seed":`+strconv.FormatInt(c.Seed, 10)+`,"attempt":`+strconv.Itoa(c.Attempts+1)+`}`+"\n"))

	tmp := s.tmpDir(c.Key)
	if err := os.RemoveAll(tmp); err != nil {
		s.cellFailed(j, c, "local", fmt.Errorf("clearing stale artifacts: %w", err))
		return
	}
	man := fleet.CellManifest(s.cfg.Version, j.ScenarioHash, c.Scheme, c.Seed, c.Key)
	reg, err := fleet.RunCellTo(tmp, j.Scenario, c.Scheme, c.Seed, man, func(line []byte) {
		j.bc.publish(c.Index, line)
	}, c.span)
	if err != nil {
		os.RemoveAll(tmp)
		s.cellFailed(j, c, "local", err)
		return
	}
	promoteStart := s.clock.Now()
	if err := s.promote(tmp, final); err != nil {
		s.cellFailed(j, c, "local", err)
		return
	}
	if j.tr != nil {
		j.tr.WallSpan("promote", c.span.ID(), promoteStart, s.clock.Now())
	}

	s.mu.Lock()
	s.cellsRun.Inc()
	s.absorbLocked(reg)
	s.mu.Unlock()
	s.settleCellDone(j, c, false)
}

// settleCellDone marks a cell finished, returns its tenant in-flight slot,
// and nudges the owning job's dispatcher (which settles the job once
// nothing is outstanding).
func (s *Server) settleCellDone(j *Job, c *Cell, cacheHit bool) {
	s.mu.Lock()
	if c.State == StateDone {
		s.mu.Unlock()
		return
	}
	c.State = StateDone
	c.CacheHit = cacheHit
	c.Dir = s.cellDir(c.Key)
	c.Err = ""
	if c.span != nil {
		now := s.clock.Now()
		if !cacheHit {
			s.hCellExecution.Observe(now.Sub(c.leasedAt).Milliseconds())
		}
		if c.Worker != "" && c.Worker != "local" {
			s.hLeaseDuration.Observe(now.Sub(c.leasedAt).Milliseconds())
		}
		c.span.End(trace.A("cache_hit", strconv.FormatBool(cacheHit)))
		c.span = nil
	}
	s.releaseCellLocked(j, c)
	j.outstanding--
	s.nudgeLocked(j)
	s.kickLocked() // a freed in-flight slot may unblock a capped tenant
	s.mu.Unlock()
	j.bc.publish(c.Index, []byte(`{"kind":"cell","state":"done","cache_hit":`+strconv.FormatBool(cacheHit)+`}`+"\n"))
}

// cellFailed charges one failed attempt against a cell: requeue with capped
// deterministic backoff, or quarantine to the dead-letter list once the
// attempt budget is spent.
//
//dynaqlint:allow lock-discipline failure bookkeeping must run to completion even when the caller's ctx is already cancelled, or the attempt would be lost
func (s *Server) cellFailed(j *Job, c *Cell, worker string, err error) {
	s.mu.Lock()
	c.Attempts++
	c.Err = err.Error()
	c.Worker = worker
	s.releaseCellLocked(j, c)
	s.persistAttemptsLocked(j)
	if c.span != nil {
		c.span.End(trace.A("error", c.Err))
		c.span = nil
	}
	if c.Attempts >= s.cfg.MaxAttempts {
		c.State = StateQuarantined
		s.quarantined.Inc()
		s.addDeadLetterLocked(fleet.DeadLetterEntry{
			CacheKey:   c.Key,
			JobID:      j.ID,
			CellIndex:  c.Index,
			Scheme:     c.Scheme,
			Seed:       c.Seed,
			Attempts:   c.Attempts,
			LastError:  c.Err,
			LastWorker: worker,
			Tenant:     j.Tenant,
		})
		j.rootSpan.Event("cell-quarantined",
			trace.AInt("cell", int64(c.Index)),
			trace.AInt("attempts", int64(c.Attempts)))
		j.outstanding--
		s.nudgeLocked(j)
		s.mu.Unlock()
		j.bc.publish(c.Index, []byte(`{"kind":"cell","state":"quarantined","attempts":`+strconv.Itoa(c.Attempts)+`,"error":`+strconv.Quote(c.Err)+`}`+"\n"))
		s.logf("job %s: cell %d quarantined after %d attempt(s): %s", j.ID, c.Index, c.Attempts, c.Err)
		return
	}
	delay := s.backoff.Delay(c.Key, c.Attempts)
	readyAt := s.clock.Now().Add(delay)
	c.State = StateQueued
	s.tree.Push(j.Tenant, runnable{j: j, c: c}, readyAt)
	s.cellRetries.Inc()
	j.rootSpan.Event("cell-requeued",
		trace.AInt("cell", int64(c.Index)),
		trace.AInt("attempt", int64(c.Attempts)),
		trace.AInt("backoff_ms", delay.Milliseconds()))
	s.kickLocked()
	s.mu.Unlock()
	j.bc.publish(c.Index, []byte(`{"kind":"cell","state":"requeued","attempt":`+strconv.Itoa(c.Attempts)+`,"backoff_ms":`+strconv.FormatInt(delay.Milliseconds(), 10)+`,"error":`+strconv.Quote(c.Err)+`}`+"\n"))
	s.logf("job %s: cell %d attempt %d failed (%s); retrying in %s", j.ID, c.Index, c.Attempts, c.Err, delay)
}

// kickLocked nudges one blocked local executor. The channel is buffered, so
// a kick sent while nobody is waiting is consumed by the next executor
// about to block — no lost wakeups.
func (s *Server) kickLocked() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// activeWorkersLocked counts workers seen within the liveness window (one
// lease TTL). The caller holds s.mu.
func (s *Server) activeWorkersLocked(now time.Time) int {
	n := 0
	for _, seen := range s.workers {
		if now.Sub(seen) <= s.cfg.LeaseTTL {
			n++
		}
	}
	return n
}

// cellForLeaseLocked resolves a lease back to its job and cell. Scoping the
// lookup by the lease's job id matters now that several tenants' jobs are
// active at once and may share cache keys.
func (s *Server) cellForLeaseLocked(l *fleet.Lease) (*Job, *Cell) {
	j := s.active[l.JobID]
	if j == nil {
		return nil, nil
	}
	for _, c := range j.Cells {
		if c.Key == l.Key {
			return j, c
		}
	}
	return nil, nil
}

// expiryLoop periodically expires silent workers' leases and prunes the
// worker liveness table. The scan interval is a quarter TTL, so a lease is
// requeued at most 1.25 TTL after its last heartbeat.
func (s *Server) expiryLoop() {
	interval := s.cfg.LeaseTTL / 4
	if interval <= 0 {
		interval = time.Millisecond
	}
	for {
		select {
		case <-s.stop:
			return
		case <-s.clock.After(interval):
		}
		s.tick()
	}
}

// tick is one maintenance pass: expire lapsed leases (requeueing their
// cells), prune dead workers, and kick the local executors so they notice
// a fleet that has gone quiet.
//
//dynaqlint:allow lock-discipline driven by expiryLoop, whose clock.After select already honors s.stop; one tick is bounded work under s.mu
func (s *Server) tick() {
	type expired struct {
		j *Job
		c *Cell
		l *fleet.Lease
	}
	var lapsed []expired
	s.mu.Lock()
	now := s.clock.Now()
	for _, l := range s.leases.Expire(now) {
		s.leaseExpiry.Inc()
		if j, c := s.cellForLeaseLocked(l); c != nil && c.State == StateLeased {
			if c.span != nil {
				c.span.Event("lease-expired", trace.A("lease", l.ID))
				s.hLeaseDuration.Observe(now.Sub(c.leasedAt).Milliseconds())
			}
			lapsed = append(lapsed, expired{j: j, c: c, l: l})
		}
	}
	for id, seen := range s.workers {
		if now.Sub(seen) > s.cfg.LeaseTTL {
			delete(s.workers, id)
		}
	}
	if len(s.active) > 0 {
		s.kickLocked()
	}
	s.mu.Unlock()
	for _, e := range lapsed {
		s.cellFailed(e.j, e.c, e.l.Worker,
			fmt.Errorf("lease %s expired: worker %s silent past the %s TTL", e.l.ID, e.l.Worker, s.cfg.LeaseTTL))
	}
}

// --- dead-letter persistence ---------------------------------------------

func (s *Server) deadLetterPath() string {
	return filepath.Join(s.cfg.DataDir, "deadletter.json")
}

// addDeadLetterLocked appends (or refreshes) a quarantine entry and
// persists the list. The caller holds s.mu.
func (s *Server) addDeadLetterLocked(e fleet.DeadLetterEntry) {
	replaced := false
	for i := range s.dead {
		if s.dead[i].CacheKey == e.CacheKey {
			s.dead[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		s.dead = append(s.dead, e)
	}
	s.persistDeadLetterLocked()
}

func (s *Server) persistDeadLetterLocked() {
	data, err := json.MarshalIndent(s.dead, "", "  ")
	if err == nil {
		err = os.WriteFile(s.deadLetterPath(), append(data, '\n'), 0o644)
	}
	if err != nil {
		s.logf("persisting dead-letter list: %v", err)
	}
}

func (s *Server) loadDeadLetter() error {
	data, err := os.ReadFile(s.deadLetterPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := json.Unmarshal(data, &s.dead); err != nil {
		return fmt.Errorf("server: parsing deadletter.json: %w", err)
	}
	return nil
}
