package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// submitAs posts a job with an X-Dynaq-Tenant header.
func submitAs(t *testing.T, ts *httptest.Server, tenant, body string) (JobStatus, *http.Response) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Dynaq-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs as %s: %v", tenant, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decoding submit response: %v\n%s", err, data)
		}
	}
	return st, resp
}

// scrapeMetricsText fetches /metrics as raw text.
func scrapeMetricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(data)
}

// TestTenantHeaderValidation rejects malformed tenant names before any
// state is touched.
func TestTenantHeaderValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, bad := range []string{"no/slash", "space here", strings.Repeat("x", 65)} {
		_, resp := submitAs(t, ts, bad, testScenario)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("tenant %q: status = %d, want 400", bad, resp.StatusCode)
		}
	}
	// The body field is an equally valid spelling.
	st, resp := submit(t, ts, `{"tenant":"bodyside","scenario":`+testScenario+`,"schemes":["BestEffort"],"seeds":[1]}`)
	if resp.StatusCode != http.StatusAccepted || st.Tenant != "bodyside" {
		t.Fatalf("body-field tenant: status %d tenant %q, want 202 bodyside", resp.StatusCode, st.Tenant)
	}
}

// TestTenantDefaultJobIDUnchanged pins the single-tenant compatibility
// contract: an explicit "default" tenant and no tenant at all are the same
// job — same ID, so the second submission dedupes onto the first.
func TestTenantDefaultJobIDUnchanged(t *testing.T) {
	_, ts := newTestServer(t, nil)
	plain, resp := submit(t, ts, testScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("plain submit status = %d", resp.StatusCode)
	}
	tagged, resp := submitAs(t, ts, DefaultTenant, testScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tagged submit status = %d", resp.StatusCode)
	}
	if plain.ID != tagged.ID {
		t.Fatalf("explicit default tenant changed the job id: %s vs %s", plain.ID, tagged.ID)
	}
	// A non-default tenant running the identical scenario is a distinct
	// job (separate queue position, separate status) sharing cache keys.
	other, resp := submitAs(t, ts, "acme", testScenario)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("acme submit status = %d", resp.StatusCode)
	}
	if other.ID == plain.ID {
		t.Fatal("tenant acme deduped onto the default tenant's job")
	}
	if other.Cells[0].CacheKey != plain.Cells[0].CacheKey {
		t.Fatal("tenant tag leaked into the cache key")
	}
}

// TestTenantQuota503 exercises the per-tenant admission cap: a full tenant
// gets its own 503 (with its depth and quota in the body and a Retry-After
// hint) while other tenants keep submitting.
func TestTenantQuota503(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.QueueDepth = 8
		c.TenantQuota = 1
	})
	if _, resp := submitAs(t, ts, "flooder", testScenario); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first flooder submit status = %d", resp.StatusCode)
	}
	scen2 := strings.Replace(testScenario, `"seed":1`, `"seed":2`, 1)
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(scen2))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Dynaq-Tenant", "flooder")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-quota submit status = %d, want 503", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("over-quota Retry-After = %q, want delta-seconds >= 1", resp.Header.Get("Retry-After"))
	}
	var body struct {
		Error       string `json:"error"`
		Tenant      string `json:"tenant"`
		TenantDepth int    `json:"tenant_depth"`
		TenantQuota int    `json:"tenant_quota"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding 503 body: %v", err)
	}
	resp.Body.Close()
	if body.Tenant != "flooder" || body.TenantDepth != 1 || body.TenantQuota != 1 {
		t.Fatalf("503 body = %+v, want tenant flooder at 1 of 1", body)
	}
	if !strings.Contains(body.Error, "flooder") {
		t.Fatalf("503 error %q does not name the tenant", body.Error)
	}
	// A different tenant is unaffected by the flooder's full queue.
	if _, resp := submitAs(t, ts, "bystander", testScenario); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bystander submit status = %d, want 202", resp.StatusCode)
	}
}

// TestTenantWeightedGrantOrder drives the full server path of the fair
// tree: two tenants' jobs dispatching concurrently, lease grants rotating
// 3:1 by configured weight.
func TestTenantWeightedGrantOrder(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.TenantWeights = map[string]int{"heavy": 3, "light": 1}
		c.LeaseTTL = time.Minute // keep the polling worker "active" so the local pool stands down
	})
	s.Start()
	defer s.Shutdown(shutdownCtx(t))

	// Register the worker before submitting so no cell executes locally.
	if g := leaseAs(t, ts, "w1"); g != nil {
		t.Fatalf("unexpected grant before any submission: %+v", g)
	}
	sweep := func(seeds string) string {
		return `{"scenario":` + testScenario + `,"schemes":["BestEffort"],"seeds":[` + seeds + `]}`
	}
	stHeavy, respH := submitAs(t, ts, "heavy", sweep("1,2,3,4,5,6"))
	stLight, respL := submitAs(t, ts, "light", sweep("11,12,13,14,15,16"))
	if respH.StatusCode != http.StatusAccepted || respL.StatusCode != http.StatusAccepted {
		t.Fatalf("submit statuses = %d, %d", respH.StatusCode, respL.StatusCode)
	}

	// Wait until both jobs' cells are in the dispatch tree — the per-tenant
	// gauges say so — before granting, so the rotation sees both tenants.
	waitFor(t, func() bool {
		m := scrapeMetricsText(t, ts)
		return strings.Contains(m, `dynaqd_tenant_cells_queued{tenant="heavy"} 6`) &&
			strings.Contains(m, `dynaqd_tenant_cells_queued{tenant="light"} 6`)
	})

	tenantOf := map[string]string{stHeavy.ID: "heavy", stLight.ID: "light"}
	var order []string
	for len(order) < 8 {
		g := leaseAs(t, ts, "w1")
		if g == nil {
			t.Fatalf("lease pool ran dry after %d grants", len(order))
		}
		order = append(order, tenantOf[g.JobID])
	}
	want := []string{"heavy", "heavy", "heavy", "light", "heavy", "heavy", "heavy", "light"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("grant order = %v, want %v", order, want)
	}

	// The per-tenant observability satellites: dispatch counters moved and
	// both tenants' series render with their labels.
	m := scrapeMetricsText(t, ts)
	for _, series := range []string{
		`dynaqd_tenant_dispatch_total{tenant="heavy"} 6`,
		`dynaqd_tenant_dispatch_total{tenant="light"} 2`,
		`dynaqd_tenant_queue_depth{tenant="heavy"}`,
		`dynaqd_tenant_inflight{tenant="light"} 2`,
		`dynaqd_tenant_queue_wait_ms_count{tenant="heavy"}`,
	} {
		if !strings.Contains(m, series) {
			t.Errorf("metrics missing %s", series)
		}
	}
}
